/**
 * @file
 * Fig 13: execution-time impact of warped-compression (cycles
 * normalized to the no-compression baseline).
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Execution time impact", "Figure 13");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    ExperimentConfig wc_cfg;
    const auto base = bench::runSelected(opt, base_cfg);
    const auto wc = bench::runSelected(opt, wc_cfg);

    TextTable t({"bench", "base cycles", "wc cycles", "normalized"});
    std::vector<double> norms;
    for (std::size_t i = 0; i < base.size(); ++i) {
        const double n = static_cast<double>(wc[i].run.cycles) /
            static_cast<double>(base[i].run.cycles);
        norms.push_back(n);
        t.addRow({base[i].workload,
                  std::to_string(base[i].run.cycles),
                  std::to_string(wc[i].run.cycles), fmtDouble(n, 3)});
    }
    t.addRow({"average", "", "", fmtDouble(mean(norms), 3)});
    t.print(std::cout);

    std::cout << "\naverage execution-time overhead: "
              << fmtPercent(mean(norms) - 1.0)
              << "  (paper: 0.1%)\n";
    return 0;
}
