/**
 * @file
 * Comparator: the drowsy register file ([9] in the paper, Abdel-Majeed
 * & Annavaram HPCA'13) against and combined with warped-compression.
 * Drowsy banks retain state at ~10% leakage after an idle threshold;
 * it attacks leakage only, while compression attacks dynamic energy
 * first — the two compose.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Drowsy register file comparator",
                  "the related-work comparison in Sec. 7");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const auto base = bench::runSelected(opt, base_cfg);

    struct Config
    {
        const char *name;
        CompressionScheme scheme;
        bool drowsy;
    };
    const Config configs[] = {
        {"baseline+drowsy", CompressionScheme::None, true},
        {"warped-compression", CompressionScheme::Warped, false},
        {"wc+drowsy", CompressionScheme::Warped, true},
    };

    TextTable t({"config", "dynamic", "leakage", "total vs baseline"});
    t.addRow({"baseline", "1.000", "1.000", "1.000"});
    for (const Config &c : configs) {
        ExperimentConfig cfg;
        cfg.scheme = c.scheme;
        cfg.drowsy = c.drowsy;
        const auto results = bench::runSelected(opt, cfg);
        std::vector<double> dyn, leak, tot;
        for (std::size_t i = 0; i < base.size(); ++i) {
            const EnergyBreakdown eb = base[i].run.meter.breakdown();
            const EnergyBreakdown er = results[i].run.meter.breakdown();
            dyn.push_back(er.dynamicPj() / eb.dynamicPj());
            leak.push_back(er.leakagePj() / eb.leakagePj());
            tot.push_back(er.totalPj() / eb.totalPj());
        }
        t.addRow({c.name, fmtDouble(mean(dyn), 3),
                  fmtDouble(mean(leak), 3), fmtDouble(mean(tot), 3)});
    }
    t.print(std::cout);

    std::cout << "\n(drowsy attacks leakage only; compression attacks "
                 "dynamic energy and enables gating; combining both "
                 "stacks the savings)\n";
    return 0;
}
