/**
 * @file
 * Fault-tolerance sweep: BER vs usable register capacity, execution
 * time, and register-file energy for the three tolerance policies
 * (None / DisableEntry / CompressRemap), over the full workload suite.
 * Emits a deterministic JSON document on stdout — every field is a
 * pure function of (seed, config), so fixed seeds give byte-identical
 * output run over run.
 *
 * Under `--isolate` every grid point runs in a supervised child
 * process (watchdog, retry/backoff, optional `--journal`/`--resume`);
 * a point that exhausts its attempts is counted in the `failed` field
 * and dropped from the averages instead of aborting the sweep. The
 * default in-process path always reports `failed: 0`.
 */

#include <array>

#include "bench_common.hpp"
#include "common/json_writer.hpp"
#include "sweep/sweep.hpp"

using namespace warpcomp;

namespace {

constexpr std::array<double, 4> kBers = {1e-4, 5e-4, 1e-3, 5e-3};
constexpr std::array<FaultPolicy, 3> kPolicies = {
    FaultPolicy::None, FaultPolicy::DisableEntry,
    FaultPolicy::CompressRemap};

/** One sweep point aggregated over the workload suite. */
struct FaultSweepRow
{
    double ber = 0.0;
    FaultPolicy policy = FaultPolicy::None;
    double usableCapacity = 1.0;    ///< usable / total warp registers
    double relCycles = 1.0;         ///< geomean vs fault-free baseline
    double relEnergy = 1.0;         ///< suite energy vs baseline
    u64 toleratedWrites = 0;
    u64 remapWrites = 0;
    u64 remapReads = 0;
    u64 corruptedWrites = 0;
    u64 unrecoverableAccesses = 0;
    u32 unschedulable = 0;          ///< workloads that could not launch
    u32 hung = 0;                   ///< workloads livelocked by corruption
    u32 failed = 0;                 ///< isolated points past their attempts
};

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    const SweepOptions sopt = parseSweepArgs(argc, argv);
    if (sopt.isChild())
        return runSweepChildPoint(sopt);

    // Config 0 is the fault-free reference; the rest is the
    // BER x policy cross product, all flattened onto one pool.
    std::vector<ExperimentConfig> configs;
    ExperimentConfig base;
    base.scale = opt.scale;
    base.numSms = opt.numSms;
    if (opt.hangBudget > 0)
        base.faults.hangCycles = opt.hangBudget;
    configs.push_back(base);
    for (double ber : kBers) {
        for (FaultPolicy policy : kPolicies) {
            ExperimentConfig cfg = base;
            cfg.faults.ber = ber;
            cfg.faults.policy = policy;
            cfg.faults.seed = opt.faults.seed;
            configs.push_back(cfg);
        }
    }

    const std::vector<std::string> workloads = bench::selectedWorkloads(opt);
    const auto grid =
        runPointsGrid(argv[0], configs, workloads, sopt, opt.threads);
    const auto &ref = grid[0];

    double ref_energy_total = 0.0;
    for (const auto &r : ref)
        if (r.has_value())
            ref_energy_total += r->energyPj;

    std::vector<FaultSweepRow> points;
    for (std::size_t c = 1; c < grid.size(); ++c) {
        const auto &runs = grid[c];
        FaultSweepRow pt;
        pt.ber = configs[c].faults.ber;
        pt.policy = configs[c].faults.policy;

        // Capacity census is a property of the fault map + policy, not
        // of the workload; read it off the first completed run.
        for (const auto &cell : runs) {
            if (cell.has_value()) {
                pt.usableCapacity =
                    static_cast<double>(cell->fault.usableRegs) /
                    static_cast<double>(cell->fault.totalRegs);
                break;
            }
        }

        std::vector<double> cyc_ratios;
        double energy = 0.0;
        double ref_energy = 0.0;
        for (std::size_t w = 0; w < runs.size(); ++w) {
            if (!runs[w].has_value()) {
                ++pt.failed;
                continue;
            }
            const PointStats &run = *runs[w];
            pt.toleratedWrites += run.fault.toleratedWrites;
            pt.remapWrites += run.fault.remapWrites;
            pt.remapReads += run.fault.remapReads;
            pt.corruptedWrites += run.fault.corruptedWrites;
            pt.unrecoverableAccesses += run.fault.unrecoverableAccesses;
            if (run.unschedulable || run.hung) {
                // No meaningful cycle/energy figure for a run that
                // never launched or never finished.
                pt.unschedulable += run.unschedulable ? 1 : 0;
                pt.hung += run.hung ? 1 : 0;
                continue;
            }
            if (!ref[w].has_value())
                continue;   // baseline point failed: no ratio to form
            cyc_ratios.push_back(static_cast<double>(run.cycles) /
                                 static_cast<double>(ref[w]->cycles));
            energy += run.energyPj;
            ref_energy += ref[w]->energyPj;
        }
        pt.relCycles = geomean(cyc_ratios);
        pt.relEnergy = ref_energy > 0.0 ? energy / ref_energy : 0.0;
        points.push_back(pt);
    }

    JsonWriter w(std::cout);
    w.beginObject();
    w.field("workloads", static_cast<u64>(workloads.size()));
    w.field("sms", opt.numSms);
    w.field("fault_seed", opt.faults.seed);
    w.field("baseline_energy_pj", ref_energy_total);
    w.key("points");
    w.beginArray();
    for (const FaultSweepRow &p : points) {
        w.beginObject();
        w.field("ber", p.ber);
        w.field("policy", faultPolicyName(p.policy));
        w.field("usable_capacity", p.usableCapacity);
        w.field("rel_cycles", p.relCycles);
        w.field("rel_energy", p.relEnergy);
        w.field("tolerated_writes", p.toleratedWrites);
        w.field("remap_writes", p.remapWrites);
        w.field("remap_reads", p.remapReads);
        w.field("corrupted_writes", p.corruptedWrites);
        w.field("unrecoverable_accesses", p.unrecoverableAccesses);
        w.field("unschedulable", p.unschedulable);
        w.field("hung", p.hung);
        w.field("failed", p.failed);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return 0;
}
