/**
 * @file
 * Ablation: how many compressor/decompressor units an SM needs. The
 * paper sizes 2 compressors + 4 decompressors for its dual-issue SM
 * (Sec. 5.1); this sweeps the pool sizes and reports the performance
 * cost of under-provisioning.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Compressor/decompressor pool sizing",
                  "the Sec. 5.1 sizing argument");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const auto base = bench::runSelected(opt, base_cfg);

    struct Sizing
    {
        u32 comp;
        u32 decomp;
    };
    const Sizing sizings[] = {{1, 1}, {1, 2}, {2, 2}, {2, 4}, {4, 8}};

    TextTable t({"compressors", "decompressors", "cycles vs baseline",
                 "energy vs baseline"});
    for (const Sizing &s : sizings) {
        ExperimentConfig cfg;
        cfg.numCompressors = s.comp;
        cfg.numDecompressors = s.decomp;
        const auto wc = bench::runSelected(opt, cfg);
        std::vector<double> cyc, en;
        for (std::size_t i = 0; i < base.size(); ++i) {
            cyc.push_back(static_cast<double>(wc[i].run.cycles) /
                          static_cast<double>(base[i].run.cycles));
            en.push_back(wc[i].run.meter.breakdown().totalPj() /
                         base[i].run.meter.breakdown().totalPj());
        }
        t.addRow({std::to_string(s.comp), std::to_string(s.decomp),
                  fmtDouble(mean(cyc), 3), fmtDouble(mean(en), 3)});
    }
    t.print(std::cout);

    std::cout << "\n(paper: 2 compressors + 4 decompressors suffice for "
                 "two warp instructions per cycle)\n";
    return 0;
}
