/**
 * @file
 * Table 1: possible <base,delta> chunk-size combinations, their
 * compressed sizes per Eq. (1), the register banks each needs, and
 * whether warped-compression uses them. Computed from the codec, not
 * hard-coded, so any formula regression shows up here.
 */

#include "bench_common.hpp"

#include "compress/bdi.hpp"

using namespace warpcomp;

int
main()
{
    bench::banner("Chunk-size combinations", "Table 1");

    struct Row
    {
        BdiParams p;
        bool used;
    };
    const Row rows[] = {
        {{1, 0}, false}, {{2, 1}, false}, {{4, 0}, true},
        {{4, 1}, true},  {{4, 2}, true},  {{8, 0}, false},
        {{8, 1}, false}, {{8, 2}, false}, {{8, 4}, false},
    };

    TextTable t({"base(B)", "delta(B)", "comp.size(B)", "banks(16B)",
                 "used?"});
    for (const Row &r : rows) {
        const u32 size = bdiCompressedSize(r.p);
        t.addRow({std::to_string(r.p.baseBytes),
                  std::to_string(r.p.deltaBytes), std::to_string(size),
                  std::to_string(banksForBytes(size)),
                  r.used ? "Y" : "N"});
    }
    t.print(std::cout);

    std::cout << "\npaper: <4,0>/<4,1>/<4,2> selected as the three fixed"
                 " choices (Sec. 4).\n";
    return 0;
}
