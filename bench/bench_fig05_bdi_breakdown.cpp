/**
 * @file
 * Fig 5: breakdown of the <base,delta> pair the original-BDI explorer
 * would pick for each register write (fraction of total writes).
 * Motivates dropping the 8-byte bases from the hardware.
 */

#include "bench_common.hpp"

#include "compress/bdi.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Best <base,delta> selection breakdown", "Figure 5");

    ExperimentConfig cfg;
    cfg.collectBdiBreakdown = true;
    const auto results = bench::runSelected(opt, cfg);

    const auto cands = fullBdiCandidates();
    std::vector<std::string> headers = {"bench"};
    for (const BdiParams &p : cands) {
        headers.push_back("<" + std::to_string(p.baseBytes) + "," +
                          std::to_string(p.deltaBytes) + ">");
    }
    headers.push_back("uncomp");

    TextTable t(headers);
    std::vector<double> col_sums(8, 0.0);
    double eight_byte_sum = 0.0;
    for (const auto &r : results) {
        u64 total = 0;
        for (u32 i = 0; i < 8; ++i)
            total += r.run.stats.bdiSelect[i];
        std::vector<double> row;
        for (u32 i = 0; i < 8; ++i) {
            const double frac = total == 0 ? 0.0
                : static_cast<double>(r.run.stats.bdiSelect[i]) /
                      static_cast<double>(total);
            row.push_back(frac);
            col_sums[i] += frac;
            if (i < cands.size() && cands[i].baseBytes == 8)
                eight_byte_sum += frac;
        }
        t.addRow(r.workload, row, 3);
    }
    std::vector<double> avg;
    for (double s : col_sums)
        avg.push_back(s / static_cast<double>(results.size()));
    t.addRow("average", avg, 3);
    t.print(std::cout);

    std::cout << "\n8-byte-base selections (average): "
              << fmtPercent(eight_byte_sum / results.size())
              << "  (paper: rarely selected -> <4,Y> only in hardware)\n";
    return 0;
}
