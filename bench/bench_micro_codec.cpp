/**
 * @file
 * Google-benchmark microbenchmarks of the hot paths: the BDI codec
 * (hardware-critical path under a 1-2 cycle budget), bank arbitration,
 * and the SIMT stack. These size the simulator's own cost, not the
 * paper's results.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "compress/bdi.hpp"
#include "sim/arbiter.hpp"
#include "sim/simt_stack.hpp"

namespace warpcomp {
namespace {

WarpRegValue
strideValue(u32 base, u32 stride)
{
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = base + stride * i;
    return v;
}

void
BM_BdiCompressUniform(benchmark::State &state)
{
    const auto img = toBytes(strideValue(42, 0));
    for (auto _ : state) {
        auto enc = bdiCompress(img, warpedCandidates());
        benchmark::DoNotOptimize(enc);
    }
}
BENCHMARK(BM_BdiCompressUniform);

void
BM_BdiCompressStride(benchmark::State &state)
{
    const auto img = toBytes(strideValue(1000, 1));
    for (auto _ : state) {
        auto enc = bdiCompress(img, warpedCandidates());
        benchmark::DoNotOptimize(enc);
    }
}
BENCHMARK(BM_BdiCompressStride);

void
BM_BdiCompressRandom(benchmark::State &state)
{
    Rng rng(1);
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = static_cast<u32>(rng.next());
    const auto img = toBytes(v);
    for (auto _ : state) {
        auto enc = bdiCompress(img, warpedCandidates());
        benchmark::DoNotOptimize(enc);
    }
}
BENCHMARK(BM_BdiCompressRandom);

void
BM_BdiDecompress(benchmark::State &state)
{
    const auto img = toBytes(strideValue(1000, 1));
    const BdiEncoded enc = bdiCompress(img, warpedCandidates());
    for (auto _ : state) {
        auto out = bdiDecompress(enc);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_BdiDecompress);

void
BM_BdiExplorerFullCandidates(benchmark::State &state)
{
    const auto img = toBytes(strideValue(7, 300));
    for (auto _ : state) {
        auto best = bdiBestParams(img, fullBdiCandidates());
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_BdiExplorerFullCandidates);

void
BM_ArbiterCycle(benchmark::State &state)
{
    BankArbiter arb(32);
    for (auto _ : state) {
        arb.newCycle();
        for (u32 b = 0; b < 32; ++b)
            benchmark::DoNotOptimize(arb.tryRead(b));
        benchmark::DoNotOptimize(arb.tryWriteRange(0, 8));
    }
}
BENCHMARK(BM_ArbiterCycle);

void
BM_SimtStackDivergeReconverge(benchmark::State &state)
{
    for (auto _ : state) {
        SimtStack s;
        s.reset(kFullMask);
        s.branch(10, 20, 0x0000FFFFu, 1);
        s.advance(20);
        s.popReconverged();
        s.advance(20);
        s.popReconverged();
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_SimtStackDivergeReconverge);

} // namespace
} // namespace warpcomp

BENCHMARK_MAIN();
