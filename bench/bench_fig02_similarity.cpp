/**
 * @file
 * Fig 2: characterization of register values — every write's
 * successive-lane arithmetic distances binned into zero / 128 / 32K /
 * random, split into non-divergent and divergent phases.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Register value similarity", "Figure 2");

    ExperimentConfig cfg;   // default warped-compression configuration
    const auto results = bench::runSelected(opt, cfg);

    TextTable t({"bench", "nd.zero", "nd.128", "nd.32K", "nd.rand",
                 "d.zero", "d.128", "d.32K", "d.rand"});
    double nd_not_random_sum = 0.0;
    std::vector<double> col_sums(8, 0.0);
    for (const auto &r : results) {
        const SimilarityBins &bins = r.run.stats.simBins;
        std::vector<double> row;
        for (Phase ph : {kNonDivergent, kDivergent}) {
            for (u32 bin = 0; bin < kNumDistanceBins; ++bin) {
                row.push_back(bins.fraction(
                    ph, static_cast<DistanceBin>(bin)));
            }
        }
        for (std::size_t i = 0; i < row.size(); ++i)
            col_sums[i] += row[i];
        nd_not_random_sum += 1.0 - bins.fraction(kNonDivergent,
                                                 DistanceBin::Random);
        t.addRow(r.workload, row, 3);
    }
    std::vector<double> avg;
    for (double s : col_sums)
        avg.push_back(s / static_cast<double>(results.size()));
    t.addRow("average", avg, 3);
    t.print(std::cout);

    std::cout << "\nnon-random fraction during non-divergent execution: "
              << fmtPercent(nd_not_random_sum / results.size())
              << "  (paper: ~79%)\n";
    return 0;
}
