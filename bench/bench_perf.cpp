/**
 * @file
 * Wall-clock perf baseline for the simulator itself (no paper figure):
 * times the full workload suite under the default warped configuration,
 * once serial and once on the parallel runner, and prints the speedup.
 * With --json=FILE both runs land in a machine-readable record that CI
 * archives, so simulator slowdowns show up as artifact diffs.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    HarnessOptions opt = parseHarnessArgs(argc, argv);
    std::cout << "== Simulator wall-clock baseline ==\n"
              << "(full workload suite, default warped configuration)\n\n";

    HarnessOptions serial_opt = opt;
    serial_opt.threads = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const auto serial =
        bench::runSelected(serial_opt, ExperimentConfig{}, "suite serial");
    const std::chrono::duration<double> serial_wall =
        std::chrono::steady_clock::now() - t0;

    const auto t1 = std::chrono::steady_clock::now();
    const auto parallel =
        bench::runSelected(opt, ExperimentConfig{}, "suite parallel");
    const std::chrono::duration<double> parallel_wall =
        std::chrono::steady_clock::now() - t1;

    u64 total_cycles = 0;
    TextTable t({"bench", "cycles", "serial s", "parallel s"});
    for (std::size_t i = 0; i < serial.size(); ++i) {
        total_cycles += serial[i].run.cycles;
        t.addRow({serial[i].workload,
                  std::to_string(serial[i].run.cycles),
                  fmtDouble(serial[i].wallSeconds, 3),
                  fmtDouble(parallel[i].wallSeconds, 3)});
    }
    t.print(std::cout);

    std::cout << "\ntotal simulated cycles: " << total_cycles
              << "\nserial wall:   " << fmtDouble(serial_wall.count(), 3)
              << " s\nparallel wall: "
              << fmtDouble(parallel_wall.count(), 3)
              << " s\nspeedup:       "
              << fmtDouble(serial_wall.count() / parallel_wall.count(), 2)
              << "x\n";
    return 0;
}
