/**
 * @file
 * Fig 9: total register-file energy of warped-compression, broken into
 * dynamic / leakage / compression / decompression, normalized to the
 * no-compression baseline per benchmark.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Register file energy consumption", "Figure 9");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    ExperimentConfig wc_cfg;
    const auto base = bench::runSelected(opt, base_cfg);
    const auto wc = bench::runSelected(opt, wc_cfg);

    TextTable t({"bench", "base.dyn", "base.leak", "wc.dyn", "wc.leak",
                 "wc.comp", "wc.decomp", "wc.total"});
    std::vector<double> totals, dyn_savings, leak_savings;
    std::vector<double> col_sums(7, 0.0);
    for (std::size_t i = 0; i < base.size(); ++i) {
        const EnergyBreakdown eb = base[i].run.meter.breakdown();
        const EnergyBreakdown ew = wc[i].run.meter.breakdown();
        const double bt = eb.totalPj();
        const std::vector<double> row = {
            eb.dynamicPj() / bt, eb.leakagePj() / bt,
            ew.dynamicPj() / bt, ew.leakagePj() / bt,
            ew.compressionPj / bt, ew.decompressionPj / bt,
            ew.totalPj() / bt};
        for (std::size_t c = 0; c < row.size(); ++c)
            col_sums[c] += row[c];
        t.addRow(base[i].workload, row, 3);
        totals.push_back(ew.totalPj() / bt);
        dyn_savings.push_back(1.0 - ew.dynamicPj() / eb.dynamicPj());
        leak_savings.push_back(1.0 - ew.leakagePj() / eb.leakagePj());
    }
    std::vector<double> col_avg;
    for (double s : col_sums)
        col_avg.push_back(s / static_cast<double>(base.size()));
    t.addRow("average", col_avg, 3);
    t.print(std::cout);

    std::cout << "\naverage register-file energy reduction: "
              << fmtPercent(1.0 - mean(totals))
              << "  (paper: 25%)\n"
              << "average dynamic energy reduction: "
              << fmtPercent(mean(dyn_savings)) << "  (paper: 35%)\n"
              << "average leakage energy reduction: "
              << fmtPercent(mean(leak_savings)) << "  (paper: 10%)\n";
    return 0;
}
