/**
 * @file
 * Fig 3: ratio of non-divergent warp instructions per benchmark.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Non-divergent warp instruction ratio", "Figure 3");

    ExperimentConfig cfg;
    const auto results = bench::runSelected(opt, cfg);

    TextTable t({"bench", "non-divergent", "divergent"});
    std::vector<double> nd;
    for (const auto &r : results) {
        const double div = static_cast<double>(
            r.run.stats.issuedDivergent) /
            static_cast<double>(r.run.stats.issued);
        nd.push_back(1.0 - div);
        t.addRow(r.workload, {1.0 - div, div}, 3);
    }
    t.addRow("average", {mean(nd), 1.0 - mean(nd)}, 3);
    t.print(std::cout);

    std::cout << "\naverage non-divergent ratio: " << fmtPercent(mean(nd))
              << "  (paper: 79%)\n";
    return 0;
}
