/**
 * @file
 * Fig 12: portion of allocated registers holding compressed data,
 * sampled at issue and attributed to the issuing warp's phase
 * (non-divergent vs divergent).
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Compressed registers by phase", "Figure 12");

    ExperimentConfig cfg;
    const auto results = bench::runSelected(opt, cfg);

    TextTable t({"bench", "non-divergent", "divergent"});
    std::vector<double> nd, d;
    for (const auto &r : results) {
        const double fn = r.run.stats.compressedFraction(kNonDivergent);
        const bool has_div =
            r.run.stats.compressedFracSamples[kDivergent] > 0;
        nd.push_back(fn);
        std::vector<std::string> row = {r.workload, fmtPercent(fn)};
        if (has_div) {
            const double fd = r.run.stats.compressedFraction(kDivergent);
            d.push_back(fd);
            row.push_back(fmtPercent(fd));
        } else {
            row.push_back("N/A");
        }
        t.addRow(row);
    }
    t.addRow({"average", fmtPercent(mean(nd)), fmtPercent(mean(d))});
    t.print(std::cout);

    std::cout << "\n(paper: compressed share stays similar across phases "
                 "for most benchmarks; BFS/dwt2d/spmv drop >10% during "
                 "divergence)\n";
    return 0;
}
