/**
 * @file
 * Fig 17: sensitivity to compression/decompression unit activation
 * energy — the same simulated event counts re-priced at 1.0x, 1.5x,
 * 2.0x and 2.5x (a pessimistic view where logic, not wires, dominates).
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Energy vs comp/decomp activation energy",
                  "Figure 17");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    ExperimentConfig wc_cfg;
    const auto base = bench::runSelected(opt, base_cfg);
    const auto wc = bench::runSelected(opt, wc_cfg);

    const double scales[] = {1.0, 1.5, 2.0, 2.5};
    TextTable t({"bench", "1.0x", "1.5x", "2.0x", "2.5x"});
    std::vector<double> col_means(4, 0.0);
    for (std::size_t i = 0; i < base.size(); ++i) {
        // Baseline has no comp/decomp units, so its energy is fixed.
        const double bt = base[i].run.meter.breakdown().totalPj();
        std::vector<double> row;
        for (std::size_t s = 0; s < 4; ++s) {
            EnergyParams p;
            p.compDecompScale = scales[s];
            const double n = bench::totalEnergy(wc[i], p) / bt;
            row.push_back(n);
            col_means[s] += n;
        }
        t.addRow(base[i].workload, row, 3);
    }
    for (double &m : col_means)
        m /= static_cast<double>(base.size());
    t.addRow("average", col_means, 3);
    t.print(std::cout);

    std::cout << "\nworst case (2.5x) still saves "
              << fmtPercent(1.0 - col_means[3])
              << "  (paper: 14% at 2.5x vs 25% at 1.0x)\n";
    return 0;
}
