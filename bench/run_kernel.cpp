/**
 * @file
 * Binary kernel driver: load an RV32IM kernel image via
 * `--kernel=FILE[,entry=SYM]`, translate it, and run it through the
 * full timing model in the canonical environment, printing the
 * figure-level stats (cycles, compression ratio, register-file
 * energy). `--disasm` prints the translated listing without running.
 *
 * Built-in workloads (including the DSL twins vecadd / saxpy /
 * reduction) remain reachable via `--only=NAME`, so a binary kernel
 * and its twin can be compared side by side:
 *
 *   run_kernel --kernel=examples/kernels/vecadd.hex
 *   run_kernel --only=vecadd
 */

#include <cstring>

#include "bench_common.hpp"
#include "isa/disasm.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bool disasmOnly = false;
    for (int i = 1; i < argc; ++i)
        disasmOnly = disasmOnly || std::strcmp(argv[i], "--disasm") == 0;

    if (opt.kernelPath.empty() && opt.only.empty())
        WC_FATAL("run_kernel needs --kernel=FILE[,entry=SYM] or "
                 "--only=WORKLOAD");

    if (disasmOnly) {
        if (opt.kernelPath.empty()) {
            WorkloadInstance wl = makeWorkload(opt.only, opt.scale, 0);
            std::cout << disassemble(wl.kernel);
            return 0;
        }
        const LoadedKernel lk =
            loadKernelFileOrExit(opt.kernelPath, opt.kernelEntry);
        std::cout << "# image " << lk.path << "\n"
                  << "# sha256 " << lk.imageSha << "\n"
                  << "# block " << lk.blockDim << "\n"
                  << disassemble(lk.kernel);
        return 0;
    }

    bench::banner("Binary kernel frontend", "Sec 5 methodology");

    ExperimentConfig cfg;
    const auto results = bench::runSelected(opt, cfg, "run_kernel");

    TextTable t({"kernel", "frontend", "cycles", "comp ratio",
                 "energy (uJ)"});
    for (const auto &r : results) {
        t.addRow({r.workload, r.frontend,
                  std::to_string(r.run.cycles),
                  fmtDouble(r.run.stats.ratio.overallRatio(), 3),
                  fmtDouble(r.run.meter.breakdown().totalPj() * 1e-6, 3)});
        if (!r.imageSha.empty())
            std::cout << "image sha256: " << r.imageSha << "\n";
    }
    t.print(std::cout);
    return 0;
}
