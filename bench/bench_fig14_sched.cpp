/**
 * @file
 * Fig 14: energy reduction under the GTO and LRR warp schedulers, each
 * normalized to its own no-compression baseline.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Energy reduction: GTO vs LRR schedulers",
                  "Figure 14");

    TextTable t({"bench", "GTO", "LRR"});
    std::vector<double> gto_norm, lrr_norm;
    std::vector<std::vector<double>> rows;

    for (SchedPolicy pol : {SchedPolicy::Gto, SchedPolicy::Lrr}) {
        ExperimentConfig base_cfg;
        base_cfg.scheme = CompressionScheme::None;
        base_cfg.sched = pol;
        ExperimentConfig wc_cfg;
        wc_cfg.sched = pol;
        const auto base = bench::runSelected(opt, base_cfg);
        const auto wc = bench::runSelected(opt, wc_cfg);
        for (std::size_t i = 0; i < base.size(); ++i) {
            const double n = wc[i].run.meter.breakdown().totalPj() /
                base[i].run.meter.breakdown().totalPj();
            if (pol == SchedPolicy::Gto) {
                rows.push_back({n});
                gto_norm.push_back(n);
            } else {
                rows[i].push_back(n);
                lrr_norm.push_back(n);
            }
        }
    }

    const auto names = bench::selectedWorkloads(opt);
    for (std::size_t i = 0; i < names.size(); ++i)
        t.addRow(names[i], rows[i], 3);
    t.addRow("average", {mean(gto_norm), mean(lrr_norm)}, 3);
    t.print(std::cout);

    std::cout << "\naverage energy reduction: GTO "
              << fmtPercent(1.0 - mean(gto_norm)) << ", LRR "
              << fmtPercent(1.0 - mean(lrr_norm))
              << "  (paper: 25% GTO, 26% LRR)\n";
    return 0;
}
