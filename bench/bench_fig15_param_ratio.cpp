/**
 * @file
 * Fig 15: compression ratio when the hardware statically uses a single
 * <base,delta> choice instead of selecting among the three dynamically.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Compression ratio per parameter choice", "Figure 15");

    const CompressionScheme schemes[] = {
        CompressionScheme::Warped, CompressionScheme::Fixed40,
        CompressionScheme::Fixed41, CompressionScheme::Fixed42};

    const auto names = bench::selectedWorkloads(opt);
    std::vector<std::vector<double>> rows(names.size());
    std::vector<double> col_means;
    for (CompressionScheme s : schemes) {
        ExperimentConfig cfg;
        cfg.scheme = s;
        const auto results = bench::runSelected(opt, cfg);
        std::vector<double> ratios;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const double r = results[i].run.stats.ratio.overallRatio();
            rows[i].push_back(r);
            ratios.push_back(r);
        }
        col_means.push_back(mean(ratios));
    }

    TextTable t({"bench", "warped", "<4,0>", "<4,1>", "<4,2>"});
    for (std::size_t i = 0; i < names.size(); ++i)
        t.addRow(names[i], rows[i], 2);
    t.addRow("average", col_means, 2);
    t.print(std::cout);

    std::cout << "\n<4,0>-only ratio vs dynamic selection: "
              << fmtPercent(1.0 - col_means[1] / col_means[0])
              << " lower  (paper: ~30% lower; <4,0> alone equals the "
                 "scalarization approach)\n";
    return 0;
}
