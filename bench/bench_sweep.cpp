/**
 * @file
 * Resilient sweep driver: runs a named (workload, config) grid with
 * every point in a supervised child process — watchdog timeouts,
 * bounded retry with exponential backoff, checkpoint journal, and
 * `--resume` — and emits the merged report on stdout (or `--report`).
 *
 * Grids (`--grid=NAME`):
 *   - smoke: three cheap workloads x three configs (compressed,
 *     uncompressed, faulty) — the CI chaos/resume gate;
 *   - fault: the bench_fault_sweep grid (fault-free ref + BER x
 *     policy cross);
 *   - seu:   a moderate SEU cross (ref + rate x protection);
 *   - perf:  the full suite under Warped and None.
 *
 * The report contains only deterministic per-point data in grid order,
 * so clean, resumed (`--resume=JOURNAL`), and multi-worker
 * (`--threads=N`) runs are byte-identical. Supervision counters go to
 * `--sweep-stats`/stderr instead, where cache hits and retries are
 * allowed to differ.
 */

#include <array>
#include <fstream>

#include "bench_common.hpp"
#include "sweep/sweep.hpp"

using namespace warpcomp;

namespace {

std::vector<ExperimentConfig>
makeGrid(const std::string &grid, const ExperimentConfig &base)
{
    std::vector<ExperimentConfig> configs;
    if (grid == "smoke") {
        configs.push_back(base);
        ExperimentConfig none = base;
        none.scheme = CompressionScheme::None;
        configs.push_back(none);
        ExperimentConfig faulty = base;
        faulty.faults.ber = 1e-3;
        faulty.faults.policy = FaultPolicy::DisableEntry;
        configs.push_back(faulty);
    } else if (grid == "fault") {
        configs.push_back(base);    // fault-free reference
        constexpr std::array<double, 4> bers = {1e-4, 5e-4, 1e-3, 5e-3};
        constexpr std::array<FaultPolicy, 3> policies = {
            FaultPolicy::None, FaultPolicy::DisableEntry,
            FaultPolicy::CompressRemap};
        for (double ber : bers) {
            for (FaultPolicy policy : policies) {
                ExperimentConfig cfg = base;
                cfg.faults.ber = ber;
                cfg.faults.policy = policy;
                configs.push_back(cfg);
            }
        }
    } else if (grid == "seu") {
        configs.push_back(base);    // SEU-free reference
        constexpr std::array<double, 2> rates = {1e-4, 1e-3};
        constexpr std::array<SeuScheme, 3> schemes = {
            SeuScheme::Unprotected, SeuScheme::Ecc, SeuScheme::EccScrub};
        for (double rate : rates) {
            for (SeuScheme scheme : schemes) {
                ExperimentConfig cfg = base;
                cfg.seu.flipsPerCycle = rate;
                cfg.seu.scheme = scheme;
                configs.push_back(cfg);
            }
        }
    } else if (grid == "perf") {
        configs.push_back(base);
        ExperimentConfig none = base;
        none.scheme = CompressionScheme::None;
        configs.push_back(none);
    } else {
        WC_FATAL("unknown --grid '" << grid
                 << "' (smoke, fault, seu, perf)");
    }
    return configs;
}

std::vector<std::string>
gridWorkloads(const std::string &grid, const HarnessOptions &opt)
{
    if (!opt.kernelPath.empty() || !opt.only.empty())
        return bench::selectedWorkloads(opt);
    if (grid == "smoke")
        return {"nw", "lud", "hotspot"};
    return workloadNames();
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    const SweepOptions sopt = parseSweepArgs(argc, argv);
    if (sopt.isChild())
        return runSweepChildPoint(sopt);

    ExperimentConfig base;
    base.scale = opt.scale;
    base.numSms = opt.numSms;
    base.skipIdle = !opt.noSkip;
    if (opt.faults.enabled())
        base.faults = opt.faults;
    if (opt.seu.enabled())
        base.seu = opt.seu;
    // Livelock containment inside the sim, independent of the
    // supervisor's wall-clock watchdog around it.
    base.faults.hangCycles =
        opt.hangBudget > 0 ? opt.hangBudget : Cycle{2'000'000};

    const std::vector<ExperimentConfig> configs =
        makeGrid(sopt.grid, base);
    const std::vector<std::string> workloads =
        gridWorkloads(sopt.grid, opt);

    std::vector<SweepPoint> points;
    points.reserve(configs.size() * workloads.size());
    for (const ExperimentConfig &cfg : configs)
        for (const std::string &w : workloads)
            points.push_back({w, cfg});

    const auto outcomes =
        runResilientSweep(argv[0], points, sopt, opt.threads);

    if (sopt.reportPath.empty()) {
        writeSweepReport(std::cout, "bench_sweep", sopt.grid, outcomes);
    } else {
        std::ofstream os(sopt.reportPath, std::ios::binary);
        if (!os)
            WC_FATAL("cannot write report to '" << sopt.reportPath
                     << "'");
        writeSweepReport(os, "bench_sweep", sopt.grid, outcomes);
    }
    return 0;
}
