/**
 * @file
 * Fig 10: fraction of cycles each of the 32 register banks spends
 * power-gated under warped-compression, averaged over the benchmark
 * suite. Compressed data packs from the lowest bank of each 8-bank
 * cluster, so gated time rises with the bank index inside a cluster.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Power-gated cycles per register bank", "Figure 10");

    ExperimentConfig cfg;
    const auto results = bench::runSelected(opt, cfg);

    const u32 num_banks = 32;
    std::vector<double> avg(num_banks, 0.0);
    for (const auto &r : results) {
        for (u32 b = 0; b < num_banks; ++b)
            avg[b] += r.run.bankGatedFraction[b];
    }
    for (double &v : avg)
        v /= static_cast<double>(results.size());

    TextTable t({"bank", "gated-cycle fraction"});
    for (u32 b = 0; b < num_banks; ++b)
        t.addRow({std::to_string(b), fmtPercent(avg[b])});
    t.print(std::cout);

    // The Fig 10 shape check: within each cluster the last bank gates
    // at least as often as the first.
    std::cout << "\ncluster summary (first bank -> last bank):\n";
    for (u32 c = 0; c < 4; ++c) {
        std::cout << "  cluster " << c << ": "
                  << fmtPercent(avg[c * 8]) << " -> "
                  << fmtPercent(avg[c * 8 + 7]) << '\n';
    }
    std::cout << "(paper: gated fraction increases toward higher banks "
                 "in each 8-bank cluster; baseline has zero gating)\n";
    return 0;
}
