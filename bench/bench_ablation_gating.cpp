/**
 * @file
 * Ablation: isolate the two savings mechanisms — bank-access reduction
 * (dynamic) vs. bank power gating (leakage) — by running the
 * compressed design with gating disabled.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Power-gating contribution ablation",
                  "the Sec. 5.3 mechanism split");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const auto base = bench::runSelected(opt, base_cfg);

    ExperimentConfig nogate_cfg;
    nogate_cfg.enableGating = false;
    const auto nogate = bench::runSelected(opt, nogate_cfg);

    ExperimentConfig full_cfg;
    const auto full = bench::runSelected(opt, full_cfg);

    TextTable t({"bench", "wc-no-gating", "wc-full", "gating share"});
    std::vector<double> ng, fl;
    for (std::size_t i = 0; i < base.size(); ++i) {
        const double bt = base[i].run.meter.breakdown().totalPj();
        const double a = nogate[i].run.meter.breakdown().totalPj() / bt;
        const double b = full[i].run.meter.breakdown().totalPj() / bt;
        ng.push_back(a);
        fl.push_back(b);
        t.addRow({base[i].workload, fmtDouble(a, 3), fmtDouble(b, 3),
                  fmtPercent(a - b)});
    }
    t.addRow({"average", fmtDouble(mean(ng), 3), fmtDouble(mean(fl), 3),
              fmtPercent(mean(ng) - mean(fl))});
    t.print(std::cout);

    std::cout << "\ncompression alone saves "
              << fmtPercent(1.0 - mean(ng))
              << "; adding bank gating brings the total to "
              << fmtPercent(1.0 - mean(fl)) << ".\n";
    return 0;
}
