/**
 * @file
 * Shared scaffolding for the per-figure bench binaries: suite runners
 * with benchmark filtering, and the normalized-energy helpers every
 * energy figure uses.
 */

#ifndef WARPCOMP_BENCH_BENCH_COMMON_HPP
#define WARPCOMP_BENCH_BENCH_COMMON_HPP

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "power/report.hpp"

namespace warpcomp {
namespace bench {

/** Workload list honouring --only. */
inline std::vector<std::string>
selectedWorkloads(const HarnessOptions &opt)
{
    if (opt.only.empty())
        return workloadNames();
    return {opt.only};
}

/**
 * Run the selected workloads under one config on the parallel runner
 * (--threads=N; 0 = hardware concurrency). Output is bit-identical to
 * the old serial loop — see runWorkloadsParallel.
 */
inline std::vector<ExperimentResult>
runSelected(const HarnessOptions &opt, ExperimentConfig cfg)
{
    cfg.scale = opt.scale;
    cfg.numSms = opt.numSms;
    return runWorkloadsParallel(selectedWorkloads(opt), cfg, opt.threads);
}

/** Total register-file energy of one run under given constants. */
inline double
totalEnergy(const ExperimentResult &r, const EnergyParams &params)
{
    return r.run.meter.breakdownWith(params).totalPj();
}

/** Standard figure banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "== " << title << " ==\n"
              << "(reproduces " << paper_ref << " of Lee et al., "
              << "Warped-Compression, ISCA 2015)\n\n";
}

} // namespace bench
} // namespace warpcomp

#endif // WARPCOMP_BENCH_BENCH_COMMON_HPP
