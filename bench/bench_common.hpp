/**
 * @file
 * Shared scaffolding for the per-figure bench binaries: suite runners
 * with benchmark filtering, and the normalized-energy helpers every
 * energy figure uses.
 */

#ifndef WARPCOMP_BENCH_BENCH_COMMON_HPP
#define WARPCOMP_BENCH_BENCH_COMMON_HPP

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "frontend/frontend.hpp"
#include "harness/experiment.hpp"
#include "harness/perf_json.hpp"
#include "harness/thread_pool.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/stats_json.hpp"
#include "power/report.hpp"

namespace warpcomp {
namespace bench {

/** Workload list honouring --kernel and --only (in that order). */
inline std::vector<std::string>
selectedWorkloads(const HarnessOptions &opt)
{
    if (!opt.kernelPath.empty())
        return {kernelFileSpec(opt.kernelPath, opt.kernelEntry)};
    if (opt.only.empty())
        return workloadNames();
    return {opt.only};
}

/**
 * Run the selected workloads under one config on the parallel runner
 * (--threads=N; 0 = hardware concurrency). Output is bit-identical to
 * the old serial loop — see runWorkloadsParallel.
 *
 * Every call is wall-clock timed; with --json=FILE the run is appended
 * to the process perf record flushed at exit (see PerfRecorder). @p
 * label names the suite in that record ("suite N" when omitted).
 *
 * Observability: --stats-json=FILE arms the StatsRecorder (every suite
 * is recorded, flushed at exit); --trace=FILE writes a Chrome trace of
 * the FIRST suite the process runs and requires --only so the file
 * holds exactly one workload's lanes; --trace-out=FILE streams the
 * FIRST suite's full event record to a binary dump for offline
 * analysis with `wc_trace` (same --only requirement, same optional
 * --trace START,END window). All three enable windowed counters at
 * the --trace-window interval.
 */
inline std::vector<ExperimentResult>
runSelected(const HarnessOptions &opt, ExperimentConfig cfg,
            std::string label = "")
{
    cfg.scale = opt.scale;
    cfg.numSms = opt.numSms;
    cfg.skipIdle = !opt.noSkip;
    if (opt.faults.enabled())
        cfg.faults = opt.faults;
    if (opt.seu.enabled())
        cfg.seu = opt.seu;
    if (opt.hangBudget > 0)
        cfg.faults.hangCycles = opt.hangBudget;
    if (!opt.jsonPath.empty())
        perfRecorder().setOutput(opt.benchName, opt.jsonPath);
    if (!opt.statsJsonPath.empty())
        statsRecorder().setOutput(opt.benchName, opt.statsJsonPath);

    static u32 suite_counter = 0;
    ++suite_counter;
    const std::string suite_label = label.empty()
        ? "suite " + std::to_string(suite_counter) : std::move(label);

    if (!opt.tracePath.empty() || !opt.statsJsonPath.empty() ||
        !opt.traceOutPath.empty())
        cfg.obs.windowInterval = opt.traceWindow;
    static bool trace_taken = false;
    const bool trace_this = !opt.tracePath.empty() && !trace_taken;
    if (trace_this) {
        trace_taken = true;
        if (opt.only.empty())
            WC_FATAL("--trace requires --only=WORKLOAD (one trace file "
                     "holds one workload's warp/bank lanes)");
        cfg.obs.trace = true;
        cfg.obs.traceStart = opt.traceStart;
        cfg.obs.traceEnd = opt.traceEnd;
    }
    static bool stream_taken = false;
    const bool stream_this = !opt.traceOutPath.empty() && !stream_taken;
    if (stream_this) {
        stream_taken = true;
        if (opt.only.empty())
            WC_FATAL("--trace-out requires --only=WORKLOAD (one dump "
                     "holds one workload's event record)");
        cfg.obs.streamPath = opt.traceOutPath;
        cfg.obs.streamLabel = suite_label;
        cfg.obs.traceStart = opt.traceStart;
        cfg.obs.traceEnd = opt.traceEnd;
    }

    const auto t0 = std::chrono::steady_clock::now();
    auto results =
        runWorkloadsParallel(selectedWorkloads(opt), cfg, opt.threads);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;

    if (trace_this && !results.empty() &&
        results.front().run.obs != nullptr) {
        ChromeTraceMeta meta;
        meta.workload = results.front().workload;
        meta.config = suite_label;
        meta.numSms = cfg.numSms;
        meta.numBanks = makeGpuParams(cfg).sm.regfile.numBanks;
        meta.cycles = results.front().run.cycles;
        std::ofstream os(opt.tracePath);
        if (!os)
            WC_FATAL("cannot write trace to '" << opt.tracePath << "'");
        writeChromeTrace(os, *results.front().run.obs, meta);
    }

    // Ring wrap-around loses the oldest events; that is invisible in
    // the trace file itself, so say it out loud and name the fix.
    if (opt.traceOutPath.empty()) {
        for (const ExperimentResult &r : results) {
            if (r.run.obs == nullptr)
                continue;
            const u64 dropped = r.run.obs->ring().dropped();
            if (dropped > 0)
                std::cerr << "warning: trace ring dropped " << dropped
                          << " events for '" << r.workload
                          << "' (oldest overwritten); stream the full "
                             "run with --trace-out=FILE\n";
        }
    }

    if (statsRecorder().enabled()) {
        StatsSuiteRecord rec;
        rec.label = suite_label;
        rec.numSms = cfg.numSms;
        rec.scale = cfg.scale;
        rec.seedSalt = cfg.seedSalt;
        for (const ExperimentResult &r : results)
            rec.rows.push_back({r.workload, r.run, r.frontend,
                                r.imageSha});
        statsRecorder().addSuite(std::move(rec));
    }

    if (perfRecorder().enabled()) {
        PerfSuiteRecord rec;
        rec.label = suite_label;
        rec.threads = opt.threads;
        rec.resolvedThreads = resolveThreadCount(opt.threads);
        rec.seedSalt = cfg.seedSalt;
        rec.faultBer = cfg.faults.ber;
        rec.faultPolicy = faultPolicyName(cfg.faults.policy);
        rec.faultSeed = cfg.faults.seed;
        rec.seuRate = cfg.seu.flipsPerCycle;
        rec.seuScheme = seuSchemeName(cfg.seu.scheme);
        rec.seuScrubInterval = cfg.seu.scrubInterval;
        rec.wallSeconds = wall.count();
        for (const ExperimentResult &r : results) {
            rec.totalCycles += r.run.cycles;
            rec.rows.push_back({r.workload, r.run.cycles, r.wallSeconds,
                                r.frontend, r.imageSha});
        }
        perfRecorder().addSuite(std::move(rec));
    }
    return results;
}

/** Total register-file energy of one run under given constants. */
inline double
totalEnergy(const ExperimentResult &r, const EnergyParams &params)
{
    return r.run.meter.breakdownWith(params).totalPj();
}

/** Standard figure banner. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "== " << title << " ==\n"
              << "(reproduces " << paper_ref << " of Lee et al., "
              << "Warped-Compression, ISCA 2015)\n\n";
}

} // namespace bench
} // namespace warpcomp

#endif // WARPCOMP_BENCH_BENCH_COMMON_HPP
