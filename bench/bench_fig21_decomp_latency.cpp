/**
 * @file
 * Fig 21: execution-time sensitivity to decompression latency (2/4/8
 * cycles; the default design uses 1), normalized to the
 * no-compression baseline. Decompression sits on the operand-read
 * critical path, so it costs more than compression latency.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Execution time vs decompression latency",
                  "Figure 21");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const auto base = bench::runSelected(opt, base_cfg);

    const u32 latencies[] = {2, 4, 8};
    const auto names = bench::selectedWorkloads(opt);
    std::vector<std::vector<double>> rows(names.size());
    std::vector<double> col_means(3, 0.0);
    for (std::size_t s = 0; s < 3; ++s) {
        ExperimentConfig cfg;
        cfg.decompressLatency = latencies[s];
        const auto results = bench::runSelected(opt, cfg);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const double n = static_cast<double>(results[i].run.cycles) /
                static_cast<double>(base[i].run.cycles);
            rows[i].push_back(n);
            col_means[s] += n;
        }
    }
    for (double &m : col_means)
        m /= static_cast<double>(names.size());

    TextTable t({"bench", "lat=2", "lat=4", "lat=8"});
    for (std::size_t i = 0; i < names.size(); ++i)
        t.addRow(names[i], rows[i], 3);
    t.addRow("average", col_means, 3);
    t.print(std::cout);

    std::cout << "\naverage slowdown at 8-cycle decompression latency: "
              << fmtPercent(col_means[2] - 1.0) << '\n';
    return 0;
}
