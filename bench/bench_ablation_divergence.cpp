/**
 * @file
 * Ablation (Sec. 5.2 design choice): the shipped write-uncompressed +
 * dummy-MOV policy vs. the rejected merge-buffer alternative that
 * reads, merges, and recompresses divergent writes. The paper rejects
 * the buffer on area/power grounds; this quantifies the energy and
 * performance the buffer would buy on our suite.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Divergence-handling policy ablation",
                  "the Sec. 5.2 design discussion");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const auto base = bench::runSelected(opt, base_cfg);

    ExperimentConfig unc_cfg;   // shipped policy
    const auto unc = bench::runSelected(opt, unc_cfg);

    ExperimentConfig merge_cfg;
    merge_cfg.divPolicy = DivergencePolicy::MergeRecompress;
    const auto merge = bench::runSelected(opt, merge_cfg);

    TextTable t({"bench", "unc.energy", "merge.energy", "unc.cycles",
                 "merge.cycles", "unc.movs", "merge.movs"});
    std::vector<double> eu, em, cu, cm;
    for (std::size_t i = 0; i < base.size(); ++i) {
        const double bt = base[i].run.meter.breakdown().totalPj();
        const double bc = static_cast<double>(base[i].run.cycles);
        eu.push_back(unc[i].run.meter.breakdown().totalPj() / bt);
        em.push_back(merge[i].run.meter.breakdown().totalPj() / bt);
        cu.push_back(unc[i].run.cycles / bc);
        cm.push_back(merge[i].run.cycles / bc);
        t.addRow({base[i].workload, fmtDouble(eu.back(), 3),
                  fmtDouble(em.back(), 3), fmtDouble(cu.back(), 3),
                  fmtDouble(cm.back(), 3),
                  std::to_string(unc[i].run.stats.dummyMovs),
                  std::to_string(merge[i].run.stats.dummyMovs)});
    }
    t.addRow({"average", fmtDouble(mean(eu), 3), fmtDouble(mean(em), 3),
              fmtDouble(mean(cu), 3), fmtDouble(mean(cm), 3), "", ""});
    t.print(std::cout);

    std::cout << "\nmerge-recompress removes every dummy MOV and keeps "
                 "divergent registers compressed;\nthe energy delta ("
              << fmtPercent(mean(eu) - mean(em))
              << " of baseline) is what the paper's rejected buffer "
                 "design would recover.\n";
    return 0;
}
