/**
 * @file
 * Transient-fault (SEU) sweep: silent-corruption rate, detected
 * uncorrectable events, execution time, and register-file energy for
 * the four protection schemes (Unprotected / Ecc / Scrub / EccScrub),
 * under both the compressed (Warped) and uncompressed (None) register
 * file, over the full workload suite. A second section sweeps the
 * scrub period at a fixed rate to expose the scrub-energy vs
 * double-bit-loss tradeoff.
 *
 * Emits a deterministic JSON document on stdout — every field is a
 * pure function of (seed, config), so fixed seeds give byte-identical
 * output run over run and across --threads values (the CI determinism
 * gate diffs two runs of this binary).
 *
 * Under `--isolate` every grid point runs in a supervised child
 * process (watchdog, retry/backoff, optional `--journal`/`--resume`);
 * a point that exhausts its attempts is counted in the `failed` field
 * and dropped from the averages instead of aborting the sweep. The
 * default in-process path always reports `failed: 0`.
 */

#include <array>

#include "bench_common.hpp"
#include "common/json_writer.hpp"
#include "sweep/sweep.hpp"

using namespace warpcomp;

namespace {

constexpr std::array<double, 4> kRates = {1e-5, 1e-4, 1e-3, 1e-2};
constexpr std::array<SeuScheme, 4> kSchemes = {
    SeuScheme::Unprotected, SeuScheme::Ecc, SeuScheme::Scrub,
    SeuScheme::EccScrub};
constexpr std::array<CompressionScheme, 2> kCompression = {
    CompressionScheme::Warped, CompressionScheme::None};
constexpr std::array<Cycle, 4> kScrubIntervals = {16, 64, 256, 1024};
constexpr double kScrubSweepRate = 1e-3;

/** Unprotected runs at high rates can livelock on corrupted loop
 *  state; bound them so the sweep terminates (a tripped budget is
 *  reported as hung, not silently dropped). */
constexpr Cycle kHangBudget = 2'000'000;

/** One sweep point aggregated over the workload suite. */
struct SeuSweepRow
{
    ExperimentConfig cfg;
    /** Index into the per-compression reference runs. */
    std::size_t refIndex = 0;
    SeuStats seu;
    u64 unrecoverableAccesses = 0;  ///< from a composed stuck-at map
    double relCycles = 1.0;         ///< geomean vs same-compression ref
    double relEnergy = 1.0;         ///< suite energy vs that ref
    u32 corruptedRuns = 0;          ///< runs with any silent corruption
    u32 unschedulable = 0;
    u32 hung = 0;
    u32 failed = 0;                 ///< isolated points past their attempts
};

void
writePoint(JsonWriter &w, const SeuSweepRow &p, std::size_t workloads)
{
    w.beginObject();
    w.field("rate", p.cfg.seu.flipsPerCycle);
    w.field("scheme", seuSchemeName(p.cfg.seu.scheme));
    w.field("compression", schemeName(p.cfg.scheme));
    w.field("scrub_interval", p.cfg.seu.scrubInterval);
    w.field("corrupted_runs", p.corruptedRuns);
    w.field("corrupted_fraction",
            workloads > 0 ? static_cast<double>(p.corruptedRuns) /
                                static_cast<double>(workloads)
                          : 0.0);
    w.field("flips", p.seu.flips);
    w.field("live_hits", p.seu.liveHits);
    w.field("corrupted_reads", p.seu.corruptedReads);
    w.field("amplified_reads", p.seu.amplifiedReads);
    w.field("ecc_corrected", p.seu.eccCorrectedReads);
    w.field("detected_uncorrectable", p.seu.detectedUncorrectable);
    w.field("scrub_writes", p.seu.scrubWrites);
    w.field("scrub_corrected", p.seu.scrubCorrected);
    w.field("unrecoverable_accesses", p.unrecoverableAccesses);
    w.field("rel_cycles", p.relCycles);
    w.field("rel_energy", p.relEnergy);
    w.field("unschedulable", p.unschedulable);
    w.field("hung", p.hung);
    w.field("failed", p.failed);
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    const SweepOptions sopt = parseSweepArgs(argc, argv);
    if (sopt.isChild())
        return runSweepChildPoint(sopt);

    ExperimentConfig base;
    base.scale = opt.scale;
    base.numSms = opt.numSms;
    base.faults = opt.faults;       // compose with a stuck-at map if asked
    base.faults.hangCycles =
        opt.hangBudget > 0 ? opt.hangBudget : kHangBudget;
    base.seu.seed = opt.seu.seed;

    // Configs 0..1 are the SEU-free references per compression scheme;
    // the rest is the rate x protection x compression cross product
    // followed by the scrub-period sweep, all flattened onto one pool.
    std::vector<ExperimentConfig> configs;
    std::vector<std::size_t> ref_of;    // per sweep config (offset by 2)
    for (CompressionScheme comp : kCompression) {
        ExperimentConfig cfg = base;
        cfg.scheme = comp;
        configs.push_back(cfg);
    }
    for (std::size_t ci = 0; ci < kCompression.size(); ++ci) {
        for (double rate : kRates) {
            for (SeuScheme scheme : kSchemes) {
                ExperimentConfig cfg = base;
                cfg.scheme = kCompression[ci];
                cfg.seu.flipsPerCycle = rate;
                cfg.seu.scheme = scheme;
                configs.push_back(cfg);
                ref_of.push_back(ci);
            }
        }
    }
    const std::size_t scrub_begin = configs.size();
    for (Cycle interval : kScrubIntervals) {
        for (SeuScheme scheme : {SeuScheme::Scrub, SeuScheme::EccScrub}) {
            ExperimentConfig cfg = base;
            cfg.scheme = CompressionScheme::Warped;
            cfg.seu.flipsPerCycle = kScrubSweepRate;
            cfg.seu.scheme = scheme;
            cfg.seu.scrubInterval = interval;
            configs.push_back(cfg);
            ref_of.push_back(0);
        }
    }

    const std::vector<std::string> workloads = bench::selectedWorkloads(opt);
    const auto grid =
        runPointsGrid(argv[0], configs, workloads, sopt, opt.threads);

    std::array<double, 2> ref_energy_total{};
    for (std::size_t ci = 0; ci < kCompression.size(); ++ci)
        for (const auto &r : grid[ci])
            if (r.has_value())
                ref_energy_total[ci] += r->energyPj;

    std::vector<SeuSweepRow> points;
    for (std::size_t c = kCompression.size(); c < grid.size(); ++c) {
        const auto &runs = grid[c];
        const auto &ref = grid[ref_of[c - kCompression.size()]];
        SeuSweepRow pt;
        pt.cfg = configs[c];
        pt.refIndex = ref_of[c - kCompression.size()];

        std::vector<double> cyc_ratios;
        double energy = 0.0;
        double ref_energy = 0.0;
        for (std::size_t w = 0; w < runs.size(); ++w) {
            if (!runs[w].has_value()) {
                ++pt.failed;
                continue;
            }
            const PointStats &run = *runs[w];
            pt.seu.merge(run.seu);
            pt.unrecoverableAccesses += run.fault.unrecoverableAccesses;
            if (run.seu.corruptedReads > 0 || run.hung ||
                run.fault.unrecoverableAccesses > 0)
                ++pt.corruptedRuns;
            if (run.unschedulable || run.hung) {
                // No meaningful cycle/energy figure for a run that
                // never launched or never finished.
                pt.unschedulable += run.unschedulable ? 1 : 0;
                pt.hung += run.hung ? 1 : 0;
                continue;
            }
            if (!ref[w].has_value())
                continue;   // baseline point failed: no ratio to form
            cyc_ratios.push_back(static_cast<double>(run.cycles) /
                                 static_cast<double>(ref[w]->cycles));
            energy += run.energyPj;
            ref_energy += ref[w]->energyPj;
        }
        pt.relCycles = geomean(cyc_ratios);
        pt.relEnergy = ref_energy > 0.0 ? energy / ref_energy : 0.0;
        points.push_back(pt);
    }
    const std::size_t n_cross = scrub_begin - kCompression.size();

    JsonWriter w(std::cout);
    w.beginObject();
    w.field("workloads", static_cast<u64>(workloads.size()));
    w.field("sms", opt.numSms);
    w.field("seu_seed", base.seu.seed);
    w.field("fault_ber", base.faults.ber);
    w.field("ecc_storage_overhead", base.energy.eccStorageOverhead);
    w.key("baseline_energy_pj");
    w.beginObject();
    for (std::size_t ci = 0; ci < kCompression.size(); ++ci)
        w.field(schemeName(kCompression[ci]), ref_energy_total[ci]);
    w.endObject();
    w.key("points");
    w.beginArray();
    for (std::size_t i = 0; i < n_cross; ++i)
        writePoint(w, points[i], workloads.size());
    w.endArray();
    w.key("scrub_period_sweep");
    w.beginArray();
    for (std::size_t i = n_cross; i < points.size(); ++i)
        writePoint(w, points[i], workloads.size());
    w.endArray();
    w.endObject();
    return 0;
}
