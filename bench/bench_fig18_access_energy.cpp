/**
 * @file
 * Fig 18: sensitivity to register bank access energy — both designs
 * re-priced with access energy at 1.0x/1.5x/2.0x/2.5x (an optimistic
 * view where data movement dominates).
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Energy vs per-bank access energy", "Figure 18");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    ExperimentConfig wc_cfg;
    const auto base = bench::runSelected(opt, base_cfg);
    const auto wc = bench::runSelected(opt, wc_cfg);

    const double scales[] = {1.0, 1.5, 2.0, 2.5};
    TextTable t({"bench", "1.0x", "1.5x", "2.0x", "2.5x"});
    std::vector<double> col_means(4, 0.0);
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::vector<double> row;
        for (std::size_t s = 0; s < 4; ++s) {
            EnergyParams p;
            p.accessScale = scales[s];
            const double n = bench::totalEnergy(wc[i], p) /
                bench::totalEnergy(base[i], p);
            row.push_back(n);
            col_means[s] += n;
        }
        t.addRow(base[i].workload, row, 3);
    }
    for (double &m : col_means)
        m /= static_cast<double>(base.size());
    t.addRow("average", col_means, 3);
    t.print(std::cout);

    std::cout << "\nat 2.5x access energy, savings grow to "
              << fmtPercent(1.0 - col_means[3])
              << "  (paper: 35% under the optimistic assumption)\n";
    return 0;
}
