/**
 * @file
 * Fig 11: dummy decompress-MOV instructions as a fraction of the total
 * instruction count.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Dummy MOV instruction overhead", "Figure 11");

    ExperimentConfig cfg;
    const auto results = bench::runSelected(opt, cfg);

    TextTable t({"bench", "MOV fraction"});
    std::vector<double> fracs;
    for (const auto &r : results) {
        const double f = static_cast<double>(r.run.stats.dummyMovs) /
            static_cast<double>(r.run.stats.issued);
        fracs.push_back(f);
        t.addRow({r.workload, fmtPercent(f, 2)});
    }
    t.addRow({"average", fmtPercent(mean(fracs), 2)});
    t.print(std::cout);

    std::cout << "\naverage dummy-MOV fraction: "
              << fmtPercent(mean(fracs), 2) << "  (paper: < 2%)\n";
    return 0;
}
