/**
 * @file
 * Fig 8: compression ratio in divergent vs non-divergent regions,
 * measured with the decompress-update-recompress assumption the paper
 * uses for divergent writes.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Compression ratio by execution phase", "Figure 8");

    ExperimentConfig cfg;
    const auto results = bench::runSelected(opt, cfg);

    TextTable t({"bench", "non-divergent", "divergent"});
    std::vector<double> nd, d;
    for (const auto &r : results) {
        const double rn = r.run.stats.ratio.ratio(kNonDivergent);
        const double rd = r.run.stats.ratio.writes(kDivergent) > 0
            ? r.run.stats.ratio.ratio(kDivergent) : 1.0;
        nd.push_back(rn);
        if (r.run.stats.ratio.writes(kDivergent) > 0)
            d.push_back(rd);
        std::vector<std::string> row = {r.workload, fmtDouble(rn, 2),
            r.run.stats.ratio.writes(kDivergent) > 0 ? fmtDouble(rd, 2)
                                                     : "N/A"};
        t.addRow(row);
    }
    t.addRow("average", {mean(nd), mean(d)}, 2);
    t.print(std::cout);

    std::cout << "\naverage ratio non-divergent " << fmtDouble(mean(nd), 2)
              << " vs divergent " << fmtDouble(mean(d), 2)
              << "  (paper: 2.5 vs 1.3)\n";
    return 0;
}
