/**
 * @file
 * Fig 16: register-file energy for the single-choice static schemes,
 * normalized to the no-compression baseline.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Energy per compression parameter choice", "Figure 16");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const auto base = bench::runSelected(opt, base_cfg);

    const CompressionScheme schemes[] = {
        CompressionScheme::Warped, CompressionScheme::Fixed40,
        CompressionScheme::Fixed41, CompressionScheme::Fixed42};

    const auto names = bench::selectedWorkloads(opt);
    std::vector<std::vector<double>> rows(names.size());
    std::vector<double> col_means;
    for (CompressionScheme s : schemes) {
        ExperimentConfig cfg;
        cfg.scheme = s;
        const auto results = bench::runSelected(opt, cfg);
        std::vector<double> norms;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const double n = results[i].run.meter.breakdown().totalPj() /
                base[i].run.meter.breakdown().totalPj();
            rows[i].push_back(n);
            norms.push_back(n);
        }
        col_means.push_back(mean(norms));
    }

    TextTable t({"bench", "warped", "<4,0>", "<4,1>", "<4,2>"});
    for (std::size_t i = 0; i < names.size(); ++i)
        t.addRow(names[i], rows[i], 3);
    t.addRow("average", col_means, 3);
    t.print(std::cout);

    std::cout << "\n(paper: the dynamic scheme consumes the least energy; "
                 "<4,0>-only loses part of the dynamic-energy savings)\n";
    return 0;
}
