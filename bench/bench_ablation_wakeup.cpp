/**
 * @file
 * Ablation: bank wakeup latency (Table 2 assumes 10 cycles). Sweeps
 * 0/5/10/20/40 cycles and reports both execution time and energy —
 * slower wakeups stall first-touch writes but change nothing else.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Bank wakeup-latency ablation",
                  "the Table 2 wakeup assumption");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const auto base = bench::runSelected(opt, base_cfg);

    TextTable t({"wakeup (cycles)", "cycles vs baseline",
                 "energy vs baseline"});
    for (u32 wake : {0u, 5u, 10u, 20u, 40u}) {
        ExperimentConfig cfg;
        cfg.wakeupLatency = wake;
        const auto wc = bench::runSelected(opt, cfg);
        std::vector<double> cyc, en;
        for (std::size_t i = 0; i < base.size(); ++i) {
            cyc.push_back(static_cast<double>(wc[i].run.cycles) /
                          static_cast<double>(base[i].run.cycles));
            en.push_back(wc[i].run.meter.breakdown().totalPj() /
                         base[i].run.meter.breakdown().totalPj());
        }
        t.addRow({std::to_string(wake), fmtDouble(mean(cyc), 3),
                  fmtDouble(mean(en), 3)});
    }
    t.print(std::cout);

    std::cout << "\n(first-touch wakeup stalls are the dominant source "
                 "of the technique's small performance cost)\n";
    return 0;
}
