/**
 * @file
 * Fig 19: register-file energy vs wire activity factor (the fraction
 * of bank-to-collector wires toggling per transfer), suite average.
 * Table 3's 9.6 pJ default corresponds to 25% activity of the
 * 38.4 pJ/mm full-swing energy.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Energy vs wire activity", "Figure 19");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    ExperimentConfig wc_cfg;
    const auto base = bench::runSelected(opt, base_cfg);
    const auto wc = bench::runSelected(opt, wc_cfg);

    TextTable t({"wire activity", "baseline", "warped-compression",
                 "savings"});
    for (double act : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        EnergyParams p;
        p.wireActivity = act;
        double bsum = 0.0, wsum = 0.0;
        for (std::size_t i = 0; i < base.size(); ++i) {
            const double bt = bench::totalEnergy(base[i], p);
            bsum += 1.0;
            wsum += bench::totalEnergy(wc[i], p) / bt;
        }
        const double norm = wsum / bsum;
        t.addRow({fmtPercent(act, 0), "1.000", fmtDouble(norm, 3),
                  fmtPercent(1.0 - norm)});
    }
    t.print(std::cout);

    std::cout << "\n(paper: savings grow with wire activity, reaching "
                 "31% at 100%)\n";
    return 0;
}
