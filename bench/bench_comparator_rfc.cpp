/**
 * @file
 * Comparator: the register file cache ([21] in the paper, Gebhart et
 * al. ISCA'11) against and combined with warped-compression. The RFC
 * filters operand reads through a small per-warp cache; compression
 * shrinks every remaining bank access. The two attack the same dynamic
 * energy from different angles and largely compose.
 */

#include "bench_common.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    bench::banner("Register-file-cache comparator",
                  "the related-work comparison in Sec. 7");

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const auto base = bench::runSelected(opt, base_cfg);

    struct Config
    {
        const char *name;
        CompressionScheme scheme;
        u32 rfc;
    };
    const Config configs[] = {
        {"rfc-6/warp", CompressionScheme::None, 6},
        {"warped-compression", CompressionScheme::Warped, 0},
        {"wc + rfc-6/warp", CompressionScheme::Warped, 6},
    };

    TextTable t({"config", "bank accesses", "rfc hit rate",
                 "total vs baseline"});
    u64 base_accesses = 0;
    for (const auto &r : base)
        base_accesses += r.run.meter.bankAccesses();
    t.addRow({"baseline", "1.000", "-", "1.000"});

    for (const Config &c : configs) {
        ExperimentConfig cfg;
        cfg.scheme = c.scheme;
        cfg.rfcEntries = c.rfc;
        const auto results = bench::runSelected(opt, cfg);
        u64 accesses = 0, hits = 0, misses = 0;
        std::vector<double> tot;
        for (std::size_t i = 0; i < base.size(); ++i) {
            accesses += results[i].run.meter.bankAccesses();
            hits += results[i].run.rfcHits;
            misses += results[i].run.rfcMisses;
            tot.push_back(results[i].run.meter.breakdown().totalPj() /
                          base[i].run.meter.breakdown().totalPj());
        }
        const double hit_rate = hits + misses == 0 ? 0.0
            : static_cast<double>(hits) /
                  static_cast<double>(hits + misses);
        t.addRow({c.name,
                  fmtDouble(static_cast<double>(accesses) /
                                static_cast<double>(base_accesses), 3),
                  c.rfc == 0 ? "-" : fmtPercent(hit_rate),
                  fmtDouble(mean(tot), 3)});
    }
    t.print(std::cout);

    std::cout << "\n(the RFC removes reads it captures; compression "
                 "shrinks every access that still reaches the banks — "
                 "combining both beats either alone)\n";
    return 0;
}
