#!/usr/bin/env python3
"""CI perf gate: compare a fresh bench_perf record against a baseline.

Usage: perf_gate.py BASELINE.json CURRENT.json [--max-regress=0.10]

Both files are ``--json`` records written by ``bench_perf``. The gate

* exits 0 ("incomparable") without comparing when the build metadata
  (compiler, effective C++ flags, SIMD ISA) differs — an -O2 record
  measured against an -O3 build is not a simulator regression;
* exits 0 without comparing when the serial suites simulated different
  total cycles — the workload set or simulated behaviour changed on
  purpose, so wall clocks measure different work;
* exits 1 when the serial-suite wall clock regressed by more than
  ``--max-regress`` (default 10%);
* exits 2 ("no usable baseline") when either record is missing,
  unreadable, or not valid JSON — one line, no traceback. CI treats
  this as a skip on the first run of a new baseline cache, never as a
  pass or a crash;
* exits 0 otherwise, printing both wall clocks and the ratio.

Only the serial suite ("suite serial", threads == 1) is gated: parallel
wall clock depends on runner core count, which CI does not control.
"""

import argparse
import json
import sys

METADATA_KEYS = ("compiler", "cxx_flags", "simd_isa")

# Exit code for "no usable baseline": distinct from 0 (pass/skip) and
# 1 (regression) so CI can treat a missing or corrupt record as a skip
# on the first run without ever mistaking a crash for a pass.
EXIT_NO_BASELINE = 2


def load(path, role):
    """Parse one record, or None with a one-line message on any I/O or
    JSON problem (a half-written cache file must not crash the gate)."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print(f"perf gate: NO BASELINE — cannot read {role} "
              f"'{path}': {e.strerror or e}")
    except json.JSONDecodeError as e:
        print(f"perf gate: NO BASELINE — {role} '{path}' is not "
              f"valid JSON ({e.msg} at line {e.lineno})")
    return None


def serial_suite(record):
    """The serial suite of a bench_perf record, or None."""
    for suite in record.get("suites", []):
        if suite.get("label") == "suite serial":
            return suite
    # Fall back to any single-threaded suite (older records).
    for suite in record.get("suites", []):
        if suite.get("resolved_threads") == 1:
            return suite
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=0.10,
                    help="allowed fractional serial-wall-clock growth")
    args = ap.parse_args()

    base = load(args.baseline, "baseline")
    cur = load(args.current, "current record")
    if base is None or cur is None:
        return EXIT_NO_BASELINE

    for key in METADATA_KEYS:
        if base.get(key) != cur.get(key):
            print(f"perf gate: SKIP — {key} differs "
                  f"({base.get(key)!r} vs {cur.get(key)!r}); "
                  "records are not comparable")
            return 0

    base_suite = serial_suite(base)
    cur_suite = serial_suite(cur)
    if base_suite is None or cur_suite is None:
        print("perf gate: SKIP — no serial suite in one of the records")
        return 0

    base_cycles = base_suite.get("total_cycles")
    cur_cycles = cur_suite.get("total_cycles")
    if base_cycles != cur_cycles:
        print(f"perf gate: SKIP — simulated work changed "
              f"({base_cycles} vs {cur_cycles} total cycles); "
              "wall clocks measure different runs")
        return 0

    base_wall = base_suite["wall_seconds"]
    cur_wall = cur_suite["wall_seconds"]
    if base_wall <= 0:
        print("perf gate: SKIP — baseline wall clock is not positive")
        return 0

    ratio = cur_wall / base_wall
    verdict = "OK" if ratio <= 1.0 + args.max_regress else "FAIL"
    print(f"perf gate: {verdict} — serial wall {base_wall:.3f}s -> "
          f"{cur_wall:.3f}s ({ratio:.2%} of baseline, limit "
          f"{1.0 + args.max_regress:.2%})")
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
