#!/usr/bin/env python3
"""Minimal two-pass assembler for the warpcomp RV32IM kernel subset.

Turns the `.s` sources under examples/kernels/ into the `.hex` images
the binary frontend loads, so the repository carries no cross-compiler
dependency: the checked-in `.hex` files are the build artifacts, and
this script is how they were produced (and how to regenerate them).

    python3 tools/rv32_asm.py examples/kernels/vecadd.s \
        -o examples/kernels/vecadd.hex

Supported surface (exactly what src/frontend accepts):
  - directives .name NAME / .block N / .smem BYTES (passed through)
  - labels `foo:` (emitted as `@foo` hex-image symbols)
  - RV32I integer core (no byte/halfword memory ops), RV32M,
  - `csrr rd, CSR` with CSR in {tid, ctaid, ntid, nctaid, laneid}
    or a numeric 0xCC0..0xCC4,
  - GPU conventions: `lds.w rd, off(rs1)`, `sts.w rs2, off(rs1)`,
    `fence` (CTA barrier), `ecall` (thread exit),
  - aliases: li, mv, not, neg, j, nop.
"""

import argparse
import re
import sys

ABI_REGS = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
    "a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

CSRS = {"tid": 0xCC0, "ctaid": 0xCC1, "ntid": 0xCC2, "nctaid": 0xCC3,
        "laneid": 0xCC4}

# mnemonic -> (funct3, funct7) for R-type ops at opcode 0x33
R_OPS = {
    "add": (0b000, 0b0000000), "sub": (0b000, 0b0100000),
    "sll": (0b001, 0b0000000), "slt": (0b010, 0b0000000),
    "sltu": (0b011, 0b0000000), "xor": (0b100, 0b0000000),
    "srl": (0b101, 0b0000000), "sra": (0b101, 0b0100000),
    "or": (0b110, 0b0000000), "and": (0b111, 0b0000000),
    "mul": (0b000, 0b0000001), "mulh": (0b001, 0b0000001),
    "mulhsu": (0b010, 0b0000001), "mulhu": (0b011, 0b0000001),
    "div": (0b100, 0b0000001), "divu": (0b101, 0b0000001),
    "rem": (0b110, 0b0000001), "remu": (0b111, 0b0000001),
}

# mnemonic -> funct3 for I-type ALU ops at opcode 0x13
I_OPS = {"addi": 0b000, "slti": 0b010, "sltiu": 0b011, "xori": 0b100,
         "ori": 0b110, "andi": 0b111}
SHIFT_OPS = {"slli": (0b001, 0b0000000), "srli": (0b101, 0b0000000),
             "srai": (0b101, 0b0100000)}

# mnemonic -> funct3 for branches at opcode 0x63
B_OPS = {"beq": 0b000, "bne": 0b001, "blt": 0b100, "bge": 0b101,
         "bltu": 0b110, "bgeu": 0b111}


class AsmError(Exception):
    pass


def reg(tok):
    tok = tok.strip().lower()
    if tok in ABI_REGS:
        return ABI_REGS[tok]
    if re.fullmatch(r"x([0-9]|[12][0-9]|3[01])", tok):
        return int(tok[1:])
    raise AsmError(f"bad register '{tok}'")


def intval(tok):
    tok = tok.strip()
    try:
        return int(tok, 0)
    except ValueError:
        raise AsmError(f"bad integer '{tok}'") from None


def mem_operand(tok):
    """Parse 'off(rs)' -> (off, rs)."""
    m = re.fullmatch(r"\s*(-?[\w]+)\s*\(\s*([\w]+)\s*\)\s*", tok)
    if not m:
        raise AsmError(f"bad memory operand '{tok}'")
    return intval(m.group(1)), reg(m.group(2))


def enc_r(f7, rs2, rs1, f3, rd, opcode=0x33):
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | \
           (rd << 7) | opcode


def enc_i(imm, rs1, f3, rd, opcode):
    if not -2048 <= imm <= 2047:
        raise AsmError(f"I-immediate {imm} out of range")
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | \
           (rd << 7) | opcode


def enc_s(imm, rs2, rs1, f3, opcode):
    if not -2048 <= imm <= 2047:
        raise AsmError(f"S-immediate {imm} out of range")
    imm &= 0xFFF
    return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | \
           (f3 << 12) | ((imm & 0x1F) << 7) | opcode


def enc_b(imm, rs2, rs1, f3):
    if imm % 2 or not -4096 <= imm <= 4094:
        raise AsmError(f"branch offset {imm} invalid")
    u = imm & 0x1FFF
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3F) << 25) | \
           (rs2 << 20) | (rs1 << 15) | (f3 << 12) | \
           (((u >> 1) & 0xF) << 8) | (((u >> 11) & 1) << 7) | 0x63


def enc_j(imm, rd):
    if imm % 2 or not -(1 << 20) <= imm <= (1 << 20) - 2:
        raise AsmError(f"jump offset {imm} invalid")
    u = imm & 0x1FFFFF
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3FF) << 21) | \
           (((u >> 11) & 1) << 20) | (((u >> 12) & 0xFF) << 12) | \
           (rd << 7) | 0x6F


def split_ops(rest):
    return [t.strip() for t in rest.split(",")] if rest.strip() else []


def assemble_line(mn, ops, pc, labels):
    """Encode one instruction; pc/labels in word units for branches."""

    def branch_off(target):
        if target not in labels:
            raise AsmError(f"undefined label '{target}'")
        return (labels[target] - pc) * 4

    if mn in R_OPS:
        f3, f7 = R_OPS[mn]
        rd, rs1, rs2 = reg(ops[0]), reg(ops[1]), reg(ops[2])
        return enc_r(f7, rs2, rs1, f3, rd)
    if mn in I_OPS:
        rd, rs1, imm = reg(ops[0]), reg(ops[1]), intval(ops[2])
        return enc_i(imm, rs1, I_OPS[mn], rd, 0x13)
    if mn in SHIFT_OPS:
        f3, f7 = SHIFT_OPS[mn]
        rd, rs1, sh = reg(ops[0]), reg(ops[1]), intval(ops[2])
        if not 0 <= sh <= 31:
            raise AsmError(f"shift amount {sh} out of range")
        return enc_i((f7 << 5) | sh, rs1, f3, rd, 0x13)
    if mn in B_OPS:
        rs1, rs2 = reg(ops[0]), reg(ops[1])
        return enc_b(branch_off(ops[2]), rs2, rs1, B_OPS[mn])
    if mn == "lw":
        rd = reg(ops[0])
        off, rs1 = mem_operand(ops[1])
        return enc_i(off, rs1, 0b010, rd, 0x03)
    if mn == "sw":
        rs2 = reg(ops[0])
        off, rs1 = mem_operand(ops[1])
        return enc_s(off, rs2, rs1, 0b010, 0x23)
    if mn == "lds.w":
        rd = reg(ops[0])
        off, rs1 = mem_operand(ops[1])
        return enc_i(off, rs1, 0b010, rd, 0x0B)
    if mn == "sts.w":
        rs2 = reg(ops[0])
        off, rs1 = mem_operand(ops[1])
        return enc_s(off, rs2, rs1, 0b010, 0x2B)
    if mn == "lui":
        return ((intval(ops[1]) & 0xFFFFF) << 12) | (reg(ops[0]) << 7) \
               | 0x37
    if mn == "csrr":
        rd = reg(ops[0])
        csr_tok = ops[1].strip().lower()
        csr = CSRS.get(csr_tok)
        if csr is None:
            csr = intval(ops[1])
        return (csr << 20) | (0 << 15) | (0b010 << 12) | (rd << 7) | 0x73
    if mn == "jal":
        if len(ops) == 1:
            return enc_j(branch_off(ops[0]), 0)
        return enc_j(branch_off(ops[1]), reg(ops[0]))
    if mn == "j":
        return enc_j(branch_off(ops[0]), 0)
    if mn == "li":
        return enc_i(intval(ops[1]), 0, 0b000, reg(ops[0]), 0x13)
    if mn == "mv":
        return enc_i(0, reg(ops[1]), 0b000, reg(ops[0]), 0x13)
    if mn == "not":
        return enc_i(-1, reg(ops[1]), 0b100, reg(ops[0]), 0x13)
    if mn == "neg":
        return enc_r(0b0100000, reg(ops[1]), 0, 0b000, reg(ops[0]))
    if mn == "nop":
        return enc_i(0, 0, 0b000, 0, 0x13)
    if mn == "fence":
        return 0x0000000F
    if mn == "ecall":
        return 0x00000073
    raise AsmError(f"unknown mnemonic '{mn}'")


def assemble(text, src_name):
    """Two passes: collect labels/word positions, then encode."""
    directives = []
    items = []          # ("label", name) | ("inst", lineno, mn, ops)
    word = 0
    labels = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            if parts[0] not in (".name", ".block", ".smem"):
                raise AsmError(f"{src_name}:{lineno}: unknown directive "
                               f"'{parts[0]}'")
            if len(parts) != 2:
                raise AsmError(f"{src_name}:{lineno}: '{parts[0]}' wants "
                               "one argument")
            directives.append(line)
            continue
        while line:
            m = re.match(r"^([A-Za-z_.][\w.]*)\s*:\s*", line)
            if m:
                label = m.group(1)
                if label in labels:
                    raise AsmError(f"{src_name}:{lineno}: duplicate "
                                   f"label '{label}'")
                labels[label] = word
                items.append(("label", label))
                line = line[m.end():]
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mn = parts[0].lower()
        ops = split_ops(parts[1]) if len(parts) > 1 else []
        items.append(("inst", lineno, mn, ops, line))
        word += 1

    out = [f"# generated by tools/rv32_asm.py from {src_name}"]
    out += directives
    pc = 0
    for item in items:
        if item[0] == "label":
            out.append(f"@{item[1]}")
            continue
        _, lineno, mn, ops, src = item
        try:
            encoded = assemble_line(mn, ops, pc, labels)
        except AsmError as e:
            raise AsmError(f"{src_name}:{lineno}: {e}") from None
        out.append(f"{encoded:08x}    # {src}")
        pc += 1
    return "\n".join(out) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("source")
    ap.add_argument("-o", "--output", required=True)
    args = ap.parse_args()

    with open(args.source, encoding="utf-8") as f:
        text = f.read()
    try:
        hex_text = assemble(text, args.source)
    except AsmError as e:
        print(f"rv32_asm: {e}", file=sys.stderr)
        return 1
    with open(args.output, "w", encoding="utf-8") as f:
        f.write(hex_text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
