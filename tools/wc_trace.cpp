/**
 * @file
 * wc_trace — offline analyzer for --trace-out dumps. Consumes a
 * streamed binary trace (DESIGN.md §9) without rerunning the
 * simulator:
 *
 *   wc_trace summary   DUMP [-o FILE]   provenance + event census
 *   wc_trace heatmap   DUMP [-o FILE]   bank-contention matrix
 *   wc_trace stalls    DUMP [-o FILE]   per-warp stall attribution
 *   wc_trace decisions DUMP [-o FILE]   BDI decision timelines
 *   wc_trace export --chrome DUMP [-o FILE]   Perfetto re-emission
 *
 * Reports go to stdout unless -o FILE is given. Exit codes: 0 ok,
 * 1 bad/truncated dump (structured JSON diagnostic on stderr — code +
 * detail, stable across versions, never a crash), 2 usage error.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json_writer.hpp"
#include "obs/trace_analyze.hpp"

namespace {

using namespace warpcomp;

int
usage()
{
    std::cerr
        << "usage: wc_trace summary|heatmap|stalls|decisions DUMP "
           "[-o FILE]\n"
           "       wc_trace export --chrome DUMP [-o FILE]\n";
    return 2;
}

/** Machine-readable load failure on stderr; exit 1. */
int
loadError(const TraceDumpError &err)
{
    JsonWriter w(std::cerr, JsonWriter::Style::Compact);
    w.beginObject();
    w.field("error", err.code);
    w.field("detail", err.detail);
    w.endObject();
    std::cerr << '\n';
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];

    std::string dump_path;
    std::string out_path;
    bool chrome = false;
    for (int i = 2; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--chrome") == 0) {
            chrome = true;
        } else if (std::strcmp(arg, "-o") == 0) {
            if (i + 1 >= argc)
                return usage();
            out_path = argv[++i];
        } else if (arg[0] == '-') {
            std::cerr << "wc_trace: unknown option '" << arg << "'\n";
            return usage();
        } else if (dump_path.empty()) {
            dump_path = arg;
        } else {
            return usage();
        }
    }
    if (dump_path.empty())
        return usage();

    void (*report)(std::ostream &, const TraceDump &) = nullptr;
    if (cmd == "summary") {
        report = writeDumpSummary;
    } else if (cmd == "heatmap") {
        report = writeBankHeatmap;
    } else if (cmd == "stalls") {
        report = writeStallReport;
    } else if (cmd == "decisions") {
        report = writeDecisionReport;
    } else if (cmd == "export") {
        if (!chrome) {
            std::cerr << "wc_trace: export needs --chrome (the only "
                         "export format so far)\n";
            return usage();
        }
        report = writeDumpChromeTrace;
    } else {
        std::cerr << "wc_trace: unknown subcommand '" << cmd << "'\n";
        return usage();
    }

    TraceDumpError err;
    const auto dump = loadTraceDump(dump_path, &err);
    if (!dump.has_value())
        return loadError(err);

    if (out_path.empty()) {
        report(std::cout, *dump);
        return 0;
    }
    std::ofstream os(out_path, std::ios::binary);
    if (!os) {
        std::cerr << "wc_trace: cannot write '" << out_path << "'\n";
        return 1;
    }
    report(os, *dump);
    return 0;
}
