
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bdi.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_bdi.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_bdi.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_control_flow_stress.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_control_flow_stress.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_control_flow_stress.cpp.o.d"
  "/root/repo/tests/test_divergence_policy.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_divergence_policy.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_divergence_policy.cpp.o.d"
  "/root/repo/tests/test_drowsy.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_drowsy.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_drowsy.cpp.o.d"
  "/root/repo/tests/test_figure_shapes.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_figure_shapes.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_figure_shapes.cpp.o.d"
  "/root/repo/tests/test_functional.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_functional.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_functional.cpp.o.d"
  "/root/repo/tests/test_gpu_capacity.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_gpu_capacity.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_gpu_capacity.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_regfile.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_regfile.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_regfile.cpp.o.d"
  "/root/repo/tests/test_rfc.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_rfc.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_rfc.cpp.o.d"
  "/root/repo/tests/test_schemes.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_schemes.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_schemes.cpp.o.d"
  "/root/repo/tests/test_sim_components.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_sim_components.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_sim_components.cpp.o.d"
  "/root/repo/tests/test_similarity.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_similarity.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_similarity.cpp.o.d"
  "/root/repo/tests/test_simt_stack.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_simt_stack.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_simt_stack.cpp.o.d"
  "/root/repo/tests/test_warp.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_warp.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_warp.cpp.o.d"
  "/root/repo/tests/test_workload_correctness.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_workload_correctness.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_workload_correctness.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/warpcomp_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/warpcomp_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/warpcomp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
