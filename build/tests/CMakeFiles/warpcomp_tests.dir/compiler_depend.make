# Empty compiler generated dependencies file for warpcomp_tests.
# This may be replaced when dependencies are built.
