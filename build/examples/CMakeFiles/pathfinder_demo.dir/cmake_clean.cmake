file(REMOVE_RECURSE
  "CMakeFiles/pathfinder_demo.dir/pathfinder_demo.cpp.o"
  "CMakeFiles/pathfinder_demo.dir/pathfinder_demo.cpp.o.d"
  "pathfinder_demo"
  "pathfinder_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathfinder_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
