# Empty compiler generated dependencies file for pathfinder_demo.
# This may be replaced when dependencies are built.
