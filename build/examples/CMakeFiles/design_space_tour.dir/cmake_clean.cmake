file(REMOVE_RECURSE
  "CMakeFiles/design_space_tour.dir/design_space_tour.cpp.o"
  "CMakeFiles/design_space_tour.dir/design_space_tour.cpp.o.d"
  "design_space_tour"
  "design_space_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
