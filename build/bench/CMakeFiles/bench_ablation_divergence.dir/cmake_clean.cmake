file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_divergence.dir/bench_ablation_divergence.cpp.o"
  "CMakeFiles/bench_ablation_divergence.dir/bench_ablation_divergence.cpp.o.d"
  "bench_ablation_divergence"
  "bench_ablation_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
