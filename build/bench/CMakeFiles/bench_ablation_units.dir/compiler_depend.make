# Empty compiler generated dependencies file for bench_ablation_units.
# This may be replaced when dependencies are built.
