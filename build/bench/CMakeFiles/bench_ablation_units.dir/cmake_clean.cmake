file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_units.dir/bench_ablation_units.cpp.o"
  "CMakeFiles/bench_ablation_units.dir/bench_ablation_units.cpp.o.d"
  "bench_ablation_units"
  "bench_ablation_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
