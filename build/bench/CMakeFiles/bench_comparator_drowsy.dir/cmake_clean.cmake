file(REMOVE_RECURSE
  "CMakeFiles/bench_comparator_drowsy.dir/bench_comparator_drowsy.cpp.o"
  "CMakeFiles/bench_comparator_drowsy.dir/bench_comparator_drowsy.cpp.o.d"
  "bench_comparator_drowsy"
  "bench_comparator_drowsy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparator_drowsy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
