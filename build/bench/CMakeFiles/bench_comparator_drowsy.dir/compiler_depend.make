# Empty compiler generated dependencies file for bench_comparator_drowsy.
# This may be replaced when dependencies are built.
