file(REMOVE_RECURSE
  "CMakeFiles/bench_comparator_rfc.dir/bench_comparator_rfc.cpp.o"
  "CMakeFiles/bench_comparator_rfc.dir/bench_comparator_rfc.cpp.o.d"
  "bench_comparator_rfc"
  "bench_comparator_rfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparator_rfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
