# Empty compiler generated dependencies file for bench_comparator_rfc.
# This may be replaced when dependencies are built.
