file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mov.dir/bench_fig11_mov.cpp.o"
  "CMakeFiles/bench_fig11_mov.dir/bench_fig11_mov.cpp.o.d"
  "bench_fig11_mov"
  "bench_fig11_mov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
