# Empty dependencies file for bench_fig11_mov.
# This may be replaced when dependencies are built.
