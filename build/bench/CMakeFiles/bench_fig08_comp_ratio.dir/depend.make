# Empty dependencies file for bench_fig08_comp_ratio.
# This may be replaced when dependencies are built.
