# Empty dependencies file for bench_fig21_decomp_latency.
# This may be replaced when dependencies are built.
