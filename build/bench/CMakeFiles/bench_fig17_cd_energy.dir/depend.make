# Empty dependencies file for bench_fig17_cd_energy.
# This may be replaced when dependencies are built.
