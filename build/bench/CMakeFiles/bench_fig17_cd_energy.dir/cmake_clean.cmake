file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_cd_energy.dir/bench_fig17_cd_energy.cpp.o"
  "CMakeFiles/bench_fig17_cd_energy.dir/bench_fig17_cd_energy.cpp.o.d"
  "bench_fig17_cd_energy"
  "bench_fig17_cd_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_cd_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
