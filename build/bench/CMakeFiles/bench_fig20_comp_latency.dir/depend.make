# Empty dependencies file for bench_fig20_comp_latency.
# This may be replaced when dependencies are built.
