# Empty compiler generated dependencies file for bench_fig02_similarity.
# This may be replaced when dependencies are built.
