file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_wire.dir/bench_fig19_wire.cpp.o"
  "CMakeFiles/bench_fig19_wire.dir/bench_fig19_wire.cpp.o.d"
  "bench_fig19_wire"
  "bench_fig19_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
