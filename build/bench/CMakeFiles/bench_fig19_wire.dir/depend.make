# Empty dependencies file for bench_fig19_wire.
# This may be replaced when dependencies are built.
