# Empty compiler generated dependencies file for bench_fig05_bdi_breakdown.
# This may be replaced when dependencies are built.
