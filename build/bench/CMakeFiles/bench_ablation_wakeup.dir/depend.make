# Empty dependencies file for bench_ablation_wakeup.
# This may be replaced when dependencies are built.
