file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wakeup.dir/bench_ablation_wakeup.cpp.o"
  "CMakeFiles/bench_ablation_wakeup.dir/bench_ablation_wakeup.cpp.o.d"
  "bench_ablation_wakeup"
  "bench_ablation_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
