file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_param_ratio.dir/bench_fig15_param_ratio.cpp.o"
  "CMakeFiles/bench_fig15_param_ratio.dir/bench_fig15_param_ratio.cpp.o.d"
  "bench_fig15_param_ratio"
  "bench_fig15_param_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_param_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
