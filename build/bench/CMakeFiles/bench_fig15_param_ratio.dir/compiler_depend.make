# Empty compiler generated dependencies file for bench_fig15_param_ratio.
# This may be replaced when dependencies are built.
