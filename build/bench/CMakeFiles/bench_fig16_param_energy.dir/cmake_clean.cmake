file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_param_energy.dir/bench_fig16_param_energy.cpp.o"
  "CMakeFiles/bench_fig16_param_energy.dir/bench_fig16_param_energy.cpp.o.d"
  "bench_fig16_param_energy"
  "bench_fig16_param_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_param_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
