# Empty dependencies file for bench_table1_chunks.
# This may be replaced when dependencies are built.
