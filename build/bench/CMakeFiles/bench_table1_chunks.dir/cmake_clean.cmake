file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_chunks.dir/bench_table1_chunks.cpp.o"
  "CMakeFiles/bench_table1_chunks.dir/bench_table1_chunks.cpp.o.d"
  "bench_table1_chunks"
  "bench_table1_chunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
