file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_energy.dir/bench_fig09_energy.cpp.o"
  "CMakeFiles/bench_fig09_energy.dir/bench_fig09_energy.cpp.o.d"
  "bench_fig09_energy"
  "bench_fig09_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
