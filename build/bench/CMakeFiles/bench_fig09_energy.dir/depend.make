# Empty dependencies file for bench_fig09_energy.
# This may be replaced when dependencies are built.
