# Empty compiler generated dependencies file for bench_fig10_gating.
# This may be replaced when dependencies are built.
