file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gating.dir/bench_fig10_gating.cpp.o"
  "CMakeFiles/bench_fig10_gating.dir/bench_fig10_gating.cpp.o.d"
  "bench_fig10_gating"
  "bench_fig10_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
