file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_compressed_regs.dir/bench_fig12_compressed_regs.cpp.o"
  "CMakeFiles/bench_fig12_compressed_regs.dir/bench_fig12_compressed_regs.cpp.o.d"
  "bench_fig12_compressed_regs"
  "bench_fig12_compressed_regs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_compressed_regs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
