# Empty dependencies file for bench_fig12_compressed_regs.
# This may be replaced when dependencies are built.
