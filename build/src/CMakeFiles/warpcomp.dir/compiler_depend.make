# Empty compiler generated dependencies file for warpcomp.
# This may be replaced when dependencies are built.
