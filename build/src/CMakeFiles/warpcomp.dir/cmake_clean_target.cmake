file(REMOVE_RECURSE
  "libwarpcomp.a"
)
