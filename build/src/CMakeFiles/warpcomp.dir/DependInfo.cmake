
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/similarity.cpp" "src/CMakeFiles/warpcomp.dir/analysis/similarity.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/analysis/similarity.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/warpcomp.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/warpcomp.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/warpcomp.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/common/stats.cpp.o.d"
  "/root/repo/src/compress/bdi.cpp" "src/CMakeFiles/warpcomp.dir/compress/bdi.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/compress/bdi.cpp.o.d"
  "/root/repo/src/compress/schemes.cpp" "src/CMakeFiles/warpcomp.dir/compress/schemes.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/compress/schemes.cpp.o.d"
  "/root/repo/src/compress/unit.cpp" "src/CMakeFiles/warpcomp.dir/compress/unit.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/compress/unit.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/warpcomp.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/isa/builder.cpp" "src/CMakeFiles/warpcomp.dir/isa/builder.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/isa/builder.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/warpcomp.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/CMakeFiles/warpcomp.dir/isa/instruction.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/isa/instruction.cpp.o.d"
  "/root/repo/src/isa/kernel.cpp" "src/CMakeFiles/warpcomp.dir/isa/kernel.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/isa/kernel.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/CMakeFiles/warpcomp.dir/isa/opcode.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/isa/opcode.cpp.o.d"
  "/root/repo/src/mem/mem_timing.cpp" "src/CMakeFiles/warpcomp.dir/mem/mem_timing.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/mem/mem_timing.cpp.o.d"
  "/root/repo/src/mem/memory.cpp" "src/CMakeFiles/warpcomp.dir/mem/memory.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/mem/memory.cpp.o.d"
  "/root/repo/src/power/constants.cpp" "src/CMakeFiles/warpcomp.dir/power/constants.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/power/constants.cpp.o.d"
  "/root/repo/src/power/energy_meter.cpp" "src/CMakeFiles/warpcomp.dir/power/energy_meter.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/power/energy_meter.cpp.o.d"
  "/root/repo/src/power/report.cpp" "src/CMakeFiles/warpcomp.dir/power/report.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/power/report.cpp.o.d"
  "/root/repo/src/regfile/bank.cpp" "src/CMakeFiles/warpcomp.dir/regfile/bank.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/regfile/bank.cpp.o.d"
  "/root/repo/src/regfile/powergate.cpp" "src/CMakeFiles/warpcomp.dir/regfile/powergate.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/regfile/powergate.cpp.o.d"
  "/root/repo/src/regfile/regfile.cpp" "src/CMakeFiles/warpcomp.dir/regfile/regfile.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/regfile/regfile.cpp.o.d"
  "/root/repo/src/regfile/rfc.cpp" "src/CMakeFiles/warpcomp.dir/regfile/rfc.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/regfile/rfc.cpp.o.d"
  "/root/repo/src/sim/arbiter.cpp" "src/CMakeFiles/warpcomp.dir/sim/arbiter.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/arbiter.cpp.o.d"
  "/root/repo/src/sim/collector.cpp" "src/CMakeFiles/warpcomp.dir/sim/collector.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/collector.cpp.o.d"
  "/root/repo/src/sim/exec_unit.cpp" "src/CMakeFiles/warpcomp.dir/sim/exec_unit.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/exec_unit.cpp.o.d"
  "/root/repo/src/sim/functional.cpp" "src/CMakeFiles/warpcomp.dir/sim/functional.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/functional.cpp.o.d"
  "/root/repo/src/sim/gpu.cpp" "src/CMakeFiles/warpcomp.dir/sim/gpu.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/gpu.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/warpcomp.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/scoreboard.cpp" "src/CMakeFiles/warpcomp.dir/sim/scoreboard.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/scoreboard.cpp.o.d"
  "/root/repo/src/sim/simt_stack.cpp" "src/CMakeFiles/warpcomp.dir/sim/simt_stack.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/simt_stack.cpp.o.d"
  "/root/repo/src/sim/sm.cpp" "src/CMakeFiles/warpcomp.dir/sim/sm.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/sm.cpp.o.d"
  "/root/repo/src/sim/warp.cpp" "src/CMakeFiles/warpcomp.dir/sim/warp.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/sim/warp.cpp.o.d"
  "/root/repo/src/workloads/aes.cpp" "src/CMakeFiles/warpcomp.dir/workloads/aes.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/aes.cpp.o.d"
  "/root/repo/src/workloads/backprop.cpp" "src/CMakeFiles/warpcomp.dir/workloads/backprop.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/backprop.cpp.o.d"
  "/root/repo/src/workloads/bfs.cpp" "src/CMakeFiles/warpcomp.dir/workloads/bfs.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/bfs.cpp.o.d"
  "/root/repo/src/workloads/dwt2d.cpp" "src/CMakeFiles/warpcomp.dir/workloads/dwt2d.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/dwt2d.cpp.o.d"
  "/root/repo/src/workloads/gaussian.cpp" "src/CMakeFiles/warpcomp.dir/workloads/gaussian.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/gaussian.cpp.o.d"
  "/root/repo/src/workloads/histo.cpp" "src/CMakeFiles/warpcomp.dir/workloads/histo.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/histo.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/CMakeFiles/warpcomp.dir/workloads/hotspot.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/hotspot.cpp.o.d"
  "/root/repo/src/workloads/inputs.cpp" "src/CMakeFiles/warpcomp.dir/workloads/inputs.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/inputs.cpp.o.d"
  "/root/repo/src/workloads/kmeans.cpp" "src/CMakeFiles/warpcomp.dir/workloads/kmeans.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/kmeans.cpp.o.d"
  "/root/repo/src/workloads/lib.cpp" "src/CMakeFiles/warpcomp.dir/workloads/lib.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/lib.cpp.o.d"
  "/root/repo/src/workloads/lud.cpp" "src/CMakeFiles/warpcomp.dir/workloads/lud.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/lud.cpp.o.d"
  "/root/repo/src/workloads/mum.cpp" "src/CMakeFiles/warpcomp.dir/workloads/mum.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/mum.cpp.o.d"
  "/root/repo/src/workloads/nbody.cpp" "src/CMakeFiles/warpcomp.dir/workloads/nbody.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/nbody.cpp.o.d"
  "/root/repo/src/workloads/nw.cpp" "src/CMakeFiles/warpcomp.dir/workloads/nw.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/nw.cpp.o.d"
  "/root/repo/src/workloads/pathfinder.cpp" "src/CMakeFiles/warpcomp.dir/workloads/pathfinder.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/pathfinder.cpp.o.d"
  "/root/repo/src/workloads/ray.cpp" "src/CMakeFiles/warpcomp.dir/workloads/ray.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/ray.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/warpcomp.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/sgemm.cpp" "src/CMakeFiles/warpcomp.dir/workloads/sgemm.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/sgemm.cpp.o.d"
  "/root/repo/src/workloads/spmv.cpp" "src/CMakeFiles/warpcomp.dir/workloads/spmv.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/spmv.cpp.o.d"
  "/root/repo/src/workloads/srad.cpp" "src/CMakeFiles/warpcomp.dir/workloads/srad.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/srad.cpp.o.d"
  "/root/repo/src/workloads/stencil.cpp" "src/CMakeFiles/warpcomp.dir/workloads/stencil.cpp.o" "gcc" "src/CMakeFiles/warpcomp.dir/workloads/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
