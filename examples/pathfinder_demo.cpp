/**
 * @file
 * Pathfinder walkthrough — the workload whose kernel the paper lists
 * in Fig 4. Shows the ported kernel, runs it under the baseline and
 * warped-compression, and prints the per-figure statistics for this
 * single benchmark: value-similarity bins (Fig 2), divergence ratio
 * (Fig 3), compression ratio by phase (Fig 8), dummy MOVs (Fig 11),
 * and the energy breakdown (Fig 9).
 */

#include <cstdio>

#include "harness/experiment.hpp"
#include "isa/disasm.hpp"
#include "power/report.hpp"

using namespace warpcomp;

int
main()
{
    std::printf("pathfinder under warped-compression\n");
    std::printf("===================================\n\n");

    WorkloadInstance wl = makeWorkload("pathfinder");
    std::printf("kernel as ported to the warpcomp ISA "
                "(paper Fig 4 lists the CUDA source):\n\n%s\n",
                disassemble(wl.kernel).c_str());

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    ExperimentConfig wc_cfg;
    // Both configurations simulate concurrently on the grid runner.
    const auto grid = runGrid({base_cfg, wc_cfg}, {"pathfinder"});
    const ExperimentResult &base = grid[0][0];
    const ExperimentResult &wc = grid[1][0];

    const SimStats &st = wc.run.stats;

    std::printf("--- value similarity at register writes (Fig 2) ---\n");
    for (Phase ph : {kNonDivergent, kDivergent}) {
        std::printf("%-14s zero=%5.1f%%  |d|<=128=%5.1f%%  "
                    "|d|<=32K=%5.1f%%  random=%5.1f%%\n",
                    ph == kNonDivergent ? "non-divergent" : "divergent",
                    100 * st.simBins.fraction(ph, DistanceBin::Zero),
                    100 * st.simBins.fraction(ph, DistanceBin::Small128),
                    100 * st.simBins.fraction(ph, DistanceBin::Mid32K),
                    100 * st.simBins.fraction(ph, DistanceBin::Random));
    }

    const double div_ratio = static_cast<double>(st.issuedDivergent) /
        static_cast<double>(st.issued);
    std::printf("\n--- divergence (Fig 3) ---\n");
    std::printf("non-divergent warp instructions: %.1f%%\n",
                100 * (1.0 - div_ratio));

    std::printf("\n--- compression ratio (Fig 8) ---\n");
    std::printf("non-divergent: %.2f   divergent: %.2f\n",
                st.ratio.ratio(kNonDivergent),
                st.ratio.ratio(kDivergent));

    std::printf("\n--- divergence handling (Fig 11) ---\n");
    std::printf("dummy MOVs: %llu (%.2f%% of %llu instructions)\n",
                static_cast<unsigned long long>(st.dummyMovs),
                100.0 * st.dummyMovs / st.issued,
                static_cast<unsigned long long>(st.issued));

    std::printf("\n--- energy (Fig 9) ---\n");
    const EnergyBreakdown eb = base.run.meter.breakdown();
    const EnergyBreakdown ew = wc.run.meter.breakdown();
    std::printf("baseline:           dynamic %8.1f nJ, leakage %8.1f nJ\n",
                eb.dynamicPj() / 1e3, eb.leakagePj() / 1e3);
    std::printf("warped-compression: dynamic %8.1f nJ, leakage %8.1f nJ, "
                "comp %6.1f nJ, decomp %6.1f nJ\n",
                ew.dynamicPj() / 1e3, ew.leakagePj() / 1e3,
                ew.compressionPj / 1e3, ew.decompressionPj / 1e3);
    std::printf("total register-file energy: %.1f%% of baseline "
                "(%.1f%% saved)\n",
                100 * ew.totalPj() / eb.totalPj(),
                100 * (1 - ew.totalPj() / eb.totalPj()));
    std::printf("execution time: %llu -> %llu cycles (%+.2f%%)\n",
                static_cast<unsigned long long>(base.run.cycles),
                static_cast<unsigned long long>(wc.run.cycles),
                100.0 * (static_cast<double>(wc.run.cycles) /
                             base.run.cycles - 1.0));
    return 0;
}
