/**
 * @file
 * Design-space tour — the Sec. 6.6-6.8 exploration on one workload:
 * compression-parameter choices, comp/decomp latency sweeps, and
 * energy-constant scaling, all against the same baseline. Demonstrates
 * driving ExperimentConfig, fanning a config sweep onto the parallel
 * runner with runGrid (--threads=N), and re-pricing meters without
 * re-simulating.
 */

#include <iostream>

#include "harness/experiment.hpp"
#include "power/report.hpp"

using namespace warpcomp;

int
main(int argc, char **argv)
{
    const HarnessOptions opt = parseHarnessArgs(argc, argv);
    const std::string name = opt.only.empty() ? "hotspot" : opt.only;

    std::cout << "design-space tour on '" << name << "'\n"
              << "====================================\n\n";

    ExperimentConfig base_cfg;
    base_cfg.scheme = CompressionScheme::None;
    const ExperimentResult base = runWorkload(name, base_cfg);
    const double base_total = base.run.meter.breakdown().totalPj();

    // 1. Compression scheme choices (Fig 15/16 axis), all schemes
    //    simulated concurrently on the grid runner.
    std::cout << "1) compression parameter choices\n";
    TextTable t1({"scheme", "ratio", "energy vs baseline",
                  "cycles vs baseline"});
    const std::vector<CompressionScheme> schemes = {
        CompressionScheme::Warped, CompressionScheme::Fixed40,
        CompressionScheme::Fixed41, CompressionScheme::Fixed42,
        CompressionScheme::FullBdi};
    std::vector<ExperimentConfig> scheme_cfgs;
    for (CompressionScheme s : schemes) {
        ExperimentConfig cfg;
        cfg.scheme = s;
        scheme_cfgs.push_back(cfg);
    }
    const auto scheme_grid = runGrid(scheme_cfgs, {name}, opt.threads);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const ExperimentResult &r = scheme_grid[i][0];
        t1.addRow({schemeName(schemes[i]),
                   fmtDouble(r.run.stats.ratio.overallRatio(), 2),
                   fmtPercent(r.run.meter.breakdown().totalPj() /
                              base_total),
                   fmtDouble(static_cast<double>(r.run.cycles) /
                                 base.run.cycles, 3)});
    }
    t1.print(std::cout);

    // 2. Latency sensitivity (Fig 20/21 axis), one grid over the
    //    3x3 latency cross product.
    std::cout << "\n2) compression/decompression latency\n";
    TextTable t2({"comp.lat", "decomp.lat", "cycles vs baseline"});
    std::vector<ExperimentConfig> lat_cfgs;
    for (u32 cl : {2u, 4u, 8u}) {
        for (u32 dl : {1u, 4u, 8u}) {
            ExperimentConfig cfg;
            cfg.compressLatency = cl;
            cfg.decompressLatency = dl;
            lat_cfgs.push_back(cfg);
        }
    }
    const auto lat_grid = runGrid(lat_cfgs, {name}, opt.threads);
    for (std::size_t i = 0; i < lat_cfgs.size(); ++i) {
        const ExperimentResult &r = lat_grid[i][0];
        t2.addRow({std::to_string(lat_cfgs[i].compressLatency),
                   std::to_string(lat_cfgs[i].decompressLatency),
                   fmtDouble(static_cast<double>(r.run.cycles) /
                                 base.run.cycles, 3)});
    }
    t2.print(std::cout);

    // 3. Energy-constant scaling, re-priced from one simulation
    //    (Fig 17/18/19 axis).
    std::cout << "\n3) energy-constant scaling (no re-simulation)\n";
    ExperimentConfig wc_cfg;
    const ExperimentResult wc = runWorkload(name, wc_cfg);
    TextTable t3({"knob", "value", "wc energy vs baseline"});
    for (double s : {1.0, 1.5, 2.0, 2.5}) {
        EnergyParams p;
        p.compDecompScale = s;
        t3.addRow({"comp/decomp energy", fmtDouble(s, 1) + "x",
                   fmtPercent(wc.run.meter.breakdownWith(p).totalPj() /
                              base_total)});
    }
    for (double a : {0.0, 0.5, 1.0}) {
        EnergyParams p;
        p.wireActivity = a;
        const double b = base.run.meter.breakdownWith(p).totalPj();
        t3.addRow({"wire activity", fmtPercent(a, 0),
                   fmtPercent(wc.run.meter.breakdownWith(p).totalPj() /
                              b)});
    }
    t3.print(std::cout);
    return 0;
}
