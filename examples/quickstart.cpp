/**
 * @file
 * Quickstart: build a tiny SAXPY kernel with the public KernelBuilder
 * API, run it on the simulated GPU with and without warped-compression,
 * and print the register-file energy breakdown.
 */

#include <cstdio>

#include "harness/experiment.hpp"
#include "isa/disasm.hpp"
#include "power/report.hpp"
#include "workloads/inputs.hpp"
#include "workloads/workload.hpp"

using namespace warpcomp;

namespace {

/** y[i] = a * x[i] + y[i] over one grid. */
WorkloadInstance
makeSaxpy()
{
    const u32 block = 256;
    const u32 grid = 30;
    const u32 n = block * grid;

    auto gmem = std::make_unique<GlobalMemory>(16ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(42);

    const u64 x = gmem->alloc(4ull * n);
    const u64 y = gmem->alloc(4ull * n);
    fillRandomF32(*gmem, x, n, 0.0f, 1.0f, rng);
    fillRandomF32(*gmem, y, n, 0.0f, 1.0f, rng);

    pushAddr(*cmem, x);
    pushAddr(*cmem, y);

    KernelBuilder b("saxpy");
    Reg p_x = loadParam(b, 0);
    Reg p_y = loadParam(b, 1);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    Reg xa = b.newReg(), ya = b.newReg();
    b.imad(xa, gid, KernelBuilder::imm(4), p_x);
    b.imad(ya, gid, KernelBuilder::imm(4), p_y);
    Reg xv = b.newReg(), yv = b.newReg(), a = b.newReg();
    b.ldg(xv, xa);
    b.ldg(yv, ya);
    b.movFloat(a, 2.5f);
    Reg r = b.newReg();
    b.ffma(r, a, xv, yv);
    b.stg(ya, r);

    return {"saxpy", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

void
report(const char *label, const RunResult &run, double baseline_total)
{
    const EnergyBreakdown e = run.meter.breakdown();
    std::printf("%-22s cycles=%8llu  dyn=%9.1f nJ  leak=%9.1f nJ  "
                "comp=%6.1f nJ  decomp=%6.1f nJ  total=%9.1f nJ"
                "  (%.1f%% of baseline)\n",
                label,
                static_cast<unsigned long long>(run.cycles),
                e.dynamicPj() / 1e3, e.leakagePj() / 1e3,
                e.compressionPj / 1e3, e.decompressionPj / 1e3,
                e.totalPj() / 1e3,
                100.0 * e.totalPj() / baseline_total);
}

} // namespace

int
main()
{
    std::printf("warped-compression quickstart: SAXPY on the simulated "
                "GPU\n\n");

    // Show the kernel the builder produced.
    WorkloadInstance demo = makeSaxpy();
    std::printf("%s\n", disassemble(demo.kernel).c_str());

    // Baseline run (no compression).
    {
        WorkloadInstance wl = makeSaxpy();
        ExperimentConfig base;
        base.scheme = CompressionScheme::None;
        Gpu gpu(makeGpuParams(base), *wl.gmem, *wl.cmem);
        const RunResult run_base = gpu.run(wl.kernel, wl.dims);
        const double base_total = run_base.meter.breakdown().totalPj();

        // Warped-compression run.
        WorkloadInstance wl2 = makeSaxpy();
        ExperimentConfig wc;
        Gpu gpu2(makeGpuParams(wc), *wl2.gmem, *wl2.cmem);
        const RunResult run_wc = gpu2.run(wl2.kernel, wl2.dims);

        report("baseline", run_base, base_total);
        report("warped-compression", run_wc, base_total);

        std::printf("\ncompression ratio (non-div): %.2f\n",
                    run_wc.stats.ratio.ratio(kNonDivergent));
        std::printf("dummy MOVs: %llu of %llu instructions\n",
                    static_cast<unsigned long long>(run_wc.stats.dummyMovs),
                    static_cast<unsigned long long>(run_wc.stats.issued));
    }
    return 0;
}
