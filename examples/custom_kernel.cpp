/**
 * @file
 * Custom-kernel example — authoring a block-wide reduction with the
 * KernelBuilder API (shared memory, barriers, a divergent tree loop),
 * running it on the simulated GPU, and verifying the result against a
 * host-side computation. Shows that compression is architecturally
 * invisible: both schemes produce bit-identical sums.
 */

#include <cstdio>
#include <vector>

#include "harness/experiment.hpp"
#include "workloads/inputs.hpp"
#include "workloads/workload.hpp"

using namespace warpcomp;

namespace {

/**
 * Tree reduction: each CTA sums 256 inputs into out[ctaid]. The stride
 * loop halves the active thread count each step, so the warp-level
 * activity is exactly the divergence pattern Sec. 5.2 worries about.
 */
Kernel
buildReduction(u64 in_base, u64 out_base)
{
    KernelBuilder b("block_reduce", 256 * 4);
    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);

    // Stage one element per thread into shared memory.
    Reg gid = b.newReg(), ga = b.newReg(), v = b.newReg(),
        sa = b.newReg();
    b.imad(gid, bid, ntid, tid);
    b.imad(ga, gid, KernelBuilder::imm(4),
           KernelBuilder::imm(static_cast<i32>(in_base)));
    b.ldg(v, ga);
    b.shl(sa, tid, KernelBuilder::imm(2));
    b.sts(sa, v);
    b.bar();

    // for (stride = 128; stride > 0; stride >>= 1)
    //     if (tid < stride) smem[tid] += smem[tid + stride]
    Reg stride = b.newReg();
    b.movImm(stride, 128);
    Pred more = b.newPred(), active = b.newPred();
    b.while_(
        [&] {
            b.isetp(more, CmpOp::Gt, stride, KernelBuilder::imm(0));
            return more;
        },
        [&] {
            b.isetp(active, CmpOp::Lt, tid, stride);
            b.if_(active, [&] {
                Reg pa = b.newReg(), pb = b.newReg(), x = b.newReg(),
                    y = b.newReg();
                b.shl(pa, tid, KernelBuilder::imm(2));
                Reg other = b.newReg();
                b.iadd(other, tid, stride);
                b.shl(pb, other, KernelBuilder::imm(2));
                b.lds(x, pa);
                b.lds(y, pb);
                b.iadd(x, x, y);
                b.sts(pa, x);
            });
            b.bar();
            b.shr(stride, stride, KernelBuilder::imm(1));
        });

    // Thread 0 writes the block sum.
    Pred leader = b.newPred();
    b.isetp(leader, CmpOp::Eq, tid, KernelBuilder::imm(0));
    b.if_(leader, [&] {
        Reg zero = b.newReg(), r = b.newReg(), oa = b.newReg();
        b.movImm(zero, 0);
        b.lds(r, zero);
        b.imad(oa, bid, KernelBuilder::imm(4),
               KernelBuilder::imm(static_cast<i32>(out_base)));
        b.stg(oa, r);
    });
    return b.build();
}

} // namespace

int
main()
{
    std::printf("custom kernel: block-wide tree reduction\n");
    std::printf("========================================\n\n");

    const u32 block = 256, grid = 48, n = block * grid;

    for (CompressionScheme scheme :
         {CompressionScheme::None, CompressionScheme::Warped}) {
        GlobalMemory gmem(16 << 20);
        ConstantMemory cmem(64);
        Rng rng(2026);

        const u64 in = gmem.alloc(4ull * n);
        const u64 out = gmem.alloc(4ull * grid);
        std::vector<u32> host(n);
        for (u32 i = 0; i < n; ++i) {
            host[i] = rng.nextU32(100);
            gmem.write32(in + 4ull * i, host[i]);
        }

        Kernel k = buildReduction(in, out);

        GpuParams gp;
        gp.numSms = 8;
        gp.sm.scheme = scheme;
        gp.sm.applyScheme();
        Gpu gpu(gp, gmem, cmem);
        const RunResult r = gpu.run(k, {block, grid});

        u32 mismatches = 0;
        for (u32 c = 0; c < grid; ++c) {
            u32 expect = 0;
            for (u32 i = 0; i < block; ++i)
                expect += host[c * block + i];
            if (gmem.read32(out + 4ull * c) != expect)
                ++mismatches;
        }
        std::printf("%-20s cycles=%7llu  bank accesses=%8llu  "
                    "dummy MOVs=%5llu  mismatching block sums=%u/%u\n",
                    schemeName(scheme).c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(
                        r.meter.bankAccesses()),
                    static_cast<unsigned long long>(r.stats.dummyMovs),
                    mismatches, grid);
    }
    return 0;
}
