# Vector add: OUT[i] = A[i] + B[i] for i in [0, n).
#
# Twin of the DSL `vecadd` workload (src/frontend/twins.cpp) — the
# translated stream must stay disasm-identical to the twin, so edits
# here need a matching edit there (and vice versa).
#
# Constant-bank parameter block (lw off(x0) reads the constant bank):
#   [0]=&A  [4]=&B  [8]=&OUT  [12]=n
.name vecadd
.block 128

    lw      a0, 0(x0)           # &A
    lw      a1, 4(x0)           # &B
    lw      a2, 8(x0)           # &OUT
    lw      a3, 12(x0)          # n
    csrr    t0, tid
    csrr    t1, ctaid
    csrr    t2, ntid
    mul     t3, t1, t2          # gid = ctaid*ntid + tid
    add     t3, t3, t0
    bge     t3, a3, Lend        # guard: gid < n
    slli    t4, t3, 2           # byte offset
    add     t5, a0, t4
    lw      t5, 0(t5)           # A[gid]
    add     t6, a1, t4
    lw      t6, 0(t6)           # B[gid]
    add     t5, t5, t6
    add     t6, a2, t4
    sw      t5, 0(t6)           # OUT[gid]
Lend:
    ecall
