# SAXPY: OUT[i] = alpha*A[i] + B[i] for i in [0, n).
#
# Twin of the DSL `saxpy` workload (src/frontend/twins.cpp) — keep the
# instruction stream in lockstep with the twin.
#
# Constant-bank parameter block:
#   [0]=&A  [4]=&B  [8]=&OUT  [12]=n  [16]=alpha
.name saxpy
.block 128

    lw      a0, 0(x0)           # &A
    lw      a1, 4(x0)           # &B
    lw      a2, 8(x0)           # &OUT
    lw      a3, 12(x0)          # n
    lw      a4, 16(x0)          # alpha
    csrr    t0, tid
    csrr    t1, ctaid
    csrr    t2, ntid
    mul     t3, t1, t2          # gid = ctaid*ntid + tid
    add     t3, t3, t0
    bge     t3, a3, Lend        # guard: gid < n
    slli    t4, t3, 2           # byte offset
    add     t5, a0, t4
    lw      t5, 0(t5)           # A[gid]
    mul     t5, t5, a4          # alpha * A[gid]
    add     t6, a1, t4
    lw      t6, 0(t6)           # B[gid]
    add     t5, t5, t6
    add     t6, a2, t4
    sw      t5, 0(t6)           # OUT[gid]
Lend:
    ecall
