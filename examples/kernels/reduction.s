# Block-level tree reduction: OUT[ctaid] = sum of this block's slice
# of A. Each thread loads one element into shared memory, then the
# block halves the active range each step (fence = CTA barrier), and
# thread 0 writes the block total.
#
# Twin of the DSL `reduction` workload (src/frontend/twins.cpp) — keep
# the instruction stream in lockstep with the twin.
#
# Constant-bank parameter block:
#   [0]=&A  [8]=&OUT  [12]=n      (param [4] unused here)
.name reduction
.block 64
.smem 256

    lw      a0, 0(x0)           # &A
    lw      a2, 8(x0)           # &OUT
    lw      a3, 12(x0)          # n
    csrr    t0, tid
    csrr    t1, ctaid
    csrr    t2, ntid
    mul     t3, t1, t2          # gid = ctaid*ntid + tid
    add     t3, t3, t0
    addi    t4, x0, 0           # x = 0 (out-of-range lanes add zero)
    bge     t3, a3, Lskip       # guard: gid < n
    slli    t4, t3, 2
    add     t4, a0, t4
    lw      t4, 0(t4)           # x = A[gid]
Lskip:
    slli    t6, t0, 2           # saddr = tid*4
    sts.w   t4, 0(t6)           # smem[tid] = x
    fence                       # CTA barrier
    addi    s0, x0, 32          # stride = blockDim/2
Lloop:
    bge     x0, s0, Lend        # while (stride > 0)
    bge     t0, s0, Lnext       #   if (tid < stride)
    add     t5, t0, s0          #     partner = tid + stride
    slli    t5, t5, 2
    lds.w   t5, 0(t5)           #     t = smem[partner]
    lds.w   s1, 0(t6)           #     own = smem[tid]
    add     s1, s1, t5
    sts.w   s1, 0(t6)           #     smem[tid] = own + t
Lnext:
    fence                       #   CTA barrier
    srai    s0, s0, 1           #   stride >>= 1
    jal     x0, Lloop
Lend:
    bne     t0, x0, Lout        # leader (tid == 0) writes the total
    lds.w   t5, 0(t6)
    slli    s1, t1, 2
    add     s1, a2, s1
    sw      t5, 0(s1)           # OUT[ctaid]
Lout:
    ecall
