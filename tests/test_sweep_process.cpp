/**
 * @file
 * End-to-end supervision tests: spawn the real bench_sweep driver
 * (WC_BENCH_SWEEP_BIN, injected by CMake) and prove the resilience
 * contract from the outside —
 *
 *   - deterministic chaos injection is recovered by retry/backoff and
 *     the merged report is byte-identical to an injury-free run;
 *   - a mid-grid death (--die-after) plus --resume yields the same
 *     bytes as an uninterrupted run, with cached points doing no
 *     simulation work (spawned == 0 on a fully-warm journal);
 *   - worker count (--threads) never changes the report;
 *   - points that exhaust their attempts degrade to "failed" records
 *     while the process still exits 0;
 *   - the wall-clock watchdog reaps hung children.
 *
 * Every run uses the tiny smoke grid restricted to one cheap workload
 * (3 points) so the whole suite stays fast.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "common/json_parse.hpp"

namespace warpcomp {
namespace {

#ifndef WC_BENCH_SWEEP_BIN
#error "CMake must define WC_BENCH_SWEEP_BIN"
#endif

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "wc_sweep_" + name;
}

/** Run bench_sweep with @p args; returns its exit code (-1 on spawn
 *  failure). stderr is routed to a file to keep test output clean. */
int
runSweep(const std::string &args, const std::string &stderr_path)
{
    const std::string cmd = std::string(WC_BENCH_SWEEP_BIN) +
                            " --only=nw --sms=2 " + args + " 2>" +
                            stderr_path;
    const int status = std::system(cmd.c_str());
    if (status < 0)
        return -1;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

u64
statsCounter(const std::string &stats_path, const char *field)
{
    const JsonParseOutcome parsed = parseJson(slurp(stats_path));
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    if (!parsed.ok())
        return 0;
    const JsonValue *v = parsed.value->find(field);
    EXPECT_NE(v, nullptr) << field;
    const auto n = v != nullptr ? v->asU64() : std::nullopt;
    EXPECT_TRUE(n.has_value()) << field;
    return n.value_or(0);
}

TEST(SweepProcess, ChaosRunMatchesCleanRunByteForByte)
{
    const std::string clean_report = tempPath("clean.json");
    const std::string clean_err = tempPath("clean.err");
    ASSERT_EQ(runSweep("--report=" + clean_report, clean_err), 0)
        << slurp(clean_err);

    // Mixed crash/hang/slow injuries at 20%: bounded retry must
    // recover every point, and because the report carries only
    // deterministic per-point data, the bytes must match exactly.
    const std::string chaos_report = tempPath("chaos.json");
    const std::string chaos_err = tempPath("chaos.err");
    const std::string chaos_stats = tempPath("chaos_stats.json");
    ASSERT_EQ(runSweep("--report=" + chaos_report +
                           " --chaos=mix,0.2,12345 --attempts=10"
                           " --timeout=5 --backoff-ms=1 --sweep-stats=" +
                           chaos_stats,
                       chaos_err),
              0)
        << slurp(chaos_err);

    EXPECT_EQ(slurp(chaos_report), slurp(clean_report));
    EXPECT_EQ(statsCounter(chaos_stats, "ok_points"), 3u);
    EXPECT_EQ(statsCounter(chaos_stats, "failed_points"), 0u);
}

TEST(SweepProcess, ChaosRetriesActuallyFire)
{
    // Crash injuries at 60% with a seed that injures at least one
    // first attempt: the retry counter must be nonzero and every point
    // must still complete. The report must STILL match a clean run
    // byte for byte — retried points may not leak attempt counts or
    // any other supervision detail into the merged output.
    const std::string clean_report = tempPath("retries_clean.json");
    const std::string err = tempPath("retries.err");
    ASSERT_EQ(runSweep("--report=" + clean_report, err), 0)
        << slurp(err);

    const std::string report = tempPath("retries.json");
    const std::string stats = tempPath("retries_stats.json");
    ASSERT_EQ(runSweep("--report=" + report +
                           " --chaos=crash,0.6,7 --attempts=20"
                           " --backoff-ms=1 --sweep-stats=" + stats,
                       err),
              0)
        << slurp(err);
    EXPECT_EQ(statsCounter(stats, "ok_points"), 3u);
    EXPECT_GT(statsCounter(stats, "retries"), 0u);
    EXPECT_GT(statsCounter(stats, "crashes"), 0u);
    EXPECT_EQ(slurp(report), slurp(clean_report));
}

TEST(SweepProcess, ResumeAfterMidGridDeathIsByteIdentical)
{
    const std::string clean_report = tempPath("resume_clean.json");
    const std::string err = tempPath("resume.err");
    ASSERT_EQ(runSweep("--report=" + clean_report, err), 0)
        << slurp(err);

    // First run dies (by _exit(3)) after checkpointing one point.
    const std::string journal = tempPath("resume.jsonl");
    std::remove(journal.c_str());
    const std::string dead_report = tempPath("resume_dead.json");
    EXPECT_EQ(runSweep("--report=" + dead_report + " --journal=" +
                           journal + " --die-after=1 --threads=1",
                       err),
              3);

    // Resume finishes the grid; merged bytes must match the clean run.
    const std::string resumed_report = tempPath("resume_done.json");
    const std::string stats = tempPath("resume_stats.json");
    ASSERT_EQ(runSweep("--report=" + resumed_report + " --resume=" +
                           journal + " --sweep-stats=" + stats,
                       err),
              0)
        << slurp(err);
    EXPECT_EQ(slurp(resumed_report), slurp(clean_report));
    // The checkpointed point was served from the journal, not re-run.
    EXPECT_GT(statsCounter(stats, "cache_hits"), 0u);
    EXPECT_LT(statsCounter(stats, "spawned"), 3u);

    // A second resume on the now-complete journal does zero work.
    const std::string warm_report = tempPath("resume_warm.json");
    const std::string warm_stats = tempPath("resume_warm_stats.json");
    ASSERT_EQ(runSweep("--report=" + warm_report + " --resume=" +
                           journal + " --sweep-stats=" + warm_stats,
                       err),
              0)
        << slurp(err);
    EXPECT_EQ(slurp(warm_report), slurp(clean_report));
    EXPECT_EQ(statsCounter(warm_stats, "spawned"), 0u);
    EXPECT_EQ(statsCounter(warm_stats, "cache_hits"), 3u);
}

TEST(SweepProcess, ThreadCountNeverChangesTheReport)
{
    const std::string one = tempPath("threads1.json");
    const std::string four = tempPath("threads4.json");
    const std::string err = tempPath("threads.err");
    ASSERT_EQ(runSweep("--report=" + one + " --threads=1", err), 0)
        << slurp(err);
    ASSERT_EQ(runSweep("--report=" + four + " --threads=4", err), 0)
        << slurp(err);
    EXPECT_EQ(slurp(one), slurp(four));
}

TEST(SweepProcess, ExhaustedPointsDegradeGracefully)
{
    // Every attempt crashes: all points must settle as "failed" with a
    // deterministic reason, and the driver still exits 0 with a
    // complete report.
    const std::string report = tempPath("failed.json");
    const std::string err = tempPath("failed.err");
    const std::string stats = tempPath("failed_stats.json");
    ASSERT_EQ(runSweep("--report=" + report +
                           " --chaos=crash,1.0,3 --attempts=2"
                           " --backoff-ms=1 --sweep-stats=" + stats,
                       err),
              0)
        << slurp(err);
    EXPECT_EQ(statsCounter(stats, "failed_points"), 3u);
    EXPECT_EQ(statsCounter(stats, "ok_points"), 0u);
    const std::string text = slurp(report);
    EXPECT_NE(text.find("\"status\": \"failed\""), std::string::npos);
    EXPECT_NE(text.find("exit code 66 after 2 attempts"),
              std::string::npos);
}

TEST(SweepProcess, WatchdogReapsHungChildren)
{
    // Every attempt hangs; a 1-second watchdog must SIGKILL each child
    // and classify the point as a timeout failure.
    const std::string report = tempPath("hang.json");
    const std::string err = tempPath("hang.err");
    const std::string stats = tempPath("hang_stats.json");
    ASSERT_EQ(runSweep("--report=" + report +
                           " --chaos=hang,1.0,5 --attempts=1"
                           " --timeout=1 --threads=3 --sweep-stats=" +
                           stats,
                       err),
              0)
        << slurp(err);
    EXPECT_EQ(statsCounter(stats, "timeouts"), 3u);
    EXPECT_EQ(statsCounter(stats, "failed_points"), 3u);
    const std::string text = slurp(report);
    EXPECT_NE(text.find("watchdog timeout"), std::string::npos);
}

} // namespace
} // namespace warpcomp
