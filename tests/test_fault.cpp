/**
 * @file
 * Fault-injection subsystem tests: deterministic map generation,
 * stuck-at corruption semantics, the three tolerance policies end to
 * end (silent corruption must be architecturally visible, DisableEntry
 * and CompressRemap must be architecturally invisible), capacity
 * census ordering, and interaction with divergent uncompressed writes
 * and multi-wave scheduling.
 */

#include <gtest/gtest.h>

#include <array>

#include "fault/fault.hpp"
#include "harness/experiment.hpp"
#include "regfile/regfile.hpp"
#include "sim/gpu.hpp"
#include "workloads/registry.hpp"

namespace warpcomp {
namespace {

constexpr u32 kBanks = 32;
constexpr u32 kEntries = 256;
constexpr u64 kSeed = 0xDEC0DEull;

TEST(FaultMap, GenerationIsDeterministicPerSeed)
{
    const FaultMap a(kBanks, kEntries, 1e-3, kSeed);
    const FaultMap b(kBanks, kEntries, 1e-3, kSeed);
    ASSERT_EQ(a.faultyCells(), b.faultyCells());
    for (u32 bank = 0; bank < kBanks; bank += kBanksPerWarpReg) {
        for (u32 e = 0; e < kEntries; ++e) {
            ASSERT_EQ(a.healthyPrefixBytes(bank, e),
                      b.healthyPrefixBytes(bank, e));
        }
    }

    // A different seed draws a different map (at ~10^3 expected faults
    // an identical census would be a generator bug, not luck).
    const FaultMap c(kBanks, kEntries, 1e-3, kSeed + 1);
    u32 diff = 0;
    for (u32 bank = 0; bank < kBanks; bank += kBanksPerWarpReg) {
        for (u32 e = 0; e < kEntries; ++e) {
            if (a.healthyPrefixBytes(bank, e) !=
                c.healthyPrefixBytes(bank, e))
                ++diff;
        }
    }
    EXPECT_GT(diff, 0u);

    // Per-SM salting derives distinct seeds from one base.
    EXPECT_NE(faultSeedForSm(kSeed, 0), faultSeedForSm(kSeed, 1));
}

TEST(FaultMap, BerZeroIsFaultFree)
{
    const FaultMap m(kBanks, kEntries, 0.0, kSeed);
    EXPECT_EQ(m.faultyCells(), 0u);
    std::array<u8, kWarpRegBytes> buf;
    buf.fill(0xA5);
    for (u32 bank = 0; bank < kBanks; bank += kBanksPerWarpReg) {
        for (u32 e = 0; e < kEntries; ++e) {
            EXPECT_EQ(m.healthyPrefixBytes(bank, e), kWarpRegBytes);
            EXPECT_FALSE(m.stripeFaulty(bank, e));
            EXPECT_FALSE(m.corrupt(bank, e, buf.data(),
                                   static_cast<u32>(buf.size())));
        }
    }
    for (u8 byte : buf)
        EXPECT_EQ(byte, 0xA5);
}

TEST(FaultMap, CorruptIsIdempotentStuckAtSemantics)
{
    const FaultMap m(kBanks, kEntries, 2e-3, kSeed);
    ASSERT_GT(m.faultyCells(), 0u);

    u32 faulty_stripes = 0;
    for (u32 bank = 0; bank < kBanks; bank += kBanksPerWarpReg) {
        for (u32 e = 0; e < kEntries; ++e) {
            std::array<u8, kWarpRegBytes> ones, zeros;
            ones.fill(0xFF);
            zeros.fill(0x00);
            const bool ch1 = m.corrupt(bank, e, ones.data(),
                                       kWarpRegBytes);
            const bool ch0 = m.corrupt(bank, e, zeros.data(),
                                       kWarpRegBytes);
            // All-ones exposes every stuck-at-0 cell, all-zeros every
            // stuck-at-1 cell; a stripe is faulty iff one of the two
            // patterns changes.
            EXPECT_EQ(m.stripeFaulty(bank, e), ch1 || ch0);
            if (m.stripeFaulty(bank, e))
                ++faulty_stripes;

            // Stuck cells are stateless: re-applying the map to an
            // already-corrupted buffer is a no-op.
            std::array<u8, kWarpRegBytes> again = ones;
            EXPECT_FALSE(m.corrupt(bank, e, again.data(),
                                   kWarpRegBytes));
            EXPECT_EQ(again, ones);

            // The healthy prefix is exactly that: corruption never
            // touches bytes before it.
            const u32 prefix = m.healthyPrefixBytes(bank, e);
            for (u32 k = 0; k < prefix; ++k) {
                EXPECT_EQ(ones[k], 0xFF);
                EXPECT_EQ(zeros[k], 0x00);
            }
        }
    }
    EXPECT_GT(faulty_stripes, 0u);
}

/** Architectural outcome of one workload under a fault config. */
struct FaultOutcome
{
    std::vector<u8> gmemImage;
    RunResult run;

    FaultOutcome(std::vector<u8> image, RunResult r)
        : gmemImage(std::move(image)), run(std::move(r))
    {
    }
};

FaultOutcome
runFaulty(const std::string &name, double ber, FaultPolicy policy,
          u32 num_sms = 2)
{
    ExperimentConfig cfg;
    cfg.numSms = num_sms;
    cfg.faults.ber = ber;
    cfg.faults.policy = policy;
    WorkloadInstance wl = makeWorkload(name, cfg.scale, cfg.seedSalt);
    Gpu gpu(makeGpuParams(cfg), *wl.gmem, *wl.cmem);
    RunResult run = gpu.run(wl.kernel, wl.dims);
    const auto img = wl.gmem->bytes();
    return FaultOutcome(std::vector<u8>(img.begin(), img.end()),
                        std::move(run));
}

TEST(FaultPolicies, BerZeroIsBitIdenticalToBaseline)
{
    // --faults=0,<anything> must leave no trace: same memory image,
    // same cycle count, same energy events as a run with the subsystem
    // absent.
    const FaultOutcome base = runFaulty("nw", 0.0, FaultPolicy::None);
    for (FaultPolicy p : {FaultPolicy::None, FaultPolicy::DisableEntry,
                          FaultPolicy::CompressRemap}) {
        const FaultOutcome f = runFaulty("nw", 0.0, p);
        EXPECT_EQ(f.gmemImage, base.gmemImage);
        EXPECT_EQ(f.run.cycles, base.run.cycles);
        EXPECT_EQ(f.run.meter.bankAccesses(),
                  base.run.meter.bankAccesses());
        EXPECT_EQ(f.run.meter.remapAccesses(), 0u);
        EXPECT_EQ(f.run.fault.faultyCells, 0u);
        EXPECT_EQ(f.run.fault.usableRegs, f.run.fault.totalRegs);
    }
}

TEST(FaultPolicies, NonePolicySilentlyCorruptsArchState)
{
    // With no mitigation, stuck cells under written registers must
    // surface as architectural divergence — this is exactly what the
    // differential layer is meant to catch.
    const FaultOutcome base = runFaulty("nw", 0.0, FaultPolicy::None);
    const FaultOutcome f = runFaulty("nw", 5e-3, FaultPolicy::None);
    EXPECT_GT(f.run.fault.corruptedWrites, 0u);
    EXPECT_NE(f.gmemImage, base.gmemImage)
        << "silent corruption never reached architectural state";
    // Corrupted address registers surface as contained memory faults
    // rather than simulator panics.
    EXPECT_GT(f.run.fault.unrecoverableAccesses, 0u);
    // The census still reports how little of the file is trustworthy.
    EXPECT_LT(f.run.fault.usableRegs, f.run.fault.totalRegs);
}

TEST(FaultPolicies, CompressRemapPreservesArchState)
{
    const FaultOutcome base = runFaulty("nw", 0.0, FaultPolicy::None);
    const FaultOutcome f =
        runFaulty("nw", 5e-3, FaultPolicy::CompressRemap);
    // Tolerance must be exercised AND invisible.
    EXPECT_GT(f.run.fault.toleratedWrites, 0u);
    EXPECT_GT(f.run.fault.remapWrites, 0u);
    EXPECT_GT(f.run.meter.remapAccesses(), 0u);
    EXPECT_EQ(f.run.fault.corruptedWrites, 0u);
    EXPECT_EQ(f.run.ctas, base.run.ctas);
    EXPECT_EQ(f.gmemImage, base.gmemImage)
        << "CompressRemap leaked a corrupted value";
}

TEST(FaultPolicies, CompressRemapHandlesDivergentUncompressedWrites)
{
    // bfs diverges heavily; under WriteUncompressed its divergent
    // writes store full 128-byte images, which can never fit a faulty
    // stripe's healthy prefix and must all take the remap path.
    const FaultOutcome base = runFaulty("bfs", 0.0, FaultPolicy::None);
    const FaultOutcome f =
        runFaulty("bfs", 2e-3, FaultPolicy::CompressRemap);
    EXPECT_GT(f.run.fault.remapWrites, 0u);
    EXPECT_EQ(f.run.fault.corruptedWrites, 0u);
    EXPECT_EQ(f.gmemImage, base.gmemImage);
}

TEST(FaultPolicies, DisableEntryMultiWaveCompletesCorrectly)
{
    // One SM forces multiple CTA waves through a capacity-reduced
    // file: allocate/release must recycle the fragmented id list
    // without ever touching a faulty stripe.
    const FaultOutcome base =
        runFaulty("nw", 0.0, FaultPolicy::None, /*num_sms=*/1);
    const FaultOutcome f =
        runFaulty("nw", 1e-4, FaultPolicy::DisableEntry, /*num_sms=*/1);
    EXPECT_FALSE(f.run.unschedulable);
    EXPECT_GT(f.run.fault.disabledRegs, 0u);
    EXPECT_EQ(f.run.fault.corruptedWrites, 0u);
    EXPECT_EQ(f.run.ctas, base.run.ctas);
    EXPECT_EQ(f.gmemImage, base.gmemImage);
    // Lost capacity can stretch the schedule, never shrink it.
    EXPECT_GE(f.run.cycles, base.run.cycles);
}

TEST(FaultPolicies, CorruptionLivelockIsContained)
{
    // bfs under uncontained corruption livelocks (a stuck cell lands
    // under loop-control state); the run must stop at the hang budget
    // and report it rather than spin to the 200M-cycle guard.
    ExperimentConfig cfg;
    cfg.numSms = 2;
    cfg.faults.ber = 1e-4;
    cfg.faults.policy = FaultPolicy::None;
    cfg.faults.hangCycles = 2'000'000;
    WorkloadInstance wl = makeWorkload("bfs", cfg.scale, cfg.seedSalt);
    Gpu gpu(makeGpuParams(cfg), *wl.gmem, *wl.cmem);
    const RunResult run = gpu.run(wl.kernel, wl.dims);
    EXPECT_TRUE(run.hung);
    EXPECT_EQ(run.cycles, cfg.faults.hangCycles);
}

TEST(FaultPolicies, ExtremeBerMakesDisableEntryUnschedulable)
{
    // At BER 0.2 essentially no stripe survives; the run must report
    // the grid unschedulable instead of spinning to the deadlock guard.
    const FaultOutcome f =
        runFaulty("nw", 0.2, FaultPolicy::DisableEntry);
    EXPECT_TRUE(f.run.unschedulable);
    EXPECT_EQ(f.run.fault.usableRegs, 0u);
}

TEST(FaultCensus, CapacityOrderingAcrossPolicies)
{
    RegFileParams rp;
    for (double ber : {1e-4, 1e-3, 5e-3}) {
        FaultParams fp;
        fp.ber = ber;
        fp.seed = kSeed;

        fp.policy = FaultPolicy::None;
        const RegisterFile none(rp, fp);
        fp.policy = FaultPolicy::DisableEntry;
        const RegisterFile disable(rp, fp);
        fp.policy = FaultPolicy::CompressRemap;
        const RegisterFile remap(rp, fp);

        // Same seed, same map: the census must only depend on policy.
        ASSERT_EQ(none.faultStats().faultyCells,
                  remap.faultStats().faultyCells);

        // CompressRemap salvages every stripe DisableEntry discards
        // whose healthy prefix still fits a compressed register.
        const u64 u_none = none.faultStats().usableRegs;
        const u64 u_disable = disable.faultStats().usableRegs;
        const u64 u_remap = remap.faultStats().usableRegs;
        EXPECT_EQ(u_none, u_disable);
        EXPECT_GE(u_remap, u_disable);
        EXPECT_LT(u_disable, none.faultStats().totalRegs);
    }

    // At a BER where faulty stripes are common, the salvage is strict.
    FaultParams fp;
    fp.ber = 5e-3;
    fp.seed = kSeed;
    fp.policy = FaultPolicy::DisableEntry;
    const RegisterFile disable(rp, fp);
    fp.policy = FaultPolicy::CompressRemap;
    const RegisterFile remap(rp, fp);
    EXPECT_GT(remap.faultStats().usableRegs,
              disable.faultStats().usableRegs);
}

TEST(FaultAllocation, DisableEntryOnlyHandsOutHealthyStripes)
{
    RegFileParams rp;
    FaultParams fp;
    fp.ber = 1e-3;
    fp.policy = FaultPolicy::DisableEntry;
    fp.seed = kSeed;
    RegisterFile rf(rp, fp);
    const FaultMap *map = rf.faultMap();
    ASSERT_NE(map, nullptr);

    const u32 regs_per_slot = 24;
    u32 slot = 0;
    while (rf.canAllocate(regs_per_slot)) {
        ASSERT_TRUE(rf.allocate(slot, regs_per_slot, 0));
        for (u32 r = 0; r < regs_per_slot; ++r) {
            const RegSlot s = rf.locate(slot, r);
            EXPECT_FALSE(map->stripeFaulty(s.firstBank(), s.entry))
                << "allocator handed out disabled stripe (cluster "
                << s.cluster << ", entry " << s.entry << ")";
        }
        ++slot;
    }
    EXPECT_EQ(rf.allocatedRegs(), slot * regs_per_slot);
    // Draining the allocator leaves only a sub-slot remainder of the
    // healthy capacity unclaimed.
    EXPECT_LT(rf.faultStats().usableRegs - rf.allocatedRegs(),
              regs_per_slot);

    // Release in interleaved order and reallocate: the free-id list
    // must recycle cleanly.
    for (u32 s = 0; s < slot; s += 2)
        rf.release(s, 10);
    for (u32 s = 0; s < slot; s += 2)
        ASSERT_TRUE(rf.allocate(s, regs_per_slot, 20));
    EXPECT_EQ(rf.allocatedRegs(), slot * regs_per_slot);
}

TEST(FaultPolicies, PolicyNamesRoundTrip)
{
    for (FaultPolicy p : {FaultPolicy::None, FaultPolicy::DisableEntry,
                          FaultPolicy::CompressRemap}) {
        const auto parsed = faultPolicyFromName(faultPolicyName(p));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, p);
    }
    EXPECT_FALSE(faultPolicyFromName("Bogus").has_value());
}

TEST(FaultDeterminism, RepeatedRunsAreBitIdentical)
{
    // The whole pipeline — map generation, corruption, remap traffic —
    // must be a pure function of (workload, config, seed).
    const FaultOutcome a = runFaulty("nw", 1e-3, FaultPolicy::None);
    const FaultOutcome b = runFaulty("nw", 1e-3, FaultPolicy::None);
    EXPECT_EQ(a.gmemImage, b.gmemImage);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.fault.corruptedWrites, b.run.fault.corruptedWrites);
    EXPECT_EQ(a.run.fault.faultyCells, b.run.fault.faultyCells);
}

} // namespace
} // namespace warpcomp
