/**
 * @file
 * Register-file tests: power-gate FSM, per-bank valid bits, warp
 * register allocation/release, compressed footprints, wakeup stalls,
 * and the incremental compressed-register census.
 */

#include <gtest/gtest.h>

#include "regfile/regfile.hpp"

namespace warpcomp {
namespace {

BdiEncoded
encodeUniform(u32 value)
{
    WarpRegValue v{};
    v.fill(value);
    return bdiCompress(toBytes(v), warpedCandidates());
}

BdiEncoded
encodeStride(u32 base, u32 stride)
{
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = base + stride * i;
    return bdiCompress(toBytes(v), warpedCandidates());
}

BdiEncoded
encodeRandomish()
{
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = i * 0x9E3779B9u;
    return bdiCompress(toBytes(v), warpedCandidates());
}

TEST(PowerGate, DisabledNeverGates)
{
    PowerGate g(10, false);
    EXPECT_EQ(g.state(0), PowerGate::State::On);
    g.sleep(5);
    EXPECT_EQ(g.state(6), PowerGate::State::On);
    EXPECT_EQ(g.gatedCycles(100), 0u);
}

TEST(PowerGate, EnabledStartsOff)
{
    PowerGate g(10, true);
    EXPECT_TRUE(g.isOff(0));
    EXPECT_EQ(g.gatedCycles(50), 50u);
}

TEST(PowerGate, WakeTakesLatency)
{
    PowerGate g(10, true);
    const Cycle ready = g.wake(100);
    EXPECT_EQ(ready, 110u);
    EXPECT_EQ(g.state(105), PowerGate::State::Waking);
    EXPECT_EQ(g.state(110), PowerGate::State::On);
    EXPECT_EQ(g.gatedCycles(200), 100u);
}

TEST(PowerGate, WakeWhileWakingJoins)
{
    PowerGate g(10, true);
    const Cycle r1 = g.wake(100);
    const Cycle r2 = g.wake(104);
    EXPECT_EQ(r1, r2);
}

TEST(PowerGate, SleepThenWakeAccumulates)
{
    PowerGate g(10, true);
    g.wake(0);                  // ready at 10
    g.sleep(20);
    EXPECT_EQ(g.wake(50), 60u);
    // 0..0 off before first wake (0 cycles) + 20..50 off = 30.
    EXPECT_EQ(g.gatedCycles(100), 30u);
}

TEST(PowerGate, SleepWhileWakingIgnored)
{
    PowerGate g(10, true);
    g.wake(0);
    g.sleep(5);                 // still waking; must not re-gate
    EXPECT_EQ(g.state(10), PowerGate::State::On);
}

TEST(BankSet, ValidCountTracksEntries)
{
    BankSet bs(1, 16, 10, true);
    bs.wake(0, 0);
    bs.setValid(0, 3, true, 10);
    bs.setValid(0, 4, true, 10);
    EXPECT_EQ(bs.validCount(0), 2u);
    bs.setValid(0, 3, false, 11);
    EXPECT_EQ(bs.validCount(0), 1u);
    EXPECT_FALSE(bs.isOff(0, 11));
    bs.setValid(0, 4, false, 12);
    EXPECT_EQ(bs.validCount(0), 0u);
    EXPECT_TRUE(bs.isOff(0, 12));
}

TEST(BankSet, RedundantSetValidIsIdempotent)
{
    BankSet bs(1, 8, 10, true);
    bs.wake(0, 0);
    bs.setValid(0, 0, true, 10);
    bs.setValid(0, 0, true, 10);
    EXPECT_EQ(bs.validCount(0), 1u);
}

TEST(BankSet, SettingValidInGatedBankDies)
{
    BankSet bs(1, 8, 10, true);
    EXPECT_DEATH(bs.setValid(0, 0, true, 0), "wake it first");
}

TEST(BankSet, OffCountTracksGatingIncrementally)
{
    BankSet bs(8, 8, 10, true);
    EXPECT_EQ(bs.offCount(), 8u);       // enabled gates start Off
    bs.wake(0, 0);
    bs.wake(1, 0);
    EXPECT_EQ(bs.offCount(), 6u);
    bs.wake(1, 3);                      // waking twice counts once
    EXPECT_EQ(bs.offCount(), 6u);
    bs.setValid(0, 2, true, 10);
    bs.setValid(0, 2, false, 20);       // last entry gone: bank gates
    EXPECT_EQ(bs.offCount(), 7u);
    // Bank 1 never held data and never slept: still powered.
    EXPECT_FALSE(bs.isOff(1, 30));
}

TEST(BankSet, OffCountDisabledGatingIsZero)
{
    BankSet bs(8, 8, 10, false);
    EXPECT_EQ(bs.offCount(), 0u);
    bs.setValid(3, 1, true, 0);
    bs.setValid(3, 1, false, 5);
    EXPECT_EQ(bs.offCount(), 0u);
}

TEST(BankSet, ValidMaskPacksStripeBits)
{
    BankSet bs(16, 4, 10, false);
    bs.setValid(8, 2, true, 0);         // cluster 1, bit 0
    bs.setValid(10, 2, true, 0);        // cluster 1, bit 2
    EXPECT_EQ(bs.validMask(1, 2), 0b101u);
    EXPECT_EQ(bs.validMask(0, 2), 0u);
    bs.setValid(8, 2, false, 1);
    EXPECT_EQ(bs.validMask(1, 2), 0b100u);
}

TEST(BankSet, ActivitySpanMatchesPerCycleCensus)
{
    BankSet bs(8, 8, 10, true);
    bs.wake(0, 0);
    bs.wake(3, 0);
    bs.noteWrite(0, 12);
    bs.noteWrite(3, 40);
    const Cycle from = 30, to = 130;
    u64 want_active = 0, want_drowsy = 0;
    for (Cycle c = from; c < to; ++c) {
        const BankSet::Activity a = bs.activity(c, true, 64);
        want_active += a.active;
        want_drowsy += a.drowsy;
    }
    u64 got_active = 0, got_drowsy = 0;
    bs.activitySpan(from, to, true, 64, got_active, got_drowsy);
    EXPECT_EQ(got_active, want_active);
    EXPECT_EQ(got_drowsy, want_drowsy);

    // Non-drowsy closed form: awake banks times span length.
    u64 plain_active = 0, plain_drowsy = 0;
    bs.activitySpan(from, to, false, 64, plain_active, plain_drowsy);
    EXPECT_EQ(plain_active, (to - from) * 2);
    EXPECT_EQ(plain_drowsy, 0u);
}

class RegFileTest : public ::testing::Test
{
  protected:
    RegFileParams
    wcParams()
    {
        RegFileParams p;
        p.gatingEnabled = true;
        p.validAtAlloc = false;
        return p;
    }

    RegFileParams
    baseParams()
    {
        RegFileParams p;
        p.gatingEnabled = false;
        p.validAtAlloc = true;
        return p;
    }
};

TEST_F(RegFileTest, GeometryDefaults)
{
    RegisterFile rf(wcParams());
    EXPECT_EQ(rf.numBanks(), 32u);
    EXPECT_EQ(rf.params().numClusters(), 4u);
    EXPECT_EQ(rf.params().totalWarpRegs(), 1024u);
}

TEST_F(RegFileTest, AllocationInterleavesClusters)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 8, 0));
    const RegSlot s0 = rf.locate(0, 0);
    const RegSlot s1 = rf.locate(0, 1);
    const RegSlot s4 = rf.locate(0, 4);
    EXPECT_EQ(s0.cluster, 0u);
    EXPECT_EQ(s1.cluster, 1u);
    EXPECT_EQ(s4.cluster, 0u);
    EXPECT_EQ(s4.entry, s0.entry + 1);
}

TEST_F(RegFileTest, CapacityExhaustion)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 1000, 0));
    EXPECT_FALSE(rf.canAllocate(25));
    EXPECT_FALSE(rf.allocate(1, 25, 0));
    EXPECT_TRUE(rf.allocate(1, 24, 0));
}

TEST_F(RegFileTest, ReleaseCoalescesFreeList)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 100, 0));
    ASSERT_TRUE(rf.allocate(1, 100, 0));
    ASSERT_TRUE(rf.allocate(2, 100, 0));
    rf.release(1, 10);
    rf.release(0, 10);
    rf.release(2, 10);
    // Everything back: a single 1024-register allocation must succeed.
    EXPECT_TRUE(rf.allocate(3, 1024, 20));
}

TEST_F(RegFileTest, UnwrittenRegisterHasNoFootprint)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 4, 0));
    const RegAccess a = rf.readAccess(0, 2);
    EXPECT_EQ(a.numBanks, 0u);
    EXPECT_FALSE(a.compressed);
    EXPECT_FALSE(rf.isWritten(0, 2));
}

TEST_F(RegFileTest, BaselineRegisterOccupiesFullStripe)
{
    RegisterFile rf(baseParams());
    ASSERT_TRUE(rf.allocate(0, 4, 0));
    const RegAccess a = rf.readAccess(0, 0);
    EXPECT_EQ(a.numBanks, kBanksPerWarpReg);
    EXPECT_EQ(a.bytes, kWarpRegBytes);
}

TEST_F(RegFileTest, CompressedWriteShrinksFootprint)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 4, 0));

    auto [ready, acc] = rf.recordWrite(0, 0, encodeUniform(7), 100);
    EXPECT_EQ(acc.numBanks, 1u);
    EXPECT_TRUE(acc.compressed);
    EXPECT_GE(ready, 100u);             // wakeup may defer completion
    EXPECT_EQ(rf.indicator(0, 0), RangeIndicator::Base40);

    const RegAccess r = rf.readAccess(0, 0);
    EXPECT_EQ(r.numBanks, 1u);
    EXPECT_EQ(r.bytes, 4u);
}

TEST_F(RegFileTest, UncompressedOverwriteGrowsThenShrinks)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 1, 0));

    rf.recordWrite(0, 0, encodeRandomish(), 0);
    EXPECT_EQ(rf.readAccess(0, 0).numBanks, 8u);

    Cycle t = 100;
    auto [ready, acc] = rf.recordWrite(0, 0, encodeStride(5, 1), t);
    EXPECT_EQ(acc.numBanks, 3u);        // <4,1>
    // Banks 3..7 of the cluster must have been invalidated.
    const RegSlot s = rf.locate(0, 0);
    for (u32 b = 3; b < 8; ++b)
        EXPECT_FALSE(rf.bankValid(s.firstBank() + b, s.entry));
    for (u32 b = 0; b < 3; ++b)
        EXPECT_TRUE(rf.bankValid(s.firstBank() + b, s.entry));
}

TEST_F(RegFileTest, WakeupStallOnGatedBank)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 1, 0));
    // All banks start gated; the first write pays the wakeup.
    auto [ready, acc] = rf.recordWrite(0, 0, encodeUniform(1), 50);
    EXPECT_EQ(ready, 50u + rf.params().wakeupLatency);
    // A second write to the (now-awake) bank completes immediately.
    auto [ready2, acc2] = rf.recordWrite(0, 0, encodeUniform(2), 80);
    EXPECT_EQ(ready2, 80u);
}

TEST_F(RegFileTest, GatingFreesUnusedBanks)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 1, 0));
    rf.recordWrite(0, 0, encodeUniform(3), 0);
    // Only one bank awake in that cluster (plus none elsewhere).
    EXPECT_EQ(rf.awakeBanks(20), 1u);
    rf.release(0, 30);
    EXPECT_EQ(rf.awakeBanks(40), 0u);
}

TEST_F(RegFileTest, BaselineNeverGates)
{
    RegisterFile rf(baseParams());
    ASSERT_TRUE(rf.allocate(0, 4, 0));
    rf.release(0, 10);
    EXPECT_EQ(rf.awakeBanks(20), 32u);
    for (u32 b = 0; b < 32; ++b)
        EXPECT_EQ(rf.gatedCycles(b, 100), 0u);
}

TEST_F(RegFileTest, CensusTracksTransitions)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 3, 0));
    EXPECT_EQ(rf.compressedCensus(), (std::pair<u32, u32>{0, 0}));

    rf.recordWrite(0, 0, encodeUniform(1), 0);
    rf.recordWrite(0, 1, encodeRandomish(), 0);
    EXPECT_EQ(rf.compressedCensus(), (std::pair<u32, u32>{1, 2}));

    rf.recordWrite(0, 1, encodeUniform(2), 10);     // now compressed
    EXPECT_EQ(rf.compressedCensus(), (std::pair<u32, u32>{2, 2}));

    rf.recordWrite(0, 0, encodeRandomish(), 20);    // decompressed
    EXPECT_EQ(rf.compressedCensus(), (std::pair<u32, u32>{1, 2}));

    rf.release(0, 30);
    EXPECT_EQ(rf.compressedCensus(), (std::pair<u32, u32>{0, 0}));
}

TEST_F(RegFileTest, WriteCountersPerBank)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 1, 0));
    auto [ready, acc] = rf.recordWrite(0, 0, encodeStride(0, 1), 0);
    u64 writes = 0;
    for (u32 b = 0; b < rf.numBanks(); ++b)
        writes += rf.bankWrites(b);
    EXPECT_EQ(writes, acc.numBanks);
}

TEST_F(RegFileTest, StoredEncodingRoundTrips)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 2, 0));
    const BdiEncoded enc = encodeStride(100, 3);
    rf.recordWrite(0, 0, enc, 0);
    const BdiEncoded back = rf.storedEncoding(0, 0);
    EXPECT_EQ(back.compressed, enc.compressed);
    EXPECT_EQ(back.params, enc.params);
    EXPECT_TRUE(back.bytes == enc.bytes);
    EXPECT_EQ(bdiDecompress(back), bdiDecompress(enc));

    // An overwrite replaces the stored row wholesale.
    const BdiEncoded enc2 = encodeRandomish();
    rf.recordWrite(0, 0, enc2, 10);
    const BdiEncoded back2 = rf.storedEncoding(0, 0);
    EXPECT_FALSE(back2.compressed);
    EXPECT_TRUE(back2.bytes == enc2.bytes);
}

TEST_F(RegFileTest, DoubleAllocateSameSlotDies)
{
    RegisterFile rf(wcParams());
    ASSERT_TRUE(rf.allocate(0, 4, 0));
    EXPECT_DEATH(rf.allocate(0, 4, 0), "already allocated");
}

TEST_F(RegFileTest, AccessToInactiveSlotDies)
{
    RegisterFile rf(wcParams());
    EXPECT_DEATH(rf.readAccess(3, 0), "inactive warp slot");
}

} // namespace
} // namespace warpcomp
