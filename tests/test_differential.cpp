/**
 * @file
 * Differential testing of compression transparency (Sec. 5): for every
 * registered workload, a run under warped-compression must be
 * architecturally indistinguishable from the uncompressed baseline —
 * identical final global-memory image, identical program instruction
 * stream (dummy decompress-MOVs are the only addition, and they are
 * microarchitectural), and identical CTA count. Energy and cycle
 * counts may differ; architectural state may not.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "sim/gpu.hpp"
#include "workloads/registry.hpp"

namespace warpcomp {
namespace {

struct ArchOutcome
{
    std::vector<u8> gmemImage;
    u64 programInstructions = 0;    ///< issued minus injected MOVs
    u64 regWrites = 0;
    u64 ctas = 0;
};

ArchOutcome
runArch(const std::string &name, CompressionScheme scheme)
{
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.numSms = 2;                 // keep the 19-workload sweep quick
    WorkloadInstance wl = makeWorkload(name, cfg.scale, cfg.seedSalt);
    Gpu gpu(makeGpuParams(cfg), *wl.gmem, *wl.cmem);
    const RunResult run = gpu.run(wl.kernel, wl.dims);
    ArchOutcome out;
    const auto img = wl.gmem->bytes();
    out.gmemImage.assign(img.begin(), img.end());
    out.programInstructions = run.stats.issued - run.stats.dummyMovs;
    out.regWrites = run.stats.regWrites;
    out.ctas = run.ctas;
    return out;
}

class Differential : public ::testing::TestWithParam<std::string>
{};

TEST_P(Differential, WarpedMatchesUncompressedBaseline)
{
    const ArchOutcome base = runArch(GetParam(), CompressionScheme::None);
    const ArchOutcome wc = runArch(GetParam(), CompressionScheme::Warped);

    EXPECT_EQ(wc.programInstructions, base.programInstructions)
        << "compression altered the executed program";
    EXPECT_EQ(wc.regWrites, base.regWrites);
    EXPECT_EQ(wc.ctas, base.ctas);

    ASSERT_EQ(wc.gmemImage.size(), base.gmemImage.size());
    // memcmp first; on mismatch report the first differing word.
    if (wc.gmemImage != base.gmemImage) {
        for (std::size_t i = 0; i < base.gmemImage.size(); ++i) {
            ASSERT_EQ(wc.gmemImage[i], base.gmemImage[i])
                << "global memory diverges at byte " << i;
        }
    }
    SUCCEED();
}

TEST_P(Differential, AllSchemesPreserveMemoryImage)
{
    // The static single-parameter variants and the full-BDI explorer
    // must be just as transparent as the warped scheme.
    const ArchOutcome base = runArch(GetParam(), CompressionScheme::None);
    for (CompressionScheme s :
         {CompressionScheme::Fixed40, CompressionScheme::FullBdi}) {
        const ArchOutcome alt = runArch(GetParam(), s);
        EXPECT_EQ(alt.programInstructions, base.programInstructions);
        EXPECT_TRUE(alt.gmemImage == base.gmemImage)
            << "scheme " << static_cast<int>(s)
            << " altered the final memory image";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Differential, ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace warpcomp
