/**
 * @file
 * Disassembler golden-string test: every opcode, rendered from a
 * canonical instruction, must produce exactly the expected text. The
 * table is size-checked against Opcode::NumOpcodes, so adding an
 * opcode without a golden entry fails to compile — the disassembly
 * format is load-bearing (the frontend differential suite asserts
 * listing equality), so format drift must be a deliberate act.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hpp"
#include "isa/instruction.hpp"

using namespace warpcomp;

namespace {

/** Canonical operand assignment per opcode shape: dst=r1, sources
 *  r2/r3/r4, predicates p0/p1/p2, memory offset +4, branch 5->7. */
Instruction
canonical(Opcode op)
{
    Instruction in;
    in.op = op;
    if (writesGpr(op))
        in.dst = 1;
    if (writesPred(op))
        in.dstPred = 0;

    const auto r = [](u8 n) { return Operand::fromReg(n); };
    switch (op) {
      case Opcode::Nop:
      case Opcode::Bar:
      case Opcode::Exit:
        break;
      case Opcode::S2R:
        in.sreg = SpecialReg::TidX;
        break;
      case Opcode::Mov:
      case Opcode::IAbs:
      case Opcode::Not:
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::FRcp:
        in.src[0] = r(2);
        break;
      case Opcode::MovImm:
        in.src[0] = Operand::fromImm(7);
        break;
      case Opcode::IMad:
      case Opcode::FFma:
        in.src[0] = r(2);
        in.src[1] = r(3);
        in.src[2] = r(4);
        break;
      case Opcode::ISetP:
      case Opcode::FSetP:
        in.cmp = CmpOp::Lt;
        in.src[0] = r(2);
        in.src[1] = r(3);
        break;
      case Opcode::SelP:
        in.srcPred = 1;
        in.src[0] = r(2);
        in.src[1] = r(3);
        break;
      case Opcode::PAnd:
      case Opcode::POr:
        in.srcPred = 1;
        in.srcPred2 = 2;
        break;
      case Opcode::PNot:
        in.srcPred = 1;
        break;
      case Opcode::Ldg:
      case Opcode::Lds:
        in.src[0] = r(2);
        in.memOffset = 4;
        break;
      case Opcode::Ldc:
        in.src[0] = Operand::fromImm(0);
        in.memOffset = 4;
        break;
      case Opcode::Stg:
      case Opcode::Sts:
        in.src[0] = r(2);
        in.src[1] = r(3);
        in.memOffset = 4;
        break;
      case Opcode::Bra:
        in.target = 5;
        in.reconv = 7;
        break;
      default: // two-source ALU / FP
        in.src[0] = r(2);
        in.src[1] = r(3);
        break;
    }
    return in;
}

struct Golden
{
    Opcode op;
    const char *text;
};

const Golden kGolden[] = {
    {Opcode::Nop, "NOP"},
    {Opcode::S2R, "S2R r1, SR_TID.X"},
    {Opcode::Mov, "MOV r1, r2"},
    {Opcode::MovImm, "MOV32I r1, #7"},
    {Opcode::IAdd, "IADD r1, r2, r3"},
    {Opcode::ISub, "ISUB r1, r2, r3"},
    {Opcode::IMul, "IMUL r1, r2, r3"},
    {Opcode::IMad, "IMAD r1, r2, r3, r4"},
    {Opcode::IMin, "IMIN r1, r2, r3"},
    {Opcode::IMax, "IMAX r1, r2, r3"},
    {Opcode::IAbs, "IABS r1, r2"},
    {Opcode::And, "AND r1, r2, r3"},
    {Opcode::Or, "OR r1, r2, r3"},
    {Opcode::Xor, "XOR r1, r2, r3"},
    {Opcode::Not, "NOT r1, r2"},
    {Opcode::Shl, "SHL r1, r2, r3"},
    {Opcode::Shr, "SHR r1, r2, r3"},
    {Opcode::Sra, "SRA r1, r2, r3"},
    {Opcode::IMulHi, "IMULHI r1, r2, r3"},
    {Opcode::IMulHiU, "IMULHI.U r1, r2, r3"},
    {Opcode::IDiv, "IDIV r1, r2, r3"},
    {Opcode::IDivU, "IDIV.U r1, r2, r3"},
    {Opcode::IRem, "IREM r1, r2, r3"},
    {Opcode::IRemU, "IREM.U r1, r2, r3"},
    {Opcode::ISetP, "ISETP.LT p0, r2, r3"},
    {Opcode::SelP, "SELP r1, p1, r2, r3"},
    {Opcode::PAnd, "PAND p0, p1, p2"},
    {Opcode::POr, "POR p0, p1, p2"},
    {Opcode::PNot, "PNOT p0, p1"},
    {Opcode::FAdd, "FADD r1, r2, r3"},
    {Opcode::FMul, "FMUL r1, r2, r3"},
    {Opcode::FFma, "FFMA r1, r2, r3, r4"},
    {Opcode::FMin, "FMIN r1, r2, r3"},
    {Opcode::FMax, "FMAX r1, r2, r3"},
    {Opcode::FSetP, "FSETP.LT p0, r2, r3"},
    {Opcode::I2F, "I2F r1, r2"},
    {Opcode::F2I, "F2I r1, r2"},
    {Opcode::FRcp, "FRCP r1, r2"},
    {Opcode::Ldg, "LDG r1, r2 +4"},
    {Opcode::Stg, "STG r2, r3 +4"},
    {Opcode::Lds, "LDS r1, r2 +4"},
    {Opcode::Sts, "STS r2, r3 +4"},
    {Opcode::Ldc, "LDC r1, #0 +4"},
    {Opcode::Bra, "BRA ->5 (reconv 7)"},
    {Opcode::Bar, "BAR"},
    {Opcode::Exit, "EXIT"},
};

static_assert(sizeof(kGolden) / sizeof(kGolden[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "every opcode needs a golden disassembly entry");

} // namespace

TEST(DisasmRoundTrip, EveryOpcodeMatchesGolden)
{
    for (size_t i = 0; i < sizeof(kGolden) / sizeof(kGolden[0]); ++i) {
        // Table order mirrors the enum, so a reorder is caught too.
        ASSERT_EQ(static_cast<size_t>(kGolden[i].op), i)
            << "golden table out of order at index " << i;
        EXPECT_EQ(disassemble(canonical(kGolden[i].op)), kGolden[i].text)
            << "opcode " << opcodeName(kGolden[i].op);
    }
}

TEST(DisasmRoundTrip, GuardPrefixes)
{
    Instruction in = canonical(Opcode::Bra);
    in.guardPred = 1;
    in.guardNegate = true;
    EXPECT_EQ(disassemble(in), "@!p1 BRA ->5 (reconv 7)");
    in.guardNegate = false;
    EXPECT_EQ(disassemble(in), "@p1 BRA ->5 (reconv 7)");
}

TEST(DisasmRoundTrip, ZeroOffsetIsElided)
{
    Instruction in = canonical(Opcode::Ldg);
    in.memOffset = 0;
    EXPECT_EQ(disassemble(in), "LDG r1, r2");
}
