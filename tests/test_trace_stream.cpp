/**
 * @file
 * Streaming trace export + offline analytics: dump round-trip against
 * the live run, byte-identity across reruns / thread counts / ring
 * configurations, live-vs-offline Perfetto convergence, structured
 * truncation/corruption detection, and determinism of every analyzer
 * report. The dumps come from real runWorkload runs so the whole
 * pipeline (harness sink arming → simulator hooks → writer → loader →
 * reports) is exercised, not just the codec.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_parse.hpp"
#include "harness/experiment.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace_analyze.hpp"
#include "obs/trace_stream.hpp"

namespace warpcomp {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "wc_trace_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.good()) << path;
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

ExperimentConfig
streamedConfig(const std::string &dump_path, bool ring_too)
{
    ExperimentConfig cfg;
    cfg.numSms = 2;
    cfg.obs.trace = ring_too;
    cfg.obs.windowInterval = 500;
    cfg.obs.streamPath = dump_path;
    cfg.obs.streamLabel = "stream-test";
    return cfg;
}

/** One streamed reference run, shared across tests (runWorkload is the
 *  expensive part; every consumer only reads). */
struct StreamedRun
{
    std::string dumpPath;
    ExperimentResult result;
};

const StreamedRun &
streamedRun()
{
    static const StreamedRun run = [] {
        const std::string path = tempPath("roundtrip.wctrace");
        return StreamedRun{path,
                           runWorkload("nw", streamedConfig(path, true))};
    }();
    return run;
}

TEST(TraceStream, RoundTripMatchesLiveRun)
{
    const StreamedRun &run = streamedRun();
    ASSERT_NE(run.result.run.obs, nullptr);
    const ObsRun &obs = *run.result.run.obs;
    ASSERT_EQ(obs.ring().dropped(), 0u)
        << "reference run overflowed the ring; enlarge ringCapacity";

    TraceDumpError err;
    const auto dump = loadTraceDump(run.dumpPath, &err);
    ASSERT_TRUE(dump.has_value()) << err.code << ": " << err.detail;

    EXPECT_EQ(dump->meta.workload, "nw");
    EXPECT_EQ(dump->meta.config, "stream-test");
    EXPECT_EQ(dump->meta.frontend, "dsl");
    EXPECT_EQ(dump->meta.gitSha, traceStreamGitSha());
    EXPECT_EQ(dump->meta.numSms, 2u);
    EXPECT_EQ(dump->meta.windowInterval, 500u);
    EXPECT_EQ(dump->cycles, run.result.run.cycles);

    // The dump holds exactly the ring's events, in order.
    ASSERT_EQ(dump->events.size(), obs.ring().size());
    EXPECT_EQ(dump->events.size(), obs.streamedEvents());
    EXPECT_GT(dump->events.size(), 0u);
    for (std::size_t i = 0; i < dump->events.size(); ++i) {
        const TraceEvent &a = dump->events[i];
        const TraceEvent &b = obs.ring().at(i);
        ASSERT_EQ(a.cycle, b.cycle) << "event " << i;
        ASSERT_EQ(a.a, b.a) << "event " << i;
        ASSERT_EQ(a.b, b.b) << "event " << i;
        ASSERT_EQ(a.sm, b.sm) << "event " << i;
        ASSERT_EQ(a.lane, b.lane) << "event " << i;
        ASSERT_EQ(a.c, b.c) << "event " << i;
        ASSERT_EQ(static_cast<u32>(a.kind), static_cast<u32>(b.kind))
            << "event " << i;
    }

    // And the window rows, verbatim.
    const auto &rows = obs.windows().rows();
    ASSERT_EQ(dump->windows.size(), rows.size());
    EXPECT_GT(dump->windows.size(), 0u);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        ASSERT_EQ(dump->windows[i].issued, rows[i].issued) << i;
        ASSERT_EQ(dump->windows[i].dummyMovs, rows[i].dummyMovs) << i;
        ASSERT_EQ(dump->windows[i].regWrites, rows[i].regWrites) << i;
        ASSERT_EQ(dump->windows[i].storedBytes, rows[i].storedBytes)
            << i;
        ASSERT_EQ(dump->windows[i].rawBytes, rows[i].rawBytes) << i;
        ASSERT_EQ(dump->windows[i].gatedBankCycles,
                  rows[i].gatedBankCycles)
            << i;
        ASSERT_EQ(dump->windows[i].bankCycles, rows[i].bankCycles)
            << i;
        ASSERT_EQ(dump->windows[i].smCycles, rows[i].smCycles) << i;
    }

    // The new BankConflict hook actually fires on this workload — the
    // heatmap/stall reports have real contention data to chew on.
    u64 conflicts = 0;
    for (const TraceEvent &ev : dump->events)
        if (ev.kind == TraceEventKind::BankConflict)
            ++conflicts;
    EXPECT_GT(conflicts, 0u)
        << "no bank conflicts recorded; the collector-retry hook is "
           "not reaching the dump";
}

TEST(TraceStream, DumpBytesIdenticalAcrossRerunsAndRunners)
{
    const std::string rerun = tempPath("rerun.wctrace");
    runWorkload("nw", streamedConfig(rerun, true));
    EXPECT_EQ(slurp(rerun), slurp(streamedRun().dumpPath));

    // Same through the parallel runner on 4 workers.
    const std::string parallel = tempPath("parallel.wctrace");
    runWorkloadsParallel({"nw"}, streamedConfig(parallel, true), 4);
    EXPECT_EQ(slurp(parallel), slurp(streamedRun().dumpPath));

    std::remove(rerun.c_str());
    std::remove(parallel.c_str());
}

TEST(TraceStream, StreamingAloneNeedsNoRing)
{
    // --trace-out without --trace: bounded memory (no ring storage),
    // full event record on disk, and byte-identical to the dump the
    // ring-armed run produced.
    const std::string path = tempPath("ringless.wctrace");
    const ExperimentResult res =
        runWorkload("nw", streamedConfig(path, false));
    ASSERT_NE(res.run.obs, nullptr);
    EXPECT_EQ(res.run.obs->ring().pushed(), 0u);
    EXPECT_EQ(res.run.obs->ring().dropped(), 0u);
    EXPECT_GT(res.run.obs->streamedEvents(), 0u);
    EXPECT_EQ(slurp(path), slurp(streamedRun().dumpPath));
    std::remove(path.c_str());
}

TEST(TraceStream, ChromeExportConvergesWithLiveTrace)
{
    const StreamedRun &run = streamedRun();
    ASSERT_NE(run.result.run.obs, nullptr);

    ChromeTraceMeta meta;
    meta.workload = run.result.workload;
    meta.config = "stream-test";
    meta.numSms = 2;
    meta.numBanks =
        makeGpuParams(streamedConfig("", true)).sm.regfile.numBanks;
    meta.cycles = run.result.run.cycles;
    std::ostringstream live;
    writeChromeTrace(live, *run.result.run.obs, meta);

    TraceDumpError err;
    const auto dump = loadTraceDump(run.dumpPath, &err);
    ASSERT_TRUE(dump.has_value()) << err.code << ": " << err.detail;
    std::ostringstream replay;
    writeDumpChromeTrace(replay, *dump);

    EXPECT_EQ(replay.str(), live.str())
        << "offline Perfetto export diverged from the live --trace "
           "path";
}

TEST(TraceStream, ReportsAreDeterministicAndValidJson)
{
    TraceDumpError err;
    const auto dump = loadTraceDump(streamedRun().dumpPath, &err);
    ASSERT_TRUE(dump.has_value()) << err.code << ": " << err.detail;

    using Writer = void (*)(std::ostream &, const TraceDump &);
    const Writer writers[] = {writeDumpSummary, writeBankHeatmap,
                              writeStallReport, writeDecisionReport,
                              writeDumpChromeTrace};
    const char *names[] = {"summary", "heatmap", "stalls", "decisions",
                           "chrome"};
    for (std::size_t i = 0; i < 5; ++i) {
        std::ostringstream once, twice;
        writers[i](once, *dump);
        writers[i](twice, *dump);
        EXPECT_EQ(once.str(), twice.str()) << names[i];
        const JsonParseOutcome parsed = parseJson(once.str());
        EXPECT_TRUE(parsed.ok())
            << names[i] << ": " << parsed.error;
    }
}

TEST(TraceStream, StallAttributionAddsUp)
{
    // Every attributed bucket must fit inside the warp's inter-issue
    // span: sum(buckets) == span - (issues - 1) issue cycles.
    TraceDumpError err;
    const auto dump = loadTraceDump(streamedRun().dumpPath, &err);
    ASSERT_TRUE(dump.has_value()) << err.code << ": " << err.detail;
    std::ostringstream ss;
    writeStallReport(ss, *dump);
    const JsonParseOutcome parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue *warps = parsed.value->find("warps");
    ASSERT_NE(warps, nullptr);
    ASSERT_TRUE(warps->isArray());
    ASSERT_FALSE(warps->items.empty());
    for (const JsonValue &wv : warps->items) {
        const u64 issues = wv.find("issues")->asU64().value();
        const u64 first = wv.find("first_issue")->asU64().value();
        const u64 last = wv.find("last_issue")->asU64().value();
        const JsonValue *b = wv.find("stall_cycles");
        ASSERT_NE(b, nullptr);
        const u64 total = b->find("collector_retry")->asU64().value() +
                          b->find("decompress_penalty")->asU64().value() +
                          b->find("scoreboard")->asU64().value() +
                          b->find("issue_blocked")->asU64().value();
        ASSERT_GE(issues, 1u);
        EXPECT_EQ(total, (last - first) - (issues - 1))
            << "sm/warp " << wv.find("sm")->asU64().value() << "/"
            << wv.find("warp")->asU64().value();
    }
}

TEST(TraceStream, EmptyRunDumpRoundTrips)
{
    const std::string path = tempPath("empty.wctrace");
    TraceStreamMeta meta;
    meta.gitSha = traceStreamGitSha();
    meta.workload = "none";
    meta.config = "empty";
    meta.numSms = 1;
    meta.numBanks = 4;
    {
        TraceStreamSink sink(path, meta);
        sink.finalize(0, ObsWindows(0));
    }
    TraceDumpError err;
    const auto dump = loadTraceDump(path, &err);
    ASSERT_TRUE(dump.has_value()) << err.code << ": " << err.detail;
    EXPECT_TRUE(dump->events.empty());
    EXPECT_TRUE(dump->windows.empty());
    EXPECT_EQ(dump->cycles, 0u);
    EXPECT_EQ(dump->meta.workload, "none");

    // Every report handles the degenerate dump without crashing.
    std::ostringstream ss;
    writeDumpSummary(ss, *dump);
    writeBankHeatmap(ss, *dump);
    writeStallReport(ss, *dump);
    writeDecisionReport(ss, *dump);
    writeDumpChromeTrace(ss, *dump);
    std::remove(path.c_str());
}

TEST(TraceStream, TruncationAndCorruptionAreStructuredErrors)
{
    const std::string good = slurp(streamedRun().dumpPath);
    ASSERT_GT(good.size(), 64u);
    const std::string path = tempPath("damaged.wctrace");
    TraceDumpError err;

    // Torn tail: the footer never made it (crash mid-run).
    spit(path, good.substr(0, good.size() - 1));
    EXPECT_FALSE(loadTraceDump(path, &err).has_value());
    EXPECT_EQ(err.code, "truncated_dump");

    spit(path, good.substr(0, good.size() / 2));
    EXPECT_FALSE(loadTraceDump(path, &err).has_value());
    EXPECT_EQ(err.code, "truncated_dump");

    // Shorter than the fixed header: not even a magic to trust.
    spit(path, good.substr(0, 10));
    EXPECT_FALSE(loadTraceDump(path, &err).has_value());
    EXPECT_EQ(err.code, "bad_magic");

    // Wrong magic entirely.
    spit(path, "definitely not a trace dump, sorry");
    EXPECT_FALSE(loadTraceDump(path, &err).has_value());
    EXPECT_EQ(err.code, "bad_magic");

    // Footer count disagrees with the records actually present.
    {
        std::string bytes = good;
        bytes[bytes.size() - 32] =
            static_cast<char>(bytes[bytes.size() - 32] ^ 0x01);
        spit(path, bytes);
        EXPECT_FALSE(loadTraceDump(path, &err).has_value());
        EXPECT_EQ(err.code, "footer_mismatch");
    }

    // Bytes after the footer: someone appended to a finalized dump.
    {
        std::string bytes = good;
        const char extra[] = {0x01, 0x04, 0x00, 0x00, 0x00,
                              0x00, 0x00, 0x00, 0x00};
        bytes.append(extra, sizeof(extra));
        spit(path, bytes);
        EXPECT_FALSE(loadTraceDump(path, &err).has_value());
        EXPECT_EQ(err.code, "trailing_data");
    }

    // Unknown event kind inside a batch.
    {
        std::string bytes = good;
        const u32 json_len =
            static_cast<u8>(bytes[12]) |
            (static_cast<u32>(static_cast<u8>(bytes[13])) << 8) |
            (static_cast<u32>(static_cast<u8>(bytes[14])) << 16) |
            (static_cast<u32>(static_cast<u8>(bytes[15])) << 24);
        const std::size_t first_kind =
            16 + json_len + 5 + 4 + (kPackedEventBytes - 1);
        ASSERT_LT(first_kind, bytes.size());
        bytes[first_kind] = static_cast<char>(0xEE);
        spit(path, bytes);
        EXPECT_FALSE(loadTraceDump(path, &err).has_value());
        EXPECT_EQ(err.code, "bad_record");
    }

    // Missing file.
    EXPECT_FALSE(
        loadTraceDump(tempPath("nonexistent.wctrace"), &err)
            .has_value());
    EXPECT_EQ(err.code, "open_failed");

    std::remove(path.c_str());
}

TEST(TraceStream, StatsGroupCountsStreamedEvents)
{
    const StreamedRun &run = streamedRun();
    ASSERT_NE(run.result.run.obs, nullptr);
    const StatGroup g = run.result.run.obs->statGroup();
    EXPECT_EQ(g.get("events_streamed"),
              run.result.run.obs->streamedEvents());
    EXPECT_GT(g.get("events_streamed"), 0u);
    // Streaming + ring together: nothing dropped, both complete.
    EXPECT_EQ(g.get("events_dropped"), 0u);
    EXPECT_EQ(g.get("events_offered"), g.get("events_streamed"));
}

} // namespace
} // namespace warpcomp
