/**
 * @file
 * Parallel-runner determinism: runSuiteParallel must produce results
 * bit-identical to serial runSuite for any thread count, runGrid must
 * match nested serial loops even with far more jobs than workers, and
 * the thread pool itself must execute every submitted job exactly once.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "harness/experiment.hpp"
#include "harness/thread_pool.hpp"

namespace warpcomp {
namespace {

/** Small config so the full suite stays fast under repetition. */
ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.numSms = 2;
    return cfg;
}

/** Exact equality over every field a run reports; doubles compare
 *  bitwise-equal because both paths execute identical arithmetic. */
void
expectRunsEqual(const ExperimentResult &a, const ExperimentResult &b)
{
    SCOPED_TRACE(a.workload);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.ctas, b.run.ctas);
    EXPECT_EQ(a.run.rfcHits, b.run.rfcHits);
    EXPECT_EQ(a.run.rfcMisses, b.run.rfcMisses);

    const SimStats &sa = a.run.stats;
    const SimStats &sb = b.run.stats;
    EXPECT_EQ(sa.issued, sb.issued);
    EXPECT_EQ(sa.issuedDivergent, sb.issuedDivergent);
    EXPECT_EQ(sa.dummyMovs, sb.dummyMovs);
    EXPECT_EQ(sa.regWrites, sb.regWrites);
    EXPECT_EQ(sa.regWritesDivergent, sb.regWritesDivergent);
    EXPECT_EQ(sa.writesStoredCompressed, sb.writesStoredCompressed);
    for (Phase ph : {kNonDivergent, kDivergent}) {
        for (u32 bin = 0; bin < kNumDistanceBins; ++bin) {
            EXPECT_EQ(sa.simBins.count(ph, static_cast<DistanceBin>(bin)),
                      sb.simBins.count(ph, static_cast<DistanceBin>(bin)));
        }
        EXPECT_EQ(sa.ratio.writes(ph), sb.ratio.writes(ph));
        EXPECT_EQ(sa.compressedFracSum[ph], sb.compressedFracSum[ph]);
        EXPECT_EQ(sa.compressedFracSamples[ph],
                  sb.compressedFracSamples[ph]);
    }
    for (u32 i = 0; i < 8; ++i)
        EXPECT_EQ(sa.bdiSelect[i], sb.bdiSelect[i]);

    const EnergyMeter &ma = a.run.meter;
    const EnergyMeter &mb = b.run.meter;
    EXPECT_EQ(ma.bankReads(), mb.bankReads());
    EXPECT_EQ(ma.bankWrites(), mb.bankWrites());
    EXPECT_EQ(ma.rfcAccesses(), mb.rfcAccesses());
    EXPECT_EQ(ma.compActivations(), mb.compActivations());
    EXPECT_EQ(ma.decompActivations(), mb.decompActivations());
    EXPECT_EQ(ma.awakeBankCycles(), mb.awakeBankCycles());
    EXPECT_EQ(ma.drowsyBankCycles(), mb.drowsyBankCycles());
    EXPECT_EQ(ma.cycles(), mb.cycles());

    ASSERT_EQ(a.run.bankGatedFraction.size(),
              b.run.bankGatedFraction.size());
    for (std::size_t i = 0; i < a.run.bankGatedFraction.size(); ++i)
        EXPECT_EQ(a.run.bankGatedFraction[i], b.run.bankGatedFraction[i]);
}

void
expectSuitesEqual(const std::vector<ExperimentResult> &a,
                  const std::vector<ExperimentResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectRunsEqual(a[i], b[i]);
}

class ParallelRunner : public ::testing::TestWithParam<u32>
{};

TEST_P(ParallelRunner, SuiteMatchesSerialBitExactly)
{
    const ExperimentConfig cfg = smallConfig();
    const auto serial = runSuite(cfg);
    const auto parallel = runSuiteParallel(cfg, GetParam());
    expectSuitesEqual(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelRunner,
                         ::testing::Values(1u, 2u, 8u));

TEST(ParallelRunner, SameSeedSameOutputAcrossRepeats)
{
    ExperimentConfig cfg = smallConfig();
    cfg.seedSalt = 7;
    const auto first = runSuiteParallel(cfg, 4);
    const auto second = runSuiteParallel(cfg, 4);
    expectSuitesEqual(first, second);
}

TEST(ParallelRunner, SeedSaltChangesInputsDeterministically)
{
    ExperimentConfig cfg = smallConfig();
    const auto canonical = runWorkload("nw", cfg);
    cfg.seedSalt = 0x5EEDu;
    const auto salted = runWorkload("nw", cfg);
    const auto salted2 = runWorkload("nw", cfg);
    // Same salt reproduces bit-exactly...
    expectRunsEqual(salted, salted2);
    // ...while a different salt regenerates nw's RNG-filled score
    // matrix, which must show up in the value-similarity profile.
    bool identical = true;
    for (Phase ph : {kNonDivergent, kDivergent}) {
        for (u32 bin = 0; bin < kNumDistanceBins; ++bin) {
            identical = identical &&
                canonical.run.stats.simBins.count(
                    ph, static_cast<DistanceBin>(bin)) ==
                salted.run.stats.simBins.count(
                    ph, static_cast<DistanceBin>(bin));
        }
    }
    EXPECT_FALSE(identical);
}

TEST(ParallelRunner, GridWithMoreJobsThanThreads)
{
    // 4 configs x 5 workloads = 20 jobs on 2 threads: a queue-pressure
    // stress that still must match the nested serial loops exactly.
    std::vector<ExperimentConfig> configs;
    for (CompressionScheme s :
         {CompressionScheme::None, CompressionScheme::Warped,
          CompressionScheme::Fixed40, CompressionScheme::FullBdi}) {
        ExperimentConfig cfg = smallConfig();
        cfg.scheme = s;
        configs.push_back(cfg);
    }
    const std::vector<std::string> workloads = {"nw", "lud", "stencil",
                                                "pathfinder", "lib"};

    const auto grid = runGrid(configs, workloads, 2);
    ASSERT_EQ(grid.size(), configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        ASSERT_EQ(grid[c].size(), workloads.size());
        for (std::size_t w = 0; w < workloads.size(); ++w)
            expectRunsEqual(runWorkload(workloads[w], configs[c]),
                            grid[c][w]);
    }
}

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    constexpr int kJobs = 1000;
    std::vector<std::atomic<int>> hits(kJobs);
    for (auto &h : hits)
        h.store(0);
    {
        ThreadPool pool(4);
        for (int i = 0; i < kJobs; ++i)
            pool.submit([&hits, i] { hits[i].fetch_add(1); });
        pool.wait();
        // wait() must be re-usable: submit a second wave.
        for (int i = 0; i < kJobs; ++i)
            pool.submit([&hits, i] { hits[i].fetch_add(1); });
        pool.wait();
    }
    for (int i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i].load(), 2) << "job " << i;
}

TEST(ThreadPool, WaitRethrowsFirstJobError)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, ResolveThreadCount)
{
    EXPECT_EQ(resolveThreadCount(3), 3u);
    EXPECT_GE(resolveThreadCount(0), 1u);
}

} // namespace
} // namespace warpcomp
