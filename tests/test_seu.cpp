/**
 * @file
 * Transient-fault (SEU) subsystem tests: engine-level flip accounting
 * (pending accumulation, read resolution, write/release clearing,
 * scrubbing), the rate-0 bit-identity contract, the three protection
 * schemes end to end (Unprotected must corrupt, ECC must correct and
 * stay architecturally invisible, scrubbing must flush), compression
 * amplification, composition with the stuck-at layer, energy-model
 * hooks, and parallel-runner / hang determinism.
 */

#include <gtest/gtest.h>

#include <array>

#include "compress/bdi.hpp"
#include "fault/seu.hpp"
#include "harness/experiment.hpp"
#include "regfile/regfile.hpp"
#include "sim/gpu.hpp"
#include "workloads/registry.hpp"

namespace warpcomp {
namespace {

constexpr u64 kSeed = 0x5EEDull;

TEST(SeuParams, SchemeNamesRoundTrip)
{
    for (SeuScheme s : {SeuScheme::Unprotected, SeuScheme::Ecc,
                        SeuScheme::Scrub, SeuScheme::EccScrub}) {
        const auto parsed = seuSchemeFromName(seuSchemeName(s));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(seuSchemeFromName("Bogus").has_value());
}

TEST(SeuParams, SchemePredicates)
{
    SeuParams p;
    EXPECT_FALSE(p.enabled());
    p.flipsPerCycle = 1e-4;
    EXPECT_TRUE(p.enabled());

    p.scheme = SeuScheme::Unprotected;
    EXPECT_FALSE(p.eccEnabled());
    EXPECT_FALSE(p.scrubEnabled());
    EXPECT_TRUE(p.canCorrupt());
    p.scheme = SeuScheme::Ecc;
    EXPECT_TRUE(p.eccEnabled());
    EXPECT_FALSE(p.scrubEnabled());
    EXPECT_FALSE(p.canCorrupt());
    p.scheme = SeuScheme::Scrub;
    EXPECT_FALSE(p.eccEnabled());
    EXPECT_TRUE(p.scrubEnabled());
    EXPECT_TRUE(p.canCorrupt());
    p.scheme = SeuScheme::EccScrub;
    EXPECT_TRUE(p.eccEnabled());
    EXPECT_TRUE(p.scrubEnabled());
    EXPECT_FALSE(p.canCorrupt());

    // Per-SM salting derives distinct streams from one base seed.
    EXPECT_NE(seuSeedForSm(kSeed, 0), seuSeedForSm(kSeed, 1));
}

/** A register file with @p live_regs written uncompressible registers
 *  in slot 0 (each occupying a full 128-byte stripe). */
struct EngineFixture
{
    RegisterFile rf;
    u32 liveRegs;

    explicit EngineFixture(const SeuParams &seu, u32 live_regs = 4)
        : rf(RegFileParams{}, FaultParams{}, seu), liveRegs(live_regs)
    {
        EXPECT_TRUE(rf.allocate(0, live_regs, 0));
        for (u32 r = 0; r < live_regs; ++r)
            rf.recordWrite(0, r, encodeLaneIds(), 0);
    }

    /** Lane-id ramp: deltas overflow every BDI candidate, so the
     *  stored image is the full uncompressed stripe. */
    static BdiEncoded
    encodeLaneIds()
    {
        WarpRegValue v{};
        for (u32 lane = 0; lane < kWarpSize; ++lane)
            v[lane] = lane * 0x01010101u;
        return bdiCompress(toBytes(v), warpedCandidates());
    }
};

TEST(SeuEngine, SampleStreamIsDeterministicAndSeedSensitive)
{
    SeuParams p;
    p.flipsPerCycle = 1.0;
    p.seed = kSeed;
    EngineFixture a(p), b(p);
    SeuParams other = p;
    other.seed = kSeed + 1;
    EngineFixture c(other);

    for (Cycle t = 0; t < 2000; ++t) {
        a.rf.seu()->sampleCycle(t);
        b.rf.seu()->sampleCycle(t);
        c.rf.seu()->sampleCycle(t);
    }
    EXPECT_EQ(a.rf.seu()->stats().flips, b.rf.seu()->stats().flips);
    EXPECT_EQ(a.rf.seu()->stats().liveHits,
              b.rf.seu()->stats().liveHits);
    EXPECT_GT(a.rf.seu()->stats().flips, 0u);
    // At one flip per cycle, identical live-hit patterns from a
    // different seed would be a stream bug, not luck.
    EXPECT_NE(a.rf.seu()->stats().liveHits + a.rf.seu()->stats().flips,
              c.rf.seu()->stats().liveHits + c.rf.seu()->stats().flips);
}

TEST(SeuEngine, FlipsOnDeadRowsAreMasked)
{
    SeuParams p;
    p.flipsPerCycle = 4.0;
    p.seed = kSeed;
    // No registers written at all: every flip must be masked.
    RegisterFile rf(RegFileParams{}, FaultParams{}, p);
    for (Cycle t = 0; t < 500; ++t)
        rf.seu()->sampleCycle(t);
    const SeuStats &st = rf.seu()->stats();
    EXPECT_GT(st.flips, 0u);
    EXPECT_EQ(st.liveHits, 0u);
    EXPECT_EQ(st.maskedFlips, st.flips);
    EXPECT_FALSE(rf.seu()->hasPending());
}

TEST(SeuEngine, UnprotectedReadReportsCorruption)
{
    SeuParams p;
    p.flipsPerCycle = 8.0;
    p.seed = kSeed;
    p.scheme = SeuScheme::Unprotected;
    EngineFixture fx(p);
    SeuEngine &e = *fx.rf.seu();
    for (Cycle t = 0; e.stats().liveHits == 0; ++t) {
        ASSERT_LT(t, 100'000u) << "flip stream never hit a live row";
        e.sampleCycle(t);
    }
    ASSERT_TRUE(e.hasPending());

    u32 corrupt_reads = 0;
    for (u32 r = 0; r < fx.liveRegs; ++r) {
        const auto res = e.resolveRead(0, r);
        if (res.flips == 0)
            continue;
        EXPECT_TRUE(res.corrupt);
        EXPECT_GT(res.tracked, 0u);
        // Tracked positions index into the stored 128-byte image.
        for (u32 i = 0; i < res.tracked; ++i)
            EXPECT_LT(res.pos[i], kWarpRegBytes * 8);
        ++corrupt_reads;
    }
    EXPECT_GT(corrupt_reads, 0u);
    // Reads consumed everything; the next read of each row is clean.
    EXPECT_FALSE(e.hasPending());
    EXPECT_EQ(e.resolveRead(0, 0).flips, 0u);
}

TEST(SeuEngine, EccCorrectsSingleBitAndDetectsMultiBit)
{
    SeuParams p;
    p.flipsPerCycle = 8.0;
    p.seed = kSeed;
    p.scheme = SeuScheme::Ecc;
    EngineFixture fx(p);
    SeuEngine &e = *fx.rf.seu();
    // Let flips accumulate long enough that some row collects two or
    // more (deterministic for the fixed seed; ~8 flips/cycle over four
    // live rows makes multi-bit accumulation certain).
    for (Cycle t = 0; t < 5000; ++t)
        e.sampleCycle(t);
    ASSERT_GT(e.stats().liveHits, fx.liveRegs);

    for (u32 r = 0; r < fx.liveRegs; ++r) {
        const auto res = e.resolveRead(0, r);
        // ECC never lets damage reach architectural state.
        EXPECT_FALSE(res.corrupt);
    }
    const SeuStats &st = e.stats();
    EXPECT_GT(st.detectedUncorrectable, 0u);
    EXPECT_EQ(st.corruptedReads, 0u);
    // Check-bit census: 12 bits per 1024-bit row over the whole file.
    const RegFileParams rp;
    EXPECT_EQ(st.eccCheckBitBytes,
              static_cast<u64>(rp.totalWarpRegs()) *
                  SeuEngine::kCheckBitsPerEntry / 8);
}

TEST(SeuEngine, WriteAndReleaseDiscardPendingFlips)
{
    SeuParams p;
    p.flipsPerCycle = 8.0;
    p.seed = kSeed;
    EngineFixture fx(p);
    SeuEngine &e = *fx.rf.seu();
    for (Cycle t = 0; e.stats().liveHits < 8; ++t) {
        ASSERT_LT(t, 100'000u);
        e.sampleCycle(t);
    }
    ASSERT_TRUE(e.hasPending());

    // Rewriting every live register replaces row contents (and check
    // bits): all pending damage must vanish without being counted as
    // corrupted or detected.
    for (u32 r = 0; r < fx.liveRegs; ++r)
        fx.rf.recordWrite(0, r, EngineFixture::encodeLaneIds(), 100);
    EXPECT_FALSE(e.hasPending());
    EXPECT_EQ(e.stats().corruptedReads, 0u);
    EXPECT_EQ(e.stats().detectedUncorrectable, 0u);

    // Same for release: accumulate again, then free the slot.
    for (Cycle t = 1000; e.stats().liveHits < 16; ++t) {
        ASSERT_LT(t, 200'000u);
        e.sampleCycle(t);
    }
    ASSERT_TRUE(e.hasPending());
    fx.rf.release(0, 2000);
    EXPECT_FALSE(e.hasPending());
}

TEST(SeuEngine, ScrubWalksLiveRowsAndFlushesPending)
{
    SeuParams p;
    p.flipsPerCycle = 8.0;
    p.seed = kSeed;
    p.scheme = SeuScheme::Scrub;
    p.scrubInterval = 1;        // visit one row every cycle
    EngineFixture fx(p);
    SeuEngine &e = *fx.rf.seu();

    const RegFileParams rp;
    const u32 rows = rp.totalWarpRegs();
    for (Cycle t = 1; t <= rows; ++t) {
        e.sampleCycle(t);
        const auto v = e.scrubTick(t);
        // Only the live rows cost bank traffic; dead rows are skipped
        // for free.
        if (v.banks > 0) {
            EXPECT_EQ(v.banks, banksForBytes(kWarpRegBytes));
        }
    }
    // One full sweep: every row visited once, every live row rewritten.
    EXPECT_EQ(e.stats().scrubVisits, rows);
    EXPECT_EQ(e.stats().scrubWrites, fx.liveRegs);
    EXPECT_GT(e.stats().liveHits, 0u);
    const u64 flushed = e.stats().scrubCorrected;
    // Flips deposited behind the cursor are still pending; consuming
    // them via reads must account for exactly the rest — no flip is
    // double-counted or lost between the scrubber and the read port.
    u64 still_pending = 0;
    for (u32 r = 0; r < fx.liveRegs; ++r)
        still_pending += e.resolveRead(0, r).flips;
    EXPECT_EQ(flushed + still_pending, e.stats().liveHits);
    EXPECT_FALSE(e.hasPending());
    // resolveRead only reports; corruption is counted when the SM
    // commits damage (noteCorruption), which never happened here.
    EXPECT_EQ(e.stats().corruptedReads, 0u);
}

/** Architectural outcome of one workload under an SEU config. */
struct SeuOutcome
{
    std::vector<u8> gmemImage;
    RunResult run;
};

SeuOutcome
runSeu(const std::string &name, double rate, SeuScheme scheme,
       ExperimentConfig cfg = {})
{
    cfg.numSms = 2;
    cfg.seu.flipsPerCycle = rate;
    cfg.seu.scheme = scheme;
    WorkloadInstance wl = makeWorkload(name, cfg.scale, cfg.seedSalt);
    Gpu gpu(makeGpuParams(cfg), *wl.gmem, *wl.cmem);
    RunResult run = gpu.run(wl.kernel, wl.dims);
    const auto img = wl.gmem->bytes();
    return SeuOutcome{std::vector<u8>(img.begin(), img.end()),
                      std::move(run)};
}

TEST(SeuSchemes, RateZeroIsBitIdenticalToBaseline)
{
    // --seu=0,<anything> must leave no trace: same memory image, same
    // cycle count, same energy events as a run without the subsystem.
    const SeuOutcome base = runSeu("nw", 0.0, SeuScheme::Unprotected);
    EXPECT_EQ(base.run.seu.flips, 0u);
    for (SeuScheme s : {SeuScheme::Unprotected, SeuScheme::Ecc,
                        SeuScheme::Scrub, SeuScheme::EccScrub}) {
        const SeuOutcome o = runSeu("nw", 0.0, s);
        EXPECT_EQ(o.gmemImage, base.gmemImage);
        EXPECT_EQ(o.run.cycles, base.run.cycles);
        EXPECT_EQ(o.run.meter.bankAccesses(),
                  base.run.meter.bankAccesses());
        EXPECT_EQ(o.run.meter.eccEncodes(), 0u);
        EXPECT_EQ(o.run.meter.eccDecodes(), 0u);
        EXPECT_FALSE(o.run.meter.eccPresent());
        EXPECT_EQ(o.run.seu.flips, 0u);
        EXPECT_EQ(o.run.seu.scrubVisits, 0u);
    }
}

TEST(SeuSchemes, UnprotectedCorruptsArchState)
{
    // With no protection a high flip rate must surface as silent data
    // corruption: reads commit damaged values into warp registers.
    const SeuOutcome base = runSeu("nw", 0.0, SeuScheme::Unprotected);
    ExperimentConfig cfg;
    cfg.faults.hangCycles = 2'000'000;
    const SeuOutcome f =
        runSeu("nw", 0.5, SeuScheme::Unprotected, cfg);
    EXPECT_GT(f.run.seu.liveHits, 0u);
    EXPECT_GT(f.run.seu.corruptedReads, 0u);
    EXPECT_GT(f.run.seu.corruptedLanes, 0u);
    // The corruption must be architecturally visible one way or
    // another: a damaged output image, a contained bad access, or a
    // livelocked kernel stopped at the hang budget.
    EXPECT_TRUE(f.gmemImage != base.gmemImage || f.run.hung ||
                f.run.fault.unrecoverableAccesses > 0)
        << "silent corruption never reached architectural state";
}

TEST(SeuSchemes, EccIsArchitecturallyInvisible)
{
    const SeuOutcome base = runSeu("nw", 0.0, SeuScheme::Unprotected);
    const SeuOutcome f = runSeu("nw", 0.5, SeuScheme::Ecc);
    // Protection must be exercised AND invisible.
    EXPECT_GT(f.run.seu.liveHits, 0u);
    EXPECT_GT(f.run.seu.eccCorrectedReads, 0u);
    EXPECT_EQ(f.run.seu.corruptedReads, 0u);
    EXPECT_EQ(f.run.seu.corruptedLanes, 0u);
    EXPECT_FALSE(f.run.hung);
    EXPECT_EQ(f.run.cycles, base.run.cycles);
    EXPECT_EQ(f.gmemImage, base.gmemImage)
        << "ECC leaked a corrupted value";
    // ...and costs energy: check-bit storage overhead plus
    // encode/decode events on every row write/read.
    EXPECT_TRUE(f.run.meter.eccPresent());
    EXPECT_GT(f.run.meter.eccEncodes(), 0u);
    EXPECT_GT(f.run.meter.eccDecodes(), 0u);
    EnergyParams ep;
    const EnergyBreakdown eb = f.run.meter.breakdownWith(ep);
    const EnergyBreakdown bb = base.run.meter.breakdownWith(ep);
    EXPECT_GT(eb.eccPj, 0.0);
    EXPECT_GT(eb.totalPj(), bb.totalPj());
}

TEST(SeuSchemes, ScrubFlushesAndScalesWithPeriod)
{
    ExperimentConfig fast;
    fast.seu.scrubInterval = 16;
    ExperimentConfig slow;
    slow.seu.scrubInterval = 1024;
    const SeuOutcome f = runSeu("nw", 0.5, SeuScheme::Scrub, fast);
    const SeuOutcome s = runSeu("nw", 0.5, SeuScheme::Scrub, slow);
    EXPECT_GT(f.run.seu.scrubVisits, 0u);
    EXPECT_GT(f.run.seu.scrubWrites, 0u);
    EXPECT_GT(f.run.seu.scrubCorrected, 0u);
    // A 64x shorter period must scrub more, and flush more flips
    // before reads consume them.
    EXPECT_GT(f.run.seu.scrubVisits, s.run.seu.scrubVisits);
    EXPECT_GT(f.run.seu.scrubWrites, s.run.seu.scrubWrites);
    EXPECT_GE(f.run.seu.scrubCorrected, s.run.seu.scrubCorrected);
    // Scrub traffic shows up as bank energy on top of the baseline.
    const SeuOutcome base = runSeu("nw", 0.0, SeuScheme::Unprotected);
    EXPECT_GT(f.run.meter.bankAccesses(),
              base.run.meter.bankAccesses());
}

TEST(SeuSchemes, CompressionAmplifiesCorruption)
{
    // A flipped byte inside a BDI-compressed row damages every lane
    // that decompresses through it; the amplification counter must see
    // this under the compressed design.
    ExperimentConfig cfg;
    cfg.faults.hangCycles = 2'000'000;
    const SeuOutcome f =
        runSeu("nw", 0.5, SeuScheme::Unprotected, cfg);
    EXPECT_GT(f.run.seu.hitsCompressed, 0u);
    EXPECT_GT(f.run.seu.amplifiedReads, 0u);
    // An amplified read damages at least as many lanes on average as
    // the raw flip count could alone.
    EXPECT_GE(f.run.seu.corruptedLanes, f.run.seu.corruptedReads);

    // The uncompressed baseline has no compressed rows to amplify.
    ExperimentConfig none = cfg;
    none.scheme = CompressionScheme::None;
    const SeuOutcome b =
        runSeu("nw", 0.5, SeuScheme::Unprotected, none);
    EXPECT_EQ(b.run.seu.hitsCompressed, 0u);
    EXPECT_EQ(b.run.seu.amplifiedReads, 0u);
}

TEST(SeuSchemes, ComposesWithStuckAtFaults)
{
    // Both fault layers active at once: permanent stuck-at cells under
    // CompressRemap plus transient flips under ECC. Both must be
    // exercised, and the protected run must stay architecturally clean.
    const SeuOutcome base = runSeu("nw", 0.0, SeuScheme::Unprotected);
    ExperimentConfig cfg;
    cfg.faults.ber = 1e-3;
    cfg.faults.policy = FaultPolicy::CompressRemap;
    const SeuOutcome f = runSeu("nw", 0.5, SeuScheme::Ecc, cfg);
    EXPECT_GT(f.run.fault.faultyCells, 0u);
    EXPECT_GT(f.run.fault.toleratedWrites, 0u);
    EXPECT_GT(f.run.seu.liveHits, 0u);
    EXPECT_EQ(f.run.seu.corruptedReads, 0u);
    EXPECT_EQ(f.run.fault.corruptedWrites, 0u);
    EXPECT_EQ(f.gmemImage, base.gmemImage);
}

TEST(SeuDeterminism, RepeatedRunsAreBitIdentical)
{
    ExperimentConfig cfg;
    cfg.faults.hangCycles = 2'000'000;
    const SeuOutcome a =
        runSeu("nw", 0.5, SeuScheme::Unprotected, cfg);
    const SeuOutcome b =
        runSeu("nw", 0.5, SeuScheme::Unprotected, cfg);
    EXPECT_EQ(a.gmemImage, b.gmemImage);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.seu.flips, b.run.seu.flips);
    EXPECT_EQ(a.run.seu.corruptedReads, b.run.seu.corruptedReads);
    EXPECT_EQ(a.run.seu.corruptedLanes, b.run.seu.corruptedLanes);
}

TEST(SeuDeterminism, ParallelRunnerIsThreadCountInvariant)
{
    // The flip stream is a pure function of (salted seed, cycle), so
    // the parallel runner must produce bit-identical results at any
    // worker count.
    ExperimentConfig cfg;
    cfg.numSms = 2;
    cfg.seu.flipsPerCycle = 0.5;
    cfg.seu.scheme = SeuScheme::EccScrub;
    const std::vector<std::string> names = {"nw", "bfs", "hotspot"};
    const auto serial = runWorkloadsParallel(names, cfg, 1);
    const auto wide = runWorkloadsParallel(names, cfg, 4);
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].run.cycles, wide[i].run.cycles);
        EXPECT_EQ(serial[i].run.seu.flips, wide[i].run.seu.flips);
        EXPECT_EQ(serial[i].run.seu.liveHits,
                  wide[i].run.seu.liveHits);
        EXPECT_EQ(serial[i].run.seu.eccCorrectedReads,
                  wide[i].run.seu.eccCorrectedReads);
        EXPECT_EQ(serial[i].run.seu.scrubWrites,
                  wide[i].run.seu.scrubWrites);
        EXPECT_EQ(serial[i].run.meter.bankAccesses(),
                  wide[i].run.meter.bankAccesses());
    }
}

TEST(SeuDeterminism, HangOutcomeIsReproducible)
{
    // A corrupting run that trips the hang budget must do so
    // identically on every invocation and at every thread count: the
    // hung flag, the stop cycle, and the flip accounting all pin.
    ExperimentConfig cfg;
    cfg.numSms = 2;
    cfg.seu.flipsPerCycle = 2.0;
    cfg.seu.scheme = SeuScheme::Unprotected;
    cfg.faults.hangCycles = 200'000;
    const std::vector<std::string> names = {"bfs"};
    const auto a = runWorkloadsParallel(names, cfg, 1);
    const auto b = runWorkloadsParallel(names, cfg, 1);
    const auto c = runWorkloadsParallel(names, cfg, 4);
    EXPECT_EQ(a[0].run.hung, b[0].run.hung);
    EXPECT_EQ(a[0].run.hung, c[0].run.hung);
    EXPECT_EQ(a[0].run.cycles, b[0].run.cycles);
    EXPECT_EQ(a[0].run.cycles, c[0].run.cycles);
    EXPECT_EQ(a[0].run.seu.flips, b[0].run.seu.flips);
    EXPECT_EQ(a[0].run.seu.flips, c[0].run.seu.flips);
    EXPECT_EQ(a[0].run.seu.corruptedReads, b[0].run.seu.corruptedReads);
    EXPECT_EQ(a[0].run.seu.corruptedReads, c[0].run.seu.corruptedReads);
    // If the budget tripped, the run stopped exactly there.
    if (a[0].run.hung) {
        EXPECT_EQ(a[0].run.cycles, cfg.faults.hangCycles);
    }
}

} // namespace
} // namespace warpcomp
