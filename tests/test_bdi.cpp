/**
 * @file
 * Unit and property tests for the BDI codec: Table 1 size formula,
 * compressibility predicates, roundtrip over random and structured
 * data, and the best-parameter explorer behind Fig 5.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compress/bdi.hpp"

namespace warpcomp {
namespace {

WarpRegValue
makeValue(u32 base, i64 stride)
{
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = static_cast<u32>(static_cast<i64>(base) + stride * i);
    return v;
}

TEST(BdiSize, Table1Formula)
{
    // The "Comp. Size" column of Table 1.
    EXPECT_EQ(bdiCompressedSize({1, 0}), 1u);
    EXPECT_EQ(bdiCompressedSize({2, 1}), 65u);
    EXPECT_EQ(bdiCompressedSize({4, 0}), 4u);
    EXPECT_EQ(bdiCompressedSize({4, 1}), 35u);
    EXPECT_EQ(bdiCompressedSize({4, 2}), 66u);
    EXPECT_EQ(bdiCompressedSize({8, 0}), 8u);
    EXPECT_EQ(bdiCompressedSize({8, 1}), 23u);
    EXPECT_EQ(bdiCompressedSize({8, 2}), 38u);
    EXPECT_EQ(bdiCompressedSize({8, 4}), 68u);
}

TEST(BdiSize, Table1BankCounts)
{
    // The "Required # Reg. Banks" column of Table 1.
    EXPECT_EQ(banksForBytes(bdiCompressedSize({1, 0})), 1u);
    EXPECT_EQ(banksForBytes(bdiCompressedSize({2, 1})), 5u);
    EXPECT_EQ(banksForBytes(bdiCompressedSize({4, 0})), 1u);
    EXPECT_EQ(banksForBytes(bdiCompressedSize({4, 1})), 3u);
    EXPECT_EQ(banksForBytes(bdiCompressedSize({4, 2})), 5u);
    EXPECT_EQ(banksForBytes(bdiCompressedSize({8, 0})), 1u);
    EXPECT_EQ(banksForBytes(bdiCompressedSize({8, 1})), 2u);
    EXPECT_EQ(banksForBytes(bdiCompressedSize({8, 2})), 3u);
    EXPECT_EQ(banksForBytes(bdiCompressedSize({8, 4})), 5u);
}

TEST(BdiSize, BanksForBytesBoundaries)
{
    EXPECT_EQ(banksForBytes(1), 1u);
    EXPECT_EQ(banksForBytes(16), 1u);
    EXPECT_EQ(banksForBytes(17), 2u);
    EXPECT_EQ(banksForBytes(128), 8u);
}

TEST(BdiCompressible, AllIdentical)
{
    const auto img = toBytes(makeValue(0xDEADBEEF, 0));
    EXPECT_TRUE(bdiCompressible(img, {4, 0}));
    EXPECT_TRUE(bdiCompressible(img, {4, 1}));
    EXPECT_TRUE(bdiCompressible(img, {4, 2}));
}

TEST(BdiCompressible, UnitStride)
{
    // Thread-index-like values: base + lane.
    const auto img = toBytes(makeValue(1000, 1));
    EXPECT_FALSE(bdiCompressible(img, {4, 0}));
    EXPECT_TRUE(bdiCompressible(img, {4, 1}));
    EXPECT_TRUE(bdiCompressible(img, {4, 2}));
}

TEST(BdiCompressible, ByteDeltaBoundary)
{
    // Max positive 1-byte delta is +127.
    auto v = makeValue(0, 0);
    v[31] = 127;
    EXPECT_TRUE(bdiCompressible(toBytes(v), {4, 1}));
    v[31] = 128;
    EXPECT_FALSE(bdiCompressible(toBytes(v), {4, 1}));
    EXPECT_TRUE(bdiCompressible(toBytes(v), {4, 2}));
}

TEST(BdiCompressible, NegativeDeltaBoundary)
{
    auto v = makeValue(1000, 0);
    v[5] = 1000 - 128;          // -128 fits in one signed byte
    EXPECT_TRUE(bdiCompressible(toBytes(v), {4, 1}));
    v[5] = 1000 - 129;
    EXPECT_FALSE(bdiCompressible(toBytes(v), {4, 1}));
}

TEST(BdiCompressible, TwoByteDeltaBoundary)
{
    auto v = makeValue(0, 0);
    v[7] = 32767;
    EXPECT_TRUE(bdiCompressible(toBytes(v), {4, 2}));
    v[7] = 32768;
    EXPECT_FALSE(bdiCompressible(toBytes(v), {4, 2}));
}

TEST(BdiCompressible, BaseIsFirstChunkNotMinimum)
{
    // Deltas are measured against chunk 0, not the smallest chunk:
    // with base 500 and all other chunks 700 the delta is +200, which
    // does not fit one signed byte even though the spread is only 200.
    auto v = makeValue(0, 0);
    v[0] = 500;
    for (u32 i = 1; i < kWarpSize; ++i)
        v[i] = 700;
    EXPECT_FALSE(bdiCompressible(toBytes(v), {4, 1}));
    EXPECT_TRUE(bdiCompressible(toBytes(v), {4, 2}));
}

TEST(BdiCompress, PicksSmallestFit)
{
    const auto img = toBytes(makeValue(42, 0));
    const BdiEncoded enc = bdiCompress(img, warpedCandidates());
    ASSERT_TRUE(enc.compressed);
    EXPECT_EQ(enc.params, (BdiParams{4, 0}));
    EXPECT_EQ(enc.sizeBytes(), 4u);
    EXPECT_EQ(enc.banks(), 1u);
}

TEST(BdiCompress, FallsBackToUncompressed)
{
    WarpRegValue v{};
    Rng rng(7);
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = static_cast<u32>(rng.next());
    const BdiEncoded enc = bdiCompress(toBytes(v), warpedCandidates());
    EXPECT_FALSE(enc.compressed);
    EXPECT_EQ(enc.sizeBytes(), kWarpRegBytes);
    EXPECT_EQ(enc.banks(), kBanksPerWarpReg);
}

TEST(BdiRoundtrip, Identical)
{
    const auto img = toBytes(makeValue(0x12345678, 0));
    const BdiEncoded enc = bdiCompress(img, warpedCandidates());
    EXPECT_EQ(bdiDecompress(enc), img);
}

TEST(BdiRoundtrip, UnitStride)
{
    const auto img = toBytes(makeValue(0x80000000u, 1));
    const BdiEncoded enc = bdiCompress(img, warpedCandidates());
    ASSERT_TRUE(enc.compressed);
    EXPECT_EQ(bdiDecompress(enc), img);
}

TEST(BdiRoundtrip, Uncompressed)
{
    WarpRegValue v{};
    Rng rng(99);
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = static_cast<u32>(rng.next());
    const auto img = toBytes(v);
    const BdiEncoded enc = bdiCompress(img, warpedCandidates());
    EXPECT_EQ(bdiDecompress(enc), img);
}

TEST(BdiBestParams, PrefersSmallest)
{
    const auto img = toBytes(makeValue(7, 0));
    const auto best = bdiBestParams(img, fullBdiCandidates());
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(*best, (BdiParams{4, 0}));
}

TEST(BdiBestParams, NoneWhenRandom)
{
    WarpRegValue v{};
    Rng rng(3);
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = static_cast<u32>(rng.next());
    EXPECT_FALSE(bdiBestParams(toBytes(v), fullBdiCandidates())
                     .has_value());
}

TEST(BdiBestParams, EightByteBaseCanWin)
{
    // Pairs of lanes forming identical 8-byte chunks compress under
    // <8,0> (8 bytes) but not under any 4-byte-base choice as cheaply.
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; i += 2) {
        v[i] = 0xAAAA0000u;
        v[i + 1] = 0x1234BEEFu;
    }
    const auto best = bdiBestParams(toBytes(v), fullBdiCandidates());
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(*best, (BdiParams{8, 0}));
}

TEST(BdiCompress, WarpedSubsetNeverUsesEightByteBase)
{
    for (const BdiParams &p : warpedCandidates())
        EXPECT_EQ(p.baseBytes, 4u);
    EXPECT_EQ(warpedCandidates().size(), 3u);
    EXPECT_EQ(fullBdiCandidates().size(), 7u);
}

/** Property sweep: roundtrip fidelity over structured value families. */
class BdiRoundtripSweep
    : public ::testing::TestWithParam<std::tuple<u32, i64>>
{
};

TEST_P(BdiRoundtripSweep, RoundtripsExactly)
{
    const auto [base, stride] = GetParam();
    const auto img = toBytes(makeValue(base, stride));
    for (auto cands : {warpedCandidates(), fullBdiCandidates()}) {
        const BdiEncoded enc = bdiCompress(img, cands);
        EXPECT_EQ(bdiDecompress(enc), img);
        // Compressed representation must actually be smaller.
        if (enc.compressed) {
            EXPECT_LT(enc.sizeBytes(), kWarpRegBytes);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Structured, BdiRoundtripSweep,
    ::testing::Combine(
        ::testing::Values(0u, 1u, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu,
                          12345u),
        ::testing::Values(i64{0}, i64{1}, i64{-1}, i64{4}, i64{100},
                          i64{127}, i64{128}, i64{-128}, i64{1000},
                          i64{32768}, i64{-100000})));

/** Property sweep: random data roundtrips under every candidate set. */
class BdiRandomRoundtrip : public ::testing::TestWithParam<u64>
{
};

TEST_P(BdiRandomRoundtrip, Roundtrips)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 50; ++iter) {
        WarpRegValue v{};
        // Mix of narrow and wide ranges to hit every compression class.
        const u32 span_bits = 1 + rng.nextU32(32);
        const u64 mask = span_bits >= 64 ? ~u64{0}
                                         : ((u64{1} << span_bits) - 1);
        const u32 base = static_cast<u32>(rng.next());
        for (u32 i = 0; i < kWarpSize; ++i)
            v[i] = base + static_cast<u32>(rng.next() & mask);
        const auto img = toBytes(v);
        const BdiEncoded enc = bdiCompress(img, fullBdiCandidates());
        EXPECT_EQ(bdiDecompress(enc), img);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BdiRandomRoundtrip,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

TEST(BdiCompress, WideDeltaWraparoundExtremes)
{
    // Base INT32_MIN, other lanes INT32_MAX: the lane delta is
    // 2^32 - 1 in i64, which u32 arithmetic would wrap to -1 and
    // wrongly classify as a 1-byte delta.
    WarpRegValue v{};
    v[0] = 0x80000000u;
    for (u32 i = 1; i < kWarpSize; ++i)
        v[i] = 0x7FFFFFFFu;
    const auto img = toBytes(v);
    EXPECT_FALSE(bdiCompressible(img, BdiParams{4, 1}));
    EXPECT_FALSE(bdiCompressible(img, BdiParams{4, 2}));
    const BdiEncoded enc = bdiCompress(img, warpedCandidates());
    EXPECT_FALSE(enc.compressed);
    EXPECT_EQ(bdiDecompress(enc), img);
}

TEST(BdiCompress, Base4PayloadLayout)
{
    // Pin the wire format of the base-4 encoder: little-endian base
    // word, then one low-byte two's-complement delta per lane.
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = 1000u - 3u * i;
    const BdiEncoded enc = bdiCompress(toBytes(v), warpedCandidates());
    ASSERT_TRUE(enc.compressed);
    EXPECT_EQ(enc.params, (BdiParams{4, 1}));
    ASSERT_EQ(enc.sizeBytes(), 35u);
    u32 base = 0;
    std::memcpy(&base, enc.bytes.data(), 4);
    EXPECT_EQ(base, 1000u);
    for (u32 i = 1; i < kWarpSize; ++i)
        EXPECT_EQ(static_cast<i8>(enc.bytes[4 + i - 1]),
                  static_cast<i8>(-3 * static_cast<i32>(i)));
    EXPECT_EQ(bdiDecompress(enc), toBytes(v));
}

TEST(BdiBytes, ToFromInverse)
{
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = i * 0x01010101u;
    EXPECT_EQ(fromBytes(toBytes(v)), v);
}

} // namespace
} // namespace warpcomp
