/**
 * @file
 * Heap-allocation regression guard for the simulator hot loop. Replaces
 * the global operator new/delete with counting versions, drives one Sm
 * into steady state, and asserts that a window of cycles with no CTA
 * launch or completion performs zero heap allocations. Built as its own
 * test binary so the replaced allocator does not wrap the main suite.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "isa/builder.hpp"
#include "mem/memory.hpp"
#include "obs/obs.hpp"
#include "obs/trace_stream.hpp"
#include "sim/sm.hpp"

namespace {

std::atomic<unsigned long long> g_allocations{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace warpcomp {
namespace {

/** Long uniform ALU loop: thousands of busy cycles between the CTA
 *  launch and its completion, with every pipeline stage exercised. */
Kernel
spinKernel()
{
    KernelBuilder b("spin");
    Reg tid = b.newReg(), acc = b.newReg(), tmp = b.newReg(),
        i = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.movImm(acc, 1);
    b.forRange(i, KernelBuilder::imm(0), KernelBuilder::imm(4000), 1,
               [&] {
                   b.iadd(acc, acc, tid);
                   b.xor_(tmp, acc, KernelBuilder::imm(0x55));
                   b.imad(acc, tmp, KernelBuilder::imm(3), acc);
               });
    return b.build();
}

/** Steady-state window of one Sm run; returns allocations observed.
 *  When @p obs is non-null it is attached before warm-up, so the
 *  measured window covers the tracing hot path too. */
unsigned long long
measureSteadyState(const SmParams &sp, ObsRun *obs = nullptr)
{
    GlobalMemory gmem(1 << 20);
    ConstantMemory cmem(64);
    const Kernel kernel = spinKernel();

    const EnergyParams ep;
    const LaunchDims dims{256, 1};  // one CTA: no mid-run launches
    Sm sm(sp, ep, gmem, cmem, kernel, dims);
    if (obs != nullptr)
        sm.attachObs(obs, 0);
    EXPECT_TRUE(sm.tryLaunchCta(0, 0));

    // Warm up: scratch vectors (exec list, SIMT stacks, collector pool
    // bookkeeping) reach their steady-state capacity.
    Cycle now = 0;
    for (; now < 2000; ++now)
        sm.cycle(now);
    EXPECT_TRUE(sm.busy()) << "kernel finished during warm-up; "
                              "lengthen the spin loop";

    const auto before = g_allocations.load(std::memory_order_relaxed);
    for (; now < 12000; ++now)
        sm.cycle(now);
    const auto after = g_allocations.load(std::memory_order_relaxed);

    // The window must lie strictly inside the kernel run: CTA launch
    // and completion are allowed to allocate, the cycle loop is not.
    EXPECT_TRUE(sm.busy()) << "kernel finished inside the measured "
                              "window; lengthen the spin loop";
    EXPECT_EQ(sm.ctasCompleted(), 0u);
    return after - before;
}

TEST(AllocGuard, SteadyStateCycleLoopIsAllocationFree)
{
    SmParams sp;
    sp.applyScheme();               // default warped-compression config
    EXPECT_EQ(measureSteadyState(sp), 0u)
        << "steady-state cycle loop allocated over 10000 cycles";
}

TEST(AllocGuard, FaultInjectionKeepsCycleLoopAllocationFree)
{
    // The CompressRemap hooks (healthy-prefix probe on every write,
    // remap accounting on reads) sit on the hot path and must not
    // allocate once the fault map is built.
    SmParams sp;
    sp.applyScheme();
    sp.faults.ber = 1e-3;
    sp.faults.policy = FaultPolicy::CompressRemap;
    EXPECT_EQ(measureSteadyState(sp), 0u)
        << "CompressRemap hot path allocated over 10000 cycles";
}

TEST(AllocGuard, SilentCorruptionPathIsAllocationFree)
{
    // Policy None corrupts the stored image at writeback commit via
    // fixed-size buffers (BdiEncoded copy + decompress into an array);
    // a high BER makes the corrupt branch actually execute.
    SmParams sp;
    sp.applyScheme();
    sp.faults.ber = 5e-3;
    sp.faults.policy = FaultPolicy::None;
    EXPECT_EQ(measureSteadyState(sp), 0u)
        << "stuck-at corruption path allocated over 10000 cycles";
}

TEST(AllocGuard, SeuUnprotectedPathIsAllocationFree)
{
    // The SEU hot path — per-cycle flip sampling, pending bookkeeping,
    // read resolution with re-encode/XOR/decode on corruption — runs
    // entirely in preallocated fixed-size structures. A high rate makes
    // the corrupt branch execute inside the measured window.
    SmParams sp;
    sp.applyScheme();
    sp.seu.flipsPerCycle = 0.05;
    sp.seu.scheme = SeuScheme::Unprotected;
    EXPECT_EQ(measureSteadyState(sp), 0u)
        << "SEU corruption path allocated over 10000 cycles";
}

TEST(AllocGuard, TracingDisabledAddsNoAllocations)
{
    // The observability hooks are a branch on a null pointer when no
    // ObsRun is attached (the default); the hot loop must stay
    // allocation-free exactly as before the subsystem existed.
    SmParams sp;
    sp.applyScheme();
    EXPECT_EQ(measureSteadyState(sp, nullptr), 0u)
        << "null-obs hook path allocated over 10000 cycles";
}

TEST(AllocGuard, TracingEnabledHotPathIsAllocationFree)
{
    // With tracing and windowed counters armed, every emit lands in the
    // preallocated ring and the reserved window table — the cycle loop
    // still must not allocate (ring wrap drops oldest, never grows).
    SmParams sp;
    sp.applyScheme();
    ObsParams op;
    op.trace = true;
    op.ringCapacity = 1u << 16;
    op.windowInterval = 256;
    ObsRun obs(op);
    EXPECT_EQ(measureSteadyState(sp, &obs), 0u)
        << "tracing hot path allocated over 10000 cycles";
    EXPECT_GT(obs.ring().pushed(), 0u)
        << "tracing was armed but no events were recorded";
}

TEST(AllocGuard, StreamingSinkHotPathIsAllocationFree)
{
    // With the --trace-out sink armed, every emit additionally lands
    // in the sink's preallocated batch buffer, and full batches leave
    // via plain write(2) — the cycle loop still must not allocate,
    // however many events stream out.
    SmParams sp;
    sp.applyScheme();
    const std::string path =
        ::testing::TempDir() + "wc_alloc_guard_trace.wctrace";
    TraceStreamMeta meta;
    meta.gitSha = traceStreamGitSha();
    meta.workload = "spin";
    meta.config = "alloc-guard";
    meta.numSms = 1;
    meta.numBanks = sp.regfile.numBanks;
    TraceStreamSink sink(path, meta);
    ObsParams op;
    op.trace = true;
    op.ringCapacity = 1u << 16;
    op.windowInterval = 256;
    op.sink = &sink;
    ObsRun obs(op);
    EXPECT_EQ(measureSteadyState(sp, &obs), 0u)
        << "streaming-sink hot path allocated over 10000 cycles";
    EXPECT_GT(obs.streamedEvents(), 0u)
        << "sink was armed but no events streamed";
    EXPECT_EQ(obs.streamedEvents(), sink.eventsWritten());
    std::remove(path.c_str());
}

TEST(AllocGuard, SeuEccScrubPathIsAllocationFree)
{
    // ECC resolution plus the background scrubber (one row visit every
    // scrubInterval cycles, rewriting live rows) must also stay
    // allocation-free in steady state.
    SmParams sp;
    sp.applyScheme();
    sp.seu.flipsPerCycle = 0.05;
    sp.seu.scheme = SeuScheme::EccScrub;
    sp.seu.scrubInterval = 16;
    EXPECT_EQ(measureSteadyState(sp), 0u)
        << "SEU ECC+scrub path allocated over 10000 cycles";
}

} // namespace
} // namespace warpcomp
