/**
 * @file
 * Property/fuzz tests for the BDI codec: >=10k xorshift-seeded random
 * 128-byte warp registers round-tripped through every parameterization
 * the warped scheme uses (<4,0> <4,1> <4,2> + uncompressed fallback)
 * and through the full design-space candidate list. The properties are
 * the paper's correctness obligations: decompress(compress(x)) == x,
 * encoded size never exceeds the 128-byte input, and the encoded size
 * always equals Eq. (1) for the chosen parameters.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hpp"
#include "compress/bdi.hpp"

namespace warpcomp {
namespace {

constexpr u32 kFuzzCases = 12'000;

/**
 * Mixed-entropy register generator. Pure uniform bytes almost never
 * compress, which would leave the compressed paths unexercised, so the
 * generator cycles through value shapes the paper identifies: all
 * lanes equal, base + small delta, base + medium delta, lane-id
 * affine, and full-entropy random.
 */
WarpRegValue
randomRegister(Rng &rng, u32 shape)
{
    WarpRegValue v{};
    switch (shape % 5) {
    case 0: {                                   // scalar: all lanes equal
        const u32 x = static_cast<u32>(rng.next());
        v.fill(x);
        break;
    }
    case 1: {                                   // <4,1>-shaped deltas
        const u32 base = static_cast<u32>(rng.next());
        for (u32 &lane : v)
            lane = base + static_cast<u32>(rng.nextRange(-128, 127));
        break;
    }
    case 2: {                                   // <4,2>-shaped deltas
        const u32 base = static_cast<u32>(rng.next());
        for (u32 &lane : v)
            lane = base + static_cast<u32>(rng.nextRange(-32768, 32767));
        break;
    }
    case 3: {                                   // affine in the lane id
        const u32 base = static_cast<u32>(rng.next());
        const u32 stride = rng.nextU32(1u << 16);
        for (u32 i = 0; i < kWarpSize; ++i)
            v[i] = base + i * stride;
        break;
    }
    default:                                    // full entropy
        for (u32 &lane : v)
            lane = static_cast<u32>(rng.next());
        break;
    }
    // Randomly poison one lane so near-compressible edge cases (one
    // outlier breaking an otherwise uniform register) are common.
    if (rng.nextBool(0.25))
        v[rng.nextU32(kWarpSize)] = static_cast<u32>(rng.next());
    return v;
}

TEST(BdiFuzz, RoundTripWarpedCandidates)
{
    Rng rng(0xF0221u);
    u64 compressed_hits = 0;
    for (u32 i = 0; i < kFuzzCases; ++i) {
        const WarpRegValue v = randomRegister(rng, i);
        const auto raw = toBytes(v);
        const BdiEncoded enc = bdiCompress(raw, warpedCandidates());

        ASSERT_LE(enc.sizeBytes(), kWarpRegBytes)
            << "case " << i << ": encoding expanded the register";
        if (enc.compressed) {
            ++compressed_hits;
            ASSERT_EQ(enc.sizeBytes(), bdiCompressedSize(enc.params))
                << "case " << i << ": size disagrees with Eq. (1)";
        } else {
            ASSERT_EQ(enc.sizeBytes(), kWarpRegBytes);
        }

        const auto back = bdiDecompress(enc);
        ASSERT_TRUE(back == raw) << "case " << i << ": round-trip lost "
                                 << "data (shape " << i % 5 << ")";
        ASSERT_TRUE(fromBytes(back) == v);
    }
    // The generator must actually exercise the compressed paths.
    EXPECT_GT(compressed_hits, kFuzzCases / 4);
    EXPECT_LT(compressed_hits, kFuzzCases);
}

TEST(BdiFuzz, RoundTripEverySingleParameterization)
{
    // Force each candidate individually (span of one) so every <X,Y>
    // decode path is hit, not just the one the selector prefers.
    Rng rng(0xF0222u);
    for (u32 i = 0; i < kFuzzCases / 4; ++i) {
        const WarpRegValue v = randomRegister(rng, i);
        const auto raw = toBytes(v);
        for (const BdiParams &p : fullBdiCandidates()) {
            const BdiEncoded enc = bdiCompress(raw, {&p, 1});
            ASSERT_LE(enc.sizeBytes(), kWarpRegBytes);
            EXPECT_EQ(enc.compressed, bdiCompressible(raw, p));
            const auto back = bdiDecompress(enc);
            ASSERT_TRUE(back == raw)
                << "case " << i << ": <" << p.baseBytes << ","
                << p.deltaBytes << "> round-trip lost data";
        }
    }
}

TEST(BdiFuzz, SelectorAgreesWithExplorer)
{
    // bdiCompress must pick a candidate no worse than the explorer's
    // best choice over the same list.
    Rng rng(0xF0223u);
    for (u32 i = 0; i < kFuzzCases / 4; ++i) {
        const WarpRegValue v = randomRegister(rng, i);
        const auto raw = toBytes(v);
        const BdiEncoded enc = bdiCompress(raw, fullBdiCandidates());
        const auto best = bdiBestParams(raw, fullBdiCandidates());
        if (best.has_value()) {
            ASSERT_TRUE(enc.compressed) << "case " << i;
            EXPECT_EQ(enc.sizeBytes(), bdiCompressedSize(*best))
                << "case " << i << ": selector missed the best fit";
        } else {
            EXPECT_FALSE(enc.compressed) << "case " << i;
        }
    }
}

TEST(BdiFuzz, DeterministicAcrossRuns)
{
    // The fuzz corpus itself is seed-stable: two generators with the
    // same seed produce identical cases, so failures are replayable.
    Rng a(0xF0224u);
    Rng b(0xF0224u);
    for (u32 i = 0; i < 1000; ++i)
        ASSERT_TRUE(randomRegister(a, i) == randomRegister(b, i));
}

} // namespace
} // namespace warpcomp
