/**
 * @file
 * Per-stage latency pinning: the cycle cost of the compress and
 * decompress pipeline stages must shift end-to-end run length by
 * exactly the configured latency per critical-path traversal. These
 * tests guard the Exec -> Writeback hand-off in Sm::stepWritebackAndExec
 * against double-advance bugs (an entry must never retire earlier than
 * its readyAt, and the intended same-cycle fall-through for zero-latency
 * pools must keep working).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "isa/builder.hpp"

namespace warpcomp {
namespace {

/** Fixture wiring a kernel + memories through the Gpu front door. */
class PipelineLatencyTest : public ::testing::Test
{
  protected:
    PipelineLatencyTest() : gmem_(1 << 20), cmem_(1024) {}

    RunResult
    runOn(const Kernel &k, CompressionScheme scheme, u32 comp_latency,
          u32 decomp_latency, bool disable_gating = false)
    {
        GpuParams gp;
        gp.numSms = 1;
        gp.sm.scheme = scheme;
        gp.sm.compressLatency = comp_latency;
        gp.sm.decompressLatency = decomp_latency;
        gp.sm.applyScheme();
        if (disable_gating) {
            // Isolate pipeline-stage timing from bank power gating
            // (gated-bank wakeups add write latency orthogonal to the
            // compressor stage under test).
            gp.sm.regfile.gatingEnabled = false;
            gp.sm.regfile.validAtAlloc = true;
        }
        Gpu gpu(gp, gmem_, cmem_);
        return gpu.run(k, {32, 1});
    }

    GlobalMemory gmem_;
    ConstantMemory cmem_;
};

/**
 * A strict dependency chain of @p links uniform full-mask writes: every
 * instruction reads the previous one's destination, so each writeback
 * (and therefore each compressor traversal) sits on the critical path.
 */
Kernel
chainKernel(u32 links)
{
    KernelBuilder b("chain");
    Reg r = b.newReg();
    b.movImm(r, 5);
    for (u32 i = 0; i < links; ++i) {
        Reg next = b.newReg();
        b.iadd(next, r, KernelBuilder::imm(1));
        r = next;
    }
    return b.build();
}

/**
 * Raising compressLatency by N must lengthen the run by exactly N
 * cycles per serialized full-mask write: each chain link issues only
 * after the previous link's compressor finishes and releases the
 * scoreboard. An early (double-advance) or late retirement in
 * stepWritebackAndExec breaks the equality in opposite directions.
 */
TEST_F(PipelineLatencyTest, CompressLatencyShiftsCyclesByExactDelta)
{
    const u32 links = 8;
    const Kernel k = chainKernel(links);
    // movImm + every chain link traverse the compressor.
    const u64 writes = links + 1;

    const u64 c0 = runOn(k, CompressionScheme::Warped, 0, 1).cycles;
    const u64 c2 = runOn(k, CompressionScheme::Warped, 2, 1).cycles;
    const u64 c5 = runOn(k, CompressionScheme::Warped, 5, 1).cycles;

    EXPECT_EQ(c2 - c0, 2 * writes) << "c0=" << c0 << " c2=" << c2;
    EXPECT_EQ(c5 - c2, 3 * writes) << "c2=" << c2 << " c5=" << c5;
}

/**
 * compressLatency == 0 exercises the intended same-cycle
 * Exec -> Writeback fall-through: an entry promoted with
 * readyAt == now must write back that very cycle. Independent writes
 * (no reads of compressed registers, so no decompress dummy MOVs) make
 * a zero-latency compressor pipeline-shape-identical to the
 * uncompressed baseline — any extra cycle means the promoted entry
 * waited a walk instead of falling through.
 */
TEST_F(PipelineLatencyTest, ZeroCompressLatencyMatchesBaselineShape)
{
    KernelBuilder b("indep");
    for (u32 i = 0; i < 8; ++i)
        b.movImm(b.newReg(), static_cast<i32>(i));
    const Kernel k = b.build();

    const u64 none = runOn(k, CompressionScheme::None, 2, 1).cycles;
    const u64 zero = runOn(k, CompressionScheme::Warped, 0, 1,
                           /*disable_gating=*/true).cycles;

    EXPECT_EQ(zero, none) << "zero-latency compression must not change "
                             "pipeline timing";
}

/** With compression disabled the compressor pool is never entered, so
 *  its latency knob must be completely inert. */
TEST_F(PipelineLatencyTest, NoneSchemeIgnoresCompressLatency)
{
    const Kernel k = chainKernel(8);
    const u64 a = runOn(k, CompressionScheme::None, 0, 1).cycles;
    const u64 b = runOn(k, CompressionScheme::None, 2, 1).cycles;
    const u64 c = runOn(k, CompressionScheme::None, 7, 1).cycles;
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, c);
}

/**
 * Raising decompressLatency by N must lengthen the run by exactly N
 * cycles per critical-path read of a compressed register (each such
 * read injects a dummy MOV through the decompressor pool).
 */
TEST_F(PipelineLatencyTest, DecompressLatencyShiftsCyclesByExactDelta)
{
    const u32 links = 8;
    const Kernel k = chainKernel(links);

    const u64 d1 = runOn(k, CompressionScheme::Warped, 2, 1).cycles;
    const u64 d4 = runOn(k, CompressionScheme::Warped, 2, 4).cycles;

    // Every chain link reads one compressed register before it can
    // execute; each read's decompression is serialized on the chain.
    const u64 reads = links;
    EXPECT_EQ(d4 - d1, 3 * reads) << "d1=" << d1 << " d4=" << d4;
}

} // namespace
} // namespace warpcomp
