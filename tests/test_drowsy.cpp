/**
 * @file
 * Drowsy-mode comparator tests: bank last-access tracking, the
 * active/drowsy leakage census, meter arithmetic, and the system-level
 * invariants (drowsy only reduces leakage; composes with compression).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "regfile/regfile.hpp"

namespace warpcomp {
namespace {

RegFileParams
drowsyParams(u32 after = 10)
{
    RegFileParams p;
    p.gatingEnabled = false;
    p.validAtAlloc = true;
    p.drowsyEnabled = true;
    p.drowsyAfterCycles = after;
    return p;
}

TEST(Drowsy, BanksStartActiveThenDrowse)
{
    RegisterFile rf(drowsyParams(10));
    const auto at0 = rf.bankActivity(5);
    EXPECT_EQ(at0.active, 32u);
    EXPECT_EQ(at0.drowsy, 0u);
    const auto at20 = rf.bankActivity(20);
    EXPECT_EQ(at20.active, 0u);
    EXPECT_EQ(at20.drowsy, 32u);
}

TEST(Drowsy, AccessWakesOneBank)
{
    RegisterFile rf(drowsyParams(10));
    ASSERT_TRUE(rf.allocate(0, 1, 0));
    // Write at cycle 100 refreshes the 8 banks of the register's
    // cluster (baseline footprint).
    WarpRegValue v{};
    v.fill(1);
    BdiEncoded enc;
    enc.compressed = false;
    const auto img = toBytes(v);
    enc.bytes.assign(img.begin(), img.end());
    rf.recordWrite(0, 0, enc, 100);

    const auto act = rf.bankActivity(105);
    EXPECT_EQ(act.active, 8u);
    EXPECT_EQ(act.drowsy, 24u);
    // Past the threshold everything drowses again.
    const auto later = rf.bankActivity(200);
    EXPECT_EQ(later.active, 0u);
    EXPECT_EQ(later.drowsy, 32u);
}

TEST(Drowsy, DisabledMeansAllActive)
{
    RegFileParams p;
    p.gatingEnabled = false;
    p.validAtAlloc = true;
    RegisterFile rf(p);
    const auto act = rf.bankActivity(1'000'000);
    EXPECT_EQ(act.active, 32u);
    EXPECT_EQ(act.drowsy, 0u);
}

TEST(Drowsy, GatedBanksAreNeitherActiveNorDrowsy)
{
    RegFileParams p;
    p.gatingEnabled = true;
    p.validAtAlloc = false;
    p.drowsyEnabled = true;
    p.drowsyAfterCycles = 10;
    RegisterFile rf(p);
    // All banks start gated in the compressed design.
    const auto act = rf.bankActivity(100);
    EXPECT_EQ(act.active, 0u);
    EXPECT_EQ(act.drowsy, 0u);
}

TEST(Drowsy, MeterChargesFraction)
{
    EnergyParams p;
    EnergyMeter m(p, 0, 0);
    m.addAwakeBankCycles(1000);
    m.addDrowsyBankCycles(1000);
    const EnergyBreakdown e = m.breakdown();
    // Drowsy cycles cost exactly drowsyLeakFraction of full leakage.
    EnergyMeter full(p, 0, 0);
    full.addAwakeBankCycles(1000);
    const double full_leak = full.breakdown().bankLeakagePj;
    EXPECT_NEAR(e.bankLeakagePj, full_leak * (1.0 + p.drowsyLeakFraction),
                1e-9);
}

TEST(Drowsy, MergePreservesDrowsyCycles)
{
    EnergyParams p;
    EnergyMeter a(p, 0, 0), b(p, 0, 0);
    a.addDrowsyBankCycles(10);
    b.addDrowsyBankCycles(20);
    a.merge(b);
    EXPECT_EQ(a.drowsyBankCycles(), 30u);
}

TEST(Drowsy, BaselineDrowsyOnlyReducesLeakage)
{
    ExperimentConfig base;
    base.scheme = CompressionScheme::None;
    base.numSms = 2;
    ExperimentConfig drowsy = base;
    drowsy.drowsy = true;

    const ExperimentResult rb = runWorkload("stencil", base);
    const ExperimentResult rd = runWorkload("stencil", drowsy);
    const EnergyBreakdown eb = rb.run.meter.breakdown();
    const EnergyBreakdown ed = rd.run.meter.breakdown();
    // Timing identical (drowsy wakeup not charged), dynamic identical,
    // leakage strictly reduced on this idle-heavy workload.
    EXPECT_EQ(rb.run.cycles, rd.run.cycles);
    EXPECT_DOUBLE_EQ(eb.dynamicPj(), ed.dynamicPj());
    EXPECT_LT(ed.bankLeakagePj, eb.bankLeakagePj);
}

TEST(Drowsy, ComposesWithCompression)
{
    ExperimentConfig wc;
    wc.numSms = 2;
    ExperimentConfig both = wc;
    both.drowsy = true;

    const ExperimentResult rw = runWorkload("lud", wc);
    const ExperimentResult rb = runWorkload("lud", both);
    EXPECT_LT(rb.run.meter.breakdown().totalPj(),
              rw.run.meter.breakdown().totalPj());
}

TEST(Drowsy, ThresholdControlsDrowsyTime)
{
    ExperimentConfig fast;
    fast.scheme = CompressionScheme::None;
    fast.drowsy = true;
    fast.drowsyAfterCycles = 8;
    fast.numSms = 2;
    ExperimentConfig slow = fast;
    slow.drowsyAfterCycles = 512;

    const ExperimentResult rf_ = runWorkload("nw", fast);
    const ExperimentResult rs = runWorkload("nw", slow);
    EXPECT_GE(rf_.run.meter.drowsyBankCycles(),
              rs.run.meter.drowsyBankCycles());
}

} // namespace
} // namespace warpcomp
