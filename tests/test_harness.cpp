/**
 * @file
 * Harness tests: config -> GpuParams assembly, argument parsing, and
 * the aggregate helpers used by every figure driver.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hpp"
#include "harness/perf_json.hpp"

namespace warpcomp {
namespace {

/** Run parseHarnessArgs on one flag (death-test helper). */
HarnessOptions
parseOne(const char *flag)
{
    const char *argv[] = {"bench", flag};
    return parseHarnessArgs(2, const_cast<char **>(argv));
}

TEST(Harness, SchemeAppliesRegFilePolicy)
{
    ExperimentConfig cfg;
    cfg.scheme = CompressionScheme::None;
    GpuParams gp = makeGpuParams(cfg);
    EXPECT_FALSE(gp.sm.regfile.gatingEnabled);
    EXPECT_TRUE(gp.sm.regfile.validAtAlloc);

    cfg.scheme = CompressionScheme::Warped;
    gp = makeGpuParams(cfg);
    EXPECT_TRUE(gp.sm.regfile.gatingEnabled);
    EXPECT_FALSE(gp.sm.regfile.validAtAlloc);
}

TEST(Harness, LatenciesPropagate)
{
    ExperimentConfig cfg;
    cfg.compressLatency = 8;
    cfg.decompressLatency = 4;
    const GpuParams gp = makeGpuParams(cfg);
    EXPECT_EQ(gp.sm.compressLatency, 8u);
    EXPECT_EQ(gp.sm.decompressLatency, 4u);
}

TEST(Harness, ArgParsing)
{
    const char *argv[] = {"bench", "--scale=3", "--sms=4",
                          "--only=lib", "--threads=6", "--unknown"};
    const HarnessOptions opt = parseHarnessArgs(
        6, const_cast<char **>(argv));
    EXPECT_EQ(opt.scale, 3u);
    EXPECT_EQ(opt.numSms, 4u);
    EXPECT_EQ(opt.threads, 6u);
    EXPECT_EQ(opt.only, "lib");
}

TEST(Harness, ArgDefaults)
{
    const char *argv[] = {"bench"};
    const HarnessOptions opt = parseHarnessArgs(
        1, const_cast<char **>(argv));
    EXPECT_EQ(opt.scale, 1u);
    EXPECT_EQ(opt.numSms, 15u);
    EXPECT_EQ(opt.threads, 0u);     // 0 = auto (hardware concurrency)
    EXPECT_TRUE(opt.only.empty());
}

TEST(Harness, FaultAndSeuArgsParse)
{
    const char *argv[] = {"bench", "--faults=1e-3,CompressRemap",
                          "--fault-seed=11", "--seu=2.5e-4,EccScrub",
                          "--seu-seed=7", "--seu-scrub=128"};
    const HarnessOptions opt =
        parseHarnessArgs(6, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(opt.faults.ber, 1e-3);
    EXPECT_EQ(opt.faults.policy, FaultPolicy::CompressRemap);
    EXPECT_EQ(opt.faults.seed, 11u);
    EXPECT_DOUBLE_EQ(opt.seu.flipsPerCycle, 2.5e-4);
    EXPECT_EQ(opt.seu.scheme, SeuScheme::EccScrub);
    EXPECT_EQ(opt.seu.seed, 7u);
    EXPECT_EQ(opt.seu.scrubInterval, 128u);
}

TEST(Harness, HangBudgetParses)
{
    EXPECT_EQ(parseOne("--hang-budget=1").hangBudget, 1u);
    EXPECT_EQ(parseOne("--hang-budget=5000000").hangBudget, 5'000'000u);
    // Default: 0 = keep the configured FaultParams::hangCycles.
    const char *argv[] = {"bench"};
    EXPECT_EQ(parseHarnessArgs(1, const_cast<char **>(argv)).hangBudget,
              0u);
}

TEST(HarnessDeathTest, MalformedHangBudgetExitsNonzero)
{
    // strtoull would silently wrap a negative value; the parser must
    // reject anything that is not a plain positive integer.
    EXPECT_EXIT(parseOne("--hang-budget="),
                ::testing::ExitedWithCode(1), "cycle count >= 1");
    EXPECT_EXIT(parseOne("--hang-budget=0"),
                ::testing::ExitedWithCode(1), "cycle count >= 1");
    EXPECT_EXIT(parseOne("--hang-budget=-5"),
                ::testing::ExitedWithCode(1), "cycle count >= 1");
    EXPECT_EXIT(parseOne("--hang-budget=nan"),
                ::testing::ExitedWithCode(1), "cycle count >= 1");
    EXPECT_EXIT(parseOne("--hang-budget=1e6"),
                ::testing::ExitedWithCode(1), "cycle count >= 1");
    EXPECT_EXIT(parseOne("--hang-budget=12junk"),
                ::testing::ExitedWithCode(1), "cycle count >= 1");
}

TEST(Harness, TraceWindowAndTraceOutParse)
{
    const HarnessOptions o = parseOne("--trace=t.json,1000,5000");
    EXPECT_EQ(o.tracePath, "t.json");
    EXPECT_EQ(o.traceStart, 1000u);
    EXPECT_EQ(o.traceEnd, 5000u);
    EXPECT_EQ(parseOne("--trace-out=dump.wctrace").traceOutPath,
              "dump.wctrace");
    EXPECT_TRUE(parseOne("--trace=t.json").traceOutPath.empty());
}

TEST(HarnessDeathTest, MalformedTraceRangeExitsNonzero)
{
    // The window bounds go through the strict digits-only parser:
    // strtoull would wrap "-1" to 2^64-1 and silently trace nothing.
    EXPECT_EXIT(parseOne("--trace=t.json,1000"),
                ::testing::ExitedWithCode(1), "wants FILE or "
                "FILE,START,END");
    EXPECT_EXIT(parseOne("--trace=t.json,abc,5000"),
                ::testing::ExitedWithCode(1),
                "START must be a cycle count");
    EXPECT_EXIT(parseOne("--trace=t.json,-1,5000"),
                ::testing::ExitedWithCode(1),
                "START must be a cycle count");
    EXPECT_EXIT(parseOne("--trace=t.json,1e3,5000"),
                ::testing::ExitedWithCode(1),
                "START must be a cycle count");
    EXPECT_EXIT(parseOne("--trace=t.json,1000,abc"),
                ::testing::ExitedWithCode(1),
                "END must be a cycle count");
    EXPECT_EXIT(parseOne("--trace=t.json,1000,-5"),
                ::testing::ExitedWithCode(1),
                "END must be a cycle count");
    EXPECT_EXIT(parseOne("--trace=t.json,5000,1000"),
                ::testing::ExitedWithCode(1),
                "END must be a cycle count > START");
    EXPECT_EXIT(parseOne("--trace=t.json,1000,1000"),
                ::testing::ExitedWithCode(1),
                "END must be a cycle count > START");
    EXPECT_EXIT(parseOne("--trace=,1000,5000"),
                ::testing::ExitedWithCode(1), "needs a file path");
    EXPECT_EXIT(parseOne("--trace-out="),
                ::testing::ExitedWithCode(1), "needs a file path");
}

TEST(HarnessDeathTest, MalformedFaultSpecsExitNonzero)
{
    // Malformed rates must be a one-line fatal error with nonzero
    // exit — never a silent atof-style default. NaN in particular
    // sails through naive range checks (every comparison is false).
    EXPECT_EXIT(parseOne("--faults=1e-4"),
                ::testing::ExitedWithCode(1), "wants BER,POLICY");
    EXPECT_EXIT(parseOne("--faults=abc,None"),
                ::testing::ExitedWithCode(1), "must be a finite value");
    EXPECT_EXIT(parseOne("--faults=nan,None"),
                ::testing::ExitedWithCode(1), "must be a finite value");
    EXPECT_EXIT(parseOne("--faults=-0.5,None"),
                ::testing::ExitedWithCode(1), "must be a finite value");
    EXPECT_EXIT(parseOne("--faults=1.5,None"),
                ::testing::ExitedWithCode(1), "must be a finite value");
    EXPECT_EXIT(parseOne("--faults=1e-4,Bogus"),
                ::testing::ExitedWithCode(1), "unknown fault policy");
}

TEST(HarnessDeathTest, MalformedSeuSpecsExitNonzero)
{
    EXPECT_EXIT(parseOne("--seu=1e-4"),
                ::testing::ExitedWithCode(1), "wants RATE,SCHEME");
    EXPECT_EXIT(parseOne("--seu=abc,Ecc"),
                ::testing::ExitedWithCode(1), "finite flips-per-cycle");
    EXPECT_EXIT(parseOne("--seu=nan,Scrub"),
                ::testing::ExitedWithCode(1), "finite flips-per-cycle");
    EXPECT_EXIT(parseOne("--seu=inf,Ecc"),
                ::testing::ExitedWithCode(1), "finite flips-per-cycle");
    EXPECT_EXIT(parseOne("--seu=-1,Ecc"),
                ::testing::ExitedWithCode(1), "finite flips-per-cycle");
    EXPECT_EXIT(parseOne("--seu=1e-4,Bogus"),
                ::testing::ExitedWithCode(1), "unknown SEU scheme");
    EXPECT_EXIT(parseOne("--seu-scrub=0"),
                ::testing::ExitedWithCode(1), "cycle count >= 1");
    EXPECT_EXIT(parseOne("--seu-scrub=12abc"),
                ::testing::ExitedWithCode(1), "cycle count >= 1");
}

TEST(Harness, PerfJsonRecordsFaultAndSeuConfig)
{
    // Sweep artifacts must be self-describing: the active fault/SEU
    // configuration rides along in every suite record.
    PerfRecorder rec;
    rec.setOutput("bench_test", "/dev/null");
    PerfSuiteRecord suite;
    suite.label = "seu point";
    suite.faultBer = 1e-3;
    suite.faultPolicy = "CompressRemap";
    suite.faultSeed = 11;
    suite.seuRate = 2.5e-4;
    suite.seuScheme = "EccScrub";
    suite.seuScrubInterval = 128;
    rec.addSuite(std::move(suite));
    std::ostringstream os;
    rec.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"fault_ber\": 0.001"), std::string::npos);
    EXPECT_NE(json.find("\"fault_policy\": \"CompressRemap\""),
              std::string::npos);
    EXPECT_NE(json.find("\"fault_seed\": 11"), std::string::npos);
    EXPECT_NE(json.find("\"seu_rate\": 0.00025"), std::string::npos);
    EXPECT_NE(json.find("\"seu_scheme\": \"EccScrub\""),
              std::string::npos);
    EXPECT_NE(json.find("\"seu_scrub_interval\": 128"),
              std::string::npos);
}

TEST(Harness, PerfJsonRecordsBuildMetadata)
{
    // The CI perf gate matches these fields before comparing wall
    // clocks; a record missing them would silently compare an -O2
    // build against an -O3 one.
    PerfRecorder rec;
    rec.setOutput("bench_test", "/dev/null");
    rec.addSuite(PerfSuiteRecord{});
    std::ostringstream os;
    rec.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"compiler\": "), std::string::npos);
    EXPECT_NE(json.find("\"cxx_flags\": "), std::string::npos);
    EXPECT_NE(json.find("\"simd_isa\": "), std::string::npos);
    // CMake stamps real values; only a non-CMake build may say unknown.
    EXPECT_EQ(json.find("\"compiler\": \"unknown\""), std::string::npos);
    EXPECT_EQ(json.find("\"cxx_flags\": \"unknown\""), std::string::npos);
}

TEST(Harness, Means)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({42.0}), 42.0);
}

TEST(Harness, GeomeanEmptyIsZeroByContract)
{
    // Documented contract (experiment.hpp): an empty figure row
    // renders as 0.0, never an UB path through the assert macro.
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean(std::vector<double>{}), 0.0);
}

TEST(Harness, TableTwoDefaults)
{
    // The defaults must match Table 2 of the paper.
    ExperimentConfig cfg;
    const GpuParams gp = makeGpuParams(cfg);
    EXPECT_EQ(gp.numSms, 15u);
    EXPECT_EQ(gp.sm.numSchedulers, 2u);
    EXPECT_EQ(gp.sm.maxWarps, 48u);
    EXPECT_EQ(gp.sm.maxThreads, 1536u);
    EXPECT_EQ(gp.sm.regfile.numBanks, 32u);
    EXPECT_EQ(gp.sm.regfile.entriesPerBank, 256u);
    EXPECT_EQ(gp.sm.regfile.wakeupLatency, 10u);
    EXPECT_EQ(gp.sm.numCompressors, 2u);
    EXPECT_EQ(gp.sm.numDecompressors, 4u);
    EXPECT_EQ(gp.sm.compressLatency, 2u);
    EXPECT_EQ(gp.sm.decompressLatency, 1u);
    EXPECT_DOUBLE_EQ(gp.energy.clockGhz, 1.4);
    // 128 KB register file: 32 banks x 256 entries x 16 B.
    EXPECT_EQ(gp.sm.regfile.numBanks * gp.sm.regfile.entriesPerBank *
                  kBankEntryBytes,
              128u * 1024u);
    // 32768 thread registers = 1024 warp registers.
    EXPECT_EQ(gp.sm.regfile.totalWarpRegs() * kWarpSize, 32768u);
}

} // namespace
} // namespace warpcomp
