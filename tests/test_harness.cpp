/**
 * @file
 * Harness tests: config -> GpuParams assembly, argument parsing, and
 * the aggregate helpers used by every figure driver.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace warpcomp {
namespace {

TEST(Harness, SchemeAppliesRegFilePolicy)
{
    ExperimentConfig cfg;
    cfg.scheme = CompressionScheme::None;
    GpuParams gp = makeGpuParams(cfg);
    EXPECT_FALSE(gp.sm.regfile.gatingEnabled);
    EXPECT_TRUE(gp.sm.regfile.validAtAlloc);

    cfg.scheme = CompressionScheme::Warped;
    gp = makeGpuParams(cfg);
    EXPECT_TRUE(gp.sm.regfile.gatingEnabled);
    EXPECT_FALSE(gp.sm.regfile.validAtAlloc);
}

TEST(Harness, LatenciesPropagate)
{
    ExperimentConfig cfg;
    cfg.compressLatency = 8;
    cfg.decompressLatency = 4;
    const GpuParams gp = makeGpuParams(cfg);
    EXPECT_EQ(gp.sm.compressLatency, 8u);
    EXPECT_EQ(gp.sm.decompressLatency, 4u);
}

TEST(Harness, ArgParsing)
{
    const char *argv[] = {"bench", "--scale=3", "--sms=4",
                          "--only=lib", "--threads=6", "--unknown"};
    const HarnessOptions opt = parseHarnessArgs(
        6, const_cast<char **>(argv));
    EXPECT_EQ(opt.scale, 3u);
    EXPECT_EQ(opt.numSms, 4u);
    EXPECT_EQ(opt.threads, 6u);
    EXPECT_EQ(opt.only, "lib");
}

TEST(Harness, ArgDefaults)
{
    const char *argv[] = {"bench"};
    const HarnessOptions opt = parseHarnessArgs(
        1, const_cast<char **>(argv));
    EXPECT_EQ(opt.scale, 1u);
    EXPECT_EQ(opt.numSms, 15u);
    EXPECT_EQ(opt.threads, 0u);     // 0 = auto (hardware concurrency)
    EXPECT_TRUE(opt.only.empty());
}

TEST(Harness, Means)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({42.0}), 42.0);
}

TEST(Harness, GeomeanEmptyIsZeroByContract)
{
    // Documented contract (experiment.hpp): an empty figure row
    // renders as 0.0, never an UB path through the assert macro.
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean(std::vector<double>{}), 0.0);
}

TEST(Harness, TableTwoDefaults)
{
    // The defaults must match Table 2 of the paper.
    ExperimentConfig cfg;
    const GpuParams gp = makeGpuParams(cfg);
    EXPECT_EQ(gp.numSms, 15u);
    EXPECT_EQ(gp.sm.numSchedulers, 2u);
    EXPECT_EQ(gp.sm.maxWarps, 48u);
    EXPECT_EQ(gp.sm.maxThreads, 1536u);
    EXPECT_EQ(gp.sm.regfile.numBanks, 32u);
    EXPECT_EQ(gp.sm.regfile.entriesPerBank, 256u);
    EXPECT_EQ(gp.sm.regfile.wakeupLatency, 10u);
    EXPECT_EQ(gp.sm.numCompressors, 2u);
    EXPECT_EQ(gp.sm.numDecompressors, 4u);
    EXPECT_EQ(gp.sm.compressLatency, 2u);
    EXPECT_EQ(gp.sm.decompressLatency, 1u);
    EXPECT_DOUBLE_EQ(gp.energy.clockGhz, 1.4);
    // 128 KB register file: 32 banks x 256 entries x 16 B.
    EXPECT_EQ(gp.sm.regfile.numBanks * gp.sm.regfile.entriesPerBank *
                  kBankEntryBytes,
              128u * 1024u);
    // 32768 thread registers = 1024 warp registers.
    EXPECT_EQ(gp.sm.regfile.totalWarpRegs() * kWarpSize, 32768u);
}

} // namespace
} // namespace warpcomp
