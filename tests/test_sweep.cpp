/**
 * @file
 * Unit tests for the resilient sweep runner's building blocks: the
 * canonical point/config spec grammar, cache keys, deterministic chaos
 * injection, journal records (including torn tails and stale git
 * SHAs), the PointStats JSON round trip, and the strict sweep-flag
 * parser. End-to-end supervision (real child processes) lives in
 * test_sweep_process.cpp.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sweep/sweep.hpp"

namespace warpcomp {
namespace {

std::string
writeTemp(const std::string &name, const std::string &content)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream os(path, std::ios::binary);
    os << content;
    return path;
}

ExperimentConfig
customConfig()
{
    ExperimentConfig cfg;
    cfg.scheme = CompressionScheme::Fixed41;
    cfg.sched = SchedPolicy::Lrr;
    cfg.divPolicy = DivergencePolicy::MergeRecompress;
    cfg.compressLatency = 7;
    cfg.decompressLatency = 3;
    cfg.numSms = 2;
    cfg.scale = 4;
    cfg.collectBdiBreakdown = true;
    cfg.enableGating = false;
    cfg.drowsy = true;
    cfg.drowsyAfterCycles = 17;
    cfg.rfcEntries = 6;
    cfg.wakeupLatency = 5;
    cfg.numCompressors = 1;
    cfg.numDecompressors = 8;
    cfg.seedSalt = 0xDEADBEEFCAFEull;
    cfg.faults.ber = 2.5e-4;
    cfg.faults.policy = FaultPolicy::CompressRemap;
    cfg.faults.seed = 99;
    cfg.faults.hangCycles = 123456;
    cfg.seu.flipsPerCycle = 1e-3;
    cfg.seu.scheme = SeuScheme::EccScrub;
    cfg.seu.seed = 7;
    cfg.seu.scrubInterval = 64;
    cfg.skipIdle = false;
    return cfg;
}

TEST(SweepPointSpec, RoundTripsDefaultsAndCustom)
{
    for (const ExperimentConfig &cfg :
         {ExperimentConfig{}, customConfig()}) {
        const std::string spec = configToSpec(cfg);
        std::string err;
        const auto back = configFromSpec(spec, &err);
        ASSERT_TRUE(back.has_value()) << err;
        // Canonical form: encode(parse(encode(c))) == encode(c).
        EXPECT_EQ(configToSpec(*back), spec);
    }
}

TEST(SweepPointSpec, CustomFieldsSurviveTheTrip)
{
    const ExperimentConfig cfg = customConfig();
    std::string err;
    const auto back = configFromSpec(configToSpec(cfg), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->scheme, cfg.scheme);
    EXPECT_EQ(back->sched, cfg.sched);
    EXPECT_EQ(back->divPolicy, cfg.divPolicy);
    EXPECT_EQ(back->numSms, cfg.numSms);
    EXPECT_EQ(back->seedSalt, cfg.seedSalt);
    EXPECT_DOUBLE_EQ(back->faults.ber, cfg.faults.ber);
    EXPECT_EQ(back->faults.policy, cfg.faults.policy);
    EXPECT_EQ(back->faults.hangCycles, cfg.faults.hangCycles);
    EXPECT_DOUBLE_EQ(back->seu.flipsPerCycle, cfg.seu.flipsPerCycle);
    EXPECT_EQ(back->seu.scheme, cfg.seu.scheme);
    EXPECT_EQ(back->seu.scrubInterval, cfg.seu.scrubInterval);
    EXPECT_FALSE(back->skipIdle);
}

TEST(SweepPointSpec, RejectsMalformedSpecs)
{
    std::string err;
    EXPECT_FALSE(configFromSpec("nonsense", &err).has_value());
    EXPECT_NE(err.find("no '='"), std::string::npos);
    EXPECT_FALSE(configFromSpec("bogus=1", &err).has_value());
    EXPECT_NE(err.find("unknown config key"), std::string::npos);
    EXPECT_FALSE(configFromSpec("sms=zero", &err).has_value());
    EXPECT_NE(err.find("bad value"), std::string::npos);
    EXPECT_FALSE(configFromSpec("sms=0", &err).has_value());
    EXPECT_FALSE(configFromSpec("fber=1.5", &err).has_value());
    EXPECT_FALSE(configFromSpec("scheme=warped2", &err).has_value());
    EXPECT_FALSE(configFromSpec("salt=-1", &err).has_value());
}

TEST(SweepPointSpec, PointSpecRoundTrip)
{
    const SweepPoint point{"nw", customConfig()};
    std::string err;
    const auto back = pointFromSpec(pointToSpec(point), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->workload, "nw");
    EXPECT_EQ(configToSpec(back->cfg), configToSpec(point.cfg));

    EXPECT_FALSE(pointFromSpec("no-separator", &err).has_value());
    EXPECT_FALSE(pointFromSpec("|scheme=None", &err).has_value());
}

TEST(SweepPointSpec, KeyIsStableAndSensitive)
{
    const SweepPoint a{"nw", ExperimentConfig{}};
    const std::string key = pointKey(a);
    EXPECT_EQ(key.size(), 16u);
    EXPECT_EQ(pointKey(a), key);    // pure function

    SweepPoint b = a;
    b.workload = "lud";
    EXPECT_NE(pointKey(b), key);
    SweepPoint c = a;
    c.cfg.numSms = 3;
    EXPECT_NE(pointKey(c), key);
}

TEST(SweepChaos, SpecParsesAndCanonicalizes)
{
    std::string err;
    const auto spec = chaosFromSpec("crash,0.25,42", &err);
    ASSERT_TRUE(spec.has_value()) << err;
    EXPECT_EQ(spec->mode, ChaosMode::Crash);
    EXPECT_DOUBLE_EQ(spec->rate, 0.25);
    EXPECT_EQ(spec->seed, 42u);
    const auto back = chaosFromSpec(chaosToSpec(*spec), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->mode, spec->mode);
    EXPECT_DOUBLE_EQ(back->rate, spec->rate);
    EXPECT_EQ(back->seed, spec->seed);

    EXPECT_FALSE(chaosFromSpec("crash", &err).has_value());
    EXPECT_FALSE(chaosFromSpec("explode,0.5,1", &err).has_value());
    EXPECT_FALSE(chaosFromSpec("crash,1.5,1", &err).has_value());
    EXPECT_FALSE(chaosFromSpec("crash,nan,1", &err).has_value());
    EXPECT_FALSE(chaosFromSpec("crash,0.5,x", &err).has_value());
}

TEST(SweepChaos, ActionIsDeterministicPerPointAndAttempt)
{
    ChaosSpec spec;
    spec.mode = ChaosMode::Mix;
    spec.rate = 0.5;
    spec.seed = 7;

    // Pure function: same inputs, same injury, run over run.
    for (u32 attempt = 1; attempt <= 4; ++attempt)
        EXPECT_EQ(chaosAction(spec, "0123456789abcdef", attempt),
                  chaosAction(spec, "0123456789abcdef", attempt));

    // Rate 0 never fires; rate 1 always fires.
    spec.rate = 0.0;
    EXPECT_EQ(chaosAction(spec, "k", 1), ChaosMode::None);
    spec.rate = 1.0;
    EXPECT_NE(chaosAction(spec, "k", 1), ChaosMode::None);

    // Disabled mode never fires regardless of rate.
    spec.mode = ChaosMode::None;
    EXPECT_EQ(chaosAction(spec, "k", 1), ChaosMode::None);
}

TEST(SweepChaos, RetriesEventuallyEscapeInjury)
{
    // At rate 0.5 some attempt within a small budget must come back
    // clean for every key — the property that makes bounded retry
    // recover transient chaos.
    ChaosSpec spec;
    spec.mode = ChaosMode::Crash;
    spec.rate = 0.5;
    spec.seed = 1;
    for (const char *key : {"a", "b", "c", "d", "e", "f", "g", "h"}) {
        bool escaped = false;
        for (u32 attempt = 1; attempt <= 16 && !escaped; ++attempt)
            escaped = chaosAction(spec, key, attempt) == ChaosMode::None;
        EXPECT_TRUE(escaped) << key;
    }
}

JsonValue
sampleStatsJson()
{
    std::ostringstream ss;
    JsonWriter w(ss, JsonWriter::Style::Compact);
    writeJson(w, PointStats{});
    const JsonParseOutcome parsed = parseJson(ss.str());
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    return *parsed.value;
}

JournalRecord
sampleRecord(const std::string &key, const std::string &status)
{
    JournalRecord rec;
    rec.key = key;
    rec.workload = "nw";
    rec.configSpec = configToSpec(ExperimentConfig{});
    rec.status = status;
    rec.attempts = 2;
    if (status == "ok")
        rec.stats = sampleStatsJson();
    else
        rec.reason = "exit code 66 after 3 attempts";
    return rec;
}

TEST(SweepJournal, RecordRoundTripsThroughOneLine)
{
    for (const char *status : {"ok", "failed"}) {
        const JournalRecord rec = sampleRecord("k1", status);
        const std::string line = journalLine(rec);
        EXPECT_EQ(line.find('\n'), std::string::npos);
        const auto back = journalRecordFromLine(line);
        ASSERT_TRUE(back.has_value()) << line;
        EXPECT_EQ(back->key, rec.key);
        EXPECT_EQ(back->workload, rec.workload);
        EXPECT_EQ(back->configSpec, rec.configSpec);
        EXPECT_EQ(back->status, rec.status);
        EXPECT_EQ(back->attempts, rec.attempts);
        EXPECT_EQ(back->reason, rec.reason);
        EXPECT_EQ(back->stats.has_value(), rec.stats.has_value());
    }
}

TEST(SweepJournal, RejectsGarbageAndIncompleteRecords)
{
    EXPECT_FALSE(journalRecordFromLine("").has_value());
    EXPECT_FALSE(journalRecordFromLine("not json").has_value());
    EXPECT_FALSE(journalRecordFromLine("{\"v\":2}").has_value());
    // An "ok" record must carry its stats payload.
    JournalRecord rec = sampleRecord("k1", "ok");
    rec.stats.reset();
    EXPECT_FALSE(journalRecordFromLine(journalLine(rec)).has_value());
}

TEST(SweepJournal, StaleGitShaIsFlaggedNotServed)
{
    std::string line = journalLine(sampleRecord("k1", "ok"));
    const std::string sha = sweepGitSha();
    const size_t at = line.find(sha);
    ASSERT_NE(at, std::string::npos);
    line.replace(at, sha.size(), "cafecafecafe");
    const auto rec = journalRecordFromLine(line);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, "stale");
}

TEST(SweepJournal, LoadToleratesTornTailAndGarbage)
{
    const std::string good1 = journalLine(sampleRecord("k1", "ok"));
    const std::string good2 = journalLine(sampleRecord("k2", "failed"));
    const std::string content = good1 + "\n" + "g@rbage line\n" +
                                good2 + "\n" +
                                good1.substr(0, good1.size() / 2);
    const std::string path = writeTemp("sweep_journal_torn.jsonl",
                                       content);
    std::string err;
    const auto index = loadJournal(path, &err);
    ASSERT_TRUE(index.has_value()) << err;
    EXPECT_EQ(index->byKey.size(), 2u);
    EXPECT_EQ(index->skippedLines, 2u);     // garbage + torn tail
    ASSERT_TRUE(index->byKey.count("k1"));
    EXPECT_EQ(index->byKey.at("k1").status, "ok");
    EXPECT_EQ(index->byKey.at("k2").status, "failed");
}

TEST(SweepJournal, LaterRecordsWin)
{
    const std::string content =
        journalLine(sampleRecord("k1", "failed")) + "\n" +
        journalLine(sampleRecord("k1", "ok")) + "\n";
    const std::string path = writeTemp("sweep_journal_dup.jsonl",
                                       content);
    std::string err;
    const auto index = loadJournal(path, &err);
    ASSERT_TRUE(index.has_value()) << err;
    EXPECT_EQ(index->byKey.size(), 1u);
    EXPECT_EQ(index->byKey.at("k1").status, "ok");
}

TEST(SweepJournal, MissingFileIsAnError)
{
    std::string err;
    EXPECT_FALSE(loadJournal(::testing::TempDir() +
                                 "definitely_missing.jsonl",
                             &err)
                     .has_value());
    EXPECT_FALSE(err.empty());
}

TEST(SweepJournal, AppendedFileLoadsBack)
{
    const std::string path =
        ::testing::TempDir() + "sweep_journal_append.jsonl";
    std::remove(path.c_str());
    {
        SweepJournal journal(path);
        journal.append(sampleRecord("k1", "ok"));
        journal.append(sampleRecord("k2", "failed"));
    }
    std::string err;
    const auto index = loadJournal(path, &err);
    ASSERT_TRUE(index.has_value()) << err;
    EXPECT_EQ(index->byKey.size(), 2u);
    EXPECT_EQ(index->skippedLines, 0u);
}

TEST(SweepPointStats, JsonRoundTrip)
{
    PointStats s;
    s.cycles = 0xFFFFFFFFFFFFFFFFull;   // above 2^53: literal fidelity
    s.ctas = 17;
    s.hung = true;
    s.energyPj = 123.456;
    s.fault.totalRegs = 1024;
    s.fault.usableRegs = 1000;
    s.seu.flips = 5;
    s.seu.corruptedReads = 2;
    s.frontend = "rv32";
    s.imageSha = "abc123";

    std::ostringstream ss;
    JsonWriter w(ss, JsonWriter::Style::Compact);
    writeJson(w, s);
    const JsonParseOutcome parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    std::string err;
    const auto back = pointStatsFromJson(*parsed.value, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->cycles, s.cycles);
    EXPECT_EQ(back->ctas, s.ctas);
    EXPECT_TRUE(back->hung);
    EXPECT_FALSE(back->unschedulable);
    EXPECT_DOUBLE_EQ(back->energyPj, s.energyPj);
    EXPECT_EQ(back->fault.totalRegs, s.fault.totalRegs);
    EXPECT_EQ(back->fault.usableRegs, s.fault.usableRegs);
    EXPECT_EQ(back->seu.flips, s.seu.flips);
    EXPECT_EQ(back->seu.corruptedReads, s.seu.corruptedReads);
    EXPECT_EQ(back->frontend, "rv32");
    EXPECT_EQ(back->imageSha, "abc123");

    std::string err2;
    EXPECT_FALSE(
        pointStatsFromJson(*parseJson("{}").value, &err2).has_value());
    EXPECT_FALSE(err2.empty());
}

/** Run parseSweepArgs on one flag (death-test helper). */
SweepOptions
parseSweepOne(const char *flag)
{
    const char *argv[] = {"bench", flag};
    return parseSweepArgs(2, const_cast<char **>(argv));
}

TEST(SweepArgs, ParsesAndDefaults)
{
    const char *argv[] = {"bench",
                          "--journal=/tmp/j.jsonl",
                          "--chaos=mix,0.2,9",
                          "--timeout=1.5",
                          "--attempts=5",
                          "--backoff-ms=10",
                          "--grid=fault",
                          "--threads=4"};     // harness flag: ignored
    const SweepOptions opt =
        parseSweepArgs(8, const_cast<char **>(argv));
    EXPECT_FALSE(opt.isChild());
    EXPECT_EQ(opt.journalPath, "/tmp/j.jsonl");
    EXPECT_EQ(opt.chaos.mode, ChaosMode::Mix);
    EXPECT_DOUBLE_EQ(opt.chaos.rate, 0.2);
    EXPECT_EQ(opt.chaos.seed, 9u);
    EXPECT_DOUBLE_EQ(opt.timeoutSeconds, 1.5);
    EXPECT_EQ(opt.maxAttempts, 5u);
    EXPECT_EQ(opt.backoffMs, 10u);
    EXPECT_EQ(opt.grid, "fault");

    const char *defaults[] = {"bench"};
    const SweepOptions def =
        parseSweepArgs(1, const_cast<char **>(defaults));
    EXPECT_EQ(def.maxAttempts, 3u);
    EXPECT_DOUBLE_EQ(def.timeoutSeconds, 300.0);
    EXPECT_EQ(def.grid, "smoke");
}

TEST(SweepArgsDeathTest, MalformedFlagsExitNonzero)
{
    EXPECT_EXIT(parseSweepOne("--chaos=bogus,0.5,1"),
                ::testing::ExitedWithCode(1), "chaos");
    EXPECT_EXIT(parseSweepOne("--timeout=0"),
                ::testing::ExitedWithCode(1), "--timeout");
    EXPECT_EXIT(parseSweepOne("--timeout=abc"),
                ::testing::ExitedWithCode(1), "--timeout");
    EXPECT_EXIT(parseSweepOne("--attempts=0"),
                ::testing::ExitedWithCode(1), "--attempts");
    EXPECT_EXIT(parseSweepOne("--attempts=101"),
                ::testing::ExitedWithCode(1), "--attempts");
    EXPECT_EXIT(parseSweepOne("--backoff-ms=99999999"),
                ::testing::ExitedWithCode(1), "--backoff-ms");
    EXPECT_EXIT(parseSweepOne("--point=nw|scheme=None"),
                ::testing::ExitedWithCode(1),
                "--point requires --point-out");
    EXPECT_EXIT(parseSweepOne("--point="),
                ::testing::ExitedWithCode(1), "--point");
}

} // namespace
} // namespace warpcomp
