/**
 * @file
 * Register-file-cache comparator tests: LRU mechanics, per-warp
 * isolation, hit accounting, and the system-level invariants (RFC
 * filters bank reads without changing results; composes with
 * compression).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "regfile/rfc.hpp"

namespace warpcomp {
namespace {

TEST(Rfc, DisabledNeverHits)
{
    RegFileCache rfc(4, 0);
    EXPECT_FALSE(rfc.enabled());
    rfc.fill(0, 3);
    EXPECT_FALSE(rfc.lookup(0, 3));
    EXPECT_EQ(rfc.hits(), 0u);
    EXPECT_EQ(rfc.misses(), 0u);        // disabled lookups don't count
}

TEST(Rfc, FillThenHit)
{
    RegFileCache rfc(4, 2);
    EXPECT_FALSE(rfc.lookup(0, 3));
    rfc.fill(0, 3);
    EXPECT_TRUE(rfc.lookup(0, 3));
    EXPECT_EQ(rfc.hits(), 1u);
    EXPECT_EQ(rfc.misses(), 1u);
}

TEST(Rfc, LruEviction)
{
    RegFileCache rfc(1, 2);
    rfc.fill(0, 1);
    rfc.fill(0, 2);
    rfc.fill(0, 3);                     // evicts r1 (LRU)
    EXPECT_FALSE(rfc.lookup(0, 1));
    EXPECT_TRUE(rfc.lookup(0, 2));
    EXPECT_TRUE(rfc.lookup(0, 3));
}

TEST(Rfc, LookupRefreshesLru)
{
    RegFileCache rfc(1, 2);
    rfc.fill(0, 1);
    rfc.fill(0, 2);
    EXPECT_TRUE(rfc.lookup(0, 1));      // r1 becomes MRU
    rfc.fill(0, 3);                     // evicts r2, not r1
    EXPECT_TRUE(rfc.lookup(0, 1));
    EXPECT_FALSE(rfc.lookup(0, 2));
}

TEST(Rfc, RefillDoesNotDuplicate)
{
    RegFileCache rfc(1, 2);
    rfc.fill(0, 1);
    rfc.fill(0, 1);
    rfc.fill(0, 2);
    // Both must still be resident: the double fill of r1 took one slot.
    EXPECT_TRUE(rfc.lookup(0, 1));
    EXPECT_TRUE(rfc.lookup(0, 2));
}

TEST(Rfc, WarpsAreIsolated)
{
    RegFileCache rfc(2, 2);
    rfc.fill(0, 5);
    EXPECT_FALSE(rfc.lookup(1, 5));
    EXPECT_TRUE(rfc.lookup(0, 5));
}

TEST(Rfc, ClearWarpDropsEntries)
{
    RegFileCache rfc(2, 2);
    rfc.fill(0, 5);
    rfc.fill(1, 6);
    rfc.clearWarp(0);
    EXPECT_FALSE(rfc.lookup(0, 5));
    EXPECT_TRUE(rfc.lookup(1, 6));
}

TEST(Rfc, HitRate)
{
    RegFileCache rfc(1, 4);
    rfc.fill(0, 1);
    rfc.lookup(0, 1);
    rfc.lookup(0, 2);
    EXPECT_DOUBLE_EQ(rfc.hitRate(), 0.5);
}

TEST(RfcSystem, FiltersBankReadsWithoutChangingResults)
{
    ExperimentConfig plain;
    plain.scheme = CompressionScheme::None;
    plain.numSms = 2;
    ExperimentConfig cached = plain;
    cached.rfcEntries = 6;

    const ExperimentResult a = runWorkload("lud", plain);
    const ExperimentResult b = runWorkload("lud", cached);
    EXPECT_LT(b.run.meter.bankReads(), a.run.meter.bankReads());
    EXPECT_GT(b.run.rfcHits, 0u);
    EXPECT_EQ(a.run.rfcHits, 0u);
    // Same instruction stream either way.
    EXPECT_EQ(a.run.stats.issued, b.run.stats.issued);
}

TEST(RfcSystem, ComposesWithCompression)
{
    ExperimentConfig wc;
    wc.numSms = 2;
    ExperimentConfig both = wc;
    both.rfcEntries = 6;
    const ExperimentResult rw = runWorkload("backprop", wc);
    const ExperimentResult rb = runWorkload("backprop", both);
    EXPECT_LT(rb.run.meter.bankAccesses(), rw.run.meter.bankAccesses());
}

TEST(RfcSystem, BiggerCacheHitsMore)
{
    ExperimentConfig small;
    small.scheme = CompressionScheme::None;
    small.rfcEntries = 2;
    small.numSms = 2;
    ExperimentConfig big = small;
    big.rfcEntries = 12;
    const ExperimentResult rs = runWorkload("gaussian", small);
    const ExperimentResult rb = runWorkload("gaussian", big);
    const double hr_small = static_cast<double>(rs.run.rfcHits) /
        static_cast<double>(rs.run.rfcHits + rs.run.rfcMisses);
    const double hr_big = static_cast<double>(rb.run.rfcHits) /
        static_cast<double>(rb.run.rfcHits + rb.run.rfcMisses);
    EXPECT_GE(hr_big, hr_small);
}

TEST(RfcSystem, MeterChargesRfcEnergy)
{
    ExperimentConfig cfg;
    cfg.scheme = CompressionScheme::None;
    cfg.rfcEntries = 6;
    cfg.numSms = 2;
    const ExperimentResult r = runWorkload("nw", cfg);
    const EnergyBreakdown e = r.run.meter.breakdown();
    EXPECT_GT(e.rfcDynamicPj, 0.0);
    EXPECT_GT(r.run.meter.rfcAccesses(), 0u);
}

} // namespace
} // namespace warpcomp
