/**
 * @file
 * Observability subsystem tests: the trace ring, windowed counters,
 * no-perturbation (attaching the tracer must not change the simulated
 * machine), Chrome trace export content, and byte-level determinism of
 * both exporters across reruns and harness thread counts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "harness/experiment.hpp"
#include "isa/builder.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "obs/stats_json.hpp"

namespace warpcomp {
namespace {

// ---------------------------------------------------------------- ring

TEST(TraceRing, HoldsEventsUpToCapacity)
{
    TraceRing ring(4);
    for (u32 i = 0; i < 3; ++i)
        ring.push({i, i, 0, 0, 0, TraceEventKind::WarpIssue});
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.pushed(), 3u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.at(0).cycle, 0u);
    EXPECT_EQ(ring.at(2).cycle, 2u);
}

TEST(TraceRing, WrapDropsOldestKeepsChronologicalOrder)
{
    TraceRing ring(4);
    for (u32 i = 0; i < 10; ++i)
        ring.push({i, i, 0, 0, 0, TraceEventKind::WarpIssue});
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    // The survivors are the most recent events, oldest first.
    for (u32 i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).cycle, 6u + i);
}

TEST(TraceRing, ZeroCapacityCountsOffersWithoutStoring)
{
    TraceRing ring(0);
    ring.push({1, 0, 0, 0, 0, TraceEventKind::WarpIssue});
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.pushed(), 1u);
    EXPECT_EQ(ring.dropped(), 1u);
}

// ------------------------------------------------------------- windows

TEST(ObsWindows, AccumulatesIntoIntervalRows)
{
    ObsWindows win(100);
    win.onCycle(0, 2, 8);
    win.onIssue(5, false);
    win.onIssue(7, true);          // dummy MOV counts as an issue too
    win.onWrite(10, 32);
    win.onCycle(150, 4, 8);        // second window
    ASSERT_EQ(win.rows().size(), 2u);

    const WindowRow &r0 = win.rows()[0];
    EXPECT_EQ(r0.issued, 2u);
    EXPECT_EQ(r0.dummyMovs, 1u);
    EXPECT_EQ(r0.regWrites, 1u);
    EXPECT_EQ(r0.storedBytes, 32u);
    EXPECT_EQ(r0.rawBytes, static_cast<u64>(kWarpRegBytes));
    EXPECT_EQ(r0.gatedBankCycles, 2u);
    EXPECT_EQ(r0.bankCycles, 8u);
    EXPECT_EQ(r0.smCycles, 1u);

    const WindowRow &r1 = win.rows()[1];
    EXPECT_EQ(r1.gatedBankCycles, 4u);
    EXPECT_EQ(r1.issued, 0u);
}

TEST(ObsRun, TraceWindowFiltersEvents)
{
    ObsParams p;
    p.trace = true;
    p.traceStart = 100;
    p.traceEnd = 200;
    p.ringCapacity = 16;
    ObsRun obs(p);
    obs.onWarpIssue(0, 0, 0, 32, 50);    // before the window
    obs.onWarpIssue(0, 0, 0, 32, 100);   // first cycle inside
    obs.onWarpIssue(0, 0, 0, 32, 199);   // last cycle inside
    obs.onWarpIssue(0, 0, 0, 32, 200);   // END is exclusive
    EXPECT_EQ(obs.ring().size(), 2u);
    EXPECT_EQ(obs.ring().at(0).cycle, 100u);
    EXPECT_EQ(obs.ring().at(1).cycle, 199u);
}

// -------------------------------------------------- mini JSON checker

/**
 * Minimal recursive-descent JSON validator: enough to prove exported
 * documents are well-formed without pulling in a JSON library.
 */
class MiniJson
{
  public:
    explicit MiniJson(std::string_view s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool eof() const { return pos_ >= s_.size(); }
    char peek() const { return s_[pos_]; }

    void
    skipWs()
    {
        while (!eof() && (peek() == ' ' || peek() == '\n' ||
                          peek() == '\t' || peek() == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (s_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseString()
    {
        if (eof() || peek() != '"')
            return false;
        ++pos_;
        while (!eof() && peek() != '"') {
            if (peek() == '\\') {
                ++pos_;
                if (eof())
                    return false;
            }
            ++pos_;
        }
        if (eof())
            return false;
        ++pos_;                     // closing quote
        return true;
    }

    bool
    parseNumber()
    {
        const std::size_t start = pos_;
        if (!eof() && (peek() == '-' || peek() == '+'))
            ++pos_;
        while (!eof() &&
               ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                peek() == 'e' || peek() == 'E' || peek() == '-' ||
                peek() == '+'))
            ++pos_;
        return pos_ > start;
    }

    bool
    parseValue()
    {
        if (eof())
            return false;
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return parseNumber();
        }
    }

    bool
    parseObject()
    {
        ++pos_;                     // '{'
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (eof() || peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (eof())
                return false;
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray()
    {
        ++pos_;                     // '['
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (eof())
                return false;
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

TEST(MiniJsonSelfTest, AcceptsAndRejects)
{
    EXPECT_TRUE(MiniJson("{\"a\": [1, -2.5e3, null, \"x\\\"y\"]}")
                    .valid());
    EXPECT_TRUE(MiniJson("[]").valid());
    EXPECT_FALSE(MiniJson("{\"a\": }").valid());
    EXPECT_FALSE(MiniJson("[1, 2").valid());
    EXPECT_FALSE(MiniJson("{} trailing").valid());
}

// ------------------------------------------------- Chrome trace export

class ObsTraceTest : public ::testing::Test
{
  protected:
    ObsTraceTest() : gmem_(8 << 20), cmem_(64) {}

    /** Uniform write, divergent rewrite, store — triggers the
     *  write-uncompressed policy's dummy decompress-MOVs. */
    Kernel
    divergentRewriteKernel(u64 out)
    {
        KernelBuilder b("divrw");
        Reg lane = b.newReg(), v = b.newReg();
        Pred p = b.newPred();
        b.s2r(lane, SpecialReg::LaneId);
        b.movImm(v, 7);
        b.isetp(p, CmpOp::Lt, lane, KernelBuilder::imm(16));
        b.if_(p, [&] { b.iadd(v, v, KernelBuilder::imm(1)); });
        Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
        b.s2r(tid, SpecialReg::TidX);
        b.s2r(bid, SpecialReg::CtaIdX);
        b.s2r(ntid, SpecialReg::NTidX);
        Reg gid = b.newReg(), addr = b.newReg();
        b.imad(gid, bid, ntid, tid);
        b.imad(addr, gid, KernelBuilder::imm(4),
               KernelBuilder::imm(static_cast<i32>(out)));
        b.stg(addr, v);
        return b.build();
    }

    /** Run the divergent kernel traced and export its Chrome trace. */
    std::string
    tracedRun(CompressionScheme scheme)
    {
        GpuParams gp;
        gp.numSms = 1;
        gp.sm.scheme = scheme;
        gp.sm.applyScheme();
        gp.obs.trace = true;
        gp.obs.windowInterval = 100;
        const u64 out = gmem_.alloc(4 * 256);
        const Kernel k = divergentRewriteKernel(out);
        Gpu gpu(gp, gmem_, cmem_);
        RunResult run = gpu.run(k, {128, 2});
        EXPECT_NE(run.obs, nullptr);

        ChromeTraceMeta meta;
        meta.workload = "divrw";
        meta.config = schemeName(scheme);
        meta.numSms = gp.numSms;
        meta.numBanks = gp.sm.regfile.numBanks;
        meta.cycles = run.cycles;
        std::ostringstream os;
        writeChromeTrace(os, *run.obs, meta);
        return os.str();
    }

    GlobalMemory gmem_;
    ConstantMemory cmem_;
};

TEST_F(ObsTraceTest, WarpedTraceHasCompressionAndGatingEvents)
{
    const std::string trace = tracedRun(CompressionScheme::Warped);
    EXPECT_TRUE(MiniJson(trace).valid()) << "trace is not valid JSON";
    // Warp-lane pipeline events of the compressed design.
    EXPECT_NE(trace.find("\"dummy_mov\""), std::string::npos);
    EXPECT_NE(trace.find("\"compress\""), std::string::npos);
    EXPECT_NE(trace.find("\"issue\""), std::string::npos);
    EXPECT_NE(trace.find("\"writeback\""), std::string::npos);
    // Bank-lane power-gate intervals and their lane metadata.
    EXPECT_NE(trace.find("\"gated\""), std::string::npos);
    EXPECT_NE(trace.find("\"bank "), std::string::npos);
    EXPECT_NE(trace.find("\"warp 0\""), std::string::npos);
    // GPU-wide counter tracks from the windowed timelines.
    EXPECT_NE(trace.find("\"compression_ratio\""), std::string::npos);
    EXPECT_NE(trace.find("\"ipc\""), std::string::npos);
}

TEST_F(ObsTraceTest, NoneTraceHasNoDummyMovsOrGating)
{
    const std::string trace = tracedRun(CompressionScheme::None);
    EXPECT_TRUE(MiniJson(trace).valid()) << "trace is not valid JSON";
    // The uncompressed baseline never injects decompress-MOVs and
    // cannot gate banks.
    EXPECT_EQ(trace.find("\"dummy_mov\""), std::string::npos);
    EXPECT_EQ(trace.find("\"gated\""), std::string::npos);
    EXPECT_NE(trace.find("\"issue\""), std::string::npos);
}

TEST_F(ObsTraceTest, TraceIsByteIdenticalAcrossReruns)
{
    const std::string a = tracedRun(CompressionScheme::Warped);
    const std::string b = tracedRun(CompressionScheme::Warped);
    EXPECT_EQ(a, b);
}

// ------------------------------------------------------ no-perturbation

TEST(ObsNoPerturbation, AttachingObsDoesNotChangeTheRun)
{
    ExperimentConfig plain;
    plain.numSms = 2;
    ExperimentConfig observed = plain;
    observed.obs.trace = true;
    observed.obs.windowInterval = 500;

    const RunResult a = runWorkload("stencil", plain).run;
    const RunResult b = runWorkload("stencil", observed).run;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.issued, b.stats.issued);
    EXPECT_EQ(a.stats.dummyMovs, b.stats.dummyMovs);
    EXPECT_EQ(a.stats.regWrites, b.stats.regWrites);
    EXPECT_EQ(a.stats.writesStoredCompressed,
              b.stats.writesStoredCompressed);
    ASSERT_EQ(a.bankGatedFraction.size(), b.bankGatedFraction.size());
    for (std::size_t i = 0; i < a.bankGatedFraction.size(); ++i)
        EXPECT_DOUBLE_EQ(a.bankGatedFraction[i], b.bankGatedFraction[i]);
    EXPECT_EQ(a.obs, nullptr);
    ASSERT_NE(b.obs, nullptr);
    EXPECT_GT(b.obs->ring().pushed(), 0u);
}

// --------------------------------------------------- stats-json export

TEST(ObsStatsJson, RunDocumentIsValidAndCarriesTimelines)
{
    ExperimentConfig cfg;
    cfg.numSms = 2;
    cfg.obs.windowInterval = 500;
    const RunResult run = runWorkload("stencil", cfg).run;

    std::ostringstream os;
    JsonWriter w(os);
    writeRunStatsJson(w, run, cfg.numSms);
    const std::string doc = os.str();
    EXPECT_TRUE(MiniJson(doc).valid()) << "stats dump is not valid JSON";
    EXPECT_NE(doc.find("\"timelines\""), std::string::npos);
    EXPECT_NE(doc.find("\"compression_ratio\""), std::string::npos);
    EXPECT_NE(doc.find("\"energy\""), std::string::npos);
    EXPECT_NE(doc.find("\"similarity\""), std::string::npos);
}

TEST(ObsStatsJson, ByteIdenticalAcrossRerunsAndThreadCounts)
{
    ExperimentConfig cfg;
    cfg.numSms = 2;
    cfg.obs.windowInterval = 500;
    const std::vector<std::string> names = {"stencil", "lud"};

    const auto serialize = [&](const std::vector<ExperimentResult> &rs) {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginArray();
        for (const ExperimentResult &r : rs) {
            w.beginObject();
            w.field("workload", r.workload);
            w.key("run");
            writeRunStatsJson(w, r.run, cfg.numSms);
            w.endObject();
        }
        w.endArray();
        return os.str();
    };

    const std::string serial = serialize(runWorkloadsParallel(names, cfg, 1));
    const std::string rerun = serialize(runWorkloadsParallel(names, cfg, 1));
    const std::string threaded =
        serialize(runWorkloadsParallel(names, cfg, 4));
    EXPECT_EQ(serial, rerun);
    EXPECT_EQ(serial, threaded);
}

} // namespace
} // namespace warpcomp
