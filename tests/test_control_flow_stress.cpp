/**
 * @file
 * Control-flow stress tests: deeply nested divergence, loops with
 * data-dependent trip counts inside divergent branches, loop-carried
 * values across reconvergence, and whole-kernel checks run through the
 * full timing simulator (not just the functional executor).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "isa/builder.hpp"
#include "workloads/workload.hpp"

namespace warpcomp {
namespace {

class CfStressTest : public ::testing::Test
{
  protected:
    CfStressTest() : gmem_(8 << 20), cmem_(64) {}

    void
    run(const Kernel &k, LaunchDims dims, CompressionScheme scheme =
                                              CompressionScheme::Warped)
    {
        GpuParams gp;
        gp.numSms = 2;
        gp.sm.scheme = scheme;
        gp.sm.applyScheme();
        Gpu gpu(gp, gmem_, cmem_);
        gpu.run(k, dims);
    }

    /** Emit the store of @p value to out[global tid]. */
    void
    storeResult(KernelBuilder &b, u64 out, Operand value)
    {
        Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
        b.s2r(tid, SpecialReg::TidX);
        b.s2r(bid, SpecialReg::CtaIdX);
        b.s2r(ntid, SpecialReg::NTidX);
        Reg gid = b.newReg(), addr = b.newReg();
        b.imad(gid, bid, ntid, tid);
        b.imad(addr, gid, KernelBuilder::imm(4),
               KernelBuilder::imm(static_cast<i32>(out)));
        b.stg(addr, value);
    }

    GlobalMemory gmem_;
    ConstantMemory cmem_;
};

TEST_F(CfStressTest, TripleNestedDivergence)
{
    const u64 out = gmem_.alloc(4 * 64);
    KernelBuilder b("nest3");
    Reg lane = b.newReg(), v = b.newReg();
    Pred p1 = b.newPred(), p2 = b.newPred(), p3 = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.movImm(v, 0);
    b.isetp(p1, CmpOp::Lt, lane, KernelBuilder::imm(16));
    b.if_(p1, [&] {
        b.isetp(p2, CmpOp::Lt, lane, KernelBuilder::imm(8));
        b.if_(p2, [&] {
            b.isetp(p3, CmpOp::Lt, lane, KernelBuilder::imm(4));
            b.ifElse_(p3, [&] { b.movImm(v, 3); },
                      [&] { b.movImm(v, 2); });
        });
        b.iadd(v, v, KernelBuilder::imm(10));
    });
    storeResult(b, out, v);
    run(b.build(), {64, 1});

    for (u32 i = 0; i < 64; ++i) {
        const u32 lane = i % 32;
        u32 expect = 0;
        if (lane < 16) {
            expect = 10;
            if (lane < 4)
                expect = 13;
            else if (lane < 8)
                expect = 12;
        }
        EXPECT_EQ(gmem_.read32(out + 4ull * i), expect) << i;
    }
}

TEST_F(CfStressTest, DivergentLoopInsideDivergentBranch)
{
    // Lanes < 20 run a loop of (lane % 5) iterations; others skip.
    const u64 out = gmem_.alloc(4 * 64);
    KernelBuilder b("loopin");
    Reg lane = b.newReg(), n = b.newReg(), acc = b.newReg(),
        i = b.newReg();
    Pred outer = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.movImm(acc, 0);
    b.isetp(outer, CmpOp::Lt, lane, KernelBuilder::imm(20));
    b.if_(outer, [&] {
        // n = lane % 5 (via subtract loop-free arithmetic: lane - 5*(lane/5))
        Reg q = b.newReg(), t = b.newReg();
        b.imul(q, lane, KernelBuilder::imm(0x3334));     // ~ lane/5 Q14
        b.shr(q, q, KernelBuilder::imm(16));
        b.imul(t, q, KernelBuilder::imm(5));
        b.isub(n, lane, t);
        b.forRange(i, KernelBuilder::imm(0), n, 1, [&] {
            b.iadd(acc, acc, KernelBuilder::imm(7));
        });
    });
    storeResult(b, out, acc);
    run(b.build(), {64, 1});

    for (u32 idx = 0; idx < 64; ++idx) {
        const u32 lane = idx % 32;
        const u32 expect = lane < 20 ? (lane % 5) * 7 : 0;
        EXPECT_EQ(gmem_.read32(out + 4ull * idx), expect) << idx;
    }
}

TEST_F(CfStressTest, LoopCarriedValuesAcrossReconvergence)
{
    // acc = sum over i<8 of (i if lane odd else 2i) — both sides of a
    // divergent branch updating a loop-carried register.
    const u64 out = gmem_.alloc(4 * 64);
    KernelBuilder b("carry");
    Reg lane = b.newReg(), acc = b.newReg(), i = b.newReg(),
        par = b.newReg();
    Pred odd = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.movImm(acc, 0);
    b.and_(par, lane, KernelBuilder::imm(1));
    b.isetp(odd, CmpOp::Ne, par, KernelBuilder::imm(0));
    b.forRange(i, KernelBuilder::imm(0), KernelBuilder::imm(8), 1, [&] {
        b.ifElse_(odd, [&] { b.iadd(acc, acc, i); },
                  [&] {
                      Reg twice = b.newReg();
                      b.shl(twice, i, KernelBuilder::imm(1));
                      b.iadd(acc, acc, twice);
                  });
    });
    storeResult(b, out, acc);
    run(b.build(), {64, 1});

    for (u32 idx = 0; idx < 64; ++idx) {
        const u32 expect = (idx % 2) ? 28 : 56;     // sum 0..7 vs 2x
        EXPECT_EQ(gmem_.read32(out + 4ull * idx), expect) << idx;
    }
}

TEST_F(CfStressTest, DeepLoopNest)
{
    // Three nested uniform loops: acc = 4 * 3 * 2 = 24 increments.
    const u64 out = gmem_.alloc(4 * 64);
    KernelBuilder b("nestloop");
    Reg acc = b.newReg(), i = b.newReg(), j = b.newReg(),
        k = b.newReg();
    b.movImm(acc, 0);
    b.forRange(i, KernelBuilder::imm(0), KernelBuilder::imm(4), 1, [&] {
        b.forRange(j, KernelBuilder::imm(0), KernelBuilder::imm(3), 1,
                   [&] {
            b.forRange(k, KernelBuilder::imm(0), KernelBuilder::imm(2),
                       1, [&] {
                b.iadd(acc, acc, KernelBuilder::imm(1));
            });
        });
    });
    storeResult(b, out, acc);
    run(b.build(), {64, 1});
    for (u32 idx = 0; idx < 64; ++idx)
        EXPECT_EQ(gmem_.read32(out + 4ull * idx), 24u);
}

TEST_F(CfStressTest, CountdownLoop)
{
    const u64 out = gmem_.alloc(4 * 64);
    KernelBuilder b("countdown");
    Reg acc = b.newReg(), i = b.newReg();
    b.movImm(acc, 0);
    b.forRange(i, KernelBuilder::imm(10), KernelBuilder::imm(0), -2,
               [&] { b.iadd(acc, acc, i); });
    storeResult(b, out, acc);
    run(b.build(), {64, 1});
    // 10 + 8 + 6 + 4 + 2 = 30
    for (u32 idx = 0; idx < 64; ++idx)
        EXPECT_EQ(gmem_.read32(out + 4ull * idx), 30u);
}

TEST_F(CfStressTest, ZeroTripLoop)
{
    const u64 out = gmem_.alloc(4 * 64);
    KernelBuilder b("zerotrip");
    Reg acc = b.newReg(), i = b.newReg();
    b.movImm(acc, 5);
    b.forRange(i, KernelBuilder::imm(3), KernelBuilder::imm(3), 1,
               [&] { b.movImm(acc, 999); });
    storeResult(b, out, acc);
    run(b.build(), {64, 1});
    for (u32 idx = 0; idx < 64; ++idx)
        EXPECT_EQ(gmem_.read32(out + 4ull * idx), 5u);
}

TEST_F(CfStressTest, AllLanesDistinctTripCounts)
{
    // The worst peel case: lane i iterates exactly i times.
    const u64 out = gmem_.alloc(4 * 32);
    KernelBuilder b("peel");
    Reg lane = b.newReg(), acc = b.newReg(), i = b.newReg();
    b.s2r(lane, SpecialReg::LaneId);
    b.movImm(acc, 0);
    b.forRange(i, KernelBuilder::imm(0), lane, 1,
               [&] { b.iadd(acc, acc, KernelBuilder::imm(1)); });
    storeResult(b, out, acc);
    run(b.build(), {32, 1});
    for (u32 idx = 0; idx < 32; ++idx)
        EXPECT_EQ(gmem_.read32(out + 4ull * idx), idx) << idx;
}

TEST_F(CfStressTest, StressKernelsMatchAcrossSchemes)
{
    // The peel kernel again, baseline vs compressed: identical output.
    const u64 out_a = gmem_.alloc(4 * 32);
    const u64 out_b = gmem_.alloc(4 * 32);
    auto build = [&](u64 out) {
        KernelBuilder b("peel2");
        Reg lane = b.newReg(), acc = b.newReg(), i = b.newReg();
        b.s2r(lane, SpecialReg::LaneId);
        b.movImm(acc, 100);
        b.forRange(i, KernelBuilder::imm(0), lane, 1,
                   [&] { b.iadd(acc, acc, i); });
        storeResult(b, out, acc);
        return b.build();
    };
    run(build(out_a), {32, 1}, CompressionScheme::None);
    run(build(out_b), {32, 1}, CompressionScheme::Warped);
    for (u32 idx = 0; idx < 32; ++idx)
        EXPECT_EQ(gmem_.read32(out_a + 4ull * idx),
                  gmem_.read32(out_b + 4ull * idx));
}

} // namespace
} // namespace warpcomp
