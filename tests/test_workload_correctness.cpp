/**
 * @file
 * Host-reference correctness checks: recompute selected workloads'
 * outputs on the host (matching the kernels' exact operation order,
 * including FMA contraction) and compare against the memory image the
 * timing simulator produced. This validates the whole stack — builder,
 * functional execution, divergence handling, barriers, memory — not
 * just that kernels terminate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hpp"

namespace warpcomp {
namespace {

/** Run a workload in place and hand back the instance for inspection. */
WorkloadInstance
runInPlace(const std::string &name,
           CompressionScheme scheme = CompressionScheme::Warped)
{
    WorkloadInstance wl = makeWorkload(name);
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.numSms = 4;
    Gpu gpu(makeGpuParams(cfg), *wl.gmem, *wl.cmem);
    gpu.run(wl.kernel, wl.dims);
    return wl;
}

TEST(WorkloadCorrectness, NwScores)
{
    WorkloadInstance wl = runInPlace("nw");
    const u32 ref = wl.cmem->read32(0);
    const u32 north = wl.cmem->read32(4);
    const u32 west = wl.cmem->read32(8);
    const u32 nwest = wl.cmem->read32(12);
    const u32 out = wl.cmem->read32(16);
    const u32 cells = wl.cmem->read32(20);
    const i32 penalty = static_cast<i32>(wl.cmem->read32(24));

    for (u32 i = 0; i < cells; i += 97) {
        const i32 sub = static_cast<i32>(wl.gmem->read32(ref + 4ull * i));
        const i32 sn = static_cast<i32>(wl.gmem->read32(north + 4ull * i));
        const i32 sw = static_cast<i32>(wl.gmem->read32(west + 4ull * i));
        const i32 sd = static_cast<i32>(wl.gmem->read32(nwest + 4ull * i));
        const i32 expect = std::max(sd + sub,
                                    std::max(sn - penalty, sw - penalty));
        EXPECT_EQ(static_cast<i32>(wl.gmem->read32(out + 4ull * i)),
                  expect) << i;
    }
}

TEST(WorkloadCorrectness, Dwt2dLifting)
{
    WorkloadInstance wl = runInPlace("dwt2d");
    const u32 in = wl.cmem->read32(0);
    const u32 out = wl.cmem->read32(4);
    const u32 samples = wl.dims.blockDim * wl.dims.gridDim;

    for (u32 g = 0; g < samples; g += 53) {
        const i32 left = static_cast<i32>(wl.gmem->read32(in + 4ull * g));
        const i32 center = static_cast<i32>(
            wl.gmem->read32(in + 4ull * (g + 1)));
        const i32 right = static_cast<i32>(
            wl.gmem->read32(in + 4ull * (g + 2)));
        i32 expect;
        if (g & 1)
            expect = center - ((left + right) >> 1);
        else
            expect = center + ((left + right + 2) >> 2);
        EXPECT_EQ(static_cast<i32>(wl.gmem->read32(out + 4ull * g)),
                  expect) << g;
    }
}

TEST(WorkloadCorrectness, HistoCounts)
{
    WorkloadInstance wl = runInPlace("histo");
    const u32 data = wl.cmem->read32(0);
    const u32 hist = wl.cmem->read32(4);
    const u32 chunk = wl.cmem->read32(8);
    const u32 block = wl.dims.blockDim;

    for (u32 cta = 0; cta < wl.dims.gridDim; cta += 7) {
        // Recount the CTA's chunk per bin.
        std::vector<u32> expect(block, 0);
        for (u32 i = 0; i < chunk; ++i) {
            const u32 v = wl.gmem->read32(data +
                                          4ull * (cta * chunk + i));
            ASSERT_LT(v, block);
            ++expect[v];
        }
        for (u32 t = 0; t < block; t += 19) {
            EXPECT_EQ(wl.gmem->read32(hist + 4ull * (cta * block + t)),
                      expect[t]) << cta << ":" << t;
        }
    }
}

TEST(WorkloadCorrectness, KmeansMembership)
{
    WorkloadInstance wl = runInPlace("kmeans");
    const u32 features = wl.cmem->read32(0);
    const u32 clusters = wl.cmem->read32(4);
    const u32 membership = wl.cmem->read32(8);
    const u32 ncl = wl.cmem->read32(12);
    const u32 nfeat = wl.cmem->read32(16);
    const u32 points = wl.dims.blockDim * wl.dims.gridDim;

    for (u32 p = 0; p < points; p += 211) {
        // Double-precision reference distances; skip points whose two
        // best centroids are too close to call under float rounding.
        double best = 1.0e30, second = 1.0e30;
        u32 best_id = 0;
        for (u32 c = 0; c < ncl; ++c) {
            double dist = 0.0;
            for (u32 f = 0; f < nfeat; ++f) {
                const double fv = wl.gmem->readF32(
                    features + 4ull * (p * nfeat + f));
                const double cv = wl.gmem->readF32(
                    clusters + 4ull * (c * nfeat + f));
                const double diff = fv - cv;
                dist += diff * diff;
            }
            if (dist < best) {
                second = best;
                best = dist;
                best_id = c;
            } else if (dist < second) {
                second = dist;
            }
        }
        if (second - best < 1e-5 * (1.0 + best))
            continue;           // ambiguous under float rounding
        EXPECT_EQ(wl.gmem->read32(membership + 4ull * p), best_id) << p;
    }
}

TEST(WorkloadCorrectness, SgemmTiles)
{
    WorkloadInstance wl = runInPlace("sgemm");
    const u32 a = wl.cmem->read32(0);
    const u32 bmat = wl.cmem->read32(4);
    const u32 c = wl.cmem->read32(8);
    const u32 n = wl.cmem->read32(12);
    const u32 k_tiles = wl.cmem->read32(16);
    constexpr u32 kTile = 16;

    // Check a scattering of C elements produced by the first tiles.
    for (u32 bid = 0; bid < 8; ++bid) {
        const u32 bx = bid & 7, by = 0;
        for (u32 t = 0; t < 256; t += 67) {
            const u32 tx = t & 15, ty = t >> 4;
            const u32 row = by * kTile + ty;
            const u32 col = bx * kTile + tx;
            // Double-precision reference: the device accumulates 64
            // float terms whose FMA-contraction behaviour is
            // implementation defined, so compare within a float-level
            // tolerance rather than bit-exactly.
            double acc = 0.0;
            for (u32 kt = 0; kt < k_tiles; ++kt) {
                for (u32 kk = 0; kk < kTile; ++kk) {
                    const u32 k = kt * kTile + kk;
                    const double av = wl.gmem->readF32(
                        a + 4ull * (row * n + k));
                    const double bv = wl.gmem->readF32(
                        bmat + 4ull * (k * n + col));
                    acc += av * bv;
                }
            }
            EXPECT_NEAR(wl.gmem->readF32(c + 4ull * (row * n + col)),
                        acc, 1e-4) << row << "," << col;
        }
    }
}

TEST(WorkloadCorrectness, PathfinderDp)
{
    WorkloadInstance wl = runInPlace("pathfinder");
    const u32 src = wl.cmem->read32(0);
    const u32 wall = wl.cmem->read32(4);
    const u32 dst = wl.cmem->read32(8);
    const u32 cols = wl.cmem->read32(12);
    const u32 iteration = wl.cmem->read32(16);
    const u32 border = wl.cmem->read32(20);
    const u32 sbc = wl.cmem->read32(24);
    constexpr u32 kBlockSize = 256;

    // Host replay of the per-CTA dynamic program for a few CTAs.
    for (u32 bx = 1; bx < wl.dims.gridDim - 1; bx += 17) {
        const i32 blk_x = static_cast<i32>(sbc * bx) -
            static_cast<i32>(border);
        std::vector<i32> prev(kBlockSize, 0), result(kBlockSize, 0);
        std::vector<bool> computed(kBlockSize, false);
        for (u32 tx = 0; tx < kBlockSize; ++tx) {
            const i32 xidx = blk_x + static_cast<i32>(tx);
            if (xidx >= 0 && xidx < static_cast<i32>(cols)) {
                prev[tx] = static_cast<i32>(
                    wl.gmem->read32(src + 4ull * xidx));
            }
        }
        for (u32 i = 0; i < iteration; ++i) {
            for (u32 tx = 0; tx < kBlockSize; ++tx) {
                const i32 xidx = blk_x + static_cast<i32>(tx);
                const bool in_range = tx >= i + 1 &&
                    tx <= kBlockSize - i - 2;
                const bool valid = xidx >= 0 &&
                    xidx < static_cast<i32>(cols);
                computed[tx] = in_range && valid;
                if (computed[tx]) {
                    const i32 shortest = std::min(
                        {prev[tx - 1], prev[tx], prev[tx + 1]});
                    const u32 index = cols * i +
                        static_cast<u32>(xidx);
                    result[tx] = shortest + static_cast<i32>(
                        wl.gmem->read32(wall + 4ull * index));
                }
            }
            for (u32 tx = 0; tx < kBlockSize; ++tx) {
                if (computed[tx])
                    prev[tx] = result[tx];
            }
        }
        for (u32 tx = 8; tx < kBlockSize - 8; tx += 31) {
            if (!computed[tx])
                continue;
            const i32 xidx = blk_x + static_cast<i32>(tx);
            EXPECT_EQ(static_cast<i32>(
                          wl.gmem->read32(dst + 4ull * xidx)),
                      result[tx]) << bx << ":" << tx;
        }
    }
}

TEST(WorkloadCorrectness, SchemesAgreeOnOutputs)
{
    // The full pipeline must be compression-transparent for a workload
    // exercising divergence + loops + memory.
    WorkloadInstance a = runInPlace("nw", CompressionScheme::None);
    WorkloadInstance b = runInPlace("nw", CompressionScheme::Warped);
    const u32 out_a = a.cmem->read32(16);
    const u32 out_b = b.cmem->read32(16);
    const u32 cells = a.cmem->read32(20);
    for (u32 i = 0; i < cells; i += 101)
        EXPECT_EQ(a.gmem->read32(out_a + 4ull * i),
                  b.gmem->read32(out_b + 4ull * i));
}

} // namespace
} // namespace warpcomp
