/**
 * @file
 * Figure-shape regression tests: the qualitative claims EXPERIMENTS.md
 * makes about each reproduced figure, pinned on a 5-benchmark core
 * subset (lib, pathfinder, bfs, hotspot, aes) at 4 SMs so the whole
 * file runs in seconds. If a refactor bends a trend the paper
 * established, it fails here rather than silently shifting a report.
 */

#include <gtest/gtest.h>

#include <map>

#include "harness/experiment.hpp"

namespace warpcomp {
namespace {

const std::vector<std::string> &
coreSuite()
{
    static const std::vector<std::string> names = {
        "lib", "pathfinder", "bfs", "hotspot", "aes"};
    return names;
}

/** Runs each core workload once per needed config, cached per suite. */
class FigureShapes : public ::testing::Test
{
  protected:
    static std::vector<ExperimentResult> &
    results(CompressionScheme scheme)
    {
        static std::map<CompressionScheme,
                        std::vector<ExperimentResult>> cache;
        auto it = cache.find(scheme);
        if (it == cache.end()) {
            ExperimentConfig cfg;
            cfg.scheme = scheme;
            cfg.numSms = 4;
            std::vector<ExperimentResult> out;
            for (const auto &name : coreSuite())
                out.push_back(runWorkload(name, cfg));
            it = cache.emplace(scheme, std::move(out)).first;
        }
        return it->second;
    }
};

TEST_F(FigureShapes, Fig2NonRandomDominatesNonDivergent)
{
    double non_random = 0;
    for (const auto &r : results(CompressionScheme::Warped)) {
        non_random += 1.0 - r.run.stats.simBins.fraction(
            kNonDivergent, DistanceBin::Random);
    }
    non_random /= coreSuite().size();
    // Paper: ~79%. Accept a generous band around it.
    EXPECT_GT(non_random, 0.6);
}

TEST_F(FigureShapes, Fig3MostInstructionsNonDivergent)
{
    u64 issued = 0, divergent = 0;
    for (const auto &r : results(CompressionScheme::Warped)) {
        issued += r.run.stats.issued;
        divergent += r.run.stats.issuedDivergent;
    }
    EXPECT_LT(static_cast<double>(divergent) / issued, 0.5);
}

TEST_F(FigureShapes, Fig8DivergentRatioLower)
{
    for (const auto &r : results(CompressionScheme::Warped)) {
        if (r.run.stats.ratio.writes(kDivergent) == 0)
            continue;
        EXPECT_LE(r.run.stats.ratio.ratio(kDivergent),
                  r.run.stats.ratio.ratio(kNonDivergent) + 1e-9)
            << r.workload;
    }
}

TEST_F(FigureShapes, Fig9EnergyReductionInBand)
{
    double norm_sum = 0;
    for (std::size_t i = 0; i < coreSuite().size(); ++i) {
        const double b = results(CompressionScheme::None)[i]
            .run.meter.breakdown().totalPj();
        const double w = results(CompressionScheme::Warped)[i]
            .run.meter.breakdown().totalPj();
        norm_sum += w / b;
    }
    const double avg = norm_sum / coreSuite().size();
    // Paper: 25% savings; we land in 15..50% on any sane model.
    EXPECT_LT(avg, 0.85);
    EXPECT_GT(avg, 0.50);
}

TEST_F(FigureShapes, Fig9LibSavesMost)
{
    double best = 1.0;
    std::string best_name;
    for (std::size_t i = 0; i < coreSuite().size(); ++i) {
        const double n = results(CompressionScheme::Warped)[i]
                             .run.meter.breakdown().totalPj() /
            results(CompressionScheme::None)[i]
                .run.meter.breakdown().totalPj();
        if (n < best) {
            best = n;
            best_name = coreSuite()[i];
        }
    }
    EXPECT_EQ(best_name, "lib");
}

TEST_F(FigureShapes, Fig10GatingRisesWithinClusters)
{
    for (const auto &r : results(CompressionScheme::Warped)) {
        for (u32 c = 0; c < 4; ++c) {
            EXPECT_GE(r.run.bankGatedFraction[c * 8 + 7] + 1e-12,
                      r.run.bankGatedFraction[c * 8 + 0])
                << r.workload << " cluster " << c;
        }
    }
}

TEST_F(FigureShapes, Fig11MovsBoundedAndBaselineFree)
{
    for (const auto &r : results(CompressionScheme::Warped)) {
        EXPECT_LT(static_cast<double>(r.run.stats.dummyMovs) /
                      r.run.stats.issued,
                  0.06)
            << r.workload;
    }
    for (const auto &r : results(CompressionScheme::None))
        EXPECT_EQ(r.run.stats.dummyMovs, 0u);
}

TEST_F(FigureShapes, Fig13OverheadSmall)
{
    double norm = 0;
    for (std::size_t i = 0; i < coreSuite().size(); ++i) {
        norm += static_cast<double>(
                    results(CompressionScheme::Warped)[i].run.cycles) /
            results(CompressionScheme::None)[i].run.cycles;
    }
    norm /= coreSuite().size();
    EXPECT_LT(norm, 1.10);      // paper: +0.1%; we allow up to +10%
    EXPECT_GT(norm, 0.90);
}

TEST_F(FigureShapes, Fig15DynamicBeatsSingleChoice)
{
    // Dynamic selection compresses at least as well as <4,0>-only.
    ExperimentConfig f40;
    f40.scheme = CompressionScheme::Fixed40;
    f40.numSms = 4;
    for (std::size_t i = 0; i < coreSuite().size(); ++i) {
        const ExperimentResult r40 = runWorkload(coreSuite()[i], f40);
        EXPECT_GE(results(CompressionScheme::Warped)[i]
                          .run.stats.ratio.overallRatio() + 1e-9,
                  r40.run.stats.ratio.overallRatio())
            << coreSuite()[i];
    }
}

TEST_F(FigureShapes, Fig17MoreUnitEnergyErodesSavings)
{
    // Re-price one WC run with rising comp/decomp energy: totals must
    // rise monotonically while staying below baseline at 1x.
    const auto &wc = results(CompressionScheme::Warped)[0];    // lib
    double prev = 0;
    for (double s : {1.0, 1.5, 2.0, 2.5}) {
        EnergyParams p;
        p.compDecompScale = s;
        const double t = wc.run.meter.breakdownWith(p).totalPj();
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST_F(FigureShapes, Fig19SavingsGrowWithWireActivity)
{
    const auto &base = results(CompressionScheme::None);
    const auto &wc = results(CompressionScheme::Warped);
    double prev_saving = -1.0;
    for (double act : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        EnergyParams p;
        p.wireActivity = act;
        double norm = 0;
        for (std::size_t i = 0; i < coreSuite().size(); ++i) {
            norm += wc[i].run.meter.breakdownWith(p).totalPj() /
                base[i].run.meter.breakdownWith(p).totalPj();
        }
        const double saving = 1.0 - norm / coreSuite().size();
        EXPECT_GT(saving, prev_saving);
        prev_saving = saving;
    }
}

TEST_F(FigureShapes, CompressionNeverChangesInstructionMixMuchBeyondMovs)
{
    // WC may only add dummy MOVs relative to the baseline stream.
    for (std::size_t i = 0; i < coreSuite().size(); ++i) {
        const u64 base_issued =
            results(CompressionScheme::None)[i].run.stats.issued;
        const auto &wc = results(CompressionScheme::Warped)[i].run.stats;
        EXPECT_EQ(wc.issued - wc.dummyMovs, base_issued)
            << coreSuite()[i];
    }
}

} // namespace
} // namespace warpcomp
