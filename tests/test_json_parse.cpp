/**
 * @file
 * Unit tests for the minimal JSON reader (common/json_parse): parse
 * correctness, structured error diagnostics, and the byte-exact
 * re-emission property the sweep journal's resume path depends on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json_parse.hpp"
#include "common/json_writer.hpp"

using namespace warpcomp;

namespace {

JsonValue
parseOk(const std::string &text)
{
    const JsonParseOutcome out = parseJson(text);
    EXPECT_TRUE(out.ok()) << text << " -> " << out.error;
    return out.ok() ? *out.value : JsonValue{};
}

std::string
reemit(const JsonValue &v)
{
    std::ostringstream ss;
    JsonWriter w(ss, JsonWriter::Style::Compact);
    writeJson(w, v);
    return ss.str();
}

TEST(JsonParse, Scalars)
{
    EXPECT_EQ(parseOk("null").kind, JsonValue::Kind::Null);
    EXPECT_EQ(parseOk("true").asBool(), std::optional<bool>(true));
    EXPECT_EQ(parseOk("false").asBool(), std::optional<bool>(false));
    EXPECT_EQ(parseOk("42").asDouble(), std::optional<double>(42.0));
    EXPECT_EQ(parseOk("-1.5e3").asDouble(),
              std::optional<double>(-1500.0));
    EXPECT_EQ(*parseOk("\"hi\"").asString(), "hi");
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(*parseOk(R"("a\"b\\c\n\t")").asString(), "a\"b\\c\n\t");
    // \u escape, including a surrogate pair (UTF-8 encoded out).
    EXPECT_EQ(*parseOk(R"("A")").asString(), "A");
    EXPECT_EQ(*parseOk(R"("😀")").asString(),
              "\xF0\x9F\x98\x80");
}

TEST(JsonParse, Containers)
{
    const JsonValue v = parseOk(R"({"a": [1, 2, 3], "b": {"c": true}})");
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_EQ(a->items[1].asU64(), std::optional<u64>(2));
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_NE(b->find("c"), nullptr);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, U64FidelityAbove2To53)
{
    // 2^63 + 1 is not representable as a double; the verbatim literal
    // must survive the round trip anyway.
    const std::string big = "9223372036854775809";
    const JsonValue v = parseOk(big);
    EXPECT_EQ(v.asU64(), std::optional<u64>(9223372036854775809ull));
    EXPECT_EQ(reemit(v), big);
}

TEST(JsonParse, U64RejectsNonIntegral)
{
    EXPECT_EQ(parseOk("1.5").asU64(), std::nullopt);
    EXPECT_EQ(parseOk("-3").asU64(), std::nullopt);
    EXPECT_EQ(parseOk("1e3").asU64(), std::nullopt);
    // Larger than u64 max: must refuse, not saturate.
    EXPECT_EQ(parseOk("99999999999999999999").asU64(), std::nullopt);
}

TEST(JsonParse, ErrorsAreStructuredNotFatal)
{
    const char *bad[] = {
        "",           "{",       "[1,",       "{\"a\" 1}",
        "tru",        "\"unterminated",       "{\"a\":1}x",
        "[1,]",       "{\"a\":}", "nan",      "- 1",
    };
    for (const char *text : bad) {
        const JsonParseOutcome out = parseJson(text);
        EXPECT_FALSE(out.ok()) << "accepted: " << text;
        EXPECT_NE(out.error.find("byte "), std::string::npos)
            << "no offset in: " << out.error;
    }
}

TEST(JsonParse, DepthCapStopsHostileNesting)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_FALSE(parseJson(deep).ok());
}

TEST(JsonParse, WriterOutputRoundTripsByteExact)
{
    // A document shaped like the sweep journal's stats payload.
    std::ostringstream ss;
    {
        JsonWriter w(ss, JsonWriter::Style::Compact);
        w.beginObject();
        w.field("cycles", u64{18446744073709551615ull});
        w.field("energy_pj", 1234.5678);
        w.field("rate", 1e-05);
        w.field("hung", false);
        w.field("name", std::string("nw \"quoted\""));
        w.key("nested");
        w.beginArray();
        w.value(u64{0});
        w.value(2.5);
        w.endArray();
        w.endObject();
    }
    const std::string doc = ss.str();
    const JsonValue v = parseOk(doc);
    EXPECT_EQ(reemit(v), doc);
}

} // namespace
