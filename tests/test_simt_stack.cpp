/**
 * @file
 * SIMT reconvergence-stack invariants: divergence push/pop behaviour,
 * reconvergence mask restoration, nested divergence, loop-exit
 * peeling, and thread exit handling.
 */

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "sim/simt_stack.hpp"

namespace warpcomp {
namespace {

TEST(SimtStack, ResetState)
{
    SimtStack s;
    s.reset(kFullMask);
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.mask(), kFullMask);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, AdvanceMovesTop)
{
    SimtStack s;
    s.reset(kFullMask);
    s.advance(5);
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, UniformTakenBranch)
{
    SimtStack s;
    s.reset(kFullMask);
    EXPECT_FALSE(s.branch(10, 20, kFullMask, 1));
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, UniformNotTakenBranch)
{
    SimtStack s;
    s.reset(kFullMask);
    EXPECT_FALSE(s.branch(10, 20, 0, 1));
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, DivergencePushesBothSides)
{
    SimtStack s;
    s.reset(kFullMask);
    const LaneMask taken = 0x0000FFFFu;
    EXPECT_TRUE(s.branch(10, 20, taken, 1));
    EXPECT_EQ(s.depth(), 3u);
    // Taken side executes first.
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.mask(), taken);
}

TEST(SimtStack, ReconvergenceRestoresUnionMask)
{
    SimtStack s;
    s.reset(kFullMask);
    const LaneMask taken = 0x0000FFFFu;
    s.branch(10, 20, taken, 1);

    // Taken side runs to the reconvergence point and pops.
    s.advance(20);
    s.popReconverged();
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.mask(), ~taken);

    // Fall-through side reaches the join too.
    s.advance(20);
    s.popReconverged();
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(s.pc(), 20u);
    EXPECT_EQ(s.mask(), kFullMask);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.reset(kFullMask);
    s.branch(10, 40, 0x000000FFu, 1);       // outer split
    EXPECT_EQ(s.mask(), 0x000000FFu);
    s.advance(11);
    s.branch(20, 30, 0x0000000Fu, 12);      // inner split of taken side
    EXPECT_EQ(s.depth(), 5u);
    EXPECT_EQ(s.mask(), 0x0000000Fu);

    // Unwind inner.
    s.advance(30);
    s.popReconverged();
    EXPECT_EQ(s.mask(), 0x000000F0u);
    s.advance(30);
    s.popReconverged();
    EXPECT_EQ(s.mask(), 0x000000FFu);
    EXPECT_EQ(s.pc(), 30u);

    // Unwind outer.
    s.advance(40);
    s.popReconverged();
    EXPECT_EQ(s.mask(), 0xFFFFFF00u);
    s.advance(40);
    s.popReconverged();
    EXPECT_EQ(s.mask(), kFullMask);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, LoopExitPeeling)
{
    // A loop-exit branch peels one lane per iteration; the stack must
    // stay bounded and reconverge everyone at the exit.
    SimtStack s;
    s.reset(0xFu);
    const u32 exit_pc = 100;
    LaneMask remaining = 0xFu;
    for (u32 lane = 0; lane < 4; ++lane) {
        // Lane `lane` exits this iteration (branch taken to exit).
        const LaneMask exiting = 1u << lane;
        s.branch(exit_pc, exit_pc, exiting, 10);
        s.popReconverged();     // exiting side pops immediately
        remaining &= ~exiting;
        if (remaining != 0) {
            EXPECT_EQ(s.mask(), remaining);
            EXPECT_EQ(s.pc(), 10u);
            s.advance(9);       // loop back to the branch
        }
    }
    // Everyone at the exit now.
    s.popReconverged();
    while (s.depth() > 1 && s.pc() == exit_pc)
        s.popReconverged();
    EXPECT_EQ(s.pc(), exit_pc);
    EXPECT_EQ(s.mask(), 0xFu);
}

TEST(SimtStack, ExitLanesRemovesFromAllEntries)
{
    SimtStack s;
    s.reset(kFullMask);
    s.branch(10, 20, 0x3u, 1);
    s.exitLanes(0x1u);
    EXPECT_EQ(s.mask(), 0x2u);          // top (taken) entry lost lane 0
    EXPECT_FALSE(s.empty());
}

TEST(SimtStack, ExitAllLanesEmptiesStack)
{
    SimtStack s;
    s.reset(0xFFu);
    s.exitLanes(0xFFu);
    EXPECT_TRUE(s.empty());
}

TEST(SimtStack, ExitTopEntryOnlyDropsIt)
{
    SimtStack s;
    s.reset(kFullMask);
    s.branch(10, 20, 0x3u, 1);
    EXPECT_EQ(s.depth(), 3u);
    s.exitLanes(0x3u);                  // entire taken side exits
    // Taken entry removed; fall-through side is now on top.
    EXPECT_EQ(s.mask(), ~0x3u & kFullMask);
    EXPECT_EQ(s.pc(), 1u);
}

TEST(SimtStack, BottomEntryNeverReconverges)
{
    SimtStack s;
    s.reset(kFullMask);
    s.advance(kNoRpc);                  // pathological pc
    s.popReconverged();
    EXPECT_EQ(s.depth(), 1u);           // sentinel rpc keeps it alive
}

TEST(SimtStack, PartialWarpMask)
{
    SimtStack s;
    s.reset(firstLanes(20));
    EXPECT_EQ(s.mask(), firstLanes(20));
    EXPECT_TRUE(s.branch(5, 9, firstLanes(10), 1));
    EXPECT_EQ(s.mask(), firstLanes(10));
}

} // namespace
} // namespace warpcomp
