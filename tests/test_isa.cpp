/**
 * @file
 * Tests for the ISA layer: opcode classification, instruction operand
 * bookkeeping, kernel validation, the KernelBuilder's structured
 * control-flow emission, and the disassembler.
 */

#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "isa/disasm.hpp"

namespace warpcomp {
namespace {

TEST(Opcode, ExecClasses)
{
    EXPECT_EQ(execClass(Opcode::IAdd), ExecClass::Alu);
    EXPECT_EQ(execClass(Opcode::IMul), ExecClass::Mul);
    EXPECT_EQ(execClass(Opcode::IMad), ExecClass::Mul);
    EXPECT_EQ(execClass(Opcode::FFma), ExecClass::Fpu);
    EXPECT_EQ(execClass(Opcode::FRcp), ExecClass::Fpu);
    EXPECT_EQ(execClass(Opcode::Ldg), ExecClass::Mem);
    EXPECT_EQ(execClass(Opcode::Bra), ExecClass::Ctrl);
    EXPECT_EQ(execClass(Opcode::Bar), ExecClass::Ctrl);
}

TEST(Opcode, WritesGpr)
{
    EXPECT_TRUE(writesGpr(Opcode::IAdd));
    EXPECT_TRUE(writesGpr(Opcode::Ldg));
    EXPECT_TRUE(writesGpr(Opcode::SelP));
    EXPECT_FALSE(writesGpr(Opcode::Stg));
    EXPECT_FALSE(writesGpr(Opcode::ISetP));
    EXPECT_FALSE(writesGpr(Opcode::Bra));
}

TEST(Opcode, WritesPred)
{
    EXPECT_TRUE(writesPred(Opcode::ISetP));
    EXPECT_TRUE(writesPred(Opcode::FSetP));
    EXPECT_TRUE(writesPred(Opcode::PAnd));
    EXPECT_FALSE(writesPred(Opcode::IAdd));
}

TEST(Instruction, RegSourceDedup)
{
    Instruction in;
    in.op = Opcode::IMad;
    in.dst = 3;
    in.src[0] = Operand::fromReg(1);
    in.src[1] = Operand::fromReg(1);
    in.src[2] = Operand::fromReg(2);
    EXPECT_EQ(in.numRegSources(), 2u);
    EXPECT_EQ(in.regSource(0), 1u);
    EXPECT_EQ(in.regSource(1), 2u);
}

TEST(Instruction, ImmediatesNotSources)
{
    Instruction in;
    in.op = Opcode::IAdd;
    in.dst = 0;
    in.src[0] = Operand::fromReg(5);
    in.src[1] = Operand::fromImm(7);
    EXPECT_EQ(in.numRegSources(), 1u);
    EXPECT_EQ(in.regSource(0), 5u);
}

TEST(Instruction, Predicates)
{
    Instruction in;
    in.op = Opcode::Mov;
    EXPECT_FALSE(in.hasGuard());
    in.guardPred = 2;
    EXPECT_TRUE(in.hasGuard());
}

TEST(Builder, LinearKernel)
{
    KernelBuilder b("lin");
    Reg a = b.newReg(), c = b.newReg();
    b.movImm(a, 5);
    b.iadd(c, a, KernelBuilder::imm(2));
    Kernel k = b.build();
    EXPECT_EQ(k.size(), 3u);            // two instructions + EXIT
    EXPECT_TRUE(k.at(2).isExit());
    EXPECT_EQ(k.numRegs(), 2u);
}

TEST(Builder, IfEmitsBranchWithReconvergence)
{
    KernelBuilder b("iftest");
    Reg a = b.newReg();
    Pred p = b.newPred();
    b.movImm(a, 1);
    b.isetp(p, CmpOp::Gt, a, KernelBuilder::imm(0));
    b.if_(p, [&] { b.movImm(a, 2); });
    Kernel k = b.build();

    // pc2 is the guarded branch; target and reconv are the EXIT-adjacent
    // join point after the then-block.
    const Instruction &bra = k.at(2);
    ASSERT_TRUE(bra.isBranch());
    EXPECT_EQ(bra.guardPred, p.idx);
    EXPECT_TRUE(bra.guardNegate);
    EXPECT_EQ(bra.target, 4u);
    EXPECT_EQ(bra.reconv, 4u);
}

TEST(Builder, IfElseShape)
{
    KernelBuilder b("ifelse");
    Reg a = b.newReg();
    Pred p = b.newPred();
    b.movImm(a, 1);
    b.isetp(p, CmpOp::Gt, a, KernelBuilder::imm(0));
    b.ifElse_(p, [&] { b.movImm(a, 2); }, [&] { b.movImm(a, 3); });
    Kernel k = b.build();

    const Instruction &bra = k.at(2);   // @!p BRA else (reconv end)
    ASSERT_TRUE(bra.isBranch());
    const u32 else_start = bra.target;
    const u32 end = bra.reconv;
    EXPECT_LT(else_start, end);
    // The then-side ends with an unconditional jump to the join.
    const Instruction &jmp = k.at(else_start - 1);
    ASSERT_TRUE(jmp.isBranch());
    EXPECT_EQ(jmp.guardPred, kNoPred);
    EXPECT_EQ(jmp.target, end);
}

TEST(Builder, WhileShape)
{
    KernelBuilder b("loop");
    Reg i = b.newReg();
    Pred p = b.newPred();
    b.movImm(i, 0);
    b.while_(
        [&] {
            b.isetp(p, CmpOp::Lt, i, KernelBuilder::imm(4));
            return p;
        },
        [&] { b.iadd(i, i, KernelBuilder::imm(1)); });
    Kernel k = b.build();

    // Layout: 0 mov, 1 isetp (cond), 2 exit-branch, 3 body, 4 back-branch.
    const Instruction &exit_bra = k.at(2);
    ASSERT_TRUE(exit_bra.isBranch());
    EXPECT_TRUE(exit_bra.guardNegate);
    EXPECT_EQ(exit_bra.target, 5u);
    EXPECT_EQ(exit_bra.reconv, 5u);
    const Instruction &back = k.at(4);
    ASSERT_TRUE(back.isBranch());
    EXPECT_EQ(back.target, 1u);
}

TEST(Builder, ForRangeCountsUp)
{
    KernelBuilder b("fr");
    Reg i = b.newReg();
    Reg body_count = b.newReg();
    b.movImm(body_count, 0);
    b.forRange(i, KernelBuilder::imm(0), KernelBuilder::imm(3), 1, [&] {
        b.iadd(body_count, body_count, KernelBuilder::imm(1));
    });
    Kernel k = b.build();
    k.validate();
    // mov + mov(counter) + isetp + bra + body + iadd(step) + bra + exit
    EXPECT_EQ(k.size(), 8u);
}

TEST(Builder, PredicatedSetsGuard)
{
    KernelBuilder b("guard");
    Reg a = b.newReg();
    Pred p = b.newPred();
    b.movImm(a, 0);
    b.isetp(p, CmpOp::Eq, a, KernelBuilder::imm(0));
    b.predicated(p, false, [&] { b.movImm(a, 7); });
    Kernel k = b.build();
    const Instruction &in = k.at(2);
    EXPECT_EQ(in.guardPred, p.idx);
    EXPECT_FALSE(in.guardNegate);
}

TEST(Builder, RegisterExhaustionPanics)
{
    KernelBuilder b("toomany");
    for (u32 i = 0; i < kMaxRegsPerThread; ++i)
        b.newReg();
    EXPECT_DEATH(b.newReg(), "exceeds");
}

TEST(Kernel, ValidateRejectsMissingExit)
{
    Kernel k("bad", 1, 1);
    Instruction in;
    in.op = Opcode::Nop;
    k.append(in);
    EXPECT_DEATH(k.validate(), "EXIT");
}

TEST(Kernel, ValidateRejectsOutOfRangeReg)
{
    Kernel k("bad2", 1, 1);
    Instruction in;
    in.op = Opcode::Mov;
    in.dst = 5;                 // beyond numRegs=1
    in.src[0] = Operand::fromReg(0);
    k.append(in);
    Instruction ex;
    ex.op = Opcode::Exit;
    k.append(ex);
    EXPECT_DEATH(k.validate(), "beyond declared");
}

TEST(Kernel, ValidateRejectsBadBranchTarget)
{
    Kernel k("bad3", 1, 1);
    Instruction bra;
    bra.op = Opcode::Bra;
    bra.target = 99;
    k.append(bra);
    Instruction ex;
    ex.op = Opcode::Exit;
    k.append(ex);
    EXPECT_DEATH(k.validate(), "target out of range");
}

TEST(Disasm, BasicFormats)
{
    KernelBuilder b("d");
    Reg a = b.newReg(), c = b.newReg();
    Pred p = b.newPred();
    b.s2r(a, SpecialReg::TidX);
    b.iadd(c, a, KernelBuilder::imm(3));
    b.isetp(p, CmpOp::Lt, c, KernelBuilder::imm(10));
    Kernel k = b.build();

    EXPECT_EQ(disassemble(k.at(0)), "S2R r0, SR_TID.X");
    EXPECT_EQ(disassemble(k.at(1)), "IADD r1, r0, #3");
    EXPECT_EQ(disassemble(k.at(2)), "ISETP.LT p0, r1, #10");
    const std::string listing = disassemble(k);
    EXPECT_NE(listing.find(".kernel d"), std::string::npos);
    EXPECT_NE(listing.find("EXIT"), std::string::npos);
}

TEST(Disasm, GuardPrefix)
{
    Instruction in;
    in.op = Opcode::Mov;
    in.dst = 1;
    in.src[0] = Operand::fromReg(2);
    in.guardPred = 3;
    in.guardNegate = true;
    EXPECT_EQ(disassemble(in), "@!p3 MOV r1, r2");
}

} // namespace
} // namespace warpcomp
