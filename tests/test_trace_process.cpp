/**
 * @file
 * End-to-end trace-analytics tests: spawn the real run_kernel driver
 * (WC_RUN_KERNEL_BIN) with --trace-out and the wc_trace analyzer
 * (WC_TRACE_BIN, both injected by CMake) and prove the observability
 * contract from the outside —
 *
 *   - a streamed dump is byte-identical across --threads 1 vs 4, and
 *     so is every analyzer report derived from it;
 *   - `wc_trace export --chrome` re-emits the same bytes the live
 *     --trace path wrote during the run (one source of truth);
 *   - every subcommand exits 0 on a good dump and emits valid JSON;
 *   - a truncated dump makes the analyzer exit 1 with a structured
 *     machine-readable diagnostic, never a crash;
 *   - usage errors exit 2.
 *
 * Kept out of warpcomp_tests so the in-process suite never forks.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "common/json_parse.hpp"

namespace warpcomp {
namespace {

#ifndef WC_RUN_KERNEL_BIN
#error "CMake must define WC_RUN_KERNEL_BIN"
#endif
#ifndef WC_TRACE_BIN
#error "CMake must define WC_TRACE_BIN"
#endif

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "wc_trace_proc_" + name;
}

int
runCommand(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status < 0)
        return -1;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
}

/** run_kernel on the cheap nw workload with @p args appended. */
int
runKernel(const std::string &args, const std::string &stderr_path)
{
    return runCommand(std::string(WC_RUN_KERNEL_BIN) +
                      " --only=nw --sms=2 " + args + " >/dev/null 2>" +
                      stderr_path);
}

int
runAnalyzer(const std::string &args, const std::string &stdout_path,
            const std::string &stderr_path)
{
    return runCommand(std::string(WC_TRACE_BIN) + " " + args + " >" +
                      stdout_path + " 2>" + stderr_path);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.good()) << path;
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

/** The shared streamed run: dump + live Chrome trace, produced once. */
const std::string &
referenceDump()
{
    static const std::string dump = [] {
        const std::string path = tempPath("ref.wctrace");
        const std::string err = tempPath("ref.err");
        EXPECT_EQ(runKernel("--trace-out=" + path + " --trace=" +
                                tempPath("ref_live.json"),
                            err),
                  0)
            << slurp(err);
        return path;
    }();
    return dump;
}

TEST(TraceProcess, DumpAndReportsIdenticalAcrossThreadCounts)
{
    const std::string t1 = tempPath("t1.wctrace");
    const std::string t4 = tempPath("t4.wctrace");
    const std::string err = tempPath("threads.err");
    ASSERT_EQ(runKernel("--threads=1 --trace-out=" + t1, err), 0)
        << slurp(err);
    ASSERT_EQ(runKernel("--threads=4 --trace-out=" + t4, err), 0)
        << slurp(err);
    EXPECT_EQ(slurp(t1), slurp(t4));

    for (const char *sub : {"summary", "heatmap", "stalls",
                            "decisions"}) {
        const std::string r1 = tempPath(std::string(sub) + "_t1.json");
        const std::string r4 = tempPath(std::string(sub) + "_t4.json");
        ASSERT_EQ(runAnalyzer(std::string(sub) + " " + t1, r1,
                              tempPath("a.err")),
                  0)
            << sub;
        ASSERT_EQ(runAnalyzer(std::string(sub) + " " + t4, r4,
                              tempPath("a.err")),
                  0)
            << sub;
        EXPECT_EQ(slurp(r1), slurp(r4)) << sub;
    }
}

TEST(TraceProcess, ChromeExportMatchesLiveTraceByteForByte)
{
    const std::string &dump = referenceDump();
    const std::string replay = tempPath("replay.json");
    ASSERT_EQ(runAnalyzer("export --chrome " + dump + " -o " + replay,
                          tempPath("exp.out"), tempPath("exp.err")),
              0);
    EXPECT_EQ(slurp(replay), slurp(tempPath("ref_live.json")))
        << "wc_trace export --chrome diverged from the live --trace "
           "file of the same run";
}

TEST(TraceProcess, AllSubcommandsEmitValidJson)
{
    const std::string &dump = referenceDump();
    for (const char *sub : {"summary", "heatmap", "stalls", "decisions",
                            "export --chrome"}) {
        const std::string out = tempPath("valid.json");
        const std::string err = tempPath("valid.err");
        ASSERT_EQ(runAnalyzer(std::string(sub) + " " + dump, out, err),
                  0)
            << sub << ": " << slurp(err);
        const JsonParseOutcome parsed = parseJson(slurp(out));
        EXPECT_TRUE(parsed.ok()) << sub << ": " << parsed.error;
    }
}

TEST(TraceProcess, TruncatedDumpExitsOneWithStructuredDiagnostic)
{
    const std::string good = slurp(referenceDump());
    ASSERT_GT(good.size(), 64u);
    const std::string torn = tempPath("torn.wctrace");
    spit(torn, good.substr(0, good.size() - 20));

    for (const char *sub : {"summary", "heatmap", "stalls", "decisions"}) {
        const std::string out = tempPath("torn.out");
        const std::string err = tempPath("torn.err");
        EXPECT_EQ(runAnalyzer(std::string(sub) + " " + torn, out, err),
                  1)
            << sub;
        const JsonParseOutcome parsed = parseJson(slurp(err));
        ASSERT_TRUE(parsed.ok()) << sub << ": diagnostic is not JSON: "
                                 << slurp(err);
        const JsonValue *code = parsed.value->find("error");
        ASSERT_NE(code, nullptr) << sub;
        ASSERT_NE(code->asString(), nullptr) << sub;
        EXPECT_EQ(*code->asString(), "truncated_dump") << sub;
        EXPECT_NE(parsed.value->find("detail"), nullptr) << sub;
    }
}

TEST(TraceProcess, MissingFileAndUsageErrors)
{
    const std::string out = tempPath("usage.out");
    const std::string err = tempPath("usage.err");
    EXPECT_EQ(runAnalyzer("summary " + tempPath("no_such.wctrace"),
                          out, err),
              1);
    const JsonParseOutcome parsed = parseJson(slurp(err));
    ASSERT_TRUE(parsed.ok()) << slurp(err);
    EXPECT_EQ(*parsed.value->find("error")->asString(), "open_failed");

    EXPECT_EQ(runAnalyzer("frobnicate " + referenceDump(), out, err),
              2);
    EXPECT_EQ(runAnalyzer("export " + referenceDump(), out, err), 2)
        << "export without --chrome must be a usage error";
    EXPECT_EQ(runCommand(std::string(WC_TRACE_BIN) + " >/dev/null 2>&1"),
              2);
}

TEST(TraceProcess, TraceOutWithoutOnlyIsFatal)
{
    const std::string err = tempPath("noonly.err");
    EXPECT_EQ(runCommand(std::string(WC_RUN_KERNEL_BIN) +
                         " --kernel=examples/kernels/vecadd.hex"
                         " --trace-out=" +
                         tempPath("noonly.wctrace") + " >/dev/null 2>" +
                         err),
              1);
}

} // namespace
} // namespace warpcomp
