/**
 * @file
 * Memory substrate tests: functional spaces (alloc/read/write bounds)
 * and the coalescing / bank-conflict timing model.
 */

#include <gtest/gtest.h>

#include <array>

#include "mem/mem_timing.hpp"
#include "mem/memory.hpp"

namespace warpcomp {
namespace {

TEST(GlobalMemory, AllocAligns)
{
    GlobalMemory g(1 << 20);
    const u64 a = g.alloc(100, 128);
    const u64 b = g.alloc(4, 128);
    EXPECT_EQ(a % 128, 0u);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(GlobalMemory, ReadWriteRoundtrip)
{
    GlobalMemory g(4096);
    g.write32(8, 0xCAFEBABEu);
    EXPECT_EQ(g.read32(8), 0xCAFEBABEu);
    g.writeF32(16, 3.5f);
    EXPECT_FLOAT_EQ(g.readF32(16), 3.5f);
}

TEST(GlobalMemory, OutOfBoundsDies)
{
    GlobalMemory g(64);
    EXPECT_DEATH(g.read32(64), "beyond");
    EXPECT_DEATH(g.write32(100, 1), "beyond");
}

TEST(GlobalMemory, UnalignedDies)
{
    GlobalMemory g(64);
    EXPECT_DEATH(g.read32(2), "unaligned");
}

TEST(GlobalMemory, ExhaustionDies)
{
    GlobalMemory g(256);
    g.alloc(128);
    EXPECT_DEATH(g.alloc(256), "exhausted");
}

TEST(SharedMemory, Roundtrip)
{
    SharedMemory s(1024);
    s.write32(0, 7);
    s.write32(1020, 9);
    EXPECT_EQ(s.read32(0), 7u);
    EXPECT_EQ(s.read32(1020), 9u);
    EXPECT_DEATH(s.read32(1024), "beyond");
}

TEST(ConstantMemory, PushSequence)
{
    ConstantMemory c(64);
    EXPECT_EQ(c.push(11), 0u);
    EXPECT_EQ(c.push(22), 4u);
    EXPECT_EQ(c.read32(0), 11u);
    EXPECT_EQ(c.read32(4), 22u);
    c.reset();
    EXPECT_EQ(c.push(33), 0u);
}

class CoalescingTest : public ::testing::Test
{
  protected:
    std::array<u64, kWarpSize> addrs_{};
};

TEST_F(CoalescingTest, FullyCoalescedIsOneSegment)
{
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 4096 + 4ull * i;    // 128 contiguous bytes
    EXPECT_EQ(coalescedSegments(addrs_, kFullMask), 1u);
}

TEST_F(CoalescingTest, StridedTouchesManySegments)
{
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 4096 + 128ull * i;  // one segment per lane
    EXPECT_EQ(coalescedSegments(addrs_, kFullMask), 32u);
}

TEST_F(CoalescingTest, ReverseStrideIsStillWorstCase)
{
    // Descending addresses: every lane probes the whole seen-segment
    // list without a match — the dedup scan's worst case, 32 distinct
    // segments.
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 4096 + 128ull * (kWarpSize - 1 - i);
    EXPECT_EQ(coalescedSegments(addrs_, kFullMask), 32u);
}

TEST_F(CoalescingTest, RepeatedSegmentsCountOnce)
{
    // Lanes alternate over two segments with distinct words; the match
    // scan must stop at the first hit and never double-count a segment.
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 4096 + 128ull * (i % 2) + 4ull * (i / 2);
    EXPECT_EQ(coalescedSegments(addrs_, kFullMask), 2u);

    // Same segment everywhere, all different words.
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 8192 + 4ull * i;
    EXPECT_EQ(coalescedSegments(addrs_, kFullMask), 1u);
}

TEST_F(CoalescingTest, MaskLimitsSegments)
{
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 4096 + 128ull * i;
    EXPECT_EQ(coalescedSegments(addrs_, 0x3u), 2u);
}

TEST_F(CoalescingTest, EmptyMaskCountsOne)
{
    EXPECT_EQ(coalescedSegments(addrs_, 0), 1u);
}

TEST_F(CoalescingTest, StraddleBoundary)
{
    // 32 words starting 64 bytes into a segment straddle two segments.
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 64 + 4ull * i;
    EXPECT_EQ(coalescedSegments(addrs_, kFullMask), 2u);
}

TEST_F(CoalescingTest, SharedNoConflictWhenDistinctBanks)
{
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 4ull * i;
    EXPECT_EQ(sharedConflictDegree(addrs_, kFullMask), 1u);
}

TEST_F(CoalescingTest, SharedBroadcastIsFree)
{
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 128;                // same word everywhere
    EXPECT_EQ(sharedConflictDegree(addrs_, kFullMask), 1u);
}

TEST_F(CoalescingTest, SharedTwoWayConflict)
{
    // Stride of 64 bytes: lanes i and i+16 hit the same bank with
    // different words.
    for (u32 i = 0; i < kWarpSize; ++i)
        addrs_[i] = 64ull * i;
    EXPECT_EQ(sharedConflictDegree(addrs_, kFullMask), 16u);
}

TEST_F(CoalescingTest, Latencies)
{
    MemTimingParams p;
    EXPECT_EQ(globalAccessLatency(p, 1), p.globalLatency);
    EXPECT_EQ(globalAccessLatency(p, 5),
              p.globalLatency + 4 * p.globalPerSegment);
    EXPECT_EQ(sharedAccessLatency(p, 1), p.sharedLatency);
    EXPECT_EQ(sharedAccessLatency(p, 3),
              p.sharedLatency + 2 * p.sharedPerConflict);
}

} // namespace
} // namespace warpcomp
