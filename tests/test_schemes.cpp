/**
 * @file
 * Tests for the compression-scheme plumbing: candidate sets, range
 * indicators, and the indicator <-> bank/byte mappings the arbiter
 * relies on.
 */

#include <gtest/gtest.h>

#include "compress/schemes.hpp"

namespace warpcomp {
namespace {

TEST(Schemes, CandidateSets)
{
    EXPECT_TRUE(schemeCandidates(CompressionScheme::None).empty());
    EXPECT_EQ(schemeCandidates(CompressionScheme::Warped).size(), 3u);
    EXPECT_EQ(schemeCandidates(CompressionScheme::Fixed40).size(), 1u);
    EXPECT_EQ(schemeCandidates(CompressionScheme::Fixed41).size(), 1u);
    EXPECT_EQ(schemeCandidates(CompressionScheme::Fixed42).size(), 1u);
    EXPECT_EQ(schemeCandidates(CompressionScheme::FullBdi).size(), 7u);
}

TEST(Schemes, FixedCandidatesMatchName)
{
    EXPECT_EQ(schemeCandidates(CompressionScheme::Fixed40)[0],
              (BdiParams{4, 0}));
    EXPECT_EQ(schemeCandidates(CompressionScheme::Fixed41)[0],
              (BdiParams{4, 1}));
    EXPECT_EQ(schemeCandidates(CompressionScheme::Fixed42)[0],
              (BdiParams{4, 2}));
}

TEST(Schemes, IndicatorBanks)
{
    EXPECT_EQ(indicatorBanks(RangeIndicator::Base40), 1u);
    EXPECT_EQ(indicatorBanks(RangeIndicator::Base41), 3u);
    EXPECT_EQ(indicatorBanks(RangeIndicator::Base42), 5u);
    EXPECT_EQ(indicatorBanks(RangeIndicator::Uncompressed), 8u);
}

TEST(Schemes, IndicatorBytes)
{
    EXPECT_EQ(indicatorBytes(RangeIndicator::Base40), 4u);
    EXPECT_EQ(indicatorBytes(RangeIndicator::Base41), 35u);
    EXPECT_EQ(indicatorBytes(RangeIndicator::Base42), 66u);
    EXPECT_EQ(indicatorBytes(RangeIndicator::Uncompressed), 128u);
}

TEST(Schemes, IndicatorBytesFitInIndicatedBanks)
{
    for (RangeIndicator ind :
         {RangeIndicator::Base40, RangeIndicator::Base41,
          RangeIndicator::Base42, RangeIndicator::Uncompressed}) {
        EXPECT_EQ(banksForBytes(indicatorBytes(ind)),
                  indicatorBanks(ind));
    }
}

TEST(Schemes, IndicatorForEncodings)
{
    WarpRegValue same{};
    same.fill(9);
    auto enc = bdiCompress(toBytes(same), warpedCandidates());
    EXPECT_EQ(indicatorFor(enc), RangeIndicator::Base40);

    WarpRegValue stride{};
    for (u32 i = 0; i < kWarpSize; ++i)
        stride[i] = 100 + i;
    enc = bdiCompress(toBytes(stride), warpedCandidates());
    EXPECT_EQ(indicatorFor(enc), RangeIndicator::Base41);

    WarpRegValue wide{};
    for (u32 i = 0; i < kWarpSize; ++i)
        wide[i] = 100 + 500 * i;
    enc = bdiCompress(toBytes(wide), warpedCandidates());
    EXPECT_EQ(indicatorFor(enc), RangeIndicator::Base42);

    WarpRegValue rnd{};
    for (u32 i = 0; i < kWarpSize; ++i)
        rnd[i] = i * 0x9E3779B9u;
    enc = bdiCompress(toBytes(rnd), warpedCandidates());
    EXPECT_EQ(indicatorFor(enc), RangeIndicator::Uncompressed);
}

TEST(Schemes, Names)
{
    EXPECT_EQ(schemeName(CompressionScheme::None), "baseline");
    EXPECT_EQ(schemeName(CompressionScheme::Warped),
              "warped-compression");
    EXPECT_EQ(schemeName(CompressionScheme::Fixed40), "<4,0>");
}

} // namespace
} // namespace warpcomp
