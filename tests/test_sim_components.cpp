/**
 * @file
 * Tests for the SM building blocks: scoreboard hazards, GTO/LRR
 * scheduler policies, bank-arbiter port allocation, collector pool
 * lifecycle, unit pools, and dispatch limiters.
 */

#include <gtest/gtest.h>

#include "compress/unit.hpp"
#include "sim/arbiter.hpp"
#include "sim/collector.hpp"
#include "sim/exec_unit.hpp"
#include "sim/scheduler.hpp"
#include "sim/scoreboard.hpp"

namespace warpcomp {
namespace {

Instruction
addInst(u8 dst, u8 a, u8 b)
{
    Instruction in;
    in.op = Opcode::IAdd;
    in.dst = dst;
    in.src[0] = Operand::fromReg(a);
    in.src[1] = Operand::fromReg(b);
    in.finalizeIssueMasks();
    return in;
}

TEST(Scoreboard, RawHazardBlocks)
{
    Scoreboard sb(4);
    const Instruction w = addInst(3, 1, 2);
    EXPECT_TRUE(sb.canIssue(0, w));
    sb.reserve(0, w);
    const Instruction r = addInst(4, 3, 1);     // reads pending r3
    EXPECT_FALSE(sb.canIssue(0, r));
    sb.releaseReg(0, 3);
    EXPECT_TRUE(sb.canIssue(0, r));
}

TEST(Scoreboard, WawHazardBlocks)
{
    Scoreboard sb(4);
    sb.reserve(0, addInst(3, 1, 2));
    EXPECT_FALSE(sb.canIssue(0, addInst(3, 5, 6)));
}

TEST(Scoreboard, WarpsAreIndependent)
{
    Scoreboard sb(4);
    sb.reserve(0, addInst(3, 1, 2));
    EXPECT_TRUE(sb.canIssue(1, addInst(4, 3, 1)));
}

TEST(Scoreboard, PredicateHazards)
{
    Scoreboard sb(2);
    Instruction setp;
    setp.op = Opcode::ISetP;
    setp.dstPred = 1;
    setp.src[0] = Operand::fromReg(0);
    setp.src[1] = Operand::fromImm(0);
    setp.finalizeIssueMasks();
    sb.reserve(0, setp);

    Instruction guarded = addInst(2, 0, 1);
    guarded.guardPred = 1;
    guarded.finalizeIssueMasks();
    EXPECT_FALSE(sb.canIssue(0, guarded));

    Instruction pand;
    pand.op = Opcode::PAnd;
    pand.dstPred = 2;
    pand.srcPred = 0;
    pand.srcPred2 = 1;          // reads pending p1
    pand.finalizeIssueMasks();
    EXPECT_FALSE(sb.canIssue(0, pand));

    sb.releasePred(0, 1);
    EXPECT_TRUE(sb.canIssue(0, guarded));
    EXPECT_TRUE(sb.canIssue(0, pand));
}

TEST(Scoreboard, IdleAndClear)
{
    Scoreboard sb(2);
    EXPECT_TRUE(sb.idle(0));
    sb.reserve(0, addInst(1, 0, 0));
    EXPECT_FALSE(sb.idle(0));
    sb.clearWarp(0);
    EXPECT_TRUE(sb.idle(0));
}

TEST(Scoreboard, DoubleReleaseDies)
{
    Scoreboard sb(1);
    sb.reserve(0, addInst(1, 0, 0));
    sb.releaseReg(0, 1);
    EXPECT_DEATH(sb.releaseReg(0, 1), "not reserved");
}

TEST(Scheduler, GtoSticksWithGreedyWarp)
{
    WarpScheduler s(SchedPolicy::Gto, {0, 1, 2});
    auto all_ready = [](u32) { return true; };
    auto age = [](u32 slot) { return u64{slot}; };

    EXPECT_EQ(s.pick(all_ready, age), 0);       // oldest first
    s.noteIssued(0);
    EXPECT_EQ(s.pick(all_ready, age), 0);       // greedy
    s.noteIssued(0);
    // When the greedy warp stalls, the oldest ready warp wins.
    auto ready_not0 = [](u32 slot) { return slot != 0; };
    EXPECT_EQ(s.pick(ready_not0, age), 1);
}

TEST(Scheduler, GtoPicksOldestByAge)
{
    WarpScheduler s(SchedPolicy::Gto, {0, 1, 2});
    auto all_ready = [](u32) { return true; };
    // Slot 2 is the oldest (smallest stamp).
    auto age = [](u32 slot) { return u64{10 - slot}; };
    EXPECT_EQ(s.pick(all_ready, age), 2);
}

TEST(Scheduler, LrrRotates)
{
    WarpScheduler s(SchedPolicy::Lrr, {0, 1, 2});
    auto all_ready = [](u32) { return true; };
    auto age = [](u32) { return u64{0}; };
    EXPECT_EQ(s.pick(all_ready, age), 0);
    s.noteIssued(0);
    EXPECT_EQ(s.pick(all_ready, age), 1);
    s.noteIssued(1);
    EXPECT_EQ(s.pick(all_ready, age), 2);
    s.noteIssued(2);
    EXPECT_EQ(s.pick(all_ready, age), 0);
}

TEST(Scheduler, LrrSkipsStalled)
{
    WarpScheduler s(SchedPolicy::Lrr, {0, 1, 2});
    auto age = [](u32) { return u64{0}; };
    auto only2 = [](u32 slot) { return slot == 2; };
    EXPECT_EQ(s.pick(only2, age), 2);
}

TEST(Scheduler, NothingReady)
{
    WarpScheduler s(SchedPolicy::Gto, {0, 1});
    auto none = [](u32) { return false; };
    auto age = [](u32) { return u64{0}; };
    EXPECT_EQ(s.pick(none, age), -1);
}

TEST(Scheduler, EmptySlotListPicksNothing)
{
    // A scheduler owning no slots must answer -1 without dividing by
    // its (zero) slot count.
    WarpScheduler s(SchedPolicy::Lrr, {});
    auto all_ready = [](u32) { return true; };
    auto age = [](u32) { return u64{0}; };
    EXPECT_EQ(s.pick(all_ready, age), -1);
}

TEST(Scheduler, LrrRotatesOverNonContiguousSlots)
{
    // Dual-scheduler SMs hand each scheduler a strided slot subset;
    // rotation must follow list position, not raw slot numbering.
    WarpScheduler s(SchedPolicy::Lrr, {3, 8, 21});
    auto all_ready = [](u32) { return true; };
    auto age = [](u32) { return u64{0}; };
    EXPECT_EQ(s.pick(all_ready, age), 3);
    s.noteIssued(3);
    EXPECT_EQ(s.pick(all_ready, age), 8);
    s.noteIssued(8);
    EXPECT_EQ(s.pick(all_ready, age), 21);
    s.noteIssued(21);
    EXPECT_EQ(s.pick(all_ready, age), 3);
}

TEST(Scheduler, GtoReordersAfterInvalidate)
{
    WarpScheduler s(SchedPolicy::Gto, {0, 1});
    auto all_ready = [](u32) { return true; };
    u64 stamps[2] = {5, 9};
    auto age = [&stamps](u32 slot) { return stamps[slot]; };
    EXPECT_EQ(s.pick(all_ready, age), 0);   // 5 < 9
    // Slot 0 relaunches with a younger stamp; after invalidateOrder
    // the cached oldest-first order must re-derive.
    stamps[0] = 20;
    s.invalidateOrder();
    EXPECT_EQ(s.pick(all_ready, age), 1);   // 9 < 20
}

TEST(SchedulerDeathTest, NoteIssuedForeignSlotDies)
{
    // Slots the scheduler does not own would corrupt its rotation
    // state: both in-range-but-unowned and out-of-range slots must
    // trip the assertion.
    WarpScheduler s(SchedPolicy::Lrr, {0, 2, 4});
    EXPECT_DEATH(s.noteIssued(1), "foreign warp slot");
    EXPECT_DEATH(s.noteIssued(7), "foreign warp slot");
}

TEST(SchedulerDeathTest, DuplicateSlotDies)
{
    EXPECT_DEATH(WarpScheduler(SchedPolicy::Gto, {1, 1}),
                 "duplicate warp slot");
}

TEST(Arbiter, OneReadPortPerBank)
{
    BankArbiter a(32);
    a.newCycle();
    EXPECT_TRUE(a.tryRead(5));
    EXPECT_FALSE(a.tryRead(5));
    EXPECT_TRUE(a.tryRead(6));
    a.newCycle();
    EXPECT_TRUE(a.tryRead(5));
}

TEST(Arbiter, WriteRangeAtomicity)
{
    BankArbiter a(32);
    a.newCycle();
    EXPECT_TRUE(a.tryWriteRange(0, 8));
    EXPECT_FALSE(a.tryWriteRange(7, 2));        // overlaps bank 7
    EXPECT_TRUE(a.tryWriteRange(8, 8));
}

TEST(Arbiter, ReadAndWritePortsIndependent)
{
    BankArbiter a(32);
    a.newCycle();
    EXPECT_TRUE(a.tryRead(3));
    EXPECT_TRUE(a.tryWriteRange(3, 1));
}

TEST(Arbiter, ZeroCountWriteSucceeds)
{
    BankArbiter a(32);
    a.newCycle();
    EXPECT_TRUE(a.tryWriteRange(0, 0));
}

TEST(CollectorPool, InsertTakeLifecycle)
{
    CollectorPool pool(2);
    EXPECT_TRUE(pool.hasFree());

    InFlight a;
    a.warpSlot = 7;
    const u32 ia = pool.insert(&a);
    InFlight b;
    b.warpSlot = 9;
    pool.insert(&b);
    EXPECT_FALSE(pool.hasFree());

    const InFlight *out = pool.take(ia);
    EXPECT_EQ(out, &a);
    EXPECT_EQ(out->warpSlot, 7u);
    EXPECT_TRUE(pool.hasFree());
    EXPECT_EQ(pool.at(ia), nullptr);
}

TEST(CollectorPool, OccupiedOrderIsFifo)
{
    CollectorPool pool(3);
    InFlight x;
    const u32 i0 = pool.insert(&x);
    InFlight y;
    const u32 i1 = pool.insert(&y);
    pool.take(i0);
    InFlight z;
    const u32 i2 = pool.insert(&z);
    ASSERT_EQ(pool.occupiedOrder().size(), 2u);
    EXPECT_EQ(pool.occupiedOrder()[0], i1);
    EXPECT_EQ(pool.occupiedOrder()[1], i2);
}

TEST(InFlight, CollectedRequiresAllOps)
{
    InFlight f;
    f.numOps = 2;
    f.ops[0].acc.numBanks = 2;
    f.ops[1].acc.numBanks = 1;
    EXPECT_FALSE(f.collected());
    f.ops[0].granted = 2;
    EXPECT_FALSE(f.collected());
    f.ops[1].granted = 1;
    EXPECT_TRUE(f.collected());
}

TEST(UnitPool, PerCycleThroughput)
{
    UnitPool pool(2, 3);
    EXPECT_EQ(pool.tryIssue(10), 13u);
    EXPECT_EQ(pool.tryIssue(10), 13u);
    EXPECT_EQ(pool.tryIssue(10), std::nullopt); // both units taken
    EXPECT_EQ(pool.tryIssue(11), 14u);          // next cycle frees slots
    EXPECT_EQ(pool.activations(), 3u);
}

TEST(UnitPool, ZeroLatencyIsNotTheNoUnitSentinel)
{
    // A decompressLatency = 0 sweep must stay distinguishable from
    // "every unit already accepted an op this cycle": completion at
    // cycle 0 is a real grant, exhaustion is nullopt.
    UnitPool pool(1, 0);
    const auto first = pool.tryIssue(0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, 0u);                      // completes immediately
    EXPECT_EQ(pool.tryIssue(0), std::nullopt);  // pool exhausted
    const auto next = pool.tryIssue(7);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, 7u);
    EXPECT_EQ(pool.activations(), 2u);
}

TEST(UnitPool, CanIssueDoesNotConsume)
{
    UnitPool pool(1, 1);
    EXPECT_TRUE(pool.canIssue(5));
    EXPECT_TRUE(pool.canIssue(5));
    pool.tryIssue(5);
    EXPECT_FALSE(pool.canIssue(5));
}

TEST(DispatchLimiter, RateLimitsPerCycle)
{
    DispatchLimiter lim(2);
    EXPECT_TRUE(lim.tryDispatch(0));
    EXPECT_TRUE(lim.tryDispatch(0));
    EXPECT_FALSE(lim.tryDispatch(0));
    EXPECT_TRUE(lim.tryDispatch(1));
    EXPECT_EQ(lim.dispatched(), 3u);
}

TEST(ResultLatency, MatchesClasses)
{
    EXPECT_EQ(resultLatency(Opcode::IAdd), 4u);
    EXPECT_EQ(resultLatency(Opcode::IMul), 6u);
    EXPECT_EQ(resultLatency(Opcode::FFma), 6u);
    EXPECT_EQ(resultLatency(Opcode::Bra), 2u);
    EXPECT_DEATH(resultLatency(Opcode::Ldg), "memory latency");
}

} // namespace
} // namespace warpcomp
