/**
 * @file
 * Tests for the common substrate: bit helpers, RNG determinism, the
 * stats containers, and the report table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "power/report.hpp"

namespace warpcomp {
namespace {

TEST(Bitops, Popcount)
{
    EXPECT_EQ(popcount(0u), 0u);
    EXPECT_EQ(popcount(kFullMask), 32u);
    EXPECT_EQ(popcount(0x5u), 2u);
}

TEST(Bitops, LowestLane)
{
    EXPECT_EQ(lowestLane(1u), 0u);
    EXPECT_EQ(lowestLane(0x80000000u), 31u);
    EXPECT_EQ(lowestLane(0b1100u), 2u);
}

TEST(Bitops, LaneActive)
{
    EXPECT_TRUE(laneActive(0x4u, 2));
    EXPECT_FALSE(laneActive(0x4u, 1));
}

TEST(Bitops, FirstLanes)
{
    EXPECT_EQ(firstLanes(0), 0u);
    EXPECT_EQ(firstLanes(1), 1u);
    EXPECT_EQ(firstLanes(5), 0x1Fu);
    EXPECT_EQ(firstLanes(32), kFullMask);
    EXPECT_EQ(firstLanes(40), kFullMask);
}

TEST(Bitops, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0u, 4u), 0u);
    EXPECT_EQ(ceilDiv(1u, 4u), 1u);
    EXPECT_EQ(ceilDiv(4u, 4u), 1u);
    EXPECT_EQ(ceilDiv(5u, 4u), 2u);
}

TEST(Bitops, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(0, 1));
    EXPECT_TRUE(fitsSigned(127, 1));
    EXPECT_FALSE(fitsSigned(128, 1));
    EXPECT_TRUE(fitsSigned(-128, 1));
    EXPECT_FALSE(fitsSigned(-129, 1));
    EXPECT_TRUE(fitsSigned(32767, 2));
    EXPECT_FALSE(fitsSigned(32768, 2));
    EXPECT_TRUE(fitsSigned(INT64_MAX, 8));
    EXPECT_TRUE(fitsSigned(INT64_MIN, 8));
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const i32 v = rng.nextRange(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, RangeCoversExtremes)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const i32 v = rng.nextRange(0, 3);
        saw_lo = saw_lo || v == 0;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, GroupLookup)
{
    StatGroup g("sm0");
    g.counter("issued") += 5;
    EXPECT_EQ(g.get("issued"), 5u);
    EXPECT_EQ(g.get("absent"), 0u);
    g.reset();
    EXPECT_EQ(g.get("issued"), 0u);
}

TEST(Stats, GroupDumpFormat)
{
    StatGroup g("rf");
    g.counter("reads") += 3;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "rf.reads 3\n");
}

TEST(Stats, Histogram)
{
    Histogram h(4);
    h.add(0);
    h.add(3, 9);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.9);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Stats, HistogramOverflowSaturates)
{
    Histogram h(4);
    h.add(2, 3);
    h.add(4);           // first bin past the end
    h.add(1000, 6);     // far past the end
    EXPECT_EQ(h.overflow(), 7u);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.bin(2), 3u);
    // In-range bins are untouched by overflow samples.
    EXPECT_EQ(h.bin(3), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.3);
    h.reset();
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.total(), 0u);
}

TEST(Report, TableAlignment)
{
    TextTable t({"bench", "a", "b"});
    t.addRow({"x", "1.0", "2.0"});
    t.addRow("y", {3.25, 4.5}, 2);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("bench"), std::string::npos);
    EXPECT_NE(s.find("3.25"), std::string::npos);
    EXPECT_NE(s.find("4.50"), std::string::npos);
}

TEST(Report, CsvOutput)
{
    TextTable t({"bench", "value"});
    t.addRow({"a,b", "1.5"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "bench,value\n\"a,b\",1.5\n");
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.256, 1), "25.6%");
}

} // namespace
} // namespace warpcomp
