/**
 * @file
 * Integration tests: full kernels through the timing simulator (GPU ->
 * SM -> collectors -> banks -> writeback), checking functional results
 * in memory, compression transparency, dummy-MOV injection, barriers,
 * gating behaviour, scheduler policies, and energy invariants.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "isa/builder.hpp"
#include "workloads/inputs.hpp"
#include "workloads/workload.hpp"

namespace warpcomp {
namespace {

/** Fixture wiring a kernel + memories through the Gpu front door. */
class IntegrationTest : public ::testing::Test
{
  protected:
    IntegrationTest() : gmem_(8 << 20), cmem_(1024) {}

    RunResult
    runOn(const Kernel &k, LaunchDims dims, CompressionScheme scheme,
          u32 num_sms = 2, SchedPolicy sched = SchedPolicy::Gto,
          u32 decomp_latency = 1, u32 comp_latency = 2)
    {
        GpuParams gp;
        gp.numSms = num_sms;
        gp.sm.scheme = scheme;
        gp.sm.sched = sched;
        gp.sm.compressLatency = comp_latency;
        gp.sm.decompressLatency = decomp_latency;
        gp.sm.applyScheme();
        Gpu gpu(gp, gmem_, cmem_);
        return gpu.run(k, dims);
    }

    GlobalMemory gmem_;
    ConstantMemory cmem_;
};

/** out[gid] = gid * 3 + 1, checked against memory after the run. */
Kernel
affineKernel(u64 out_base)
{
    KernelBuilder b("affine");
    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);
    Reg v = b.newReg();
    b.imad(v, gid, KernelBuilder::imm(3), KernelBuilder::imm(1));
    Reg addr = b.newReg();
    b.imad(addr, gid, KernelBuilder::imm(4),
           KernelBuilder::imm(static_cast<i32>(out_base)));
    b.stg(addr, v);
    return b.build();
}

TEST_F(IntegrationTest, AffineKernelProducesCorrectMemory)
{
    const u32 n = 512;
    const u64 out = gmem_.alloc(4 * n);
    const RunResult r = runOn(affineKernel(out), {128, 4},
                              CompressionScheme::Warped);
    EXPECT_GT(r.cycles, 0u);
    for (u32 i = 0; i < n; ++i)
        EXPECT_EQ(gmem_.read32(out + 4ull * i), i * 3 + 1) << i;
}

TEST_F(IntegrationTest, CompressionIsFunctionallyTransparent)
{
    const u32 n = 512;
    const u64 out_a = gmem_.alloc(4 * n);
    const u64 out_b = gmem_.alloc(4 * n);
    runOn(affineKernel(out_a), {128, 4}, CompressionScheme::None);
    runOn(affineKernel(out_b), {128, 4}, CompressionScheme::Warped);
    for (u32 i = 0; i < n; ++i)
        EXPECT_EQ(gmem_.read32(out_a + 4ull * i),
                  gmem_.read32(out_b + 4ull * i));
}

TEST_F(IntegrationTest, CompressionReducesBankTraffic)
{
    const u64 out = gmem_.alloc(4 * 512);
    const RunResult base = runOn(affineKernel(out), {128, 4},
                                 CompressionScheme::None);
    const RunResult wc = runOn(affineKernel(out), {128, 4},
                               CompressionScheme::Warped);
    EXPECT_LT(wc.meter.bankAccesses(), base.meter.bankAccesses());
    EXPECT_EQ(base.meter.compActivations(), 0u);
    EXPECT_EQ(base.meter.decompActivations(), 0u);
    EXPECT_GT(wc.meter.compActivations(), 0u);
}

TEST_F(IntegrationTest, BaselineNeverGatesBanks)
{
    const u64 out = gmem_.alloc(4 * 512);
    const RunResult base = runOn(affineKernel(out), {128, 4},
                                 CompressionScheme::None);
    for (double frac : base.bankGatedFraction)
        EXPECT_DOUBLE_EQ(frac, 0.0);
}

TEST_F(IntegrationTest, CompressedDesignGatesHighBanksMore)
{
    const u64 out = gmem_.alloc(4 * 512);
    const RunResult wc = runOn(affineKernel(out), {128, 4},
                               CompressionScheme::Warped);
    // Within each 8-bank cluster, the highest bank must gate at least
    // as much as the lowest (compressed data packs from bank 0 up).
    for (u32 c = 0; c < 4; ++c) {
        EXPECT_GE(wc.bankGatedFraction[c * 8 + 7] + 1e-12,
                  wc.bankGatedFraction[c * 8 + 0]);
    }
}

TEST_F(IntegrationTest, DummyMovInjectedOnDivergentCompressedWrite)
{
    // r_v is written uniformly (compressed), then rewritten under
    // divergence -> exactly the Sec. 5.2 decompress-MOV case.
    KernelBuilder b("divwrite");
    Reg lane = b.newReg(), v = b.newReg();
    Pred p = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.movImm(v, 7);                        // uniform -> compressed
    b.isetp(p, CmpOp::Lt, lane, KernelBuilder::imm(16));
    b.if_(p, [&] {
        b.iadd(v, v, KernelBuilder::imm(1));   // divergent write to v
    });
    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg(), addr = b.newReg();
    b.imad(gid, bid, ntid, tid);
    const u64 buf = gmem_.alloc(4 * 256);
    b.imad(addr, gid, KernelBuilder::imm(4),
           KernelBuilder::imm(static_cast<i32>(buf)));
    b.stg(addr, v);
    Kernel k = b.build();

    const RunResult wc = runOn(k, {128, 2}, CompressionScheme::Warped);
    EXPECT_GT(wc.stats.dummyMovs, 0u);
    // Results must still be exact.
    for (u32 i = 0; i < 256; ++i) {
        const u32 expect = (i % 32) < 16 ? 8 : 7;
        EXPECT_EQ(gmem_.read32(buf + 4ull * i), expect) << i;
    }

    // The baseline never injects MOVs.
    const RunResult base = runOn(k, {128, 2}, CompressionScheme::None);
    EXPECT_EQ(base.stats.dummyMovs, 0u);
}

TEST_F(IntegrationTest, BarrierOrdersProducerConsumer)
{
    // Warp 0 stores to shared memory; after the barrier every warp
    // reads warp 0's values. Wrong barrier handling would read zeros.
    KernelBuilder b("barrier", 128);
    Reg tid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    Pred is_w0 = b.newPred();
    b.isetp(is_w0, CmpOp::Lt, tid, KernelBuilder::imm(32));
    b.if_(is_w0, [&] {
        Reg sa = b.newReg(), val = b.newReg();
        b.shl(sa, tid, KernelBuilder::imm(2));
        b.imad(val, tid, KernelBuilder::imm(2), KernelBuilder::imm(5));
        b.sts(sa, val);
    });
    b.bar();
    Reg lane = b.newReg(), sa2 = b.newReg(), got = b.newReg();
    b.s2r(lane, SpecialReg::LaneId);
    b.shl(sa2, lane, KernelBuilder::imm(2));
    b.lds(got, sa2);
    const u64 buf = gmem_.alloc(4 * 256);
    Reg bid = b.newReg(), ntid = b.newReg(), gid = b.newReg(),
        addr = b.newReg();
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    b.imad(gid, bid, ntid, tid);
    b.imad(addr, gid, KernelBuilder::imm(4),
           KernelBuilder::imm(static_cast<i32>(buf)));
    b.stg(addr, got);
    Kernel k = b.build();

    runOn(k, {128, 2}, CompressionScheme::Warped);
    for (u32 i = 0; i < 256; ++i)
        EXPECT_EQ(gmem_.read32(buf + 4ull * i), (i % 32) * 2 + 5) << i;
}

TEST_F(IntegrationTest, SchedulersProduceSameResults)
{
    const u32 n = 512;
    const u64 out_g = gmem_.alloc(4 * n);
    const u64 out_l = gmem_.alloc(4 * n);
    const RunResult g = runOn(affineKernel(out_g), {128, 4},
                              CompressionScheme::Warped, 2,
                              SchedPolicy::Gto);
    const RunResult l = runOn(affineKernel(out_l), {128, 4},
                              CompressionScheme::Warped, 2,
                              SchedPolicy::Lrr);
    for (u32 i = 0; i < n; ++i)
        EXPECT_EQ(gmem_.read32(out_g + 4ull * i),
                  gmem_.read32(out_l + 4ull * i));
    EXPECT_GT(g.cycles, 0u);
    EXPECT_GT(l.cycles, 0u);
}

TEST_F(IntegrationTest, LatencySweepKeepsResultsExact)
{
    const u32 n = 256;
    for (u32 lat : {2u, 4u, 8u}) {
        const u64 out = gmem_.alloc(4 * n);
        runOn(affineKernel(out), {128, 2}, CompressionScheme::Warped, 1,
              SchedPolicy::Gto, lat, lat);
        for (u32 i = 0; i < n; ++i)
            EXPECT_EQ(gmem_.read32(out + 4ull * i), i * 3 + 1);
    }
}

TEST_F(IntegrationTest, MoreSmsNeverSlower)
{
    const u64 out = gmem_.alloc(4 * 2048);
    const RunResult one = runOn(affineKernel(out), {128, 16},
                                CompressionScheme::Warped, 1);
    const RunResult four = runOn(affineKernel(out), {128, 16},
                                 CompressionScheme::Warped, 4);
    EXPECT_LE(four.cycles, one.cycles);
    EXPECT_EQ(one.ctas, 16u);
    EXPECT_EQ(four.ctas, 16u);
}

TEST_F(IntegrationTest, StatsAreConsistent)
{
    const u64 out = gmem_.alloc(4 * 512);
    const RunResult wc = runOn(affineKernel(out), {128, 4},
                               CompressionScheme::Warped);
    EXPECT_GT(wc.stats.issued, 0u);
    EXPECT_LE(wc.stats.issuedDivergent, wc.stats.issued);
    EXPECT_LE(wc.stats.regWritesDivergent, wc.stats.regWrites);
    EXPECT_GT(wc.stats.regWrites, 0u);
    // Every write was measured for compressibility.
    EXPECT_EQ(wc.stats.ratio.writes(kNonDivergent) +
                  wc.stats.ratio.writes(kDivergent),
              wc.stats.regWrites);
}

TEST_F(IntegrationTest, FixedSchemesRunAndCompressLess)
{
    const u64 out = gmem_.alloc(4 * 512);
    const RunResult warped = runOn(affineKernel(out), {128, 4},
                                   CompressionScheme::Warped);
    const RunResult f40 = runOn(affineKernel(out), {128, 4},
                                CompressionScheme::Fixed40);
    // The dynamic scheme compresses at least as well as any single
    // choice (same writes, superset of candidates).
    EXPECT_GE(warped.stats.ratio.overallRatio() + 1e-9,
              f40.stats.ratio.overallRatio());
}

} // namespace
} // namespace warpcomp
