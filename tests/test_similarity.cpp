/**
 * @file
 * Value-similarity analysis tests: distance classification (the Fig 2
 * bins), per-write pair accounting under partial masks, and the
 * compression-ratio accumulator.
 */

#include <gtest/gtest.h>

#include "analysis/similarity.hpp"

namespace warpcomp {
namespace {

TEST(DistanceBins, Classification)
{
    EXPECT_EQ(classifyDistance(0), DistanceBin::Zero);
    EXPECT_EQ(classifyDistance(1), DistanceBin::Small128);
    EXPECT_EQ(classifyDistance(-1), DistanceBin::Small128);
    EXPECT_EQ(classifyDistance(128), DistanceBin::Small128);
    EXPECT_EQ(classifyDistance(-128), DistanceBin::Small128);
    EXPECT_EQ(classifyDistance(129), DistanceBin::Mid32K);
    EXPECT_EQ(classifyDistance(32768), DistanceBin::Mid32K);
    EXPECT_EQ(classifyDistance(-32768), DistanceBin::Mid32K);
    EXPECT_EQ(classifyDistance(32769), DistanceBin::Random);
    EXPECT_EQ(classifyDistance(INT64_MIN / 2), DistanceBin::Random);
}

TEST(SimilarityBins, FullMaskCounts31Pairs)
{
    SimilarityBins bins;
    WarpRegValue v{};
    v.fill(42);
    bins.record(v, kFullMask, false);
    EXPECT_EQ(bins.total(kNonDivergent), 31u);
    EXPECT_EQ(bins.count(kNonDivergent, DistanceBin::Zero), 31u);
    EXPECT_EQ(bins.total(kDivergent), 0u);
}

TEST(SimilarityBins, UnitStrideIsSmallBin)
{
    SimilarityBins bins;
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = 1000 + i;
    bins.record(v, kFullMask, false);
    EXPECT_EQ(bins.count(kNonDivergent, DistanceBin::Small128), 31u);
}

TEST(SimilarityBins, PartialMaskSkipsInactiveLanes)
{
    SimilarityBins bins;
    WarpRegValue v{};
    v[0] = 10;
    v[5] = 10;
    v[9] = 1'000'000;           // only written lanes pair up
    bins.record(v, (1u << 0) | (1u << 5) | (1u << 9), true);
    EXPECT_EQ(bins.total(kDivergent), 2u);
    EXPECT_EQ(bins.count(kDivergent, DistanceBin::Zero), 1u);
    EXPECT_EQ(bins.count(kDivergent, DistanceBin::Random), 1u);
}

TEST(SimilarityBins, SingleLaneHasNoPairs)
{
    SimilarityBins bins;
    WarpRegValue v{};
    bins.record(v, 1u << 7, true);
    EXPECT_EQ(bins.total(kDivergent), 0u);
}

TEST(SimilarityBins, SignedDistanceSemantics)
{
    // 0x7FFFFFFF and 0x80000000 are far apart as signed values.
    SimilarityBins bins;
    WarpRegValue v{};
    v[0] = 0x7FFFFFFFu;
    v[1] = 0x80000000u;
    bins.record(v, 0x3u, false);
    EXPECT_EQ(bins.count(kNonDivergent, DistanceBin::Random), 1u);
}

TEST(SimilarityBins, FractionsSumToOne)
{
    SimilarityBins bins;
    WarpRegValue v{};
    for (u32 i = 0; i < kWarpSize; ++i)
        v[i] = i * 300;
    bins.record(v, kFullMask, false);
    double sum = 0;
    for (u32 b = 0; b < kNumDistanceBins; ++b)
        sum += bins.fraction(kNonDivergent, static_cast<DistanceBin>(b));
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SimilarityBins, MergeAddsCounts)
{
    SimilarityBins a, b;
    WarpRegValue v{};
    v.fill(1);
    a.record(v, kFullMask, false);
    b.record(v, kFullMask, true);
    a.merge(b);
    EXPECT_EQ(a.total(kNonDivergent), 31u);
    EXPECT_EQ(a.total(kDivergent), 31u);
}

TEST(RatioAccum, PerfectCompression)
{
    RatioAccum r;
    r.record(4, false);         // <4,0> on a 128-byte register
    EXPECT_DOUBLE_EQ(r.ratio(kNonDivergent), 32.0);
    EXPECT_DOUBLE_EQ(r.ratio(kDivergent), 1.0);     // empty phase
}

TEST(RatioAccum, MixedWrites)
{
    RatioAccum r;
    r.record(128, false);
    r.record(64, false);
    // 256 original bytes over 192 stored bytes.
    EXPECT_NEAR(r.ratio(kNonDivergent), 256.0 / 192.0, 1e-12);
    EXPECT_EQ(r.writes(kNonDivergent), 2u);
}

TEST(RatioAccum, OverallCombinesPhases)
{
    RatioAccum r;
    r.record(4, false);
    r.record(128, true);
    EXPECT_NEAR(r.overallRatio(), 256.0 / 132.0, 1e-12);
}

TEST(RatioAccum, MergeCombines)
{
    RatioAccum a, b;
    a.record(64, false);
    b.record(64, false);
    a.merge(b);
    EXPECT_EQ(a.writes(kNonDivergent), 2u);
    EXPECT_DOUBLE_EQ(a.ratio(kNonDivergent), 2.0);
}

TEST(RatioAccum, RejectsBadSizes)
{
    RatioAccum r;
    EXPECT_DEATH(r.record(0, false), "bad compressed size");
    EXPECT_DEATH(r.record(129, false), "bad compressed size");
}

} // namespace
} // namespace warpcomp
