/**
 * @file
 * Workload-suite tests: every ported benchmark builds a valid kernel,
 * runs to completion under baseline and warped-compression, produces
 * deterministic results, and exhibits the qualitative property the
 * paper attributes to it (LIB ~ perfectly compressible, BFS/MUM
 * divergent, AES non-divergent, ...).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace warpcomp {
namespace {

ExperimentConfig
quickCfg(CompressionScheme scheme)
{
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.numSms = 4;
    return cfg;
}

TEST(Workloads, RegistryHasNineteen)
{
    EXPECT_EQ(workloadNames().size(), 19u);
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_DEATH(makeWorkload("nonesuch"), "unknown workload");
}

/** Parameterized over every benchmark in the registry. */
class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, BuildsValidKernel)
{
    WorkloadInstance wl = makeWorkload(GetParam());
    EXPECT_EQ(wl.name, GetParam());
    wl.kernel.validate();
    EXPECT_GE(wl.kernel.size(), 5u);
    EXPECT_GE(wl.dims.gridDim, 1u);
    EXPECT_GE(wl.dims.blockDim, kWarpSize);
    // CTA sizes are warp multiples so tail warps do not skew the
    // divergence statistics.
    EXPECT_EQ(wl.dims.blockDim % kWarpSize, 0u);
}

TEST_P(WorkloadSuite, RunsUnderBothSchemes)
{
    for (CompressionScheme scheme :
         {CompressionScheme::None, CompressionScheme::Warped}) {
        const ExperimentResult r = runWorkload(GetParam(),
                                               quickCfg(scheme));
        EXPECT_GT(r.run.cycles, 0u);
        EXPECT_GT(r.run.stats.issued, 0u);
        EXPECT_GT(r.run.meter.bankAccesses(), 0u);
    }
}

TEST_P(WorkloadSuite, DeterministicAcrossRuns)
{
    const ExperimentResult a = runWorkload(GetParam(),
                                           quickCfg(
                                               CompressionScheme::Warped));
    const ExperimentResult b = runWorkload(GetParam(),
                                           quickCfg(
                                               CompressionScheme::Warped));
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.meter.bankAccesses(), b.run.meter.bankAccesses());
    EXPECT_EQ(a.run.stats.issued, b.run.stats.issued);
    EXPECT_EQ(a.run.stats.dummyMovs, b.run.stats.dummyMovs);
}

TEST_P(WorkloadSuite, CompressionSavesBankAccesses)
{
    const ExperimentResult base = runWorkload(GetParam(),
                                              quickCfg(
                                                  CompressionScheme::None));
    const ExperimentResult wc = runWorkload(GetParam(),
                                            quickCfg(
                                                CompressionScheme::Warped));
    EXPECT_LE(wc.run.meter.bankAccesses(), base.run.meter.bankAccesses());
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSuite,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadProperties, LibCompressesAlmostPerfectly)
{
    const ExperimentResult r = runWorkload("lib",
                                           quickCfg(
                                               CompressionScheme::Warped));
    // The paper: constant-initialized inputs -> near-perfect
    // compression (ours > 10x; the theoretical max is 32x).
    EXPECT_GT(r.run.stats.ratio.ratio(kNonDivergent), 10.0);
}

TEST(WorkloadProperties, AesNeverDiverges)
{
    const ExperimentResult r = runWorkload("aes",
                                           quickCfg(
                                               CompressionScheme::Warped));
    EXPECT_EQ(r.run.stats.issuedDivergent, 0u);
    EXPECT_EQ(r.run.stats.dummyMovs, 0u);
}

TEST(WorkloadProperties, StencilNeverDiverges)
{
    const ExperimentResult r = runWorkload("stencil",
                                           quickCfg(
                                               CompressionScheme::Warped));
    EXPECT_EQ(r.run.stats.issuedDivergent, 0u);
}

TEST(WorkloadProperties, BfsAndMumDivergeHeavily)
{
    for (const char *name : {"bfs", "mum"}) {
        const ExperimentResult r = runWorkload(
            name, quickCfg(CompressionScheme::Warped));
        const double div = static_cast<double>(
            r.run.stats.issuedDivergent) /
            static_cast<double>(r.run.stats.issued);
        EXPECT_GT(div, 0.3) << name;
    }
}

TEST(WorkloadProperties, DivergentWorkloadsInjectMovs)
{
    for (const char *name : {"mum", "spmv"}) {
        const ExperimentResult r = runWorkload(
            name, quickCfg(CompressionScheme::Warped));
        EXPECT_GT(r.run.stats.dummyMovs, 0u) << name;
    }
}

TEST(WorkloadProperties, PathfinderSimilarityIsHigh)
{
    // Fig 2 shape: the pathfinder kernel's narrow-range inputs put most
    // non-divergent distances outside the random bin.
    const ExperimentResult r = runWorkload(
        "pathfinder", quickCfg(CompressionScheme::Warped));
    const double random_frac = r.run.stats.simBins.fraction(
        kNonDivergent, DistanceBin::Random);
    EXPECT_LT(random_frac, 0.4);
}

TEST(WorkloadProperties, DivergentRatioLowerThanNonDivergent)
{
    // Fig 8 shape, checked on the suite's divergent benchmarks.
    for (const char *name : {"bfs", "mum", "spmv", "dwt2d"}) {
        const ExperimentResult r = runWorkload(
            name, quickCfg(CompressionScheme::Warped));
        EXPECT_LE(r.run.stats.ratio.ratio(kDivergent),
                  r.run.stats.ratio.ratio(kNonDivergent) + 1e-9)
            << name;
    }
}

TEST(WorkloadProperties, ScaleGrowsWork)
{
    ExperimentConfig c1 = quickCfg(CompressionScheme::Warped);
    ExperimentConfig c2 = c1;
    c2.scale = 2;
    const ExperimentResult r1 = runWorkload("stencil", c1);
    const ExperimentResult r2 = runWorkload("stencil", c2);
    EXPECT_GT(r2.run.ctas, r1.run.ctas);
    EXPECT_GT(r2.run.stats.issued, r1.run.stats.issued);
}

} // namespace
} // namespace warpcomp
