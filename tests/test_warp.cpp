/**
 * @file
 * Warp-state tests: launch/reset lifecycle, functional register and
 * predicate storage, guard evaluation, and thread-index mapping.
 */

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "isa/builder.hpp"
#include "sim/warp.hpp"

namespace warpcomp {
namespace {

Kernel
tinyKernel()
{
    KernelBuilder b("tiny");
    Reg a = b.newReg();
    (void)b.newReg();
    Pred p = b.newPred();
    (void)p;
    b.movImm(a, 1);
    return b.build();
}

TEST(Warp, LaunchInitializesState)
{
    Kernel k = tinyKernel();
    Warp w;
    w.launch(k, 3, 17, 2, 32, 99);
    EXPECT_EQ(w.status(), Warp::Status::Running);
    EXPECT_EQ(w.ctaSlot(), 3u);
    EXPECT_EQ(w.ctaId(), 17u);
    EXPECT_EQ(w.warpInCta(), 2u);
    EXPECT_EQ(w.ageStamp(), 99u);
    EXPECT_EQ(w.fullMask(), kFullMask);
    EXPECT_EQ(w.stack().pc(), 0u);
    EXPECT_EQ(w.reg(0)[5], 0u);         // registers zeroed
}

TEST(Warp, PartialWarpMask)
{
    Kernel k = tinyKernel();
    Warp w;
    w.launch(k, 0, 0, 0, 7, 0);
    EXPECT_EQ(w.fullMask(), firstLanes(7));
    EXPECT_EQ(w.stack().mask(), firstLanes(7));
}

TEST(Warp, TidMapping)
{
    Kernel k = tinyKernel();
    Warp w;
    w.launch(k, 0, 0, 3, 32, 0);        // fourth warp of the CTA
    EXPECT_EQ(w.tid(0), 96u);
    EXPECT_EQ(w.tid(31), 127u);
}

TEST(Warp, PredicateMaskedUpdate)
{
    Kernel k = tinyKernel();
    Warp w;
    w.launch(k, 0, 0, 0, 32, 0);
    w.setPred(0, 0xFFFFFFFFu, 0x0000FFFFu);     // low half only
    EXPECT_EQ(w.pred(0), 0x0000FFFFu);
    w.setPred(0, 0x0u, 0x000000FFu);            // clear low byte
    EXPECT_EQ(w.pred(0), 0x0000FF00u);
}

TEST(Warp, GuardLanes)
{
    Kernel k = tinyKernel();
    Warp w;
    w.launch(k, 0, 0, 0, 32, 0);
    w.setPred(0, 0x000000FFu, kFullMask);

    Instruction in;
    in.op = Opcode::Mov;
    EXPECT_EQ(w.guardLanes(in, kFullMask), kFullMask);  // unguarded

    in.guardPred = 0;
    EXPECT_EQ(w.guardLanes(in, kFullMask), 0x000000FFu);
    in.guardNegate = true;
    EXPECT_EQ(w.guardLanes(in, kFullMask), ~0x000000FFu);
    // Guard composes with the active mask.
    EXPECT_EQ(w.guardLanes(in, 0x0F0F0F0Fu), 0x0F0F0F00u);
}

TEST(Warp, ResetReturnsToIdle)
{
    Kernel k = tinyKernel();
    Warp w;
    w.launch(k, 0, 0, 0, 32, 0);
    w.reset();
    EXPECT_EQ(w.status(), Warp::Status::Idle);
    EXPECT_EQ(w.kernel(), nullptr);
    // Relaunch works.
    w.launch(k, 1, 2, 3, 16, 4);
    EXPECT_EQ(w.status(), Warp::Status::Running);
}

TEST(Warp, RelaunchBusySlotDies)
{
    Kernel k = tinyKernel();
    Warp w;
    w.launch(k, 0, 0, 0, 32, 0);
    EXPECT_DEATH(w.launch(k, 0, 0, 0, 32, 0), "busy warp slot");
}

TEST(Warp, RegisterOutOfRangeDies)
{
    Kernel k = tinyKernel();                    // 2 registers
    Warp w;
    w.launch(k, 0, 0, 0, 32, 0);
    EXPECT_DEATH(w.reg(5), "out of range");
    EXPECT_DEATH(w.pred(3), "out of range");
}

} // namespace
} // namespace warpcomp
