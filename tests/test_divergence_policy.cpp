/**
 * @file
 * Tests for the Sec. 5.2 divergence-policy ablation: the shipped
 * write-uncompressed + dummy-MOV policy against the merge-recompress
 * buffer alternative. Both must be functionally identical; they differ
 * only in MOV counts, compression state, and bank traffic.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "isa/builder.hpp"
#include "workloads/workload.hpp"

namespace warpcomp {
namespace {

class DivergencePolicyTest : public ::testing::Test
{
  protected:
    DivergencePolicyTest() : gmem_(8 << 20), cmem_(64) {}

    /** Uniform write, divergent rewrite, store — the MOV trigger. */
    Kernel
    divergentRewriteKernel(u64 out)
    {
        KernelBuilder b("divrw");
        Reg lane = b.newReg(), v = b.newReg();
        Pred p = b.newPred();
        b.s2r(lane, SpecialReg::LaneId);
        b.movImm(v, 7);
        b.isetp(p, CmpOp::Lt, lane, KernelBuilder::imm(16));
        b.if_(p, [&] { b.iadd(v, v, KernelBuilder::imm(1)); });
        Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
        b.s2r(tid, SpecialReg::TidX);
        b.s2r(bid, SpecialReg::CtaIdX);
        b.s2r(ntid, SpecialReg::NTidX);
        Reg gid = b.newReg(), addr = b.newReg();
        b.imad(gid, bid, ntid, tid);
        b.imad(addr, gid, KernelBuilder::imm(4),
               KernelBuilder::imm(static_cast<i32>(out)));
        b.stg(addr, v);
        return b.build();
    }

    RunResult
    runWith(const Kernel &k, DivergencePolicy policy)
    {
        GpuParams gp;
        gp.numSms = 1;
        gp.sm.divPolicy = policy;
        gp.sm.applyScheme();
        Gpu gpu(gp, gmem_, cmem_);
        return gpu.run(k, {128, 2});
    }

    GlobalMemory gmem_;
    ConstantMemory cmem_;
};

TEST_F(DivergencePolicyTest, MergeRecompressInjectsNoMovs)
{
    const u64 out = gmem_.alloc(4 * 256);
    const Kernel k = divergentRewriteKernel(out);
    const RunResult unc = runWith(k, DivergencePolicy::WriteUncompressed);
    const RunResult mrg = runWith(k, DivergencePolicy::MergeRecompress);
    EXPECT_GT(unc.stats.dummyMovs, 0u);
    EXPECT_EQ(mrg.stats.dummyMovs, 0u);
}

TEST_F(DivergencePolicyTest, BothPoliciesProduceIdenticalResults)
{
    const u64 out_a = gmem_.alloc(4 * 256);
    const u64 out_b = gmem_.alloc(4 * 256);
    runWith(divergentRewriteKernel(out_a),
            DivergencePolicy::WriteUncompressed);
    runWith(divergentRewriteKernel(out_b),
            DivergencePolicy::MergeRecompress);
    for (u32 i = 0; i < 256; ++i) {
        EXPECT_EQ(gmem_.read32(out_a + 4ull * i),
                  gmem_.read32(out_b + 4ull * i)) << i;
        const u32 expect = (i % 32) < 16 ? 8 : 7;
        EXPECT_EQ(gmem_.read32(out_a + 4ull * i), expect);
    }
}

TEST_F(DivergencePolicyTest, MergeKeepsDivergentWritesCompressed)
{
    const u64 out = gmem_.alloc(4 * 256);
    const Kernel k = divergentRewriteKernel(out);
    const RunResult unc = runWith(k, DivergencePolicy::WriteUncompressed);
    const RunResult mrg = runWith(k, DivergencePolicy::MergeRecompress);
    // The merged register (7s and 8s, delta 1) recompresses; the
    // shipped policy stores it uncompressed.
    EXPECT_GT(mrg.stats.writesStoredCompressed,
              unc.stats.writesStoredCompressed);
}

TEST_F(DivergencePolicyTest, MergeChargesExtraSourceReads)
{
    const u64 out = gmem_.alloc(4 * 256);
    const Kernel k = divergentRewriteKernel(out);
    const RunResult mrg = runWith(k, DivergencePolicy::MergeRecompress);
    // The divergent IADD reads v (source) and merges the old content;
    // compression activations must cover the divergent write too.
    EXPECT_GT(mrg.meter.compActivations(), 0u);
    EXPECT_GT(mrg.meter.decompActivations(), 0u);
}

TEST_F(DivergencePolicyTest, SuiteWorkloadRunsUnderMergePolicy)
{
    ExperimentConfig cfg;
    cfg.divPolicy = DivergencePolicy::MergeRecompress;
    cfg.numSms = 4;
    const ExperimentResult r = runWorkload("dwt2d", cfg);
    EXPECT_GT(r.run.cycles, 0u);
    EXPECT_EQ(r.run.stats.dummyMovs, 0u);
}

TEST(AblationKnobs, GatingDisableReachesRegFile)
{
    ExperimentConfig cfg;
    cfg.enableGating = false;
    const GpuParams gp = makeGpuParams(cfg);
    EXPECT_FALSE(gp.sm.regfile.gatingEnabled);
    // Compression is still on.
    EXPECT_TRUE(gp.sm.compressionEnabled());
    EXPECT_FALSE(gp.sm.regfile.validAtAlloc);
}

TEST(AblationKnobs, WakeupAndUnitCountsPropagate)
{
    ExperimentConfig cfg;
    cfg.wakeupLatency = 40;
    cfg.numCompressors = 1;
    cfg.numDecompressors = 8;
    const GpuParams gp = makeGpuParams(cfg);
    EXPECT_EQ(gp.sm.regfile.wakeupLatency, 40u);
    EXPECT_EQ(gp.sm.numCompressors, 1u);
    EXPECT_EQ(gp.sm.numDecompressors, 8u);
}

TEST(AblationKnobs, NoGatingMeansNoGatedCycles)
{
    ExperimentConfig cfg;
    cfg.enableGating = false;
    cfg.numSms = 2;
    const ExperimentResult r = runWorkload("stencil", cfg);
    for (double frac : r.run.bankGatedFraction)
        EXPECT_DOUBLE_EQ(frac, 0.0);
}

TEST(AblationKnobs, FewerUnitsNeverFaster)
{
    ExperimentConfig small;
    small.numCompressors = 1;
    small.numDecompressors = 1;
    small.numSms = 2;
    ExperimentConfig big = small;
    big.numCompressors = 4;
    big.numDecompressors = 8;
    const ExperimentResult rs = runWorkload("lud", small);
    const ExperimentResult rb = runWorkload("lud", big);
    EXPECT_GE(rs.run.cycles, rb.run.cycles);
}

} // namespace
} // namespace warpcomp
