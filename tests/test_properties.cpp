/**
 * @file
 * Cross-cutting property sweeps: register-file geometry variants,
 * energy-model linearity under re-pricing, disassembler coverage of
 * the whole opcode table, stats merging, and multi-SM equivalence
 * invariants.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "isa/disasm.hpp"
#include "regfile/regfile.hpp"

namespace warpcomp {
namespace {

/** Register-file geometry sweep: (banks, entries). */
class RegFileGeometry
    : public ::testing::TestWithParam<std::pair<u32, u32>>
{
};

TEST_P(RegFileGeometry, AllocatesAndLocatesConsistently)
{
    const auto [banks, entries] = GetParam();
    RegFileParams p;
    p.numBanks = banks;
    p.entriesPerBank = entries;
    p.gatingEnabled = true;
    p.validAtAlloc = false;
    RegisterFile rf(p);

    EXPECT_EQ(rf.numBanks(), banks);
    EXPECT_EQ(p.numClusters(), banks / kBanksPerWarpReg);
    EXPECT_EQ(p.totalWarpRegs(), p.numClusters() * entries);

    // Fill the file completely in 16-register slots.
    const u32 slots = p.totalWarpRegs() / 16;
    for (u32 s = 0; s < slots; ++s)
        ASSERT_TRUE(rf.allocate(s, 16, 0)) << s;
    EXPECT_FALSE(rf.canAllocate(1));

    // Every located register stays within bounds and within its
    // cluster's bank range.
    for (u32 s = 0; s < slots; s += 7) {
        for (u32 r = 0; r < 16; r += 5) {
            const RegSlot loc = rf.locate(s, r);
            EXPECT_LT(loc.cluster, p.numClusters());
            EXPECT_LT(loc.entry, entries);
            EXPECT_LE(loc.firstBank() + kBanksPerWarpReg, banks);
        }
    }

    // Release everything; the file must be whole again.
    for (u32 s = 0; s < slots; ++s)
        rf.release(s, 10);
    EXPECT_TRUE(rf.allocate(0, p.totalWarpRegs(), 20));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RegFileGeometry,
    ::testing::Values(std::make_pair(32u, 256u),   // Table 2
                      std::make_pair(32u, 128u),   // half-size RF
                      std::make_pair(64u, 256u),   // doubled banks
                      std::make_pair(16u, 64u),    // small embedded
                      std::make_pair(8u, 32u)));   // single cluster

/** Energy re-pricing must be linear in each knob. */
TEST(EnergyLinearity, AccessScale)
{
    EnergyParams p;
    EnergyMeter m(p, 2, 4);
    m.addBankReads(123);
    m.addBankWrites(45);
    m.addCompActivations(6);
    m.addCycles(1000);
    m.addAwakeBankCycles(32000);

    EnergyParams a = p, b = p;
    a.accessScale = 1.5;
    b.accessScale = 3.0;
    const double base_dyn = m.breakdownWith(p).dynamicPj();
    EXPECT_NEAR(m.breakdownWith(a).dynamicPj(), 1.5 * base_dyn, 1e-6);
    EXPECT_NEAR(m.breakdownWith(b).dynamicPj(), 3.0 * base_dyn, 1e-6);
    // Leakage is unaffected by the access knob.
    EXPECT_DOUBLE_EQ(m.breakdownWith(a).leakagePj(),
                     m.breakdownWith(p).leakagePj());
}

TEST(EnergyLinearity, WireActivityIsAffine)
{
    EnergyParams p;
    EnergyMeter m(p, 0, 0);
    m.addBankReads(100);

    auto wire_at = [&](double act) {
        EnergyParams q = p;
        q.wireActivity = act;
        return m.breakdownWith(q).wireDynamicPj;
    };
    // Halfway activity = halfway energy (affine through zero).
    EXPECT_NEAR(wire_at(0.5), (wire_at(0.0) + wire_at(1.0)) / 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(wire_at(0.0), 0.0);
}

TEST(EnergyLinearity, LeakageScalesWithTime)
{
    EnergyParams p;
    EnergyMeter m1(p, 2, 4), m2(p, 2, 4);
    m1.addCycles(1000);
    m1.addAwakeBankCycles(32 * 1000);
    m2.addCycles(3000);
    m2.addAwakeBankCycles(32 * 3000);
    EXPECT_NEAR(m2.breakdown().leakagePj(),
                3.0 * m1.breakdown().leakagePj(), 1e-6);
}

/** Every opcode must disassemble to its table mnemonic. */
class DisasmCoverage : public ::testing::TestWithParam<int>
{
};

TEST_P(DisasmCoverage, MnemonicPresent)
{
    const Opcode op = static_cast<Opcode>(GetParam());
    Instruction in;
    in.op = op;
    if (writesGpr(op))
        in.dst = 1;
    if (writesPred(op))
        in.dstPred = 0;
    if (op == Opcode::PAnd || op == Opcode::POr || op == Opcode::PNot) {
        in.srcPred = 0;
        in.srcPred2 = op == Opcode::PNot ? kNoPred : 1;
    }
    const std::string text = disassemble(in);
    EXPECT_NE(text.find(opcodeName(op)), std::string::npos) << text;
    // Every opcode belongs to a class and has a defined writer role.
    (void)execClass(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, DisasmCoverage,
    ::testing::Range(0, static_cast<int>(Opcode::NumOpcodes)));

TEST(SimStatsMerge, AllFieldsAccumulate)
{
    SimStats a, b;
    a.issued = 10;
    a.dummyMovs = 1;
    a.bdiSelect[2] = 5;
    a.compressedFracSum[kDivergent] = 0.5;
    a.compressedFracSamples[kDivergent] = 1;
    b.issued = 20;
    b.issuedDivergent = 4;
    b.regWrites = 7;
    b.bdiSelect[2] = 3;
    b.bdiSelect[7] = 2;
    a.merge(b);
    EXPECT_EQ(a.issued, 30u);
    EXPECT_EQ(a.issuedDivergent, 4u);
    EXPECT_EQ(a.regWrites, 7u);
    EXPECT_EQ(a.dummyMovs, 1u);
    EXPECT_EQ(a.bdiSelect[2], 8u);
    EXPECT_EQ(a.bdiSelect[7], 2u);
    EXPECT_DOUBLE_EQ(a.compressedFraction(kDivergent), 0.5);
}

TEST(MultiSm, SameWorkPerSmCountInvariants)
{
    // Splitting the grid across more SMs must not change what was
    // computed, only when: instruction counts and register writes are
    // machine-size independent.
    ExperimentConfig one;
    one.numSms = 1;
    ExperimentConfig four;
    four.numSms = 4;
    const ExperimentResult r1 = runWorkload("nw", one);
    const ExperimentResult r4 = runWorkload("nw", four);
    EXPECT_EQ(r1.run.stats.issued, r4.run.stats.issued);
    EXPECT_EQ(r1.run.stats.regWrites, r4.run.stats.regWrites);
    EXPECT_EQ(r1.run.ctas, r4.run.ctas);
    EXPECT_LE(r4.run.cycles, r1.run.cycles);
}

TEST(MultiSm, BankAccessesMachineIndependent)
{
    ExperimentConfig one;
    one.numSms = 2;
    ExperimentConfig two;
    two.numSms = 8;
    const ExperimentResult a = runWorkload("stencil", one);
    const ExperimentResult c = runWorkload("stencil", two);
    EXPECT_EQ(a.run.meter.bankAccesses(), c.run.meter.bankAccesses());
    EXPECT_EQ(a.run.meter.compActivations(),
              c.run.meter.compActivations());
}

TEST(Reproducibility, WholeSuiteStatsStableAcrossProcessRuns)
{
    // Deterministic seeds + deterministic sim: two in-process builds of
    // the same workload produce byte-identical inputs.
    WorkloadInstance a = makeWorkload("spmv");
    WorkloadInstance b = makeWorkload("spmv");
    EXPECT_EQ(a.kernel.size(), b.kernel.size());
    for (u32 addr = 0; addr < 1024; addr += 4)
        EXPECT_EQ(a.gmem->read32(addr), b.gmem->read32(addr));
}

} // namespace
} // namespace warpcomp
