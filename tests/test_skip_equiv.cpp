/**
 * @file
 * Differential testing of event-driven idle-cycle skipping: for every
 * registered workload, a run with skipping enabled must be
 * bit-identical to per-cycle stepping — same cycle count, same energy
 * events, same SEU flip stream, same fault census, same structured
 * stats document, same final memory image. The harness thread count
 * must be equally invisible. Anything less means skipCycles
 * bulk-accounted a span that was not actually uneventful.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/json_writer.hpp"
#include "harness/experiment.hpp"
#include "obs/stats_json.hpp"
#include "sim/gpu.hpp"
#include "workloads/registry.hpp"

namespace warpcomp {
namespace {

/** Everything observable from one run, serialized for equality. */
struct RunImage
{
    std::string statsJson;      ///< full structured-stats document
    std::vector<u8> gmem;       ///< final global-memory image
    Cycle cycles = 0;
};

std::string
toStatsJson(const RunResult &run, u32 num_sms)
{
    std::ostringstream os;
    JsonWriter w(os);
    writeRunStatsJson(w, run, num_sms);
    return os.str();
}

RunImage
runImage(const std::string &name, ExperimentConfig cfg)
{
    WorkloadInstance wl = makeWorkload(name, cfg.scale, cfg.seedSalt);
    Gpu gpu(makeGpuParams(cfg), *wl.gmem, *wl.cmem);
    const RunResult run = gpu.run(wl.kernel, wl.dims);
    RunImage out;
    out.statsJson = toStatsJson(run, cfg.numSms);
    const auto img = wl.gmem->bytes();
    out.gmem.assign(img.begin(), img.end());
    out.cycles = run.cycles;
    return out;
}

/** Run @p name under @p cfg with skipping on and off and require the
 *  two runs to be indistinguishable. */
void
expectSkipInvisible(const std::string &name, ExperimentConfig cfg,
                    const char *what)
{
    cfg.skipIdle = true;
    const RunImage on = runImage(name, cfg);
    cfg.skipIdle = false;
    const RunImage off = runImage(name, cfg);

    EXPECT_EQ(on.cycles, off.cycles) << what << ": cycle count differs";
    EXPECT_EQ(on.statsJson, off.statsJson)
        << what << ": structured stats diverge";
    EXPECT_TRUE(on.gmem == off.gmem)
        << what << ": final memory image diverges";
}

class SkipEquiv : public ::testing::TestWithParam<std::string>
{};

TEST_P(SkipEquiv, SkipMatchesPerCycleStepping)
{
    ExperimentConfig cfg;
    cfg.numSms = 2;                 // keep the full-registry sweep quick
    expectSkipInvisible(GetParam(), cfg, "warped");

    cfg.scheme = CompressionScheme::None;
    expectSkipInvisible(GetParam(), cfg, "uncompressed");
}

TEST_P(SkipEquiv, SkipMatchesUnderSeuAndScrub)
{
    // The scrub engine ticks on a fixed interval and the SEU flip
    // stream is a per-cycle function of (seed, cycle): both must be
    // replayed exactly across any skipped span.
    ExperimentConfig cfg;
    cfg.numSms = 2;
    cfg.seu.flipsPerCycle = 0.01;
    cfg.seu.scheme = SeuScheme::EccScrub;
    cfg.seu.scrubInterval = 64;
    expectSkipInvisible(GetParam(), cfg, "seu+scrub");
}

TEST_P(SkipEquiv, SkipMatchesUnderStuckAtFaults)
{
    ExperimentConfig cfg;
    cfg.numSms = 2;
    cfg.faults.ber = 1e-5;
    cfg.faults.policy = FaultPolicy::DisableEntry;
    expectSkipInvisible(GetParam(), cfg, "stuck-at faults");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SkipEquiv,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

/** The share-nothing parallel harness must produce bit-identical
 *  results at any worker count, with skipping on or off. */
TEST(SkipEquivHarness, ThreadCountIsInvisible)
{
    ExperimentConfig cfg;
    cfg.numSms = 2;
    for (const bool skip : {true, false}) {
        cfg.skipIdle = skip;
        const auto serial =
            runWorkloadsParallel(workloadNames(), cfg, 1);
        const auto parallel =
            runWorkloadsParallel(workloadNames(), cfg, 4);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].workload, parallel[i].workload);
            EXPECT_EQ(toStatsJson(serial[i].run, cfg.numSms),
                      toStatsJson(parallel[i].run, cfg.numSms))
                << serial[i].workload << " (skip=" << skip
                << "): stats differ across thread counts";
        }
    }
}

} // namespace
} // namespace warpcomp
