/**
 * @file
 * Differential suite for the two kernel frontends: every checked-in
 * RV32 example image must translate to the exact instruction stream
 * its hand-written DSL twin emits (disassembly equality), and running
 * both through the full timing model must produce bit-identical
 * figure-level stats — serially and on the parallel runner. Any drift
 * in the translator, the builder, or the examples breaks this suite.
 *
 * WC_KERNEL_DIR points at the source-tree examples/kernels directory
 * (set in tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include "frontend/frontend.hpp"
#include "frontend/twins.hpp"
#include "harness/experiment.hpp"
#include "isa/disasm.hpp"

using namespace warpcomp;

namespace {

struct Pair
{
    const char *file;   ///< image under WC_KERNEL_DIR
    const char *twin;   ///< registry name of the DSL twin
};

const Pair kPairs[] = {
    {"vecadd.hex", "vecadd"},
    {"saxpy.hex", "saxpy"},
    {"reduction.hex", "reduction"},
};

std::string
imagePath(const char *file)
{
    return std::string(WC_KERNEL_DIR) + "/" + file;
}

class FrontendDiff : public ::testing::TestWithParam<Pair>
{
};

} // namespace

TEST_P(FrontendDiff, DisassemblyMatchesTwin)
{
    const Pair p = GetParam();
    const KernelLoadResult r = loadKernelFile(imagePath(p.file));
    ASSERT_TRUE(r.ok()) << r.error;

    const WorkloadInstance twin = makeWorkload(p.twin, 1, 0);
    // Full-listing equality: same name/regs/preds/smem header and the
    // same instruction stream, operand for operand.
    EXPECT_EQ(disassemble(r.loaded->kernel), disassemble(twin.kernel));
    EXPECT_EQ(r.loaded->blockDim, twin.dims.blockDim);
}

TEST_P(FrontendDiff, FigureStatsAreBitIdentical)
{
    const Pair p = GetParam();
    ExperimentConfig cfg;
    cfg.numSms = 2; // keep the differential fast; identical for both

    const auto res = runWorkloadsParallel(
        {kernelFileSpec(imagePath(p.file), ""), p.twin}, cfg, 1);
    ASSERT_EQ(res.size(), 2u);
    const RunResult &bin = res[0].run;
    const RunResult &dsl = res[1].run;

    EXPECT_EQ(res[0].frontend, "rv32");
    EXPECT_EQ(res[0].imageSha.size(), 64u);
    EXPECT_EQ(res[1].frontend, "dsl");
    EXPECT_TRUE(res[1].imageSha.empty());

    // Exact equality, not tolerance: the two frontends execute the
    // same instruction stream, so every figure-level number matches
    // to the bit.
    EXPECT_EQ(bin.cycles, dsl.cycles);
    EXPECT_EQ(bin.stats.issued, dsl.stats.issued);
    EXPECT_EQ(bin.stats.regWrites, dsl.stats.regWrites);
    EXPECT_EQ(bin.stats.dummyMovs, dsl.stats.dummyMovs);
    EXPECT_EQ(bin.stats.ratio.overallRatio(), dsl.stats.ratio.overallRatio());
    EXPECT_EQ(bin.meter.breakdown().totalPj(), dsl.meter.breakdown().totalPj());
}

TEST_P(FrontendDiff, ParallelRunnerIsThreadCountInvariant)
{
    const Pair p = GetParam();
    ExperimentConfig cfg;
    cfg.numSms = 2;

    const std::vector<std::string> names = {
        kernelFileSpec(imagePath(p.file), "")};
    const auto serial = runWorkloadsParallel(names, cfg, 1);
    const auto threaded = runWorkloadsParallel(names, cfg, 4);
    ASSERT_EQ(serial.size(), 1u);
    ASSERT_EQ(threaded.size(), 1u);
    EXPECT_EQ(serial[0].run.cycles, threaded[0].run.cycles);
    EXPECT_EQ(serial[0].run.stats.issued, threaded[0].run.stats.issued);
    EXPECT_EQ(serial[0].run.meter.breakdown().totalPj(),
              threaded[0].run.meter.breakdown().totalPj());
    EXPECT_EQ(serial[0].imageSha, threaded[0].imageSha);
}

INSTANTIATE_TEST_SUITE_P(
    AllExampleKernels, FrontendDiff, ::testing::ValuesIn(kPairs),
    [](const ::testing::TestParamInfo<Pair> &info) {
        return std::string(info.param.twin);
    });
