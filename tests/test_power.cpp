/**
 * @file
 * Energy-model tests: Table 3 constants, the per-event accounting, the
 * post-processing parameter sweeps (Secs. 6.7-6.8), and breakdown
 * arithmetic.
 */

#include <gtest/gtest.h>

#include "power/energy_meter.hpp"

namespace warpcomp {
namespace {

TEST(EnergyParams, Table3Defaults)
{
    EnergyParams p;
    EXPECT_DOUBLE_EQ(p.bankAccessPj, 7.0);
    EXPECT_DOUBLE_EQ(p.bankLeakMw, 5.8);
    EXPECT_DOUBLE_EQ(p.compPj, 23.0);
    EXPECT_DOUBLE_EQ(p.decompPj, 21.0);
    EXPECT_DOUBLE_EQ(p.compLeakMw, 0.12);
    EXPECT_DOUBLE_EQ(p.decompLeakMw, 0.08);
    // Wire energy at default activity reproduces Table 3's 9.6 pJ/mm.
    EXPECT_NEAR(p.wirePjPerBankTransfer(), 9.6, 1e-9);
}

TEST(EnergyParams, CycleTime)
{
    EnergyParams p;
    EXPECT_NEAR(p.cycleSeconds(), 1.0 / 1.4e9, 1e-15);
}

TEST(EnergyMeter, DynamicAccounting)
{
    EnergyParams p;
    EnergyMeter m(p, 0, 0);
    m.addBankReads(10);
    m.addBankWrites(5);
    const EnergyBreakdown e = m.breakdown();
    EXPECT_NEAR(e.bankDynamicPj, 15 * 7.0, 1e-9);
    EXPECT_NEAR(e.wireDynamicPj, 15 * 9.6, 1e-9);
    EXPECT_DOUBLE_EQ(e.compressionPj, 0.0);
}

TEST(EnergyMeter, CompressionAccounting)
{
    EnergyParams p;
    EnergyMeter m(p, 2, 4);
    m.addCompActivations(3);
    m.addDecompActivations(7);
    const EnergyBreakdown e = m.breakdown();
    EXPECT_NEAR(e.compressionPj, 3 * 23.0, 1e-9);
    EXPECT_NEAR(e.decompressionPj, 7 * 21.0, 1e-9);
}

TEST(EnergyMeter, LeakageAccounting)
{
    EnergyParams p;
    EnergyMeter m(p, 2, 4);
    m.addCycles(1'400'000'000);        // one second of simulated time
    m.addAwakeBankCycles(1'400'000'000);   // one bank awake throughout
    const EnergyBreakdown e = m.breakdown();
    // One bank leaking 5.8 mW for 1 s = 5.8 mJ = 5.8e9 pJ.
    EXPECT_NEAR(e.bankLeakagePj, 5.8e9, 1e3);
    // Units: 2x0.12 + 4x0.08 = 0.56 mW for 1 s.
    EXPECT_NEAR(e.unitLeakagePj, 0.56e9, 1e3);
}

TEST(EnergyMeter, BaselineHasNoUnitLeakage)
{
    EnergyParams p;
    EnergyMeter m(p, 0, 0);
    m.addCycles(1000);
    EXPECT_DOUBLE_EQ(m.breakdown().unitLeakagePj, 0.0);
}

TEST(EnergyMeter, AccessScaleSweep)
{
    EnergyParams p;
    EnergyMeter m(p, 0, 0);
    m.addBankReads(100);

    EnergyParams scaled = p;
    scaled.accessScale = 2.5;
    const EnergyBreakdown base = m.breakdown();
    const EnergyBreakdown hi = m.breakdownWith(scaled);
    EXPECT_NEAR(hi.bankDynamicPj, 2.5 * base.bankDynamicPj, 1e-9);
    EXPECT_NEAR(hi.wireDynamicPj, 2.5 * base.wireDynamicPj, 1e-9);
    EXPECT_DOUBLE_EQ(hi.bankLeakagePj, base.bankLeakagePj);
}

TEST(EnergyMeter, CompDecompScaleSweep)
{
    EnergyParams p;
    EnergyMeter m(p, 2, 4);
    m.addCompActivations(10);
    m.addDecompActivations(10);

    EnergyParams scaled = p;
    scaled.compDecompScale = 1.5;
    const EnergyBreakdown hi = m.breakdownWith(scaled);
    EXPECT_NEAR(hi.compressionPj, 1.5 * 10 * 23.0, 1e-9);
    EXPECT_NEAR(hi.decompressionPj, 1.5 * 10 * 21.0, 1e-9);
}

TEST(EnergyMeter, WireActivitySweep)
{
    EnergyParams p;
    EnergyMeter m(p, 0, 0);
    m.addBankReads(10);

    EnergyParams full = p;
    full.wireActivity = 1.0;
    EXPECT_NEAR(m.breakdownWith(full).wireDynamicPj, 10 * 38.4, 1e-9);
    EnergyParams off = p;
    off.wireActivity = 0.0;
    EXPECT_DOUBLE_EQ(m.breakdownWith(off).wireDynamicPj, 0.0);
}

TEST(EnergyMeter, MergeSumsEvents)
{
    EnergyParams p;
    EnergyMeter a(p, 2, 4), b(p, 2, 4);
    a.addBankReads(10);
    b.addBankReads(20);
    b.addCompActivations(5);
    a.merge(b);
    EXPECT_EQ(a.bankReads(), 30u);
    EXPECT_EQ(a.compActivations(), 5u);
}

TEST(EnergyBreakdown, TotalsAddUp)
{
    EnergyBreakdown e;
    e.bankDynamicPj = 1;
    e.wireDynamicPj = 2;
    e.compressionPj = 3;
    e.decompressionPj = 4;
    e.bankLeakagePj = 5;
    e.unitLeakagePj = 6;
    EXPECT_DOUBLE_EQ(e.dynamicPj(), 3.0);
    EXPECT_DOUBLE_EQ(e.leakagePj(), 11.0);
    EXPECT_DOUBLE_EQ(e.totalPj(), 21.0);
}

} // namespace
} // namespace warpcomp
