/**
 * @file
 * Functional-execution tests: opcode semantics, guard predication,
 * special registers, memory spaces, branch divergence through complete
 * kernels, and exit handling — all run on a single warp.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/bitops.hpp"
#include "isa/builder.hpp"
#include "sim/functional.hpp"

namespace warpcomp {
namespace {

/** Runs a kernel functionally on one warp to completion. */
class FexTest : public ::testing::Test
{
  protected:
    FexTest() : gmem_(1 << 20), cmem_(1024), fex_(gmem_, cmem_) {}

    /** Execute @p k on a fresh full warp; returns instruction count. */
    u32
    run(const Kernel &k, u32 lanes = kWarpSize)
    {
        kernel_ = k;
        warp_.reset();
        warp_.launch(kernel_, 0, 0, 0, lanes, 0);
        u32 executed = 0;
        while (!warp_.stack().empty()) {
            warp_.stack().popReconverged();
            if (warp_.stack().empty())
                break;
            const u32 pc = warp_.stack().pc();
            fex_.execute(warp_, pc, smem_.get(), dims_);
            ++executed;
            EXPECT_LT(executed, 100000u) << "kernel did not terminate";
            if (executed >= 100000u)
                break;
        }
        return executed;
    }

    GlobalMemory gmem_;
    ConstantMemory cmem_;
    FunctionalExecutor fex_;
    std::unique_ptr<SharedMemory> smem_;
    Warp warp_;
    Kernel kernel_{"empty", 1, 1};
    LaunchDims dims_{256, 4};
};

TEST_F(FexTest, IntegerAluSemantics)
{
    KernelBuilder b("alu");
    Reg a = b.newReg(), c = b.newReg(), d = b.newReg();
    b.movImm(a, 10);
    b.iadd(c, a, KernelBuilder::imm(-3));
    b.imul(d, c, c);
    run(b.build());
    EXPECT_EQ(warp_.reg(1)[0], 7u);
    EXPECT_EQ(warp_.reg(2)[5], 49u);
}

TEST_F(FexTest, SignedMinMaxAbs)
{
    KernelBuilder b("mm");
    Reg a = b.newReg(), c = b.newReg(), mn = b.newReg(),
        mx = b.newReg(), ab = b.newReg();
    b.movImm(a, -5);
    b.movImm(c, 3);
    b.imin(mn, a, c);
    b.imax(mx, a, c);
    b.iabs(ab, a);
    run(b.build());
    EXPECT_EQ(static_cast<i32>(warp_.reg(2)[0]), -5);
    EXPECT_EQ(static_cast<i32>(warp_.reg(3)[0]), 3);
    EXPECT_EQ(warp_.reg(4)[0], 5u);
}

TEST_F(FexTest, ShiftSemantics)
{
    KernelBuilder b("sh");
    Reg a = b.newReg(), l = b.newReg(), r = b.newReg(),
        ar = b.newReg();
    b.movImm(a, -16);
    b.shl(l, a, KernelBuilder::imm(1));
    b.shr(r, a, KernelBuilder::imm(1));
    b.sra(ar, a, KernelBuilder::imm(1));
    run(b.build());
    EXPECT_EQ(static_cast<i32>(warp_.reg(1)[0]), -32);
    EXPECT_EQ(warp_.reg(2)[0], 0xFFFFFFF0u >> 1);
    EXPECT_EQ(static_cast<i32>(warp_.reg(3)[0]), -8);
}

TEST_F(FexTest, FloatPipeline)
{
    KernelBuilder b("fp");
    Reg x = b.newReg(), y = b.newReg(), z = b.newReg(),
        w = b.newReg();
    b.movFloat(x, 1.5f);
    b.movFloat(y, 2.0f);
    b.ffma(z, x, y, y);         // 1.5*2 + 2 = 5
    b.frcp(w, z);
    run(b.build());
    EXPECT_FLOAT_EQ(std::bit_cast<float>(warp_.reg(2)[0]), 5.0f);
    EXPECT_FLOAT_EQ(std::bit_cast<float>(warp_.reg(3)[0]), 0.2f);
}

TEST_F(FexTest, ConversionOps)
{
    KernelBuilder b("cvt");
    Reg i = b.newReg(), f = b.newReg(), back = b.newReg();
    b.movImm(i, -7);
    b.i2f(f, i);
    b.f2i(back, f);
    run(b.build());
    EXPECT_FLOAT_EQ(std::bit_cast<float>(warp_.reg(1)[0]), -7.0f);
    EXPECT_EQ(static_cast<i32>(warp_.reg(2)[0]), -7);
}

TEST_F(FexTest, SpecialRegistersPerLane)
{
    KernelBuilder b("s2r");
    Reg tid = b.newReg(), lane = b.newReg(), nt = b.newReg(),
        nc = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(lane, SpecialReg::LaneId);
    b.s2r(nt, SpecialReg::NTidX);
    b.s2r(nc, SpecialReg::NCtaIdX);
    run(b.build());
    for (u32 l = 0; l < kWarpSize; ++l) {
        EXPECT_EQ(warp_.reg(0)[l], l);          // warp 0 of the CTA
        EXPECT_EQ(warp_.reg(1)[l], l);
    }
    EXPECT_EQ(warp_.reg(2)[0], 256u);
    EXPECT_EQ(warp_.reg(3)[0], 4u);
}

TEST_F(FexTest, PredicatesAndSelect)
{
    KernelBuilder b("pred");
    Reg lane = b.newReg(), sel = b.newReg();
    Pred p = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.isetp(p, CmpOp::Lt, lane, KernelBuilder::imm(16));
    b.selp(sel, p, KernelBuilder::imm(100), KernelBuilder::imm(200));
    run(b.build());
    EXPECT_EQ(warp_.reg(1)[3], 100u);
    EXPECT_EQ(warp_.reg(1)[20], 200u);
}

TEST_F(FexTest, PredicateLogic)
{
    KernelBuilder b("plogic");
    Reg lane = b.newReg(), out = b.newReg();
    Pred lo = b.newPred(), even = b.newPred(), both = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.isetp(lo, CmpOp::Lt, lane, KernelBuilder::imm(8));
    Reg parity = b.newReg();
    b.and_(parity, lane, KernelBuilder::imm(1));
    b.isetp(even, CmpOp::Eq, parity, KernelBuilder::imm(0));
    b.pand(both, lo, even);
    b.selp(out, both, KernelBuilder::imm(1), KernelBuilder::imm(0));
    run(b.build());
    EXPECT_EQ(warp_.reg(1)[2], 1u);     // lane 2: low and even
    EXPECT_EQ(warp_.reg(1)[3], 0u);     // odd
    EXPECT_EQ(warp_.reg(1)[10], 0u);    // not low
}

TEST_F(FexTest, GuardMasksWrites)
{
    KernelBuilder b("guard");
    Reg lane = b.newReg(), out = b.newReg();
    Pred p = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.movImm(out, 11);
    b.isetp(p, CmpOp::Ge, lane, KernelBuilder::imm(16));
    b.predicated(p, false, [&] { b.movImm(out, 22); });
    run(b.build());
    EXPECT_EQ(warp_.reg(1)[0], 11u);
    EXPECT_EQ(warp_.reg(1)[31], 22u);
}

TEST_F(FexTest, GlobalMemoryRoundtrip)
{
    const u64 buf = gmem_.alloc(4 * kWarpSize);
    KernelBuilder b("gmem");
    Reg lane = b.newReg(), addr = b.newReg(), v = b.newReg();
    b.s2r(lane, SpecialReg::LaneId);
    b.imad(addr, lane, KernelBuilder::imm(4),
           KernelBuilder::imm(static_cast<i32>(buf)));
    b.stg(addr, lane);
    b.ldg(v, addr);
    run(b.build());
    for (u32 l = 0; l < kWarpSize; ++l) {
        EXPECT_EQ(gmem_.read32(buf + 4 * l), l);
        EXPECT_EQ(warp_.reg(2)[l], l);
    }
}

TEST_F(FexTest, SharedMemoryRoundtrip)
{
    smem_ = std::make_unique<SharedMemory>(256);
    KernelBuilder b("smem", 256);
    Reg lane = b.newReg(), addr = b.newReg(), v = b.newReg();
    b.s2r(lane, SpecialReg::LaneId);
    b.shl(addr, lane, KernelBuilder::imm(2));
    b.sts(addr, lane);
    b.lds(v, addr);
    run(b.build());
    EXPECT_EQ(warp_.reg(2)[9], 9u);
}

TEST_F(FexTest, ConstantMemoryRead)
{
    cmem_.push(777);
    KernelBuilder b("cmem");
    Reg v = b.newReg();
    b.ldc(v, KernelBuilder::imm(0));
    run(b.build());
    EXPECT_EQ(warp_.reg(0)[15], 777u);
}

TEST_F(FexTest, IfElseDivergenceMergesValues)
{
    KernelBuilder b("div");
    Reg lane = b.newReg(), out = b.newReg();
    Pred p = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.isetp(p, CmpOp::Lt, lane, KernelBuilder::imm(10));
    b.ifElse_(p, [&] { b.movImm(out, 1); }, [&] { b.movImm(out, 2); });
    run(b.build());
    for (u32 l = 0; l < kWarpSize; ++l)
        EXPECT_EQ(warp_.reg(1)[l], l < 10 ? 1u : 2u);
    EXPECT_EQ(warp_.stack().depth(), 0u);   // fully drained
}

TEST_F(FexTest, DivergentLoopTripCounts)
{
    // Each lane iterates (lane % 4) + 1 times.
    KernelBuilder b("dloop");
    Reg lane = b.newReg(), n = b.newReg(), i = b.newReg(),
        count = b.newReg();
    b.s2r(lane, SpecialReg::LaneId);
    b.and_(n, lane, KernelBuilder::imm(3));
    b.iadd(n, n, KernelBuilder::imm(1));
    b.movImm(count, 0);
    b.forRange(i, KernelBuilder::imm(0), n, 1, [&] {
        b.iadd(count, count, KernelBuilder::imm(10));
    });
    run(b.build());
    for (u32 l = 0; l < kWarpSize; ++l)
        EXPECT_EQ(warp_.reg(3)[l], ((l % 4) + 1) * 10);
}

TEST_F(FexTest, NestedDivergence)
{
    KernelBuilder b("nest");
    Reg lane = b.newReg(), out = b.newReg();
    Pred outer = b.newPred(), inner = b.newPred();
    b.s2r(lane, SpecialReg::LaneId);
    b.movImm(out, 0);
    b.isetp(outer, CmpOp::Lt, lane, KernelBuilder::imm(16));
    b.if_(outer, [&] {
        b.isetp(inner, CmpOp::Lt, lane, KernelBuilder::imm(8));
        b.ifElse_(inner, [&] { b.movImm(out, 1); },
                  [&] { b.movImm(out, 2); });
    });
    run(b.build());
    for (u32 l = 0; l < kWarpSize; ++l) {
        const u32 expect = l < 8 ? 1 : (l < 16 ? 2 : 0);
        EXPECT_EQ(warp_.reg(1)[l], expect);
    }
}

TEST_F(FexTest, GuardedExitKillsSubsetOnly)
{
    // Lanes >= 8 exit early; the rest write a marker. Built by hand
    // because the builder has no early-exit construct.
    Kernel k("gexit", 2, 1);
    Instruction s2r;
    s2r.op = Opcode::S2R;
    s2r.dst = 0;
    s2r.sreg = SpecialReg::LaneId;
    k.append(s2r);
    Instruction zero;
    zero.op = Opcode::MovImm;
    zero.dst = 1;
    zero.src[0] = Operand::fromImm(0);
    k.append(zero);
    Instruction setp;
    setp.op = Opcode::ISetP;
    setp.dstPred = 0;
    setp.cmp = CmpOp::Ge;
    setp.src[0] = Operand::fromReg(0);
    setp.src[1] = Operand::fromImm(8);
    k.append(setp);
    Instruction gexit;
    gexit.op = Opcode::Exit;
    gexit.guardPred = 0;
    k.append(gexit);
    Instruction mark;
    mark.op = Opcode::MovImm;
    mark.dst = 1;
    mark.src[0] = Operand::fromImm(99);
    k.append(mark);
    Instruction ex;
    ex.op = Opcode::Exit;
    k.append(ex);
    k.validate();

    run(k);
    EXPECT_EQ(warp_.reg(1)[0], 99u);
    EXPECT_EQ(warp_.reg(1)[8], 0u);     // exited before the marker
}

TEST_F(FexTest, PartialWarpLaunch)
{
    KernelBuilder b("partial");
    Reg lane = b.newReg(), out = b.newReg();
    b.s2r(lane, SpecialReg::LaneId);
    b.movImm(out, 5);
    run(b.build(), 20);
    EXPECT_EQ(warp_.reg(1)[19], 5u);
    EXPECT_EQ(warp_.reg(1)[20], 0u);    // beyond the live lanes
}

} // namespace
} // namespace warpcomp
