/**
 * @file
 * Tests for the shared JSON writer: structural layout, string escaping,
 * and stable float formatting. Every machine-readable exporter (perf
 * records, sweep benches, stats dump, Chrome trace) rides on this, so
 * the byte-level guarantees are pinned here once.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/json_writer.hpp"

namespace warpcomp {
namespace {

TEST(JsonWriter, EmptyContainers)
{
    std::ostringstream o1, o2;
    {
        JsonWriter w(o1);
        w.beginObject();
        w.endObject();
    }
    {
        JsonWriter w(o2);
        w.beginArray();
        w.endArray();
    }
    EXPECT_EQ(o1.str(), "{}\n");
    EXPECT_EQ(o2.str(), "[]\n");
}

TEST(JsonWriter, ObjectLayoutIsTwoSpaceIndentOnePerLine)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("a", u64{1});
    w.key("b");
    w.beginArray();
    w.value(u64{2});
    w.value(u64{3});
    w.endArray();
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"a\": 1,\n"
              "  \"b\": [\n"
              "    2,\n"
              "    3\n"
              "  ]\n"
              "}\n");
}

TEST(JsonWriter, NestedObjectsInArrays)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    w.beginObject();
    w.field("x", true);
    w.endObject();
    w.beginObject();
    w.field("y", false);
    w.endObject();
    w.endArray();
    EXPECT_EQ(os.str(),
              "[\n"
              "  {\n"
              "    \"x\": true\n"
              "  },\n"
              "  {\n"
              "    \"y\": false\n"
              "  }\n"
              "]\n");
}

TEST(JsonWriter, EscapesControlAndSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01\x1f", 2)),
              "\\u0001\\u001f");
    // Multibyte UTF-8 passes through untouched.
    EXPECT_EQ(JsonWriter::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, EscapedStringValueRoundTrips)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("s", "line1\nline2\" end");
    w.endObject();
    EXPECT_EQ(os.str(), "{\n  \"s\": \"line1\\nline2\\\" end\"\n}\n");
}

TEST(JsonWriter, FloatFormattingIsStable)
{
    EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
    EXPECT_EQ(JsonWriter::formatDouble(1.0), "1");
    EXPECT_EQ(JsonWriter::formatDouble(0.5), "0.5");
    EXPECT_EQ(JsonWriter::formatDouble(1e-4), "0.0001");
    EXPECT_EQ(JsonWriter::formatDouble(5e-3), "0.005");
    EXPECT_EQ(JsonWriter::formatDouble(1.0 / 3.0), "0.333333333333");
    // Same bits must give the same bytes, run over run.
    const double v = 0.1 + 0.2;
    EXPECT_EQ(JsonWriter::formatDouble(v), JsonWriter::formatDouble(v));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    EXPECT_EQ(JsonWriter::formatDouble(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(JsonWriter::formatDouble(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(JsonWriter::formatDouble(
                  -std::numeric_limits<double>::infinity()),
              "null");

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("bad", std::nan(""));
    w.endObject();
    EXPECT_EQ(os.str(), "{\n  \"bad\": null\n}\n");
}

TEST(JsonWriter, SignedAndUnsignedIntegers)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("neg", i64{-42});
    w.field("big", std::numeric_limits<u64>::max());
    w.field("u16v", u16{7});
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"neg\": -42,\n"
              "  \"big\": 18446744073709551615,\n"
              "  \"u16v\": 7\n"
              "}\n");
}

TEST(JsonWriter, NullValueAndRootNewline)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    w.valueNull();
    w.endArray();
    EXPECT_EQ(os.str(), "[\n  null\n]\n");
}

} // namespace
} // namespace warpcomp
