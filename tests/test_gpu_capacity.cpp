/**
 * @file
 * GPU/SM capacity and occupancy edge cases: register-file-limited CTA
 * residency, thread-limited residency, CTA slot reuse across a long
 * grid, shared-memory-limited residency, and grids far larger than the
 * machine.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "isa/builder.hpp"
#include "workloads/workload.hpp"

namespace warpcomp {
namespace {

/** Kernel with an exact register demand that writes one marker. */
Kernel
fatKernel(u32 num_regs, u64 out)
{
    KernelBuilder b("fat");
    std::vector<Reg> regs;
    for (u32 i = 0; i < num_regs; ++i)
        regs.push_back(b.newReg());
    // Touch every register so the demand is real.
    b.movImm(regs[0], 1);
    for (u32 i = 1; i < num_regs; ++i)
        b.iadd(regs[i], regs[i - 1], KernelBuilder::imm(1));
    Reg tid = regs[0], bid = regs[1], ntid = regs[2];
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = regs[3], addr = regs[4];
    b.imad(gid, bid, ntid, tid);
    b.imad(addr, gid, KernelBuilder::imm(4),
           KernelBuilder::imm(static_cast<i32>(out)));
    b.stg(addr, regs[num_regs - 1]);
    return b.build();
}

class CapacityTest : public ::testing::Test
{
  protected:
    CapacityTest() : gmem_(16 << 20), cmem_(64) {}

    RunResult
    run(const Kernel &k, LaunchDims dims, u32 sms = 1)
    {
        GpuParams gp;
        gp.numSms = sms;
        gp.sm.applyScheme();
        Gpu gpu(gp, gmem_, cmem_);
        return gpu.run(k, dims);
    }

    GlobalMemory gmem_;
    ConstantMemory cmem_;
};

TEST_F(CapacityTest, RegisterLimitedOccupancyStillCompletes)
{
    // 60 regs x 8 warps = 480 warp registers per CTA: only two CTAs fit
    // in the 1024-register file, but an 8-CTA grid must still drain.
    const u64 out = gmem_.alloc(4 * 256 * 8);
    const RunResult r = run(fatKernel(60, out), {256, 8});
    EXPECT_EQ(r.ctas, 8u);
}

TEST_F(CapacityTest, ThreadLimitedOccupancy)
{
    // 512-thread CTAs: at most three fit in 1536 threads.
    const u64 out = gmem_.alloc(4 * 512 * 6);
    const RunResult r = run(fatKernel(8, out), {512, 6});
    EXPECT_EQ(r.ctas, 6u);
}

TEST_F(CapacityTest, LongGridReusesCtaSlots)
{
    const u64 out = gmem_.alloc(4 * 64 * 64);
    const RunResult r = run(fatKernel(6, out), {64, 64});
    EXPECT_EQ(r.ctas, 64u);
    // Results correct across slot reuse.
    for (u32 i = 0; i < 64 * 64; ++i)
        EXPECT_EQ(gmem_.read32(out + 4ull * i) != 0u, true);
}

TEST_F(CapacityTest, SharedMemoryLimitedOccupancy)
{
    // 20 KB of shared memory per CTA: two CTAs per SM at most.
    KernelBuilder b("smemhog", 20 * 1024);
    Reg tid = b.newReg(), addr = b.newReg(), v = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.shl(addr, tid, KernelBuilder::imm(2));
    b.sts(addr, tid);
    b.lds(v, addr);
    const u64 out = gmem_.alloc(4 * 128 * 6);
    Reg bid = b.newReg(), ntid = b.newReg(), gid = b.newReg(),
        oa = b.newReg();
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    b.imad(gid, bid, ntid, tid);
    b.imad(oa, gid, KernelBuilder::imm(4),
           KernelBuilder::imm(static_cast<i32>(out)));
    b.stg(oa, v);
    const RunResult r = run(b.build(), {128, 6});
    EXPECT_EQ(r.ctas, 6u);
    EXPECT_EQ(gmem_.read32(out + 4ull * 100), 100u);
}

TEST_F(CapacityTest, GridMuchLargerThanMachine)
{
    ExperimentConfig cfg;
    cfg.numSms = 1;
    cfg.scale = 1;
    const ExperimentResult r = runWorkload("nw", cfg);
    EXPECT_EQ(r.run.ctas, 56u);         // full grid on one SM
}

TEST_F(CapacityTest, SingleWarpSingleCta)
{
    const u64 out = gmem_.alloc(4 * 32);
    const RunResult r = run(fatKernel(6, out), {32, 1});
    EXPECT_EQ(r.ctas, 1u);
}

TEST_F(CapacityTest, MultiWaveLaunchWithGatedValidAtAllocBanks)
{
    // Regression: CTA launch used to allocate registers at a hardcoded
    // cycle 0 instead of the current cycle. With banks that are both
    // power-gated and valid-at-allocation (a hand-built ablation — no
    // figure config produces the combination), a second CTA wave then
    // woke banks "at cycle 0" after they had been gated at a later
    // cycle, and the gate FSM saw time run backwards. The grid must be
    // larger than one wave so later launches happen at now > 0.
    GpuParams gp;
    gp.numSms = 1;
    gp.sm.scheme = CompressionScheme::None;
    gp.sm.applyScheme();
    gp.sm.regfile.gatingEnabled = true;     // ablation: gated baseline
    ASSERT_TRUE(gp.sm.regfile.validAtAlloc);
    Gpu gpu(gp, gmem_, cmem_);

    // 60 regs x 16 warps = 960 registers per CTA: exactly one CTA
    // resident at a time, so between waves every bank drains, gates,
    // and must wake at the (later) launch cycle of the next wave.
    const u64 out = gmem_.alloc(4 * 512 * 4);
    const RunResult r = gpu.run(fatKernel(60, out), {512, 4});
    EXPECT_EQ(r.ctas, 4u);
    for (double frac : r.bankGatedFraction) {
        EXPECT_GE(frac, 0.0);
        EXPECT_LE(frac, 1.0);
    }
}

TEST_F(CapacityTest, EnergyScalesWithGridSize)
{
    const u64 out = gmem_.alloc(4 * 128 * 24);
    const RunResult small = run(fatKernel(8, out), {128, 4});
    const RunResult big = run(fatKernel(8, out), {128, 24});
    EXPECT_GT(big.meter.bankAccesses(), small.meter.bankAccesses());
    EXPECT_GT(big.cycles, small.cycles);
}

} // namespace
} // namespace warpcomp
