/**
 * @file
 * Binary kernel frontend unit tests: RV32IM decode, image container
 * parsing (.hex / .bin / ELF), translation to the warpcomp IR, and the
 * loader's fatal error paths (each malformed input must be a clean
 * exit-1 diagnostic naming the offending file/pc, never a crash).
 */

#include <fstream>
#include <gtest/gtest.h>

#include "frontend/frontend.hpp"
#include "frontend/image.hpp"
#include "frontend/rv32.hpp"
#include "frontend/translate.hpp"
#include "isa/disasm.hpp"

using namespace warpcomp;

namespace {

RvInst
decodeOk(u32 word)
{
    const RvDecodeResult r = decodeRv32(word);
    EXPECT_TRUE(r.ok()) << (r.error ? r.error->reason : "no error");
    return r.ok() ? *r.inst : RvInst{};
}

std::string
decodeErr(u32 word)
{
    const RvDecodeResult r = decodeRv32(word);
    EXPECT_FALSE(r.ok()) << "word 0x" << std::hex << word
                         << " decoded as " << rvDisasm(*r.inst);
    return r.ok() ? std::string{} : r.error->reason;
}

/** Write @p text to a fresh file under the gtest temp dir. */
std::string
writeTemp(const std::string &name, const std::string &text)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream os(path, std::ios::binary);
    os << text;
    return path;
}

KernelImage
imageOf(const std::vector<u32> &words)
{
    KernelImage img;
    img.name = "t";
    img.path = "test.hex";
    img.words = words;
    return img;
}

} // namespace

// ---------------------------------------------------------------------
// Decoder

TEST(Rv32Decode, CoreFormats)
{
    // lw a0, 0(x0)
    RvInst in = decodeOk(0x00002503);
    EXPECT_EQ(in.op, RvOp::Lw);
    EXPECT_EQ(in.rd, 10);
    EXPECT_EQ(in.rs1, 0);
    EXPECT_EQ(in.imm, 0);

    // addi t4, x0, -1 — I-immediates sign-extend
    in = decodeOk(0xFFF00E93);
    EXPECT_EQ(in.op, RvOp::Addi);
    EXPECT_EQ(in.rd, 29);
    EXPECT_EQ(in.imm, -1);

    // mul t3, t1, t2
    in = decodeOk(0x02730E33);
    EXPECT_EQ(in.op, RvOp::Mul);
    EXPECT_EQ(in.rd, 28);
    EXPECT_EQ(in.rs1, 6);
    EXPECT_EQ(in.rs2, 7);

    // bge t3, a3, +36
    in = decodeOk(0x02DE5263);
    EXPECT_EQ(in.op, RvOp::Bge);
    EXPECT_EQ(in.rs1, 28);
    EXPECT_EQ(in.rs2, 13);
    EXPECT_EQ(in.imm, 36);

    // slli t4, t3, 2
    in = decodeOk(0x002E1E93);
    EXPECT_EQ(in.op, RvOp::Slli);
    EXPECT_EQ(in.imm, 2);

    // sw t5, 0(t6)
    in = decodeOk(0x01EFA023);
    EXPECT_EQ(in.op, RvOp::Sw);
    EXPECT_EQ(in.rs1, 31);
    EXPECT_EQ(in.rs2, 30);
    EXPECT_EQ(in.imm, 0);
}

TEST(Rv32Decode, GpuConventions)
{
    // csrr t0, 0xCC0 (tid)
    RvInst in = decodeOk(0xCC0022F3);
    EXPECT_EQ(in.op, RvOp::Csrr);
    EXPECT_EQ(in.rd, 5);
    EXPECT_EQ(in.csr, 0xCC0u);

    EXPECT_EQ(decodeOk(0x0000000F).op, RvOp::Fence);
    EXPECT_EQ(decodeOk(0x00000073).op, RvOp::Ecall);
}

TEST(Rv32Decode, SharedMemoryCustomOps)
{
    // lds.w t5, 0(t5): imm=0, rs1=30, f3=010, rd=30, opcode 0x0B
    RvInst in = decodeOk((30u << 15) | (0b010u << 12) | (30u << 7) | 0x0B);
    EXPECT_EQ(in.op, RvOp::LdsW);
    EXPECT_EQ(in.rd, 30);
    EXPECT_EQ(in.rs1, 30);

    // sts.w t4, 0(t6): rs2=29, rs1=31, f3=010, opcode 0x2B
    in = decodeOk((29u << 20) | (31u << 15) | (0b010u << 12) | 0x2B);
    EXPECT_EQ(in.op, RvOp::StsW);
    EXPECT_EQ(in.rs1, 31);
    EXPECT_EQ(in.rs2, 29);
}

TEST(Rv32Decode, NegativeJumpOffset)
{
    // jal x0, -40 (reduction back edge): J-imm sign-extends
    const RvInst in = decodeOk(0xFD9FF06F);
    EXPECT_EQ(in.op, RvOp::Jal);
    EXPECT_EQ(in.rd, 0);
    EXPECT_EQ(in.imm, -40);
}

TEST(Rv32Decode, RejectsUnknownWords)
{
    EXPECT_FALSE(decodeErr(0xFFFFFFFF).empty());
    EXPECT_FALSE(decodeErr(0x00000000).empty());
    // lb a0, 0(x0) — byte loads are outside the subset
    EXPECT_FALSE(decodeErr(0x00000503).empty());
    // flw fa0, 0(a0) — no floating-point loads
    EXPECT_FALSE(decodeErr(0x00052507).empty());
}

TEST(Rv32Decode, DisasmNamesOperands)
{
    const RvInst in = decodeOk(0x02730E33); // mul t3, t1, t2
    const std::string text = rvDisasm(in);
    EXPECT_NE(text.find("mul"), std::string::npos) << text;
    EXPECT_NE(text.find("x28"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Image containers

TEST(HexImage, ParsesDirectivesLabelsAndWords)
{
    const ImageLoadResult r = parseHexImage(
        "# comment\n"
        ".name demo\n"
        ".block 64\n"
        ".smem 256\n"
        "00000513    # li a0, 0\n"
        "@loop\n"
        "00000073\n",
        "demo.hex");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.image->name, "demo");
    EXPECT_EQ(r.image->blockDim, 64u);
    EXPECT_EQ(r.image->smemBytes, 256u);
    ASSERT_EQ(r.image->words.size(), 2u);
    EXPECT_EQ(r.image->words[0], 0x00000513u);
    EXPECT_EQ(r.image->symbols.at("loop"), 1u);
}

TEST(HexImage, ErrorsNameLineNumbers)
{
    ImageLoadResult r = parseHexImage(".block zero\n", "k.hex");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("k.hex:1"), std::string::npos) << r.error;

    r = parseHexImage("00000073\n@a\n@a\n", "k.hex");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("duplicate label"), std::string::npos);

    r = parseHexImage("00000073\nnot-hex\n", "k.hex");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("k.hex:2"), std::string::npos) << r.error;

    r = parseHexImage("# only comments\n", "k.hex");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("no instruction words"), std::string::npos);
}

TEST(BinImage, RoundTripsWordsAndRejectsTruncation)
{
    const std::vector<u8> good = {0x73, 0x00, 0x00, 0x00,
                                  0x0F, 0x00, 0x00, 0x00};
    const ImageLoadResult r = parseBinImage(good, "k.bin");
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.image->words.size(), 2u);
    EXPECT_EQ(r.image->words[0], 0x00000073u);

    EXPECT_FALSE(parseBinImage({}, "k.bin").ok());
    const ImageLoadResult t =
        parseBinImage({0x73, 0x00, 0x00}, "k.bin");
    ASSERT_FALSE(t.ok());
    EXPECT_NE(t.error.find("multiple of 4"), std::string::npos) << t.error;
}

namespace {

void
put32(std::vector<u8> &v, size_t at, u32 x)
{
    v[at] = static_cast<u8>(x);
    v[at + 1] = static_cast<u8>(x >> 8);
    v[at + 2] = static_cast<u8>(x >> 16);
    v[at + 3] = static_cast<u8>(x >> 24);
}

void
put16(std::vector<u8> &v, size_t at, u16 x)
{
    v[at] = static_cast<u8>(x);
    v[at + 1] = static_cast<u8>(x >> 8);
}

/** Minimal RISC-V ELF32: null section + one exec PROGBITS section. */
std::vector<u8>
tinyElf(const std::vector<u32> &text, u16 machine = 243)
{
    const size_t textOff = 52 + 2 * 40;
    std::vector<u8> v(textOff + 4 * text.size(), 0);
    v[0] = 0x7F; v[1] = 'E'; v[2] = 'L'; v[3] = 'F';
    v[4] = 1;                       // ELFCLASS32
    v[5] = 1;                       // ELFDATA2LSB
    put16(v, 18, machine);
    put32(v, 32, 52);               // e_shoff
    put16(v, 46, 40);               // e_shentsize
    put16(v, 48, 2);                // e_shnum
    const size_t sh = 52 + 40;      // section 1
    put32(v, sh + 4, 1);            // SHT_PROGBITS
    put32(v, sh + 8, 0x4);          // SHF_EXECINSTR
    put32(v, sh + 16, static_cast<u32>(textOff));
    put32(v, sh + 20, static_cast<u32>(4 * text.size()));
    for (size_t i = 0; i < text.size(); ++i)
        put32(v, textOff + 4 * i, text[i]);
    return v;
}

} // namespace

TEST(ElfImage, LoadsTextSection)
{
    const ImageLoadResult r =
        parseElfImage(tinyElf({0x00000513, 0x00000073}), "k.elf");
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.image->words.size(), 2u);
    EXPECT_EQ(r.image->words[1], 0x00000073u);
}

TEST(ElfImage, RejectsBadMagicAndMachine)
{
    std::vector<u8> bad = tinyElf({0x00000073});
    bad[0] = 'X';
    ImageLoadResult r = parseElfImage(bad, "k.elf");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("bad magic"), std::string::npos) << r.error;

    r = parseElfImage(tinyElf({0x00000073}, /*machine=*/62), "k.elf");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("RISC-V"), std::string::npos) << r.error;
}

TEST(ElfImage, EveryTruncationPrefixFailsCleanly)
{
    // Chop a valid ELF at every possible length: each prefix must come
    // back as a structured error — never a crash or an out-of-bounds
    // read (the ASan lane runs this too). Only the full image parses.
    const std::vector<u8> full = tinyElf({0x00000513, 0x00000073});
    for (size_t len = 0; len < full.size(); ++len) {
        const std::vector<u8> prefix(full.begin(),
                                     full.begin() +
                                         static_cast<long>(len));
        const ImageLoadResult r = parseElfImage(prefix, "trunc.elf");
        EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes parsed";
        EXPECT_FALSE(r.error.empty()) << len;
    }
    EXPECT_TRUE(parseElfImage(full, "full.elf").ok());
}

TEST(ElfImage, HostileHeaderFieldsFailCleanly)
{
    // Section table pointers far past the end of the file, oversized
    // entry counts, and a section whose payload overruns the image:
    // all must be rejected without touching out-of-bounds memory.
    const std::vector<u8> good = tinyElf({0x00000073});
    for (auto mutate : {
             +[](std::vector<u8> &v) { put32(v, 32, 0xFFFFFFF0u); },
             +[](std::vector<u8> &v) { put16(v, 48, 0xFFFF); },
             +[](std::vector<u8> &v) { put16(v, 46, 0); },
             +[](std::vector<u8> &v) {
                 put32(v, 52 + 40 + 20, 0xFFFFFFF0u);    // sh_size
             },
             +[](std::vector<u8> &v) {
                 put32(v, 52 + 40 + 16, 0xFFFFFFF0u);    // sh_offset
             },
         }) {
        std::vector<u8> bad = good;
        mutate(bad);
        const ImageLoadResult r = parseElfImage(bad, "hostile.elf");
        EXPECT_FALSE(r.ok());
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(ImageParsers, DeterministicGarbageNeverCrashes)
{
    // Seeded pseudo-random byte soup through all three container
    // parsers; every outcome must be ok-or-structured-error, and the
    // wrong-magic soups must be errors.
    u64 state = 0x1234567890ABCDEFull;
    auto next = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<u8>(state >> 56);
    };
    for (int round = 0; round < 64; ++round) {
        std::vector<u8> soup(static_cast<size_t>(round) * 7 + 1);
        for (u8 &b : soup)
            b = next();
        const ImageLoadResult elf = parseElfImage(soup, "soup.elf");
        EXPECT_FALSE(elf.ok());
        EXPECT_FALSE(elf.error.empty());
        // .bin accepts any word-multiple payload (it is raw words), so
        // only the structural invariant applies: ok() or an error.
        const ImageLoadResult bin = parseBinImage(soup, "soup.bin");
        EXPECT_TRUE(bin.ok() || !bin.error.empty());
        const std::string text(soup.begin(), soup.end());
        const ImageLoadResult hex = parseHexImage(text, "soup.hex");
        EXPECT_TRUE(hex.ok() || !hex.error.empty());
    }
}

TEST(HexImage, GarbageLinesAreStructuredErrors)
{
    for (const char *text :
         {"xyzzy\n", "0000005G\n", "@\n", "00000073 junk\n",
          ".block ten\n", ".name a b\n", ""}) {
        const ImageLoadResult r = parseHexImage(text, "bad.hex");
        EXPECT_FALSE(r.ok()) << text;
        EXPECT_NE(r.error.find("bad.hex"), std::string::npos)
            << "diagnostic must name the file: " << r.error;
    }
}

// ---------------------------------------------------------------------
// Translation

TEST(Translate, MinimalKernel)
{
    // lw a0, 0(x0); ecall -> LDC + EXIT
    const TranslateResult r =
        translateImage(imageOf({0x00002503, 0x00000073}));
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.kernel->size(), 2u);
    EXPECT_EQ(r.kernel->at(0).op, Opcode::Ldc);
    EXPECT_EQ(r.kernel->at(1).op, Opcode::Exit);
    EXPECT_EQ(r.kernel->numRegs(), 1u);
}

TEST(Translate, WritesToX0AreDropped)
{
    // addi x0, x0, 0 (nop); ecall
    const TranslateResult r =
        translateImage(imageOf({0x00000013, 0x00000073}));
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.kernel->size(), 1u);
    EXPECT_EQ(r.kernel->at(0).op, Opcode::Exit);
}

TEST(Translate, PlainJumpSurvivesRdZeroSkip)
{
    // jal x0, +8 (skip one word); addi t0, x0, 1; ecall
    // The jump writes x0 but must still emit a BRA, never be dropped
    // as a no-op.
    const TranslateResult r = translateImage(
        imageOf({0x0080006F, 0x00100293, 0x00000073}));
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.kernel->size(), 3u);
    EXPECT_EQ(r.kernel->at(0).op, Opcode::Bra);
    EXPECT_EQ(r.kernel->at(0).target, 2u);
}

TEST(Translate, AppendsTrailingExit)
{
    // A kernel that falls off the end still validates: the translator
    // appends the missing EXIT.
    const TranslateResult r = translateImage(imageOf({0x00002503}));
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.kernel->size(), 2u);
    EXPECT_EQ(r.kernel->at(1).op, Opcode::Exit);
}

TEST(Translate, MovImmAndMovSpellings)
{
    // addi t0, x0, 42 -> MOV32I; addi t1, t0, 0 -> MOV
    const TranslateResult r = translateImage(
        imageOf({0x02A00293, 0x00028313, 0x00000073}));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.kernel->at(0).op, Opcode::MovImm);
    EXPECT_EQ(r.kernel->at(0).src[0].imm, 42);
    EXPECT_EQ(r.kernel->at(1).op, Opcode::Mov);
}

TEST(Translate, ErrorsNameThePc)
{
    // pc 1: bltu t0, t1, +4 — unsigned compares unsupported
    TranslateResult r = translateImage(
        imageOf({0x00000013, 0x0062E263, 0x00000073}));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("pc 1"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("unsigned"), std::string::npos) << r.error;

    // jal ra, ... — calls unsupported
    r = translateImage(imageOf({0x008000EF, 0x00000073}));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("pc 0"), std::string::npos) << r.error;

    // branch past the end of the image: bge a2, a3, +100
    r = translateImage(imageOf({0x06D65263, 0x00000073}));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("out of range"), std::string::npos) << r.error;

    // unknown CSR 0x100
    r = translateImage(imageOf({(0x100u << 20) | (0b010u << 12) |
                                (5u << 7) | 0x73, 0x00000073}));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("CSR"), std::string::npos) << r.error;

    // sw with x0 base: the constant bank is read-only
    r = translateImage(imageOf({0x00502023, 0x00000073}));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("constant bank"), std::string::npos) << r.error;

    // sts.w with x0 base
    r = translateImage(imageOf({(5u << 20) | (0b010u << 12) | 0x2B,
                                0x00000073}));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("x0"), std::string::npos) << r.error;
}

TEST(Translate, RegisterBudgetIsEnforced)
{
    // add t0, t1, t2 needs three registers; a 2-register budget fails
    // with a diagnostic naming the register and the budget.
    TranslateOptions opt;
    opt.maxRegs = 2;
    const TranslateResult r = translateImage(
        imageOf({0x007302B3, 0x00000073}), 0, opt);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("2-register budget"), std::string::npos)
        << r.error;
}

TEST(Translate, EntryOffsetSkipsPrologue)
{
    // Word 0 would be rejected (jalr); entry=1 ignores it.
    const TranslateResult r = translateImage(
        imageOf({0x00008067, 0x00002503, 0x00000073}), 1);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.kernel->size(), 2u);
}

// ---------------------------------------------------------------------
// Loader facade + fatal paths

TEST(KernelFileSpec, RoundTrips)
{
    EXPECT_TRUE(isKernelFileSpec("file:a.hex"));
    EXPECT_FALSE(isKernelFileSpec("vecadd"));
    EXPECT_EQ(kernelFileSpec("a.hex", ""), "file:a.hex");
    EXPECT_EQ(kernelFileSpec("a.hex", "main"), "file:a.hex,entry=main");
}

TEST(LoadKernelFile, StructuredErrors)
{
    KernelLoadResult r = loadKernelFile("/nonexistent/nope.hex");
    ASSERT_FALSE(r.ok());
    EXPECT_FALSE(r.error.empty());

    const std::string p =
        writeTemp("entry.hex", "00000513\n@main\n00000073\n");
    r = loadKernelFile(p, "missing");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("entry symbol"), std::string::npos) << r.error;

    r = loadKernelFile(p, "main");
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.loaded->kernel.size(), 1u);
    EXPECT_EQ(r.loaded->imageSha.size(), 64u);
}

TEST(FrontendDeathTest, TruncatedBinaryExits1)
{
    const std::string p = writeTemp("trunc.bin",
                                    std::string("\x73\x00\x00", 3));
    EXPECT_EXIT(loadKernelFileOrExit(p), ::testing::ExitedWithCode(1),
                "multiple of 4");
}

TEST(FrontendDeathTest, GarbageMagicExits1)
{
    // Big enough to clear the header-size check, so the magic itself
    // is what gets rejected.
    const std::string p = writeTemp("bad.elf", std::string(64, 'x'));
    EXPECT_EXIT(loadKernelFileOrExit(p), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(FrontendDeathTest, UnsupportedOpcodeNamesPc)
{
    // flw fa0, 0(a0) — floating-point load, outside the subset.
    const std::string p =
        writeTemp("bad_op.hex", "00002503\n00052507\n00000073\n");
    EXPECT_EXIT(loadKernelFileOrExit(p), ::testing::ExitedWithCode(1),
                "pc 1");
}

TEST(FrontendDeathTest, X0BaseStoreNamesPc)
{
    // sw t0, 0(x0) at pc 0 — read-only constant bank.
    const std::string p = writeTemp("x0_store.hex",
                                    "00502023\n00000073\n");
    EXPECT_EXIT(loadKernelFileOrExit(p), ::testing::ExitedWithCode(1),
                "pc 0.*constant bank");
}

TEST(FrontendDeathTest, MissingFileExits1)
{
    EXPECT_EXIT(loadKernelFileOrExit("/nonexistent/nope.hex"),
                ::testing::ExitedWithCode(1), "--kernel");
}
