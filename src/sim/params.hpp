/**
 * @file
 * Simulator configuration: Table 2 microarchitectural parameters plus
 * the compression scheme and scheduler policy under evaluation.
 */

#ifndef WARPCOMP_SIM_PARAMS_HPP
#define WARPCOMP_SIM_PARAMS_HPP

#include "common/types.hpp"
#include "compress/schemes.hpp"
#include "fault/fault.hpp"
#include "mem/mem_timing.hpp"
#include "obs/obs.hpp"
#include "power/constants.hpp"
#include "regfile/regfile.hpp"

namespace warpcomp {

/** Warp scheduling policy (Sec. 6.5). */
enum class SchedPolicy : u8 {
    Gto,    ///< greedy-then-oldest (default)
    Lrr     ///< loose round-robin
};

/**
 * How writes from divergent warp instructions are handled (Sec. 5.2).
 * The paper evaluates both and ships WriteUncompressed; MergeRecompress
 * is the rejected buffered alternative, kept here as an ablation: the
 * destination's current content is read (and decompressed) alongside
 * the sources, merged with the active lanes, and recompressed.
 */
enum class DivergencePolicy : u8 {
    WriteUncompressed,  ///< store uncompressed; dummy MOV decompresses
    MergeRecompress     ///< read-merge-recompress through a buffer
};

/** Per-SM configuration (Table 2 defaults). */
struct SmParams
{
    u32 numSchedulers = 2;
    u32 maxWarps = 48;
    u32 maxThreads = 1536;
    u32 maxCtas = 8;
    u32 smemBytes = 48 * 1024;

    u32 numCollectors = 8;      ///< operand collector units
    u32 simtDispatch = 2;       ///< ALU/MUL/FPU instructions issued to exec per cycle
    u32 memDispatch = 1;        ///< memory instructions accepted per cycle

    u32 numCompressors = 2;
    u32 numDecompressors = 4;
    u32 compressLatency = 2;
    u32 decompressLatency = 1;

    SchedPolicy sched = SchedPolicy::Gto;
    CompressionScheme scheme = CompressionScheme::Warped;
    DivergencePolicy divPolicy = DivergencePolicy::WriteUncompressed;

    /**
     * Register-file-cache comparator (the paper's related work [21],
     * Gebhart et al. ISCA'11): a small per-warp cache in front of the
     * banks that filters operand reads. 0 disables it. Writes allocate
     * (write-through to the banks); reads that hit skip every bank
     * access and pay one small-RAM access instead.
     */
    u32 rfcEntriesPerWarp = 0;

    RegFileParams regfile{};
    MemTimingParams mem{};
    /**
     * Register-file fault injection (disabled by default). The GPU
     * salts `faults.seed` per SM via faultSeedForSm so each SM draws an
     * independent deterministic stuck-at map.
     */
    FaultParams faults{};
    /**
     * Transient soft-error (SEU) injection (disabled by default). The
     * GPU salts `seu.seed` per SM via seuSeedForSm so each SM draws an
     * independent deterministic flip stream. Composes with `faults`:
     * stuck-at cells and transient flips can both be active.
     */
    SeuParams seu{};

    /**
     * Make the register-file policy consistent with the compression
     * scheme: the baseline marks registers valid at allocation and never
     * gates; compressed designs gate and validate lazily. Call after
     * setting `scheme`.
     */
    void
    applyScheme()
    {
        const bool compressed = scheme != CompressionScheme::None;
        regfile.gatingEnabled = compressed;
        regfile.validAtAlloc = !compressed;
    }

    bool compressionEnabled() const
    {
        return scheme != CompressionScheme::None;
    }
};

/** Whole-GPU configuration. */
struct GpuParams
{
    u32 numSms = 15;
    SmParams sm{};
    EnergyParams energy{};
    /** Observability (tracing / windowed counters); disabled by
     *  default, in which case no ObsRun is ever created. */
    ObsParams obs{};
    /** Event-driven idle skipping: jump over provably uneventful cycle
     *  spans (all warps stalled) instead of stepping them one by one.
     *  Bit-identical to per-cycle stepping by construction; --no-skip
     *  turns it off for differential checks. */
    bool skipIdleCycles = true;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_PARAMS_HPP
