/**
 * @file
 * Whole-GPU simulation: a set of SMs fed from a global CTA queue,
 * run in lockstep until the grid drains. Produces the merged energy /
 * statistics results every experiment consumes.
 */

#ifndef WARPCOMP_SIM_GPU_HPP
#define WARPCOMP_SIM_GPU_HPP

#include <memory>
#include <vector>

#include "power/energy_meter.hpp"
#include "sim/sm.hpp"

namespace warpcomp {

/** Outcome of one kernel launch. */
struct RunResult
{
    Cycle cycles = 0;               ///< wall-clock cycles to drain the grid
    EnergyMeter meter;              ///< merged over all SMs
    SimStats stats;                 ///< merged over all SMs
    /** Per-bank fraction of cycles spent power-gated (Fig 10),
     *  averaged over SMs. */
    std::vector<double> bankGatedFraction;
    u64 ctas = 0;                   ///< CTAs executed
    u64 rfcHits = 0;                ///< register-file-cache hits
    u64 rfcMisses = 0;              ///< register-file-cache misses
    /** Fault-injection census + traffic, merged over SMs. */
    FaultStats fault;
    /** Transient-fault (SEU) counters, merged over SMs. */
    SeuStats seu;
    /**
     * The grid could not finish: some CTA can never become resident
     * (e.g. DisableEntry removed too much register capacity). The
     * simulation stops as soon as no resident work remains instead of
     * spinning to the deadlock guard; `ctas` holds the completed count.
     */
    bool unschedulable = false;
    /**
     * Observability state of the run (trace ring + windowed counters);
     * null unless GpuParams::obs was enabled. Shared so results can be
     * copied into recorders without duplicating the ring.
     */
    std::shared_ptr<ObsRun> obs;
    /**
     * The run exceeded FaultParams::hangCycles under uncontained
     * corruption — stuck-at policy None, or an SEU scheme that can
     * silently corrupt (Unprotected/Scrub): a flipped loop counter can
     * livelock a kernel. Deterministic for a fixed seed, like every
     * other fault outcome.
     */
    bool hung = false;

    explicit RunResult(const EnergyParams &energy) : meter(energy, 0, 0) {}
};

/** The GPU: numSms SMs sharing global/constant memory. */
class Gpu
{
  public:
    Gpu(const GpuParams &params, GlobalMemory &gmem, ConstantMemory &cmem);

    /**
     * Launch @p kernel over @p dims and simulate to completion.
     *
     * @param collect_bdi_breakdown enable Fig 5 explorer stats
     * @return merged results
     */
    RunResult run(const Kernel &kernel, const LaunchDims &dims,
                  bool collect_bdi_breakdown = false);

    const GpuParams &params() const { return params_; }

  private:
    GpuParams params_;
    GlobalMemory &gmem_;
    ConstantMemory &cmem_;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_GPU_HPP
