/**
 * @file
 * Functional execution of one warp instruction at issue time. The
 * timing pipeline moves the access through collectors/banks/exec units,
 * but lane values are computed here, eagerly, so compression always sees
 * exact register contents (the standard functional/timing split).
 */

#ifndef WARPCOMP_SIM_FUNCTIONAL_HPP
#define WARPCOMP_SIM_FUNCTIONAL_HPP

#include <array>

#include "common/types.hpp"
#include "mem/memory.hpp"
#include "sim/warp.hpp"

namespace warpcomp {

/** Grid/block dimensions of the running launch. */
struct LaunchDims
{
    u32 blockDim = 0;   ///< threads per CTA
    u32 gridDim = 0;    ///< CTAs in the grid
};

/** What an instruction did, as needed by the timing model. */
struct ExecOutcome
{
    LaneMask effMask = 0;       ///< lanes that executed (guard applied)
    bool wroteReg = false;      ///< destination GPR updated
    bool diverged = false;      ///< branch split the warp
    bool warpFinished = false;  ///< all lanes exited
    bool isMem = false;         ///< needs the memory pipeline
    /** Per-lane byte addresses for memory timing (valid when isMem). */
    std::array<u64, kWarpSize> addrs{};
};

/** Executes instructions against warp + memory functional state. */
class FunctionalExecutor
{
  public:
    FunctionalExecutor(GlobalMemory &gmem, ConstantMemory &cmem);

    /**
     * Contain out-of-range memory accesses instead of panicking: the
     * access is squashed (loads return 0, stores are dropped) and
     * counted. Used under fault injection with no tolerance policy,
     * where corrupted address registers otherwise take down the
     * simulation — on hardware that access raises a detectable memory
     * fault, so counting it as unrecoverable mirrors reality.
     */
    void enableFaultContainment() { containFaults_ = true; }

    /** Accesses squashed by fault containment. */
    u64 containedAccesses() const { return contained_; }

    /**
     * Execute the instruction at @p pc of the warp's kernel, applying
     * guards, updating lane values and the SIMT stack (pc advance /
     * branch / exit).
     *
     * @param warp warp to execute on
     * @param pc instruction index (must equal warp.stack().pc())
     * @param smem the warp's CTA shared memory (may be null when the
     *             kernel declares none)
     * @param dims launch dimensions for S2R
     */
    ExecOutcome execute(Warp &warp, u32 pc, SharedMemory *smem,
                        const LaunchDims &dims);

  private:
    /** True when (space, addr) lies inside its memory; only consulted
     *  with containment on. */
    bool addrValid(Opcode op, u64 addr, const SharedMemory *smem) const;

    GlobalMemory &gmem_;
    ConstantMemory &cmem_;
    bool containFaults_ = false;
    u64 contained_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_FUNCTIONAL_HPP
