/**
 * @file
 * SIMT reconvergence stack (immediate post-dominator scheme, Sec. 5.2
 * background). Entries are {pc, rpc, mask}; a divergent branch rewrites
 * the top entry's pc to the reconvergence point and pushes the two
 * sides; entries pop when their pc reaches their rpc.
 */

#ifndef WARPCOMP_SIM_SIMT_STACK_HPP
#define WARPCOMP_SIM_SIMT_STACK_HPP

#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace warpcomp {

/** Sentinel rpc for the bottom-of-stack entry (never reconverges). */
inline constexpr u32 kNoRpc = ~u32{0};

/** Per-warp SIMT reconvergence stack. */
class SimtStack
{
  public:
    struct Entry
    {
        u32 pc;
        u32 rpc;
        LaneMask mask;
    };

    /** Reset to a single bottom entry at pc 0 with @p initial lanes. */
    void reset(LaneMask initial);

    bool empty() const { return stack_.empty(); }
    std::size_t depth() const { return stack_.size(); }

    /** Current fetch pc (top entry). */
    u32
    pc() const
    {
        WC_ASSERT(!stack_.empty(), "pc() on an empty SIMT stack");
        return stack_.back().pc;
    }

    /** Current active mask (top entry). */
    LaneMask
    mask() const
    {
        WC_ASSERT(!stack_.empty(), "mask() on an empty SIMT stack");
        return stack_.back().mask;
    }

    /** Advance the top entry to @p next (non-branch instructions). */
    void
    advance(u32 next)
    {
        WC_ASSERT(!stack_.empty(), "advance() on an empty SIMT stack");
        stack_.back().pc = next;
    }

    /**
     * Apply a branch outcome. @p taken is the subset of the current
     * mask that takes the branch; the rest falls through.
     *
     * @param target branch target pc
     * @param reconv immediate post-dominator pc
     * @param taken lanes taking the branch (subset of mask())
     * @param fallthrough pc of the next sequential instruction
     * @return true when the branch diverged (both sides non-empty)
     */
    bool branch(u32 target, u32 reconv, LaneMask taken, u32 fallthrough);

    /**
     * Remove exited lanes from every entry; drops entries left empty.
     * After this the stack may be empty (warp finished).
     */
    void exitLanes(LaneMask lanes);

    /** Pop reconverged entries (top pc == top rpc); call before fetch. */
    void
    popReconverged()
    {
        while (!stack_.empty() && stack_.back().rpc != kNoRpc &&
               stack_.back().pc == stack_.back().rpc) {
            stack_.pop_back();
        }
    }

    const std::vector<Entry> &entries() const { return stack_; }

  private:
    std::vector<Entry> stack_;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_SIMT_STACK_HPP
