#include "sim/arbiter.hpp"

#include "common/log.hpp"

namespace warpcomp {

BankArbiter::BankArbiter(u32 num_banks) : numBanks_(num_banks)
{
    WC_ASSERT(num_banks >= 1 && num_banks <= 64,
              "arbiter supports 1..64 banks, got " << num_banks);
}

void
BankArbiter::newCycle()
{
    readUsed_ = 0;
    writeUsed_ = 0;
}

bool
BankArbiter::tryRead(u32 bank)
{
    WC_ASSERT(bank < numBanks_, "bank " << bank << " out of range");
    const u64 bit = u64{1} << bank;
    if (readUsed_ & bit)
        return false;
    readUsed_ |= bit;
    return true;
}

bool
BankArbiter::tryWriteRange(u32 first, u32 count)
{
    WC_ASSERT(first + count <= numBanks_, "write range out of bounds");
    if (count == 0)
        return true;
    const u64 mask = ((count >= 64 ? ~u64{0} : ((u64{1} << count) - 1)))
        << first;
    if (writeUsed_ & mask)
        return false;
    writeUsed_ |= mask;
    return true;
}

} // namespace warpcomp
