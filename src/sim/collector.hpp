/**
 * @file
 * Operand collector units (Fig 1): each holds one in-flight warp
 * instruction while its register source operands are fetched from the
 * banks and, when compressed, routed through a decompressor.
 */

#ifndef WARPCOMP_SIM_COLLECTOR_HPP
#define WARPCOMP_SIM_COLLECTOR_HPP

#include <array>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "compress/bdi.hpp"
#include "isa/instruction.hpp"
#include "regfile/regfile.hpp"

namespace warpcomp {

/** One warp instruction moving through the SM pipeline. */
struct InFlight
{
    /** Pipeline position. */
    enum class Stage : u8 {
        Collect,    ///< fetching source operands (in a collector unit)
        Exec,       ///< executing; readyAt = completion cycle
        Writeback,  ///< compressing / waking banks / claiming write ports
        Done
    };

    /** Source-operand fetch progress. */
    struct OpFetch
    {
        RegAccess acc{};
        u32 granted = 0;

        bool done() const { return granted >= acc.numBanks; }
    };

    Instruction inst{};         ///< copy (synthetic for dummy MOVs)
    u32 warpSlot = 0;
    LaneMask effMask = 0;
    bool dummyMov = false;
    /** Write must be stored uncompressed (divergent/partial mask). */
    bool divergentWrite = false;

    /** Up to three register sources plus, under the MergeRecompress
     *  divergence policy, a read of the destination's old content. */
    std::array<OpFetch, 4> ops{};
    u32 numOps = 0;
    u32 compressedSrcs = 0;     ///< decompressor activations required
    u32 decompIssued = 0;
    Cycle decompReadyAt = 0;

    Stage stage = Stage::Collect;
    Cycle readyAt = 0;
    u32 memLatency = 0;         ///< load/store round trip (mem ops)
    bool writesBack = false;    ///< a GPR write reaches the banks
    bool memReleased = false;   ///< MSHR slot returned
    bool wbRecorded = false;    ///< RegisterFile::recordWrite performed
    RegAccess writeAcc{};
    BdiEncoded encoded{};

    /** All source banks granted? */
    bool
    collected() const
    {
        for (u32 i = 0; i < numOps; ++i) {
            if (!ops[i].done())
                return false;
        }
        return true;
    }
};

/**
 * Fixed pool of collector units. An instruction occupies a unit from
 * issue until it dispatches to an execution unit. The pool references
 * entries owned elsewhere (the SM's in-flight slab): moving a warp
 * instruction through the pipeline shuffles pointers, never the
 * multi-hundred-byte InFlight payload.
 */
class CollectorPool
{
  public:
    explicit CollectorPool(u32 num_units);

    bool hasFree() const;

    /** Claim a unit for @p entry (not owned); returns its index.
     *  Requires hasFree(). */
    u32 insert(InFlight *entry);

    /** Release unit @p index; returns the entry pointer. */
    InFlight *take(u32 index);

    InFlight *
    at(u32 index)
    {
        WC_ASSERT(index < units_.size(), "collector index out of range");
        return units_[index];
    }

    u32 size() const { return static_cast<u32>(units_.size()); }

    /** Indices of occupied units, oldest allocation first. */
    const std::vector<u32> &occupiedOrder() const { return order_; }

  private:
    std::vector<InFlight *> units_;
    std::vector<u32> order_;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_COLLECTOR_HPP
