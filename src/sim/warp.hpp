/**
 * @file
 * Per-warp state: SIMT stack, functional register/predicate values, and
 * scheduling status.
 */

#ifndef WARPCOMP_SIM_WARP_HPP
#define WARPCOMP_SIM_WARP_HPP

#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "compress/bdi.hpp"
#include "isa/kernel.hpp"
#include "sim/simt_stack.hpp"

namespace warpcomp {

/** One warp's architectural + scheduling state. */
class Warp
{
  public:
    /** Scheduling status. */
    enum class Status : u8 {
        Idle,       ///< slot not in use
        Running,    ///< schedulable
        AtBarrier,  ///< waiting at a CTA barrier
        Finished    ///< all lanes exited
    };

    /**
     * Bind the warp slot to a launched warp.
     *
     * @param kernel kernel being executed
     * @param cta_slot resident-CTA slot on the SM
     * @param cta_id global CTA index
     * @param warp_in_cta warp index within the CTA
     * @param lanes number of live threads in this warp
     * @param age_stamp monotonically increasing launch order (GTO age)
     */
    void launch(const Kernel &kernel, u32 cta_slot, u32 cta_id,
                u32 warp_in_cta, u32 lanes, u64 age_stamp);

    /** Return the slot to Idle. */
    void reset();

    Status status() const { return status_; }
    void setStatus(Status s) { status_ = s; }
    bool schedulable() const { return status_ == Status::Running; }

    const Kernel *kernel() const { return kernel_; }
    u32 ctaSlot() const { return ctaSlot_; }
    u32 ctaId() const { return ctaId_; }
    u32 warpInCta() const { return warpInCta_; }
    u64 ageStamp() const { return ageStamp_; }

    SimtStack &stack() { return stack_; }
    const SimtStack &stack() const { return stack_; }

    /** Functional value of one architectural register (32 lanes). */
    WarpRegValue &
    reg(u32 r)
    {
        WC_ASSERT(r < regs_.size(), "register r" << r << " out of range");
        return regs_[r];
    }

    const WarpRegValue &
    reg(u32 r) const
    {
        WC_ASSERT(r < regs_.size(), "register r" << r << " out of range");
        return regs_[r];
    }

    /** Predicate value bitmask (bit i: lane i). */
    LaneMask
    pred(u32 p) const
    {
        WC_ASSERT(p < preds_.size(), "predicate p" << p << " out of range");
        return preds_[p];
    }

    void
    setPred(u32 p, LaneMask v, LaneMask mask)
    {
        WC_ASSERT(p < preds_.size(), "predicate p" << p << " out of range");
        preds_[p] = (preds_[p] & ~mask) | (v & mask);
    }

    /**
     * Lanes in @p mask that pass the guard of @p inst (all of @p mask
     * for unguarded instructions).
     */
    LaneMask
    guardLanes(const Instruction &inst, LaneMask mask) const
    {
        if (!inst.hasGuard())
            return mask;
        const LaneMask p = pred(inst.guardPred);
        return mask & (inst.guardNegate ? ~p : p);
    }

    /** Thread index (within the CTA) of lane @p lane. */
    u32 tid(u32 lane) const { return warpInCta_ * kWarpSize + lane; }

    /**
     * Mask of all lanes the warp launched with. An instruction counts
     * as non-divergent when its active mask equals this (so tail warps
     * of odd-sized CTAs do not read as permanently divergent).
     */
    LaneMask fullMask() const { return fullMask_; }

  private:
    Status status_ = Status::Idle;
    const Kernel *kernel_ = nullptr;
    u32 ctaSlot_ = 0;
    u32 ctaId_ = 0;
    u32 warpInCta_ = 0;
    u64 ageStamp_ = 0;
    LaneMask fullMask_ = 0;
    SimtStack stack_;
    std::vector<WarpRegValue> regs_;
    std::vector<LaneMask> preds_;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_WARP_HPP
