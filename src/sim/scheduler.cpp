#include "sim/scheduler.hpp"

namespace warpcomp {

WarpScheduler::WarpScheduler(SchedPolicy policy, std::vector<u32> slots)
    : policy_(policy), slots_(std::move(slots))
{
}

void
WarpScheduler::noteIssued(u32 slot)
{
    lastIssued_ = static_cast<i32>(slot);
    if (policy_ == SchedPolicy::Lrr) {
        for (u32 i = 0; i < slots_.size(); ++i) {
            if (slots_[i] == slot) {
                rrCursor_ = (i + 1) % static_cast<u32>(slots_.size());
                break;
            }
        }
    }
}

} // namespace warpcomp
