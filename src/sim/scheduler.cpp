#include "sim/scheduler.hpp"

#include "common/log.hpp"

namespace warpcomp {

WarpScheduler::WarpScheduler(SchedPolicy policy, std::vector<u32> slots)
    : policy_(policy), slots_(std::move(slots))
{
    u32 max_slot = 0;
    for (u32 s : slots_)
        max_slot = std::max(max_slot, s);
    slotIndex_.assign(slots_.empty() ? 0 : max_slot + 1, -1);
    for (u32 i = 0; i < slots_.size(); ++i) {
        WC_ASSERT(slotIndex_[slots_[i]] < 0,
                  "duplicate warp slot " << slots_[i]
                  << " in scheduler slot list");
        slotIndex_[slots_[i]] = static_cast<i32>(i);
    }
}

void
WarpScheduler::noteIssued(u32 slot)
{
    // A slot this scheduler does not own would silently corrupt the
    // rotation state; that is a caller bug, not a recoverable input.
    WC_ASSERT(slot < slotIndex_.size() && slotIndex_[slot] >= 0,
              "noteIssued for foreign warp slot " << slot);
    lastIssued_ = static_cast<i32>(slot);
    if (policy_ == SchedPolicy::Lrr) {
        const u32 n = static_cast<u32>(slots_.size());
        WC_ASSERT(n > 0, "noteIssued on a slotless scheduler");
        rrCursor_ = (static_cast<u32>(slotIndex_[slot]) + 1) % n;
    }
}

} // namespace warpcomp
