#include "sim/scheduler.hpp"

#include "common/log.hpp"

namespace warpcomp {

WarpScheduler::WarpScheduler(SchedPolicy policy, std::vector<u32> slots)
    : policy_(policy), slots_(std::move(slots))
{
}

i32
WarpScheduler::pick(const std::function<bool(u32)> &ready,
                    const std::function<u64(u32)> &age)
{
    if (slots_.empty())
        return -1;

    if (policy_ == SchedPolicy::Gto) {
        // Greedy: stick with the last issuer while it can go.
        if (lastIssued_ >= 0 && ready(static_cast<u32>(lastIssued_)))
            return lastIssued_;
        // Then-oldest: smallest age stamp among ready warps.
        i32 best = -1;
        u64 best_age = ~u64{0};
        for (u32 slot : slots_) {
            if (!ready(slot))
                continue;
            const u64 a = age(slot);
            if (a < best_age) {
                best_age = a;
                best = static_cast<i32>(slot);
            }
        }
        return best;
    }

    // LRR: scan from one past the previous pick.
    const u32 n = static_cast<u32>(slots_.size());
    for (u32 i = 0; i < n; ++i) {
        const u32 idx = (rrCursor_ + i) % n;
        if (ready(slots_[idx]))
            return static_cast<i32>(slots_[idx]);
    }
    return -1;
}

void
WarpScheduler::noteIssued(u32 slot)
{
    lastIssued_ = static_cast<i32>(slot);
    if (policy_ == SchedPolicy::Lrr) {
        for (u32 i = 0; i < slots_.size(); ++i) {
            if (slots_[i] == slot) {
                rrCursor_ = (i + 1) % static_cast<u32>(slots_.size());
                break;
            }
        }
    }
}

} // namespace warpcomp
