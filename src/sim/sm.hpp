/**
 * @file
 * The streaming multiprocessor model: warp schedulers, operand
 * collectors, bank arbiter, execution pipelines, and the compression /
 * decompression path of Fig 1. One Sm instance simulates one SM for one
 * kernel launch.
 */

#ifndef WARPCOMP_SIM_SM_HPP
#define WARPCOMP_SIM_SM_HPP

#include <memory>
#include <span>
#include <vector>

#include "analysis/similarity.hpp"
#include "common/types.hpp"
#include "compress/unit.hpp"
#include "mem/memory.hpp"
#include "power/energy_meter.hpp"
#include "regfile/rfc.hpp"
#include "sim/arbiter.hpp"
#include "sim/collector.hpp"
#include "sim/exec_unit.hpp"
#include "sim/functional.hpp"
#include "sim/params.hpp"
#include "sim/scheduler.hpp"
#include "sim/scoreboard.hpp"
#include "sim/warp.hpp"

namespace warpcomp {

/** Counters gathered during one simulation (figures 2,3,5,8,11,12). */
struct SimStats
{
    u64 issued = 0;             ///< instructions issued (incl. dummy MOVs)
    u64 issuedDivergent = 0;    ///< issued with a partial active mask
    u64 dummyMovs = 0;          ///< injected decompress-MOVs (Fig 11)
    u64 regWrites = 0;          ///< GPR-writing instructions
    u64 regWritesDivergent = 0;
    u64 writesStoredCompressed = 0;

    SimilarityBins simBins{};   ///< Fig 2
    RatioAccum ratio{};         ///< Fig 8 (potential compressibility)

    /** Fig 5: best <base,delta> histogram; indices follow
     *  fullBdiCandidates() order, last slot = not compressible. */
    u64 bdiSelect[8] = {};

    /** Fig 12: mean fraction of allocated registers in compressed
     *  state, sampled at each issue, per phase. */
    double compressedFracSum[2] = {};
    u64 compressedFracSamples[2] = {};

    void merge(const SimStats &other);

    double
    compressedFraction(Phase phase) const
    {
        const u64 n = compressedFracSamples[phase];
        return n == 0 ? 0.0 : compressedFracSum[phase] /
            static_cast<double>(n);
    }
};

/** One streaming multiprocessor executing one kernel launch. */
class Sm
{
  public:
    /**
     * @param params SM configuration (call params.applyScheme() first)
     * @param energy energy constants for the meter
     * @param gmem global memory
     * @param cmem constant bank
     * @param kernel kernel being launched
     * @param dims grid/block dimensions
     * @param collect_bdi_breakdown enable the Fig 5 explorer stats
     */
    Sm(const SmParams &params, const EnergyParams &energy,
       GlobalMemory &gmem, ConstantMemory &cmem, const Kernel &kernel,
       const LaunchDims &dims, bool collect_bdi_breakdown = false);

    /**
     * Try to make CTA @p cta_id resident at cycle @p now; false when out
     * of resources. @p now must be the current simulation cycle: the
     * register allocation timestamps bank valid bits and power-gate
     * wakeups, and a stale cycle makes the gate FSM see time run
     * backwards (second and later CTA waves always launch after 0).
     */
    bool tryLaunchCta(u32 cta_id, Cycle now);

    /** Simulate one cycle at global time @p now. */
    void cycle(Cycle now);

    /**
     * Attach shared observability state (nullptr detaches). Forwarded
     * to the register file so bank gate transitions are traced too.
     * Every hook site branches on the pointer: an unattached SM runs
     * the exact pre-observability instruction stream.
     */
    void attachObs(ObsRun *obs, u16 sm_id);

    /** True while any CTA is resident or instructions are in flight. */
    bool busy() const;

    const SmParams &params() const { return params_; }
    const EnergyMeter &meter() const { return meter_; }
    const SimStats &stats() const { return stats_; }
    const RegisterFile &regfile() const { return rf_; }
    /** Memory accesses squashed by fault containment (policy None). */
    u64 unrecoverableAccesses() const { return fex_.containedAccesses(); }
    const RegFileCache &rfc() const { return rfc_; }
    u64 ctasCompleted() const { return ctasCompleted_; }

  private:
    /** Resident CTA bookkeeping. */
    struct Cta
    {
        bool active = false;
        u32 ctaId = 0;
        std::unique_ptr<SharedMemory> smem;
        std::vector<u32> warpSlots;
        u32 liveWarps = 0;
        u32 atBarrier = 0;
        u32 inFlight = 0;
    };

    void stepWritebackAndExec(Cycle now);
    void stepCollect(Cycle now);
    void stepIssue(Cycle now);
    /** Per-cycle SEU work: draw this cycle's flips, run the scrubber. */
    void stepSeu(SeuEngine &seu, Cycle now);
    /** Consume pending flips of (slot, reg) before its value is read,
     *  committing corruption architecturally when unprotected. */
    void resolveSeuRead(SeuEngine &seu, u32 slot, u32 reg, Cycle now);
    bool canIssueFrom(u32 slot) const;
    void issueFrom(u32 slot, Cycle now);
    void issueDummyMov(u32 slot, u8 dst, Cycle now);
    void finishInFlight(InFlight &f, Cycle now);
    void recordWriteStats(const Warp &warp, const Instruction &inst,
                          LaneMask eff, bool divergent,
                          std::span<const u8> img, const BdiEncoded &enc);
    void tryReleaseBarrier(Cta &cta);
    void maybeCompleteCta(u32 cta_slot, Cycle now);
    u32 freeSmemBytes() const;

    SmParams params_;
    const Kernel &kernel_;
    LaunchDims dims_;
    bool collectBdi_;

    RegisterFile rf_;
    RegFileCache rfc_;
    Scoreboard scoreboard_;
    BankArbiter arbiter_;
    CollectorPool collectors_;
    std::vector<InFlight> execList_;
    std::vector<WarpScheduler> schedulers_;
    UnitPool compPool_;
    UnitPool decompPool_;
    DispatchLimiter simtDispatch_;
    DispatchLimiter memDispatch_;
    FunctionalExecutor fex_;

    std::vector<Warp> warps_;
    std::vector<Cta> ctas_;
    /** Scratch for tryLaunchCta's free-slot scan (capacity reserved at
     *  construction so the launch path performs no per-wave allocation
     *  for it). */
    std::vector<u32> launchSlots_;
    u32 outstandingMem_ = 0;
    u64 ageCounter_ = 0;
    u64 ctasCompleted_ = 0;
    /** Cached: SEC-DED active, so reads/writes charge decode/encode. */
    bool seuEcc_ = false;

    EnergyMeter meter_;
    SimStats stats_;

    /** Shared observability sink; nullptr = disabled (zero cost). */
    ObsRun *obs_ = nullptr;
    u16 obsSmId_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_SM_HPP
