/**
 * @file
 * The streaming multiprocessor model: warp schedulers, operand
 * collectors, bank arbiter, execution pipelines, and the compression /
 * decompression path of Fig 1. One Sm instance simulates one SM for one
 * kernel launch.
 */

#ifndef WARPCOMP_SIM_SM_HPP
#define WARPCOMP_SIM_SM_HPP

#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "analysis/similarity.hpp"
#include "common/types.hpp"
#include "compress/unit.hpp"
#include "mem/memory.hpp"
#include "power/energy_meter.hpp"
#include "regfile/rfc.hpp"
#include "sim/arbiter.hpp"
#include "sim/collector.hpp"
#include "sim/exec_unit.hpp"
#include "sim/functional.hpp"
#include "sim/params.hpp"
#include "sim/scheduler.hpp"
#include "sim/scoreboard.hpp"
#include "sim/warp.hpp"

namespace warpcomp {

/** Counters gathered during one simulation (figures 2,3,5,8,11,12). */
struct SimStats
{
    u64 issued = 0;             ///< instructions issued (incl. dummy MOVs)
    u64 issuedDivergent = 0;    ///< issued with a partial active mask
    u64 dummyMovs = 0;          ///< injected decompress-MOVs (Fig 11)
    u64 regWrites = 0;          ///< GPR-writing instructions
    u64 regWritesDivergent = 0;
    u64 writesStoredCompressed = 0;

    SimilarityBins simBins{};   ///< Fig 2
    RatioAccum ratio{};         ///< Fig 8 (potential compressibility)

    /** Fig 5: best <base,delta> histogram; indices follow
     *  fullBdiCandidates() order, last slot = not compressible. */
    u64 bdiSelect[8] = {};

    /** Fig 12: mean fraction of allocated registers in compressed
     *  state, sampled at each issue, per phase. */
    double compressedFracSum[2] = {};
    u64 compressedFracSamples[2] = {};

    void merge(const SimStats &other);

    double
    compressedFraction(Phase phase) const
    {
        const u64 n = compressedFracSamples[phase];
        return n == 0 ? 0.0 : compressedFracSum[phase] /
            static_cast<double>(n);
    }
};

/** One streaming multiprocessor executing one kernel launch. */
class Sm
{
  public:
    /**
     * @param params SM configuration (call params.applyScheme() first)
     * @param energy energy constants for the meter
     * @param gmem global memory
     * @param cmem constant bank
     * @param kernel kernel being launched
     * @param dims grid/block dimensions
     * @param collect_bdi_breakdown enable the Fig 5 explorer stats
     */
    Sm(const SmParams &params, const EnergyParams &energy,
       GlobalMemory &gmem, ConstantMemory &cmem, const Kernel &kernel,
       const LaunchDims &dims, bool collect_bdi_breakdown = false);

    /**
     * Try to make CTA @p cta_id resident at cycle @p now; false when out
     * of resources. @p now must be the current simulation cycle: the
     * register allocation timestamps bank valid bits and power-gate
     * wakeups, and a stale cycle makes the gate FSM see time run
     * backwards (second and later CTA waves always launch after 0).
     */
    bool tryLaunchCta(u32 cta_id, Cycle now);

    /** Simulate one cycle at global time @p now. */
    void cycle(Cycle now);

    /** Returned by nextEventCycle when the SM has no future event at
     *  all (idle, no scrub engine): the GPU may skip arbitrarily far. */
    static constexpr Cycle kNoEvent = std::numeric_limits<Cycle>::max();

    /**
     * Earliest cycle >= @p now at which executing a cycle on this SM
     * could change architectural or counted state. Returns @p now when
     * anything might happen this very cycle (an operand collector is
     * retrying, an in-flight op is ready, a warp can issue), the
     * minimum in-flight readyAt / power-gate wake otherwise, capped at
     * the next scrub-engine tick, and kNoEvent for an idle SM with no
     * scrubbing. Cycles in (now, nextEventCycle) are provably
     * uneventful and may be bulk-accounted with skipCycles.
     */
    Cycle nextEventCycle(Cycle now);

    /**
     * The cached next-event cycle maintained by cycle()/tryLaunchCta:
     * cycles strictly before it are uneventful for this SM (they take
     * the light path inside cycle(), and the GPU may bulk-skip to the
     * minimum across SMs). 0 until the first cycle executes.
     */
    Cycle cachedNextEvent() const { return nextEvent_; }

    /**
     * Bulk-account the uneventful span [@p from, @p to): energy-meter
     * cycles, the bank activity census (closed form), the per-cycle SEU
     * flip stream (replayed cycle by cycle so pending flips accumulate
     * bit-identically), and observability windows. Only valid for spans
     * nextEventCycle declared event-free.
     */
    void skipCycles(Cycle from, Cycle to);

    /**
     * Attach shared observability state (nullptr detaches). Forwarded
     * to the register file so bank gate transitions are traced too.
     * Every hook site branches on the pointer: an unattached SM runs
     * the exact pre-observability instruction stream.
     */
    void attachObs(ObsRun *obs, u16 sm_id);

    /** True while any CTA is resident or instructions are in flight. */
    bool busy() const;

    const SmParams &params() const { return params_; }
    const EnergyMeter &meter() const { return meter_; }
    const SimStats &stats() const { return stats_; }
    const RegisterFile &regfile() const { return rf_; }
    /** Memory accesses squashed by fault containment (policy None). */
    u64 unrecoverableAccesses() const { return fex_.containedAccesses(); }
    const RegFileCache &rfc() const { return rfc_; }
    u64 ctasCompleted() const { return ctasCompleted_; }

  private:
    /** Resident CTA bookkeeping. */
    struct Cta
    {
        bool active = false;
        u32 ctaId = 0;
        std::unique_ptr<SharedMemory> smem;
        std::vector<u32> warpSlots;
        u32 liveWarps = 0;
        u32 atBarrier = 0;
        u32 inFlight = 0;
    };

    /** Claim a zeroed slab entry / return one to the freelist. */
    InFlight *allocFlight();
    void freeFlight(InFlight *f);

    void stepWritebackAndExec(Cycle now);
    void stepCollect(Cycle now);
    void stepIssue(Cycle now);
    /** Per-cycle SEU work: draw this cycle's flips, run the scrubber. */
    void stepSeu(SeuEngine &seu, Cycle now);
    /** Consume pending flips of (slot, reg) before its value is read,
     *  committing corruption architecturally when unprotected. */
    void resolveSeuRead(SeuEngine &seu, u32 slot, u32 reg, Cycle now);
    bool canIssueFrom(u32 slot);
    void issueFrom(u32 slot, Cycle now);
    void issueDummyMov(u32 slot, u8 dst, Cycle now);
    void finishInFlight(InFlight &f, Cycle now);
    void recordWriteStats(const Warp &warp, const Instruction &inst,
                          LaneMask eff, bool divergent,
                          std::span<const u8> img, const BdiEncoded &enc);
    void tryReleaseBarrier(Cta &cta);
    void maybeCompleteCta(u32 cta_slot, Cycle now);
    u32 freeSmemBytes() const;

    SmParams params_;
    const Kernel &kernel_;
    LaunchDims dims_;
    bool collectBdi_;

    RegisterFile rf_;
    RegFileCache rfc_;
    Scoreboard scoreboard_;
    BankArbiter arbiter_;
    CollectorPool collectors_;
    std::vector<InFlight *> execList_;
    /** Stable backing store for in-flight entries: deque growth never
     *  moves existing entries, and freed ones recycle through
     *  flightFree_, so the steady-state pipeline allocates nothing and
     *  moves pointers instead of ~400-byte InFlight payloads. */
    std::deque<InFlight> flightSlab_;
    std::vector<InFlight *> flightFree_;
    std::vector<WarpScheduler> schedulers_;
    UnitPool compPool_;
    UnitPool decompPool_;
    DispatchLimiter simtDispatch_;
    DispatchLimiter memDispatch_;
    FunctionalExecutor fex_;

    std::vector<Warp> warps_;
    /** Per-slot fast-fail byte for the issue probe: nonzero while the
     *  slot is known unissuable for a sticky reason (scoreboard hazard
     *  at the current pc, or not schedulable). Lets the scheduler scan
     *  skip blocked slots without touching the large Warp objects.
     *  Cleared wherever the sticky reason can lapse: writeback
     *  releases (finishInFlight), barrier release, and CTA launch.
     *  Volatile reasons (no free collector, MSHR budget) never set
     *  it. */
    std::vector<u8> issueBlocked_;
    std::vector<Cta> ctas_;
    /** Scratch for tryLaunchCta's free-slot scan (capacity reserved at
     *  construction so the launch path performs no per-wave allocation
     *  for it). */
    std::vector<u32> launchSlots_;
    u32 outstandingMem_ = 0;
    /** Cycles before this are provably uneventful (see
     *  cachedNextEvent); recomputed after every fully executed cycle,
     *  reset by a successful CTA launch. */
    Cycle nextEvent_ = 0;
    /** Earliest cycle any execList_ entry can act (kNoEvent when the
     *  list is empty): lets stepWritebackAndExec skip its walk on
     *  cycles where nothing is due and feeds nextEventCycle. */
    Cycle execMinReady_ = kNoEvent;
    /** False while the last complete issue scan found nothing issuable
     *  and no event since (scoreboard release, freed collector, MSHR
     *  release, barrier release, CTA launch) could change that — the
     *  scheduler scan is provably fruitless and is skipped. */
    bool issueCandidate_ = true;
    /** The most recent cycle's issue scan completed with no issuable
     *  warp; consumed by nextEventCycle in place of a re-scan. */
    bool noIssuable_ = false;
    /** A failed CTA launch stays failed until some CTA completes:
     *  every CTA of one kernel launch has identical resource needs,
     *  and resources are only freed at CTA completion. */
    bool launchBlocked_ = false;
    u64 ageCounter_ = 0;
    u64 ctasCompleted_ = 0;
    /** Cached: SEC-DED active, so reads/writes charge decode/encode. */
    bool seuEcc_ = false;

    EnergyMeter meter_;
    SimStats stats_;

    /** Shared observability sink; nullptr = disabled (zero cost). */
    ObsRun *obs_ = nullptr;
    u16 obsSmId_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_SM_HPP
