#include "sim/functional.hpp"

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace warpcomp {

namespace {

bool
compareI(CmpOp op, i32 a, i32 b)
{
    switch (op) {
      case CmpOp::Lt: return a < b;
      case CmpOp::Le: return a <= b;
      case CmpOp::Gt: return a > b;
      case CmpOp::Ge: return a >= b;
      case CmpOp::Eq: return a == b;
      case CmpOp::Ne: return a != b;
      default: WC_PANIC("unknown compare op");
    }
}

bool
compareF(CmpOp op, float a, float b)
{
    switch (op) {
      case CmpOp::Lt: return a < b;
      case CmpOp::Le: return a <= b;
      case CmpOp::Gt: return a > b;
      case CmpOp::Ge: return a >= b;
      case CmpOp::Eq: return a == b;
      case CmpOp::Ne: return a != b;
      default: WC_PANIC("unknown compare op");
    }
}

float
asF(u32 v)
{
    return std::bit_cast<float>(v);
}

u32
asU(float v)
{
    return std::bit_cast<u32>(v);
}

} // namespace

FunctionalExecutor::FunctionalExecutor(GlobalMemory &gmem,
                                       ConstantMemory &cmem)
    : gmem_(gmem), cmem_(cmem)
{
}

bool
FunctionalExecutor::addrValid(Opcode op, u64 addr,
                              const SharedMemory *smem) const
{
    u64 size = 0;
    switch (op) {
      case Opcode::Ldg:
      case Opcode::Stg:
        size = gmem_.size();
        break;
      case Opcode::Lds:
      case Opcode::Sts:
        size = smem != nullptr ? smem->size() : 0;
        break;
      case Opcode::Ldc:
        size = cmem_.size();
        break;
      default:
        WC_PANIC("addrValid on a non-memory opcode");
    }
    // Word-aligned and fully in range; anything else would raise an
    // out-of-range or misaligned-address fault on hardware.
    return (addr & 3) == 0 && addr < size && size - addr >= 4;
}

ExecOutcome
FunctionalExecutor::execute(Warp &warp, u32 pc, SharedMemory *smem,
                            const LaunchDims &dims)
{
    const Kernel &kernel = *warp.kernel();
    const Instruction &in = kernel.at(pc);
    WC_ASSERT(pc == warp.stack().pc(), "functional execute out of order");

    const LaneMask active = warp.stack().mask();
    const LaneMask eff = warp.guardLanes(in, active);

    ExecOutcome out;
    out.effMask = eff;

    // Per-lane ALU helper: applies fn over effective lanes, merging into
    // the destination register (inactive lanes keep their old value).
    auto lanewise = [&](auto &&fn) {
        if (in.dst == kNoReg)
            return;
        WarpRegValue &d = warp.reg(in.dst);
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
            if (laneActive(eff, lane))
                d[lane] = fn(lane);
        }
        out.wroteReg = eff != 0;
    };
    // Resolve each source once per instruction — a lane pointer for
    // registers, a broadcast value for immediates — so the per-lane
    // loops below index flat arrays instead of re-deriving the operand
    // kind 32 times.
    struct SrcRef
    {
        const u32 *lanes = nullptr;
        u32 imm = 0;
    };
    const auto resolve = [&warp](const Operand &o) -> SrcRef {
        if (o.isReg())
            return {warp.reg(o.reg).data(), 0};
        return {nullptr, static_cast<u32>(o.imm)};
    };
    const SrcRef r0 = resolve(in.src[0]);
    const SrcRef r1 = resolve(in.src[1]);
    const SrcRef r2 = resolve(in.src[2]);
    auto s0 = [&](u32 lane) { return r0.lanes ? r0.lanes[lane] : r0.imm; };
    auto s1 = [&](u32 lane) { return r1.lanes ? r1.lanes[lane] : r1.imm; };
    auto s2 = [&](u32 lane) { return r2.lanes ? r2.lanes[lane] : r2.imm; };

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::S2R:
        lanewise([&](u32 lane) -> u32 {
            switch (in.sreg) {
              case SpecialReg::TidX: return warp.tid(lane);
              case SpecialReg::CtaIdX: return warp.ctaId();
              case SpecialReg::NTidX: return dims.blockDim;
              case SpecialReg::NCtaIdX: return dims.gridDim;
              case SpecialReg::LaneId: return lane;
              default: WC_PANIC("unknown special register");
            }
        });
        break;
      case Opcode::Mov:
      case Opcode::MovImm:
        lanewise([&](u32 lane) { return s0(lane); });
        break;
      case Opcode::IAdd:
        lanewise([&](u32 lane) { return s0(lane) + s1(lane); });
        break;
      case Opcode::ISub:
        lanewise([&](u32 lane) { return s0(lane) - s1(lane); });
        break;
      case Opcode::IMul:
        lanewise([&](u32 lane) { return s0(lane) * s1(lane); });
        break;
      case Opcode::IMad:
        lanewise([&](u32 lane) { return s0(lane) * s1(lane) + s2(lane); });
        break;
      case Opcode::IMin:
        lanewise([&](u32 lane) {
            const i32 a = static_cast<i32>(s0(lane));
            const i32 b = static_cast<i32>(s1(lane));
            return static_cast<u32>(a < b ? a : b);
        });
        break;
      case Opcode::IMax:
        lanewise([&](u32 lane) {
            const i32 a = static_cast<i32>(s0(lane));
            const i32 b = static_cast<i32>(s1(lane));
            return static_cast<u32>(a > b ? a : b);
        });
        break;
      case Opcode::IAbs:
        lanewise([&](u32 lane) {
            const i32 a = static_cast<i32>(s0(lane));
            return static_cast<u32>(a < 0 ? -a : a);
        });
        break;
      case Opcode::And:
        lanewise([&](u32 lane) { return s0(lane) & s1(lane); });
        break;
      case Opcode::Or:
        lanewise([&](u32 lane) { return s0(lane) | s1(lane); });
        break;
      case Opcode::Xor:
        lanewise([&](u32 lane) { return s0(lane) ^ s1(lane); });
        break;
      case Opcode::Not:
        lanewise([&](u32 lane) { return ~s0(lane); });
        break;
      case Opcode::Shl:
        lanewise([&](u32 lane) { return s0(lane) << (s1(lane) & 31); });
        break;
      case Opcode::Shr:
        lanewise([&](u32 lane) { return s0(lane) >> (s1(lane) & 31); });
        break;
      case Opcode::Sra:
        lanewise([&](u32 lane) {
            return static_cast<u32>(static_cast<i32>(s0(lane)) >>
                                    (s1(lane) & 31));
        });
        break;
      case Opcode::IMulHi:
        lanewise([&](u32 lane) {
            const i64 p = static_cast<i64>(static_cast<i32>(s0(lane))) *
                          static_cast<i64>(static_cast<i32>(s1(lane)));
            return static_cast<u32>(static_cast<u64>(p) >> 32);
        });
        break;
      case Opcode::IMulHiU:
        lanewise([&](u32 lane) {
            const u64 p = static_cast<u64>(s0(lane)) *
                          static_cast<u64>(s1(lane));
            return static_cast<u32>(p >> 32);
        });
        break;
      // Division follows the RISC-V M rules the binary frontend relies
      // on: x/0 = -1 (all ones), x%0 = x, INT_MIN / -1 = INT_MIN with
      // remainder 0 — no lane ever traps.
      case Opcode::IDiv:
        lanewise([&](u32 lane) {
            const i32 a = static_cast<i32>(s0(lane));
            const i32 b = static_cast<i32>(s1(lane));
            if (b == 0)
                return ~0u;
            if (a == INT32_MIN && b == -1)
                return static_cast<u32>(INT32_MIN);
            return static_cast<u32>(a / b);
        });
        break;
      case Opcode::IDivU:
        lanewise([&](u32 lane) {
            const u32 b = s1(lane);
            return b == 0 ? ~0u : s0(lane) / b;
        });
        break;
      case Opcode::IRem:
        lanewise([&](u32 lane) {
            const i32 a = static_cast<i32>(s0(lane));
            const i32 b = static_cast<i32>(s1(lane));
            if (b == 0)
                return static_cast<u32>(a);
            if (a == INT32_MIN && b == -1)
                return 0u;
            return static_cast<u32>(a % b);
        });
        break;
      case Opcode::IRemU:
        lanewise([&](u32 lane) {
            const u32 b = s1(lane);
            return b == 0 ? s0(lane) : s0(lane) % b;
        });
        break;
      case Opcode::ISetP: {
        LaneMask result = 0;
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
            if (!laneActive(eff, lane))
                continue;
            if (compareI(in.cmp, static_cast<i32>(s0(lane)),
                         static_cast<i32>(s1(lane)))) {
                result |= 1u << lane;
            }
        }
        warp.setPred(in.dstPred, result, eff);
        break;
      }
      case Opcode::FSetP: {
        LaneMask result = 0;
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
            if (!laneActive(eff, lane))
                continue;
            if (compareF(in.cmp, asF(s0(lane)), asF(s1(lane))))
                result |= 1u << lane;
        }
        warp.setPred(in.dstPred, result, eff);
        break;
      }
      case Opcode::PAnd:
        warp.setPred(in.dstPred,
                     warp.pred(in.srcPred) & warp.pred(in.srcPred2), eff);
        break;
      case Opcode::POr:
        warp.setPred(in.dstPred,
                     warp.pred(in.srcPred) | warp.pred(in.srcPred2), eff);
        break;
      case Opcode::PNot:
        warp.setPred(in.dstPred, ~warp.pred(in.srcPred), eff);
        break;
      case Opcode::SelP: {
        const LaneMask p = warp.pred(in.srcPred);
        lanewise([&](u32 lane) {
            return laneActive(p, lane) ? s0(lane) : s1(lane);
        });
        break;
      }
      case Opcode::FAdd:
        lanewise([&](u32 lane) {
            return asU(asF(s0(lane)) + asF(s1(lane)));
        });
        break;
      case Opcode::FMul:
        lanewise([&](u32 lane) {
            return asU(asF(s0(lane)) * asF(s1(lane)));
        });
        break;
      case Opcode::FFma:
        lanewise([&](u32 lane) {
            return asU(asF(s0(lane)) * asF(s1(lane)) + asF(s2(lane)));
        });
        break;
      case Opcode::FMin:
        lanewise([&](u32 lane) {
            return asU(std::fmin(asF(s0(lane)), asF(s1(lane))));
        });
        break;
      case Opcode::FMax:
        lanewise([&](u32 lane) {
            return asU(std::fmax(asF(s0(lane)), asF(s1(lane))));
        });
        break;
      case Opcode::I2F:
        lanewise([&](u32 lane) {
            return asU(static_cast<float>(static_cast<i32>(s0(lane))));
        });
        break;
      case Opcode::F2I:
        lanewise([&](u32 lane) {
            return static_cast<u32>(static_cast<i32>(asF(s0(lane))));
        });
        break;
      case Opcode::FRcp:
        lanewise([&](u32 lane) { return asU(1.0f / asF(s0(lane))); });
        break;
      case Opcode::Ldg:
      case Opcode::Stg:
      case Opcode::Lds:
      case Opcode::Sts:
      case Opcode::Ldc: {
        out.isMem = true;
        const bool shared = in.op == Opcode::Lds || in.op == Opcode::Sts;
        if (shared) {
            WC_ASSERT(smem != nullptr,
                      "shared access in a kernel with no shared memory");
        }
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
            if (!laneActive(eff, lane))
                continue;
            const u64 addr = static_cast<u64>(s0(lane)) +
                static_cast<i64>(in.memOffset);
            out.addrs[lane] = addr;
            if (containFaults_ && !addrValid(in.op, addr, smem)) {
                // Fault injection drove this address out of range; on
                // hardware this raises a memory fault. Squash the lane
                // access and count it as unrecoverable.
                ++contained_;
                if (in.isLoad())
                    warp.reg(in.dst)[lane] = 0;
                continue;
            }
            switch (in.op) {
              case Opcode::Ldg:
                warp.reg(in.dst)[lane] = gmem_.read32(addr);
                break;
              case Opcode::Stg:
                gmem_.write32(addr, s1(lane));
                break;
              case Opcode::Lds:
                warp.reg(in.dst)[lane] =
                    smem->read32(static_cast<u32>(addr));
                break;
              case Opcode::Sts:
                smem->write32(static_cast<u32>(addr), s1(lane));
                break;
              case Opcode::Ldc:
                warp.reg(in.dst)[lane] =
                    cmem_.read32(static_cast<u32>(addr));
                break;
              default:
                WC_PANIC("unreachable");
            }
        }
        out.wroteReg = in.isLoad() && eff != 0;
        break;
      }
      case Opcode::Bra: {
        // Guard selects the taken lanes; unguarded branches are taken
        // by every active lane.
        out.diverged = warp.stack().branch(in.target, in.reconv, eff,
                                           pc + 1);
        out.warpFinished = warp.stack().empty();
        return out;
      }
      case Opcode::Bar:
        break;
      case Opcode::Exit: {
        // Lanes failing the guard stay alive; if every lane of the top
        // entry exits, the entry disappears and the next entry's pc must
        // not be disturbed.
        const LaneMask remaining = active & ~eff;
        warp.stack().exitLanes(eff);
        out.warpFinished = warp.stack().empty();
        if (!out.warpFinished && remaining != 0)
            warp.stack().advance(pc + 1);
        return out;
      }
      default:
        WC_PANIC("unhandled opcode in functional execution");
    }

    warp.stack().advance(pc + 1);
    return out;
}

} // namespace warpcomp
