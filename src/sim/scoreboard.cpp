#include "sim/scoreboard.hpp"

namespace warpcomp {

Scoreboard::Scoreboard(u32 max_warps)
    : regBits_(max_warps, 0), predBits_(max_warps, 0)
{
}

void
Scoreboard::clearWarp(u32 warp)
{
    WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
    regBits_[warp] = 0;
    predBits_[warp] = 0;
}

} // namespace warpcomp
