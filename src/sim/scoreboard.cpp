#include "sim/scoreboard.hpp"

#include "common/log.hpp"

namespace warpcomp {

Scoreboard::Scoreboard(u32 max_warps)
    : regBits_(max_warps, 0), predBits_(max_warps, 0)
{
}

bool
Scoreboard::canIssue(u32 warp, const Instruction &inst) const
{
    WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
    const u64 regs = regBits_[warp];
    const u8 preds = predBits_[warp];

    for (const Operand &o : inst.src) {
        if (o.isReg() && (regs >> o.reg) & 1)
            return false;
    }
    if (inst.hasDst() && ((regs >> inst.dst) & 1))
        return false;
    if (inst.guardPred != kNoPred && ((preds >> inst.guardPred) & 1))
        return false;
    if (inst.srcPred != kNoPred && ((preds >> inst.srcPred) & 1))
        return false;
    if (inst.srcPred2 != kNoPred && ((preds >> inst.srcPred2) & 1))
        return false;
    if (inst.dstPred != kNoPred && ((preds >> inst.dstPred) & 1))
        return false;
    return true;
}

void
Scoreboard::reserve(u32 warp, const Instruction &inst)
{
    WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
    if (inst.hasDst())
        regBits_[warp] |= u64{1} << inst.dst;
    if (inst.dstPred != kNoPred)
        predBits_[warp] |= u8{1} << inst.dstPred;
}

void
Scoreboard::releaseReg(u32 warp, u32 reg)
{
    WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
    WC_ASSERT((regBits_[warp] >> reg) & 1,
              "releasing r" << reg << " that was not reserved");
    regBits_[warp] &= ~(u64{1} << reg);
}

void
Scoreboard::releasePred(u32 warp, u32 pred)
{
    WC_ASSERT(warp < predBits_.size(), "warp slot out of range");
    WC_ASSERT((predBits_[warp] >> pred) & 1,
              "releasing p" << pred << " that was not reserved");
    predBits_[warp] &= ~(u8{1} << pred);
}

bool
Scoreboard::regPending(u32 warp, u32 reg) const
{
    WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
    return (regBits_[warp] >> reg) & 1;
}

bool
Scoreboard::predPending(u32 warp, u32 pred) const
{
    WC_ASSERT(warp < predBits_.size(), "warp slot out of range");
    return (predBits_[warp] >> pred) & 1;
}

void
Scoreboard::clearWarp(u32 warp)
{
    WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
    regBits_[warp] = 0;
    predBits_[warp] = 0;
}

bool
Scoreboard::idle(u32 warp) const
{
    WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
    return regBits_[warp] == 0 && predBits_[warp] == 0;
}

} // namespace warpcomp
