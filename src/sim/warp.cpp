#include "sim/warp.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace warpcomp {

void
Warp::launch(const Kernel &kernel, u32 cta_slot, u32 cta_id,
             u32 warp_in_cta, u32 lanes, u64 age_stamp)
{
    WC_ASSERT(status_ == Status::Idle, "launching into a busy warp slot");
    WC_ASSERT(lanes >= 1 && lanes <= kWarpSize, "bad lane count " << lanes);

    status_ = Status::Running;
    kernel_ = &kernel;
    ctaSlot_ = cta_slot;
    ctaId_ = cta_id;
    warpInCta_ = warp_in_cta;
    ageStamp_ = age_stamp;
    fullMask_ = firstLanes(lanes);
    stack_.reset(fullMask_);
    regs_.assign(kernel.numRegs(), WarpRegValue{});
    preds_.assign(kernel.numPreds(), 0);
}

void
Warp::reset()
{
    status_ = Status::Idle;
    kernel_ = nullptr;
    regs_.clear();
    preds_.clear();
}

} // namespace warpcomp
