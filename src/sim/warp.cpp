#include "sim/warp.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace warpcomp {

void
Warp::launch(const Kernel &kernel, u32 cta_slot, u32 cta_id,
             u32 warp_in_cta, u32 lanes, u64 age_stamp)
{
    WC_ASSERT(status_ == Status::Idle, "launching into a busy warp slot");
    WC_ASSERT(lanes >= 1 && lanes <= kWarpSize, "bad lane count " << lanes);

    status_ = Status::Running;
    kernel_ = &kernel;
    ctaSlot_ = cta_slot;
    ctaId_ = cta_id;
    warpInCta_ = warp_in_cta;
    ageStamp_ = age_stamp;
    fullMask_ = firstLanes(lanes);
    stack_.reset(fullMask_);
    regs_.assign(kernel.numRegs(), WarpRegValue{});
    preds_.assign(kernel.numPreds(), 0);
}

void
Warp::reset()
{
    status_ = Status::Idle;
    kernel_ = nullptr;
    regs_.clear();
    preds_.clear();
}

WarpRegValue &
Warp::reg(u32 r)
{
    WC_ASSERT(r < regs_.size(), "register r" << r << " out of range");
    return regs_[r];
}

const WarpRegValue &
Warp::reg(u32 r) const
{
    WC_ASSERT(r < regs_.size(), "register r" << r << " out of range");
    return regs_[r];
}

LaneMask
Warp::pred(u32 p) const
{
    WC_ASSERT(p < preds_.size(), "predicate p" << p << " out of range");
    return preds_[p];
}

void
Warp::setPred(u32 p, LaneMask v, LaneMask mask)
{
    WC_ASSERT(p < preds_.size(), "predicate p" << p << " out of range");
    preds_[p] = (preds_[p] & ~mask) | (v & mask);
}

LaneMask
Warp::guardLanes(const Instruction &inst, LaneMask mask) const
{
    if (!inst.hasGuard())
        return mask;
    const LaneMask p = pred(inst.guardPred);
    return mask & (inst.guardNegate ? ~p : p);
}

} // namespace warpcomp
