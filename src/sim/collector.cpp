#include "sim/collector.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace warpcomp {

CollectorPool::CollectorPool(u32 num_units) : units_(num_units, nullptr)
{
    WC_ASSERT(num_units > 0, "need at least one collector unit");
    order_.reserve(num_units);
}

bool
CollectorPool::hasFree() const
{
    return order_.size() < units_.size();
}

u32
CollectorPool::insert(InFlight *entry)
{
    WC_ASSERT(entry != nullptr, "inserting a null in-flight entry");
    for (u32 i = 0; i < units_.size(); ++i) {
        if (units_[i] == nullptr) {
            units_[i] = entry;
            order_.push_back(i);
            return i;
        }
    }
    WC_PANIC("insert into a full collector pool");
}

InFlight *
CollectorPool::take(u32 index)
{
    WC_ASSERT(index < units_.size() && units_[index] != nullptr,
              "taking an empty collector unit " << index);
    InFlight *out = units_[index];
    units_[index] = nullptr;
    order_.erase(std::find(order_.begin(), order_.end(), index));
    return out;
}

} // namespace warpcomp
