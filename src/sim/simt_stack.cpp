#include "sim/simt_stack.hpp"

#include "common/log.hpp"

namespace warpcomp {

void
SimtStack::reset(LaneMask initial)
{
    WC_ASSERT(initial != 0, "warp must start with at least one lane");
    stack_.clear();
    stack_.push_back({0, kNoRpc, initial});
}

bool
SimtStack::branch(u32 target, u32 reconv, LaneMask taken, u32 fallthrough)
{
    WC_ASSERT(!stack_.empty(), "branch() on an empty SIMT stack");
    Entry &top = stack_.back();
    WC_ASSERT((taken & ~top.mask) == 0,
              "taken lanes must be a subset of the active mask");
    const LaneMask not_taken = top.mask & ~taken;

    if (taken == 0) {
        top.pc = fallthrough;
        return false;
    }
    if (not_taken == 0) {
        top.pc = target;
        return false;
    }

    // Divergence: the current entry becomes the reconvergence entry and
    // keeps the union mask; the two sides execute from pushed entries.
    top.pc = reconv;
    stack_.push_back({fallthrough, reconv, not_taken});
    stack_.push_back({target, reconv, taken});
    return true;
}

void
SimtStack::exitLanes(LaneMask lanes)
{
    for (Entry &e : stack_)
        e.mask &= ~lanes;
    while (!stack_.empty() && stack_.back().mask == 0)
        stack_.pop_back();
    // Interior entries with empty masks are removed as well: they could
    // otherwise resurface as zero-mask tops and stall the warp.
    std::vector<Entry> kept;
    kept.reserve(stack_.size());
    for (const Entry &e : stack_) {
        if (e.mask != 0)
            kept.push_back(e);
    }
    stack_ = std::move(kept);
}

} // namespace warpcomp
