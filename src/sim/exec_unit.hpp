/**
 * @file
 * Execution-unit dispatch: per-cycle issue limits for the SIMT clusters
 * and the memory pipeline, plus result-latency computation.
 */

#ifndef WARPCOMP_SIM_EXEC_UNIT_HPP
#define WARPCOMP_SIM_EXEC_UNIT_HPP

#include "common/types.hpp"
#include "isa/opcode.hpp"
#include "mem/mem_timing.hpp"

namespace warpcomp {

/** Per-cycle dispatch throttle (no latency; just a rate limit). */
class DispatchLimiter
{
  public:
    explicit DispatchLimiter(u32 per_cycle);

    /** Consume one dispatch slot at @p now; false when exhausted. */
    bool tryDispatch(Cycle now);

    u64 dispatched() const { return dispatched_; }

  private:
    u32 perCycle_;
    Cycle lastCycle_ = ~Cycle{0};
    u32 usedThisCycle_ = 0;
    u64 dispatched_ = 0;
};

/**
 * Result latency of a non-memory instruction (memory latencies come
 * from the coalescing model at issue time).
 */
u32 resultLatency(Opcode op);

} // namespace warpcomp

#endif // WARPCOMP_SIM_EXEC_UNIT_HPP
