#include "sim/sm.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace warpcomp {

void
SimStats::merge(const SimStats &other)
{
    issued += other.issued;
    issuedDivergent += other.issuedDivergent;
    dummyMovs += other.dummyMovs;
    regWrites += other.regWrites;
    regWritesDivergent += other.regWritesDivergent;
    writesStoredCompressed += other.writesStoredCompressed;
    simBins.merge(other.simBins);
    ratio.merge(other.ratio);
    for (u32 i = 0; i < 8; ++i)
        bdiSelect[i] += other.bdiSelect[i];
    for (u32 p = 0; p < 2; ++p) {
        compressedFracSum[p] += other.compressedFracSum[p];
        compressedFracSamples[p] += other.compressedFracSamples[p];
    }
}

Sm::Sm(const SmParams &params, const EnergyParams &energy,
       GlobalMemory &gmem, ConstantMemory &cmem, const Kernel &kernel,
       const LaunchDims &dims, bool collect_bdi_breakdown)
    : params_(params), kernel_(kernel), dims_(dims),
      collectBdi_(collect_bdi_breakdown),
      rf_(params.regfile, params.faults, params.seu),
      rfc_(params.maxWarps, params.rfcEntriesPerWarp),
      scoreboard_(params.maxWarps),
      arbiter_(params.regfile.numBanks),
      collectors_(params.numCollectors),
      compPool_(params.numCompressors, params.compressLatency),
      decompPool_(params.numDecompressors, params.decompressLatency),
      simtDispatch_(params.simtDispatch),
      memDispatch_(params.memDispatch),
      fex_(gmem, cmem),
      warps_(params.maxWarps),
      ctas_(params.maxCtas),
      meter_(energy,
             params.compressionEnabled() ? params.numCompressors : 0,
             params.compressionEnabled() ? params.numDecompressors : 0)
{
    WC_ASSERT(dims.blockDim >= 1 && dims.blockDim <= params.maxThreads,
              "CTA size " << dims.blockDim << " unsupported");
    meter_.setRfcPresent(rfc_.enabled());
    // With stuck-at faults and no tolerance policy, corrupted address
    // registers produce wild memory accesses; contain them as detected
    // unrecoverable faults instead of panicking the simulation.
    if (rf_.faultMap() != nullptr &&
        rf_.faultPolicy() == FaultPolicy::None)
        fex_.enableFaultContainment();
    // Same containment for transient flips that can silently reach
    // architectural state (Unprotected / Scrub-only SEU schemes).
    if (const SeuEngine *e = rf_.seu()) {
        seuEcc_ = e->params().eccEnabled();
        meter_.setEccPresent(seuEcc_);
        if (e->params().canCorrupt())
            fex_.enableFaultContainment();
    }
    // Steady-state cycle loop is allocation-free: pre-size the exec
    // list to its bound (every in-flight op holds either an MSHR slot
    // or a collector-dispatched short-latency op) and the launch
    // scratch to the warp count.
    execList_.reserve(params.mem.maxOutstanding + params.maxWarps);
    issueBlocked_.assign(params.maxWarps, 0);
    launchSlots_.reserve(params.maxWarps);
}

u32
Sm::freeSmemBytes() const
{
    u32 used = 0;
    for (const Cta &c : ctas_) {
        if (c.active)
            used += kernel_.smemBytes();
    }
    return params_.smemBytes - used;
}

bool
Sm::tryLaunchCta(u32 cta_id, Cycle now)
{
    // Every CTA of one launch has the same resource footprint, and
    // resources are only returned at CTA completion (which clears the
    // flag): a failed attempt stays failed, skip the rescans.
    if (launchBlocked_)
        return false;

    const u32 warps_per_cta = ceilDiv(dims_.blockDim, kWarpSize);
    WC_ASSERT(warps_per_cta <= params_.maxWarps,
              "CTA needs more warps than the SM has");

    // Resident-CTA slot.
    u32 cta_slot = ~0u;
    for (u32 i = 0; i < ctas_.size(); ++i) {
        if (!ctas_[i].active) {
            cta_slot = i;
            break;
        }
    }
    if (cta_slot == ~0u) {
        launchBlocked_ = true;
        return false;
    }

    // Threads and shared memory.
    u32 resident_threads = 0;
    for (const Cta &c : ctas_) {
        if (c.active)
            resident_threads += dims_.blockDim;
    }
    if (resident_threads + dims_.blockDim > params_.maxThreads) {
        launchBlocked_ = true;
        return false;
    }
    if (kernel_.smemBytes() > freeSmemBytes()) {
        launchBlocked_ = true;
        return false;
    }

    // Free warp slots.
    std::vector<u32> &slots = launchSlots_;
    slots.clear();
    for (u32 s = 0; s < warps_.size() &&
         slots.size() < warps_per_cta; ++s) {
        if (warps_[s].status() == Warp::Status::Idle)
            slots.push_back(s);
    }
    if (slots.size() < warps_per_cta) {
        launchBlocked_ = true;
        return false;
    }

    // Register allocation, with rollback on partial failure. Later
    // waves launch at now > 0; the allocation timestamp must be the
    // real cycle or gated banks see time run backwards on wakeup.
    u32 allocated = 0;
    for (; allocated < warps_per_cta; ++allocated) {
        if (!rf_.allocate(slots[allocated], kernel_.numRegs(), now)) {
            for (u32 a = 0; a < allocated; ++a)
                rf_.release(slots[a], now);
            launchBlocked_ = true;
            return false;
        }
    }

    Cta &cta = ctas_[cta_slot];
    cta.active = true;
    cta.ctaId = cta_id;
    cta.warpSlots = slots;
    cta.liveWarps = warps_per_cta;
    cta.atBarrier = 0;
    cta.inFlight = 0;
    cta.smem = kernel_.smemBytes() > 0
        ? std::make_unique<SharedMemory>(kernel_.smemBytes()) : nullptr;

    u32 remaining = dims_.blockDim;
    for (u32 w = 0; w < warps_per_cta; ++w) {
        const u32 lanes = std::min(remaining, kWarpSize);
        remaining -= lanes;
        warps_[slots[w]].launch(kernel_, cta_slot, cta_id, w, lanes,
                                ageCounter_++);
        issueBlocked_[slots[w]] = 0;
    }
    // Fresh warps can issue immediately: drop the uneventful-span
    // cache so the next cycle takes the full path, and re-derive the
    // GTO oldest-first order (new age stamps).
    nextEvent_ = 0;
    issueCandidate_ = true;
    for (WarpScheduler &sched : schedulers_)
        sched.invalidateOrder();
    return true;
}

bool
Sm::busy() const
{
    for (const Cta &c : ctas_) {
        if (c.active)
            return true;
    }
    return false;
}

void
Sm::cycle(Cycle now)
{
    // Light path for cached-uneventful cycles: the pipeline walk is a
    // provable no-op (nothing ready, nothing issuable, no collector in
    // flight), so only the per-cycle streams run — the SEU flip draw
    // and the energy/census/obs accounting. nextEventCycle caps the
    // cache at scrub ticks, so scrubTick work never lands here.
    if (now < nextEvent_) {
        if (SeuEngine *e = rf_.seu())
            e->sampleCycle(now);
    } else {
        if (SeuEngine *e = rf_.seu())
            stepSeu(*e, now);
        if (busy()) {
            arbiter_.newCycle();
            stepWritebackAndExec(now);
            stepCollect(now);
            stepIssue(now);
        }
        nextEvent_ = nextEventCycle(now + 1);
    }
    meter_.addCycles(1);
    const RegisterFile::BankActivity act = rf_.bankActivity(now);
    meter_.addAwakeBankCycles(act.active);
    meter_.addDrowsyBankCycles(act.drowsy);
    if (obs_ != nullptr) {
        const u32 total = params_.regfile.numBanks;
        obs_->onCycle(obsSmId_, total - act.active - act.drowsy, total,
                      now);
    }
}

Cycle
Sm::nextEventCycle(Cycle now)
{
    // Precondition: called at the end of a fully executed cycle
    // (cycle now - 1), so noIssuable_ and execMinReady_ reflect the
    // state the next cycle will see.
    Cycle ev = kNoEvent;
    if (busy()) {
        // Operand collectors retry bank reads, decompressor slots, and
        // dispatch ports every cycle: any occupied collector means the
        // very next cycle can make progress.
        if (!collectors_.occupiedOrder().empty())
            return now;

        // The issue scan this cycle was complete (every scheduler
        // probed every slot) and fruitless, and nothing after it could
        // unblock a warp; a fresh scan would find the same answer.
        if (!noIssuable_)
            return now;

        // In-flight ops act at execMinReady_ (maintained as
        // max(readyAt, retry cycle) by the writeback walk).
        ev = execMinReady_;

        // A busy SM always has a future event (barriers release at
        // issue time, so all-at-barrier implies an in-flight release
        // already happened). Never skip on an unmodeled dependency.
        if (ev == kNoEvent)
            return now;
        WC_ASSERT(ev >= now, "stale exec-list ready cache");
    }

    // The scrub engine advances its cursor and counters at every
    // interval tick, even over an otherwise idle SM: cap the skip so
    // tick cycles always execute normally.
    if (const SeuEngine *e = rf_.seu();
        e != nullptr && e->params().scrubEnabled()) {
        const Cycle interval = e->params().scrubInterval;
        const Cycle tick = (now != 0 && now % interval == 0)
            ? now
            : (now / interval + 1) * interval;
        ev = std::min(ev, tick);
    }
    return ev;
}

void
Sm::skipCycles(Cycle from, Cycle to)
{
    WC_ASSERT(to >= from, "skip span runs backwards");
    if (to == from)
        return;
    meter_.addCycles(to - from);

    // No writes, reads, gate transitions, or scrub visits happen inside
    // a skipped span, so the census evolves in closed form.
    u64 active = 0;
    u64 drowsy = 0;
    rf_.activitySpan(from, to, active, drowsy);
    meter_.addAwakeBankCycles(active);
    meter_.addDrowsyBankCycles(drowsy);

    // The flip stream is a per-cycle function of (seed, cycle): replay
    // it so pending flips accumulate bit-identically to per-cycle
    // stepping. Scrub ticks never fall inside a span (nextEventCycle
    // caps at them), and scrubTick is a pure no-op off-tick.
    if (SeuEngine *e = rf_.seu()) {
        for (Cycle c = from; c < to; ++c)
            e->sampleCycle(c);
    }

    if (obs_ != nullptr) {
        const u32 total = params_.regfile.numBanks;
        const u32 gated =
            static_cast<u32>(total - rf_.awakeBanks(from));
        obs_->onCycleSpan(obsSmId_, gated, total, from, to);
    }
}

void
Sm::attachObs(ObsRun *obs, u16 sm_id)
{
    obs_ = obs;
    obsSmId_ = sm_id;
    rf_.attachObs(obs, sm_id);
}

void
Sm::stepSeu(SeuEngine &seu, Cycle now)
{
    seu.sampleCycle(now);
    const SeuEngine::ScrubVisit v = seu.scrubTick(now);
    if (v.banks == 0)
        return;
    // The scrubber reads the live row and writes it back (re-encoding
    // the check bits when ECC is present). It runs beside the arbiter
    // on spare port cycles, so only energy is charged, not bandwidth.
    for (u32 b = 0; b < v.banks; ++b) {
        rf_.noteBankRead(v.firstBank + b, now);
        rf_.noteBankWrite(v.firstBank + b, now);
    }
    meter_.addBankReads(v.banks);
    meter_.addBankWrites(v.banks);
    if (seuEcc_) {
        meter_.addEccDecodes(1);
        meter_.addEccEncodes(1);
    }
    if (obs_ != nullptr)
        obs_->onScrubVisit(obsSmId_, static_cast<u16>(v.firstBank),
                           v.banks, now);
}

void
Sm::resolveSeuRead(SeuEngine &seu, u32 slot, u32 reg, Cycle now)
{
    const SeuEngine::ReadResolution res = seu.resolveRead(slot, reg);
    if (!res.corrupt)
        return;

    // XOR the pending flips into the stored row image and decode back.
    // The storage row holds exactly the bytes the write path stored
    // (fidelity invariant; the corruption-commit paths re-store after
    // mutating architectural state), so no re-encode is needed here.
    // A flipped byte inside a BDI base or delta corrupts every lane
    // that chunk feeds: the amplification the paper's reliability
    // tradeoff has to own.
    Warp &w = warps_[slot];
    const WarpRegValue before = w.reg(reg);
    WarpRegValue after;
    bool amplified = false;
    if (rf_.isCompressed(slot, reg)) {
        BdiEncoded enc = rf_.storedEncoding(slot, reg);
        // Flip positions were recorded against the stored extent; a
        // position beyond the stored size (possible only after
        // composed stuck-at corruption changed compressibility) is
        // dropped.
        for (u32 i = 0; i < res.tracked; ++i) {
            const u32 byte = res.pos[i] / 8;
            if (byte < enc.sizeBytes())
                enc.bytes[byte] ^=
                    static_cast<u8>(1u << (res.pos[i] % 8));
        }
        after = fromBytes(bdiDecompress(enc));
        amplified = enc.compressed;
    } else {
        auto raw = toBytes(before);
        for (u32 i = 0; i < res.tracked; ++i) {
            const u32 byte = res.pos[i] / 8;
            if (byte < raw.size())
                raw[byte] ^=
                    static_cast<u8>(1u << (res.pos[i] % 8));
        }
        after = fromBytes(raw);
    }

    u32 lanes = 0;
    for (u32 l = 0; l < kWarpSize; ++l) {
        if (after[l] != before[l])
            ++lanes;
    }
    if (lanes == 0)
        return;
    w.reg(reg) = after;
    // The corrupted value is architectural now; re-store its encoding
    // so the next read of this row sees consistent bytes.
    if (rf_.isCompressed(slot, reg))
        rf_.refreshStored(slot, reg,
                          bdiCompress(toBytes(after),
                                      schemeCandidates(params_.scheme)));
    seu.noteCorruption(lanes, amplified);
    if (obs_ != nullptr)
        obs_->onSeuCorruption(obsSmId_, static_cast<u16>(slot), lanes,
                              amplified, now);
}

void
Sm::finishInFlight(InFlight &f, Cycle now)
{
    // Completion releases scoreboard entries (the callers) and CTA
    // in-flight counts; both can unblock issue.
    issueCandidate_ = true;
    issueBlocked_[f.warpSlot] = 0;
    f.stage = InFlight::Stage::Done;
    Cta &cta = ctas_[warps_[f.warpSlot].ctaSlot()];
    WC_ASSERT(cta.inFlight > 0, "in-flight underflow");
    --cta.inFlight;
    maybeCompleteCta(warps_[f.warpSlot].ctaSlot(), now);
}

InFlight *
Sm::allocFlight()
{
    if (flightFree_.empty())
        return &flightSlab_.emplace_back();
    InFlight *f = flightFree_.back();
    flightFree_.pop_back();
    *f = InFlight{};
    return f;
}

void
Sm::freeFlight(InFlight *f)
{
    flightFree_.push_back(f);
}

void
Sm::stepWritebackAndExec(Cycle now)
{
    // Nothing in flight is due yet: the walk below would visit every
    // entry and do nothing.
    if (execMinReady_ > now)
        return;

    Cycle min_ready = kNoEvent;
    for (std::size_t i = 0; i < execList_.size();) {
        InFlight &f = *execList_[i];

        if (f.stage == InFlight::Stage::Exec && now >= f.readyAt) {
            if (f.inst.isMemory() && !f.memReleased) {
                WC_ASSERT(outstandingMem_ > 0, "MSHR underflow");
                --outstandingMem_;
                f.memReleased = true;
                // A freed MSHR slot can unblock memory issue.
                issueCandidate_ = true;
            }
            if (!f.writesBack) {
                // Stores, compares, zero-mask writers: nothing reaches
                // the register banks.
                if (f.inst.dstPred != kNoPred)
                    scoreboard_.releasePred(f.warpSlot, f.inst.dstPred);
                if (f.inst.hasDst())
                    scoreboard_.releaseReg(f.warpSlot, f.inst.dst);
                finishInFlight(f, now);
            } else if (params_.compressionEnabled() && !f.divergentWrite) {
                // Full-mask writes pass through a compressor unit.
                if (const auto done = compPool_.tryIssue(now)) {
                    meter_.addCompActivations(1);
                    f.stage = InFlight::Stage::Writeback;
                    f.readyAt = *done;
                }
                // else: every compressor accepted an op this cycle;
                // retry next cycle.
            } else {
                f.stage = InFlight::Stage::Writeback;
                f.readyAt = now;
            }
        }

        // Intentional same-cycle Exec -> Writeback fall-through: an
        // entry the block above just promoted with readyAt == now (the
        // compression-disabled and divergent-write paths) writes back
        // this very cycle — zero-latency writeback is the modeled
        // baseline, and compressLatency adds on top of it. The
        // `now >= f.readyAt` re-test is what stops a double advance:
        // when a compressor assigned readyAt = now + compressLatency,
        // the promoted entry is skipped here and again on every walk
        // until its readyAt arrives (test_pipeline_latency.cpp pins
        // both behaviours).
        if (f.stage == InFlight::Stage::Writeback && now >= f.readyAt) {
            if (!f.wbRecorded) {
                auto [ready, acc] = rf_.recordWrite(f.warpSlot, f.inst.dst,
                                                    f.encoded, now);
                f.wbRecorded = true;
                f.writeAcc = acc;
                if (ready > now) {
                    // Gated banks are waking up for this write.
                    f.readyAt = ready;
                }
            }
            if (now >= f.readyAt &&
                arbiter_.tryWriteRange(f.writeAcc.firstBank,
                                       f.writeAcc.numBanks)) {
                meter_.addBankWrites(f.writeAcc.numBanks);
                if (obs_ != nullptr)
                    obs_->onWriteback(obsSmId_,
                                      static_cast<u16>(f.warpSlot),
                                      f.writeAcc.numBanks,
                                      f.writeAcc.compressed, now);
                if (seuEcc_)
                    meter_.addEccEncodes(1);
                if (f.writeAcc.compressed)
                    ++stats_.writesStoredCompressed;
                if (f.writeAcc.remapped)
                    meter_.addRemapAccesses(1);
                // Fault injection, policy None: the stored image passes
                // through stuck cells unmitigated. Any change becomes
                // architectural state (decompression of a corrupted
                // payload amplifies the damage, exactly as in hardware).
                if (const FaultMap *fm = rf_.faultMap();
                    fm != nullptr &&
                    rf_.faultPolicy() == FaultPolicy::None) {
                    BdiEncoded stored = f.encoded;
                    if (fm->corrupt(f.writeAcc.firstBank,
                                    f.writeAcc.entry,
                                    stored.bytes.data(),
                                    stored.bytes.size())) {
                        rf_.noteCorruptedWrite();
                        warps_[f.warpSlot].reg(f.inst.dst) =
                            fromBytes(bdiDecompress(stored));
                        // Keep the storage row consistent with the
                        // corrupted architectural value (fidelity
                        // invariant for the SEU read path).
                        if (rf_.isCompressed(f.warpSlot, f.inst.dst))
                            rf_.refreshStored(
                                f.warpSlot, f.inst.dst,
                                bdiCompress(
                                    toBytes(warps_[f.warpSlot]
                                                .reg(f.inst.dst)),
                                    schemeCandidates(params_.scheme)));
                        if (obs_ != nullptr)
                            obs_->onFaultCorruptedWrite(
                                obsSmId_, static_cast<u16>(f.warpSlot),
                                now);
                    }
                }
                if (rfc_.enabled()) {
                    // Write-allocate into the register file cache.
                    rfc_.fill(f.warpSlot, f.inst.dst);
                    meter_.addRfcAccesses(1);
                }
                scoreboard_.releaseReg(f.warpSlot, f.inst.dst);
                finishInFlight(f, now);
            }
        }

        if (f.stage == InFlight::Stage::Done) {
            freeFlight(execList_[i]);
            execList_[i] = execList_.back();
            execList_.pop_back();
        } else {
            // Entries blocked this cycle (compressor pool, arbiter
            // conflict) retry next cycle; future entries act at their
            // readyAt.
            min_ready = std::min(min_ready,
                                 std::max(f.readyAt, now + 1));
            ++i;
        }
    }
    execMinReady_ = min_ready;
}

void
Sm::stepCollect(Cycle now)
{
    // Iterate the pool's occupancy order in place. take() erases
    // exactly the entry at the current position (indices are unique),
    // shifting the tail left, so the cursor only advances when the
    // current unit stays occupied — no per-cycle snapshot copy, same
    // visit order as the old copied snapshot (inserts happen in
    // stepIssue, never during this walk).
    const std::vector<u32> &order = collectors_.occupiedOrder();
    for (std::size_t i = 0; i < order.size();) {
        const u32 idx = order[i];
        InFlight *f = collectors_.at(idx);
        WC_ASSERT(f != nullptr, "stale collector index");

        for (u32 o = 0; o < f->numOps; ++o) {
            InFlight::OpFetch &op = f->ops[o];
            while (!op.done()) {
                const u32 bank = op.acc.firstBank + op.granted;
                if (!arbiter_.tryRead(bank)) {
                    if (obs_ != nullptr)
                        obs_->onBankConflict(obsSmId_,
                                             static_cast<u16>(bank),
                                             static_cast<u16>(
                                                 f->warpSlot),
                                             now);
                    break;
                }
                ++op.granted;
                meter_.addBankReads(1);
                rf_.noteBankRead(bank, now);
                // SEC-DED decode once per completed row fetch.
                if (seuEcc_ && op.done())
                    meter_.addEccDecodes(1);
            }
        }
        if (!f->collected()) {
            ++i;
            continue;
        }

        if (params_.compressionEnabled()) {
            while (f->decompIssued < f->compressedSrcs) {
                const auto done = decompPool_.tryIssue(now);
                if (!done)
                    break;
                meter_.addDecompActivations(1);
                if (obs_ != nullptr)
                    obs_->onDecompress(obsSmId_,
                                       static_cast<u16>(f->warpSlot),
                                       now);
                f->decompReadyAt = std::max(f->decompReadyAt, *done);
                ++f->decompIssued;
            }
            if (f->decompIssued < f->compressedSrcs ||
                now < f->decompReadyAt) {
                ++i;
                continue;
            }
        }

        DispatchLimiter &lim = f->inst.isMemory() ? memDispatch_
                                                  : simtDispatch_;
        if (!lim.tryDispatch(now)) {
            ++i;
            continue;
        }

        InFlight *moved = collectors_.take(idx);
        // A freed collector can unblock pipeline-bound issue.
        issueCandidate_ = true;
        if (obs_ != nullptr)
            obs_->onOperandCollect(obsSmId_,
                                   static_cast<u16>(moved->warpSlot),
                                   moved->numOps, moved->compressedSrcs,
                                   now);
        moved->stage = InFlight::Stage::Exec;
        moved->readyAt = now + (moved->inst.isMemory()
                                ? moved->memLatency
                                : resultLatency(moved->inst.op));
        execMinReady_ = std::min(execMinReady_,
                                 std::max(moved->readyAt, now + 1));
        execList_.push_back(moved);
    }
}

bool
Sm::canIssueFrom(u32 slot)
{
    if (issueBlocked_[slot] != 0)
        return false;
    const Warp &w = warps_[slot];
    if (!w.schedulable()) {
        issueBlocked_[slot] = 1;
        return false;
    }
    const Instruction &inst = kernel_.at(w.stack().pc());
    if (!scoreboard_.canIssue(slot, inst)) {
        issueBlocked_[slot] = 1;
        return false;
    }
    if (inst.sbPipeline && !collectors_.hasFree())
        return false;
    if (inst.sbMemory && outstandingMem_ >= params_.mem.maxOutstanding)
        return false;
    return true;
}

void
Sm::stepIssue(Cycle now)
{
    // The last complete scan found nothing issuable and no event since
    // could unblock a warp (see issueCandidate_): the answer is still
    // "nothing".
    if (!issueCandidate_) {
        noIssuable_ = true;
        return;
    }

    // Lazily build the schedulers once warps exist (policy from params).
    if (schedulers_.empty()) {
        for (u32 s = 0; s < params_.numSchedulers; ++s) {
            std::vector<u32> slots;
            for (u32 w = s; w < params_.maxWarps;
                 w += params_.numSchedulers) {
                slots.push_back(w);
            }
            schedulers_.emplace_back(params_.sched, std::move(slots));
        }
    }

    bool issued_any = false;
    for (WarpScheduler &sched : schedulers_) {
        const i32 slot = sched.pick(
            [this](u32 s) { return canIssueFrom(s); },
            [this](u32 s) { return warps_[s].ageStamp(); });
        if (slot < 0)
            continue;
        issueFrom(static_cast<u32>(slot), now);
        sched.noteIssued(static_cast<u32>(slot));
        issued_any = true;
    }
    // pick() == -1 means that scheduler probed every slot it owns; if
    // none issued anywhere, the combined scan was complete and the
    // outcome stays valid until an unblocking event flips
    // issueCandidate_ back on.
    noIssuable_ = !issued_any;
    issueCandidate_ = issued_any;
}

void
Sm::recordWriteStats(const Warp &warp, const Instruction &inst,
                     LaneMask eff, bool divergent,
                     std::span<const u8> img, const BdiEncoded &enc)
{
    const WarpRegValue &value = warp.reg(inst.dst);
    stats_.simBins.record(value, eff, divergent);

    // Potential compressibility of the merged register (Fig 8 semantics:
    // divergent writes measured as decompress-update-recompress). The
    // encoding is computed once by the caller and shared with the bank
    // write path.
    stats_.ratio.record(enc.sizeBytes(), divergent);

    if (collectBdi_) {
        const auto best = bdiBestParams(img, fullBdiCandidates());
        u32 idx = 7;
        if (best.has_value()) {
            const auto all = fullBdiCandidates();
            for (u32 i = 0; i < all.size(); ++i) {
                if (all[i] == *best)
                    idx = i;
            }
        }
        ++stats_.bdiSelect[idx];
    }
}

void
Sm::issueDummyMov(u32 slot, u8 dst, Cycle now)
{
    Warp &w = warps_[slot];

    // The MOV reads dst's current value below; pending flips must land
    // first so the decompress-MOV reads what the banks actually hold.
    if (SeuEngine *e = rf_.seu(); e != nullptr && e->hasPending())
        resolveSeuRead(*e, slot, dst, now);

    ++stats_.issued;
    ++stats_.dummyMovs;
    if (obs_ != nullptr)
        obs_->onDummyMov(obsSmId_, static_cast<u16>(slot), dst, now);

    Instruction mov;
    mov.op = Opcode::Mov;
    mov.dst = dst;
    mov.src[0] = Operand::fromReg(dst);
    mov.finalizeIssueMasks();

    InFlight &f = *allocFlight();
    f.inst = mov;
    f.warpSlot = slot;
    f.effMask = w.fullMask();
    f.dummyMov = true;
    // The decompress-MOV always stores back uncompressed (Sec. 5.2).
    f.divergentWrite = true;
    f.writesBack = true;
    f.numOps = 1;
    f.ops[0].acc = rf_.readAccess(slot, dst);
    if (f.ops[0].acc.compressed)
        f.compressedSrcs = 1;
    if (f.ops[0].acc.remapped) {
        rf_.noteRemapRead();
        meter_.addRemapAccesses(1);
    }

    const auto img = toBytes(w.reg(dst));
    f.encoded.compressed = false;
    f.encoded.bytes.assign(std::span<const u8>(img));

    scoreboard_.reserve(slot, mov);
    ++ctas_[w.ctaSlot()].inFlight;
    collectors_.insert(&f);
}

void
Sm::issueFrom(u32 slot, Cycle now)
{
    Warp &w = warps_[slot];
    const u32 pc = w.stack().pc();
    const Instruction &inst = kernel_.at(pc);
    const LaneMask active = w.stack().mask();
    const LaneMask eff = w.guardLanes(inst, active);
    const bool divergent = active != w.fullMask();

    // Divergent update of a compressed destination: decompress first
    // via an injected MOV; the real instruction issues once the MOV's
    // writeback releases the scoreboard (Sec. 5.2). The MergeRecompress
    // ablation instead folds the old content into the write below.
    if (params_.compressionEnabled() &&
        params_.divPolicy == DivergencePolicy::WriteUncompressed &&
        inst.hasDst() && eff != 0 && eff != w.fullMask() &&
        rf_.isCompressed(slot, inst.dst)) {
        issueDummyMov(slot, inst.dst, now);
        return;
    }

    ++stats_.issued;
    if (divergent)
        ++stats_.issuedDivergent;
    if (obs_ != nullptr)
        obs_->onWarpIssue(obsSmId_, static_cast<u16>(slot), pc,
                          popcount(active), now);

    // Fig 12 sampling: compressed share of the allocated registers,
    // attributed to the issuing warp's phase.
    {
        const auto [comp, written] = rf_.compressedCensus();
        (void)written;
        const u32 alloc = rf_.allocatedRegs();
        if (alloc > 0) {
            const u32 phase = divergent ? kDivergent : kNonDivergent;
            stats_.compressedFracSum[phase] +=
                static_cast<double>(comp) / static_cast<double>(alloc);
            ++stats_.compressedFracSamples[phase];
        }
    }

    // Transient flips resolve at the read port: every register value
    // the instruction consumes settles before the functional execute.
    // A partial write also "reads" the inactive lanes of its
    // destination (they retain the stored value), so pending flips
    // there become architectural too.
    if (SeuEngine *e = rf_.seu(); e != nullptr && e->hasPending()) {
        const u32 nsrc = inst.numRegSources();
        for (u32 i = 0; i < nsrc; ++i)
            resolveSeuRead(*e, slot, inst.regSource(i), now);
        if (inst.hasDst() && eff != 0 && eff != w.fullMask() &&
            rf_.isWritten(slot, inst.dst))
            resolveSeuRead(*e, slot, inst.dst, now);
    }

    Cta &cta = ctas_[w.ctaSlot()];
    SharedMemory *smem = cta.smem.get();
    const ExecOutcome out = fex_.execute(w, pc, smem, dims_);
    // The SIMT stack only changes inside execute, so reconverged
    // entries are popped eagerly here — the next fetch (any later
    // cycle) sees the post-reconvergence pc/mask without a per-cycle
    // sweep over every warp slot.
    w.stack().popReconverged();

    if (inst.isBarrier()) {
        w.setStatus(Warp::Status::AtBarrier);
        ++cta.atBarrier;
        tryReleaseBarrier(cta);
        return;
    }
    if (out.warpFinished) {
        w.setStatus(Warp::Status::Finished);
        WC_ASSERT(cta.liveWarps > 0, "live-warp underflow");
        --cta.liveWarps;
        tryReleaseBarrier(cta);
        maybeCompleteCta(w.ctaSlot(), now);
        // The warp may still have writes in flight; CTA teardown waits
        // for cta.inFlight to drain.
    }
    if (!inst.sbPipeline)
        return;

    InFlight &f = *allocFlight();
    f.inst = inst;
    f.warpSlot = slot;
    f.effMask = eff;
    f.divergentWrite = inst.hasDst() && eff != w.fullMask();
    f.writesBack = inst.hasDst() && eff != 0;

    const u32 nsrc = inst.numRegSources();
    f.numOps = nsrc;
    for (u32 i = 0; i < nsrc; ++i) {
        // A register-file-cache hit satisfies the operand without
        // touching any bank (comparator mode; disabled by default).
        if (rfc_.lookup(slot, inst.regSource(i))) {
            meter_.addRfcAccesses(1);
            continue;           // acc stays zero-bank
        }
        f.ops[i].acc = rf_.readAccess(slot, inst.regSource(i));
        if (f.ops[i].acc.compressed)
            ++f.compressedSrcs;
        if (f.ops[i].acc.remapped) {
            rf_.noteRemapRead();
            meter_.addRemapAccesses(1);
        }
    }

    // MergeRecompress: a divergent write also fetches the destination's
    // current content (read + possible decompression through the merge
    // buffer) and then recompresses the merged register.
    if (f.divergentWrite && f.writesBack &&
        params_.compressionEnabled() &&
        params_.divPolicy == DivergencePolicy::MergeRecompress) {
        f.divergentWrite = false;       // take the compression path
        bool dup = false;
        for (u32 i = 0; i < nsrc; ++i) {
            if (inst.regSource(i) == inst.dst)
                dup = true;
        }
        if (!dup && rf_.isWritten(slot, inst.dst)) {
            f.ops[f.numOps].acc = rf_.readAccess(slot, inst.dst);
            if (f.ops[f.numOps].acc.compressed)
                ++f.compressedSrcs;
            if (f.ops[f.numOps].acc.remapped) {
                rf_.noteRemapRead();
                meter_.addRemapAccesses(1);
            }
            ++f.numOps;
        }
    }

    if (inst.isMemory()) {
        ++outstandingMem_;
        if (eff == 0) {
            f.memLatency = params_.mem.zeroMaskLatency;
        } else if (inst.op == Opcode::Ldg || inst.op == Opcode::Stg) {
            const u32 segs = coalescedSegments(out.addrs, eff);
            f.memLatency = globalAccessLatency(params_.mem, segs);
        } else if (inst.op == Opcode::Lds || inst.op == Opcode::Sts) {
            const u32 deg = sharedConflictDegree(out.addrs, eff);
            f.memLatency = sharedAccessLatency(params_.mem, deg);
        } else {
            f.memLatency = params_.mem.constLatency;
        }
    }

    if (f.writesBack) {
        ++stats_.regWrites;
        if (divergent)
            ++stats_.regWritesDivergent;

        // Compress the written register exactly once: the same encoding
        // feeds the Fig 8 ratio stats and the bank write. Under the
        // None scheme the stats still measure potential compressibility
        // over the warped candidates while the write stays raw, so the
        // candidate list below matches what recordWriteStats always
        // used; for every enabled scheme it equals the write path's
        // schemeCandidates(scheme).
        const auto img = toBytes(w.reg(inst.dst));
        const auto cands = params_.scheme == CompressionScheme::None
            ? warpedCandidates() : schemeCandidates(params_.scheme);
        BdiEncoded enc = bdiCompress(img, cands);
        recordWriteStats(w, inst, eff, divergent, img, enc);
        if (obs_ != nullptr) {
            const bool stores_compressed =
                params_.compressionEnabled() && !f.divergentWrite;
            obs_->onCompressDecision(
                obsSmId_, static_cast<u16>(slot), enc.sizeBytes(),
                stores_compressed ? enc.sizeBytes() : kWarpRegBytes,
                static_cast<u16>(inst.dst), now);
        }

        if (params_.compressionEnabled() && !f.divergentWrite) {
            f.encoded = std::move(enc);
        } else {
            f.encoded.compressed = false;
            f.encoded.bytes.assign(std::span<const u8>(img));
        }
    }

    scoreboard_.reserve(slot, inst);
    ++cta.inFlight;
    collectors_.insert(&f);
}

void
Sm::tryReleaseBarrier(Cta &cta)
{
    if (cta.liveWarps == 0 || cta.atBarrier < cta.liveWarps)
        return;
    for (u32 s : cta.warpSlots) {
        if (warps_[s].status() == Warp::Status::AtBarrier) {
            warps_[s].setStatus(Warp::Status::Running);
            issueBlocked_[s] = 0;
        }
    }
    cta.atBarrier = 0;
}

void
Sm::maybeCompleteCta(u32 cta_slot, Cycle now)
{
    Cta &cta = ctas_[cta_slot];
    if (!cta.active || cta.liveWarps != 0 || cta.inFlight != 0)
        return;
    for (u32 s : cta.warpSlots) {
        WC_ASSERT(scoreboard_.idle(s),
                  "completing CTA with pending scoreboard entries");
        scoreboard_.clearWarp(s);
        rfc_.clearWarp(s);
        rf_.release(s, now);
        warps_[s].reset();
    }
    cta.smem.reset();
    cta.active = false;
    cta.warpSlots.clear();
    ++ctasCompleted_;
    // Freed warp slots / registers / smem: launches may succeed again.
    launchBlocked_ = false;
}

} // namespace warpcomp
