/**
 * @file
 * Warp schedulers (Sec. 6.5): greedy-then-oldest (GTO) keeps issuing
 * from the last warp until it stalls, then falls back to the oldest
 * ready warp; loose round-robin (LRR) rotates every cycle.
 */

#ifndef WARPCOMP_SIM_SCHEDULER_HPP
#define WARPCOMP_SIM_SCHEDULER_HPP

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "sim/params.hpp"

namespace warpcomp {

/** One warp scheduler, owning a fixed subset of the SM's warp slots. */
class WarpScheduler
{
  public:
    /**
     * @param policy GTO or LRR
     * @param slots warp slots this scheduler issues from
     */
    WarpScheduler(SchedPolicy policy, std::vector<u32> slots);

    /**
     * Pick the next warp to issue. Templated over the callables so the
     * per-cycle hot path pays no type-erasure indirection: the ready
     * probe runs once per candidate slot every scheduler cycle.
     *
     * @param ready predicate: can this slot issue right now?
     * @param age slot -> age stamp (smaller = older), used by GTO
     * @return chosen slot, or -1 when nothing is ready
     */
    template <typename ReadyFn, typename AgeFn>
    i32
    pick(const ReadyFn &ready, const AgeFn &age)
    {
        if (slots_.empty())
            return -1;

        if (policy_ == SchedPolicy::Gto) {
            // Greedy: stick with the last issuer while it can go.
            if (lastIssued_ >= 0 && ready(static_cast<u32>(lastIssued_)))
                return lastIssued_;
            // Then-oldest: first ready slot in age order. Age stamps
            // only change when a CTA launches onto this SM
            // (invalidateOrder), so the sorted view is cached and the
            // scan stops at the first hit instead of probing every
            // slot for an explicit min.
            if (orderDirty_) {
                ageOrder_ = slots_;
                std::sort(ageOrder_.begin(), ageOrder_.end(),
                          [&age](u32 a, u32 b) {
                              return age(a) < age(b);
                          });
                orderDirty_ = false;
            }
            for (u32 slot : ageOrder_) {
                if (ready(slot))
                    return static_cast<i32>(slot);
            }
            return -1;
        }

        // LRR: scan from one past the previous pick.
        const u32 n = static_cast<u32>(slots_.size());
        for (u32 i = 0; i < n; ++i) {
            const u32 idx = (rrCursor_ + i) % n;
            if (ready(slots_[idx]))
                return static_cast<i32>(slots_[idx]);
        }
        return -1;
    }

    /** Inform the scheduler which slot actually issued; @p slot must
     *  be one this scheduler owns. */
    void noteIssued(u32 slot);

    /** Age stamps changed (a warp [re]launched): re-derive the GTO
     *  oldest-first order on the next pick. */
    void invalidateOrder() { orderDirty_ = true; }

    const std::vector<u32> &slots() const { return slots_; }

  private:
    SchedPolicy policy_;
    std::vector<u32> slots_;
    /** slot -> position in slots_, -1 for foreign slots; built once at
     *  construction so noteIssued is O(1) instead of a linear scan. */
    std::vector<i32> slotIndex_;
    /** GTO: slots_ sorted oldest-first, rebuilt lazily after
     *  invalidateOrder(). */
    std::vector<u32> ageOrder_;
    bool orderDirty_ = true;
    i32 lastIssued_ = -1;   ///< GTO greedy candidate
    u32 rrCursor_ = 0;      ///< LRR rotation point
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_SCHEDULER_HPP
