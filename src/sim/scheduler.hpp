/**
 * @file
 * Warp schedulers (Sec. 6.5): greedy-then-oldest (GTO) keeps issuing
 * from the last warp until it stalls, then falls back to the oldest
 * ready warp; loose round-robin (LRR) rotates every cycle.
 */

#ifndef WARPCOMP_SIM_SCHEDULER_HPP
#define WARPCOMP_SIM_SCHEDULER_HPP

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/params.hpp"

namespace warpcomp {

/** One warp scheduler, owning a fixed subset of the SM's warp slots. */
class WarpScheduler
{
  public:
    /**
     * @param policy GTO or LRR
     * @param slots warp slots this scheduler issues from
     */
    WarpScheduler(SchedPolicy policy, std::vector<u32> slots);

    /**
     * Pick the next warp to issue.
     *
     * @param ready predicate: can this slot issue right now?
     * @param age slot -> age stamp (smaller = older), used by GTO
     * @return chosen slot, or -1 when nothing is ready
     */
    i32 pick(const std::function<bool(u32)> &ready,
             const std::function<u64(u32)> &age);

    /** Inform the scheduler which slot actually issued. */
    void noteIssued(u32 slot);

    const std::vector<u32> &slots() const { return slots_; }

  private:
    SchedPolicy policy_;
    std::vector<u32> slots_;
    i32 lastIssued_ = -1;   ///< GTO greedy candidate
    u32 rrCursor_ = 0;      ///< LRR rotation point
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_SCHEDULER_HPP
