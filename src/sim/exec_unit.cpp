#include "sim/exec_unit.hpp"

#include "common/log.hpp"

namespace warpcomp {

DispatchLimiter::DispatchLimiter(u32 per_cycle) : perCycle_(per_cycle)
{
    WC_ASSERT(per_cycle > 0, "dispatch rate must be positive");
}

bool
DispatchLimiter::tryDispatch(Cycle now)
{
    if (lastCycle_ != now) {
        lastCycle_ = now;
        usedThisCycle_ = 0;
    }
    if (usedThisCycle_ >= perCycle_)
        return false;
    ++usedThisCycle_;
    ++dispatched_;
    return true;
}

u32
resultLatency(Opcode op)
{
    const ExecClass cls = execClass(op);
    WC_ASSERT(cls != ExecClass::Mem,
              "memory latency comes from the coalescing model");
    return execLatency(cls);
}

} // namespace warpcomp
