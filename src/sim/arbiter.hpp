/**
 * @file
 * Bank port arbiter: each register bank has one read port and one write
 * port (Table 2). The arbiter hands out per-cycle port grants; requests
 * that lose arbitration retry the next cycle (bank conflicts).
 */

#ifndef WARPCOMP_SIM_ARBITER_HPP
#define WARPCOMP_SIM_ARBITER_HPP

#include "common/types.hpp"

namespace warpcomp {

/** Per-cycle read/write port allocation over up to 64 banks. */
class BankArbiter
{
  public:
    explicit BankArbiter(u32 num_banks);

    /** Forget all grants; call at the start of every cycle. */
    void newCycle();

    /** Claim the read port of @p bank; false when already taken. */
    bool tryRead(u32 bank);

    /**
     * Claim the write ports of banks [first, first+count) atomically;
     * false (and no ports claimed) when any is taken.
     */
    bool tryWriteRange(u32 first, u32 count);

    u32 numBanks() const { return numBanks_; }

  private:
    u32 numBanks_;
    u64 readUsed_ = 0;
    u64 writeUsed_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_ARBITER_HPP
