/**
 * @file
 * Per-warp scoreboard: destination registers and predicates are reserved
 * at issue and released at writeback, blocking dependent issue (RAW) and
 * same-destination reissue (WAW).
 */

#ifndef WARPCOMP_SIM_SCOREBOARD_HPP
#define WARPCOMP_SIM_SCOREBOARD_HPP

#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace warpcomp {

/** Pending-register tracker for every warp slot of an SM. */
class Scoreboard
{
  public:
    explicit Scoreboard(u32 max_warps);

    /** True when no operand of @p inst conflicts with pending writes. */
    bool canIssue(u32 warp, const Instruction &inst) const;

    /** Reserve the destinations of @p inst. */
    void reserve(u32 warp, const Instruction &inst);

    /** Release one destination register. */
    void releaseReg(u32 warp, u32 reg);
    /** Release one destination predicate. */
    void releasePred(u32 warp, u32 pred);

    bool regPending(u32 warp, u32 reg) const;
    bool predPending(u32 warp, u32 pred) const;

    /** Drop every reservation of a warp (slot teardown). */
    void clearWarp(u32 warp);

    /** True when the warp has no reservations at all. */
    bool idle(u32 warp) const;

  private:
    std::vector<u64> regBits_;
    std::vector<u8> predBits_;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_SCOREBOARD_HPP
