/**
 * @file
 * Per-warp scoreboard: destination registers and predicates are reserved
 * at issue and released at writeback, blocking dependent issue (RAW) and
 * same-destination reissue (WAW).
 */

#ifndef WARPCOMP_SIM_SCOREBOARD_HPP
#define WARPCOMP_SIM_SCOREBOARD_HPP

#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace warpcomp {

/** Pending-register tracker for every warp slot of an SM. */
class Scoreboard
{
  public:
    explicit Scoreboard(u32 max_warps);

    /** True when no operand of @p inst conflicts with pending writes. */
    bool
    canIssue(u32 warp, const Instruction &inst) const
    {
        WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
        // The masks are cached by Kernel::append /
        // Instruction::finalizeIssueMasks: one test each replaces the
        // per-operand walk on the hottest probe in the simulator.
        return (regBits_[warp] & inst.sbRegMask) == 0 &&
               (predBits_[warp] & inst.sbPredMask) == 0;
    }

    /** Reserve the destinations of @p inst. */
    void
    reserve(u32 warp, const Instruction &inst)
    {
        WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
        if (inst.hasDst())
            regBits_[warp] |= u64{1} << inst.dst;
        if (inst.dstPred != kNoPred)
            predBits_[warp] |= u8{1} << inst.dstPred;
    }

    /** Release one destination register. */
    void
    releaseReg(u32 warp, u32 reg)
    {
        WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
        WC_ASSERT((regBits_[warp] >> reg) & 1,
                  "releasing r" << reg << " that was not reserved");
        regBits_[warp] &= ~(u64{1} << reg);
    }

    /** Release one destination predicate. */
    void
    releasePred(u32 warp, u32 pred)
    {
        WC_ASSERT(warp < predBits_.size(), "warp slot out of range");
        WC_ASSERT((predBits_[warp] >> pred) & 1,
                  "releasing p" << pred << " that was not reserved");
        predBits_[warp] &= ~(u8{1} << pred);
    }

    bool
    regPending(u32 warp, u32 reg) const
    {
        WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
        return (regBits_[warp] >> reg) & 1;
    }

    bool
    predPending(u32 warp, u32 pred) const
    {
        WC_ASSERT(warp < predBits_.size(), "warp slot out of range");
        return (predBits_[warp] >> pred) & 1;
    }

    /** Drop every reservation of a warp (slot teardown). */
    void clearWarp(u32 warp);

    /** True when the warp has no reservations at all. */
    bool
    idle(u32 warp) const
    {
        WC_ASSERT(warp < regBits_.size(), "warp slot out of range");
        return regBits_[warp] == 0 && predBits_[warp] == 0;
    }

  private:
    std::vector<u64> regBits_;
    std::vector<u8> predBits_;
};

} // namespace warpcomp

#endif // WARPCOMP_SIM_SCOREBOARD_HPP
