#include "sim/gpu.hpp"

#include <algorithm>
#include <memory>

#include "common/log.hpp"

namespace warpcomp {

namespace {

/** Hard deadlock guard: no workload in the suite runs this long. */
constexpr Cycle kMaxCycles = 200'000'000;

} // namespace

Gpu::Gpu(const GpuParams &params, GlobalMemory &gmem, ConstantMemory &cmem)
    : params_(params), gmem_(gmem), cmem_(cmem)
{
    WC_ASSERT(params_.numSms >= 1, "GPU needs at least one SM");
}

RunResult
Gpu::run(const Kernel &kernel, const LaunchDims &dims,
         bool collect_bdi_breakdown)
{
    kernel.validate();
    WC_ASSERT(dims.gridDim >= 1, "empty grid");

    std::vector<std::unique_ptr<Sm>> sms;
    sms.reserve(params_.numSms);
    for (u32 i = 0; i < params_.numSms; ++i) {
        // Each SM draws an independent deterministic stuck-at map:
        // salt the fault seed by SM index (a pure function, so reruns
        // and the parallel harness stay bit-reproducible).
        SmParams smp = params_.sm;
        if (smp.faults.enabled())
            smp.faults.seed = faultSeedForSm(params_.sm.faults.seed, i);
        // Same salting for the transient flip stream.
        if (smp.seu.enabled())
            smp.seu.seed = seuSeedForSm(params_.sm.seu.seed, i);
        sms.push_back(std::make_unique<Sm>(
            smp, params_.energy, gmem_, cmem_, kernel, dims,
            collect_bdi_breakdown));
    }

    // One shared observability sink for the whole (single-threaded,
    // lockstep) run; events arrive in deterministic (cycle, SM) order.
    std::shared_ptr<ObsRun> obs;
    if (params_.obs.enabled()) {
        obs = std::make_shared<ObsRun>(params_.obs);
        for (u32 i = 0; i < sms.size(); ++i)
            sms[i]->attachObs(obs.get(), static_cast<u16>(i));
    }

    u32 next_cta = 0;
    Cycle now = 0;
    u32 stalled_cycles = 0;
    bool unschedulable = false;
    bool hung = false;
    // Uncontained corruption — stuck-at policy None, or an SEU scheme
    // without ECC — can livelock a kernel; cap such runs at the
    // configured budget instead of the hard guard.
    const bool silent_corruption =
        (params_.sm.faults.enabled() &&
         params_.sm.faults.policy == FaultPolicy::None) ||
        (params_.sm.seu.enabled() && params_.sm.seu.canCorrupt());
    const Cycle hang_budget =
        silent_corruption ? params_.sm.faults.hangCycles : 0;
    while (true) {
        // Each SM may accept one new CTA per cycle. The launch carries
        // the current cycle: register allocation timestamps valid bits
        // and power-gate wakeups, and later waves launch at now > 0.
        bool launched = false;
        for (auto &sm : sms) {
            if (next_cta < dims.gridDim &&
                sm->tryLaunchCta(next_cta, now)) {
                ++next_cta;
                launched = true;
            }
        }

        bool sm_busy = false;
        bool cta_completed = false;
        for (auto &sm : sms) {
            const u64 done_before = sm->ctasCompleted();
            sm->cycle(now);
            sm_busy = sm_busy || sm->busy();
            cta_completed =
                cta_completed || sm->ctasCompleted() != done_before;
        }
        ++now;
        if (next_cta >= dims.gridDim && !sm_busy)
            break;
        if (hang_budget != 0 && now >= hang_budget) {
            hung = true;
            break;
        }
        // CTAs pending, every SM idle, and no launch succeeded: the
        // machine state is frozen, so the next CTA can never become
        // resident (fault policies can shrink capacity below one CTA).
        if (!sm_busy && !launched) {
            if (++stalled_cycles >= 2) {
                unschedulable = true;
                break;
            }
        } else {
            stalled_cycles = 0;
        }
        // Event-driven idle skipping: when every SM is provably
        // uneventful until some future cycle (all warps stalled on
        // memory, power-gate wakes, or barriers), jump straight there,
        // bulk-accounting the gap. Launch attempts gate the skip: with
        // CTAs still pending, a launch this cycle or a completion last
        // cycle could make the next launch attempt succeed, so those
        // boundaries step normally.
        if (params_.skipIdleCycles && sm_busy &&
            (next_cta >= dims.gridDim ||
             (!launched && !cta_completed))) {
            Cycle ev = Sm::kNoEvent;
            for (auto &sm : sms)
                ev = std::min(ev, sm->cachedNextEvent());
            WC_ASSERT(ev != Sm::kNoEvent,
                      "busy GPU reported no future event");
            if (ev > now) {
                WC_ASSERT(ev < kMaxCycles,
                          "next event beyond the deadlock guard in "
                          "kernel " << kernel.name());
                Cycle target = ev;
                bool to_budget = false;
                if (hang_budget != 0 && target >= hang_budget) {
                    target = hang_budget;
                    to_budget = true;
                }
                for (auto &sm : sms)
                    sm->skipCycles(now, target);
                now = target;
                if (to_budget) {
                    hung = true;
                    break;
                }
            }
        }
        WC_ASSERT(now < kMaxCycles,
                  "simulation exceeded " << kMaxCycles
                  << " cycles; likely a deadlock in kernel "
                  << kernel.name());
    }

    RunResult result(params_.energy);
    result.cycles = now;
    result.unschedulable = unschedulable;
    result.hung = hung;
    result.obs = std::move(obs);
    const u32 num_banks = params_.sm.regfile.numBanks;
    result.bankGatedFraction.assign(num_banks, 0.0);
    for (auto &sm : sms) {
        result.meter.merge(sm->meter());
        result.stats.merge(sm->stats());
        result.ctas += sm->ctasCompleted();
        result.rfcHits += sm->rfc().hits();
        result.rfcMisses += sm->rfc().misses();
        result.fault.merge(sm->regfile().faultStats());
        result.fault.unrecoverableAccesses += sm->unrecoverableAccesses();
        if (const SeuEngine *e = sm->regfile().seu())
            result.seu.merge(e->stats());
        for (u32 b = 0; b < num_banks; ++b) {
            result.bankGatedFraction[b] +=
                static_cast<double>(sm->regfile().gatedCycles(b, now)) /
                static_cast<double>(now);
        }
    }
    for (u32 b = 0; b < num_banks; ++b)
        result.bankGatedFraction[b] /= static_cast<double>(sms.size());

    WC_ASSERT(unschedulable || hung || result.ctas == dims.gridDim,
              "grid did not fully execute: " << result.ctas << " of "
              << dims.gridDim);
    return result;
}

} // namespace warpcomp

