#include "sim/gpu.hpp"

#include <memory>

#include "common/log.hpp"

namespace warpcomp {

namespace {

/** Hard deadlock guard: no workload in the suite runs this long. */
constexpr Cycle kMaxCycles = 200'000'000;

} // namespace

Gpu::Gpu(const GpuParams &params, GlobalMemory &gmem, ConstantMemory &cmem)
    : params_(params), gmem_(gmem), cmem_(cmem)
{
    WC_ASSERT(params_.numSms >= 1, "GPU needs at least one SM");
}

RunResult
Gpu::run(const Kernel &kernel, const LaunchDims &dims,
         bool collect_bdi_breakdown)
{
    kernel.validate();
    WC_ASSERT(dims.gridDim >= 1, "empty grid");

    std::vector<std::unique_ptr<Sm>> sms;
    sms.reserve(params_.numSms);
    for (u32 i = 0; i < params_.numSms; ++i) {
        sms.push_back(std::make_unique<Sm>(
            params_.sm, params_.energy, gmem_, cmem_, kernel, dims,
            collect_bdi_breakdown));
    }

    u32 next_cta = 0;
    Cycle now = 0;
    while (true) {
        // Each SM may accept one new CTA per cycle. The launch carries
        // the current cycle: register allocation timestamps valid bits
        // and power-gate wakeups, and later waves launch at now > 0.
        for (auto &sm : sms) {
            if (next_cta < dims.gridDim && sm->tryLaunchCta(next_cta, now))
                ++next_cta;
        }

        bool any_busy = next_cta < dims.gridDim;
        for (auto &sm : sms) {
            sm->cycle(now);
            any_busy = any_busy || sm->busy();
        }
        ++now;
        if (!any_busy)
            break;
        WC_ASSERT(now < kMaxCycles,
                  "simulation exceeded " << kMaxCycles
                  << " cycles; likely a deadlock in kernel "
                  << kernel.name());
    }

    RunResult result(params_.energy);
    result.cycles = now;
    const u32 num_banks = params_.sm.regfile.numBanks;
    result.bankGatedFraction.assign(num_banks, 0.0);
    for (auto &sm : sms) {
        result.meter.merge(sm->meter());
        result.stats.merge(sm->stats());
        result.ctas += sm->ctasCompleted();
        result.rfcHits += sm->rfc().hits();
        result.rfcMisses += sm->rfc().misses();
        for (u32 b = 0; b < num_banks; ++b) {
            result.bankGatedFraction[b] +=
                static_cast<double>(sm->regfile().gatedCycles(b, now)) /
                static_cast<double>(now);
        }
    }
    for (u32 b = 0; b < num_banks; ++b)
        result.bankGatedFraction[b] /= static_cast<double>(sms.size());

    WC_ASSERT(result.ctas == dims.gridDim,
              "grid did not fully execute: " << result.ctas << " of "
              << dims.gridDim);
    return result;
}

} // namespace warpcomp
