#include "common/stats.hpp"

#include "common/log.hpp"

namespace warpcomp {

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second.value() << '\n';
}

void
Histogram::add(std::size_t bin, u64 v)
{
    if (bin >= bins_.size()) {
        overflow_ += v;
        return;
    }
    bins_[bin] += v;
}

u64
Histogram::total() const
{
    u64 sum = overflow_;
    for (u64 b : bins_)
        sum += b;
    return sum;
}

double
Histogram::fraction(std::size_t i) const
{
    const u64 t = total();
    return t == 0 ? 0.0 : static_cast<double>(bins_.at(i)) /
        static_cast<double>(t);
}

void
Histogram::reset()
{
    for (u64 &b : bins_)
        b = 0;
    overflow_ = 0;
}

} // namespace warpcomp
