/**
 * @file
 * Lightweight named-statistics registry. Components register scalar
 * counters and distributions; harness code dumps or queries them after a
 * simulation run. Inspired by gem5's stats package, radically simplified.
 */

#ifndef WARPCOMP_COMMON_STATS_HPP
#define WARPCOMP_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace warpcomp {

/** A named scalar counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(u64 v) { value_ += v; return *this; }
    Counter &operator++() { ++value_; return *this; }
    void reset() { value_ = 0; }

    u64 value() const { return value_; }

  private:
    u64 value_ = 0;
};

/**
 * Collection of named counters owned by one component. Counters are
 * created on first access; lookups of absent counters in const context
 * return zero.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Counter by name, creating it if needed. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Read-only value; zero when the counter was never touched. */
    u64
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** Zero every counter in the group. */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
    }

    /** Dump "group.name value" lines. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /** All counters, sorted by name (map order) — serialization walks
     *  this so dumps are deterministic. */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

/**
 * Fixed-bin histogram for distributions such as the per-bank gated-cycle
 * counts and value-similarity bins. Adds past the last bin saturate into
 * a dedicated overflow bin instead of failing, so a histogram sized for
 * the expected range survives an outlier sample and still reports it.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t bins) : bins_(bins, 0) {}

    void add(std::size_t bin, u64 v = 1);

    u64 bin(std::size_t i) const { return bins_.at(i); }
    std::size_t size() const { return bins_.size(); }
    /** Samples that landed past the last bin. */
    u64 overflow() const { return overflow_; }
    /** Sum over all bins, including the overflow bin. */
    u64 total() const;
    /** Bin value as a fraction of the histogram total (0 when empty). */
    double fraction(std::size_t i) const;
    void reset();

  private:
    std::vector<u64> bins_;
    u64 overflow_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_COMMON_STATS_HPP
