#include "common/rng.hpp"

#include "common/log.hpp"

namespace warpcomp {

namespace {

u64
splitmix64(u64 &x)
{
    x += 0x9E3779B97F4A7C15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 x = seed;
    s0_ = splitmix64(x);
    s1_ = splitmix64(x);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

u64
Rng::next()
{
    u64 x = s0_;
    const u64 y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

u32
Rng::nextU32(u32 bound)
{
    WC_ASSERT(bound > 0, "nextU32 bound must be positive");
    return static_cast<u32>(next() % bound);
}

i32
Rng::nextRange(i32 lo, i32 hi)
{
    WC_ASSERT(lo <= hi, "nextRange lo > hi");
    const u64 span = static_cast<u64>(static_cast<i64>(hi) -
                                      static_cast<i64>(lo)) + 1;
    return static_cast<i32>(static_cast<i64>(lo) +
                            static_cast<i64>(next() % span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace warpcomp
