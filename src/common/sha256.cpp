#include "common/sha256.hpp"

#include <array>
#include <cstring>

namespace warpcomp {

namespace {

constexpr std::array<u32, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

u32
rotr(u32 v, u32 n)
{
    return (v >> n) | (v << (32 - n));
}

void
compress(std::array<u32, 8> &h, const u8 *block)
{
    std::array<u32, 64> w{};
    for (u32 i = 0; i < 16; ++i) {
        w[i] = (static_cast<u32>(block[4 * i]) << 24) |
               (static_cast<u32>(block[4 * i + 1]) << 16) |
               (static_cast<u32>(block[4 * i + 2]) << 8) |
               static_cast<u32>(block[4 * i + 3]);
    }
    for (u32 i = 16; i < 64; ++i) {
        const u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                       (w[i - 15] >> 3);
        const u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                       (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    u32 a = h[0], b = h[1], c = h[2], d = h[3];
    u32 e = h[4], f = h[5], g = h[6], hh = h[7];
    for (u32 i = 0; i < 64; ++i) {
        const u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const u32 ch = (e & f) ^ (~e & g);
        const u32 t1 = hh + s1 + ch + kK[i] + w[i];
        const u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const u32 maj = (a & b) ^ (a & c) ^ (b & c);
        const u32 t2 = s0 + maj;
        hh = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    h[0] += a; h[1] += b; h[2] += c; h[3] += d;
    h[4] += e; h[5] += f; h[6] += g; h[7] += hh;
}

} // namespace

std::string
sha256Hex(std::span<const u8> data)
{
    std::array<u32, 8> h = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                            0xa54ff53a, 0x510e527f, 0x9b05688c,
                            0x1f83d9ab, 0x5be0cd19};
    const u64 n = data.size();
    u64 off = 0;
    for (; off + 64 <= n; off += 64)
        compress(h, data.data() + off);

    // Final block(s): message tail, 0x80, zero pad, 64-bit bit length.
    std::array<u8, 128> tail{};
    const u64 rem = n - off;
    std::memcpy(tail.data(), data.data() + off, rem);
    tail[rem] = 0x80;
    const u64 pad_len = rem + 1 + 8 <= 64 ? 64 : 128;
    const u64 bits = n * 8;
    for (u32 i = 0; i < 8; ++i)
        tail[pad_len - 1 - i] = static_cast<u8>(bits >> (8 * i));
    compress(h, tail.data());
    if (pad_len == 128)
        compress(h, tail.data() + 64);

    std::string hex;
    hex.reserve(64);
    static const char *digits = "0123456789abcdef";
    for (u32 word : h) {
        for (int shift = 28; shift >= 0; shift -= 4)
            hex.push_back(digits[(word >> shift) & 0xF]);
    }
    return hex;
}

} // namespace warpcomp
