/**
 * @file
 * Self-contained SHA-256 (FIPS 180-4). Used to fingerprint binary
 * kernel images so sweep results carry the exact bytes they ran
 * (--stats-json / perf_json `image_sha256` provenance fields).
 */

#ifndef WARPCOMP_COMMON_SHA256_HPP
#define WARPCOMP_COMMON_SHA256_HPP

#include <span>
#include <string>

#include "common/types.hpp"

namespace warpcomp {

/** SHA-256 of @p data as a 64-character lowercase hex string. */
std::string sha256Hex(std::span<const u8> data);

} // namespace warpcomp

#endif // WARPCOMP_COMMON_SHA256_HPP
