/**
 * @file
 * Deterministic xorshift128+ pseudo-random generator. All workload input
 * generation uses this so every experiment is bit-reproducible without
 * depending on libstdc++'s distribution implementations.
 */

#ifndef WARPCOMP_COMMON_RNG_HPP
#define WARPCOMP_COMMON_RNG_HPP

#include "common/types.hpp"

namespace warpcomp {

/**
 * Derive a per-run seed from a component's canonical @p base seed and a
 * run-level @p salt. A salt of 0 returns @p base unchanged, so default
 * experiment streams stay bit-identical to historical runs; any other
 * salt yields an independent deterministic stream. Pure function — the
 * harness calls it concurrently from worker threads.
 */
constexpr u64
mixSeed(u64 base, u64 salt)
{
    return base ^ (salt * 0x9E3779B97F4A7C15ull);
}

/** xorshift128+ generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform in [0, bound) for bound > 0. */
    u32 nextU32(u32 bound);

    /** Uniform in [lo, hi] inclusive. */
    i32 nextRange(i32 lo, i32 hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli with probability p. */
    bool nextBool(double p);

  private:
    u64 s0_;
    u64 s1_;
};

} // namespace warpcomp

#endif // WARPCOMP_COMMON_RNG_HPP
