#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace warpcomp {

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

void
JsonWriter::newlineIndent()
{
    if (style_ == Style::Compact)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty())
        return;
    if (stack_.back() == Ctx::Object) {
        WC_ASSERT(pendingKey_, "JSON object value without a key");
        pendingKey_ = false;
        return;
    }
    if (counts_.back() > 0)
        os_ << ',';
    newlineIndent();
    ++counts_.back();
}

void
JsonWriter::key(std::string_view k)
{
    WC_ASSERT(!stack_.empty() && stack_.back() == Ctx::Object,
              "JSON key outside an object");
    WC_ASSERT(!pendingKey_, "two JSON keys in a row");
    if (counts_.back() > 0)
        os_ << ',';
    newlineIndent();
    ++counts_.back();
    os_ << '"' << escape(k)
        << (style_ == Style::Compact ? "\":" : "\": ");
    pendingKey_ = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(Ctx::Object);
    counts_.push_back(0);
}

void
JsonWriter::endObject()
{
    WC_ASSERT(!stack_.empty() && stack_.back() == Ctx::Object,
              "unbalanced endObject");
    const bool empty = counts_.back() == 0;
    stack_.pop_back();
    counts_.pop_back();
    if (!empty && style_ != Style::Compact) {
        os_ << '\n';
        for (std::size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }
    os_ << '}';
    if (stack_.empty() && style_ != Style::Compact)
        os_ << '\n';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(Ctx::Array);
    counts_.push_back(0);
}

void
JsonWriter::endArray()
{
    WC_ASSERT(!stack_.empty() && stack_.back() == Ctx::Array,
              "unbalanced endArray");
    const bool empty = counts_.back() == 0;
    stack_.pop_back();
    counts_.pop_back();
    if (!empty && style_ != Style::Compact) {
        os_ << '\n';
        for (std::size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }
    os_ << ']';
    if (stack_.empty() && style_ != Style::Compact)
        os_ << '\n';
}

void
JsonWriter::value(std::string_view v)
{
    beforeValue();
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(double v)
{
    beforeValue();
    os_ << formatDouble(v);
}

void
JsonWriter::value(u64 v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(i64 v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::valueNull()
{
    beforeValue();
    os_ << "null";
}

void
JsonWriter::rawValue(std::string_view raw)
{
    WC_ASSERT(!raw.empty(), "empty raw JSON value");
    beforeValue();
    os_ << raw;
}

} // namespace warpcomp
