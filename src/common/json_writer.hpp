/**
 * @file
 * Streaming JSON writer shared by every machine-readable output path
 * (perf records, sweep benches, the structured-stats dump, and the
 * Chrome trace exporter). Centralizes string escaping and stable float
 * formatting so all documents are deterministic byte-for-byte given the
 * same data, regardless of which binary produced them.
 */

#ifndef WARPCOMP_COMMON_JSON_WRITER_HPP
#define WARPCOMP_COMMON_JSON_WRITER_HPP

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace warpcomp {

/**
 * Minimal structural JSON emitter. Call begin/end for containers,
 * key() inside objects, value() for leaves; commas and newlines are
 * inserted automatically. Layout is fixed: containers indent by two
 * spaces per level, one element per line, so output is both diffable
 * and byte-stable across runs. The Compact style drops all whitespace
 * (one document per line) for append-only journals where a record must
 * be exactly one line.
 */
class JsonWriter
{
  public:
    enum class Style : u8 { Pretty, Compact };

    explicit JsonWriter(std::ostream &os, Style style = Style::Pretty)
        : os_(os), style_(style)
    {
    }

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Object member key; must be followed by a value or container. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(const std::string &v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(u64 v);
    void value(u32 v) { value(static_cast<u64>(v)); }
    void value(u16 v) { value(static_cast<u64>(v)); }
    void value(i64 v);
    void value(i32 v) { value(static_cast<i64>(v)); }
    /** JSON null (also what non-finite doubles degrade to). */
    void valueNull();

    /**
     * Splice @p raw — one complete, already-serialized JSON value —
     * into the current value slot verbatim. Used to re-emit numeric
     * literals byte-for-byte when copying a parsed document (going
     * through double would round u64 counters above 2^53).
     */
    void rawValue(std::string_view raw);

    /** key + value in one call. */
    template <typename T>
    void
    field(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

    /** Escape one string body (no surrounding quotes). */
    static std::string escape(std::string_view s);

    /**
     * Stable float formatting: shortest fixed/scientific form with up
     * to 12 significant digits ("%.12g"), identical run over run for
     * the same bits. Non-finite values (JSON has no NaN/Inf) render as
     * null.
     */
    static std::string formatDouble(double v);

  private:
    enum class Ctx : u8 { Object, Array };

    void beforeValue();
    void newlineIndent();

    std::ostream &os_;
    Style style_ = Style::Pretty;
    std::vector<Ctx> stack_;
    /** Elements already emitted at each open level. */
    std::vector<u32> counts_;
    bool pendingKey_ = false;
};

} // namespace warpcomp

#endif // WARPCOMP_COMMON_JSON_WRITER_HPP
