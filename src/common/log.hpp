/**
 * @file
 * Minimal logging / fatal-error facility in the spirit of gem5's
 * logging.hh: panic() for simulator bugs, fatal() for user errors.
 */

#ifndef WARPCOMP_COMMON_LOG_HPP
#define WARPCOMP_COMMON_LOG_HPP

#include <sstream>
#include <string>

namespace warpcomp {

/** Verbosity levels, most severe first. */
enum class LogLevel { Quiet, Warn, Info, Debug };

/** Process-wide log verbosity; defaults to Warn. */
LogLevel logLevel();

/** Set the process-wide log verbosity. */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void logImpl(LogLevel level, const std::string &msg);

/**
 * Cold out-of-line slow path for WC_PANIC / WC_ASSERT: the message is
 * formatted inside this never-inlined function, so an assert in the
 * fast path costs one compare-and-branch plus a closure — without
 * this, the inlined ostringstream machinery makes small asserted
 * accessors too big for the inliner, which is measurable in the
 * simulator cycle loop.
 */
template <typename FormatFn>
[[noreturn, gnu::noinline, gnu::cold]] void
panicWith(const char *file, int line, FormatFn &&format)
{
    std::ostringstream ss;
    format(ss);
    panicImpl(file, line, ss.str());
}

} // namespace detail

/**
 * Report an internal simulator invariant violation and abort.
 * Use for conditions that indicate a warpcomp bug, never user error.
 */
#define WC_PANIC(msg)                                                       \
    ::warpcomp::detail::panicWith(                                          \
        __FILE__, __LINE__,                                                 \
        [&](std::ostringstream &wc_panic_ss_) { wc_panic_ss_ << msg; })

/**
 * Report an unusable user configuration and exit(1).
 */
#define WC_FATAL(msg)                                                       \
    do {                                                                    \
        std::ostringstream wc_fatal_ss_;                                    \
        wc_fatal_ss_ << msg;                                                \
        ::warpcomp::detail::fatalImpl(wc_fatal_ss_.str());                  \
    } while (0)

/** Panic unless @p cond holds. */
#define WC_ASSERT(cond, msg)                                                \
    do {                                                                    \
        if (!(cond))                                                        \
            WC_PANIC("assertion failed: " #cond ": " << msg);               \
    } while (0)

/** Informational message, shown at Info verbosity and above. */
#define WC_INFO(msg)                                                        \
    do {                                                                    \
        if (::warpcomp::logLevel() >= ::warpcomp::LogLevel::Info) {         \
            std::ostringstream wc_info_ss_;                                 \
            wc_info_ss_ << msg;                                             \
            ::warpcomp::detail::logImpl(::warpcomp::LogLevel::Info,         \
                                        wc_info_ss_.str());                 \
        }                                                                   \
    } while (0)

/** Warning message, shown at Warn verbosity and above. */
#define WC_WARN(msg)                                                        \
    do {                                                                    \
        if (::warpcomp::logLevel() >= ::warpcomp::LogLevel::Warn) {         \
            std::ostringstream wc_warn_ss_;                                 \
            wc_warn_ss_ << msg;                                             \
            ::warpcomp::detail::logImpl(::warpcomp::LogLevel::Warn,         \
                                        wc_warn_ss_.str());                 \
        }                                                                   \
    } while (0)

} // namespace warpcomp

#endif // WARPCOMP_COMMON_LOG_HPP
