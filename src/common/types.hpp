/**
 * @file
 * Fundamental scalar types and widths shared by every warpcomp module.
 */

#ifndef WARPCOMP_COMMON_TYPES_HPP
#define WARPCOMP_COMMON_TYPES_HPP

#include <cstdint>
#include <cstddef>

namespace warpcomp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulation time measured in SM clock cycles. */
using Cycle = u64;

/** 32-wide SIMT lane mask; bit i set means lane i is active. */
using LaneMask = u32;

/** Number of threads in a warp (CUDA terminology, Sec. 2.1). */
inline constexpr u32 kWarpSize = 32;

/** Mask with every lane of a warp active. */
inline constexpr LaneMask kFullMask = 0xFFFFFFFFu;

/** Bytes in one thread register (32-bit architectural registers). */
inline constexpr u32 kThreadRegBytes = 4;

/** Bytes in one warp register: 32 lanes x 4 B = 128 B. */
inline constexpr u32 kWarpRegBytes = kWarpSize * kThreadRegBytes;

/** Width of one register bank entry in bytes (128-bit banks, Table 2). */
inline constexpr u32 kBankEntryBytes = 16;

/** Banks spanned by one uncompressed warp register (128 B / 16 B). */
inline constexpr u32 kBanksPerWarpReg = kWarpRegBytes / kBankEntryBytes;

} // namespace warpcomp

#endif // WARPCOMP_COMMON_TYPES_HPP
