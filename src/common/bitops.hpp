/**
 * @file
 * Small branch-free bit helpers used by the SIMT stack, bank arbiter and
 * compression codec.
 */

#ifndef WARPCOMP_COMMON_BITOPS_HPP
#define WARPCOMP_COMMON_BITOPS_HPP

#include <bit>

#include "common/types.hpp"

namespace warpcomp {

/** Number of set bits in a lane mask. */
inline u32
popcount(LaneMask m)
{
    return static_cast<u32>(std::popcount(m));
}

/** Index of the lowest set bit; undefined when m == 0. */
inline u32
lowestLane(LaneMask m)
{
    return static_cast<u32>(std::countr_zero(m));
}

/** True when lane @p lane is active in @p m. */
inline bool
laneActive(LaneMask m, u32 lane)
{
    return (m >> lane) & 1u;
}

/** Mask with only the first @p n lanes active. */
inline LaneMask
firstLanes(u32 n)
{
    return n >= 32 ? kFullMask : ((1u << n) - 1u);
}

/** Ceiling division for unsigned quantities. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** True when a signed value fits in @p bytes bytes (two's complement). */
inline bool
fitsSigned(i64 value, u32 bytes)
{
    if (bytes >= 8)
        return true;
    const i64 lo = -(i64{1} << (8 * bytes - 1));
    const i64 hi = (i64{1} << (8 * bytes - 1)) - 1;
    return value >= lo && value <= hi;
}

} // namespace warpcomp

#endif // WARPCOMP_COMMON_BITOPS_HPP
