/**
 * @file
 * Minimal JSON reader, the inverse of JsonWriter. The sweep runner
 * round-trips its own documents through this pair: child processes
 * emit per-point stats with JsonWriter, the supervisor parses them
 * back, the journal stores them, and the merged report re-emits them.
 *
 * Numbers keep their source literal alongside the double value, so
 * re-emitting a parsed document through JsonWriter::rawValue is
 * byte-exact even for u64 counters above 2^53 — the property the
 * checkpoint/resume byte-identity gate depends on.
 *
 * Errors are structured (byte offset + one-line message), never
 * exceptions or crashes: the loader has to survive truncated journal
 * tails from a SIGKILLed sweep.
 */

#ifndef WARPCOMP_COMMON_JSON_PARSE_HPP
#define WARPCOMP_COMMON_JSON_PARSE_HPP

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json_writer.hpp"
#include "common/types.hpp"

namespace warpcomp {

/** One parsed JSON value (object members keep document order). */
struct JsonValue
{
    enum class Kind : u8 { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String: decoded text. Number: the verbatim source literal. */
    std::string text;
    std::vector<JsonValue> items;                           ///< Array
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Member lookup (Object only); nullptr when absent. */
    const JsonValue *find(std::string_view key) const;

    /** Typed accessors; nullopt/nullptr on kind mismatch. */
    std::optional<double> asDouble() const;
    /** Number with a non-negative integral literal that fits u64. */
    std::optional<u64> asU64() const;
    std::optional<bool> asBool() const;
    const std::string *asString() const;
};

/** Parse outcome: a value, or a one-line diagnostic with offset. */
struct JsonParseOutcome
{
    std::optional<JsonValue> value;
    std::string error;  ///< "byte N: message" when !ok()

    bool ok() const { return value.has_value(); }
};

/**
 * Parse one complete JSON document (trailing whitespace allowed,
 * trailing garbage is an error). Depth is capped at 64 so hostile
 * input cannot exhaust the stack.
 */
JsonParseOutcome parseJson(std::string_view text);

/**
 * Re-emit a parsed value through @p w (caller positions the writer on
 * a key or array slot). Numbers are spliced from their source literal,
 * so writer-produced documents round-trip byte-for-byte.
 */
void writeJson(JsonWriter &w, const JsonValue &v);

} // namespace warpcomp

#endif // WARPCOMP_COMMON_JSON_PARSE_HPP
