#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace warpcomp {

namespace {

// The only process-wide mutable in the simulator. Atomic so worker
// threads in the parallel runner can read it while a driver adjusts
// verbosity; everything else a run touches is owned by that run.
std::atomic<LogLevel> gLevel{LogLevel::Warn};

} // namespace

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
logImpl(LogLevel level, const std::string &msg)
{
    const char *tag = level == LogLevel::Warn ? "warn" : "info";
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

} // namespace warpcomp
