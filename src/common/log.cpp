#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace warpcomp {

namespace {

LogLevel gLevel = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
logImpl(LogLevel level, const std::string &msg)
{
    const char *tag = level == LogLevel::Warn ? "warn" : "info";
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

} // namespace warpcomp
