#include "common/json_parse.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace warpcomp {

namespace {

constexpr u32 kMaxDepth = 64;

/** Recursive-descent parser over one immutable text span. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonParseOutcome
    run()
    {
        skipWs();
        JsonValue v;
        if (!parseValue(v, 0))
            return {std::nullopt, error_};
        skipWs();
        if (pos_ != text_.size())
            return {std::nullopt, fail("trailing garbage after document")};
        return {std::move(v), {}};
    }

  private:
    std::string
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = "byte " + std::to_string(pos_) + ": " + msg;
        return error_;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c) {
            fail(std::string("expected '") + c + "'");
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            fail("bad literal");
            return false;
        }
        pos_ += word.size();
        return true;
    }

    /** UTF-8-encode one code point onto @p out. */
    static void
    encodeUtf8(u32 cp, std::string &out)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    hex4(u32 &out)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<size_t>(i)];
            u32 digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<u32>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<u32>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<u32>(c - 'A' + 10);
            else {
                fail("bad \\u escape digit");
                return false;
            }
            out = (out << 4) | digit;
        }
        pos_ += 4;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return false;
            }
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size()) {
                fail("truncated escape");
                return false;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  u32 cp = 0;
                  if (!hex4(cp))
                      return false;
                  if (cp >= 0xD800 && cp < 0xDC00) {
                      // High surrogate: a \uXXXX low surrogate must
                      // follow to form one supplementary code point.
                      if (text_.substr(pos_, 2) != "\\u") {
                          fail("unpaired high surrogate");
                          return false;
                      }
                      pos_ += 2;
                      u32 lo = 0;
                      if (!hex4(lo))
                          return false;
                      if (lo < 0xDC00 || lo > 0xDFFF) {
                          fail("bad low surrogate");
                          return false;
                      }
                      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                  } else if (cp >= 0xDC00 && cp < 0xE000) {
                      fail("unpaired low surrogate");
                      return false;
                  }
                  encodeUtf8(cp, out);
                  break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
    }

    bool
    parseNumber(JsonValue &v)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&]() {
            const size_t first = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            return pos_ > first;
        };
        if (!digits()) {
            fail("bad number");
            return false;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits()) {
                fail("bad number fraction");
                return false;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits()) {
                fail("bad number exponent");
                return false;
            }
        }
        v.kind = JsonValue::Kind::Number;
        v.text = std::string(text_.substr(start, pos_ - start));
        v.number = std::strtod(v.text.c_str(), nullptr);
        return true;
    }

    bool
    parseValue(JsonValue &v, u32 depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return false;
        }
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            v.kind = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!expect(':'))
                    return false;
                skipWs();
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                v.members.emplace_back(std::move(key), std::move(member));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return expect('}');
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                JsonValue item;
                if (!parseValue(item, depth + 1))
                    return false;
                v.items.push_back(std::move(item));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return expect(']');
            }
        }
        if (c == '"') {
            v.kind = JsonValue::Kind::String;
            return parseString(v.text);
        }
        if (c == 't') {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            v.kind = JsonValue::Kind::Null;
            return literal("null");
        }
        return parseNumber(v);
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

std::optional<double>
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        return std::nullopt;
    return number;
}

std::optional<u64>
JsonValue::asU64() const
{
    if (kind != Kind::Number || text.empty() || text[0] == '-')
        return std::nullopt;
    for (char c : text)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;    // fractional/exponent literal
    char *end = nullptr;
    const u64 v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        return std::nullopt;
    // strtoull saturates at ULLONG_MAX with errno; reject by
    // round-tripping instead of depending on errno state.
    if (std::to_string(v) != text)
        return std::nullopt;
    return v;
}

std::optional<bool>
JsonValue::asBool() const
{
    if (kind != Kind::Bool)
        return std::nullopt;
    return boolean;
}

const std::string *
JsonValue::asString() const
{
    return kind == Kind::String ? &text : nullptr;
}

JsonParseOutcome
parseJson(std::string_view text)
{
    return Parser(text).run();
}

void
writeJson(JsonWriter &w, const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        w.valueNull();
        break;
      case JsonValue::Kind::Bool:
        w.value(v.boolean);
        break;
      case JsonValue::Kind::Number:
        w.rawValue(v.text);
        break;
      case JsonValue::Kind::String:
        w.value(v.text);
        break;
      case JsonValue::Kind::Array:
        w.beginArray();
        for (const JsonValue &item : v.items)
            writeJson(w, item);
        w.endArray();
        break;
      case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto &[k, member] : v.members) {
            w.key(k);
            writeJson(w, member);
        }
        w.endObject();
        break;
    }
}

} // namespace warpcomp
