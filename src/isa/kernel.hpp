/**
 * @file
 * Kernel container: static code plus resource declaration.
 */

#ifndef WARPCOMP_ISA_KERNEL_HPP
#define WARPCOMP_ISA_KERNEL_HPP

#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace warpcomp {

/**
 * A compiled kernel: straight-line instruction vector with branch targets
 * expressed as instruction indices, plus the per-thread register demand
 * and per-CTA shared memory demand used for occupancy and register-file
 * allocation.
 */
class Kernel
{
  public:
    Kernel(std::string name, u32 num_regs, u32 num_preds,
           u32 smem_bytes = 0);

    const std::string &name() const { return name_; }
    u32 numRegs() const { return numRegs_; }
    u32 numPreds() const { return numPreds_; }
    u32 smemBytes() const { return smemBytes_; }

    /** Append an instruction; returns its pc. */
    u32 append(const Instruction &inst);

    const Instruction &
    at(u32 pc) const
    {
        WC_ASSERT(pc < code_.size(), "pc " << pc
                  << " out of range in kernel " << name_);
        return code_[pc];
    }

    Instruction &
    at(u32 pc)
    {
        WC_ASSERT(pc < code_.size(), "pc " << pc
                  << " out of range in kernel " << name_);
        return code_[pc];
    }
    u32 size() const { return static_cast<u32>(code_.size()); }
    const std::vector<Instruction> &code() const { return code_; }

    /**
     * Structural sanity checks: branch targets and reconvergence points
     * in range, register/predicate numbers within declared demand, kernel
     * terminates with Exit on every path end. Panics on violation.
     */
    void validate() const;

  private:
    std::string name_;
    u32 numRegs_;
    u32 numPreds_;
    u32 smemBytes_;
    std::vector<Instruction> code_;
};

} // namespace warpcomp

#endif // WARPCOMP_ISA_KERNEL_HPP
