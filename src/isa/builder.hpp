/**
 * @file
 * KernelBuilder: a small structured-control-flow DSL for authoring
 * kernels in the warpcomp ISA.
 *
 * The builder computes branch targets and SIMT reconvergence points
 * (immediate post-dominators) for its `if_` / `ifElse_` / `while_` /
 * `forRange` constructs, so kernels written through it can never build a
 * malformed reconvergence stack. Workload ports in src/workloads are all
 * written against this API.
 */

#ifndef WARPCOMP_ISA_BUILDER_HPP
#define WARPCOMP_ISA_BUILDER_HPP

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "isa/kernel.hpp"

namespace warpcomp {

/** Handle to an allocated general-purpose register. */
struct Reg
{
    u8 idx = kNoReg;

    /** Registers convert implicitly to register operands. */
    operator Operand() const { return Operand::fromReg(idx); }
};

/** Handle to an allocated predicate register. */
struct Pred
{
    u8 idx = kNoPred;
};

/**
 * Builder for one kernel. Typical use:
 *
 * @code
 * KernelBuilder b("saxpy");
 * Reg tid = b.newReg(), x = b.newReg(), y = b.newReg();
 * b.s2r(tid, SpecialReg::TidX);
 * ...
 * Kernel k = b.build();
 * @endcode
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name, u32 smem_bytes = 0);

    /** Allocate a fresh general-purpose register. */
    Reg newReg();
    /** Allocate a fresh predicate register. */
    Pred newPred();
    /** Immediate operand shorthand. */
    static Operand imm(i32 v) { return Operand::fromImm(v); }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------
    void s2r(Reg d, SpecialReg sr);
    void movImm(Reg d, i32 v);
    void mov(Reg d, Operand a);

    // ------------------------------------------------------------------
    // Integer arithmetic / logic
    // ------------------------------------------------------------------
    void iadd(Reg d, Operand a, Operand b);
    void isub(Reg d, Operand a, Operand b);
    void imul(Reg d, Operand a, Operand b);
    /** d = a * b + c */
    void imad(Reg d, Operand a, Operand b, Operand c);
    void imin(Reg d, Operand a, Operand b);
    void imax(Reg d, Operand a, Operand b);
    void iabs(Reg d, Operand a);
    void and_(Reg d, Operand a, Operand b);
    void or_(Reg d, Operand a, Operand b);
    void xor_(Reg d, Operand a, Operand b);
    void not_(Reg d, Operand a);
    void shl(Reg d, Operand a, Operand b);
    void shr(Reg d, Operand a, Operand b);
    void sra(Reg d, Operand a, Operand b);

    // ------------------------------------------------------------------
    // Predicates / select
    // ------------------------------------------------------------------
    void isetp(Pred p, CmpOp c, Operand a, Operand b);
    void fsetp(Pred p, CmpOp c, Operand a, Operand b);
    /** d = p ? a : b */
    void selp(Reg d, Pred p, Operand a, Operand b);
    /** d = a && b */
    void pand(Pred d, Pred a, Pred b);
    /** d = a || b */
    void por(Pred d, Pred a, Pred b);
    /** d = !a */
    void pnot(Pred d, Pred a);

    // ------------------------------------------------------------------
    // Floating point
    // ------------------------------------------------------------------
    void fadd(Reg d, Operand a, Operand b);
    void fmul(Reg d, Operand a, Operand b);
    /** d = a * b + c */
    void ffma(Reg d, Operand a, Operand b, Operand c);
    void fmin(Reg d, Operand a, Operand b);
    void fmax(Reg d, Operand a, Operand b);
    void i2f(Reg d, Operand a);
    void f2i(Reg d, Operand a);
    /** d = 1.0f / a */
    void frcp(Reg d, Operand a);
    /** Immediate float load (bit pattern through MOV32I). */
    void movFloat(Reg d, float v);

    // ------------------------------------------------------------------
    // Memory (byte addressing; offsets in bytes)
    // ------------------------------------------------------------------
    void ldg(Reg d, Reg addr, i32 offset = 0);
    void stg(Reg addr, Operand value, i32 offset = 0);
    void lds(Reg d, Reg addr, i32 offset = 0);
    void sts(Reg addr, Operand value, i32 offset = 0);
    /** Constant-bank load from [addr + offset]; addr may be immediate. */
    void ldc(Reg d, Operand addr, i32 offset = 0);

    // ------------------------------------------------------------------
    // Control
    // ------------------------------------------------------------------
    /** CTA-wide barrier. */
    void bar();

    /** Execute @p then in lanes where @p p holds. */
    void if_(Pred p, const std::function<void()> &then);
    /** Execute @p then in lanes where @p p does NOT hold. */
    void ifNot_(Pred p, const std::function<void()> &then);
    /** Two-sided conditional. */
    void ifElse_(Pred p, const std::function<void()> &then,
                 const std::function<void()> &otherwise);
    /**
     * while (cond()) body(). @p cond emits compare code and returns the
     * continue predicate; it is re-evaluated every iteration.
     */
    void while_(const std::function<Pred()> &cond,
                const std::function<void()> &body);
    /**
     * for (counter = start; counter < end; counter += step) body().
     * With negative @p step the loop runs while counter > end.
     */
    void forRange(Reg counter, Operand start, Operand end, i32 step,
                  const std::function<void()> &body);

    /**
     * Emit the instructions produced by @p fn under guard predicate
     * @p p (if-conversion; no divergence, inactive lanes are masked).
     * Structured control flow may not be used inside.
     */
    void predicated(Pred p, bool negate, const std::function<void()> &fn);

    /** Number of instructions emitted so far (== pc of next emission). */
    u32 nextPc() const { return static_cast<u32>(code_.size()); }

    /** Finalize: appends EXIT, validates, and returns the kernel. */
    Kernel build();

  private:
    u32 emit(Instruction inst);
    void emit3(Opcode op, Reg d, Operand a, Operand b, Operand c);
    /** Emit a branch with placeholder target/reconv; returns its pc. */
    u32 emitBranch(u8 guard_pred, bool negate);
    void patchBranch(u32 pc, u32 target, u32 reconv);

    std::string name_;
    u32 smemBytes_;
    u32 nextReg_ = 0;
    u32 nextPred_ = 0;
    u8 guardPred_ = kNoPred;
    bool guardNegate_ = false;
    bool inPredicated_ = false;
    std::vector<Instruction> code_;
};

} // namespace warpcomp

#endif // WARPCOMP_ISA_BUILDER_HPP
