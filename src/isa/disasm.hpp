/**
 * @file
 * Textual disassembly of kernels, for debugging and example output.
 */

#ifndef WARPCOMP_ISA_DISASM_HPP
#define WARPCOMP_ISA_DISASM_HPP

#include <string>

#include "isa/kernel.hpp"

namespace warpcomp {

/** One-line disassembly of a single instruction. */
std::string disassemble(const Instruction &inst);

/** Full kernel listing with pc prefixes. */
std::string disassemble(const Kernel &kernel);

} // namespace warpcomp

#endif // WARPCOMP_ISA_DISASM_HPP
