/**
 * @file
 * Instruction encoding: operands, predication, branch metadata.
 */

#ifndef WARPCOMP_ISA_INSTRUCTION_HPP
#define WARPCOMP_ISA_INSTRUCTION_HPP

#include <array>
#include <string>

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace warpcomp {

/** Sentinel register / predicate numbers meaning "unused". */
inline constexpr u8 kNoReg = 0xFF;
inline constexpr u8 kNoPred = 0xFF;

/** Architectural limits of the ISA. */
inline constexpr u32 kMaxRegsPerThread = 64;
inline constexpr u32 kMaxPredsPerThread = 8;

/** A source operand: a register, an immediate, or absent. */
struct Operand
{
    enum class Kind : u8 { None, Reg, Imm };

    Kind kind = Kind::None;
    u8 reg = kNoReg;
    i32 imm = 0;

    static Operand none() { return {}; }

    static Operand
    fromReg(u8 r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    fromImm(i32 v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/**
 * One static instruction. Program counters are instruction indices into
 * the owning kernel's code vector (not byte addresses).
 */
struct Instruction
{
    Opcode op = Opcode::Nop;

    /** Destination GPR; kNoReg when the opcode writes none. */
    u8 dst = kNoReg;
    /** Destination predicate for ISetP / FSetP. */
    u8 dstPred = kNoPred;

    /** Up to three source operands (FFMA/IMAD use all three). */
    std::array<Operand, 3> src{};

    /** Guard predicate: instruction executes only in lanes where the
     *  predicate (xor negation) holds. kNoPred means unguarded. */
    u8 guardPred = kNoPred;
    bool guardNegate = false;

    /** Comparison operator for ISetP / FSetP, or select pred for SelP. */
    CmpOp cmp = CmpOp::Eq;
    /** Select / source predicate for SelP, PAnd, POr, PNot. */
    u8 srcPred = kNoPred;
    /** Second source predicate for PAnd / POr. */
    u8 srcPred2 = kNoPred;

    /** Special register selector for S2R. */
    SpecialReg sreg = SpecialReg::TidX;

    /** Branch target (instruction index) for Bra. */
    u32 target = 0;
    /** Immediate-post-dominator reconvergence point for Bra. */
    u32 reconv = 0;

    /** Byte offset immediate for memory operations. */
    i32 memOffset = 0;

    bool isBranch() const { return op == Opcode::Bra; }
    bool isExit() const { return op == Opcode::Exit; }
    bool isBarrier() const { return op == Opcode::Bar; }
    bool isLoad() const
    {
        return op == Opcode::Ldg || op == Opcode::Lds || op == Opcode::Ldc;
    }
    bool isStore() const { return op == Opcode::Stg || op == Opcode::Sts; }
    bool isMemory() const { return isLoad() || isStore(); }

    bool hasDst() const { return dst != kNoReg && writesGpr(op); }
    bool hasGuard() const { return guardPred != kNoPred; }

    /** Number of distinct GPR source registers read. */
    u32 numRegSources() const;
    /** i-th GPR source register read (0 <= i < numRegSources()). */
    u8 regSource(u32 i) const;

    /**
     * Issue-time metadata cached off the operand fields (filled by
     * Kernel::append, or finalizeIssueMasks() for hand-built
     * instructions). The scoreboard probe runs once per candidate warp
     * per scheduler cycle; with these the whole hazard check collapses
     * to two mask tests instead of an operand walk.
     */
    u64 sbRegMask = 0;   ///< every GPR read or written (bit per reg)
    u8 sbPredMask = 0;   ///< every predicate read or written
    bool sbPipeline = false; ///< occupies a collector / exec slot
    bool sbMemory = false;   ///< counts against the MSHR budget

    /** (Re)derive the cached issue metadata from the operand fields. */
    void finalizeIssueMasks();
};

} // namespace warpcomp

#endif // WARPCOMP_ISA_INSTRUCTION_HPP
