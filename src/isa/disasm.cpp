#include "isa/disasm.hpp"

#include <sstream>

namespace warpcomp {

namespace {

void
appendOperand(std::ostringstream &os, const Operand &o)
{
    if (o.isReg())
        os << "r" << static_cast<int>(o.reg);
    else if (o.isImm())
        os << "#" << o.imm;
}

} // namespace

std::string
disassemble(const Instruction &in)
{
    std::ostringstream os;
    if (in.hasGuard()) {
        os << '@' << (in.guardNegate ? "!" : "")
           << 'p' << static_cast<int>(in.guardPred) << ' ';
    }
    os << opcodeName(in.op);
    if (in.op == Opcode::ISetP || in.op == Opcode::FSetP)
        os << '.' << cmpName(in.cmp);

    bool first = true;
    auto sep = [&] {
        os << (first ? " " : ", ");
        first = false;
    };

    if (in.dstPred != kNoPred) {
        sep();
        os << 'p' << static_cast<int>(in.dstPred);
    }
    if (in.hasDst()) {
        sep();
        os << 'r' << static_cast<int>(in.dst);
    }
    if (in.op == Opcode::S2R) {
        sep();
        os << sregName(in.sreg);
    }
    if (in.srcPred != kNoPred) {
        sep();
        os << 'p' << static_cast<int>(in.srcPred);
    }
    if (in.srcPred2 != kNoPred) {
        sep();
        os << 'p' << static_cast<int>(in.srcPred2);
    }
    for (const Operand &o : in.src) {
        if (o.isNone())
            continue;
        sep();
        appendOperand(os, o);
    }
    if (in.isMemory() && in.memOffset != 0)
        os << " +" << in.memOffset;
    if (in.isBranch()) {
        sep();
        os << "->" << in.target << " (reconv " << in.reconv << ")";
    }
    return os.str();
}

std::string
disassemble(const Kernel &kernel)
{
    std::ostringstream os;
    os << ".kernel " << kernel.name() << "  regs=" << kernel.numRegs()
       << " preds=" << kernel.numPreds()
       << " smem=" << kernel.smemBytes() << "B\n";
    for (u32 pc = 0; pc < kernel.size(); ++pc)
        os << "  " << pc << ":\t" << disassemble(kernel.at(pc)) << '\n';
    return os.str();
}

} // namespace warpcomp
