#include "isa/instruction.hpp"

#include "common/log.hpp"

namespace warpcomp {

u32
Instruction::numRegSources() const
{
    u32 n = 0;
    std::array<u8, 3> seen{kNoReg, kNoReg, kNoReg};
    for (const Operand &o : src) {
        if (!o.isReg())
            continue;
        bool dup = false;
        for (u32 j = 0; j < n; ++j) {
            if (seen[j] == o.reg)
                dup = true;
        }
        if (!dup)
            seen[n++] = o.reg;
    }
    return n;
}

u8
Instruction::regSource(u32 i) const
{
    u32 n = 0;
    std::array<u8, 3> seen{kNoReg, kNoReg, kNoReg};
    for (const Operand &o : src) {
        if (!o.isReg())
            continue;
        bool dup = false;
        for (u32 j = 0; j < n; ++j) {
            if (seen[j] == o.reg)
                dup = true;
        }
        if (!dup)
            seen[n++] = o.reg;
    }
    WC_ASSERT(i < n, "regSource index out of range");
    return seen[i];
}

void
Instruction::finalizeIssueMasks()
{
    u64 regs = 0;
    for (const Operand &o : src) {
        if (o.isReg())
            regs |= u64{1} << o.reg;
    }
    if (hasDst())
        regs |= u64{1} << dst;
    sbRegMask = regs;

    u8 preds = 0;
    const auto add_pred = [&preds](u8 p) {
        if (p != kNoPred)
            preds |= static_cast<u8>(1u << p);
    };
    add_pred(guardPred);
    add_pred(srcPred);
    add_pred(srcPred2);
    add_pred(dstPred);
    sbPredMask = preds;

    // Control-only instructions never occupy a collector / exec slot.
    sbPipeline = !(op == Opcode::Bra || op == Opcode::Bar ||
                   op == Opcode::Exit || op == Opcode::Nop);
    sbMemory = isMemory();
}

} // namespace warpcomp
