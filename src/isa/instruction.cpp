#include "isa/instruction.hpp"

#include "common/log.hpp"

namespace warpcomp {

u32
Instruction::numRegSources() const
{
    u32 n = 0;
    std::array<u8, 3> seen{kNoReg, kNoReg, kNoReg};
    for (const Operand &o : src) {
        if (!o.isReg())
            continue;
        bool dup = false;
        for (u32 j = 0; j < n; ++j) {
            if (seen[j] == o.reg)
                dup = true;
        }
        if (!dup)
            seen[n++] = o.reg;
    }
    return n;
}

u8
Instruction::regSource(u32 i) const
{
    u32 n = 0;
    std::array<u8, 3> seen{kNoReg, kNoReg, kNoReg};
    for (const Operand &o : src) {
        if (!o.isReg())
            continue;
        bool dup = false;
        for (u32 j = 0; j < n; ++j) {
            if (seen[j] == o.reg)
                dup = true;
        }
        if (!dup)
            seen[n++] = o.reg;
    }
    WC_ASSERT(i < n, "regSource index out of range");
    return seen[i];
}

} // namespace warpcomp
