#include "isa/kernel.hpp"

#include "common/log.hpp"

namespace warpcomp {

Kernel::Kernel(std::string name, u32 num_regs, u32 num_preds,
               u32 smem_bytes)
    : name_(std::move(name)), numRegs_(num_regs), numPreds_(num_preds),
      smemBytes_(smem_bytes)
{
    WC_ASSERT(num_regs <= kMaxRegsPerThread,
              "kernel " << name_ << " declares too many registers");
    WC_ASSERT(num_preds <= kMaxPredsPerThread,
              "kernel " << name_ << " declares too many predicates");
}

u32
Kernel::append(const Instruction &inst)
{
    code_.push_back(inst);
    code_.back().finalizeIssueMasks();
    return static_cast<u32>(code_.size()) - 1;
}

void
Kernel::validate() const
{
    WC_ASSERT(!code_.empty(), "kernel " << name_ << " has no code");
    WC_ASSERT(code_.back().isExit(),
              "kernel " << name_ << " must end with EXIT");

    auto check_reg = [&](u8 r, u32 pc) {
        if (r != kNoReg) {
            WC_ASSERT(r < numRegs_, "kernel " << name_ << " pc " << pc
                      << " uses r" << static_cast<int>(r)
                      << " beyond declared " << numRegs_);
        }
    };
    auto check_pred = [&](u8 p, u32 pc) {
        if (p != kNoPred) {
            WC_ASSERT(p < numPreds_, "kernel " << name_ << " pc " << pc
                      << " uses p" << static_cast<int>(p)
                      << " beyond declared " << numPreds_);
        }
    };

    for (u32 pc = 0; pc < code_.size(); ++pc) {
        const Instruction &in = code_[pc];
        if (in.hasDst())
            check_reg(in.dst, pc);
        for (const Operand &o : in.src) {
            if (o.isReg())
                check_reg(o.reg, pc);
        }
        check_pred(in.guardPred, pc);
        check_pred(in.dstPred, pc);
        check_pred(in.srcPred, pc);
        check_pred(in.srcPred2, pc);
        if (in.isBranch()) {
            WC_ASSERT(in.target < code_.size(), "kernel " << name_
                      << " pc " << pc << " branch target out of range");
            WC_ASSERT(in.reconv <= code_.size(), "kernel " << name_
                      << " pc " << pc << " reconvergence out of range");
        }
    }
}

} // namespace warpcomp
