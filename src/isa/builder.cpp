#include "isa/builder.hpp"

#include <bit>

#include "common/log.hpp"

namespace warpcomp {

KernelBuilder::KernelBuilder(std::string name, u32 smem_bytes)
    : name_(std::move(name)), smemBytes_(smem_bytes)
{
}

Reg
KernelBuilder::newReg()
{
    WC_ASSERT(nextReg_ < kMaxRegsPerThread,
              "kernel " << name_ << " exceeds " << kMaxRegsPerThread
              << " registers");
    return Reg{static_cast<u8>(nextReg_++)};
}

Pred
KernelBuilder::newPred()
{
    WC_ASSERT(nextPred_ < kMaxPredsPerThread,
              "kernel " << name_ << " exceeds " << kMaxPredsPerThread
              << " predicates");
    return Pred{static_cast<u8>(nextPred_++)};
}

u32
KernelBuilder::emit(Instruction inst)
{
    if (guardPred_ != kNoPred && inst.guardPred == kNoPred) {
        inst.guardPred = guardPred_;
        inst.guardNegate = guardNegate_;
    }
    code_.push_back(inst);
    return static_cast<u32>(code_.size()) - 1;
}

void
KernelBuilder::emit3(Opcode op, Reg d, Operand a, Operand b, Operand c)
{
    Instruction in;
    in.op = op;
    in.dst = d.idx;
    in.src[0] = a;
    in.src[1] = b;
    in.src[2] = c;
    emit(in);
}

void
KernelBuilder::s2r(Reg d, SpecialReg sr)
{
    Instruction in;
    in.op = Opcode::S2R;
    in.dst = d.idx;
    in.sreg = sr;
    emit(in);
}

void
KernelBuilder::movImm(Reg d, i32 v)
{
    Instruction in;
    in.op = Opcode::MovImm;
    in.dst = d.idx;
    in.src[0] = Operand::fromImm(v);
    emit(in);
}

void
KernelBuilder::mov(Reg d, Operand a)
{
    emit3(Opcode::Mov, d, a, Operand::none(), Operand::none());
}

void
KernelBuilder::iadd(Reg d, Operand a, Operand b)
{
    emit3(Opcode::IAdd, d, a, b, Operand::none());
}

void
KernelBuilder::isub(Reg d, Operand a, Operand b)
{
    emit3(Opcode::ISub, d, a, b, Operand::none());
}

void
KernelBuilder::imul(Reg d, Operand a, Operand b)
{
    emit3(Opcode::IMul, d, a, b, Operand::none());
}

void
KernelBuilder::imad(Reg d, Operand a, Operand b, Operand c)
{
    emit3(Opcode::IMad, d, a, b, c);
}

void
KernelBuilder::imin(Reg d, Operand a, Operand b)
{
    emit3(Opcode::IMin, d, a, b, Operand::none());
}

void
KernelBuilder::imax(Reg d, Operand a, Operand b)
{
    emit3(Opcode::IMax, d, a, b, Operand::none());
}

void
KernelBuilder::iabs(Reg d, Operand a)
{
    emit3(Opcode::IAbs, d, a, Operand::none(), Operand::none());
}

void
KernelBuilder::and_(Reg d, Operand a, Operand b)
{
    emit3(Opcode::And, d, a, b, Operand::none());
}

void
KernelBuilder::or_(Reg d, Operand a, Operand b)
{
    emit3(Opcode::Or, d, a, b, Operand::none());
}

void
KernelBuilder::xor_(Reg d, Operand a, Operand b)
{
    emit3(Opcode::Xor, d, a, b, Operand::none());
}

void
KernelBuilder::not_(Reg d, Operand a)
{
    emit3(Opcode::Not, d, a, Operand::none(), Operand::none());
}

void
KernelBuilder::shl(Reg d, Operand a, Operand b)
{
    emit3(Opcode::Shl, d, a, b, Operand::none());
}

void
KernelBuilder::shr(Reg d, Operand a, Operand b)
{
    emit3(Opcode::Shr, d, a, b, Operand::none());
}

void
KernelBuilder::sra(Reg d, Operand a, Operand b)
{
    emit3(Opcode::Sra, d, a, b, Operand::none());
}

void
KernelBuilder::isetp(Pred p, CmpOp c, Operand a, Operand b)
{
    Instruction in;
    in.op = Opcode::ISetP;
    in.dstPred = p.idx;
    in.cmp = c;
    in.src[0] = a;
    in.src[1] = b;
    emit(in);
}

void
KernelBuilder::fsetp(Pred p, CmpOp c, Operand a, Operand b)
{
    Instruction in;
    in.op = Opcode::FSetP;
    in.dstPred = p.idx;
    in.cmp = c;
    in.src[0] = a;
    in.src[1] = b;
    emit(in);
}

void
KernelBuilder::selp(Reg d, Pred p, Operand a, Operand b)
{
    Instruction in;
    in.op = Opcode::SelP;
    in.dst = d.idx;
    in.srcPred = p.idx;
    in.src[0] = a;
    in.src[1] = b;
    emit(in);
}

void
KernelBuilder::pand(Pred d, Pred a, Pred b)
{
    Instruction in;
    in.op = Opcode::PAnd;
    in.dstPred = d.idx;
    in.srcPred = a.idx;
    in.srcPred2 = b.idx;
    emit(in);
}

void
KernelBuilder::por(Pred d, Pred a, Pred b)
{
    Instruction in;
    in.op = Opcode::POr;
    in.dstPred = d.idx;
    in.srcPred = a.idx;
    in.srcPred2 = b.idx;
    emit(in);
}

void
KernelBuilder::pnot(Pred d, Pred a)
{
    Instruction in;
    in.op = Opcode::PNot;
    in.dstPred = d.idx;
    in.srcPred = a.idx;
    emit(in);
}

void
KernelBuilder::fadd(Reg d, Operand a, Operand b)
{
    emit3(Opcode::FAdd, d, a, b, Operand::none());
}

void
KernelBuilder::fmul(Reg d, Operand a, Operand b)
{
    emit3(Opcode::FMul, d, a, b, Operand::none());
}

void
KernelBuilder::ffma(Reg d, Operand a, Operand b, Operand c)
{
    emit3(Opcode::FFma, d, a, b, c);
}

void
KernelBuilder::fmin(Reg d, Operand a, Operand b)
{
    emit3(Opcode::FMin, d, a, b, Operand::none());
}

void
KernelBuilder::fmax(Reg d, Operand a, Operand b)
{
    emit3(Opcode::FMax, d, a, b, Operand::none());
}

void
KernelBuilder::i2f(Reg d, Operand a)
{
    emit3(Opcode::I2F, d, a, Operand::none(), Operand::none());
}

void
KernelBuilder::f2i(Reg d, Operand a)
{
    emit3(Opcode::F2I, d, a, Operand::none(), Operand::none());
}

void
KernelBuilder::frcp(Reg d, Operand a)
{
    emit3(Opcode::FRcp, d, a, Operand::none(), Operand::none());
}

void
KernelBuilder::movFloat(Reg d, float v)
{
    movImm(d, std::bit_cast<i32>(v));
}

void
KernelBuilder::ldg(Reg d, Reg addr, i32 offset)
{
    Instruction in;
    in.op = Opcode::Ldg;
    in.dst = d.idx;
    in.src[0] = addr;
    in.memOffset = offset;
    emit(in);
}

void
KernelBuilder::stg(Reg addr, Operand value, i32 offset)
{
    Instruction in;
    in.op = Opcode::Stg;
    in.src[0] = addr;
    in.src[1] = value;
    in.memOffset = offset;
    emit(in);
}

void
KernelBuilder::lds(Reg d, Reg addr, i32 offset)
{
    Instruction in;
    in.op = Opcode::Lds;
    in.dst = d.idx;
    in.src[0] = addr;
    in.memOffset = offset;
    emit(in);
}

void
KernelBuilder::sts(Reg addr, Operand value, i32 offset)
{
    Instruction in;
    in.op = Opcode::Sts;
    in.src[0] = addr;
    in.src[1] = value;
    in.memOffset = offset;
    emit(in);
}

void
KernelBuilder::ldc(Reg d, Operand addr, i32 offset)
{
    Instruction in;
    in.op = Opcode::Ldc;
    in.dst = d.idx;
    in.src[0] = addr;
    in.memOffset = offset;
    emit(in);
}

void
KernelBuilder::bar()
{
    Instruction in;
    in.op = Opcode::Bar;
    emit(in);
}

u32
KernelBuilder::emitBranch(u8 guard_pred, bool negate)
{
    WC_ASSERT(!inPredicated_,
              "control flow inside predicated() block in " << name_);
    Instruction in;
    in.op = Opcode::Bra;
    in.guardPred = guard_pred;
    in.guardNegate = negate;
    in.target = 0;
    in.reconv = 0;
    code_.push_back(in); // bypass guard inheritance in emit()
    return static_cast<u32>(code_.size()) - 1;
}

void
KernelBuilder::patchBranch(u32 pc, u32 target, u32 reconv)
{
    WC_ASSERT(pc < code_.size() && code_[pc].isBranch(),
              "patching a non-branch at pc " << pc);
    code_[pc].target = target;
    code_[pc].reconv = reconv;
}

void
KernelBuilder::if_(Pred p, const std::function<void()> &then)
{
    // @!p BRA Lend (reconv = Lend); then-block; Lend:
    const u32 bra = emitBranch(p.idx, true);
    then();
    const u32 end = nextPc();
    patchBranch(bra, end, end);
}

void
KernelBuilder::ifNot_(Pred p, const std::function<void()> &then)
{
    const u32 bra = emitBranch(p.idx, false);
    then();
    const u32 end = nextPc();
    patchBranch(bra, end, end);
}

void
KernelBuilder::ifElse_(Pred p, const std::function<void()> &then,
                       const std::function<void()> &otherwise)
{
    // @!p BRA Lelse (reconv = Lend); then; BRA Lend; Lelse: else; Lend:
    const u32 bra = emitBranch(p.idx, true);
    then();
    const u32 jmp = emitBranch(kNoPred, false);
    const u32 else_start = nextPc();
    otherwise();
    const u32 end = nextPc();
    patchBranch(bra, else_start, end);
    patchBranch(jmp, end, end);
}

void
KernelBuilder::while_(const std::function<Pred()> &cond,
                      const std::function<void()> &body)
{
    // Lcond: cond -> p; @!p BRA Lend (reconv = Lend); body;
    //        BRA Lcond; Lend:
    const u32 cond_start = nextPc();
    const Pred p = cond();
    const u32 exit_bra = emitBranch(p.idx, true);
    body();
    const u32 back = emitBranch(kNoPred, false);
    const u32 end = nextPc();
    patchBranch(back, cond_start, cond_start);
    patchBranch(exit_bra, end, end);
}

void
KernelBuilder::forRange(Reg counter, Operand start, Operand end, i32 step,
                        const std::function<void()> &body)
{
    WC_ASSERT(step != 0, "forRange step must be nonzero in " << name_);
    mov(counter, start);
    const Pred p = newPred();
    const CmpOp cmp = step > 0 ? CmpOp::Lt : CmpOp::Gt;
    while_(
        [&] {
            isetp(p, cmp, counter, end);
            return p;
        },
        [&] {
            body();
            iadd(counter, counter, imm(step));
        });
}

void
KernelBuilder::predicated(Pred p, bool negate,
                          const std::function<void()> &fn)
{
    WC_ASSERT(!inPredicated_, "nested predicated() in " << name_);
    guardPred_ = p.idx;
    guardNegate_ = negate;
    inPredicated_ = true;
    fn();
    inPredicated_ = false;
    guardPred_ = kNoPred;
    guardNegate_ = false;
}

Kernel
KernelBuilder::build()
{
    Instruction exit;
    exit.op = Opcode::Exit;
    code_.push_back(exit);

    Kernel k(name_, nextReg_ == 0 ? 1 : nextReg_,
             nextPred_ == 0 ? 1 : nextPred_, smemBytes_);
    for (const Instruction &in : code_)
        k.append(in);
    k.validate();
    return k;
}

} // namespace warpcomp
