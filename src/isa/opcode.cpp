#include "isa/opcode.hpp"

#include "common/log.hpp"

namespace warpcomp {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "NOP";
      case Opcode::S2R: return "S2R";
      case Opcode::Mov: return "MOV";
      case Opcode::MovImm: return "MOV32I";
      case Opcode::IAdd: return "IADD";
      case Opcode::ISub: return "ISUB";
      case Opcode::IMul: return "IMUL";
      case Opcode::IMad: return "IMAD";
      case Opcode::IMin: return "IMIN";
      case Opcode::IMax: return "IMAX";
      case Opcode::IAbs: return "IABS";
      case Opcode::And: return "AND";
      case Opcode::Or: return "OR";
      case Opcode::Xor: return "XOR";
      case Opcode::Not: return "NOT";
      case Opcode::Shl: return "SHL";
      case Opcode::Shr: return "SHR";
      case Opcode::Sra: return "SRA";
      case Opcode::IMulHi: return "IMULHI";
      case Opcode::IMulHiU: return "IMULHI.U";
      case Opcode::IDiv: return "IDIV";
      case Opcode::IDivU: return "IDIV.U";
      case Opcode::IRem: return "IREM";
      case Opcode::IRemU: return "IREM.U";
      case Opcode::ISetP: return "ISETP";
      case Opcode::SelP: return "SELP";
      case Opcode::PAnd: return "PAND";
      case Opcode::POr: return "POR";
      case Opcode::PNot: return "PNOT";
      case Opcode::FAdd: return "FADD";
      case Opcode::FMul: return "FMUL";
      case Opcode::FFma: return "FFMA";
      case Opcode::FMin: return "FMIN";
      case Opcode::FMax: return "FMAX";
      case Opcode::FSetP: return "FSETP";
      case Opcode::I2F: return "I2F";
      case Opcode::F2I: return "F2I";
      case Opcode::FRcp: return "FRCP";
      case Opcode::Ldg: return "LDG";
      case Opcode::Stg: return "STG";
      case Opcode::Lds: return "LDS";
      case Opcode::Sts: return "STS";
      case Opcode::Ldc: return "LDC";
      case Opcode::Bra: return "BRA";
      case Opcode::Bar: return "BAR";
      case Opcode::Exit: return "EXIT";
      default: WC_PANIC("unknown opcode " << static_cast<int>(op));
    }
}

ExecClass
execClass(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::S2R:
      case Opcode::Mov:
      case Opcode::MovImm:
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::IAbs:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Not:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sra:
      case Opcode::ISetP:
      case Opcode::SelP:
      case Opcode::PAnd:
      case Opcode::POr:
      case Opcode::PNot:
        return ExecClass::Alu;
      case Opcode::IMul:
      case Opcode::IMad:
      case Opcode::IMulHi:
      case Opcode::IMulHiU:
      case Opcode::IDiv:
      case Opcode::IDivU:
      case Opcode::IRem:
      case Opcode::IRemU:
        return ExecClass::Mul;
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FFma:
      case Opcode::FMin:
      case Opcode::FMax:
      case Opcode::FSetP:
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::FRcp:
        return ExecClass::Fpu;
      case Opcode::Ldg:
      case Opcode::Stg:
      case Opcode::Lds:
      case Opcode::Sts:
      case Opcode::Ldc:
        return ExecClass::Mem;
      case Opcode::Bra:
      case Opcode::Bar:
      case Opcode::Exit:
        return ExecClass::Ctrl;
      default:
        WC_PANIC("unknown opcode " << static_cast<int>(op));
    }
}

u32
execLatency(ExecClass cls)
{
    switch (cls) {
      case ExecClass::Alu: return 4;
      case ExecClass::Mul: return 6;
      case ExecClass::Fpu: return 6;
      case ExecClass::Ctrl: return 2;
      case ExecClass::Mem: return 0; // determined by the memory model
      default: WC_PANIC("unknown exec class");
    }
}

bool
writesGpr(Opcode op)
{
    switch (op) {
      case Opcode::S2R:
      case Opcode::Mov:
      case Opcode::MovImm:
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::IMad:
      case Opcode::IMin:
      case Opcode::IMax:
      case Opcode::IAbs:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Not:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Sra:
      case Opcode::IMulHi:
      case Opcode::IMulHiU:
      case Opcode::IDiv:
      case Opcode::IDivU:
      case Opcode::IRem:
      case Opcode::IRemU:
      case Opcode::SelP:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FFma:
      case Opcode::FMin:
      case Opcode::FMax:
      case Opcode::I2F:
      case Opcode::F2I:
      case Opcode::FRcp:
      case Opcode::Ldg:
      case Opcode::Lds:
      case Opcode::Ldc:
        return true;
      default:
        return false;
    }
}

bool
writesPred(Opcode op)
{
    switch (op) {
      case Opcode::ISetP:
      case Opcode::FSetP:
      case Opcode::PAnd:
      case Opcode::POr:
      case Opcode::PNot:
        return true;
      default:
        return false;
    }
}

const char *
cmpName(CmpOp op)
{
    switch (op) {
      case CmpOp::Lt: return "LT";
      case CmpOp::Le: return "LE";
      case CmpOp::Gt: return "GT";
      case CmpOp::Ge: return "GE";
      case CmpOp::Eq: return "EQ";
      case CmpOp::Ne: return "NE";
      default: WC_PANIC("unknown cmp op");
    }
}

const char *
sregName(SpecialReg sr)
{
    switch (sr) {
      case SpecialReg::TidX: return "SR_TID.X";
      case SpecialReg::CtaIdX: return "SR_CTAID.X";
      case SpecialReg::NTidX: return "SR_NTID.X";
      case SpecialReg::NCtaIdX: return "SR_NCTAID.X";
      case SpecialReg::LaneId: return "SR_LANEID";
      default: WC_PANIC("unknown special register");
    }
}

} // namespace warpcomp
