/**
 * @file
 * Opcode set for the SASS-like SIMT ISA executed by the warpcomp SM model.
 *
 * The set is deliberately close to the integer/FP/memory/control core of
 * NVIDIA SASS so that the register traffic of ported Rodinia/Parboil
 * kernels matches the originals: every value a kernel materializes flows
 * through a 32-bit architectural register exactly as it would on hardware.
 */

#ifndef WARPCOMP_ISA_OPCODE_HPP
#define WARPCOMP_ISA_OPCODE_HPP

#include "common/types.hpp"

namespace warpcomp {

/** Instruction opcodes. */
enum class Opcode : u8 {
    Nop,

    // Data movement
    S2R,        ///< read special register (tid, ctaid, ...)
    Mov,        ///< register-to-register move
    MovImm,     ///< 32-bit immediate load

    // Integer arithmetic / logic
    IAdd, ISub, IMul, IMad, IMin, IMax, IAbs,
    And, Or, Xor, Not, Shl, Shr, Sra,

    // Integer multiply-high / divide / remainder (RV32M binary
    // frontend surface; RISC-V semantics: x/0 = -1, x%0 = x,
    // INT_MIN/-1 = INT_MIN with remainder 0).
    IMulHi,     ///< signed 32x32 -> upper 32 bits
    IMulHiU,    ///< unsigned 32x32 -> upper 32 bits
    IDiv,       ///< signed quotient
    IDivU,      ///< unsigned quotient
    IRem,       ///< signed remainder
    IRemU,      ///< unsigned remainder

    // Predicates and select
    ISetP,      ///< integer compare, writes a predicate
    SelP,       ///< dst = srcPred ? src0 : src1
    PAnd,       ///< dstPred = srcPred & srcPred2
    POr,        ///< dstPred = srcPred | srcPred2
    PNot,       ///< dstPred = !srcPred

    // Floating point (IEEE-754 binary32 carried in 32-bit registers)
    FAdd, FMul, FFma, FMin, FMax, FSetP, I2F, F2I, FRcp,

    // Memory
    Ldg,        ///< global load,  dst   = [src0 + imm]
    Stg,        ///< global store, [src0 + imm] = src1
    Lds,        ///< shared load
    Sts,        ///< shared store
    Ldc,        ///< constant-bank load

    // Control
    Bra,        ///< (optionally guarded) branch; divergence point
    Bar,        ///< CTA-wide barrier
    Exit,       ///< thread exit

    NumOpcodes
};

/** Integer / FP comparison operators for ISetP / FSetP. */
enum class CmpOp : u8 { Lt, Le, Gt, Ge, Eq, Ne };

/** Special registers readable through S2R. */
enum class SpecialReg : u8 {
    TidX,       ///< thread index within the CTA
    CtaIdX,     ///< CTA (block) index within the grid
    NTidX,      ///< CTA size in threads
    NCtaIdX,    ///< grid size in CTAs
    LaneId      ///< lane index within the warp
};

/** Execution-resource class an opcode dispatches to. */
enum class ExecClass : u8 {
    Alu,        ///< simple integer / logic, 4-cycle latency
    Mul,        ///< integer multiply / mad, 6-cycle latency
    Fpu,        ///< floating point, 6-cycle latency
    Mem,        ///< memory pipeline, variable latency
    Ctrl        ///< branches / barriers / exit, 2-cycle latency
};

/** Mnemonic string for disassembly. */
const char *opcodeName(Opcode op);

/** Resource class the opcode executes on. */
ExecClass execClass(Opcode op);

/** Result latency in cycles for non-memory classes. */
u32 execLatency(ExecClass cls);

/** True when the opcode writes a general-purpose destination register. */
bool writesGpr(Opcode op);

/** True when the opcode writes a predicate register. */
bool writesPred(Opcode op);

/** Mnemonic for a comparison operator. */
const char *cmpName(CmpOp op);

/** Mnemonic for a special register. */
const char *sregName(SpecialReg sr);

} // namespace warpcomp

#endif // WARPCOMP_ISA_OPCODE_HPP
