/**
 * @file
 * Value-similarity characterization (Sec. 3): arithmetic distances
 * between successive thread registers of each written warp register,
 * binned into zero / 128 / 32K / random, attributed to divergent vs
 * non-divergent execution phases. Also the compression-ratio
 * accumulator behind Fig 8 / Fig 15.
 */

#ifndef WARPCOMP_ANALYSIS_SIMILARITY_HPP
#define WARPCOMP_ANALYSIS_SIMILARITY_HPP

#include "common/types.hpp"
#include "compress/bdi.hpp"

namespace warpcomp {

/** Fig 2 bins. */
enum class DistanceBin : u8 {
    Zero = 0,       ///< successive registers identical
    Small128 = 1,   ///< |distance| <= 128
    Mid32K = 2,     ///< |distance| <= 2^15
    Random = 3      ///< anything larger
};

inline constexpr u32 kNumDistanceBins = 4;

/** Execution phase index used throughout the stats. */
enum Phase : u32 { kNonDivergent = 0, kDivergent = 1 };

/** Classify one arithmetic distance. */
DistanceBin classifyDistance(i64 distance);

/** Accumulates Fig 2's per-write distance bins. */
class SimilarityBins
{
  public:
    /**
     * Record one register write: distances between successive written
     * lanes (values interpreted as signed 32-bit integers).
     *
     * @param value full 32-lane register content after the write
     * @param written lanes actually written
     * @param divergent attribution phase
     */
    void record(const WarpRegValue &value, LaneMask written,
                bool divergent);

    u64 count(Phase phase, DistanceBin bin) const;
    u64 total(Phase phase) const;
    /** Bin share within one phase; 0 when the phase saw no distances. */
    double fraction(Phase phase, DistanceBin bin) const;

    void merge(const SimilarityBins &other);

  private:
    u64 bins_[2][kNumDistanceBins] = {};
};

/** Accumulates compression ratios per phase (Fig 8 / Fig 15). */
class RatioAccum
{
  public:
    /** Record one write compressed to @p compressed_bytes. */
    void record(u32 compressed_bytes, bool divergent);

    /** originalBytes / compressedBytes for the phase (1.0 when empty). */
    double ratio(Phase phase) const;
    /** Ratio across both phases. */
    double overallRatio() const;
    u64 writes(Phase phase) const { return writes_[phase]; }

    void merge(const RatioAccum &other);

  private:
    u64 origBytes_[2] = {};
    u64 compBytes_[2] = {};
    u64 writes_[2] = {};
};

} // namespace warpcomp

#endif // WARPCOMP_ANALYSIS_SIMILARITY_HPP
