#include "analysis/similarity.hpp"

#include "common/bitops.hpp"
#include "common/log.hpp"

namespace warpcomp {

DistanceBin
classifyDistance(i64 distance)
{
    const i64 mag = distance < 0 ? -distance : distance;
    if (mag == 0)
        return DistanceBin::Zero;
    if (mag <= 128)
        return DistanceBin::Small128;
    if (mag <= (i64{1} << 15))
        return DistanceBin::Mid32K;
    return DistanceBin::Random;
}

void
SimilarityBins::record(const WarpRegValue &value, LaneMask written,
                       bool divergent)
{
    const u32 phase = divergent ? kDivergent : kNonDivergent;
    // Branchless bin index; exploits the enum's monotone thresholds
    // (Zero < Small128 < Mid32K < Random). This runs per register
    // write, so the per-pair cost matters.
    const auto bin_of = [](i64 d) -> u32 {
        const i64 mag = d < 0 ? -d : d;
        return static_cast<u32>(mag != 0) + static_cast<u32>(mag > 128) +
               static_cast<u32>(mag > (i64{1} << 15));
    };
    u64 *bins = bins_[phase];
    if (written == kFullMask) {
        // Full warp write — the overwhelmingly common case: all 31
        // successive pairs contribute, no per-lane mask test.
        for (u32 lane = 1; lane < kWarpSize; ++lane) {
            const i64 d = static_cast<i64>(static_cast<i32>(value[lane])) -
                          static_cast<i64>(static_cast<i32>(value[lane - 1]));
            ++bins[bin_of(d)];
        }
        return;
    }
    // Distances between successive *written* lanes: skipped (inactive)
    // lanes do not contribute pairs, mirroring the paper's "successive
    // thread registers written".
    i32 prev = 0;
    bool have_prev = false;
    for (u32 lane = 0; lane < kWarpSize; ++lane) {
        if (!laneActive(written, lane))
            continue;
        const i32 cur = static_cast<i32>(value[lane]);
        if (have_prev) {
            const i64 d = static_cast<i64>(cur) - static_cast<i64>(prev);
            ++bins[bin_of(d)];
        }
        prev = cur;
        have_prev = true;
    }
}

u64
SimilarityBins::count(Phase phase, DistanceBin bin) const
{
    return bins_[phase][static_cast<u32>(bin)];
}

u64
SimilarityBins::total(Phase phase) const
{
    u64 sum = 0;
    for (u32 b = 0; b < kNumDistanceBins; ++b)
        sum += bins_[phase][b];
    return sum;
}

double
SimilarityBins::fraction(Phase phase, DistanceBin bin) const
{
    const u64 t = total(phase);
    return t == 0 ? 0.0
                  : static_cast<double>(count(phase, bin)) /
                        static_cast<double>(t);
}

void
SimilarityBins::merge(const SimilarityBins &other)
{
    for (u32 p = 0; p < 2; ++p) {
        for (u32 b = 0; b < kNumDistanceBins; ++b)
            bins_[p][b] += other.bins_[p][b];
    }
}

void
RatioAccum::record(u32 compressed_bytes, bool divergent)
{
    WC_ASSERT(compressed_bytes > 0 && compressed_bytes <= kWarpRegBytes,
              "bad compressed size " << compressed_bytes);
    const u32 phase = divergent ? kDivergent : kNonDivergent;
    origBytes_[phase] += kWarpRegBytes;
    compBytes_[phase] += compressed_bytes;
    ++writes_[phase];
}

double
RatioAccum::ratio(Phase phase) const
{
    if (compBytes_[phase] == 0)
        return 1.0;
    return static_cast<double>(origBytes_[phase]) /
        static_cast<double>(compBytes_[phase]);
}

double
RatioAccum::overallRatio() const
{
    const u64 orig = origBytes_[0] + origBytes_[1];
    const u64 comp = compBytes_[0] + compBytes_[1];
    if (comp == 0)
        return 1.0;
    return static_cast<double>(orig) / static_cast<double>(comp);
}

void
RatioAccum::merge(const RatioAccum &other)
{
    for (u32 p = 0; p < 2; ++p) {
        origBytes_[p] += other.origBytes_[p];
        compBytes_[p] += other.compBytes_[p];
        writes_[p] += other.writes_[p];
    }
}

} // namespace warpcomp
