/**
 * @file
 * DSL twins of the checked-in RV32 example kernels.
 *
 * Each twin is hand-written against KernelBuilder to emit the exact
 * instruction stream the translator produces for the corresponding
 * hex image under examples/kernels/ — same opcodes, same dense register
 * numbers, same predicates, same branch/reconvergence structure — and
 * runs in the same canonical environment (env.hpp). The differential
 * test suite asserts disassembly equality and bit-identical figure
 * stats between the pairs; any drift in either frontend breaks it.
 */

#ifndef WARPCOMP_FRONTEND_TWINS_HPP
#define WARPCOMP_FRONTEND_TWINS_HPP

#include "workloads/workload.hpp"

namespace warpcomp {

/** out[i] = a[i] + b[i], guarded tail. Twin of vecadd.hex. */
WorkloadInstance makeVecaddTwin(u32 scale, u64 salt);

/** out[i] = alpha * a[i] + b[i] (integer). Twin of saxpy.hex. */
WorkloadInstance makeSaxpyTwin(u32 scale, u64 salt);

/** Per-CTA shared-memory tree sum of a[]. Twin of reduction.hex. */
WorkloadInstance makeReductionTwin(u32 scale, u64 salt);

} // namespace warpcomp

#endif // WARPCOMP_FRONTEND_TWINS_HPP
