#include "frontend/twins.hpp"

#include "frontend/env.hpp"

namespace warpcomp {

namespace {

constexpr u32 kElementwiseBlock = 128;
constexpr u32 kReductionBlock = 64;

Operand
imm(i32 v)
{
    return KernelBuilder::imm(v);
}

/** Shared prologue: params, thread indices, global id, bounds pred. */
struct Prologue
{
    Reg a, b, out, n, gid;
    Pred inBounds;
};

Prologue
elementwisePrologue(KernelBuilder &b)
{
    Prologue p;
    p.a = loadParam(b, 0);
    p.b = loadParam(b, 1);
    p.out = loadParam(b, 2);
    p.n = loadParam(b, 3);
    Reg tid = b.newReg(), cta = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(cta, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    p.gid = b.newReg();
    b.imul(p.gid, cta, ntid);
    b.iadd(p.gid, p.gid, tid);
    return p;
}

} // namespace

WorkloadInstance
makeVecaddTwin(u32 scale, u64 salt)
{
    KernelEnv env = makeKernelEnv(kElementwiseBlock, scale, salt);

    KernelBuilder b("vecadd");
    Prologue p = elementwisePrologue(b);
    p.inBounds = b.newPred();
    b.isetp(p.inBounds, CmpOp::Lt, p.gid, p.n);
    b.if_(p.inBounds, [&] {
        Reg off = b.newReg();
        b.shl(off, p.gid, imm(2));
        Reg x = b.newReg();
        b.iadd(x, p.a, off);
        b.ldg(x, x, 0);
        Reg y = b.newReg();
        b.iadd(y, p.b, off);
        b.ldg(y, y, 0);
        b.iadd(x, x, y);
        b.iadd(y, p.out, off);
        b.stg(y, x, 0);
    });
    return {"vecadd", b.build(), env.dims, std::move(env.gmem),
            std::move(env.cmem)};
}

WorkloadInstance
makeSaxpyTwin(u32 scale, u64 salt)
{
    KernelEnv env = makeKernelEnv(kElementwiseBlock, scale, salt);

    KernelBuilder b("saxpy");
    Reg a = loadParam(b, 0);
    Reg y0 = loadParam(b, 1);
    Reg out = loadParam(b, 2);
    Reg n = loadParam(b, 3);
    Reg alpha = loadParam(b, 4);
    Reg tid = b.newReg(), cta = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(cta, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imul(gid, cta, ntid);
    b.iadd(gid, gid, tid);
    Pred inBounds = b.newPred();
    b.isetp(inBounds, CmpOp::Lt, gid, n);
    b.if_(inBounds, [&] {
        Reg off = b.newReg();
        b.shl(off, gid, imm(2));
        Reg x = b.newReg();
        b.iadd(x, a, off);
        b.ldg(x, x, 0);
        b.imul(x, x, alpha);
        Reg y = b.newReg();
        b.iadd(y, y0, off);
        b.ldg(y, y, 0);
        b.iadd(x, x, y);
        b.iadd(y, out, off);
        b.stg(y, x, 0);
    });
    return {"saxpy", b.build(), env.dims, std::move(env.gmem),
            std::move(env.cmem)};
}

WorkloadInstance
makeReductionTwin(u32 scale, u64 salt)
{
    KernelEnv env = makeKernelEnv(kReductionBlock, scale, salt);

    KernelBuilder b("reduction", kReductionBlock * 4);
    Reg a = loadParam(b, 0);
    Reg out = loadParam(b, 2);
    Reg n = loadParam(b, 3);
    Reg tid = b.newReg(), cta = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(cta, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imul(gid, cta, ntid);
    b.iadd(gid, gid, tid);

    // x = gid < n ? a[gid] : 0
    Reg x = b.newReg();
    b.movImm(x, 0);
    Pred inBounds = b.newPred();
    b.isetp(inBounds, CmpOp::Lt, gid, n);
    b.if_(inBounds, [&] {
        b.shl(x, gid, imm(2));
        b.iadd(x, a, x);
        b.ldg(x, x, 0);
    });

    // smem[tid] = x; barrier; tree-sum with halving stride.
    Reg saddr = b.newReg();
    b.shl(saddr, tid, imm(2));
    b.sts(saddr, x, 0);
    b.bar();

    Reg stride = b.newReg();
    b.movImm(stride, static_cast<i32>(kReductionBlock / 2));
    Pred loopP = b.newPred();
    Reg t{}, own{};
    b.while_(
        [&] {
            b.isetp(loopP, CmpOp::Lt, imm(0), stride);
            return loopP;
        },
        [&] {
            Pred active = b.newPred();
            b.isetp(active, CmpOp::Lt, tid, stride);
            b.if_(active, [&] {
                t = b.newReg();
                b.iadd(t, tid, stride);
                b.shl(t, t, imm(2));
                b.lds(t, t, 0);
                own = b.newReg();
                b.lds(own, saddr, 0);
                b.iadd(own, own, t);
                b.sts(saddr, own, 0);
            });
            b.bar();
            b.sra(stride, stride, imm(1));
        });

    // Lane 0 writes the CTA's partial sum to out[ctaid].
    Pred isLeader = b.newPred();
    b.isetp(isLeader, CmpOp::Eq, tid, imm(0));
    b.if_(isLeader, [&] {
        b.lds(t, saddr, 0);
        b.shl(own, cta, imm(2));
        b.iadd(own, out, own);
        b.stg(own, t, 0);
    });
    return {"reduction", b.build(), env.dims, std::move(env.gmem),
            std::move(env.cmem)};
}

} // namespace warpcomp
