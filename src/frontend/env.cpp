#include "frontend/env.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/inputs.hpp"
#include "workloads/workload.hpp"

namespace warpcomp {

u32
kernelEnvElems(u32 scale)
{
    return 2048u * scale;
}

KernelEnv
makeKernelEnv(u32 blockDim, u32 scale, u64 salt)
{
    WC_ASSERT(blockDim >= 1 && blockDim <= 1024,
              "blockDim " << blockDim << " out of range");
    const u32 n = kernelEnvElems(scale);
    const u32 grid = (n + blockDim - 1) / blockDim;

    auto gmem = std::make_unique<GlobalMemory>(16ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0xF00Du, salt));

    const u64 a = gmem->alloc(4ull * n);
    const u64 b = gmem->alloc(4ull * n);
    // OUT is sized for either an elementwise result (n words) or a
    // per-CTA result (grid words); calloc backing keeps it zeroed.
    const u64 out = gmem->alloc(4ull * std::max(n, grid));

    fillRandomI32(*gmem, a, n, -64, 63, rng);
    fillRandomI32(*gmem, b, n, -64, 63, rng);

    pushAddr(*cmem, a);     // [0]
    pushAddr(*cmem, b);     // [4]
    pushAddr(*cmem, out);   // [8]
    cmem->push(n);          // [12]
    cmem->push(3);          // [16] alpha

    return {{blockDim, grid}, std::move(gmem), std::move(cmem)};
}

} // namespace warpcomp
