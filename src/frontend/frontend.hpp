/**
 * @file
 * Binary kernel frontend facade: load + translate a compiled RV32IM
 * kernel image and package it as a runnable workload.
 *
 * Entry points:
 *   - loadKernelFile(path, entry): image load -> translate, structured
 *     error on failure (loadKernelFileOrExit turns that into a clean
 *     one-line exit-1 diagnostic, matching the harness's strict
 *     argument handling).
 *   - workload-name spec `file:PATH[,entry=SYM]`: accepted by
 *     makeWorkload, so every bench binary and the parallel runner can
 *     mix binary kernels with the built-in suite. The harness's
 *     `--kernel=FILE[,entry=SYM]` flag is sugar for this spec.
 *
 * Binary kernels run in the canonical environment (env.hpp) and carry
 * provenance (frontend = "rv32", image SHA-256) into perf_json and
 * --stats-json records.
 */

#ifndef WARPCOMP_FRONTEND_FRONTEND_HPP
#define WARPCOMP_FRONTEND_FRONTEND_HPP

#include <optional>
#include <string>

#include "frontend/image.hpp"
#include "frontend/translate.hpp"
#include "workloads/workload.hpp"

namespace warpcomp {

/** A translated binary kernel plus its launch metadata + provenance. */
struct LoadedKernel
{
    Kernel kernel;
    u32 blockDim = 32;
    std::string imageSha;
    std::string path;
};

/** Load outcome: a kernel or a one-line diagnostic. */
struct KernelLoadResult
{
    std::optional<LoadedKernel> loaded;
    std::string error;

    bool ok() const { return loaded.has_value(); }
};

/** Load + translate @p path; @p entry is a symbol name ("" = word 0). */
KernelLoadResult loadKernelFile(const std::string &path,
                                const std::string &entry = "");

/** Same, but any failure is a fatal one-line diagnostic (exit 1). */
LoadedKernel loadKernelFileOrExit(const std::string &path,
                                  const std::string &entry = "");

/** True when @p name is a `file:PATH[,entry=SYM]` workload spec. */
bool isKernelFileSpec(const std::string &name);

/** Build the spec string for @p path / @p entry. */
std::string kernelFileSpec(const std::string &path,
                           const std::string &entry);

/** Instantiate a binary-kernel workload from a spec (fatal on error). */
WorkloadInstance makeKernelFileWorkload(const std::string &spec, u32 scale,
                                        u64 salt);

} // namespace warpcomp

#endif // WARPCOMP_FRONTEND_FRONTEND_HPP
