#include "frontend/rv32.hpp"

#include <sstream>

#include "common/log.hpp"

namespace warpcomp {

namespace {

// Base-opcode field values (bits [6:0]).
constexpr u32 kOpLui = 0x37;
constexpr u32 kOpAuipc = 0x17;
constexpr u32 kOpJal = 0x6F;
constexpr u32 kOpJalr = 0x67;
constexpr u32 kOpBranch = 0x63;
constexpr u32 kOpLoad = 0x03;
constexpr u32 kOpStore = 0x23;
constexpr u32 kOpImm = 0x13;
constexpr u32 kOpReg = 0x33;
constexpr u32 kOpFence = 0x0F;
constexpr u32 kOpSystem = 0x73;
constexpr u32 kOpCustom0 = 0x0B;    // LDS.W
constexpr u32 kOpCustom1 = 0x2B;    // STS.W

u8
fieldRd(u32 w)
{
    return static_cast<u8>((w >> 7) & 0x1F);
}

u8
fieldRs1(u32 w)
{
    return static_cast<u8>((w >> 15) & 0x1F);
}

u8
fieldRs2(u32 w)
{
    return static_cast<u8>((w >> 20) & 0x1F);
}

u32
fieldFunct3(u32 w)
{
    return (w >> 12) & 0x7;
}

u32
fieldFunct7(u32 w)
{
    return w >> 25;
}

i32
immI(u32 w)
{
    return static_cast<i32>(w) >> 20;
}

i32
immS(u32 w)
{
    return ((static_cast<i32>(w) >> 25) << 5) |
           static_cast<i32>((w >> 7) & 0x1F);
}

i32
immB(u32 w)
{
    const i32 sign = (static_cast<i32>(w) >> 31) << 12;
    const i32 b11 = static_cast<i32>((w >> 7) & 1) << 11;
    const i32 b10_5 = static_cast<i32>((w >> 25) & 0x3F) << 5;
    const i32 b4_1 = static_cast<i32>((w >> 8) & 0xF) << 1;
    return sign | b11 | b10_5 | b4_1;
}

i32
immU(u32 w)
{
    return static_cast<i32>(w & 0xFFFFF000u);
}

i32
immJ(u32 w)
{
    const i32 sign = (static_cast<i32>(w) >> 31) << 20;
    const i32 b19_12 = static_cast<i32>((w >> 12) & 0xFF) << 12;
    const i32 b11 = static_cast<i32>((w >> 20) & 1) << 11;
    const i32 b10_1 = static_cast<i32>((w >> 21) & 0x3FF) << 1;
    return sign | b19_12 | b11 | b10_1;
}

RvDecodeResult
ok(RvInst in, u32 raw)
{
    in.raw = raw;
    return {in, std::nullopt};
}

RvDecodeResult
fail(u32 raw, std::string reason)
{
    return {std::nullopt, RvDecodeError{raw, std::move(reason)}};
}

} // namespace

RvDecodeResult
decodeRv32(u32 w)
{
    const u32 opcode = w & 0x7F;
    const u32 f3 = fieldFunct3(w);
    const u32 f7 = fieldFunct7(w);
    RvInst in;
    in.rd = fieldRd(w);
    in.rs1 = fieldRs1(w);
    in.rs2 = fieldRs2(w);

    switch (opcode) {
      case kOpLui:
        in.op = RvOp::Lui;
        in.imm = immU(w);
        return ok(in, w);
      case kOpAuipc:
        in.op = RvOp::Auipc;
        in.imm = immU(w);
        return ok(in, w);
      case kOpJal:
        in.op = RvOp::Jal;
        in.imm = immJ(w);
        return ok(in, w);
      case kOpJalr:
        if (f3 != 0)
            return fail(w, "malformed JALR");
        in.op = RvOp::Jalr;
        in.imm = immI(w);
        return ok(in, w);
      case kOpBranch:
        switch (f3) {
          case 0b000: in.op = RvOp::Beq; break;
          case 0b001: in.op = RvOp::Bne; break;
          case 0b100: in.op = RvOp::Blt; break;
          case 0b101: in.op = RvOp::Bge; break;
          case 0b110: in.op = RvOp::Bltu; break;
          case 0b111: in.op = RvOp::Bgeu; break;
          default: return fail(w, "malformed branch funct3");
        }
        in.imm = immB(w);
        return ok(in, w);
      case kOpLoad:
        if (f3 != 0b010)
            return fail(w, "only 32-bit loads (LW) are supported");
        in.op = RvOp::Lw;
        in.imm = immI(w);
        return ok(in, w);
      case kOpStore:
        if (f3 != 0b010)
            return fail(w, "only 32-bit stores (SW) are supported");
        in.op = RvOp::Sw;
        in.imm = immS(w);
        return ok(in, w);
      case kOpImm:
        in.imm = immI(w);
        switch (f3) {
          case 0b000: in.op = RvOp::Addi; return ok(in, w);
          case 0b010: in.op = RvOp::Slti; return ok(in, w);
          case 0b011: in.op = RvOp::Sltiu; return ok(in, w);
          case 0b100: in.op = RvOp::Xori; return ok(in, w);
          case 0b110: in.op = RvOp::Ori; return ok(in, w);
          case 0b111: in.op = RvOp::Andi; return ok(in, w);
          case 0b001:
            if (f7 != 0)
                return fail(w, "malformed SLLI");
            in.op = RvOp::Slli;
            in.imm = static_cast<i32>(in.rs2);
            return ok(in, w);
          case 0b101:
            if (f7 == 0)
                in.op = RvOp::Srli;
            else if (f7 == 0b0100000)
                in.op = RvOp::Srai;
            else
                return fail(w, "malformed shift funct7");
            in.imm = static_cast<i32>(in.rs2);
            return ok(in, w);
          default:
            return fail(w, "malformed OP-IMM funct3");
        }
      case kOpReg:
        if (f7 == 0b0000001) {
            switch (f3) {
              case 0b000: in.op = RvOp::Mul; break;
              case 0b001: in.op = RvOp::Mulh; break;
              case 0b010: in.op = RvOp::Mulhsu; break;
              case 0b011: in.op = RvOp::Mulhu; break;
              case 0b100: in.op = RvOp::Div; break;
              case 0b101: in.op = RvOp::Divu; break;
              case 0b110: in.op = RvOp::Rem; break;
              case 0b111: in.op = RvOp::Remu; break;
              default: return fail(w, "malformed M-extension funct3");
            }
            return ok(in, w);
        }
        if (f7 != 0 && f7 != 0b0100000)
            return fail(w, "malformed OP funct7");
        switch (f3) {
          case 0b000: in.op = f7 == 0 ? RvOp::Add : RvOp::Sub; break;
          case 0b001: in.op = RvOp::Sll; break;
          case 0b010: in.op = RvOp::Slt; break;
          case 0b011: in.op = RvOp::Sltu; break;
          case 0b100: in.op = RvOp::Xor; break;
          case 0b101: in.op = f7 == 0 ? RvOp::Srl : RvOp::Sra; break;
          case 0b110: in.op = RvOp::Or; break;
          case 0b111: in.op = RvOp::And; break;
          default: return fail(w, "malformed OP funct3");
        }
        if (f7 == 0b0100000 && in.op != RvOp::Sub && in.op != RvOp::Sra)
            return fail(w, "malformed OP funct7");
        return ok(in, w);
      case kOpFence:
        if (f3 != 0)
            return fail(w, "only FENCE (CTA barrier) is supported");
        in.op = RvOp::Fence;
        return ok(in, w);
      case kOpSystem:
        if (f3 == 0) {
            const u32 funct12 = w >> 20;
            if (funct12 == 0 && in.rs1 == 0 && in.rd == 0) {
                in.op = RvOp::Ecall;
                return ok(in, w);
            }
            if (funct12 == 1)
                return fail(w, "EBREAK is not supported");
            return fail(w, "malformed SYSTEM instruction");
        }
        // csrrs rd, csr, x0 is the canonical `csrr` special-register
        // read; writes (rs1 != x0) and other CSR ops have no meaning
        // in the SIMT model.
        if (f3 == 0b010 && in.rs1 == 0) {
            in.op = RvOp::Csrr;
            in.csr = w >> 20;
            return ok(in, w);
        }
        return fail(w, "only CSRRS rd, csr, x0 (csrr) is supported");
      case kOpCustom0:
        if (f3 != 0b010)
            return fail(w, "unknown custom-0 instruction (LDS.W uses "
                           "funct3=2)");
        in.op = RvOp::LdsW;
        in.imm = immI(w);
        return ok(in, w);
      case kOpCustom1:
        if (f3 != 0b010)
            return fail(w, "unknown custom-1 instruction (STS.W uses "
                           "funct3=2)");
        in.op = RvOp::StsW;
        in.imm = immS(w);
        return ok(in, w);
      default:
        break;
    }
    std::ostringstream reason;
    reason << "unsupported RV32 opcode 0x" << std::hex << opcode
           << " (RV32IM subset + GPU conventions only)";
    return fail(w, reason.str());
}

const char *
rvOpName(RvOp op)
{
    switch (op) {
      case RvOp::Lui: return "lui";
      case RvOp::Auipc: return "auipc";
      case RvOp::Jal: return "jal";
      case RvOp::Jalr: return "jalr";
      case RvOp::Beq: return "beq";
      case RvOp::Bne: return "bne";
      case RvOp::Blt: return "blt";
      case RvOp::Bge: return "bge";
      case RvOp::Bltu: return "bltu";
      case RvOp::Bgeu: return "bgeu";
      case RvOp::Lw: return "lw";
      case RvOp::Sw: return "sw";
      case RvOp::Addi: return "addi";
      case RvOp::Slti: return "slti";
      case RvOp::Sltiu: return "sltiu";
      case RvOp::Xori: return "xori";
      case RvOp::Ori: return "ori";
      case RvOp::Andi: return "andi";
      case RvOp::Slli: return "slli";
      case RvOp::Srli: return "srli";
      case RvOp::Srai: return "srai";
      case RvOp::Add: return "add";
      case RvOp::Sub: return "sub";
      case RvOp::Sll: return "sll";
      case RvOp::Slt: return "slt";
      case RvOp::Sltu: return "sltu";
      case RvOp::Xor: return "xor";
      case RvOp::Srl: return "srl";
      case RvOp::Sra: return "sra";
      case RvOp::Or: return "or";
      case RvOp::And: return "and";
      case RvOp::Mul: return "mul";
      case RvOp::Mulh: return "mulh";
      case RvOp::Mulhsu: return "mulhsu";
      case RvOp::Mulhu: return "mulhu";
      case RvOp::Div: return "div";
      case RvOp::Divu: return "divu";
      case RvOp::Rem: return "rem";
      case RvOp::Remu: return "remu";
      case RvOp::Fence: return "fence";
      case RvOp::Ecall: return "ecall";
      case RvOp::Csrr: return "csrr";
      case RvOp::LdsW: return "lds.w";
      case RvOp::StsW: return "sts.w";
      default: WC_PANIC("unknown RvOp");
    }
}

std::string
rvDisasm(const RvInst &in)
{
    std::ostringstream os;
    os << rvOpName(in.op) << " x" << static_cast<int>(in.rd) << ", x"
       << static_cast<int>(in.rs1) << ", x" << static_cast<int>(in.rs2)
       << ", " << in.imm;
    if (in.op == RvOp::Csrr)
        os << " csr=0x" << std::hex << in.csr;
    return os.str();
}

} // namespace warpcomp
