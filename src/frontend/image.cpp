#include "frontend/image.hpp"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/sha256.hpp"

namespace warpcomp {

namespace {

ImageLoadResult
fail(const std::string &msg)
{
    return {std::nullopt, msg};
}

std::string
fileStem(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const size_t start = slash == std::string::npos ? 0 : slash + 1;
    const size_t dot = path.find_last_of('.');
    const size_t end = (dot == std::string::npos || dot <= start)
                           ? path.size()
                           : dot;
    return path.substr(start, end - start);
}

std::string
fileExtension(const std::string &path)
{
    const std::string stemless = path.substr(path.find_last_of('/') + 1);
    const size_t dot = stemless.find_last_of('.');
    return dot == std::string::npos ? "" : stemless.substr(dot);
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
parseU32(const std::string &tok, int base, u32 *out)
{
    if (tok.empty())
        return false;
    u64 v = 0;
    for (char c : tok) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        v = v * static_cast<u64>(base) + static_cast<u64>(digit);
        if (v > 0xFFFFFFFFull)
            return false;
    }
    *out = static_cast<u32>(v);
    return true;
}

bool
validSymbolName(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.')
            return false;
    }
    return true;
}

u16
readU16(const std::vector<u8> &b, size_t off)
{
    return static_cast<u16>(b[off] | (b[off + 1] << 8));
}

u32
readU32(const std::vector<u8> &b, size_t off)
{
    return static_cast<u32>(b[off]) | (static_cast<u32>(b[off + 1]) << 8) |
           (static_cast<u32>(b[off + 2]) << 16) |
           (static_cast<u32>(b[off + 3]) << 24);
}

// ELF constants (32-bit little-endian subset we accept).
constexpr u16 kEmRiscv = 243;
constexpr u32 kShtProgbits = 1;
constexpr u32 kShtSymtab = 2;
constexpr u32 kShfExecinstr = 0x4;
constexpr u16 kShnAbs = 0xFFF1;

} // namespace

ImageLoadResult
parseHexImage(const std::string &text, const std::string &path)
{
    KernelImage img;
    img.path = path;
    img.name = fileStem(path);

    std::istringstream in(text);
    std::string line;
    u32 lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;

        std::ostringstream where;
        where << path << ":" << lineNo << ": ";

        if (line[0] == '.') {
            std::istringstream dir(line);
            std::string key, value, extra;
            dir >> key >> value;
            if (dir >> extra)
                return fail(where.str() + "trailing junk after directive `" +
                            key + "`");
            if (key == ".name") {
                if (!validSymbolName(value))
                    return fail(where.str() + "bad kernel name `" + value +
                                "`");
                img.name = value;
            } else if (key == ".block") {
                u32 n = 0;
                if (!parseU32(value, 10, &n) || n == 0 || n > 1024)
                    return fail(where.str() + ".block expects 1..1024, got `" +
                                value + "`");
                img.blockDim = n;
            } else if (key == ".smem") {
                u32 n = 0;
                if (!parseU32(value, 10, &n))
                    return fail(where.str() + ".smem expects a byte count, "
                                "got `" + value + "`");
                img.smemBytes = n;
            } else {
                return fail(where.str() + "unknown directive `" + key + "`");
            }
            continue;
        }

        if (line[0] == '@') {
            const std::string sym = line.substr(1);
            if (!validSymbolName(sym))
                return fail(where.str() + "bad label `" + line + "`");
            if (img.symbols.count(sym))
                return fail(where.str() + "duplicate label `" + sym + "`");
            img.symbols[sym] = static_cast<u32>(img.words.size());
            continue;
        }

        u32 word = 0;
        if (line.size() > 8 || !parseU32(line, 16, &word))
            return fail(where.str() + "expected a 32-bit hex instruction "
                        "word, got `" + line + "`");
        img.words.push_back(word);
    }

    if (img.words.empty())
        return fail(path + ": image contains no instruction words");
    return {std::move(img), {}};
}

ImageLoadResult
parseBinImage(const std::vector<u8> &bytes, const std::string &path)
{
    if (bytes.empty())
        return fail(path + ": empty image");
    if (bytes.size() % 4 != 0)
        return fail(path + ": truncated image (" +
                    std::to_string(bytes.size()) +
                    " bytes is not a multiple of 4)");
    KernelImage img;
    img.path = path;
    img.name = fileStem(path);
    img.words.reserve(bytes.size() / 4);
    for (size_t off = 0; off < bytes.size(); off += 4)
        img.words.push_back(readU32(bytes, off));
    return {std::move(img), {}};
}

ImageLoadResult
parseElfImage(const std::vector<u8> &bytes, const std::string &path)
{
    if (bytes.size() < 52)
        return fail(path + ": truncated ELF header (" +
                    std::to_string(bytes.size()) + " bytes)");
    if (bytes[0] != 0x7F || bytes[1] != 'E' || bytes[2] != 'L' ||
        bytes[3] != 'F')
        return fail(path + ": not an ELF file (bad magic)");
    if (bytes[4] != 1)
        return fail(path + ": only 32-bit ELF is supported");
    if (bytes[5] != 1)
        return fail(path + ": only little-endian ELF is supported");
    const u16 machine = readU16(bytes, 18);
    if (machine != kEmRiscv)
        return fail(path + ": e_machine=" + std::to_string(machine) +
                    ", expected RISC-V (243)");

    const u32 shoff = readU32(bytes, 32);
    const u16 shentsize = readU16(bytes, 46);
    const u16 shnum = readU16(bytes, 48);
    if (shentsize < 40 || shnum == 0)
        return fail(path + ": missing section header table");
    if (static_cast<u64>(shoff) + static_cast<u64>(shentsize) * shnum >
        bytes.size())
        return fail(path + ": truncated section header table");

    KernelImage img;
    img.path = path;
    img.name = fileStem(path);

    // Pass 1: the first executable PROGBITS section is the text image.
    u32 textAddr = 0;
    i32 textShndx = -1;
    for (u16 i = 0; i < shnum; ++i) {
        const size_t sh = shoff + static_cast<size_t>(i) * shentsize;
        const u32 type = readU32(bytes, sh + 4);
        const u32 flags = readU32(bytes, sh + 8);
        if (type != kShtProgbits || !(flags & kShfExecinstr))
            continue;
        const u32 addr = readU32(bytes, sh + 12);
        const u32 off = readU32(bytes, sh + 16);
        const u32 size = readU32(bytes, sh + 20);
        if (static_cast<u64>(off) + size > bytes.size())
            return fail(path + ": text section extends past end of file");
        if (size == 0 || size % 4 != 0)
            return fail(path + ": text section size " +
                        std::to_string(size) + " is not a non-zero "
                        "multiple of 4");
        for (u32 o = 0; o < size; o += 4)
            img.words.push_back(readU32(bytes, off + o));
        textAddr = addr;
        textShndx = i;
        break;
    }
    if (textShndx < 0)
        return fail(path + ": no executable PROGBITS section found");

    // Pass 2: harvest symbols for entry lookup and launch metadata.
    for (u16 i = 0; i < shnum; ++i) {
        const size_t sh = shoff + static_cast<size_t>(i) * shentsize;
        if (readU32(bytes, sh + 4) != kShtSymtab)
            continue;
        const u32 off = readU32(bytes, sh + 16);
        const u32 size = readU32(bytes, sh + 20);
        const u32 link = readU32(bytes, sh + 24);
        const u32 entsize = readU32(bytes, sh + 36);
        if (entsize < 16 || link >= shnum)
            return fail(path + ": malformed symbol table");
        const size_t strSh = shoff + static_cast<size_t>(link) * shentsize;
        const u32 strOff = readU32(bytes, strSh + 16);
        const u32 strSize = readU32(bytes, strSh + 20);
        if (static_cast<u64>(off) + size > bytes.size() ||
            static_cast<u64>(strOff) + strSize > bytes.size())
            return fail(path + ": truncated symbol/string table");
        for (u32 so = 0; so + entsize <= size; so += entsize) {
            const u32 nameOff = readU32(bytes, off + so);
            const u32 value = readU32(bytes, off + so + 4);
            const u16 shndx = readU16(bytes, off + so + 14);
            if (nameOff >= strSize)
                continue;
            const char *cname =
                reinterpret_cast<const char *>(bytes.data()) + strOff +
                nameOff;
            const std::string name(
                cname, strnlen(cname, strSize - nameOff));
            if (name.empty())
                continue;
            if (shndx == kShnAbs) {
                if (name == "__block") {
                    if (value == 0 || value > 1024)
                        return fail(path + ": __block=" +
                                    std::to_string(value) +
                                    " out of range 1..1024");
                    img.blockDim = value;
                } else if (name == "__smem") {
                    img.smemBytes = value;
                }
                continue;
            }
            if (shndx != static_cast<u16>(textShndx))
                continue;
            if (value < textAddr || (value - textAddr) % 4 != 0)
                return fail(path + ": symbol `" + name +
                            "` at 0x" + std::to_string(value) +
                            " is misaligned or outside the text section");
            const u32 wordIdx = (value - textAddr) / 4;
            if (wordIdx >= img.words.size())
                return fail(path + ": symbol `" + name +
                            "` points past end of text");
            img.symbols[name] = wordIdx;
        }
        break;
    }

    return {std::move(img), {}};
}

ImageLoadResult
loadKernelImage(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(path + ": cannot open file");
    std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());

    const std::string ext = fileExtension(path);
    ImageLoadResult result;
    if (ext == ".hex") {
        result = parseHexImage(
            std::string(bytes.begin(), bytes.end()), path);
    } else if (ext == ".bin") {
        result = parseBinImage(bytes, path);
    } else {
        result = parseElfImage(bytes, path);
    }
    if (result.ok())
        result.image->sha256 = sha256Hex(std::span<const u8>(bytes));
    return result;
}

} // namespace warpcomp
