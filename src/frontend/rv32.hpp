/**
 * @file
 * RV32IM instruction-word decoder for the binary kernel frontend.
 *
 * Covers the integer base (R/I/S/B/U/J formats), the M extension, and
 * the warpcomp GPU conventions layered on the custom opcode space:
 *
 *   - CSR reads `csrr rd, 0xCC0..0xCC4` expose tid/ctaid/ntid/nctaid/
 *     laneid (the S2R special registers).
 *   - custom-0 (opcode 0x0B, funct3 0b010) is LDS.W — shared-memory
 *     word load, I-type.
 *   - custom-1 (opcode 0x2B, funct3 0b010) is STS.W — shared-memory
 *     word store, S-type.
 *   - FENCE is the CTA-wide barrier (BAR), ECALL is thread exit.
 *
 * Decoding is purely syntactic: every recognized word maps to one
 * RvInst; anything else is reported as a structured decode error with
 * the raw word, so the loader can name the offending pc.
 */

#ifndef WARPCOMP_FRONTEND_RV32_HPP
#define WARPCOMP_FRONTEND_RV32_HPP

#include <optional>
#include <string>

#include "common/types.hpp"

namespace warpcomp {

/** Decoded RV32 operations the translator understands. */
enum class RvOp : u8 {
    // U / J
    Lui, Auipc, Jal, Jalr,
    // B
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Loads / stores (32-bit only; byte/halfword are decode errors)
    Lw, Sw,
    // I-type ALU
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    // R-type ALU
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    // M extension
    Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
    // System / GPU conventions
    Fence,      ///< CTA barrier
    Ecall,      ///< thread exit
    Csrr,       ///< csrrs rd, csr, x0 — special-register read
    LdsW,       ///< custom-0: shared-memory word load
    StsW,       ///< custom-1: shared-memory word store
};

/** One decoded instruction. Fields unused by the format are zero. */
struct RvInst
{
    RvOp op = RvOp::Addi;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    i32 imm = 0;    ///< sign-extended immediate (U-type: already shifted)
    u32 csr = 0;    ///< CSR number for Csrr
    u32 raw = 0;    ///< original instruction word
};

/** Decode failure: which word and why. */
struct RvDecodeError
{
    u32 raw = 0;
    std::string reason;
};

/** Result of decoding one word: an instruction or an error. */
struct RvDecodeResult
{
    std::optional<RvInst> inst;
    std::optional<RvDecodeError> error;

    bool ok() const { return inst.has_value(); }
};

/** Decode one 32-bit little-endian instruction word. */
RvDecodeResult decodeRv32(u32 word);

/** Mnemonic for a decoded operation. */
const char *rvOpName(RvOp op);

/** One-line disassembly of a decoded instruction (debugging aid). */
std::string rvDisasm(const RvInst &inst);

} // namespace warpcomp

#endif // WARPCOMP_FRONTEND_RV32_HPP
