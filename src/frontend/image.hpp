/**
 * @file
 * Kernel image loader: turns a file on disk into a flat vector of
 * 32-bit RV32 instruction words plus launch metadata.
 *
 * Three container formats, selected by file extension:
 *
 *   - `.hex`  — line-oriented text. `#` starts a comment, blank lines
 *     are skipped. Directives: `.name <ident>`, `.block <n>` (threads
 *     per CTA), `.smem <bytes>`. A line `@symbol` defines a label at
 *     the next word (usable as `entry=symbol`). Any other line is one
 *     32-bit instruction word in hex. This is the checked-in example
 *     format: it keeps CI free of a cross-compiler while staying
 *     diffable.
 *   - `.bin`  — raw little-endian instruction words, no metadata.
 *   - anything else — minimal 32-bit little-endian RISC-V ELF
 *     (ET_REL/ET_EXEC, e_machine=243). The first SHF_EXECINSTR
 *     PROGBITS section is the text image; SHT_SYMTAB symbols inside
 *     it become entry labels. Absolute symbols `__block` / `__smem`
 *     carry launch metadata in st_value.
 *
 * All failures are structured (message naming file/line/offset), never
 * exceptions: the harness turns them into clean exit-1 diagnostics.
 */

#ifndef WARPCOMP_FRONTEND_IMAGE_HPP
#define WARPCOMP_FRONTEND_IMAGE_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace warpcomp {

/** A loaded kernel image: words + metadata, pre-translation. */
struct KernelImage
{
    std::string name;                   ///< kernel name (.name / file stem)
    std::string path;                   ///< source file path
    std::string sha256;                 ///< SHA-256 of the raw file bytes
    u32 blockDim = 32;                  ///< threads per CTA (.block)
    u32 smemBytes = 0;                  ///< shared memory bytes (.smem)
    std::vector<u32> words;             ///< instruction words
    std::map<std::string, u32> symbols; ///< label -> word index
};

/** Image load outcome: an image or a diagnostic. */
struct ImageLoadResult
{
    std::optional<KernelImage> image;
    std::string error;

    bool ok() const { return image.has_value(); }
};

/** Load a kernel image from @p path, dispatching on extension. */
ImageLoadResult loadKernelImage(const std::string &path);

/** Parse hex-format text (exposed for tests; @p path names diagnostics). */
ImageLoadResult parseHexImage(const std::string &text,
                              const std::string &path);

/** Parse an in-memory blob as raw .bin / ELF (exposed for tests). */
ImageLoadResult parseBinImage(const std::vector<u8> &bytes,
                              const std::string &path);
ImageLoadResult parseElfImage(const std::vector<u8> &bytes,
                              const std::string &path);

} // namespace warpcomp

#endif // WARPCOMP_FRONTEND_IMAGE_HPP
