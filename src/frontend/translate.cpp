#include "frontend/translate.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <vector>

#include "frontend/rv32.hpp"

namespace warpcomp {

namespace {

/** Which encoding fields an operation actually uses. */
struct RvUse
{
    bool rs1 = false;
    bool rs2 = false;
    bool rd = false;
};

RvUse
usesOf(RvOp op)
{
    switch (op) {
      case RvOp::Lui:
      case RvOp::Auipc:
      case RvOp::Csrr:
        return {false, false, true};
      case RvOp::Jal:
        return {false, false, true};
      case RvOp::Jalr:
        return {true, false, true};
      case RvOp::Beq:
      case RvOp::Bne:
      case RvOp::Blt:
      case RvOp::Bge:
      case RvOp::Bltu:
      case RvOp::Bgeu:
        return {true, true, false};
      case RvOp::Lw:
      case RvOp::LdsW:
        return {true, false, true};
      case RvOp::Sw:
      case RvOp::StsW:
        return {true, true, false};
      case RvOp::Addi:
      case RvOp::Slti:
      case RvOp::Sltiu:
      case RvOp::Xori:
      case RvOp::Ori:
      case RvOp::Andi:
      case RvOp::Slli:
      case RvOp::Srli:
      case RvOp::Srai:
        return {true, false, true};
      case RvOp::Fence:
      case RvOp::Ecall:
        return {false, false, false};
      default:
        // R-type ALU and the full M extension.
        return {true, true, true};
    }
}

bool
isCondBranch(RvOp op)
{
    return op == RvOp::Beq || op == RvOp::Bne || op == RvOp::Blt ||
           op == RvOp::Bge;
}

/** Writes rd but has no side effect: a write to x0 is a no-op. Control
 *  flow is excluded — `jal x0, L` discards the link but still jumps. */
bool
skippableWhenRdZero(RvOp op)
{
    return usesOf(op).rd && op != RvOp::Jal && op != RvOp::Jalr;
}

/** Inverted comparison: the branch is TAKEN when CC holds, the lowered
 *  `@!p BRA` is taken when p is false, so p must test !CC. */
CmpOp
invertedCmp(RvOp op)
{
    switch (op) {
      case RvOp::Beq: return CmpOp::Ne;
      case RvOp::Bne: return CmpOp::Eq;
      case RvOp::Blt: return CmpOp::Ge;
      case RvOp::Bge: return CmpOp::Lt;
      default: WC_PANIC("not a lowerable branch");
    }
}

struct SregMap
{
    u32 csr;
    SpecialReg sreg;
};

constexpr SregMap kSregMap[] = {
    {0xCC0, SpecialReg::TidX},    {0xCC1, SpecialReg::CtaIdX},
    {0xCC2, SpecialReg::NTidX},   {0xCC3, SpecialReg::NCtaIdX},
    {0xCC4, SpecialReg::LaneId},
};

class Translator
{
  public:
    Translator(const KernelImage &image, u32 entry,
               const TranslateOptions &opt)
        : image_(image), entry_(entry), opt_(opt)
    {
    }

    TranslateResult run();

  private:
    bool fail(u32 pc, const std::string &msg);
    bool decodeAll();
    bool checkSupport();
    void computeIpdom();
    bool mapRegisters();
    void layout();
    bool emitAll();

    Operand srcOf(u32 pc, u8 xreg) const;
    u8 denseOf(u8 xreg) const;

    const KernelImage &image_;
    u32 entry_;
    TranslateOptions opt_;

    u32 n_ = 0;                      ///< RV instruction count
    std::vector<RvInst> prog_;
    std::vector<bool> skipped_;      ///< rd == x0 no-ops
    std::vector<i64> branchTo_;      ///< RV-index branch target, or -1
    std::vector<u32> ipdom_;         ///< RV-index ipdom (n_ = virtual exit)
    std::vector<u8> denseReg_;       ///< x-reg -> dense index (or kNoReg)
    std::vector<u8> predOf_;         ///< pc -> predicate number (or kNoPred)
    std::vector<u32> startIndex_;    ///< RV pc -> first translated index
    u32 regCount_ = 0;
    u32 predCount_ = 0;
    u32 emitted_ = 0;                ///< total translated instructions
    std::vector<Instruction> out_;
    std::string error_;
};

bool
Translator::fail(u32 pc, const std::string &msg)
{
    std::ostringstream os;
    os << image_.path << ": pc " << pc;
    if (pc < n_) {
        os << " (word 0x" << std::hex << prog_[pc].raw << std::dec << ", `"
           << rvDisasm(prog_[pc]) << "`)";
    }
    os << ": " << msg;
    error_ = os.str();
    return false;
}

bool
Translator::decodeAll()
{
    for (u32 i = 0; i < n_; ++i) {
        const RvDecodeResult r = decodeRv32(image_.words[entry_ + i]);
        if (!r.ok()) {
            std::ostringstream os;
            os << image_.path << ": pc " << i << " (word 0x" << std::hex
               << r.error->raw << std::dec << "): " << r.error->reason;
            error_ = os.str();
            return false;
        }
        prog_[i] = *r.inst;
    }
    return true;
}

bool
Translator::checkSupport()
{
    for (u32 i = 0; i < n_; ++i) {
        const RvInst &in = prog_[i];
        switch (in.op) {
          case RvOp::Auipc:
            return fail(i, "AUIPC (pc-relative addressing) is not "
                           "supported; kernels have no data in the text "
                           "image");
          case RvOp::Jalr:
            return fail(i, "JALR (indirect jumps / returns) is not "
                           "supported; kernels are single leaf functions");
          case RvOp::Bltu:
          case RvOp::Bgeu:
          case RvOp::Sltu:
          case RvOp::Sltiu:
            return fail(i, "unsigned comparisons have no warpcomp CmpOp; "
                           "use the signed forms");
          case RvOp::Mulhsu:
            return fail(i, "MULHSU has no warpcomp equivalent");
          case RvOp::Jal:
            if (in.rd != 0)
                return fail(i, "JAL with a link register (function call) "
                               "is not supported");
            break;
          case RvOp::Csrr: {
            bool known = false;
            for (const SregMap &m : kSregMap)
                known = known || m.csr == in.csr;
            if (!known)
                return fail(i, "unknown CSR (expected 0xCC0..0xCC4 "
                               "tid/ctaid/ntid/nctaid/laneid)");
            break;
          }
          case RvOp::Sw:
            if (in.rs1 == 0)
                return fail(i, "store with base x0 targets the read-only "
                               "constant bank");
            break;
          case RvOp::LdsW:
          case RvOp::StsW:
            if (in.rs1 == 0)
                return fail(i, "shared-memory access needs a register "
                               "base (x0 given)");
            break;
          default:
            break;
        }

        if (isCondBranch(in.op) || in.op == RvOp::Jal) {
            if (in.imm % 4 != 0)
                return fail(i, "misaligned branch offset");
            const i64 t = static_cast<i64>(i) + in.imm / 4;
            if (t < 0 || t >= static_cast<i64>(n_))
                return fail(i, "branch target out of range");
            branchTo_[i] = t;
        }
    }
    return true;
}

void
Translator::computeIpdom()
{
    // Postdominator dataflow over RV instructions plus a virtual exit
    // node E = n_. Sets are bit vectors over the n_ + 1 nodes.
    const u32 numNodes = n_ + 1;
    const u32 wordsPer = (numNodes + 63) / 64;
    std::vector<u64> pdom(static_cast<size_t>(numNodes) * wordsPer,
                          ~0ull);
    auto setOf = [&](u32 node) { return &pdom[node * wordsPer]; };

    // E postdominates only itself.
    {
        u64 *e = setOf(n_);
        for (u32 w = 0; w < wordsPer; ++w)
            e[w] = 0;
        e[n_ / 64] = 1ull << (n_ % 64);
    }

    auto successors = [&](u32 i, u32 succ[2]) -> u32 {
        const RvInst &in = prog_[i];
        if (in.op == RvOp::Ecall) {
            succ[0] = n_;
            return 1;
        }
        if (in.op == RvOp::Jal) {
            succ[0] = static_cast<u32>(branchTo_[i]);
            return 1;
        }
        const u32 next = i + 1 < n_ ? i + 1 : n_;
        if (isCondBranch(in.op)) {
            succ[0] = next;
            succ[1] = static_cast<u32>(branchTo_[i]);
            return 2;
        }
        succ[0] = next;
        return 1;
    };

    std::vector<u64> meet(wordsPer);
    bool changed = true;
    while (changed) {
        changed = false;
        for (i64 i = static_cast<i64>(n_) - 1; i >= 0; --i) {
            u32 succ[2];
            const u32 ns = successors(static_cast<u32>(i), succ);
            for (u32 w = 0; w < wordsPer; ++w)
                meet[w] = ~0ull;
            for (u32 s = 0; s < ns; ++s) {
                const u64 *sp = setOf(succ[s]);
                for (u32 w = 0; w < wordsPer; ++w)
                    meet[w] &= sp[w];
            }
            meet[i / 64] |= 1ull << (i % 64);
            u64 *self = setOf(static_cast<u32>(i));
            for (u32 w = 0; w < wordsPer; ++w) {
                if (self[w] != meet[w]) {
                    self[w] = meet[w];
                    changed = true;
                }
            }
        }
    }

    // The immediate postdominator is the strict postdominator with the
    // largest pdom set (postdominators of a node form a chain).
    ipdom_.assign(n_, n_);
    for (u32 i = 0; i < n_; ++i) {
        const u64 *self = setOf(i);
        u32 best = n_;
        u32 bestSize = 0;
        for (u32 d = 0; d < numNodes; ++d) {
            if (d == i || !(self[d / 64] & (1ull << (d % 64))))
                continue;
            u32 size = 0;
            const u64 *dp = setOf(d);
            for (u32 w = 0; w < wordsPer; ++w)
                size += static_cast<u32>(std::popcount(dp[w]));
            if (size > bestSize) {
                bestSize = size;
                best = d;
            }
        }
        ipdom_[i] = best;
    }
}

bool
Translator::mapRegisters()
{
    denseReg_.assign(32, kNoReg);
    auto map = [&](u32 pc, u8 x) -> bool {
        if (x == 0 || denseReg_[x] != kNoReg)
            return true;
        if (regCount_ >= opt_.maxRegs)
            return fail(pc, "register x" + std::to_string(x) +
                            " exceeds the " +
                            std::to_string(opt_.maxRegs) +
                            "-register budget");
        denseReg_[x] = static_cast<u8>(regCount_++);
        return true;
    };
    for (u32 i = 0; i < n_; ++i) {
        if (skipped_[i])
            continue;
        const RvUse u = usesOf(prog_[i].op);
        if (u.rs1 && !map(i, prog_[i].rs1))
            return false;
        if (u.rs2 && !map(i, prog_[i].rs2))
            return false;
        if (u.rd && !map(i, prog_[i].rd))
            return false;
    }

    // Predicates: one per compare site in program order, reused
    // round-robin. Each is written by an ISetP and consumed by the
    // immediately-following instruction, so reuse is always safe.
    predOf_.assign(n_, kNoPred);
    for (u32 i = 0; i < n_; ++i) {
        if (skipped_[i])
            continue;
        const RvOp op = prog_[i].op;
        if (isCondBranch(op) || op == RvOp::Slt || op == RvOp::Slti)
            predOf_[i] = static_cast<u8>(predCount_++ % opt_.maxPreds);
    }
    return true;
}

void
Translator::layout()
{
    startIndex_.assign(n_ + 1, 0);
    u32 at = 0;
    for (u32 i = 0; i < n_; ++i) {
        startIndex_[i] = at;
        if (skipped_[i])
            continue;
        const RvOp op = prog_[i].op;
        const bool two = isCondBranch(op) || op == RvOp::Slt ||
                         op == RvOp::Slti;
        at += two ? 2 : 1;
    }
    startIndex_[n_] = at;
    emitted_ = at;
}

u8
Translator::denseOf(u8 xreg) const
{
    WC_ASSERT(xreg != 0 && denseReg_[xreg] != kNoReg,
              "unmapped register x" << static_cast<int>(xreg));
    return denseReg_[xreg];
}

Operand
Translator::srcOf(u32 pc, u8 xreg) const
{
    (void)pc;
    if (xreg == 0)
        return Operand::fromImm(0);
    return Operand::fromReg(denseOf(xreg));
}

bool
Translator::emitAll()
{
    out_.clear();
    out_.reserve(emitted_ + 1);

    // Reconvergence fallback when the ipdom is the virtual exit: the
    // final Exit instruction (divergent paths that both exit).
    const bool endsWithEcall = prog_[n_ - 1].op == RvOp::Ecall;
    const u32 exitIdx = endsWithEcall ? startIndex_[n_ - 1] : emitted_;

    for (u32 i = 0; i < n_; ++i) {
        if (skipped_[i])
            continue;
        const RvInst &in = prog_[i];
        Instruction e;

        auto alu2 = [&](Opcode op, Operand a, Operand b) {
            e.op = op;
            e.dst = denseOf(in.rd);
            e.src[0] = a;
            e.src[1] = b;
        };
        auto alu1 = [&](Opcode op, Operand a) {
            e.op = op;
            e.dst = denseOf(in.rd);
            e.src[0] = a;
        };
        const Operand imm = Operand::fromImm(in.imm);

        switch (in.op) {
          case RvOp::Lui:
            e.op = Opcode::MovImm;
            e.dst = denseOf(in.rd);
            e.src[0] = imm;
            break;
          case RvOp::Addi:
            if (in.rs1 == 0) {
                e.op = Opcode::MovImm;     // li rd, imm
                e.dst = denseOf(in.rd);
                e.src[0] = imm;
            } else if (in.imm == 0) {
                alu1(Opcode::Mov, srcOf(i, in.rs1));    // mv rd, rs
            } else {
                alu2(Opcode::IAdd, srcOf(i, in.rs1), imm);
            }
            break;
          case RvOp::Xori:
            if (in.imm == -1)
                alu1(Opcode::Not, srcOf(i, in.rs1));    // not rd, rs
            else
                alu2(Opcode::Xor, srcOf(i, in.rs1), imm);
            break;
          case RvOp::Ori:
            alu2(Opcode::Or, srcOf(i, in.rs1), imm);
            break;
          case RvOp::Andi:
            alu2(Opcode::And, srcOf(i, in.rs1), imm);
            break;
          case RvOp::Slli:
            alu2(Opcode::Shl, srcOf(i, in.rs1), imm);
            break;
          case RvOp::Srli:
            alu2(Opcode::Shr, srcOf(i, in.rs1), imm);
            break;
          case RvOp::Srai:
            alu2(Opcode::Sra, srcOf(i, in.rs1), imm);
            break;
          case RvOp::Add:
            if (in.rs1 == 0)
                alu1(Opcode::Mov, srcOf(i, in.rs2));    // mv rd, rs2
            else if (in.rs2 == 0)
                alu1(Opcode::Mov, srcOf(i, in.rs1));
            else
                alu2(Opcode::IAdd, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Sub:
            alu2(Opcode::ISub, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Sll:
            alu2(Opcode::Shl, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Xor:
            alu2(Opcode::Xor, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Srl:
            alu2(Opcode::Shr, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Sra:
            alu2(Opcode::Sra, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Or:
            alu2(Opcode::Or, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::And:
            alu2(Opcode::And, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Mul:
            alu2(Opcode::IMul, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Mulh:
            alu2(Opcode::IMulHi, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Mulhu:
            alu2(Opcode::IMulHiU, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Div:
            alu2(Opcode::IDiv, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Divu:
            alu2(Opcode::IDivU, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Rem:
            alu2(Opcode::IRem, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Remu:
            alu2(Opcode::IRemU, srcOf(i, in.rs1), srcOf(i, in.rs2));
            break;
          case RvOp::Slt:
          case RvOp::Slti: {
            // ISetP.LT p, rs1, b ; SELP rd, p, 1, 0
            Instruction cmp;
            cmp.op = Opcode::ISetP;
            cmp.dstPred = predOf_[i];
            cmp.cmp = CmpOp::Lt;
            cmp.src[0] = srcOf(i, in.rs1);
            cmp.src[1] = in.op == RvOp::Slt ? srcOf(i, in.rs2) : imm;
            out_.push_back(cmp);
            e.op = Opcode::SelP;
            e.dst = denseOf(in.rd);
            e.srcPred = predOf_[i];
            e.src[0] = Operand::fromImm(1);
            e.src[1] = Operand::fromImm(0);
            break;
          }
          case RvOp::Csrr: {
            e.op = Opcode::S2R;
            e.dst = denseOf(in.rd);
            for (const SregMap &m : kSregMap) {
                if (m.csr == in.csr)
                    e.sreg = m.sreg;
            }
            break;
          }
          case RvOp::Lw:
            if (in.rs1 == 0) {
                e.op = Opcode::Ldc;        // parameter load
                e.dst = denseOf(in.rd);
                e.src[0] = Operand::fromImm(0);
                e.memOffset = in.imm;
            } else {
                e.op = Opcode::Ldg;
                e.dst = denseOf(in.rd);
                e.src[0] = srcOf(i, in.rs1);
                e.memOffset = in.imm;
            }
            break;
          case RvOp::Sw:
            e.op = Opcode::Stg;
            e.src[0] = srcOf(i, in.rs1);
            e.src[1] = srcOf(i, in.rs2);
            e.memOffset = in.imm;
            break;
          case RvOp::LdsW:
            e.op = Opcode::Lds;
            e.dst = denseOf(in.rd);
            e.src[0] = srcOf(i, in.rs1);
            e.memOffset = in.imm;
            break;
          case RvOp::StsW:
            e.op = Opcode::Sts;
            e.src[0] = srcOf(i, in.rs1);
            e.src[1] = srcOf(i, in.rs2);
            e.memOffset = in.imm;
            break;
          case RvOp::Fence:
            e.op = Opcode::Bar;
            break;
          case RvOp::Ecall:
            e.op = Opcode::Exit;
            break;
          case RvOp::Jal: {
            e.op = Opcode::Bra;
            const u32 t = startIndex_[static_cast<u32>(branchTo_[i])];
            e.target = t;
            e.reconv = t;    // matches builder back edges / joins
            break;
          }
          case RvOp::Beq:
          case RvOp::Bne:
          case RvOp::Blt:
          case RvOp::Bge: {
            Instruction cmp;
            cmp.op = Opcode::ISetP;
            cmp.dstPred = predOf_[i];
            cmp.cmp = invertedCmp(in.op);
            cmp.src[0] = srcOf(i, in.rs1);
            cmp.src[1] = srcOf(i, in.rs2);
            out_.push_back(cmp);
            e.op = Opcode::Bra;
            e.guardPred = predOf_[i];
            e.guardNegate = true;
            e.target = startIndex_[static_cast<u32>(branchTo_[i])];
            e.reconv = ipdom_[i] == n_ ? exitIdx
                                       : startIndex_[ipdom_[i]];
            break;
          }
          default:
            return fail(i, "internal: unlowerable operation survived "
                           "support check");
        }
        out_.push_back(e);
    }

    if (out_.empty() || !out_.back().isExit()) {
        Instruction exit;
        exit.op = Opcode::Exit;
        out_.push_back(exit);
    }
    return true;
}

TranslateResult
Translator::run()
{
    if (image_.words.empty()) {
        error_ = image_.path + ": image contains no instruction words";
        return {std::nullopt, error_};
    }
    if (entry_ >= image_.words.size()) {
        error_ = image_.path + ": entry word index " +
                 std::to_string(entry_) + " is past the end of the image (" +
                 std::to_string(image_.words.size()) + " words)";
        return {std::nullopt, error_};
    }
    n_ = static_cast<u32>(image_.words.size()) - entry_;
    prog_.resize(n_);
    branchTo_.assign(n_, -1);

    if (!decodeAll())
        return {std::nullopt, error_};

    // A write to x0 is architecturally a no-op; drop such instructions
    // before register mapping so they cost nothing.
    skipped_.assign(n_, false);
    for (u32 i = 0; i < n_; ++i)
        skipped_[i] = skippableWhenRdZero(prog_[i].op) && prog_[i].rd == 0;

    if (!checkSupport())
        return {std::nullopt, error_};
    computeIpdom();
    if (!mapRegisters())
        return {std::nullopt, error_};
    layout();
    if (!emitAll())
        return {std::nullopt, error_};

    Kernel k(image_.name, regCount_ == 0 ? 1 : regCount_,
             predCount_ == 0 ? 1 : std::min(predCount_, opt_.maxPreds),
             image_.smemBytes);
    for (const Instruction &in : out_)
        k.append(in);
    k.validate();
    return {std::move(k), {}};
}

} // namespace

TranslateResult
translateImage(const KernelImage &image, u32 entry,
               const TranslateOptions &opt)
{
    Translator t(image, entry, opt);
    return t.run();
}

} // namespace warpcomp
