/**
 * @file
 * Canonical execution environment for binary (and twin) kernels.
 *
 * A binary image carries code only — no input buffers — so every
 * kernel loaded through `--kernel` runs against one fixed, documented
 * environment: buffers A and B of n = 2048*scale random words in
 * [-64, 63], a zeroed OUT buffer, and a five-parameter constant bank.
 * The DSL twins in twins.cpp use the same environment by construction,
 * which is what makes the differential suite meaningful: identical
 * code + identical inputs => identical figure stats.
 *
 * Parameter layout (constant bank, one 32-bit word each):
 *   [0]  &A        [4]  &B        [8]  &OUT
 *   [12] n         [16] alpha (= 3)
 */

#ifndef WARPCOMP_FRONTEND_ENV_HPP
#define WARPCOMP_FRONTEND_ENV_HPP

#include <memory>

#include "mem/memory.hpp"
#include "sim/functional.hpp"

namespace warpcomp {

/** Memory image + launch shape shared by binary kernels and twins. */
struct KernelEnv
{
    LaunchDims dims;
    std::unique_ptr<GlobalMemory> gmem;
    std::unique_ptr<ConstantMemory> cmem;
};

/** Elements processed at @p scale (2048 * scale). */
u32 kernelEnvElems(u32 scale);

/** Build the canonical environment for a @p blockDim-thread kernel. */
KernelEnv makeKernelEnv(u32 blockDim, u32 scale, u64 salt);

} // namespace warpcomp

#endif // WARPCOMP_FRONTEND_ENV_HPP
