/**
 * @file
 * RV32IM -> warpcomp IR translator.
 *
 * Pipeline: decode every word from the entry point, build the
 * RV-instruction CFG, compute immediate postdominators for SIMT
 * reconvergence, assign dense GPR/predicate numbers, then lower each
 * instruction. The lowering intentionally mirrors what KernelBuilder's
 * structured constructs emit (see DESIGN.md "Binary kernel frontend"),
 * so a binary kernel and its hand-written DSL twin disassemble — and
 * therefore simulate — identically:
 *
 *   - `bCC rs1, rs2, L`  ->  `ISetP.!CC p; @!p BRA L` with
 *     reconv = ipdom, matching `if_` / `while_` exit branches.
 *   - `jal x0, L`        ->  unguarded `BRA L` with reconv = L,
 *     matching `while_` back edges and `ifElse_` joins.
 *   - `lw rd, off(x0)`   ->  LDC (constant-bank parameter load),
 *     matching `loadParam`.
 *   - `addi rd, x0, imm` ->  MOVIMM; `mv` spellings -> MOV.
 *   - GPR numbers are assigned densely by first appearance in program
 *     order (rs1, rs2, then rd per instruction; x0 is the immediate 0);
 *     predicates by conditional-branch order, reused round-robin.
 *
 * Every rejection is a structured error naming the word index (pc) of
 * the offending instruction.
 */

#ifndef WARPCOMP_FRONTEND_TRANSLATE_HPP
#define WARPCOMP_FRONTEND_TRANSLATE_HPP

#include <optional>
#include <string>

#include "frontend/image.hpp"
#include "isa/kernel.hpp"

namespace warpcomp {

/** Tunables, exposed so tests can exercise resource-limit errors. */
struct TranslateOptions
{
    u32 maxRegs = kMaxRegsPerThread;
    u32 maxPreds = kMaxPredsPerThread;
};

/** Translation outcome: a kernel or a diagnostic naming the pc. */
struct TranslateResult
{
    std::optional<Kernel> kernel;
    std::string error;

    bool ok() const { return kernel.has_value(); }
};

/**
 * Translate @p image starting at word index @p entry (instructions
 * before the entry are ignored; branches may not escape the
 * [entry, end) range).
 */
TranslateResult translateImage(const KernelImage &image, u32 entry = 0,
                               const TranslateOptions &opt = {});

} // namespace warpcomp

#endif // WARPCOMP_FRONTEND_TRANSLATE_HPP
