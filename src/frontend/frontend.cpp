#include "frontend/frontend.hpp"

#include "common/log.hpp"
#include "frontend/env.hpp"

namespace warpcomp {

namespace {

constexpr const char *kSpecPrefix = "file:";

/** Split "PATH[,entry=SYM]" into its parts; false on malformed tail. */
bool
splitSpec(const std::string &body, std::string *path, std::string *entry)
{
    const size_t comma = body.find(',');
    if (comma == std::string::npos) {
        *path = body;
        entry->clear();
        return true;
    }
    *path = body.substr(0, comma);
    const std::string tail = body.substr(comma + 1);
    if (tail.rfind("entry=", 0) != 0 || tail.size() == 6)
        return false;
    *entry = tail.substr(6);
    return true;
}

} // namespace

KernelLoadResult
loadKernelFile(const std::string &path, const std::string &entry)
{
    ImageLoadResult img = loadKernelImage(path);
    if (!img.ok())
        return {std::nullopt, img.error};

    u32 entryWord = 0;
    if (!entry.empty()) {
        const auto it = img.image->symbols.find(entry);
        if (it == img.image->symbols.end())
            return {std::nullopt, path + ": entry symbol `" + entry +
                                      "` not found in image"};
        entryWord = it->second;
    }

    TranslateResult tr = translateImage(*img.image, entryWord);
    if (!tr.ok())
        return {std::nullopt, tr.error};

    LoadedKernel lk{std::move(*tr.kernel), img.image->blockDim,
                    img.image->sha256, path};
    return {std::move(lk), {}};
}

LoadedKernel
loadKernelFileOrExit(const std::string &path, const std::string &entry)
{
    KernelLoadResult r = loadKernelFile(path, entry);
    if (!r.ok())
        WC_FATAL("--kernel: " << r.error);
    return std::move(*r.loaded);
}

bool
isKernelFileSpec(const std::string &name)
{
    return name.rfind(kSpecPrefix, 0) == 0;
}

std::string
kernelFileSpec(const std::string &path, const std::string &entry)
{
    std::string spec = std::string(kSpecPrefix) + path;
    if (!entry.empty())
        spec += ",entry=" + entry;
    return spec;
}

WorkloadInstance
makeKernelFileWorkload(const std::string &spec, u32 scale, u64 salt)
{
    WC_ASSERT(isKernelFileSpec(spec), "not a kernel file spec: " << spec);
    std::string path, entry;
    if (!splitSpec(spec.substr(5), &path, &entry) || path.empty())
        WC_FATAL("--kernel: malformed spec `" << spec
                 << "` (expected file:PATH[,entry=SYM])");

    LoadedKernel lk = loadKernelFileOrExit(path, entry);
    KernelEnv env = makeKernelEnv(lk.blockDim, scale, salt);
    return {lk.kernel.name(), std::move(lk.kernel), env.dims,
            std::move(env.gmem), std::move(env.cmem), "rv32",
            std::move(lk.imageSha)};
}

} // namespace warpcomp
