/**
 * @file
 * Machine-readable perf baseline. Each suite a bench binary runs is
 * recorded (label, thread count, wall-clock seconds, per-workload
 * cycles and wall time); when the binary was started with --json=FILE
 * the whole log is flushed there as JSON at exit. CI uploads the file
 * as an artifact so wall-clock regressions are visible run over run.
 */

#ifndef WARPCOMP_HARNESS_PERF_JSON_HPP
#define WARPCOMP_HARNESS_PERF_JSON_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace warpcomp {

/** One workload's contribution to a recorded suite run. */
struct PerfWorkloadRow
{
    std::string workload;
    u64 cycles = 0;
    /** Simulation wall time of this workload alone (its own clock; the
     *  rows of a parallel suite overlap and do not sum to the suite
     *  wall time). */
    double wallSeconds = 0.0;
    /** Frontend provenance: "dsl" or "rv32" (binary image). */
    std::string frontend = "dsl";
    /** SHA-256 of the binary image for "rv32" rows; empty for DSL. */
    std::string imageSha;
};

/** One timed suite run (one runSelected call). */
struct PerfSuiteRecord
{
    std::string label;      ///< caller-supplied, e.g. "baseline serial"
    u32 threads = 0;        ///< worker threads (0 = hardware concurrency)
    /** Actual worker count after resolving threads==0. */
    u32 resolvedThreads = 0;
    /** Input-RNG salt the suite ran under (see ExperimentConfig). */
    u64 seedSalt = 0;
    /** Active fault/SEU configuration, so fault-sweep artifacts are
     *  self-describing (all zero / "None" / "Unprotected" when the
     *  suite ran fault-free). */
    double faultBer = 0.0;
    std::string faultPolicy = "None";
    u64 faultSeed = 0;
    double seuRate = 0.0;
    std::string seuScheme = "Unprotected";
    u64 seuScrubInterval = 0;
    double wallSeconds = 0.0;
    u64 totalCycles = 0;
    std::vector<PerfWorkloadRow> rows;
};

/**
 * Collects suite records for one bench process and writes them as JSON.
 * Inactive (and free) until setOutput() names a target file; the global
 * instance flushes from its destructor so every bench gets the --json
 * behaviour without per-binary plumbing.
 */
class PerfRecorder
{
  public:
    ~PerfRecorder();

    /** Arm the recorder: results go to @p json_path at exit. */
    void setOutput(std::string bench_name, std::string json_path);

    void addSuite(PerfSuiteRecord record);

    bool enabled() const { return !jsonPath_.empty(); }

    /** Serialize the current log; exposed for tests. */
    void writeJson(std::ostream &os) const;

    /** Flush to the configured path now (destructor calls this too). */
    void flush();

  private:
    std::string benchName_;
    std::string jsonPath_;
    std::vector<PerfSuiteRecord> suites_;
    bool flushed_ = false;
};

/** Process-wide recorder used by the bench scaffolding. */
PerfRecorder &perfRecorder();

} // namespace warpcomp

#endif // WARPCOMP_HARNESS_PERF_JSON_HPP
