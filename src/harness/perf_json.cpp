#include "harness/perf_json.hpp"

#include <fstream>
#include <iostream>
#include <ostream>
#include <thread>

#include "common/json_writer.hpp"
#include "common/log.hpp"

// The build stamps perf_json.cpp with the checkout's short SHA (see
// src/CMakeLists.txt); keep non-CMake builds compiling.
#ifndef WC_GIT_SHA
#define WC_GIT_SHA "unknown"
#endif

namespace warpcomp {

PerfRecorder::~PerfRecorder()
{
    flush();
}

void
PerfRecorder::setOutput(std::string bench_name, std::string json_path)
{
    benchName_ = std::move(bench_name);
    jsonPath_ = std::move(json_path);
}

void
PerfRecorder::addSuite(PerfSuiteRecord record)
{
    suites_.push_back(std::move(record));
}

void
PerfRecorder::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", benchName_);
    w.field("git_sha", WC_GIT_SHA);
    w.field("hw_concurrency",
            static_cast<u64>(std::thread::hardware_concurrency()));
    w.key("suites");
    w.beginArray();
    for (const PerfSuiteRecord &r : suites_) {
        w.beginObject();
        w.field("label", r.label);
        w.field("threads", r.threads);
        w.field("resolved_threads", r.resolvedThreads);
        w.field("seed_salt", r.seedSalt);
        w.field("fault_ber", r.faultBer);
        w.field("fault_policy", r.faultPolicy);
        w.field("fault_seed", r.faultSeed);
        w.field("seu_rate", r.seuRate);
        w.field("seu_scheme", r.seuScheme);
        w.field("seu_scrub_interval", r.seuScrubInterval);
        w.field("wall_seconds", r.wallSeconds);
        w.field("total_cycles", r.totalCycles);
        w.key("workloads");
        w.beginArray();
        for (const PerfWorkloadRow &row : r.rows) {
            w.beginObject();
            w.field("workload", row.workload);
            w.field("cycles", row.cycles);
            w.field("wall_seconds", row.wallSeconds);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
PerfRecorder::flush()
{
    if (flushed_ || jsonPath_.empty())
        return;
    flushed_ = true;
    std::ofstream os(jsonPath_);
    if (!os) {
        std::cerr << "warpcomp: cannot write perf json to " << jsonPath_
                  << "\n";
        return;
    }
    writeJson(os);
}

PerfRecorder &
perfRecorder()
{
    static PerfRecorder recorder;
    return recorder;
}

} // namespace warpcomp
