#include "harness/perf_json.hpp"

#include <fstream>
#include <iostream>
#include <ostream>
#include <thread>

#include "common/json_writer.hpp"
#include "common/log.hpp"

// The build stamps perf_json.cpp with the checkout's short SHA plus the
// compiler identity and effective flags (see src/CMakeLists.txt); keep
// non-CMake builds compiling.
#ifndef WC_GIT_SHA
#define WC_GIT_SHA "unknown"
#endif
#ifndef WC_CXX_COMPILER
#define WC_CXX_COMPILER "unknown"
#endif
#ifndef WC_CXX_FLAGS
#define WC_CXX_FLAGS "unknown"
#endif

namespace warpcomp {

namespace {

/**
 * Widest SIMD instruction set this translation unit was compiled for.
 * Wall-clock numbers from builds targeting different vector ISAs are
 * not comparable (the BDI scan and functional loops vectorize), so the
 * perf record carries this alongside the compiler identity.
 */
const char *
simdIsa()
{
#if defined(__AVX512F__)
    return "avx512f";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__AVX__)
    return "avx";
#elif defined(__SSE4_2__)
    return "sse4.2";
#elif defined(__SSE2__) || defined(__x86_64__)
    return "sse2";
#elif defined(__ARM_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

} // namespace

PerfRecorder::~PerfRecorder()
{
    flush();
}

void
PerfRecorder::setOutput(std::string bench_name, std::string json_path)
{
    benchName_ = std::move(bench_name);
    jsonPath_ = std::move(json_path);
}

void
PerfRecorder::addSuite(PerfSuiteRecord record)
{
    suites_.push_back(std::move(record));
}

void
PerfRecorder::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", benchName_);
    w.field("git_sha", WC_GIT_SHA);
    w.field("compiler", WC_CXX_COMPILER);
    w.field("cxx_flags", WC_CXX_FLAGS);
    w.field("simd_isa", simdIsa());
    w.field("hw_concurrency",
            static_cast<u64>(std::thread::hardware_concurrency()));
    w.key("suites");
    w.beginArray();
    for (const PerfSuiteRecord &r : suites_) {
        w.beginObject();
        w.field("label", r.label);
        w.field("threads", r.threads);
        w.field("resolved_threads", r.resolvedThreads);
        w.field("seed_salt", r.seedSalt);
        w.field("fault_ber", r.faultBer);
        w.field("fault_policy", r.faultPolicy);
        w.field("fault_seed", r.faultSeed);
        w.field("seu_rate", r.seuRate);
        w.field("seu_scheme", r.seuScheme);
        w.field("seu_scrub_interval", r.seuScrubInterval);
        w.field("wall_seconds", r.wallSeconds);
        w.field("total_cycles", r.totalCycles);
        w.key("workloads");
        w.beginArray();
        for (const PerfWorkloadRow &row : r.rows) {
            w.beginObject();
            w.field("workload", row.workload);
            w.field("cycles", row.cycles);
            w.field("wall_seconds", row.wallSeconds);
            w.field("frontend", row.frontend);
            if (!row.imageSha.empty())
                w.field("image_sha256", row.imageSha);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
PerfRecorder::flush()
{
    if (flushed_ || jsonPath_.empty())
        return;
    flushed_ = true;
    std::ofstream os(jsonPath_);
    if (!os) {
        std::cerr << "warpcomp: cannot write perf json to " << jsonPath_
                  << "\n";
        return;
    }
    writeJson(os);
}

PerfRecorder &
perfRecorder()
{
    static PerfRecorder recorder;
    return recorder;
}

} // namespace warpcomp
