#include "harness/perf_json.hpp"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <thread>

#include "common/log.hpp"

// The build stamps perf_json.cpp with the checkout's short SHA (see
// src/CMakeLists.txt); keep non-CMake builds compiling.
#ifndef WC_GIT_SHA
#define WC_GIT_SHA "unknown"
#endif

namespace warpcomp {

namespace {

/** Minimal JSON string escape (labels/workload names are plain ASCII,
 *  but a path or label with a quote must not corrupt the document). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

PerfRecorder::~PerfRecorder()
{
    flush();
}

void
PerfRecorder::setOutput(std::string bench_name, std::string json_path)
{
    benchName_ = std::move(bench_name);
    jsonPath_ = std::move(json_path);
}

void
PerfRecorder::addSuite(PerfSuiteRecord record)
{
    suites_.push_back(std::move(record));
}

void
PerfRecorder::writeJson(std::ostream &os) const
{
    os << std::setprecision(6) << std::fixed;
    os << "{\n";
    os << "  \"bench\": \"" << jsonEscape(benchName_) << "\",\n";
    os << "  \"git_sha\": \"" << jsonEscape(WC_GIT_SHA) << "\",\n";
    os << "  \"hw_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n";
    os << "  \"suites\": [\n";
    for (std::size_t s = 0; s < suites_.size(); ++s) {
        const PerfSuiteRecord &r = suites_[s];
        os << "    {\n";
        os << "      \"label\": \"" << jsonEscape(r.label) << "\",\n";
        os << "      \"threads\": " << r.threads << ",\n";
        os << "      \"resolved_threads\": " << r.resolvedThreads << ",\n";
        os << "      \"seed_salt\": " << r.seedSalt << ",\n";
        os << "      \"fault_ber\": " << std::scientific << r.faultBer
           << std::fixed << ",\n";
        os << "      \"fault_policy\": \"" << jsonEscape(r.faultPolicy)
           << "\",\n";
        os << "      \"fault_seed\": " << r.faultSeed << ",\n";
        os << "      \"seu_rate\": " << std::scientific << r.seuRate
           << std::fixed << ",\n";
        os << "      \"seu_scheme\": \"" << jsonEscape(r.seuScheme)
           << "\",\n";
        os << "      \"seu_scrub_interval\": " << r.seuScrubInterval
           << ",\n";
        os << "      \"wall_seconds\": " << r.wallSeconds << ",\n";
        os << "      \"total_cycles\": " << r.totalCycles << ",\n";
        os << "      \"workloads\": [\n";
        for (std::size_t w = 0; w < r.rows.size(); ++w) {
            const PerfWorkloadRow &row = r.rows[w];
            os << "        {\"workload\": \"" << jsonEscape(row.workload)
               << "\", \"cycles\": " << row.cycles
               << ", \"wall_seconds\": " << row.wallSeconds << "}"
               << (w + 1 < r.rows.size() ? "," : "") << "\n";
        }
        os << "      ]\n";
        os << "    }" << (s + 1 < suites_.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

void
PerfRecorder::flush()
{
    if (flushed_ || jsonPath_.empty())
        return;
    flushed_ = true;
    std::ofstream os(jsonPath_);
    if (!os) {
        std::cerr << "warpcomp: cannot write perf json to " << jsonPath_
                  << "\n";
        return;
    }
    writeJson(os);
}

PerfRecorder &
perfRecorder()
{
    static PerfRecorder recorder;
    return recorder;
}

} // namespace warpcomp
