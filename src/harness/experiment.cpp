#include "harness/experiment.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "common/log.hpp"
#include "harness/thread_pool.hpp"
#include "obs/trace_stream.hpp"

namespace warpcomp {

GpuParams
makeGpuParams(const ExperimentConfig &cfg)
{
    GpuParams gp;
    gp.numSms = cfg.numSms;
    gp.energy = cfg.energy;
    gp.sm.scheme = cfg.scheme;
    gp.sm.sched = cfg.sched;
    gp.sm.divPolicy = cfg.divPolicy;
    gp.sm.compressLatency = cfg.compressLatency;
    gp.sm.decompressLatency = cfg.decompressLatency;
    gp.sm.numCompressors = cfg.numCompressors;
    gp.sm.numDecompressors = cfg.numDecompressors;
    gp.sm.applyScheme();
    gp.sm.regfile.wakeupLatency = cfg.wakeupLatency;
    if (!cfg.enableGating)
        gp.sm.regfile.gatingEnabled = false;
    gp.sm.regfile.drowsyEnabled = cfg.drowsy;
    gp.sm.regfile.drowsyAfterCycles = cfg.drowsyAfterCycles;
    gp.sm.rfcEntriesPerWarp = cfg.rfcEntries;
    gp.sm.faults = cfg.faults;
    gp.sm.seu = cfg.seu;
    gp.obs = cfg.obs;
    gp.skipIdleCycles = cfg.skipIdle;
    return gp;
}

ExperimentResult
runWorkload(const std::string &name, const ExperimentConfig &cfg)
{
    const auto t0 = std::chrono::steady_clock::now();
    WorkloadInstance wl = makeWorkload(name, cfg.scale, cfg.seedSalt);
    GpuParams gp = makeGpuParams(cfg);
    // The streaming sink is armed here, not in the simulator: this is
    // the one place that knows the full provenance (frontend, image
    // SHA, config label) before the run starts.
    std::unique_ptr<TraceStreamSink> sink;
    if (!cfg.obs.streamPath.empty()) {
        TraceStreamMeta meta;
        meta.gitSha = traceStreamGitSha();
        meta.workload = wl.name;
        meta.frontend = wl.frontend;
        meta.imageSha = wl.imageSha;
        meta.config = cfg.obs.streamLabel;
        meta.numSms = cfg.numSms;
        meta.numBanks = gp.sm.regfile.numBanks;
        meta.windowInterval = cfg.obs.windowInterval;
        meta.traceStart = cfg.obs.traceStart;
        meta.traceEnd = cfg.obs.traceEnd;
        meta.compressLatency = cfg.compressLatency;
        meta.decompressLatency = cfg.decompressLatency;
        sink = std::make_unique<TraceStreamSink>(cfg.obs.streamPath,
                                                 meta);
        gp.obs.sink = sink.get();
    }
    Gpu gpu(gp, *wl.gmem, *wl.cmem);
    RunResult run = gpu.run(wl.kernel, wl.dims, cfg.collectBdiBreakdown);
    if (sink != nullptr && run.obs != nullptr)
        sink->finalize(run.cycles, run.obs->windows());
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    return ExperimentResult{wl.name, std::move(run), wall.count(),
                            std::move(wl.frontend),
                            std::move(wl.imageSha)};
}

std::vector<ExperimentResult>
runSuite(const ExperimentConfig &cfg)
{
    std::vector<ExperimentResult> results;
    results.reserve(workloadNames().size());
    for (const std::string &name : workloadNames())
        results.push_back(runWorkload(name, cfg));
    return results;
}

std::vector<ExperimentResult>
runWorkloadsParallel(const std::vector<std::string> &names,
                     const ExperimentConfig &cfg, u32 num_threads)
{
    // Each slot is owned exclusively by one job; merging back is just
    // unwrapping in submission order.
    std::vector<std::optional<ExperimentResult>> slots(names.size());
    parallelFor(names.size(), resolveThreadCount(num_threads),
                [&](std::size_t i) {
                    slots[i] = runWorkload(names[i], cfg);
                });
    std::vector<ExperimentResult> results;
    results.reserve(slots.size());
    for (auto &slot : slots)
        results.push_back(std::move(*slot));
    return results;
}

std::vector<ExperimentResult>
runSuiteParallel(const ExperimentConfig &cfg, u32 num_threads)
{
    return runWorkloadsParallel(workloadNames(), cfg, num_threads);
}

std::vector<std::vector<ExperimentResult>>
runGrid(const std::vector<ExperimentConfig> &configs,
        const std::vector<std::string> &workloads, u32 num_threads)
{
    const std::size_t n_wl = workloads.size();
    const std::size_t n_jobs = configs.size() * n_wl;
    std::vector<std::optional<ExperimentResult>> slots(n_jobs);
    parallelFor(n_jobs, resolveThreadCount(num_threads),
                [&](std::size_t i) {
                    slots[i] = runWorkload(workloads[i % n_wl],
                                           configs[i / n_wl]);
                });
    std::vector<std::vector<ExperimentResult>> grid(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        grid[c].reserve(n_wl);
        for (std::size_t w = 0; w < n_wl; ++w)
            grid[c].push_back(std::move(*slots[c * n_wl + w]));
    }
    return grid;
}

namespace {

/**
 * Strict double parse over [spec, end): the whole span must be
 * numeric and the value finite. atof-style parsing silently maps
 * garbage to 0.0 and lets NaN through range checks (every comparison
 * with NaN is false), so rates go through this instead.
 */
std::optional<double>
parseRate(const char *spec, const char *end)
{
    if (spec == end)
        return std::nullopt;
    char *parsed = nullptr;
    const double v = std::strtod(spec, &parsed);
    if (parsed != end || !std::isfinite(v))
        return std::nullopt;
    return v;
}

/**
 * Strict cycle-count parse over [spec, end): digits only. strtoull
 * alone silently wraps negative input ("-5" becomes 2^64-5), so every
 * cycle field ('--trace' START/END, --hang-budget) rejects any
 * non-digit up front.
 */
std::optional<u64>
parseCycles(const char *spec, const char *end)
{
    if (spec == end)
        return std::nullopt;
    for (const char *p = spec; p != end; ++p)
        if (*p < '0' || *p > '9')
            return std::nullopt;
    char *parsed = nullptr;
    const u64 v = std::strtoull(spec, &parsed, 10);
    if (parsed != end)
        return std::nullopt;
    return v;
}

} // namespace

HarnessOptions
parseHarnessArgs(int argc, char **argv)
{
    HarnessOptions opt;
    if (argc > 0 && argv[0] != nullptr) {
        const char *slash = std::strrchr(argv[0], '/');
        opt.benchName = slash != nullptr ? slash + 1 : argv[0];
    }
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0) {
            opt.scale = static_cast<u32>(std::atoi(arg + 8));
            if (opt.scale < 1)
                WC_FATAL("--scale must be >= 1");
        } else if (std::strncmp(arg, "--sms=", 6) == 0) {
            opt.numSms = static_cast<u32>(std::atoi(arg + 6));
            if (opt.numSms < 1)
                WC_FATAL("--sms must be >= 1");
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            const int n = std::atoi(arg + 10);
            if (n < 0)
                WC_FATAL("--threads must be >= 0 (0 = hardware "
                         "concurrency)");
            opt.threads = static_cast<u32>(n);
        } else if (std::strncmp(arg, "--only=", 7) == 0) {
            opt.only = arg + 7;
        } else if (std::strncmp(arg, "--kernel=", 9) == 0) {
            const char *spec = arg + 9;
            const char *comma = std::strchr(spec, ',');
            if (comma == nullptr) {
                opt.kernelPath = spec;
            } else {
                opt.kernelPath.assign(spec, comma);
                if (std::strncmp(comma + 1, "entry=", 6) != 0 ||
                    *(comma + 7) == '\0')
                    WC_FATAL("--kernel wants FILE or FILE,entry=SYM "
                             "(e.g. --kernel=k.hex,entry=main), got '"
                             << (comma + 1) << "'");
                opt.kernelEntry = comma + 7;
            }
            if (opt.kernelPath.empty())
                WC_FATAL("--kernel needs a file path");
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            opt.jsonPath = arg + 7;
            if (opt.jsonPath.empty())
                WC_FATAL("--json needs a file path");
        } else if (std::strncmp(arg, "--faults=", 9) == 0) {
            const char *spec = arg + 9;
            const char *comma = std::strchr(spec, ',');
            if (comma == nullptr)
                WC_FATAL("--faults wants BER,POLICY (e.g. "
                         "--faults=1e-4,CompressRemap)");
            const auto ber = parseRate(spec, comma);
            if (!ber.has_value() || *ber < 0.0 || *ber >= 1.0)
                WC_FATAL("--faults BER must be a finite value in "
                         "[0, 1), got '"
                         << std::string(spec, comma) << "'");
            const auto policy = faultPolicyFromName(comma + 1);
            if (!policy.has_value())
                WC_FATAL("unknown fault policy '"
                         << (comma + 1)
                         << "' (None | DisableEntry | CompressRemap)");
            opt.faults.ber = *ber;
            opt.faults.policy = *policy;
        } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
            opt.faults.seed =
                std::strtoull(arg + 13, nullptr, 0);
        } else if (std::strncmp(arg, "--seu=", 6) == 0) {
            const char *spec = arg + 6;
            const char *comma = std::strchr(spec, ',');
            if (comma == nullptr)
                WC_FATAL("--seu wants RATE,SCHEME (e.g. "
                         "--seu=1e-4,EccScrub)");
            const auto rate = parseRate(spec, comma);
            if (!rate.has_value() || *rate < 0.0)
                WC_FATAL("--seu rate must be a finite flips-per-cycle "
                         "value >= 0, got '"
                         << std::string(spec, comma) << "'");
            const auto scheme = seuSchemeFromName(comma + 1);
            if (!scheme.has_value())
                WC_FATAL("unknown SEU scheme '"
                         << (comma + 1)
                         << "' (Unprotected | Ecc | Scrub | EccScrub)");
            opt.seu.flipsPerCycle = *rate;
            opt.seu.scheme = *scheme;
        } else if (std::strncmp(arg, "--seu-seed=", 11) == 0) {
            opt.seu.seed = std::strtoull(arg + 11, nullptr, 0);
        } else if (std::strncmp(arg, "--seu-scrub=", 12) == 0) {
            char *end = nullptr;
            const u64 interval = std::strtoull(arg + 12, &end, 0);
            if (end == arg + 12 || *end != '\0' || interval < 1)
                WC_FATAL("--seu-scrub must be a cycle count >= 1, "
                         "got '" << (arg + 12) << "'");
            opt.seu.scrubInterval = interval;
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            const char *spec = arg + 8;
            const char *comma = std::strchr(spec, ',');
            if (comma == nullptr) {
                opt.tracePath = spec;
            } else {
                opt.tracePath.assign(spec, comma);
                const char *start_spec = comma + 1;
                const char *comma2 = std::strchr(start_spec, ',');
                if (comma2 == nullptr)
                    WC_FATAL("--trace wants FILE or FILE,START,END "
                             "(e.g. --trace=t.json,1000,5000)");
                const auto start = parseCycles(start_spec, comma2);
                if (!start.has_value())
                    WC_FATAL("--trace START must be a cycle count, "
                             "got '" << std::string(start_spec, comma2)
                             << "'");
                opt.traceStart = *start;
                const char *end_spec = comma2 + 1;
                const auto end = parseCycles(
                    end_spec, end_spec + std::strlen(end_spec));
                if (!end.has_value() || *end <= opt.traceStart)
                    WC_FATAL("--trace END must be a cycle count > "
                             "START, got '" << end_spec << "'");
                opt.traceEnd = *end;
            }
            if (opt.tracePath.empty())
                WC_FATAL("--trace needs a file path");
        } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
            opt.traceOutPath = arg + 12;
            if (opt.traceOutPath.empty())
                WC_FATAL("--trace-out needs a file path");
        } else if (std::strncmp(arg, "--trace-window=", 15) == 0) {
            char *end = nullptr;
            const u64 interval = std::strtoull(arg + 15, &end, 0);
            if (end == arg + 15 || *end != '\0' || interval < 1)
                WC_FATAL("--trace-window must be a cycle count >= 1, "
                         "got '" << (arg + 15) << "'");
            opt.traceWindow = static_cast<u32>(interval);
        } else if (std::strncmp(arg, "--stats-json=", 13) == 0) {
            opt.statsJsonPath = arg + 13;
            if (opt.statsJsonPath.empty())
                WC_FATAL("--stats-json needs a file path");
        } else if (std::strncmp(arg, "--hang-budget=", 14) == 0) {
            const char *spec = arg + 14;
            const auto budget =
                parseCycles(spec, spec + std::strlen(spec));
            if (!budget.has_value() || *budget < 1)
                WC_FATAL("--hang-budget must be a cycle count >= 1, "
                         "got '" << spec << "'");
            opt.hangBudget = *budget;
        } else if (std::strcmp(arg, "--no-skip") == 0) {
            opt.noSkip = true;
        }
    }
    return opt;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        WC_ASSERT(v > 0.0, "geomean over non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace warpcomp
