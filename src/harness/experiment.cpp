#include "harness/experiment.hpp"

#include <cmath>
#include <cstring>

#include "common/log.hpp"

namespace warpcomp {

GpuParams
makeGpuParams(const ExperimentConfig &cfg)
{
    GpuParams gp;
    gp.numSms = cfg.numSms;
    gp.energy = cfg.energy;
    gp.sm.scheme = cfg.scheme;
    gp.sm.sched = cfg.sched;
    gp.sm.divPolicy = cfg.divPolicy;
    gp.sm.compressLatency = cfg.compressLatency;
    gp.sm.decompressLatency = cfg.decompressLatency;
    gp.sm.numCompressors = cfg.numCompressors;
    gp.sm.numDecompressors = cfg.numDecompressors;
    gp.sm.applyScheme();
    gp.sm.regfile.wakeupLatency = cfg.wakeupLatency;
    if (!cfg.enableGating)
        gp.sm.regfile.gatingEnabled = false;
    gp.sm.regfile.drowsyEnabled = cfg.drowsy;
    gp.sm.regfile.drowsyAfterCycles = cfg.drowsyAfterCycles;
    gp.sm.rfcEntriesPerWarp = cfg.rfcEntries;
    return gp;
}

ExperimentResult
runWorkload(const std::string &name, const ExperimentConfig &cfg)
{
    WorkloadInstance wl = makeWorkload(name, cfg.scale);
    const GpuParams gp = makeGpuParams(cfg);
    Gpu gpu(gp, *wl.gmem, *wl.cmem);
    RunResult run = gpu.run(wl.kernel, wl.dims, cfg.collectBdiBreakdown);
    return ExperimentResult{wl.name, std::move(run)};
}

std::vector<ExperimentResult>
runSuite(const ExperimentConfig &cfg)
{
    std::vector<ExperimentResult> results;
    results.reserve(workloadNames().size());
    for (const std::string &name : workloadNames())
        results.push_back(runWorkload(name, cfg));
    return results;
}

HarnessOptions
parseHarnessArgs(int argc, char **argv)
{
    HarnessOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--scale=", 8) == 0) {
            opt.scale = static_cast<u32>(std::atoi(arg + 8));
            if (opt.scale < 1)
                WC_FATAL("--scale must be >= 1");
        } else if (std::strncmp(arg, "--sms=", 6) == 0) {
            opt.numSms = static_cast<u32>(std::atoi(arg + 6));
            if (opt.numSms < 1)
                WC_FATAL("--sms must be >= 1");
        } else if (std::strncmp(arg, "--only=", 7) == 0) {
            opt.only = arg + 7;
        }
    }
    return opt;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        WC_ASSERT(v > 0.0, "geomean over non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace warpcomp
