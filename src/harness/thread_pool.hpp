/**
 * @file
 * Fixed-size worker pool for the experiment harness. Simulation jobs
 * are coarse (one full kernel launch each), so a plain mutex-protected
 * work queue is entirely sufficient: contention is one lock per job,
 * noise against the millions of simulated cycles behind it.
 *
 * Determinism contract: the pool imposes no ordering on job execution,
 * so callers must make jobs share-nothing and write results into
 * per-job slots (submission order), never into shared accumulators.
 * `parallelFor` packages that pattern.
 */

#ifndef WARPCOMP_HARNESS_THREAD_POOL_HPP
#define WARPCOMP_HARNESS_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace warpcomp {

/** Fixed-size thread pool over a FIFO work queue. */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (at least 1). */
    explicit ThreadPool(u32 num_threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; it may start on any worker at any time. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first captured exception (the rest are dropped).
     */
    void wait();

    u32 numThreads() const { return static_cast<u32>(workers_.size()); }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0;          ///< queued + currently running
    std::exception_ptr firstError_;
    bool shutdown_ = false;
};

/**
 * Number of workers to actually use: @p requested, or the hardware
 * concurrency when @p requested is 0 (always at least 1).
 */
u32 resolveThreadCount(u32 requested);

/**
 * Run fn(0) .. fn(n-1) on @p num_threads workers and block until all
 * complete. Indices are handed out in order but may finish in any
 * order; fn must only touch state owned by its index. With one thread
 * (or one job) this degenerates to the plain serial loop — no pool is
 * spun up — so `parallelFor(n, 1, fn)` is bit-identical in every
 * observable way to `for (i = 0; i < n; ++i) fn(i)`.
 */
template <typename Fn>
void
parallelFor(std::size_t n, u32 num_threads, Fn &&fn)
{
    if (num_threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    const u32 workers =
        static_cast<u32>(std::min<std::size_t>(num_threads, n));
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace warpcomp

#endif // WARPCOMP_HARNESS_THREAD_POOL_HPP
