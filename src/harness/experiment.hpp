/**
 * @file
 * Experiment harness: runs a workload under a named configuration and
 * returns the merged results. Every bench binary (one per paper
 * table/figure) and example builds on this.
 */

#ifndef WARPCOMP_HARNESS_EXPERIMENT_HPP
#define WARPCOMP_HARNESS_EXPERIMENT_HPP

#include <limits>
#include <string>
#include <vector>

#include "sim/gpu.hpp"
#include "workloads/registry.hpp"

namespace warpcomp {

/** One experiment configuration (Table 2 defaults unless overridden). */
struct ExperimentConfig
{
    CompressionScheme scheme = CompressionScheme::Warped;
    SchedPolicy sched = SchedPolicy::Gto;
    DivergencePolicy divPolicy = DivergencePolicy::WriteUncompressed;
    u32 compressLatency = 2;
    u32 decompressLatency = 1;
    u32 numSms = 15;
    u32 scale = 1;                  ///< workload problem-size multiplier
    bool collectBdiBreakdown = false;
    /** Ablation: disable bank power gating in the compressed design. */
    bool enableGating = true;
    /** Comparator: drowsy-mode register banks (related work [9]). */
    bool drowsy = false;
    /** Idle cycles before a bank drops to drowsy state. */
    u32 drowsyAfterCycles = 64;
    /** Comparator: register-file-cache entries per warp (related work
     *  [21]); 0 disables. */
    u32 rfcEntries = 0;
    /** Bank wakeup latency in cycles (Table 2 default: 10). */
    u32 wakeupLatency = 10;
    u32 numCompressors = 2;
    u32 numDecompressors = 4;
    /**
     * Salt mixed into every workload's input RNG seed (see mixSeed).
     * 0 (the default) keeps the canonical per-workload streams, so
     * historical results stay bit-identical; any other value derives a
     * fresh deterministic input set per (workload, config) pair.
     */
    u64 seedSalt = 0;
    /** Stuck-at fault injection (BER 0 = fault-free, bit-identical to
     *  a build without the subsystem). */
    FaultParams faults{};
    /** Transient SEU injection (rate 0 = disabled, bit-identical to a
     *  build without the subsystem); composes with `faults`. */
    SeuParams seu{};
    EnergyParams energy{};
    /** Observability (disabled by default; see --trace/--stats-json). */
    ObsParams obs{};
    /** Event-driven idle-cycle skipping (--no-skip disables; results
     *  are bit-identical either way). */
    bool skipIdle = true;
};

/** Result of one (workload, config) simulation. */
struct ExperimentResult
{
    std::string workload;
    RunResult run;
    /** Host wall-clock seconds this simulation took (perf baseline). */
    double wallSeconds = 0.0;
    /** Frontend provenance: "dsl" or "rv32" (see WorkloadInstance). */
    std::string frontend = "dsl";
    /** SHA-256 of the binary image for "rv32" kernels; empty for DSL. */
    std::string imageSha;
};

/** Assemble GpuParams from an ExperimentConfig. */
GpuParams makeGpuParams(const ExperimentConfig &cfg);

/** Run one workload under @p cfg. */
ExperimentResult runWorkload(const std::string &name,
                             const ExperimentConfig &cfg);

/** Run the full 15-benchmark suite under @p cfg. */
std::vector<ExperimentResult> runSuite(const ExperimentConfig &cfg);

/**
 * Run @p names under @p cfg on @p num_threads workers (0 = hardware
 * concurrency). Simulation runs are share-nothing — each owns its
 * memory image, RNG streams, stats, and energy meter — and results are
 * returned in submission (= @p names) order, so the output is
 * bit-identical to the serial loop regardless of thread count.
 */
std::vector<ExperimentResult>
runWorkloadsParallel(const std::vector<std::string> &names,
                     const ExperimentConfig &cfg, u32 num_threads = 0);

/** Parallel runSuite: the full suite with the same ordering guarantee. */
std::vector<ExperimentResult> runSuiteParallel(const ExperimentConfig &cfg,
                                               u32 num_threads = 0);

/**
 * Full experiment grid: every (config, workload) pair, flattened onto
 * one pool. result[c][w] corresponds to configs[c] x workloads[w], in
 * argument order — bit-identical to nested serial loops.
 */
std::vector<std::vector<ExperimentResult>>
runGrid(const std::vector<ExperimentConfig> &configs,
        const std::vector<std::string> &workloads, u32 num_threads = 0);

/** Command-line options shared by the bench binaries. */
struct HarnessOptions
{
    u32 scale = 1;
    u32 numSms = 15;
    /** Worker threads for suite runs; 0 = hardware concurrency. */
    u32 threads = 0;
    /** Restrict to a single workload (empty = all). */
    std::string only;
    /** Binary kernel image via --kernel=FILE[,entry=SYM] (empty =
     *  disabled). Runs the image instead of the built-in suite. */
    std::string kernelPath;
    /** Entry symbol inside the image ("" = first word). */
    std::string kernelEntry;
    /** Write a machine-readable perf record here (empty = disabled). */
    std::string jsonPath;
    /** Basename of argv[0]; names the bench in the perf record. */
    std::string benchName;
    /** Fault injection requested via --faults=BER,POLICY. */
    FaultParams faults{};
    /** SEU injection requested via --seu=RATE,SCHEME. */
    SeuParams seu{};
    /** Chrome trace output via --trace=FILE[,START,END] (empty =
     *  disabled). Requires --only; the first suite run is traced. */
    std::string tracePath;
    Cycle traceStart = 0;
    Cycle traceEnd = std::numeric_limits<Cycle>::max();
    /** Streaming binary dump via --trace-out=FILE (empty = disabled).
     *  Requires --only; the first suite run streams. Shares the
     *  --trace START/END window when both are given. */
    std::string traceOutPath;
    /** Windowed-counter interval via --trace-window=N. */
    u32 traceWindow = 1000;
    /** Structured stats dump via --stats-json=FILE (empty = disabled). */
    std::string statsJsonPath;
    /** Disable event-driven idle-cycle skipping via --no-skip (for
     *  differential checks against per-cycle stepping). */
    bool noSkip = false;
    /**
     * In-sim hang budget override via --hang-budget=N: the cycle count
     * at which a run under uncontained corruption stops and reports
     * RunResult::hung (FaultParams::hangCycles). 0 = keep the
     * configured default. Independent of the sweep runner's wall-clock
     * watchdog, so both layers are tunable separately.
     */
    Cycle hangBudget = 0;
};

/**
 * Parse --scale=N --sms=N --threads=N --only=name --json=FILE
 * --kernel=FILE[,entry=SYM] --faults=BER,POLICY --fault-seed=N
 * --seu=RATE,SCHEME --seu-seed=N
 * --seu-scrub=CYCLES --trace=FILE[,START,END] --trace-out=FILE
 * --trace-window=N
 * --stats-json=FILE --no-skip --hang-budget=N; ignores unknown
 * arguments. Malformed values (non-numeric, NaN, negative rates,
 * unknown policy/scheme names) are a one-line fatal error with nonzero
 * exit, never a silent default.
 */
HarnessOptions parseHarnessArgs(int argc, char **argv);

/**
 * Geometric-mean helper used for figure averages. Contract: returns
 * 0.0 on an empty input (an empty figure row renders as 0, never UB),
 * and panics via WC_ASSERT on non-positive values, for which the
 * geomean is undefined.
 */
double geomean(const std::vector<double> &values);

/** Arithmetic mean (the paper reports arithmetic averages). */
double mean(const std::vector<double> &values);

} // namespace warpcomp

#endif // WARPCOMP_HARNESS_EXPERIMENT_HPP
