#include "harness/thread_pool.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace warpcomp {

ThreadPool::ThreadPool(u32 num_threads)
{
    WC_ASSERT(num_threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(num_threads);
    for (u32 i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        WC_ASSERT(!shutdown_, "submit on a shut-down pool");
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty())
                return;             // shutdown with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        std::exception_ptr err;
        try {
            job();
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (err && !firstError_)
                firstError_ = err;
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

u32
resolveThreadCount(u32 requested)
{
    if (requested >= 1)
        return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace warpcomp
