/**
 * @file
 * sgemm (Parboil) — tiled dense matrix multiply: 16x16 thread tiles
 * stage A and B panels through shared memory behind barriers and run
 * an FFMA inner loop. Address/index registers compress well; the FP
 * accumulators are high-entropy. No divergence.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeSgemm(u32 scale, u64 salt)
{
    constexpr u32 kTile = 16;               // 16x16 = 256 threads
    const u32 block = kTile * kTile;
    const u32 n = 128;                      // square matrices n x n
    const u32 tiles_per_side = n / kTile;   // 8
    const u32 grid = tiles_per_side * tiles_per_side * scale;   // 64
    const u32 k_tiles = 4;                  // depth tiles walked

    auto gmem = std::make_unique<GlobalMemory>(32ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x56E3u, salt));

    const u64 a = gmem->alloc(4ull * n * n);
    const u64 bm = gmem->alloc(4ull * n * n);
    const u64 c = gmem->alloc(4ull * n * n);
    fillRandomF32(*gmem, a, n * n, -1.0f, 1.0f, rng);
    fillRandomF32(*gmem, bm, n * n, -1.0f, 1.0f, rng);

    pushAddr(*cmem, a);         // param 0
    pushAddr(*cmem, bm);        // param 1
    pushAddr(*cmem, c);         // param 2
    cmem->push(n);              // param 3
    cmem->push(k_tiles);        // param 4
    cmem->push(tiles_per_side); // param 5

    // Shared memory: As[16][16] at 0, Bs[16][16] at 1024.
    KernelBuilder b("sgemm", 2 * kTile * kTile * 4);
    Reg p_a = loadParam(b, 0);
    Reg p_b = loadParam(b, 1);
    Reg p_c = loadParam(b, 2);
    Reg p_n = loadParam(b, 3);
    Reg p_ktiles = loadParam(b, 4);
    Reg p_tps = loadParam(b, 5);

    Reg tid = b.newReg(), bid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);

    // Thread (tx, ty) within the tile; tile (bx, by) within the grid.
    Reg tx = b.newReg(), ty = b.newReg();
    b.and_(tx, tid, KernelBuilder::imm(kTile - 1));
    b.shr(ty, tid, KernelBuilder::imm(4));
    Reg bx = b.newReg(), by = b.newReg(), tmp = b.newReg();
    // bx = bid % tps, by = (bid / tps) % tps  (tps = 8, a power of 2)
    b.and_(bx, bid, KernelBuilder::imm(7));
    b.shr(tmp, bid, KernelBuilder::imm(3));
    b.and_(by, tmp, KernelBuilder::imm(7));
    (void)p_tps;

    // Global row/col of this thread's C element.
    Reg row = b.newReg(), col = b.newReg();
    b.imad(row, by, KernelBuilder::imm(kTile), ty);
    b.imad(col, bx, KernelBuilder::imm(kTile), tx);

    Reg acc = b.newReg();
    b.movFloat(acc, 0.0f);

    Reg smA = b.newReg(), smB = b.newReg();
    b.imad(smA, ty, KernelBuilder::imm(kTile), tx);
    b.shl(smA, smA, KernelBuilder::imm(2));
    b.iadd(smB, smA, KernelBuilder::imm(
               static_cast<i32>(kTile * kTile * 4)));

    Reg kt = b.newReg();
    b.forRange(kt, KernelBuilder::imm(0), p_ktiles, 1, [&] {
        // Stage A[row][kt*16 + tx] and B[kt*16 + ty][col].
        Reg ka = b.newReg(), idx = b.newReg(), addr = b.newReg(),
            v = b.newReg();
        b.shl(ka, kt, KernelBuilder::imm(4));       // kt * 16
        b.iadd(idx, ka, tx);
        Reg ai = b.newReg();
        b.imad(ai, row, p_n, idx);
        b.imad(addr, ai, KernelBuilder::imm(4), p_a);
        b.ldg(v, addr);
        b.sts(smA, v);

        Reg brow = b.newReg(), bi = b.newReg(), baddr = b.newReg(),
            bv = b.newReg();
        b.iadd(brow, ka, ty);
        b.imad(bi, brow, p_n, col);
        b.imad(baddr, bi, KernelBuilder::imm(4), p_b);
        b.ldg(bv, baddr);
        b.sts(smB, bv);
        b.bar();

        // Inner product over the staged tile.
        Reg kk = b.newReg();
        b.forRange(kk, KernelBuilder::imm(0),
                   KernelBuilder::imm(kTile), 1, [&] {
            Reg aoff = b.newReg(), boff = b.newReg(), av = b.newReg(),
                bvv = b.newReg();
            // As[ty][kk]
            b.imad(aoff, ty, KernelBuilder::imm(kTile), kk);
            b.shl(aoff, aoff, KernelBuilder::imm(2));
            b.lds(av, aoff);
            // Bs[kk][tx]
            b.imad(boff, kk, KernelBuilder::imm(kTile), tx);
            b.shl(boff, boff, KernelBuilder::imm(2));
            b.iadd(boff, boff, KernelBuilder::imm(
                       static_cast<i32>(kTile * kTile * 4)));
            b.lds(bvv, boff);
            b.ffma(acc, av, bvv, acc);
        });
        b.bar();
    });

    Reg ci = b.newReg(), caddr = b.newReg();
    b.imad(ci, row, p_n, col);
    b.imad(caddr, ci, KernelBuilder::imm(4), p_c);
    b.stg(caddr, acc);

    return {"sgemm", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
