/**
 * @file
 * pathfinder (Rodinia) — line-by-line port of the kernel the paper
 * lists in Fig 4. Dynamic-programming shortest path over a grid whose
 * weights have a 0..9 dynamic range; thread-index addressing plus the
 * narrow input range give it the strong value similarity Sec. 3 calls
 * out, and the IN_RANGE guards give moderate branch divergence.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makePathfinder(u32 scale, u64 salt)
{
    constexpr u32 kBlockSize = 256;
    constexpr u32 kHalo = 1;
    const u32 iteration = 8;
    const u32 border = iteration * kHalo;
    const u32 small_block_cols = kBlockSize - iteration * kHalo * 2;
    const u32 num_blocks = 60 * scale;
    const u32 cols = small_block_cols * num_blocks;

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x9A7Fu, salt));

    const u64 src = gmem->alloc(4ull * cols);
    const u64 wall = gmem->alloc(4ull * cols * iteration);
    const u64 dst = gmem->alloc(4ull * cols);
    fillRandomI32(*gmem, src, cols, 0, 9, rng);
    fillRandomI32(*gmem, wall, cols * iteration, 0, 9, rng);

    pushAddr(*cmem, src);                    // param 0
    pushAddr(*cmem, wall);                   // param 1
    pushAddr(*cmem, dst);                    // param 2
    cmem->push(cols);                        // param 3
    cmem->push(iteration);                   // param 4
    cmem->push(border);                      // param 5
    cmem->push(small_block_cols);            // param 6

    // Shared memory: prev[256] at 0, result[256] at 1024.
    KernelBuilder b("pathfinder", 2 * kBlockSize * 4);
    Reg p_src = loadParam(b, 0);
    Reg p_wall = loadParam(b, 1);
    Reg p_dst = loadParam(b, 2);
    Reg p_cols = loadParam(b, 3);
    Reg p_iter = loadParam(b, 4);
    Reg p_border = loadParam(b, 5);
    Reg p_sbc = loadParam(b, 6);

    Reg tx = b.newReg(), bx = b.newReg();
    b.s2r(tx, SpecialReg::TidX);
    b.s2r(bx, SpecialReg::CtaIdX);

    Reg blk_x = b.newReg();
    b.imul(blk_x, p_sbc, bx);
    b.isub(blk_x, blk_x, p_border);
    Reg xidx = b.newReg();
    b.iadd(xidx, blk_x, tx);

    // valid = IN_RANGE(xidx, 0, cols-1)
    Reg cols_m1 = b.newReg();
    b.isub(cols_m1, p_cols, KernelBuilder::imm(1));
    Pred q0 = b.newPred(), q1 = b.newPred(), valid = b.newPred();
    b.isetp(q0, CmpOp::Ge, xidx, KernelBuilder::imm(0));
    b.isetp(q1, CmpOp::Le, xidx, cols_m1);
    b.pand(valid, q0, q1);

    Reg sm_prev = b.newReg(), sm_res = b.newReg();
    b.shl(sm_prev, tx, KernelBuilder::imm(2));
    b.iadd(sm_res, sm_prev, KernelBuilder::imm(kBlockSize * 4));

    // if (valid) prev[tx] = src[xidx]
    b.if_(valid, [&] {
        Reg ga = b.newReg(), v = b.newReg();
        b.imad(ga, xidx, KernelBuilder::imm(4), p_src);
        b.ldg(v, ga);
        b.sts(sm_prev, v);
    });
    b.bar();

    Pred computed = b.newPred();
    {
        Reg zero = b.newReg();
        b.movImm(zero, 0);
        b.isetp(computed, CmpOp::Ne, zero, KernelBuilder::imm(0));
    }

    Reg i = b.newReg();
    Reg shortest = b.newReg();
    b.forRange(i, KernelBuilder::imm(0), p_iter, 1, [&] {
        // computed = IN_RANGE(tx, i+1, BLOCKSIZE-i-2) && valid
        Reg lo = b.newReg(), hi = b.newReg();
        b.iadd(lo, i, KernelBuilder::imm(1));
        b.movImm(hi, static_cast<i32>(kBlockSize) - 2);
        b.isub(hi, hi, i);
        b.isetp(q0, CmpOp::Ge, tx, lo);
        b.isetp(q1, CmpOp::Le, tx, hi);
        b.pand(computed, q0, q1);
        b.pand(computed, computed, valid);

        b.if_(computed, [&] {
            Reg left = b.newReg(), up = b.newReg(), right = b.newReg();
            b.lds(left, sm_prev, -4);
            b.lds(up, sm_prev, 0);
            b.lds(right, sm_prev, 4);
            b.imin(shortest, left, up);
            b.imin(shortest, shortest, right);
            Reg index = b.newReg(), wga = b.newReg(), wv = b.newReg();
            b.imad(index, p_cols, i, xidx);     // cols*(startStep+i)+xidx
            b.imad(wga, index, KernelBuilder::imm(4), p_wall);
            b.ldg(wv, wga);
            b.iadd(shortest, shortest, wv);
            b.sts(sm_res, shortest);
        });
        b.bar();
        b.if_(computed, [&] {
            Reg t = b.newReg();
            b.lds(t, sm_res);
            b.sts(sm_prev, t);
        });
        b.bar();
    });

    b.if_(computed, [&] {
        Reg da = b.newReg(), r = b.newReg();
        b.imad(da, xidx, KernelBuilder::imm(4), p_dst);
        b.lds(r, sm_res);
        b.stg(da, r);
    });

    return {"pathfinder", b.build(), {kBlockSize, num_blocks},
            std::move(gmem), std::move(cmem)};
}

} // namespace warpcomp
