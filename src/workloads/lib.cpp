/**
 * @file
 * LIB (GPGPU-Sim, LIBOR Monte Carlo) — the paper notes its inputs are
 * initialized to constant values, so registers have zero dynamic range
 * and compress almost perfectly (<4,0> dominates). The port walks the
 * forward-rate arrays exactly like the original's path loop; every
 * thread computes identical values.
 */

#include "workloads/registry.hpp"

#include <bit>

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeLib(u32 scale, u64 /*salt*/)
{
    const u32 block = 192;
    const u32 grid = 60 * scale;
    const u32 nmat = 40;        // maturities walked per path

    auto gmem = std::make_unique<GlobalMemory>(32ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();

    const u64 l0 = gmem->alloc(4ull * nmat);
    const u64 lambda = gmem->alloc(4ull * nmat);
    const u64 out = gmem->alloc(4ull * block * grid);
    // Constant initialization (zero dynamic range), as in the original.
    fillConstantU32(*gmem, l0, nmat, std::bit_cast<u32>(0.051f));
    fillConstantU32(*gmem, lambda, nmat, std::bit_cast<u32>(0.2f));

    pushAddr(*cmem, l0);        // param 0
    pushAddr(*cmem, lambda);    // param 1
    pushAddr(*cmem, out);       // param 2
    cmem->push(nmat);           // param 3

    KernelBuilder b("lib");
    Reg p_l0 = loadParam(b, 0);
    Reg p_lam = loadParam(b, 1);
    Reg p_out = loadParam(b, 2);
    Reg p_nmat = loadParam(b, 3);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    const float delta = 0.25f;
    Reg f_delta = b.newReg(), accum = b.newReg(), one = b.newReg();
    b.movFloat(f_delta, delta);
    b.movFloat(accum, 0.0f);
    b.movFloat(one, 1.0f);

    Reg n = b.newReg();
    b.forRange(n, KernelBuilder::imm(0), p_nmat, 1, [&] {
        Reg la = b.newReg(), ra = b.newReg();
        b.imad(la, n, KernelBuilder::imm(4), p_lam);
        b.imad(ra, n, KernelBuilder::imm(4), p_l0);
        Reg lam = b.newReg(), rate = b.newReg();
        b.ldg(lam, la);
        b.ldg(rate, ra);
        // accum += lam * rate * delta / (1 + delta * rate)
        Reg num = b.newReg(), den = b.newReg(), rcp = b.newReg();
        b.fmul(num, lam, rate);
        b.fmul(num, num, f_delta);
        b.ffma(den, f_delta, rate, one);
        b.frcp(rcp, den);
        b.ffma(accum, num, rcp, accum);
    });

    Reg oa = b.newReg();
    b.imad(oa, gid, KernelBuilder::imm(4), p_out);
    b.stg(oa, accum);

    return {"lib", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
