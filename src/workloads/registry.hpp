/**
 * @file
 * Workload registry: canonical benchmark list (the order used on every
 * figure's x-axis) and the factory that builds a ready-to-run instance.
 */

#ifndef WARPCOMP_WORKLOADS_REGISTRY_HPP
#define WARPCOMP_WORKLOADS_REGISTRY_HPP

#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace warpcomp {

// One factory per ported benchmark. @p scale multiplies the problem
// size (1 = bench default).
WorkloadInstance makeBackprop(u32 scale);
WorkloadInstance makeBfs(u32 scale);
WorkloadInstance makeGaussian(u32 scale);
WorkloadInstance makeHotspot(u32 scale);
WorkloadInstance makeLud(u32 scale);
WorkloadInstance makeNw(u32 scale);
WorkloadInstance makePathfinder(u32 scale);
WorkloadInstance makeSrad(u32 scale);
WorkloadInstance makeDwt2d(u32 scale);
WorkloadInstance makeAes(u32 scale);
WorkloadInstance makeLib(u32 scale);
WorkloadInstance makeMum(u32 scale);
WorkloadInstance makeRay(u32 scale);
WorkloadInstance makeSpmv(u32 scale);
WorkloadInstance makeStencil(u32 scale);
WorkloadInstance makeSgemm(u32 scale);
WorkloadInstance makeKmeans(u32 scale);
WorkloadInstance makeNbody(u32 scale);
WorkloadInstance makeHisto(u32 scale);

/** Benchmark names in canonical (figure x-axis) order. */
const std::vector<std::string> &workloadNames();

/** Build a workload by name; panics on unknown names. */
WorkloadInstance makeWorkload(const std::string &name, u32 scale = 1);

} // namespace warpcomp

#endif // WARPCOMP_WORKLOADS_REGISTRY_HPP
