/**
 * @file
 * Workload registry: canonical benchmark list (the order used on every
 * figure's x-axis) and the factory that builds a ready-to-run instance.
 */

#ifndef WARPCOMP_WORKLOADS_REGISTRY_HPP
#define WARPCOMP_WORKLOADS_REGISTRY_HPP

#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace warpcomp {

// One factory per ported benchmark. @p scale multiplies the problem
// size (1 = bench default); @p salt is mixed into the workload's
// canonical input-RNG seed via mixSeed (0 = canonical inputs).
WorkloadInstance makeBackprop(u32 scale, u64 salt = 0);
WorkloadInstance makeBfs(u32 scale, u64 salt = 0);
WorkloadInstance makeGaussian(u32 scale, u64 salt = 0);
WorkloadInstance makeHotspot(u32 scale, u64 salt = 0);
WorkloadInstance makeLud(u32 scale, u64 salt = 0);
WorkloadInstance makeNw(u32 scale, u64 salt = 0);
WorkloadInstance makePathfinder(u32 scale, u64 salt = 0);
WorkloadInstance makeSrad(u32 scale, u64 salt = 0);
WorkloadInstance makeDwt2d(u32 scale, u64 salt = 0);
WorkloadInstance makeAes(u32 scale, u64 salt = 0);
WorkloadInstance makeLib(u32 scale, u64 salt = 0);
WorkloadInstance makeMum(u32 scale, u64 salt = 0);
WorkloadInstance makeRay(u32 scale, u64 salt = 0);
WorkloadInstance makeSpmv(u32 scale, u64 salt = 0);
WorkloadInstance makeStencil(u32 scale, u64 salt = 0);
WorkloadInstance makeSgemm(u32 scale, u64 salt = 0);
WorkloadInstance makeKmeans(u32 scale, u64 salt = 0);
WorkloadInstance makeNbody(u32 scale, u64 salt = 0);
WorkloadInstance makeHisto(u32 scale, u64 salt = 0);

/** Benchmark names in canonical (figure x-axis) order. */
const std::vector<std::string> &workloadNames();

/**
 * Build a workload by name; panics on unknown names. Thread-safe:
 * every instance owns its memory image and RNG streams, so concurrent
 * builds of any (name, scale, salt) combinations never interact.
 */
WorkloadInstance makeWorkload(const std::string &name, u32 scale = 1,
                              u64 salt = 0);

} // namespace warpcomp

#endif // WARPCOMP_WORKLOADS_REGISTRY_HPP
