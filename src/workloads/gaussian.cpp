/**
 * @file
 * gaussian (Rodinia) — the Fan2 elimination-update kernel: subtract a
 * scaled pivot row from the trailing submatrix. Mostly uniform FP work;
 * divergence only on the submatrix boundary test.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeGaussian(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 size = 128;                // matrix dimension
    const u32 t = 2;                     // pivot step being eliminated
    const u32 grid = (size * size + block - 1) / block * scale;

    auto gmem = std::make_unique<GlobalMemory>(32ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x6A0u, salt));

    const u64 a = gmem->alloc(4ull * size * size);
    const u64 m = gmem->alloc(4ull * size);
    fillRandomF32(*gmem, a, size * size, 0.0f, 10.0f, rng);
    fillRandomF32(*gmem, m, size, -1.0f, 1.0f, rng);

    pushAddr(*cmem, a);         // param 0
    pushAddr(*cmem, m);         // param 1
    cmem->push(size);           // param 2
    cmem->push(t);              // param 3

    KernelBuilder b("gaussian");
    Reg p_a = loadParam(b, 0);
    Reg p_m = loadParam(b, 1);
    Reg p_size = loadParam(b, 2);
    Reg p_t = loadParam(b, 3);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    // i = gid / (size - t), j = gid % (size - t) computed by loads of a
    // precomputed reciprocal is overkill; use shift-free div via loop?
    // size - t is a parameter; emulate div/mod with multiply-shift for
    // the fixed configuration (size - t = 126) precomputed on the host.
    const u32 span = size - t;
    const u32 magic = (1u << 22) / span + 1;   // floor-div for gid < 2^22
    Reg i = b.newReg(), j = b.newReg(), tmp = b.newReg();
    b.imul(tmp, gid, KernelBuilder::imm(static_cast<i32>(magic)));
    b.shr(i, tmp, KernelBuilder::imm(22));
    Reg span_r = b.newReg();
    b.movImm(span_r, static_cast<i32>(span));
    Reg ispan = b.newReg();
    b.imul(ispan, i, span_r);
    b.isub(j, gid, ispan);

    Pred inb = b.newPred(), jb = b.newPred();
    Reg limit_i = b.newReg();
    b.isub(limit_i, p_size, KernelBuilder::imm(1));
    b.isub(limit_i, limit_i, p_t);           // size - 1 - t
    b.isetp(inb, CmpOp::Lt, i, limit_i);
    Reg limit_j = b.newReg();
    b.isub(limit_j, p_size, p_t);            // size - t
    b.isetp(jb, CmpOp::Lt, j, limit_j);
    b.pand(inb, inb, jb);

    b.if_(inb, [&] {
        // a[(i+1+t)*size + (j+t)] -= m[i+1+t] * a[t*size + (j+t)]
        Reg row = b.newReg(), col = b.newReg();
        b.iadd(row, i, KernelBuilder::imm(1));
        b.iadd(row, row, p_t);
        b.iadd(col, j, p_t);

        Reg ma = b.newReg(), mv = b.newReg();
        b.imad(ma, row, KernelBuilder::imm(4), p_m);
        b.ldg(mv, ma);

        Reg pivot_idx = b.newReg(), pivot_a = b.newReg(),
            pv = b.newReg();
        b.imad(pivot_idx, p_t, p_size, col);
        b.imad(pivot_a, pivot_idx, KernelBuilder::imm(4), p_a);
        b.ldg(pv, pivot_a);

        Reg idx = b.newReg(), addr = b.newReg(), av = b.newReg();
        b.imad(idx, row, p_size, col);
        b.imad(addr, idx, KernelBuilder::imm(4), p_a);
        b.ldg(av, addr);

        Reg neg = b.newReg(), prod = b.newReg();
        b.movFloat(neg, -1.0f);
        b.fmul(prod, mv, pv);
        b.ffma(av, prod, neg, av);
        b.stg(addr, av);
    });

    return {"gaussian", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
