/**
 * @file
 * hotspot (Rodinia) — thermal stencil. Temperatures live in a narrow
 * band around 330K, so neighboring float bit patterns are close and the
 * <4,2> choice captures most writes; boundary clamping adds light
 * divergence at tile edges.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeHotspot(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid_blocks = 60 * scale;
    const u32 width = 256;                       // row length
    const u32 rows = grid_blocks;                // one row per CTA
    const u32 cells = width * rows;

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x407u, salt));

    const u64 temp = gmem->alloc(4ull * cells);
    const u64 power = gmem->alloc(4ull * cells);
    const u64 out = gmem->alloc(4ull * cells);
    fillRandomF32(*gmem, temp, cells, 323.0f, 341.0f, rng);
    fillRandomF32(*gmem, power, cells, 0.0f, 0.02f, rng);

    pushAddr(*cmem, temp);      // param 0
    pushAddr(*cmem, power);     // param 1
    pushAddr(*cmem, out);       // param 2
    cmem->push(width);          // param 3
    cmem->push(rows);           // param 4

    KernelBuilder b("hotspot");
    Reg p_temp = loadParam(b, 0);
    Reg p_power = loadParam(b, 1);
    Reg p_out = loadParam(b, 2);
    Reg p_width = loadParam(b, 3);
    Reg p_rows = loadParam(b, 4);

    Reg tid = b.newReg(), bid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    // col = tid, row = ctaid (one CTA per row, width == blockDim).
    Reg gid = b.newReg();
    b.imad(gid, bid, p_width, tid);

    Reg ta = b.newReg(), t = b.newReg();
    b.imad(ta, gid, KernelBuilder::imm(4), p_temp);
    b.ldg(t, ta);
    Reg pa = b.newReg(), p = b.newReg();
    b.imad(pa, gid, KernelBuilder::imm(4), p_power);
    b.ldg(p, pa);

    // Neighbors with clamped indices (divergent at the borders).
    Reg east = b.newReg(), west = b.newReg(), north = b.newReg(),
        south = b.newReg();
    Reg wm1 = b.newReg(), rm1 = b.newReg();
    b.isub(wm1, p_width, KernelBuilder::imm(1));
    b.isub(rm1, p_rows, KernelBuilder::imm(1));

    Pred at_edge = b.newPred();
    // east
    b.isetp(at_edge, CmpOp::Lt, tid, wm1);
    b.ifElse_(at_edge,
              [&] { b.ldg(east, ta, 4); },
              [&] { b.mov(east, t); });
    // west
    b.isetp(at_edge, CmpOp::Gt, tid, KernelBuilder::imm(0));
    b.ifElse_(at_edge,
              [&] { b.ldg(west, ta, -4); },
              [&] { b.mov(west, t); });
    // south (next row)
    b.isetp(at_edge, CmpOp::Lt, bid, rm1);
    b.ifElse_(at_edge,
              [&] {
                  Reg sa = b.newReg();
                  b.imad(sa, p_width, KernelBuilder::imm(4), ta);
                  b.ldg(south, sa);
              },
              [&] { b.mov(south, t); });
    // north (previous row)
    b.isetp(at_edge, CmpOp::Gt, bid, KernelBuilder::imm(0));
    b.ifElse_(at_edge,
              [&] {
                  Reg na = b.newReg(), off = b.newReg();
                  b.imul(off, p_width, KernelBuilder::imm(4));
                  b.isub(na, ta, off);
                  b.ldg(north, na);
              },
              [&] { b.mov(north, t); });

    // out = t + c * (n + s + e + w - 4t + p / cap)
    Reg sum = b.newReg(), c = b.newReg(), four = b.newReg();
    b.fadd(sum, north, south);
    b.fadd(sum, sum, east);
    b.fadd(sum, sum, west);
    b.movFloat(four, -4.0f);
    b.ffma(sum, four, t, sum);
    b.fadd(sum, sum, p);
    b.movFloat(c, 0.06f);
    Reg result = b.newReg();
    b.ffma(result, c, sum, t);

    Reg oa = b.newReg();
    b.imad(oa, gid, KernelBuilder::imm(4), p_out);
    b.stg(oa, result);

    return {"hotspot", b.build(), {block, grid_blocks}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
