/**
 * @file
 * RAY (GPGPU-Sim) — primary-ray sphere intersection: each thread owns a
 * pixel, tests its ray against a small sphere set and shades the
 * nearest hit. Per-pixel ray directions are smooth (compressible) but
 * hit/miss tests diverge mid-warp.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeRay(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 48 * scale;
    const u32 nspheres = 6;

    auto gmem = std::make_unique<GlobalMemory>(32ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x4A7u, salt));

    // Sphere records: cx, cy, cz, r^2 packed as 4 floats.
    const u64 spheres = gmem->alloc(4ull * nspheres * 4);
    for (u32 s = 0; s < nspheres; ++s) {
        gmem->writeF32(spheres + 16ull * s + 0,
                       static_cast<float>(rng.nextRange(-8, 8)));
        gmem->writeF32(spheres + 16ull * s + 4,
                       static_cast<float>(rng.nextRange(-8, 8)));
        gmem->writeF32(spheres + 16ull * s + 8,
                       static_cast<float>(rng.nextRange(12, 24)));
        gmem->writeF32(spheres + 16ull * s + 12,
                       static_cast<float>(rng.nextRange(4, 25)));
    }
    const u64 image = gmem->alloc(4ull * block * grid);

    pushAddr(*cmem, spheres);   // param 0
    pushAddr(*cmem, image);     // param 1
    cmem->push(nspheres);       // param 2

    KernelBuilder b("ray");
    Reg p_sph = loadParam(b, 0);
    Reg p_img = loadParam(b, 1);
    Reg p_ns = loadParam(b, 2);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    // Pixel coordinates on a 128-wide image plane, normalized dirs.
    Reg px = b.newReg(), py = b.newReg();
    b.and_(px, gid, KernelBuilder::imm(127));
    b.shr(py, gid, KernelBuilder::imm(7));
    Reg fx = b.newReg(), fy = b.newReg(), sc = b.newReg(),
        off = b.newReg();
    b.i2f(fx, px);
    b.i2f(fy, py);
    b.movFloat(sc, 1.0f / 64.0f);
    b.movFloat(off, -1.0f);
    b.ffma(fx, fx, sc, off);    // dx in [-1, 1)
    b.ffma(fy, fy, sc, off);

    Reg best = b.newReg(), shade = b.newReg();
    b.movFloat(best, 1.0e9f);
    b.movFloat(shade, 0.0f);

    Reg s = b.newReg();
    b.forRange(s, KernelBuilder::imm(0), p_ns, 1, [&] {
        Reg sa = b.newReg();
        b.shl(sa, s, KernelBuilder::imm(4));
        b.iadd(sa, sa, p_sph);
        Reg cx = b.newReg(), cy = b.newReg(), cz = b.newReg(),
            r2 = b.newReg();
        b.ldg(cx, sa, 0);
        b.ldg(cy, sa, 4);
        b.ldg(cz, sa, 8);
        b.ldg(r2, sa, 12);

        // Closest approach of ray (dir ~ (fx, fy, 1)) to the center:
        // t ~ dot(c, d); miss when |c - t*d|^2 > r^2 (unnormalized
        // approximation keeps the FP pipeline busy without sqrt).
        Reg tpar = b.newReg();
        b.fmul(tpar, cx, fx);
        b.ffma(tpar, cy, fy, tpar);
        b.fadd(tpar, tpar, cz);

        Reg dx = b.newReg(), dy = b.newReg(), dz = b.newReg();
        Reg neg = b.newReg();
        b.movFloat(neg, -1.0f);
        b.ffma(dx, tpar, fx, cx);       // cx + t*fx (sign folded below)
        b.fmul(dx, dx, neg);
        b.ffma(dx, tpar, fx, dx);       // approx cx - t*fx residual
        b.ffma(dy, tpar, fy, cy);
        b.fmul(dy, dy, neg);
        b.ffma(dy, tpar, fy, dy);
        b.ffma(dz, tpar, neg, cz);      // cz - t

        Reg dist2 = b.newReg();
        b.fmul(dist2, dx, dx);
        b.ffma(dist2, dy, dy, dist2);
        b.ffma(dist2, dz, dz, dist2);

        Pred hit = b.newPred(), nearer = b.newPred();
        b.fsetp(hit, CmpOp::Lt, dist2, r2);
        b.fsetp(nearer, CmpOp::Lt, tpar, best);
        b.pand(hit, hit, nearer);
        b.if_(hit, [&] {
            b.mov(best, tpar);
            // shade = 1 - dist2 / r2
            Reg rc = b.newReg(), q = b.newReg(), one = b.newReg();
            b.frcp(rc, r2);
            b.fmul(q, dist2, rc);
            b.movFloat(one, 1.0f);
            Reg negq = b.newReg(), neg1 = b.newReg();
            b.movFloat(neg1, -1.0f);
            b.fmul(negq, q, neg1);
            b.fadd(shade, one, negq);
        });
    });

    Reg oa = b.newReg();
    b.imad(oa, gid, KernelBuilder::imm(4), p_img);
    b.stg(oa, shade);

    return {"ray", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
