/**
 * @file
 * dwt2d (Rodinia) — 5/3 lifting step of the discrete wavelet transform.
 * Even lanes produce low-pass coefficients, odd lanes high-pass ones:
 * the lane-parity split diverges inside every warp, which is why dwt2d
 * loses compressed registers during divergence in Fig 12.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeDwt2d(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 56 * scale;
    const u32 samples = block * grid;

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0xD27u, salt));

    const u64 in = gmem->alloc(4ull * (samples + 2));
    const u64 out = gmem->alloc(4ull * samples);
    fillRandomI32(*gmem, in, samples + 2, 0, 255, rng);

    pushAddr(*cmem, in);        // param 0
    pushAddr(*cmem, out);       // param 1

    KernelBuilder b("dwt2d");
    Reg p_in = loadParam(b, 0);
    Reg p_out = loadParam(b, 1);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    Reg addr = b.newReg();
    b.imad(addr, gid, KernelBuilder::imm(4), p_in);
    Reg center = b.newReg(), left = b.newReg(), right = b.newReg();
    b.ldg(center, addr, 4);          // in[gid + 1]
    b.ldg(left, addr, 0);            // in[gid]
    b.ldg(right, addr, 8);           // in[gid + 2]

    Reg parity = b.newReg();
    b.and_(parity, gid, KernelBuilder::imm(1));
    Pred odd = b.newPred();
    b.isetp(odd, CmpOp::Ne, parity, KernelBuilder::imm(0));

    Reg coeff = b.newReg();
    b.ifElse_(odd, [&] {
        // High-pass: d = c - (left + right) / 2
        Reg s = b.newReg(), half = b.newReg();
        b.iadd(s, left, right);
        b.sra(half, s, KernelBuilder::imm(1));
        b.isub(coeff, center, half);
    }, [&] {
        // Low-pass: s = c + (left + right + 2) / 4
        Reg s = b.newReg(), q = b.newReg();
        b.iadd(s, left, right);
        b.iadd(s, s, KernelBuilder::imm(2));
        b.sra(q, s, KernelBuilder::imm(2));
        b.iadd(coeff, center, q);
    });

    Reg oa = b.newReg();
    b.imad(oa, gid, KernelBuilder::imm(4), p_out);
    b.stg(oa, coeff);

    return {"dwt2d", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
