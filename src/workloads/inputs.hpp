/**
 * @file
 * Deterministic input-buffer generators. The dynamic range of each
 * buffer is part of the experiment: value similarity (Sec. 3) depends
 * directly on it, so generators take explicit ranges.
 */

#ifndef WARPCOMP_WORKLOADS_INPUTS_HPP
#define WARPCOMP_WORKLOADS_INPUTS_HPP

#include "common/rng.hpp"
#include "mem/memory.hpp"

namespace warpcomp {

/** Fill @p count words with uniform integers in [lo, hi]. */
void fillRandomI32(GlobalMemory &gmem, u64 base, u32 count, i32 lo, i32 hi,
                   Rng &rng);

/** Fill @p count words with one constant (LIB-style zero range). */
void fillConstantU32(GlobalMemory &gmem, u64 base, u32 count, u32 value);

/** Fill @p count words with uniform floats in [lo, hi). */
void fillRandomF32(GlobalMemory &gmem, u64 base, u32 count, float lo,
                   float hi, Rng &rng);

/** Fill with an arithmetic sequence start, start+step, ... */
void fillIota(GlobalMemory &gmem, u64 base, u32 count, i32 start, i32 step);

} // namespace warpcomp

#endif // WARPCOMP_WORKLOADS_INPUTS_HPP
