#include "workloads/registry.hpp"

#include "common/log.hpp"

namespace warpcomp {

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "backprop", "bfs", "gaussian", "hotspot", "lud", "nw",
        "pathfinder", "srad", "dwt2d", "aes", "lib", "mum", "ray",
        "spmv", "stencil", "sgemm", "kmeans", "nbody", "histo",
    };
    return names;
}

WorkloadInstance
makeWorkload(const std::string &name, u32 scale)
{
    WC_ASSERT(scale >= 1, "workload scale must be at least 1");
    if (name == "backprop") return makeBackprop(scale);
    if (name == "bfs") return makeBfs(scale);
    if (name == "gaussian") return makeGaussian(scale);
    if (name == "hotspot") return makeHotspot(scale);
    if (name == "lud") return makeLud(scale);
    if (name == "nw") return makeNw(scale);
    if (name == "pathfinder") return makePathfinder(scale);
    if (name == "srad") return makeSrad(scale);
    if (name == "dwt2d") return makeDwt2d(scale);
    if (name == "aes") return makeAes(scale);
    if (name == "lib") return makeLib(scale);
    if (name == "mum") return makeMum(scale);
    if (name == "ray") return makeRay(scale);
    if (name == "spmv") return makeSpmv(scale);
    if (name == "stencil") return makeStencil(scale);
    if (name == "sgemm") return makeSgemm(scale);
    if (name == "kmeans") return makeKmeans(scale);
    if (name == "nbody") return makeNbody(scale);
    if (name == "histo") return makeHisto(scale);
    WC_FATAL("unknown workload '" << name << "'");
}

} // namespace warpcomp
