#include "workloads/registry.hpp"

#include "common/log.hpp"
#include "frontend/frontend.hpp"
#include "frontend/twins.hpp"

namespace warpcomp {

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "backprop", "bfs", "gaussian", "hotspot", "lud", "nw",
        "pathfinder", "srad", "dwt2d", "aes", "lib", "mum", "ray",
        "spmv", "stencil", "sgemm", "kmeans", "nbody", "histo",
    };
    return names;
}

WorkloadInstance
makeWorkload(const std::string &name, u32 scale, u64 salt)
{
    WC_ASSERT(scale >= 1, "workload scale must be at least 1");
    // Binary kernel images (--kernel=FILE -> "file:FILE[,entry=SYM]").
    if (isKernelFileSpec(name))
        return makeKernelFileWorkload(name, scale, salt);
    // DSL twins of the checked-in RV32 example kernels. Not part of
    // workloadNames(): the figure suite is unchanged; these exist for
    // the DSL-vs-binary differential tests and ad-hoc runs.
    if (name == "vecadd") return makeVecaddTwin(scale, salt);
    if (name == "saxpy") return makeSaxpyTwin(scale, salt);
    if (name == "reduction") return makeReductionTwin(scale, salt);
    if (name == "backprop") return makeBackprop(scale, salt);
    if (name == "bfs") return makeBfs(scale, salt);
    if (name == "gaussian") return makeGaussian(scale, salt);
    if (name == "hotspot") return makeHotspot(scale, salt);
    if (name == "lud") return makeLud(scale, salt);
    if (name == "nw") return makeNw(scale, salt);
    if (name == "pathfinder") return makePathfinder(scale, salt);
    if (name == "srad") return makeSrad(scale, salt);
    if (name == "dwt2d") return makeDwt2d(scale, salt);
    if (name == "aes") return makeAes(scale, salt);
    if (name == "lib") return makeLib(scale, salt);
    if (name == "mum") return makeMum(scale, salt);
    if (name == "ray") return makeRay(scale, salt);
    if (name == "spmv") return makeSpmv(scale, salt);
    if (name == "stencil") return makeStencil(scale, salt);
    if (name == "sgemm") return makeSgemm(scale, salt);
    if (name == "kmeans") return makeKmeans(scale, salt);
    if (name == "nbody") return makeNbody(scale, salt);
    if (name == "histo") return makeHisto(scale, salt);
    WC_FATAL("unknown workload '" << name << "'");
}

} // namespace warpcomp
