/**
 * @file
 * BFS (Rodinia) — one frontier-expansion level of breadth-first search
 * over a random graph. The frontier test and the per-node degree loop
 * both diverge heavily, and neighbor ids are high-entropy: this is one
 * of the benchmarks whose compressed-register share drops most during
 * divergence (Fig 12).
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeBfs(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 48 * scale;
    const u32 nodes = block * grid;
    const u32 max_degree = 8;

    auto gmem = std::make_unique<GlobalMemory>(128ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0xBF5u, salt));

    // CSR layout with random degrees 0..max_degree.
    std::vector<u32> rowptr(nodes + 1);
    rowptr[0] = 0;
    for (u32 n = 0; n < nodes; ++n)
        rowptr[n + 1] = rowptr[n] + rng.nextU32(max_degree + 1);
    const u32 edges = rowptr[nodes];

    const u64 g_rowptr = gmem->alloc(4ull * (nodes + 1));
    const u64 g_edges = gmem->alloc(4ull * (edges ? edges : 1));
    const u64 g_frontier = gmem->alloc(4ull * nodes);
    const u64 g_next = gmem->alloc(4ull * nodes);
    const u64 g_visited = gmem->alloc(4ull * nodes);
    const u64 g_cost = gmem->alloc(4ull * nodes);

    for (u32 n = 0; n <= nodes; ++n)
        gmem->write32(g_rowptr + 4ull * n, rowptr[n]);
    for (u32 e = 0; e < edges; ++e)
        gmem->write32(g_edges + 4ull * e, rng.nextU32(nodes));
    for (u32 n = 0; n < nodes; ++n) {
        const bool in_frontier = rng.nextBool(0.5);
        gmem->write32(g_frontier + 4ull * n, in_frontier ? 1 : 0);
        gmem->write32(g_visited + 4ull * n, in_frontier ? 1 : 0);
        gmem->write32(g_cost + 4ull * n, in_frontier ? 1 : 0);
    }

    pushAddr(*cmem, g_rowptr);      // param 0
    pushAddr(*cmem, g_edges);       // param 1
    pushAddr(*cmem, g_frontier);    // param 2
    pushAddr(*cmem, g_next);        // param 3
    pushAddr(*cmem, g_visited);     // param 4
    pushAddr(*cmem, g_cost);        // param 5

    KernelBuilder b("bfs");
    Reg p_row = loadParam(b, 0);
    Reg p_edges = loadParam(b, 1);
    Reg p_front = loadParam(b, 2);
    Reg p_next = loadParam(b, 3);
    Reg p_vis = loadParam(b, 4);
    Reg p_cost = loadParam(b, 5);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    Reg fa = b.newReg(), fv = b.newReg();
    b.imad(fa, gid, KernelBuilder::imm(4), p_front);
    b.ldg(fv, fa);
    Pred in_front = b.newPred();
    b.isetp(in_front, CmpOp::Ne, fv, KernelBuilder::imm(0));

    b.if_(in_front, [&] {
        b.stg(fa, KernelBuilder::imm(0));
        Reg ra = b.newReg(), start = b.newReg(), end = b.newReg();
        b.imad(ra, gid, KernelBuilder::imm(4), p_row);
        b.ldg(start, ra, 0);
        b.ldg(end, ra, 4);
        Reg mycost = b.newReg(), ca = b.newReg();
        b.imad(ca, gid, KernelBuilder::imm(4), p_cost);
        b.ldg(mycost, ca);
        Reg newcost = b.newReg();
        b.iadd(newcost, mycost, KernelBuilder::imm(1));

        Reg e = b.newReg();
        b.forRange(e, start, end, 1, [&] {
            Reg ea = b.newReg(), nbr = b.newReg();
            b.imad(ea, e, KernelBuilder::imm(4), p_edges);
            b.ldg(nbr, ea);
            Reg va = b.newReg(), vis = b.newReg();
            b.imad(va, nbr, KernelBuilder::imm(4), p_vis);
            b.ldg(vis, va);
            Pred unvisited = b.newPred();
            b.isetp(unvisited, CmpOp::Eq, vis, KernelBuilder::imm(0));
            b.if_(unvisited, [&] {
                Reg na = b.newReg(), nca = b.newReg();
                b.imad(na, nbr, KernelBuilder::imm(4), p_next);
                b.stg(na, KernelBuilder::imm(1));
                b.imad(nca, nbr, KernelBuilder::imm(4), p_cost);
                b.stg(nca, newcost);
            });
        });
    });

    return {"bfs", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
