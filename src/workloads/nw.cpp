/**
 * @file
 * nw (Rodinia, Needleman-Wunsch) — anti-diagonal update of the
 * alignment score matrix: score = max(nw + sub, w - penalty,
 * n - penalty). Small-integer scores give strong value similarity;
 * the in-bounds test adds light divergence.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeNw(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 56 * scale;
    const u32 cells = block * grid;
    const i32 penalty = 10;

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x3Bu, salt));

    const u64 ref = gmem->alloc(4ull * cells);       // substitution scores
    const u64 north = gmem->alloc(4ull * (cells + 1));
    const u64 west = gmem->alloc(4ull * (cells + 1));
    const u64 nwest = gmem->alloc(4ull * (cells + 1));
    const u64 out = gmem->alloc(4ull * cells);
    fillRandomI32(*gmem, ref, cells, -10, 10, rng);
    fillRandomI32(*gmem, north, cells + 1, -60, 0, rng);
    fillRandomI32(*gmem, west, cells + 1, -60, 0, rng);
    fillRandomI32(*gmem, nwest, cells + 1, -60, 0, rng);

    pushAddr(*cmem, ref);       // param 0
    pushAddr(*cmem, north);     // param 1
    pushAddr(*cmem, west);      // param 2
    pushAddr(*cmem, nwest);     // param 3
    pushAddr(*cmem, out);       // param 4
    cmem->push(cells);          // param 5
    cmem->push(static_cast<u32>(penalty)); // param 6

    KernelBuilder b("nw");
    Reg p_ref = loadParam(b, 0);
    Reg p_n = loadParam(b, 1);
    Reg p_w = loadParam(b, 2);
    Reg p_nw = loadParam(b, 3);
    Reg p_out = loadParam(b, 4);
    Reg p_cells = loadParam(b, 5);
    Reg p_pen = loadParam(b, 6);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    Pred inb = b.newPred();
    b.isetp(inb, CmpOp::Lt, gid, p_cells);
    b.if_(inb, [&] {
        Reg off = b.newReg();
        b.shl(off, gid, KernelBuilder::imm(2));
        Reg ra = b.newReg(), na = b.newReg(), wa = b.newReg(),
            da = b.newReg();
        b.iadd(ra, off, p_ref);
        b.iadd(na, off, p_n);
        b.iadd(wa, off, p_w);
        b.iadd(da, off, p_nw);

        Reg sub = b.newReg(), sn = b.newReg(), sw = b.newReg(),
            sd = b.newReg();
        b.ldg(sub, ra);
        b.ldg(sn, na);
        b.ldg(sw, wa);
        b.ldg(sd, da);

        Reg diag = b.newReg(), up = b.newReg(), left = b.newReg();
        b.iadd(diag, sd, sub);
        b.isub(up, sn, p_pen);
        b.isub(left, sw, p_pen);
        Reg score = b.newReg();
        b.imax(score, diag, up);
        b.imax(score, score, left);

        Reg oa = b.newReg();
        b.iadd(oa, off, p_out);
        b.stg(oa, score);
    });

    return {"nw", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
