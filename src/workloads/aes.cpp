/**
 * @file
 * AES (GPGPU-Sim) — T-table round transformation over a random state.
 * No branches at all (the paper marks AES's divergent bars N/A); state
 * words are high-entropy so their writes land in the random bin, while
 * the index/address registers still compress.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeAes(u32 scale, u64 salt)
{
    const u32 block = 128;
    const u32 grid = 48 * scale;
    const u32 rounds = 4;
    const u32 words = block * grid * 4;

    auto gmem = std::make_unique<GlobalMemory>(32ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0xAE5u, salt));

    const u64 state = gmem->alloc(4ull * words);
    const u64 ttab = gmem->alloc(4ull * 256);
    const u64 rkey = gmem->alloc(4ull * (rounds + 1) * 4);
    fillRandomI32(*gmem, state, words, INT32_MIN, INT32_MAX, rng);
    fillRandomI32(*gmem, ttab, 256, INT32_MIN, INT32_MAX, rng);
    fillRandomI32(*gmem, rkey, (rounds + 1) * 4, INT32_MIN, INT32_MAX,
                  rng);

    pushAddr(*cmem, state);     // param 0
    pushAddr(*cmem, ttab);      // param 1
    pushAddr(*cmem, rkey);      // param 2

    KernelBuilder b("aes");
    Reg p_state = loadParam(b, 0);
    Reg p_ttab = loadParam(b, 1);
    Reg p_rkey = loadParam(b, 2);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    // Load the 4-word state block of this thread.
    Reg base = b.newReg();
    b.shl(base, gid, KernelBuilder::imm(4));        // gid * 16 bytes
    b.iadd(base, base, p_state);
    Reg s0 = b.newReg(), s1 = b.newReg(), s2 = b.newReg(),
        s3 = b.newReg();
    b.ldg(s0, base, 0);
    b.ldg(s1, base, 4);
    b.ldg(s2, base, 8);
    b.ldg(s3, base, 12);

    auto tlookup = [&](Reg dst, Reg word, i32 shift) {
        Reg idx = b.newReg(), addr = b.newReg();
        b.shr(idx, word, KernelBuilder::imm(shift));
        b.and_(idx, idx, KernelBuilder::imm(0xFF));
        b.imad(addr, idx, KernelBuilder::imm(4), p_ttab);
        b.ldg(dst, addr);
    };

    Reg r = b.newReg();
    b.forRange(r, KernelBuilder::imm(0), KernelBuilder::imm(
                   static_cast<i32>(rounds)), 1, [&] {
        Reg ka = b.newReg(), k0 = b.newReg();
        b.shl(ka, r, KernelBuilder::imm(4));
        b.iadd(ka, ka, p_rkey);
        b.ldg(k0, ka);

        Reg t0 = b.newReg(), t1 = b.newReg();
        tlookup(t0, s0, 0);
        tlookup(t1, s1, 8);
        Reg n0 = b.newReg();
        b.xor_(n0, t0, t1);
        b.xor_(n0, n0, k0);

        tlookup(t0, s2, 16);
        tlookup(t1, s3, 24);
        Reg n1 = b.newReg();
        b.xor_(n1, t0, t1);
        b.xor_(n1, n1, k0);

        // Rotate the state.
        Reg tmp = b.newReg();
        b.mov(tmp, s0);
        b.mov(s0, n0);
        b.mov(s2, n1);
        b.xor_(s1, s1, n0);
        b.xor_(s3, s3, tmp);
    });

    b.stg(base, s0, 0);
    b.stg(base, s1, 4);
    b.stg(base, s2, 8);
    b.stg(base, s3, 12);

    return {"aes", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
