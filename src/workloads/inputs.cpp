#include "workloads/inputs.hpp"

#include <bit>

#include "common/log.hpp"
#include "workloads/workload.hpp"

namespace warpcomp {

u32
pushAddr(ConstantMemory &cmem, u64 addr)
{
    WC_ASSERT(addr <= 0xFFFFFFFFull,
              "buffer address exceeds the 32-bit register address space");
    return cmem.push(static_cast<u32>(addr));
}

void
fillRandomI32(GlobalMemory &gmem, u64 base, u32 count, i32 lo, i32 hi,
              Rng &rng)
{
    for (u32 i = 0; i < count; ++i)
        gmem.write32(base + 4ull * i,
                     static_cast<u32>(rng.nextRange(lo, hi)));
}

void
fillConstantU32(GlobalMemory &gmem, u64 base, u32 count, u32 value)
{
    for (u32 i = 0; i < count; ++i)
        gmem.write32(base + 4ull * i, value);
}

void
fillRandomF32(GlobalMemory &gmem, u64 base, u32 count, float lo, float hi,
              Rng &rng)
{
    for (u32 i = 0; i < count; ++i) {
        const float v = lo + static_cast<float>(rng.nextDouble()) *
            (hi - lo);
        gmem.writeF32(base + 4ull * i, v);
    }
}

void
fillIota(GlobalMemory &gmem, u64 base, u32 count, i32 start, i32 step)
{
    i32 v = start;
    for (u32 i = 0; i < count; ++i) {
        gmem.write32(base + 4ull * i, static_cast<u32>(v));
        v += step;
    }
}

} // namespace warpcomp
