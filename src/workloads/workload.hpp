/**
 * @file
 * Workload abstraction: a kernel ported to the warpcomp ISA together
 * with its initialized memory image and launch dimensions. The fifteen
 * workloads mirror the register-value behaviour of the Rodinia /
 * Parboil / GPGPU-Sim benchmarks the paper evaluates (see DESIGN.md
 * substitution table).
 */

#ifndef WARPCOMP_WORKLOADS_WORKLOAD_HPP
#define WARPCOMP_WORKLOADS_WORKLOAD_HPP

#include <memory>
#include <string>

#include "isa/builder.hpp"
#include "mem/memory.hpp"
#include "sim/functional.hpp"

namespace warpcomp {

/** A ready-to-run workload: kernel + inputs + launch shape. */
struct WorkloadInstance
{
    std::string name;
    Kernel kernel;
    LaunchDims dims;
    std::unique_ptr<GlobalMemory> gmem;
    std::unique_ptr<ConstantMemory> cmem;
    /** Which frontend produced the kernel: "dsl" (KernelBuilder
     *  workloads) or "rv32" (binary images via `--kernel`). */
    std::string frontend = "dsl";
    /** SHA-256 of the binary image for "rv32" kernels; empty for DSL. */
    std::string imageSha;
};

/** Load 32-bit kernel parameter @p index from the constant bank. */
inline Reg
loadParam(KernelBuilder &b, u32 index)
{
    Reg r = b.newReg();
    b.ldc(r, KernelBuilder::imm(0), static_cast<i32>(index * 4));
    return r;
}

/** Push a buffer base address as a kernel parameter (32-bit space). */
u32 pushAddr(ConstantMemory &cmem, u64 addr);

} // namespace warpcomp

#endif // WARPCOMP_WORKLOADS_WORKLOAD_HPP
