/**
 * @file
 * histo (Parboil-style) — per-thread histogram binning without
 * atomics: thread t of each CTA counts occurrences of bin t in the
 * CTA's input chunk. The bin-match test is a guarded increment, so
 * almost every instruction runs fully predicated with a sparse
 * effective mask — the predication-heavy corner of the design space.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeHisto(u32 scale, u64 salt)
{
    const u32 block = 256;          // one thread per bin
    const u32 grid = 48 * scale;
    const u32 chunk = 256;          // values scanned per CTA

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x4157u, salt));

    const u64 data = gmem->alloc(4ull * chunk * grid);
    const u64 hist = gmem->alloc(4ull * block * grid);
    fillRandomI32(*gmem, data, chunk * grid, 0, block - 1, rng);

    pushAddr(*cmem, data);      // param 0
    pushAddr(*cmem, hist);      // param 1
    cmem->push(chunk);          // param 2

    KernelBuilder b("histo");
    Reg p_data = loadParam(b, 0);
    Reg p_hist = loadParam(b, 1);
    Reg p_chunk = loadParam(b, 2);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);

    Reg base = b.newReg();
    b.imul(base, bid, p_chunk);
    b.imad(base, base, KernelBuilder::imm(4), p_data);

    Reg count = b.newReg();
    b.movImm(count, 0);

    Reg i = b.newReg();
    Pred mine = b.newPred();
    b.forRange(i, KernelBuilder::imm(0), p_chunk, 1, [&] {
        Reg va = b.newReg(), v = b.newReg();
        b.imad(va, i, KernelBuilder::imm(4), base);
        b.ldg(v, va);
        b.isetp(mine, CmpOp::Eq, v, tid);
        // Predicated increment: typically 0-2 lanes active.
        b.predicated(mine, false, [&] {
            b.iadd(count, count, KernelBuilder::imm(1));
        });
    });

    Reg gidx = b.newReg(), oa = b.newReg();
    b.imad(gidx, bid, ntid, tid);
    b.imad(oa, gidx, KernelBuilder::imm(4), p_hist);
    b.stg(oa, count);

    return {"histo", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
