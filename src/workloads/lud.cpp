/**
 * @file
 * lud (Rodinia) — the internal-block update of LU decomposition: each
 * thread accumulates a dot product over the current pivot depth and
 * subtracts it from its matrix cell. Uniform loop bounds mean almost no
 * divergence; addresses stride regularly.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeLud(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 size = 128;
    const u32 depth = 12;                // pivot depth to accumulate
    const u32 grid = 56 * scale;

    auto gmem = std::make_unique<GlobalMemory>(32ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x10Du, salt));

    const u64 a = gmem->alloc(4ull * size * size);
    const u64 out = gmem->alloc(4ull * block * grid);
    fillRandomF32(*gmem, a, size * size, -4.0f, 4.0f, rng);

    pushAddr(*cmem, a);         // param 0
    pushAddr(*cmem, out);       // param 1
    cmem->push(size);           // param 2
    cmem->push(depth);          // param 3

    KernelBuilder b("lud");
    Reg p_a = loadParam(b, 0);
    Reg p_out = loadParam(b, 1);
    Reg p_size = loadParam(b, 2);
    Reg p_depth = loadParam(b, 3);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    // row/col inside the trailing block (wrap by size via mask: size is
    // a power of two).
    Reg row = b.newReg(), col = b.newReg();
    b.shr(row, gid, KernelBuilder::imm(7));      // gid / 128
    b.and_(row, row, KernelBuilder::imm(127));
    b.and_(col, gid, KernelBuilder::imm(127));

    Reg sum = b.newReg();
    b.movFloat(sum, 0.0f);
    Reg k = b.newReg();
    b.forRange(k, KernelBuilder::imm(0), p_depth, 1, [&] {
        Reg li = b.newReg(), la = b.newReg(), lv = b.newReg();
        b.imad(li, row, p_size, k);              // a[row][k]
        b.imad(la, li, KernelBuilder::imm(4), p_a);
        b.ldg(lv, la);
        Reg ui = b.newReg(), ua = b.newReg(), uv = b.newReg();
        b.imad(ui, k, p_size, col);              // a[k][col]
        b.imad(ua, ui, KernelBuilder::imm(4), p_a);
        b.ldg(uv, ua);
        b.ffma(sum, lv, uv, sum);
    });

    Reg ci = b.newReg(), ca = b.newReg(), cv = b.newReg();
    b.imad(ci, row, p_size, col);
    b.imad(ca, ci, KernelBuilder::imm(4), p_a);
    b.ldg(cv, ca);
    Reg neg = b.newReg(), result = b.newReg();
    b.movFloat(neg, -1.0f);
    b.ffma(result, sum, neg, cv);

    Reg oa = b.newReg();
    b.imad(oa, gid, KernelBuilder::imm(4), p_out);
    b.stg(oa, result);

    return {"lud", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
