/**
 * @file
 * nbody — all-pairs gravitational force accumulation with shared-memory
 * tiling (the CUDA SDK classic the paper's FP-heavy benchmarks
 * resemble). Zero divergence, long FFMA chains, smooth position data:
 * a dynamic-energy stress case with mid-range compressibility.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeNbody(u32 scale, u64 salt)
{
    const u32 block = 128;
    const u32 grid = 48 * scale;
    const u32 bodies = block * grid;
    const u32 tiles = 2;            // body tiles each thread integrates

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0xB0D1u, salt));

    const u64 posx = gmem->alloc(4ull * bodies);
    const u64 posy = gmem->alloc(4ull * bodies);
    const u64 accx = gmem->alloc(4ull * bodies);
    fillRandomF32(*gmem, posx, bodies, -10.0f, 10.0f, rng);
    fillRandomF32(*gmem, posy, bodies, -10.0f, 10.0f, rng);

    pushAddr(*cmem, posx);      // param 0
    pushAddr(*cmem, posy);      // param 1
    pushAddr(*cmem, accx);      // param 2
    cmem->push(tiles);          // param 3
    cmem->push(bodies);         // param 4

    // Shared memory: tile of x at 0, tile of y at 512.
    KernelBuilder b("nbody", 2 * block * 4);
    Reg p_x = loadParam(b, 0);
    Reg p_y = loadParam(b, 1);
    Reg p_out = loadParam(b, 2);
    Reg p_tiles = loadParam(b, 3);
    Reg p_bodies = loadParam(b, 4);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    Reg myx = b.newReg(), myy = b.newReg(), xa = b.newReg(),
        ya = b.newReg();
    b.imad(xa, gid, KernelBuilder::imm(4), p_x);
    b.imad(ya, gid, KernelBuilder::imm(4), p_y);
    b.ldg(myx, xa);
    b.ldg(myy, ya);

    Reg acc = b.newReg(), eps = b.newReg(), neg = b.newReg();
    b.movFloat(acc, 0.0f);
    b.movFloat(eps, 0.01f);
    b.movFloat(neg, -1.0f);

    Reg smx = b.newReg(), smy = b.newReg();
    b.shl(smx, tid, KernelBuilder::imm(2));
    b.iadd(smy, smx, KernelBuilder::imm(static_cast<i32>(block * 4)));

    Reg t = b.newReg();
    b.forRange(t, KernelBuilder::imm(0), p_tiles, 1, [&] {
        // Stage tile t of the same CTA stripe (toroidal neighbours;
        // the wrap keeps src inside [0, bodies)).
        Reg src = b.newReg(), sv = b.newReg();
        b.imad(src, t, ntid, gid);          // gid + t*blockDim
        Pred wrap = b.newPred();
        b.isetp(wrap, CmpOp::Ge, src, p_bodies);
        b.predicated(wrap, false,
                     [&] { b.isub(src, src, p_bodies); });
        Reg sxa = b.newReg();
        b.imad(sxa, src, KernelBuilder::imm(4), p_x);
        b.ldg(sv, sxa);
        b.sts(smx, sv);
        Reg sya = b.newReg(), svy = b.newReg();
        b.imad(sya, src, KernelBuilder::imm(4), p_y);
        b.ldg(svy, sya);
        b.sts(smy, svy);
        b.bar();

        Reg j = b.newReg();
        b.forRange(j, KernelBuilder::imm(0),
                   KernelBuilder::imm(static_cast<i32>(block)), 1, [&] {
            Reg ja = b.newReg(), jx = b.newReg(), jy = b.newReg();
            b.shl(ja, j, KernelBuilder::imm(2));
            b.lds(jx, ja);
            Reg jya = b.newReg();
            b.iadd(jya, ja, KernelBuilder::imm(
                       static_cast<i32>(block * 4)));
            b.lds(jy, jya);
            // r2 = dx*dx + dy*dy + eps; acc += dx / r2
            Reg dx = b.newReg(), dy = b.newReg(), r2 = b.newReg(),
                rc = b.newReg();
            b.ffma(dx, myx, neg, jx);
            b.ffma(dy, myy, neg, jy);
            b.fmul(r2, dx, dx);
            b.ffma(r2, dy, dy, r2);
            b.fadd(r2, r2, eps);
            b.frcp(rc, r2);
            b.ffma(acc, dx, rc, acc);
        });
        b.bar();
    });

    Reg oa = b.newReg();
    b.imad(oa, gid, KernelBuilder::imm(4), p_out);
    b.stg(oa, acc);

    return {"nbody", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
