/**
 * @file
 * MUM (GPGPU-Sim, MUMmerGPU) — suffix-link traversal: each thread walks
 * a random 4-ary tree guided by its query string until it falls off.
 * The data-dependent while loop is the suite's worst divergence case
 * and node ids are high-entropy.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeMum(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 48 * scale;
    const u32 queries = block * grid;
    const u32 qlen = 12;
    const u32 nodes = 4096;

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x303u, salt));

    const u64 query = gmem->alloc(4ull * queries * qlen);
    const u64 children = gmem->alloc(4ull * nodes * 4);
    const u64 depth_out = gmem->alloc(4ull * queries);
    fillRandomI32(*gmem, query, queries * qlen, 0, 3, rng);
    // Child links: mostly valid random nodes, ~25% dead ends.
    for (u32 i = 0; i < nodes * 4; ++i) {
        const u32 link = rng.nextBool(0.25) ? 0 : 1 + rng.nextU32(
            nodes - 1);
        gmem->write32(children + 4ull * i, link);
    }

    pushAddr(*cmem, query);     // param 0
    pushAddr(*cmem, children);  // param 1
    pushAddr(*cmem, depth_out); // param 2
    cmem->push(qlen);           // param 3

    KernelBuilder b("mum");
    Reg p_q = loadParam(b, 0);
    Reg p_child = loadParam(b, 1);
    Reg p_out = loadParam(b, 2);
    Reg p_qlen = loadParam(b, 3);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    Reg qbase = b.newReg();
    b.imul(qbase, gid, p_qlen);
    b.imad(qbase, qbase, KernelBuilder::imm(4), p_q);

    Reg node = b.newReg(), depth = b.newReg();
    b.movImm(node, 1);          // root
    b.movImm(depth, 0);

    // while (depth < qlen && node != 0) descend
    Pred cont = b.newPred(), alive = b.newPred(), short_ = b.newPred();
    b.while_(
        [&] {
            b.isetp(short_, CmpOp::Lt, depth, p_qlen);
            b.isetp(alive, CmpOp::Ne, node, KernelBuilder::imm(0));
            b.pand(cont, short_, alive);
            return cont;
        },
        [&] {
            Reg qa = b.newReg(), c = b.newReg();
            b.imad(qa, depth, KernelBuilder::imm(4), qbase);
            b.ldg(c, qa);
            Reg slot = b.newReg(), ca = b.newReg();
            b.shl(slot, node, KernelBuilder::imm(2));
            b.iadd(slot, slot, c);
            b.imad(ca, slot, KernelBuilder::imm(4), p_child);
            b.ldg(node, ca);
            b.iadd(depth, depth, KernelBuilder::imm(1));
        });

    Reg oa = b.newReg();
    b.imad(oa, gid, KernelBuilder::imm(4), p_out);
    b.stg(oa, depth);

    return {"mum", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
