/**
 * @file
 * backprop (Rodinia) — feed-forward layer: each thread accumulates a
 * weighted sum of 16 staged inputs from shared memory. Barriers but no
 * divergence; weight values are high-entropy floats while index and
 * address registers compress well.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeBackprop(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 60 * scale;
    const u32 in_size = 16;          // staged inputs per CTA

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0xBA0u, salt));

    const u64 input = gmem->alloc(4ull * in_size * grid);
    const u64 weights = gmem->alloc(4ull * in_size * block * grid);
    const u64 hidden = gmem->alloc(4ull * block * grid);
    fillRandomF32(*gmem, input, in_size * grid, 0.0f, 1.0f, rng);
    fillRandomF32(*gmem, weights, in_size * block * grid, -0.5f, 0.5f,
                  rng);

    pushAddr(*cmem, input);     // param 0
    pushAddr(*cmem, weights);   // param 1
    pushAddr(*cmem, hidden);    // param 2
    cmem->push(in_size);        // param 3

    KernelBuilder b("backprop", in_size * 4);
    Reg p_in = loadParam(b, 0);
    Reg p_w = loadParam(b, 1);
    Reg p_hid = loadParam(b, 2);
    Reg p_n = loadParam(b, 3);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    // Stage this CTA's input vector into shared memory.
    Pred loader = b.newPred();
    b.isetp(loader, CmpOp::Lt, tid, p_n);
    b.if_(loader, [&] {
        Reg ia = b.newReg(), iv = b.newReg(), sa = b.newReg();
        b.imad(ia, bid, p_n, tid);
        b.imad(ia, ia, KernelBuilder::imm(4), p_in);
        b.ldg(iv, ia);
        b.shl(sa, tid, KernelBuilder::imm(2));
        b.sts(sa, iv);
    });
    b.bar();

    // sum = dot(weights[gid * n .. ], smem_input)
    Reg sum = b.newReg();
    b.movFloat(sum, 0.0f);
    Reg wbase = b.newReg();
    b.imul(wbase, gid, p_n);
    b.imad(wbase, wbase, KernelBuilder::imm(4), p_w);

    Reg k = b.newReg();
    b.forRange(k, KernelBuilder::imm(0), p_n, 1, [&] {
        Reg wa = b.newReg(), w = b.newReg(), sa = b.newReg(),
            x = b.newReg();
        b.imad(wa, k, KernelBuilder::imm(4), wbase);
        b.ldg(w, wa);
        b.shl(sa, k, KernelBuilder::imm(2));
        b.lds(x, sa);
        b.ffma(sum, w, x, sum);
    });

    // Squash: out = sum / (1 + |sum|), a rational sigmoid stand-in.
    Reg asum = b.newReg(), one = b.newReg(), den = b.newReg(),
        out = b.newReg();
    b.fmax(asum, sum, KernelBuilder::imm(0));
    Reg negsum = b.newReg(), negone = b.newReg();
    b.movFloat(negone, -1.0f);
    b.fmul(negsum, sum, negone);
    b.fmax(asum, asum, negsum);
    b.movFloat(one, 1.0f);
    b.fadd(den, asum, one);
    b.frcp(den, den);
    b.fmul(out, sum, den);

    Reg oa = b.newReg();
    b.imad(oa, gid, KernelBuilder::imm(4), p_hid);
    b.stg(oa, out);

    return {"backprop", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
