/**
 * @file
 * stencil (Parboil) — 7-point 3D Jacobi over interior points only, so
 * there is no divergence at all; addresses derive linearly from thread
 * indices and values are smooth, making it a best-case for
 * warped-compression next to LIB.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeStencil(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 64 * scale;
    const u32 nx = 64, ny = 64;          // plane dimensions
    const u32 plane = nx * ny;
    const u32 nz = grid * block / plane + 3;
    const u32 cells = plane * nz;

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x57Eu, salt));

    const u64 in = gmem->alloc(4ull * cells);
    const u64 out = gmem->alloc(4ull * cells);
    fillRandomF32(*gmem, in, cells, 1.0f, 2.0f, rng);

    pushAddr(*cmem, in);        // param 0
    pushAddr(*cmem, out);       // param 1
    cmem->push(nx);             // param 2
    cmem->push(plane);          // param 3

    KernelBuilder b("stencil");
    Reg p_in = loadParam(b, 0);
    Reg p_out = loadParam(b, 1);
    Reg p_nx = loadParam(b, 2);
    Reg p_plane = loadParam(b, 3);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);
    // Interior cell index: skip one leading plane.
    Reg cell = b.newReg();
    b.iadd(cell, gid, p_plane);
    Reg addr = b.newReg();
    b.imad(addr, cell, KernelBuilder::imm(4), p_in);

    Reg ctr = b.newReg();
    b.ldg(ctr, addr);
    Reg xm = b.newReg(), xp = b.newReg();
    b.ldg(xm, addr, -4);
    b.ldg(xp, addr, 4);

    Reg row_off = b.newReg();
    b.imul(row_off, p_nx, KernelBuilder::imm(4));
    Reg ym_a = b.newReg(), yp_a = b.newReg();
    b.isub(ym_a, addr, row_off);
    b.iadd(yp_a, addr, row_off);
    Reg ym = b.newReg(), yp = b.newReg();
    b.ldg(ym, ym_a);
    b.ldg(yp, yp_a);

    Reg plane_off = b.newReg();
    b.imul(plane_off, p_plane, KernelBuilder::imm(4));
    Reg zm_a = b.newReg(), zp_a = b.newReg();
    b.isub(zm_a, addr, plane_off);
    b.iadd(zp_a, addr, plane_off);
    Reg zm = b.newReg(), zp = b.newReg();
    b.ldg(zm, zm_a);
    b.ldg(zp, zp_a);

    Reg sum = b.newReg(), c0 = b.newReg(), c1 = b.newReg();
    b.fadd(sum, xm, xp);
    b.fadd(sum, sum, ym);
    b.fadd(sum, sum, yp);
    b.fadd(sum, sum, zm);
    b.fadd(sum, sum, zp);
    b.movFloat(c0, -6.0f);
    b.movFloat(c1, 0.166f);
    b.ffma(sum, c0, ctr, sum);
    Reg result = b.newReg();
    b.ffma(result, c1, sum, ctr);

    Reg oaddr = b.newReg();
    b.imad(oaddr, cell, KernelBuilder::imm(4), p_out);
    b.stg(oaddr, result);

    return {"stencil", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
