/**
 * @file
 * spmv (Parboil) — CSR sparse matrix-vector product, one row per
 * thread. Row lengths vary (1..16 nonzeros) so the accumulation loop
 * diverges; column indices ascend per row (index-like similarity)
 * while the values are high-entropy floats.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeSpmv(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 48 * scale;
    const u32 rows = block * grid;
    const u32 max_nnz = 16;

    auto gmem = std::make_unique<GlobalMemory>(128ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x59Bu, salt));

    std::vector<u32> rowptr(rows + 1);
    rowptr[0] = 0;
    for (u32 r = 0; r < rows; ++r)
        rowptr[r + 1] = rowptr[r] + 1 + rng.nextU32(max_nnz);
    const u32 nnz = rowptr[rows];

    const u64 g_rowptr = gmem->alloc(4ull * (rows + 1));
    const u64 g_col = gmem->alloc(4ull * nnz);
    const u64 g_val = gmem->alloc(4ull * nnz);
    const u64 g_x = gmem->alloc(4ull * rows);
    const u64 g_y = gmem->alloc(4ull * rows);

    for (u32 r = 0; r <= rows; ++r)
        gmem->write32(g_rowptr + 4ull * r, rowptr[r]);
    for (u32 r = 0; r < rows; ++r) {
        // Ascending column indices within each row.
        u32 col = rng.nextU32(rows / 2);
        for (u32 e = rowptr[r]; e < rowptr[r + 1]; ++e) {
            gmem->write32(g_col + 4ull * e, col % rows);
            col += 1 + rng.nextU32(16);
        }
    }
    fillRandomF32(*gmem, g_val, nnz, -1.0f, 1.0f, rng);
    fillRandomF32(*gmem, g_x, rows, -1.0f, 1.0f, rng);

    pushAddr(*cmem, g_rowptr);  // param 0
    pushAddr(*cmem, g_col);     // param 1
    pushAddr(*cmem, g_val);     // param 2
    pushAddr(*cmem, g_x);       // param 3
    pushAddr(*cmem, g_y);       // param 4

    KernelBuilder b("spmv");
    Reg p_row = loadParam(b, 0);
    Reg p_col = loadParam(b, 1);
    Reg p_val = loadParam(b, 2);
    Reg p_x = loadParam(b, 3);
    Reg p_y = loadParam(b, 4);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    Reg ra = b.newReg(), start = b.newReg(), end = b.newReg();
    b.imad(ra, gid, KernelBuilder::imm(4), p_row);
    b.ldg(start, ra, 0);
    b.ldg(end, ra, 4);

    Reg sum = b.newReg();
    b.movFloat(sum, 0.0f);
    Reg e = b.newReg();
    b.forRange(e, start, end, 1, [&] {
        Reg ca = b.newReg(), col = b.newReg();
        b.imad(ca, e, KernelBuilder::imm(4), p_col);
        b.ldg(col, ca);
        Reg va = b.newReg(), v = b.newReg();
        b.imad(va, e, KernelBuilder::imm(4), p_val);
        b.ldg(v, va);
        Reg xa = b.newReg(), x = b.newReg();
        b.imad(xa, col, KernelBuilder::imm(4), p_x);
        b.ldg(x, xa);
        b.ffma(sum, v, x, sum);
    });

    Reg ya = b.newReg();
    b.imad(ya, gid, KernelBuilder::imm(4), p_y);
    b.stg(ya, sum);

    return {"spmv", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
