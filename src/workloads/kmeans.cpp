/**
 * @file
 * kmeans (Rodinia) — nearest-centroid assignment: each thread owns a
 * point, walks the centroid table accumulating squared distances, and
 * keeps a running argmin. The min-update is if-converted through SELP,
 * so the kernel is branch-uniform but value-divergent: membership ids
 * are small integers while distances are high-entropy floats.
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeKmeans(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 grid = 48 * scale;
    const u32 points = block * grid;
    const u32 nclusters = 8;
    const u32 nfeatures = 8;

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x4EA5u, salt));

    const u64 features = gmem->alloc(4ull * points * nfeatures);
    const u64 clusters = gmem->alloc(4ull * nclusters * nfeatures);
    const u64 membership = gmem->alloc(4ull * points);
    fillRandomF32(*gmem, features, points * nfeatures, 0.0f, 1.0f, rng);
    fillRandomF32(*gmem, clusters, nclusters * nfeatures, 0.0f, 1.0f,
                  rng);

    pushAddr(*cmem, features);   // param 0
    pushAddr(*cmem, clusters);   // param 1
    pushAddr(*cmem, membership); // param 2
    cmem->push(nclusters);       // param 3
    cmem->push(nfeatures);       // param 4

    KernelBuilder b("kmeans");
    Reg p_feat = loadParam(b, 0);
    Reg p_clu = loadParam(b, 1);
    Reg p_mem = loadParam(b, 2);
    Reg p_nclu = loadParam(b, 3);
    Reg p_nfeat = loadParam(b, 4);

    Reg tid = b.newReg(), bid = b.newReg(), ntid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    b.s2r(ntid, SpecialReg::NTidX);
    Reg gid = b.newReg();
    b.imad(gid, bid, ntid, tid);

    Reg fbase = b.newReg();
    b.imul(fbase, gid, p_nfeat);
    b.imad(fbase, fbase, KernelBuilder::imm(4), p_feat);

    Reg best_dist = b.newReg(), best_id = b.newReg();
    b.movFloat(best_dist, 1.0e30f);
    b.movImm(best_id, 0);

    Reg c = b.newReg();
    b.forRange(c, KernelBuilder::imm(0), p_nclu, 1, [&] {
        Reg cbase = b.newReg();
        b.imul(cbase, c, p_nfeat);
        b.imad(cbase, cbase, KernelBuilder::imm(4), p_clu);

        Reg dist = b.newReg();
        b.movFloat(dist, 0.0f);
        Reg fidx = b.newReg();
        b.forRange(fidx, KernelBuilder::imm(0), p_nfeat, 1, [&] {
            Reg fa = b.newReg(), fv = b.newReg(), ca = b.newReg(),
                cv = b.newReg();
            b.imad(fa, fidx, KernelBuilder::imm(4), fbase);
            b.ldg(fv, fa);
            b.imad(ca, fidx, KernelBuilder::imm(4), cbase);
            b.ldg(cv, ca);
            Reg diff = b.newReg(), neg = b.newReg();
            b.movFloat(neg, -1.0f);
            b.ffma(diff, cv, neg, fv);          // fv - cv
            b.ffma(dist, diff, diff, dist);
        });

        // If-converted argmin: no divergence, per-lane select.
        Pred closer = b.newPred();
        b.fsetp(closer, CmpOp::Lt, dist, best_dist);
        b.selp(best_id, closer, c, best_id);
        Reg bd_bits = b.newReg();
        b.selp(bd_bits, closer, dist, best_dist);
        b.mov(best_dist, bd_bits);
    });

    Reg ma = b.newReg();
    b.imad(ma, gid, KernelBuilder::imm(4), p_mem);
    b.stg(ma, best_id);

    return {"kmeans", b.build(), {block, grid}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
