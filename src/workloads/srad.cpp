/**
 * @file
 * srad (Rodinia) — speckle-reducing anisotropic diffusion. Gradient and
 * diffusion-coefficient computation over an image with a 0..255 range;
 * clamped boundary handling adds divergence at tile edges and the
 * coefficient math exercises the FP pipeline (including FRCP).
 */

#include "workloads/registry.hpp"

#include "workloads/inputs.hpp"

namespace warpcomp {

WorkloadInstance
makeSrad(u32 scale, u64 salt)
{
    const u32 block = 256;
    const u32 rows = 56 * scale;
    const u32 width = 256;
    const u32 cells = rows * width;

    auto gmem = std::make_unique<GlobalMemory>(64ull << 20);
    auto cmem = std::make_unique<ConstantMemory>();
    Rng rng(mixSeed(0x5ADu, salt));

    const u64 img = gmem->alloc(4ull * cells);
    const u64 coeff = gmem->alloc(4ull * cells);
    fillRandomF32(*gmem, img, cells, 0.0f, 255.0f, rng);

    pushAddr(*cmem, img);       // param 0
    pushAddr(*cmem, coeff);     // param 1
    cmem->push(width);          // param 2
    cmem->push(rows);           // param 3

    KernelBuilder b("srad");
    Reg p_img = loadParam(b, 0);
    Reg p_coeff = loadParam(b, 1);
    Reg p_width = loadParam(b, 2);
    Reg p_rows = loadParam(b, 3);

    Reg tid = b.newReg(), bid = b.newReg();
    b.s2r(tid, SpecialReg::TidX);
    b.s2r(bid, SpecialReg::CtaIdX);
    Reg gid = b.newReg();
    b.imad(gid, bid, p_width, tid);

    Reg ja = b.newReg(), jc = b.newReg();
    b.imad(ja, gid, KernelBuilder::imm(4), p_img);
    b.ldg(jc, ja);

    Reg wm1 = b.newReg(), rm1 = b.newReg();
    b.isub(wm1, p_width, KernelBuilder::imm(1));
    b.isub(rm1, p_rows, KernelBuilder::imm(1));

    Pred inb = b.newPred();
    Reg jn = b.newReg(), js = b.newReg(), je = b.newReg(),
        jw = b.newReg();
    b.isetp(inb, CmpOp::Gt, bid, KernelBuilder::imm(0));
    b.ifElse_(inb, [&] {
        Reg off = b.newReg(), a = b.newReg();
        b.imul(off, p_width, KernelBuilder::imm(4));
        b.isub(a, ja, off);
        b.ldg(jn, a);
    }, [&] { b.mov(jn, jc); });
    b.isetp(inb, CmpOp::Lt, bid, rm1);
    b.ifElse_(inb, [&] {
        Reg a = b.newReg();
        b.imad(a, p_width, KernelBuilder::imm(4), ja);
        b.ldg(js, a);
    }, [&] { b.mov(js, jc); });
    b.isetp(inb, CmpOp::Gt, tid, KernelBuilder::imm(0));
    b.ifElse_(inb, [&] { b.ldg(jw, ja, -4); }, [&] { b.mov(jw, jc); });
    b.isetp(inb, CmpOp::Lt, tid, wm1);
    b.ifElse_(inb, [&] { b.ldg(je, ja, 4); }, [&] { b.mov(je, jc); });

    // Directional derivatives (d = neighbor - center via FFMA with -1).
    Reg dn = b.newReg(), ds = b.newReg(), de = b.newReg(),
        dw = b.newReg();
    Reg neg = b.newReg();
    b.movFloat(neg, -1.0f);
    b.ffma(dn, jc, neg, jn);    // dn = jn - jc
    b.ffma(ds, jc, neg, js);    // ds = js - jc
    b.ffma(de, jc, neg, je);    // de = je - jc
    b.ffma(dw, jc, neg, jw);    // dw = jw - jc

    Reg g2 = b.newReg();
    b.fmul(g2, dn, dn);
    Reg t = b.newReg();
    b.fmul(t, ds, ds);
    b.fadd(g2, g2, t);
    b.fmul(t, de, de);
    b.fadd(g2, g2, t);
    b.fmul(t, dw, dw);
    b.fadd(g2, g2, t);

    // c = 1 / (1 + g2 / (jc*jc + eps))
    Reg jc2 = b.newReg(), eps = b.newReg(), denom = b.newReg();
    b.fmul(jc2, jc, jc);
    b.movFloat(eps, 1.0f);
    b.fadd(jc2, jc2, eps);
    b.frcp(denom, jc2);
    Reg q = b.newReg(), one = b.newReg(), cval = b.newReg();
    b.fmul(q, g2, denom);
    b.movFloat(one, 1.0f);
    b.fadd(q, q, one);
    b.frcp(cval, q);

    Reg ca = b.newReg();
    b.imad(ca, gid, KernelBuilder::imm(4), p_coeff);
    b.stg(ca, cval);

    return {"srad", b.build(), {block, rows}, std::move(gmem),
            std::move(cmem)};
}

} // namespace warpcomp
