/**
 * @file
 * Observability core: a ring-buffered cycle-level event tracer plus
 * windowed counters, shared by every SM of one simulated kernel launch.
 *
 * Zero cost when off: the simulator holds a nullable `ObsRun *`; every
 * hook site is a branch on that pointer, so a run without observability
 * attached executes the exact instruction stream it did before the
 * subsystem existed (alloc-guard and differential tested). When on, all
 * storage is preallocated at attach time — emitting an event or bumping
 * a window counter never allocates (the window table grows only past
 * its reserved 4096 rows, i.e. beyond 4M traced cycles at the default
 * interval).
 *
 * All SMs of one run share a single ObsRun: the GPU steps its SMs in
 * lockstep on one thread, so no synchronization is needed, and events
 * arrive in deterministic (cycle, SM, program) order — trace files and
 * timelines are byte-identical run over run and across harness thread
 * counts.
 */

#ifndef WARPCOMP_OBS_OBS_HPP
#define WARPCOMP_OBS_OBS_HPP

#include <algorithm>
#include <limits>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace warpcomp {

class TraceStreamSink;

/** Observability configuration (see --trace / --trace-window /
 *  --trace-out). */
struct ObsParams
{
    /** Record trace events into the ring buffer. */
    bool trace = false;
    /** Only cycles in [traceStart, traceEnd) are recorded. */
    Cycle traceStart = 0;
    Cycle traceEnd = std::numeric_limits<Cycle>::max();
    /** Windowed-counter interval in cycles; 0 disables timelines. */
    u32 windowInterval = 0;
    /** Ring capacity in events; oldest events are dropped when full. */
    u32 ringCapacity = 1u << 20;
    /**
     * Streaming dump path (--trace-out=FILE; empty = disabled). The
     * harness — not the simulator — turns this into an armed `sink`
     * with full provenance; see runWorkload.
     */
    std::string streamPath;
    /** Human config label stamped into the dump header (suite label). */
    std::string streamLabel;
    /**
     * Armed streaming sink (non-owning; null = disabled). Every
     * in-window event is appended to the dump as it is emitted, so
     * memory stays bounded regardless of run length — the ring can
     * even be absent (`trace == false`) while streaming.
     */
    TraceStreamSink *sink = nullptr;

    bool
    enabled() const
    {
        return trace || windowInterval > 0 || sink != nullptr;
    }
};

/** Event taxonomy (DESIGN.md §9). */
enum class TraceEventKind : u8 {
    WarpIssue,          ///< instruction issued; a=pc, b=active lanes
    DummyMov,           ///< decompress-MOV injected; a=dst register
    CompressDecision,   ///< write encoded; a=achieved B, b=stored B
    Decompress,         ///< decompressor activation for one operand
    OperandCollect,     ///< all operands granted, dispatched to exec;
                        ///  a=source ops, b=compressed sources
    Writeback,          ///< bank write committed; a=banks, b=compressed
    GateOff,            ///< bank power-gated (lane = bank id)
    GateWake,           ///< gated bank wake requested; a=wakeup latency
    SeuCorruption,      ///< flips became architectural; a=lanes,
                        ///  b=amplified by decompression
    ScrubVisit,         ///< scrub engine rewrote live rows; lane=first
                        ///  bank, a=banks visited
    FaultCorruptedWrite,///< stuck-at cells changed a stored image
    BankConflict        ///< collector read denied a bank port this
                        ///  cycle (retries next); lane=bank, a=warp
};

/** Number of TraceEventKind values (dump format sanity checks). */
inline constexpr u32 kNumTraceEventKinds =
    static_cast<u32>(TraceEventKind::BankConflict) + 1;

/** Stable lower-case name used in exported documents. */
const char *traceEventName(TraceEventKind kind);

/** One trace record. `lane` is a warp slot for pipeline events and a
 *  bank index for GateOff/GateWake/ScrubVisit/BankConflict; a/b/c are
 *  per-kind payloads (see TraceEventKind). `c` rides in what used to
 *  be struct padding, so the event stays 24 bytes. */
struct TraceEvent
{
    Cycle cycle = 0;
    u32 a = 0;
    u32 b = 0;
    u16 sm = 0;
    u16 lane = 0;
    TraceEventKind kind = TraceEventKind::WarpIssue;
    /** Small third payload: destination register for CompressDecision. */
    u16 c = 0;
};

/**
 * Fixed-capacity event ring: when full, the oldest events are
 * overwritten (Chrome tracing semantics — the most recent window of
 * activity survives). push() never allocates.
 */
class TraceRing
{
  public:
    explicit TraceRing(u32 capacity) : buf_(capacity) {}

    void
    push(const TraceEvent &ev)
    {
        if (buf_.empty()) {
            ++pushed_;
            return;
        }
        buf_[static_cast<std::size_t>(pushed_ % buf_.size())] = ev;
        ++pushed_;
    }

    /** Events currently held (≤ capacity). */
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(
            pushed_ < buf_.size() ? pushed_ : buf_.size());
    }

    /** Total events offered, including overwritten ones. */
    u64 pushed() const { return pushed_; }

    /** Events lost to ring wrap-around. */
    u64 dropped() const { return pushed_ - size(); }

    /** i-th surviving event in chronological order. */
    const TraceEvent &
    at(std::size_t i) const
    {
        const u64 start = pushed_ - size();
        return buf_[static_cast<std::size_t>((start + i) % buf_.size())];
    }

  private:
    std::vector<TraceEvent> buf_;
    u64 pushed_ = 0;
};

/** Raw per-window accumulators; derived metrics (IPC, compression
 *  ratio, gated occupancy) are computed at export time. */
struct WindowRow
{
    u64 issued = 0;          ///< instructions issued (incl. dummy MOVs)
    u64 dummyMovs = 0;
    u64 regWrites = 0;
    u64 storedBytes = 0;     ///< bytes as stored in the banks
    u64 rawBytes = 0;        ///< 128 B per write (uncompressed size)
    u64 gatedBankCycles = 0; ///< Σ over SM-cycles of gated banks
    u64 bankCycles = 0;      ///< Σ over SM-cycles of total banks
    u64 smCycles = 0;        ///< SM-cycle samples (numSms per cycle)
};

/** Windowed counters: one row per `interval` cycles. */
class ObsWindows
{
  public:
    explicit ObsWindows(u32 interval) : interval_(interval)
    {
        rows_.reserve(interval > 0 ? 4096 : 0);
    }

    u32 interval() const { return interval_; }
    const std::vector<WindowRow> &rows() const { return rows_; }

    void
    onCycle(Cycle now, u32 gated_banks, u32 total_banks)
    {
        WindowRow &r = rowAt(now);
        r.gatedBankCycles += gated_banks;
        r.bankCycles += total_banks;
        ++r.smCycles;
    }

    /** Bulk equivalent of onCycle over [from, to) with a per-cycle
     *  constant census, splitting exactly across window boundaries. */
    void
    onCycleSpan(Cycle from, Cycle to, u32 gated_banks, u32 total_banks)
    {
        while (from < to) {
            WindowRow &r = rowAt(from);
            const Cycle window_end = (from / interval_ + 1) * interval_;
            const u64 n = std::min(to, window_end) - from;
            r.gatedBankCycles += n * gated_banks;
            r.bankCycles += n * total_banks;
            r.smCycles += n;
            from += n;
        }
    }

    void
    onIssue(Cycle now, bool dummy)
    {
        WindowRow &r = rowAt(now);
        ++r.issued;
        if (dummy)
            ++r.dummyMovs;
    }

    void
    onWrite(Cycle now, u32 stored_bytes)
    {
        WindowRow &r = rowAt(now);
        ++r.regWrites;
        r.storedBytes += stored_bytes;
        r.rawBytes += kWarpRegBytes;
    }

  private:
    WindowRow &
    rowAt(Cycle now)
    {
        const std::size_t idx =
            static_cast<std::size_t>(now / interval_);
        while (rows_.size() <= idx)
            rows_.emplace_back();
        return rows_[idx];
    }

    u32 interval_;
    std::vector<WindowRow> rows_;
};

/**
 * Per-run observability state. Gpu::run creates one when ObsParams is
 * enabled, attaches it to every SM (and their register files), and
 * hands it to the RunResult for export.
 */
class ObsRun
{
  public:
    explicit ObsRun(const ObsParams &params)
        : cfg_(params), ring_(params.trace ? params.ringCapacity : 0),
          windows_(params.windowInterval),
          windowsOn_(params.windowInterval > 0),
          recording_(params.trace || params.sink != nullptr)
    {
    }

    const ObsParams &params() const { return cfg_; }
    const TraceRing &ring() const { return ring_; }
    const ObsWindows &windows() const { return windows_; }

    /** Events forwarded to the streaming sink (0 when not armed).
     *  Tracked here, not read back from the sink, so the counter stays
     *  valid after the harness closes the dump file. */
    u64 streamedEvents() const { return streamedEvents_; }

    /** Counter snapshot (events recorded/dropped, windows) as a
     *  StatGroup, for the structured-stats dump. */
    StatGroup statGroup() const;

    // ---- hook points (called behind `if (obs_ != nullptr)`) ----

    void
    onWarpIssue(u16 sm, u16 warp, u32 pc, u32 lanes, Cycle now)
    {
        if (windowsOn_)
            windows_.onIssue(now, false);
        emit({now, pc, lanes, sm, warp, TraceEventKind::WarpIssue});
    }

    void
    onDummyMov(u16 sm, u16 warp, u32 dst, Cycle now)
    {
        if (windowsOn_)
            windows_.onIssue(now, true);
        emit({now, dst, 0, sm, warp, TraceEventKind::DummyMov});
    }

    void
    onCompressDecision(u16 sm, u16 warp, u32 achieved_bytes,
                       u32 stored_bytes, u16 dst_reg, Cycle now)
    {
        if (windowsOn_)
            windows_.onWrite(now, stored_bytes);
        emit({now, achieved_bytes, stored_bytes, sm, warp,
              TraceEventKind::CompressDecision, dst_reg});
    }

    void
    onDecompress(u16 sm, u16 warp, Cycle now)
    {
        emit({now, 0, 0, sm, warp, TraceEventKind::Decompress});
    }

    void
    onOperandCollect(u16 sm, u16 warp, u32 ops, u32 compressed_srcs,
                     Cycle now)
    {
        emit({now, ops, compressed_srcs, sm, warp,
              TraceEventKind::OperandCollect});
    }

    void
    onWriteback(u16 sm, u16 warp, u32 banks, bool compressed, Cycle now)
    {
        emit({now, banks, compressed ? 1u : 0u, sm, warp,
              TraceEventKind::Writeback});
    }

    void
    onGateOff(u16 sm, u16 bank, Cycle now)
    {
        emit({now, 0, 0, sm, bank, TraceEventKind::GateOff});
    }

    void
    onGateWake(u16 sm, u16 bank, u32 wakeup_latency, Cycle now)
    {
        emit({now, wakeup_latency, 0, sm, bank,
              TraceEventKind::GateWake});
    }

    void
    onSeuCorruption(u16 sm, u16 warp, u32 lanes, bool amplified,
                    Cycle now)
    {
        emit({now, lanes, amplified ? 1u : 0u, sm, warp,
              TraceEventKind::SeuCorruption});
    }

    void
    onScrubVisit(u16 sm, u16 first_bank, u32 banks, Cycle now)
    {
        emit({now, banks, 0, sm, first_bank,
              TraceEventKind::ScrubVisit});
    }

    void
    onFaultCorruptedWrite(u16 sm, u16 warp, Cycle now)
    {
        emit({now, 0, 0, sm, warp, TraceEventKind::FaultCorruptedWrite});
    }

    void
    onBankConflict(u16 sm, u16 bank, u16 warp, Cycle now)
    {
        emit({now, warp, 0, sm, bank, TraceEventKind::BankConflict});
    }

    void
    onCycle(u16 /*sm*/, u32 gated_banks, u32 total_banks, Cycle now)
    {
        if (windowsOn_)
            windows_.onCycle(now, gated_banks, total_banks);
    }

    /** Idle-skip bulk hook: account [from, to) cycles during which the
     *  bank census provably cannot change (no issues, writebacks, or
     *  scrub visits occur inside a skipped span). */
    void
    onCycleSpan(u16 /*sm*/, u32 gated_banks, u32 total_banks, Cycle from,
                Cycle to)
    {
        if (windowsOn_)
            windows_.onCycleSpan(from, to, gated_banks, total_banks);
    }

  private:
    void
    emit(const TraceEvent &ev)
    {
        if (!recording_ || ev.cycle < cfg_.traceStart ||
            ev.cycle >= cfg_.traceEnd)
            return;
        // The ring only counts when --trace asked for it: a
        // streaming-only run keeps events_offered/dropped at zero
        // (nothing is lost — the sink has every event).
        if (cfg_.trace)
            ring_.push(ev);
        if (cfg_.sink != nullptr)
            streamEvent(ev);
    }

    /** Out-of-line sink append (obs.cpp), so this header needs no
     *  trace_stream dependency and the no-sink path stays a branch. */
    void streamEvent(const TraceEvent &ev);

    ObsParams cfg_;
    TraceRing ring_;
    ObsWindows windows_;
    bool windowsOn_;
    bool recording_;
    u64 streamedEvents_ = 0;
};

} // namespace warpcomp

#endif // WARPCOMP_OBS_OBS_HPP
