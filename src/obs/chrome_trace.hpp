/**
 * @file
 * Chrome trace-event JSON exporter for one traced run. The document
 * loads in Perfetto / chrome://tracing: one process per SM, one thread
 * lane per warp slot (pipeline events) and per register bank
 * (power-gate intervals, scrub visits, port conflicts), plus GPU-wide
 * counter tracks derived from the windowed timelines (IPC, compression
 * ratio, gated banks). Timestamps are simulation cycles, exported
 * 1 cycle = 1 µs so viewer zoom levels behave.
 *
 * Two producers share one serializer: the live path (`--trace`, events
 * from the in-memory ring) and the offline path (`wc_trace export
 * --chrome`, events from a streamed dump). Both funnel through
 * ChromeTraceView so the emitted bytes depend only on the event/window
 * data — a dump replayed offline is byte-identical to the live export
 * of the same run.
 */

#ifndef WARPCOMP_OBS_CHROME_TRACE_HPP
#define WARPCOMP_OBS_CHROME_TRACE_HPP

#include <ostream>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace warpcomp {

/** Run context stamped into the trace document. */
struct ChromeTraceMeta
{
    std::string workload;
    std::string config;     ///< human label, e.g. "Warped" / "None"
    u32 numSms = 0;
    u32 numBanks = 0;
    Cycle cycles = 0;       ///< run length; closes open gate intervals
};

/** Thread-id base for bank lanes (warp lanes use the slot id). */
inline constexpr u32 kBankLaneBase = 1000;

/** Source-agnostic input to the serializer: chronological events plus
 *  the window table, however they were obtained. Non-owning. */
struct ChromeTraceView
{
    const std::vector<TraceEvent> &events;
    const std::vector<WindowRow> &windows;
    u32 windowInterval = 0;
    Cycle traceStart = 0;
    Cycle traceEnd = std::numeric_limits<Cycle>::max();
    u64 dropped = 0;        ///< ring losses (0 for streamed dumps)
};

/** Serialize @p view as Chrome trace-event JSON onto @p os. */
void writeChromeTrace(std::ostream &os, const ChromeTraceView &view,
                      const ChromeTraceMeta &meta);

/** Live-run convenience wrapper: snapshots the ring and serializes. */
void writeChromeTrace(std::ostream &os, const ObsRun &obs,
                      const ChromeTraceMeta &meta);

} // namespace warpcomp

#endif // WARPCOMP_OBS_CHROME_TRACE_HPP
