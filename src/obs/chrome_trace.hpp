/**
 * @file
 * Chrome trace-event JSON exporter for one traced run. The document
 * loads in Perfetto / chrome://tracing: one process per SM, one thread
 * lane per warp slot (pipeline events) and per register bank
 * (power-gate intervals, scrub visits), plus GPU-wide counter tracks
 * derived from the windowed timelines (IPC, compression ratio, gated
 * banks). Timestamps are simulation cycles, exported 1 cycle = 1 µs so
 * viewer zoom levels behave.
 */

#ifndef WARPCOMP_OBS_CHROME_TRACE_HPP
#define WARPCOMP_OBS_CHROME_TRACE_HPP

#include <ostream>
#include <string>

#include "obs/obs.hpp"

namespace warpcomp {

/** Run context stamped into the trace document. */
struct ChromeTraceMeta
{
    std::string workload;
    std::string config;     ///< human label, e.g. "Warped" / "None"
    u32 numSms = 0;
    u32 numBanks = 0;
    Cycle cycles = 0;       ///< run length; closes open gate intervals
};

/** Thread-id base for bank lanes (warp lanes use the slot id). */
inline constexpr u32 kBankLaneBase = 1000;

/** Serialize @p obs as Chrome trace-event JSON onto @p os. */
void writeChromeTrace(std::ostream &os, const ObsRun &obs,
                      const ChromeTraceMeta &meta);

} // namespace warpcomp

#endif // WARPCOMP_OBS_CHROME_TRACE_HPP
