#include "obs/trace_stream.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/json_parse.hpp"
#include "common/json_writer.hpp"
#include "common/log.hpp"

#ifndef WC_GIT_SHA
#define WC_GIT_SHA "unknown"
#endif

namespace warpcomp {

namespace {

/** Events per batch record: 4096 × 23 B ≈ 92 KiB of buffered payload —
 *  bounded memory however long the run, few syscalls per million
 *  events. */
constexpr u32 kBatchEvents = 4096;
constexpr std::size_t kBatchHeaderBytes = 1 + 4 + 4; // type, len, count

void
put16(u8 *p, u16 v)
{
    p[0] = static_cast<u8>(v);
    p[1] = static_cast<u8>(v >> 8);
}

void
put32(u8 *p, u32 v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

void
put64(u8 *p, u64 v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

u16
get16(const u8 *p)
{
    return static_cast<u16>(p[0] | (u16{p[1]} << 8));
}

u32
get32(const u8 *p)
{
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= u32{p[i]} << (8 * i);
    return v;
}

u64
get64(const u8 *p)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= u64{p[i]} << (8 * i);
    return v;
}

std::string
headerJson(const TraceStreamMeta &meta)
{
    std::ostringstream ss;
    JsonWriter w(ss, JsonWriter::Style::Compact);
    w.beginObject();
    w.field("format", "wc-trace");
    w.field("version", kTraceDumpVersion);
    w.field("git_sha", meta.gitSha);
    w.field("workload", meta.workload);
    w.field("frontend", meta.frontend);
    w.field("image_sha256", meta.imageSha);
    w.field("config", meta.config);
    w.field("sms", meta.numSms);
    w.field("banks", meta.numBanks);
    w.field("window_interval", meta.windowInterval);
    w.field("trace_start", static_cast<u64>(meta.traceStart));
    w.field("trace_end", static_cast<u64>(meta.traceEnd));
    w.field("compress_latency", meta.compressLatency);
    w.field("decompress_latency", meta.decompressLatency);
    w.key("event_kinds");
    w.beginArray();
    for (u32 k = 0; k < kNumTraceEventKinds; ++k)
        w.value(traceEventName(static_cast<TraceEventKind>(k)));
    w.endArray();
    w.endObject();
    return ss.str();
}

std::optional<TraceStreamMeta>
metaFromJson(const std::string &json)
{
    const JsonParseOutcome parsed = parseJson(json);
    if (!parsed.ok() || !parsed.value->isObject())
        return std::nullopt;
    const JsonValue &v = *parsed.value;

    const JsonValue *format = v.find("format");
    if (format == nullptr || format->asString() == nullptr ||
        *format->asString() != "wc-trace")
        return std::nullopt;

    TraceStreamMeta meta;
    auto str = [&](const char *key, std::string *out) {
        const JsonValue *f = v.find(key);
        if (f == nullptr || f->asString() == nullptr)
            return false;
        *out = *f->asString();
        return true;
    };
    auto num = [&](const char *key, u64 *out) {
        const JsonValue *f = v.find(key);
        if (f == nullptr)
            return false;
        const auto n = f->asU64();
        if (!n.has_value())
            return false;
        *out = *n;
        return true;
    };
    u64 sms = 0, banks = 0, interval = 0, start = 0, end = 0;
    u64 clat = 0, dlat = 0;
    if (!str("git_sha", &meta.gitSha) ||
        !str("workload", &meta.workload) ||
        !str("frontend", &meta.frontend) ||
        !str("image_sha256", &meta.imageSha) ||
        !str("config", &meta.config) || !num("sms", &sms) ||
        !num("banks", &banks) || !num("window_interval", &interval) ||
        !num("trace_start", &start) || !num("trace_end", &end) ||
        !num("compress_latency", &clat) ||
        !num("decompress_latency", &dlat))
        return std::nullopt;
    if (sms > 0xFFFF || banks > 0xFFFF || interval > 0xFFFFFFFFull ||
        clat > 0xFFFFFFFFull || dlat > 0xFFFFFFFFull)
        return std::nullopt;
    meta.numSms = static_cast<u32>(sms);
    meta.numBanks = static_cast<u32>(banks);
    meta.windowInterval = static_cast<u32>(interval);
    meta.traceStart = start;
    meta.traceEnd = end;
    meta.compressLatency = static_cast<u32>(clat);
    meta.decompressLatency = static_cast<u32>(dlat);
    return meta;
}

} // namespace

const char *
traceStreamGitSha()
{
    return WC_GIT_SHA;
}

TraceStreamSink::TraceStreamSink(std::string path,
                                 const TraceStreamMeta &meta)
    : path_(std::move(path))
{
    WC_ASSERT(!path_.empty(), "trace dump path must not be empty");
    fd_ = ::open(path_.c_str(),
                 O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd_ < 0)
        WC_FATAL("cannot open trace dump '" << path_ << "'");

    const std::string json = headerJson(meta);
    std::vector<u8> header(sizeof(kTraceDumpMagic) + 8 + json.size());
    std::memcpy(header.data(), kTraceDumpMagic, sizeof(kTraceDumpMagic));
    put32(header.data() + 8, kTraceDumpVersion);
    put32(header.data() + 12, static_cast<u32>(json.size()));
    std::memcpy(header.data() + 16, json.data(), json.size());
    writeAll(header.data(), header.size());

    buf_.resize(kBatchHeaderBytes +
                static_cast<std::size_t>(kBatchEvents) *
                    kPackedEventBytes);
}

TraceStreamSink::~TraceStreamSink()
{
    // Destruction without finalize() (a fatal mid-run) leaves a dump
    // with no footer — exactly what the loader reports as truncated.
    if (fd_ >= 0)
        ::close(fd_);
}

void
TraceStreamSink::writeAll(const u8 *data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::write(fd_, data + off, n - off);
        if (w < 0)
            WC_FATAL("cannot append to trace dump '" << path_ << "'");
        off += static_cast<std::size_t>(w);
    }
}

void
TraceStreamSink::push(const TraceEvent &ev)
{
    WC_ASSERT(!finalized_, "push after finalize on trace dump");
    u8 *p = buf_.data() + kBatchHeaderBytes +
            static_cast<std::size_t>(bufEvents_) * kPackedEventBytes;
    put64(p, ev.cycle);
    put32(p + 8, ev.a);
    put32(p + 12, ev.b);
    put16(p + 16, ev.sm);
    put16(p + 18, ev.lane);
    put16(p + 20, ev.c);
    p[22] = static_cast<u8>(ev.kind);
    ++bufEvents_;
    ++events_;
    if (bufEvents_ == kBatchEvents)
        flushEvents();
}

void
TraceStreamSink::flushEvents()
{
    if (bufEvents_ == 0)
        return;
    const u32 payload =
        4 + bufEvents_ * kPackedEventBytes; // count + events
    buf_[0] = kRecordEventBatch;
    put32(buf_.data() + 1, payload);
    put32(buf_.data() + 5, bufEvents_);
    writeAll(buf_.data(), kBatchHeaderBytes +
                              static_cast<std::size_t>(bufEvents_) *
                                  kPackedEventBytes);
    bufEvents_ = 0;
}

void
TraceStreamSink::finalize(Cycle cycles, const ObsWindows &windows)
{
    WC_ASSERT(!finalized_, "double finalize on trace dump");
    finalized_ = true;
    flushEvents();

    // Window-summary rows: one record per interval, dense from 0 so
    // the analyzer indexes them directly.
    u8 rec[1 + 4 + kPackedWindowBytes];
    for (std::size_t i = 0; i < windows.rows().size(); ++i) {
        const WindowRow &r = windows.rows()[i];
        rec[0] = kRecordWindowRow;
        put32(rec + 1, kPackedWindowBytes);
        u8 *p = rec + 5;
        put64(p, static_cast<u64>(i));
        put64(p + 8, r.issued);
        put64(p + 16, r.dummyMovs);
        put64(p + 24, r.regWrites);
        put64(p + 32, r.storedBytes);
        put64(p + 40, r.rawBytes);
        put64(p + 48, r.gatedBankCycles);
        put64(p + 56, r.bankCycles);
        put64(p + 64, r.smCycles);
        writeAll(rec, sizeof(rec));
    }

    u8 footer[1 + 4 + 32];
    footer[0] = kRecordFooter;
    put32(footer + 1, 32);
    put64(footer + 5, events_);
    put64(footer + 13, static_cast<u64>(windows.rows().size()));
    put64(footer + 21, static_cast<u64>(cycles));
    put64(footer + 29, kTraceDumpEndMarker);
    writeAll(footer, sizeof(footer));

    if (::fsync(fd_) != 0)
        WC_FATAL("cannot fsync trace dump '" << path_ << "'");
    ::close(fd_);
    fd_ = -1;
}

namespace {

std::optional<TraceDump>
failLoad(TraceDumpError *err, std::string code, std::string detail)
{
    if (err != nullptr)
        *err = {std::move(code), std::move(detail)};
    return std::nullopt;
}

} // namespace

std::optional<TraceDump>
loadTraceDump(const std::string &path, TraceDumpError *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return failLoad(err, "open_failed",
                        "cannot open trace dump '" + path + "'");
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const u8 *data = reinterpret_cast<const u8 *>(raw.data());
    const std::size_t size = raw.size();

    if (size < 16 ||
        std::memcmp(data, kTraceDumpMagic, sizeof(kTraceDumpMagic)) != 0)
        return failLoad(err, "bad_magic",
                        "not a wc-trace dump (bad or short magic)");
    const u32 version = get32(data + 8);
    if (version != kTraceDumpVersion)
        return failLoad(err, "bad_version",
                        "unsupported dump version " +
                            std::to_string(version));
    const u32 json_len = get32(data + 12);
    if (16 + static_cast<std::size_t>(json_len) > size)
        return failLoad(err, "truncated_dump",
                        "header JSON extends past end of file");
    const std::string json(raw, 16, json_len);
    const auto meta = metaFromJson(json);
    if (!meta.has_value())
        return failLoad(err, "bad_header",
                        "header JSON is missing required fields");

    TraceDump dump;
    dump.meta = *meta;

    std::size_t pos = 16 + json_len;
    bool saw_footer = false;
    u64 footer_events = 0, footer_windows = 0;
    while (pos < size) {
        if (pos + 5 > size)
            return failLoad(err, "truncated_dump",
                            "record header torn at byte " +
                                std::to_string(pos));
        const u8 type = data[pos];
        const u32 len = get32(data + pos + 1);
        pos += 5;
        if (pos + len > size)
            return failLoad(err, "truncated_dump",
                            "record payload torn at byte " +
                                std::to_string(pos));
        const u8 *payload = data + pos;
        pos += len;

        if (saw_footer)
            return failLoad(err, "trailing_data",
                            "records after the footer");

        if (type == kRecordEventBatch) {
            if (len < 4)
                return failLoad(err, "bad_record",
                                "event batch shorter than its count");
            const u32 count = get32(payload);
            if (4 + static_cast<u64>(count) * kPackedEventBytes != len)
                return failLoad(err, "bad_record",
                                "event batch length/count mismatch");
            for (u32 i = 0; i < count; ++i) {
                const u8 *p = payload + 4 +
                              static_cast<std::size_t>(i) *
                                  kPackedEventBytes;
                if (p[22] >= kNumTraceEventKinds)
                    return failLoad(err, "bad_record",
                                    "unknown event kind " +
                                        std::to_string(p[22]));
                TraceEvent ev;
                ev.cycle = get64(p);
                ev.a = get32(p + 8);
                ev.b = get32(p + 12);
                ev.sm = get16(p + 16);
                ev.lane = get16(p + 18);
                ev.c = get16(p + 20);
                ev.kind = static_cast<TraceEventKind>(p[22]);
                dump.events.push_back(ev);
            }
        } else if (type == kRecordWindowRow) {
            if (len != kPackedWindowBytes)
                return failLoad(err, "bad_record",
                                "window row has wrong size");
            const u64 index = get64(payload);
            if (index != dump.windows.size())
                return failLoad(err, "bad_record",
                                "window rows out of order");
            WindowRow r;
            r.issued = get64(payload + 8);
            r.dummyMovs = get64(payload + 16);
            r.regWrites = get64(payload + 24);
            r.storedBytes = get64(payload + 32);
            r.rawBytes = get64(payload + 40);
            r.gatedBankCycles = get64(payload + 48);
            r.bankCycles = get64(payload + 56);
            r.smCycles = get64(payload + 64);
            dump.windows.push_back(r);
        } else if (type == kRecordFooter) {
            if (len != 32)
                return failLoad(err, "bad_record",
                                "footer has wrong size");
            footer_events = get64(payload);
            footer_windows = get64(payload + 8);
            dump.cycles = get64(payload + 16);
            if (get64(payload + 24) != kTraceDumpEndMarker)
                return failLoad(err, "bad_record",
                                "footer end marker mismatch");
            saw_footer = true;
        } else {
            // Forward compatibility: unknown records are skippable by
            // construction — but within version 1 they are a defect.
            return failLoad(err, "bad_record",
                            "unknown record type " +
                                std::to_string(type));
        }
    }
    if (!saw_footer)
        return failLoad(err, "truncated_dump",
                        "no footer: the writer did not finalize "
                        "(crashed mid-run?) or the file was cut short");
    if (footer_events != dump.events.size() ||
        footer_windows != dump.windows.size())
        return failLoad(err, "footer_mismatch",
                        "footer counts events=" +
                            std::to_string(footer_events) + " windows=" +
                            std::to_string(footer_windows) +
                            " but file holds events=" +
                            std::to_string(dump.events.size()) +
                            " windows=" +
                            std::to_string(dump.windows.size()));
    return dump;
}

} // namespace warpcomp
