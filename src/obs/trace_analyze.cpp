#include "obs/trace_analyze.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/json_writer.hpp"
#include "obs/chrome_trace.hpp"

namespace warpcomp {

namespace {

/** Provenance echo shared by every report, so each artifact is
 *  self-describing on its own. */
void
metaBlock(JsonWriter &w, const TraceDump &dump)
{
    w.key("meta");
    w.beginObject();
    w.field("git_sha", dump.meta.gitSha);
    w.field("workload", dump.meta.workload);
    w.field("frontend", dump.meta.frontend);
    w.field("image_sha256", dump.meta.imageSha);
    w.field("config", dump.meta.config);
    w.field("sms", dump.meta.numSms);
    w.field("banks", dump.meta.numBanks);
    w.field("window_interval", dump.meta.windowInterval);
    w.field("trace_start", static_cast<u64>(dump.meta.traceStart));
    w.field("trace_end", static_cast<u64>(dump.meta.traceEnd));
    w.field("cycles", static_cast<u64>(dump.cycles));
    w.endObject();
}

struct StallBuckets
{
    u64 collectorRetry = 0;
    u64 decompressPenalty = 0;
    u64 scoreboard = 0;
    u64 issueBlocked = 0;
};

void
stallFields(JsonWriter &w, const StallBuckets &b)
{
    w.key("stall_cycles");
    w.beginObject();
    w.field("collector_retry", b.collectorRetry);
    w.field("decompress_penalty", b.decompressPenalty);
    w.field("scoreboard", b.scoreboard);
    w.field("issue_blocked", b.issueBlocked);
    w.endObject();
}

/** Count of values in @p cycles strictly inside (lo, hi); the vectors
 *  are chronological so a window walk suffices. */
u64
countInGap(const std::vector<Cycle> &cycles, Cycle lo, Cycle hi)
{
    auto first = std::upper_bound(cycles.begin(), cycles.end(), lo);
    auto last = std::lower_bound(first, cycles.end(), hi);
    return static_cast<u64>(last - first);
}

} // namespace

void
writeDumpSummary(std::ostream &os, const TraceDump &dump)
{
    u64 by_kind[kNumTraceEventKinds] = {};
    for (const TraceEvent &ev : dump.events)
        ++by_kind[static_cast<u32>(ev.kind)];

    WindowRow tot;
    for (const WindowRow &r : dump.windows) {
        tot.issued += r.issued;
        tot.dummyMovs += r.dummyMovs;
        tot.regWrites += r.regWrites;
        tot.storedBytes += r.storedBytes;
        tot.rawBytes += r.rawBytes;
        tot.gatedBankCycles += r.gatedBankCycles;
        tot.bankCycles += r.bankCycles;
        tot.smCycles += r.smCycles;
    }

    JsonWriter w(os);
    w.beginObject();
    w.field("report", "summary");
    metaBlock(w, dump);
    w.field("events", static_cast<u64>(dump.events.size()));
    w.field("windows", static_cast<u64>(dump.windows.size()));
    w.key("events_by_kind");
    w.beginObject();
    for (u32 k = 0; k < kNumTraceEventKinds; ++k)
        w.field(traceEventName(static_cast<TraceEventKind>(k)),
                by_kind[k]);
    w.endObject();
    w.key("window_totals");
    w.beginObject();
    w.field("issued", tot.issued);
    w.field("dummy_movs", tot.dummyMovs);
    w.field("reg_writes", tot.regWrites);
    w.field("stored_bytes", tot.storedBytes);
    w.field("raw_bytes", tot.rawBytes);
    w.field("compression_ratio",
            tot.storedBytes > 0
                ? static_cast<double>(tot.rawBytes) /
                      static_cast<double>(tot.storedBytes)
                : 0.0);
    w.field("gated_bank_fraction",
            tot.bankCycles > 0
                ? static_cast<double>(tot.gatedBankCycles) /
                      static_cast<double>(tot.bankCycles)
                : 0.0);
    w.field("ipc",
            tot.smCycles > 0
                ? static_cast<double>(tot.issued) *
                      static_cast<double>(
                          dump.meta.numSms > 0 ? dump.meta.numSms : 1) /
                      static_cast<double>(tot.smCycles)
                : 0.0);
    w.endObject();
    w.endObject();
    os << '\n';
}

void
writeBankHeatmap(std::ostream &os, const TraceDump &dump)
{
    const u32 bucket = dump.meta.windowInterval > 0
                           ? dump.meta.windowInterval
                           : kHeatmapFallbackBucket;
    const u64 buckets =
        dump.cycles > 0 ? (static_cast<u64>(dump.cycles) - 1) / bucket + 1
                        : 0;

    // Dense (sm, bank) → per-bucket conflict counts. Every bank of
    // every SM gets a row, so the matrix shape is run-independent.
    std::map<std::pair<u16, u16>, std::vector<u64>> rows;
    for (u32 sm = 0; sm < dump.meta.numSms; ++sm)
        for (u32 bank = 0; bank < dump.meta.numBanks; ++bank)
            rows[{static_cast<u16>(sm), static_cast<u16>(bank)}]
                .assign(static_cast<std::size_t>(buckets), 0);
    for (const TraceEvent &ev : dump.events) {
        if (ev.kind != TraceEventKind::BankConflict)
            continue;
        auto it = rows.find({ev.sm, ev.lane});
        if (it == rows.end())
            it = rows.emplace(std::make_pair(ev.sm, ev.lane),
                              std::vector<u64>(
                                  static_cast<std::size_t>(buckets), 0))
                     .first;
        const std::size_t b =
            static_cast<std::size_t>(ev.cycle / bucket);
        if (b < it->second.size())
            it->second[b] += 1;
    }

    JsonWriter w(os);
    w.beginObject();
    w.field("report", "heatmap");
    metaBlock(w, dump);
    w.field("bucket_cycles", bucket);
    w.field("buckets", buckets);
    w.key("rows");
    w.beginArray();
    u64 grand_total = 0;
    for (const auto &[key, counts] : rows) {
        u64 total = 0;
        for (u64 c : counts)
            total += c;
        grand_total += total;
        w.beginObject();
        w.field("sm", key.first);
        w.field("bank", key.second);
        w.field("conflicts", total);
        w.key("per_bucket");
        w.beginArray();
        for (u64 c : counts)
            w.value(c);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.field("total_conflicts", grand_total);
    w.endObject();
    os << '\n';
}

void
writeStallReport(std::ostream &os, const TraceDump &dump)
{
    // Per-(sm, warp slot) chronological cycle streams.
    struct WarpStreams
    {
        std::vector<Cycle> issues;      // WarpIssue + DummyMov
        std::vector<Cycle> conflicts;   // BankConflict (ev.a = warp)
        std::vector<Cycle> decompress;  // Decompress
        std::vector<Cycle> writebacks;  // Writeback
    };
    std::map<std::pair<u16, u16>, WarpStreams> warps;
    for (const TraceEvent &ev : dump.events) {
        switch (ev.kind) {
          case TraceEventKind::WarpIssue:
          case TraceEventKind::DummyMov:
            warps[{ev.sm, ev.lane}].issues.push_back(ev.cycle);
            break;
          case TraceEventKind::BankConflict:
            warps[{ev.sm, static_cast<u16>(ev.a)}].conflicts.push_back(
                ev.cycle);
            break;
          case TraceEventKind::Decompress:
            warps[{ev.sm, ev.lane}].decompress.push_back(ev.cycle);
            break;
          case TraceEventKind::Writeback:
            warps[{ev.sm, ev.lane}].writebacks.push_back(ev.cycle);
            break;
          default:
            break;
        }
    }

    const u64 dlat = dump.meta.decompressLatency;
    StallBuckets grand;
    u64 grand_issues = 0;

    JsonWriter w(os);
    w.beginObject();
    w.field("report", "stalls");
    metaBlock(w, dump);
    w.field("decompress_latency", dump.meta.decompressLatency);
    w.key("attribution");
    w.value("per inter-issue gap, in priority order: one cycle per "
            "bank-conflict retry, decompress_latency per decompressor "
            "activation, cycles up to the warp's last writeback in the "
            "gap (scoreboard), remainder issue-blocked");
    w.key("warps");
    w.beginArray();
    for (const auto &[key, ws] : warps) {
        if (ws.issues.empty())
            continue; // conflicts recorded against a warp that never
                      // issued in-window: nothing to attribute
        StallBuckets b;
        for (std::size_t i = 1; i < ws.issues.size(); ++i) {
            const Cycle t0 = ws.issues[i - 1];
            const Cycle t1 = ws.issues[i];
            if (t1 <= t0 + 1)
                continue;
            u64 gap = t1 - t0 - 1;

            const u64 retries = countInGap(ws.conflicts, t0, t1);
            const u64 retry_c = std::min(gap, retries);
            b.collectorRetry += retry_c;
            gap -= retry_c;

            const u64 dec = countInGap(ws.decompress, t0, t1 + 1);
            const u64 dec_c = std::min(gap, dec * dlat);
            b.decompressPenalty += dec_c;
            gap -= dec_c;

            if (gap > 0) {
                auto first = std::upper_bound(ws.writebacks.begin(),
                                              ws.writebacks.end(), t0);
                auto last = std::lower_bound(first, ws.writebacks.end(),
                                             t1);
                if (first != last) {
                    const Cycle wl = *(last - 1);
                    const u64 sb = std::min(gap, wl - t0);
                    b.scoreboard += sb;
                    gap -= sb;
                }
            }
            b.issueBlocked += gap;
        }
        grand.collectorRetry += b.collectorRetry;
        grand.decompressPenalty += b.decompressPenalty;
        grand.scoreboard += b.scoreboard;
        grand.issueBlocked += b.issueBlocked;
        grand_issues += ws.issues.size();

        w.beginObject();
        w.field("sm", key.first);
        w.field("warp", key.second);
        w.field("issues", static_cast<u64>(ws.issues.size()));
        w.field("first_issue", static_cast<u64>(ws.issues.front()));
        w.field("last_issue", static_cast<u64>(ws.issues.back()));
        w.field("bank_conflicts",
                static_cast<u64>(ws.conflicts.size()));
        w.field("decompress_activations",
                static_cast<u64>(ws.decompress.size()));
        stallFields(w, b);
        w.endObject();
    }
    w.endArray();
    w.key("totals");
    w.beginObject();
    w.field("issues", grand_issues);
    stallFields(w, grand);
    w.endObject();
    w.endObject();
    os << '\n';
}

void
writeDecisionReport(std::ostream &os, const TraceDump &dump)
{
    // Per-register encode timeline: CompressDecision carries the
    // destination register in ev.c, achieved/stored bytes in a/b.
    struct RegAgg
    {
        u64 decisions = 0;
        u64 transitions = 0;   // stored size changed vs previous write
        u64 compressed = 0;    // stored < 128 B (kWarpRegBytes)
        u32 minStored = ~0u;
        u32 maxStored = 0;
        Cycle first = 0;
        Cycle last = 0;
        u32 lastStored = ~0u;
    };
    std::map<std::tuple<u16, u16, u16>, RegAgg> regs;

    // Dummy-MOV bursts per warp: maximal runs with inter-event gap
    // ≤ kDummyMovBurstGap cycles.
    struct BurstAgg
    {
        u64 total = 0;
        u64 bursts = 0;
        u64 longest = 0;
        u64 current = 0;
        Cycle lastCycle = 0;
    };
    std::map<std::pair<u16, u16>, BurstAgg> bursts;

    for (const TraceEvent &ev : dump.events) {
        if (ev.kind == TraceEventKind::CompressDecision) {
            RegAgg &r = regs[{ev.sm, ev.lane, ev.c}];
            if (r.decisions == 0)
                r.first = ev.cycle;
            else if (ev.b != r.lastStored)
                ++r.transitions;
            ++r.decisions;
            if (ev.b < kWarpRegBytes)
                ++r.compressed;
            r.minStored = std::min(r.minStored, ev.b);
            r.maxStored = std::max(r.maxStored, ev.b);
            r.last = ev.cycle;
            r.lastStored = ev.b;
        } else if (ev.kind == TraceEventKind::DummyMov) {
            BurstAgg &bu = bursts[{ev.sm, ev.lane}];
            if (bu.total == 0 ||
                ev.cycle > bu.lastCycle + kDummyMovBurstGap) {
                ++bu.bursts;
                bu.longest = std::max(bu.longest, bu.current);
                bu.current = 0;
            }
            ++bu.current;
            ++bu.total;
            bu.lastCycle = ev.cycle;
        }
    }

    u64 total_decisions = 0, total_transitions = 0, total_movs = 0;

    JsonWriter w(os);
    w.beginObject();
    w.field("report", "decisions");
    metaBlock(w, dump);
    w.field("burst_gap_cycles", kDummyMovBurstGap);
    w.key("registers");
    w.beginArray();
    for (const auto &[key, r] : regs) {
        total_decisions += r.decisions;
        total_transitions += r.transitions;
        w.beginObject();
        w.field("sm", std::get<0>(key));
        w.field("warp", std::get<1>(key));
        w.field("reg", std::get<2>(key));
        w.field("decisions", r.decisions);
        w.field("transitions", r.transitions);
        w.field("compressed_decisions", r.compressed);
        w.field("min_stored_bytes", r.minStored);
        w.field("max_stored_bytes", r.maxStored);
        w.field("first_cycle", static_cast<u64>(r.first));
        w.field("last_cycle", static_cast<u64>(r.last));
        w.endObject();
    }
    w.endArray();
    w.key("dummy_mov_bursts");
    w.beginArray();
    for (auto &[key, bu] : bursts) {
        bu.longest = std::max(bu.longest, bu.current);
        total_movs += bu.total;
        w.beginObject();
        w.field("sm", key.first);
        w.field("warp", key.second);
        w.field("bursts", bu.bursts);
        w.field("longest", bu.longest);
        w.field("total_movs", bu.total);
        w.endObject();
    }
    w.endArray();
    w.key("totals");
    w.beginObject();
    w.field("decisions", total_decisions);
    w.field("transitions", total_transitions);
    w.field("dummy_movs", total_movs);
    w.endObject();
    w.endObject();
    os << '\n';
}

void
writeDumpChromeTrace(std::ostream &os, const TraceDump &dump)
{
    const ChromeTraceView view{dump.events,
                               dump.windows,
                               dump.meta.windowInterval,
                               dump.meta.traceStart,
                               dump.meta.traceEnd,
                               0};
    ChromeTraceMeta meta;
    meta.workload = dump.meta.workload;
    meta.config = dump.meta.config;
    meta.numSms = dump.meta.numSms;
    meta.numBanks = dump.meta.numBanks;
    meta.cycles = dump.cycles;
    writeChromeTrace(os, view, meta);
}

} // namespace warpcomp
