/**
 * @file
 * Streaming trace export (--trace-out=FILE): spills every in-window
 * trace event to disk as it is emitted, in a compact, versioned,
 * self-describing binary record format, so full-run traces exist
 * without rerunning the simulator and memory stays bounded regardless
 * of run length (the drop-oldest ring is optional while streaming).
 *
 * File layout (DESIGN.md §9; all integers little-endian):
 *
 *   file   := header record* footer-record
 *   header := magic[8]="WCTRACE\n"  u32 version=1
 *             u32 json_len  json[json_len]
 *   record := u8 type  u32 payload_len  payload[payload_len]
 *
 * The header JSON carries provenance and everything the offline
 * analyzer needs to interpret the records without the simulator: git
 * SHA, workload, frontend ("dsl"/"rv32") + image SHA-256, config
 * label, SM/bank counts, window interval, trace window bounds, the
 * comp/decomp latencies, and the event-kind name table.
 *
 * Record types: 1 = event batch (u32 count, then count × 23-byte
 * packed events), 2 = one window-summary row (u64 index + 8 u64
 * counters), 3 = footer (event/window/cycle totals + end marker).
 * Unknown record types are skippable via their length prefix. The
 * writer fsyncs once at finalize; a crash mid-run leaves a dump with
 * complete records but no footer, which the loader reports as a
 * structured "truncated_dump" error instead of trusting a torn tail —
 * the same durability contract as the sweep journal, with detection
 * instead of silent tolerance because a partial trace would silently
 * skew every offline report.
 *
 * Determinism: the byte stream is a pure function of the simulated
 * run + build provenance (no wall clock, no host info), so dumps are
 * byte-identical across reruns and harness thread counts — CI diffs
 * them.
 */

#ifndef WARPCOMP_OBS_TRACE_STREAM_HPP
#define WARPCOMP_OBS_TRACE_STREAM_HPP

#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace warpcomp {

/** Format constants shared by writer, loader, and tests. */
inline constexpr char kTraceDumpMagic[8] = {'W', 'C', 'T', 'R',
                                            'A', 'C', 'E', '\n'};
inline constexpr u32 kTraceDumpVersion = 1;
/** Bytes of one packed event: cycle 8, a 4, b 4, sm 2, lane 2, c 2,
 *  kind 1. */
inline constexpr u32 kPackedEventBytes = 23;
/** Bytes of one window-summary payload: index + 8 counters. */
inline constexpr u32 kPackedWindowBytes = 9 * 8;
/** Record type tags. */
inline constexpr u8 kRecordEventBatch = 1;
inline constexpr u8 kRecordWindowRow = 2;
inline constexpr u8 kRecordFooter = 3;
/** End marker inside the footer payload ("WCTREND!"). */
inline constexpr u64 kTraceDumpEndMarker = 0x21444E4552544357ull;

/** Provenance + run shape stamped into the dump header. */
struct TraceStreamMeta
{
    std::string gitSha;
    std::string workload;
    std::string frontend = "dsl";   ///< "dsl" | "rv32"
    std::string imageSha;           ///< SHA-256 for rv32, else empty
    std::string config;             ///< human config label (suite label)
    u32 numSms = 0;
    u32 numBanks = 0;
    u32 windowInterval = 0;
    Cycle traceStart = 0;
    Cycle traceEnd = ~0ull;
    u32 compressLatency = 0;
    u32 decompressLatency = 0;
};

/**
 * Append-only dump writer. Opens the file and writes the header at
 * construction (fatal on I/O errors: a run asked to stream must not
 * silently produce nothing), buffers packed events in a preallocated
 * block — push() never allocates, the hot loop stays allocation-free —
 * and flushes full batches with one write(2) each. finalize() drains
 * the buffer, appends the window-summary rows and the footer, and
 * fsyncs, so a finished dump is durable and self-checking.
 */
class TraceStreamSink
{
  public:
    TraceStreamSink(std::string path, const TraceStreamMeta &meta);
    ~TraceStreamSink();

    TraceStreamSink(const TraceStreamSink &) = delete;
    TraceStreamSink &operator=(const TraceStreamSink &) = delete;

    const std::string &path() const { return path_; }
    u64 eventsWritten() const { return events_; }

    /** Append one event (buffered; no allocation). */
    void push(const TraceEvent &ev);

    /** Flush events, append window rows + footer, fsync, close. */
    void finalize(Cycle cycles, const ObsWindows &windows);

  private:
    void flushEvents();
    void writeAll(const u8 *data, std::size_t n);

    std::string path_;
    int fd_ = -1;
    /** Batch buffer: [type u8][len u32][count u32][events...]. */
    std::vector<u8> buf_;
    u32 bufEvents_ = 0;
    u64 events_ = 0;
    bool finalized_ = false;
};

/** Structured load failure: `code` is a stable machine-readable tag
 *  (open_failed | bad_magic | bad_version | bad_header |
 *  truncated_dump | bad_record | footer_mismatch | trailing_data),
 *  `detail` is for humans. */
struct TraceDumpError
{
    std::string code;
    std::string detail;
};

/** One fully-loaded, footer-verified dump. */
struct TraceDump
{
    TraceStreamMeta meta;
    std::vector<TraceEvent> events;     ///< chronological, complete
    std::vector<WindowRow> windows;     ///< row i covers window i
    Cycle cycles = 0;                   ///< run length from the footer
};

/**
 * Load and verify @p path. Returns nullopt with @p err filled on any
 * defect — unreadable file, wrong magic/version, torn tail (missing
 * or short footer), counts that disagree with the footer, or bytes
 * after it. Never crashes on hostile input.
 */
std::optional<TraceDump> loadTraceDump(const std::string &path,
                                       TraceDumpError *err);

/** The git SHA dumps are stamped with (build-time constant). */
const char *traceStreamGitSha();

} // namespace warpcomp

#endif // WARPCOMP_OBS_TRACE_STREAM_HPP
