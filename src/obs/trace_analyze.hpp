/**
 * @file
 * Offline trace analytics over streamed dumps (--trace-out files): the
 * report generators behind the `wc_trace` CLI. Every report is a
 * deterministic pure function of the loaded dump — JSON via the shared
 * JsonWriter, iteration in (sm, warp/bank, cycle) order — so reports
 * are byte-identical across reruns, machines, and the harness thread
 * count that produced the dump. None of them rerun the simulator.
 *
 * Reports (DESIGN.md §9):
 *  - summary:   provenance echo + event-kind census + window totals
 *  - heatmap:   bank-contention matrix, (sm, bank) × time bucket
 *               conflict counts from BankConflict events
 *  - stalls:    per-warp stall attribution — inter-issue gaps split
 *               into collector-retry / decompress-penalty / scoreboard
 *               / issue-blocked buckets by a documented priority rule
 *  - decisions: per-register BDI encoding timelines (decision counts,
 *               stored-size transitions) + dummy-MOV burst shapes
 *  - chrome:    the live `--trace` Perfetto document re-emitted from
 *               the dump (shared serializer, byte-identical)
 */

#ifndef WARPCOMP_OBS_TRACE_ANALYZE_HPP
#define WARPCOMP_OBS_TRACE_ANALYZE_HPP

#include <ostream>

#include "obs/trace_stream.hpp"

namespace warpcomp {

/** Time-bucket width when the dump has no window timeline
 *  (window_interval == 0): heatmap columns fall back to this. */
inline constexpr u32 kHeatmapFallbackBucket = 1024;

/** Two dummy-MOV events of one warp ≤ this many cycles apart belong
 *  to the same burst (decompression injects them back-to-back). */
inline constexpr u64 kDummyMovBurstGap = 2;

void writeDumpSummary(std::ostream &os, const TraceDump &dump);
void writeBankHeatmap(std::ostream &os, const TraceDump &dump);
void writeStallReport(std::ostream &os, const TraceDump &dump);
void writeDecisionReport(std::ostream &os, const TraceDump &dump);
void writeDumpChromeTrace(std::ostream &os, const TraceDump &dump);

} // namespace warpcomp

#endif // WARPCOMP_OBS_TRACE_ANALYZE_HPP
