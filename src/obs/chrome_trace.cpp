#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/json_writer.hpp"

namespace warpcomp {

namespace {

/** pid 0 is the GPU-wide counter track; SM i maps to pid i+1. */
u32
pidOfSm(u16 sm)
{
    return static_cast<u32>(sm) + 1;
}

bool
isBankLaneEvent(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::GateOff:
      case TraceEventKind::GateWake:
      case TraceEventKind::ScrubVisit:
      case TraceEventKind::BankConflict:
        return true;
      default:
        return false;
    }
}

u32
tidOf(const TraceEvent &ev)
{
    return isBankLaneEvent(ev.kind) ? kBankLaneBase + ev.lane : ev.lane;
}

void
metadataEvent(JsonWriter &w, const char *name, u32 pid, u32 tid,
              const char *arg_key, const std::string &arg_value)
{
    w.beginObject();
    w.field("name", name);
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("tid", tid);
    w.key("args");
    w.beginObject();
    w.field(arg_key, arg_value);
    w.endObject();
    w.endObject();
}

void
completeEvent(JsonWriter &w, const char *name, u32 pid, u32 tid,
              Cycle start, Cycle end)
{
    w.beginObject();
    w.field("name", name);
    w.field("ph", "X");
    w.field("ts", static_cast<u64>(start));
    w.field("dur", static_cast<u64>(end > start ? end - start : 0));
    w.field("pid", pid);
    w.field("tid", tid);
    w.endObject();
}

void
counterEvent(JsonWriter &w, const char *name, Cycle ts,
             const char *value_key, double value)
{
    w.beginObject();
    w.field("name", name);
    w.field("ph", "C");
    w.field("ts", static_cast<u64>(ts));
    w.field("pid", 0u);
    w.field("tid", 0u);
    w.key("args");
    w.beginObject();
    w.field(value_key, value);
    w.endObject();
    w.endObject();
}

/** Per-kind args object for instant pipeline/bank events. */
void
eventArgs(JsonWriter &w, const TraceEvent &ev)
{
    w.key("args");
    w.beginObject();
    switch (ev.kind) {
      case TraceEventKind::WarpIssue:
        w.field("pc", ev.a);
        w.field("lanes", ev.b);
        break;
      case TraceEventKind::DummyMov:
        w.field("dst", ev.a);
        break;
      case TraceEventKind::CompressDecision:
        w.field("achieved_bytes", ev.a);
        w.field("stored_bytes", ev.b);
        w.field("reg", ev.c);
        break;
      case TraceEventKind::OperandCollect:
        w.field("ops", ev.a);
        w.field("compressed_srcs", ev.b);
        break;
      case TraceEventKind::Writeback:
        w.field("banks", ev.a);
        w.field("compressed", ev.b != 0);
        break;
      case TraceEventKind::SeuCorruption:
        w.field("lanes", ev.a);
        w.field("amplified", ev.b != 0);
        break;
      case TraceEventKind::ScrubVisit:
        w.field("banks", ev.a);
        break;
      case TraceEventKind::GateWake:
        w.field("wakeup_latency", ev.a);
        break;
      case TraceEventKind::BankConflict:
        w.field("warp", ev.a);
        break;
      default:
        break;
    }
    w.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &os, const ChromeTraceView &view,
                 const ChromeTraceMeta &meta)
{
    const std::vector<TraceEvent> &events = view.events;
    // Gate intervals are clamped to the traced window; a wake with no
    // recorded gate-off means the bank was gated since before the
    // window opened (banks reset gated in the compressed design).
    const Cycle window_start = view.traceStart;
    const Cycle window_end =
        std::min<Cycle>(meta.cycles, view.traceEnd);

    // Pass 1: lanes present, so every lane gets a stable name.
    std::set<u16> sms;
    std::set<std::pair<u16, u16>> warp_lanes; // (sm, warp slot)
    std::set<std::pair<u16, u16>> bank_lanes; // (sm, bank)
    for (const TraceEvent &ev : events) {
        sms.insert(ev.sm);
        if (isBankLaneEvent(ev.kind))
            bank_lanes.insert({ev.sm, ev.lane});
        else
            warp_lanes.insert({ev.sm, ev.lane});
    }

    JsonWriter w(os);
    w.beginObject();
    w.key("otherData");
    w.beginObject();
    w.field("workload", meta.workload);
    w.field("config", meta.config);
    w.field("sms", meta.numSms);
    w.field("banks", meta.numBanks);
    w.field("cycles", static_cast<u64>(meta.cycles));
    w.field("trace_start", static_cast<u64>(window_start));
    w.field("trace_end", static_cast<u64>(window_end));
    w.field("events_recorded", static_cast<u64>(events.size()));
    w.field("events_dropped", view.dropped);
    w.field("window_interval", view.windowInterval);
    w.field("timestamp_unit", "cycle");
    w.endObject();

    w.key("traceEvents");
    w.beginArray();

    // Lane metadata. Bank lanes sort after warp lanes via their tid
    // offset; sort indices make Perfetto keep that order.
    const bool have_counters = !view.windows.empty();
    if (have_counters)
        metadataEvent(w, "process_name", 0, 0, "name", "GPU");
    for (u16 sm : sms) {
        metadataEvent(w, "process_name", pidOfSm(sm), 0, "name",
                      "SM" + std::to_string(sm));
    }
    for (const auto &[sm, warp] : warp_lanes) {
        metadataEvent(w, "thread_name", pidOfSm(sm), warp, "name",
                      "warp " + std::to_string(warp));
    }
    for (const auto &[sm, bank] : bank_lanes) {
        metadataEvent(w, "thread_name", pidOfSm(sm),
                      kBankLaneBase + bank, "name",
                      "bank " + std::to_string(bank));
    }

    // Pass 2: events in chronological order. Gate-off/wake pairs fold
    // into "gated" intervals on the bank lane (plus a short "waking"
    // interval covering the wakeup latency); everything else is an
    // instant event.
    std::map<std::pair<u16, u16>, Cycle> open_off;
    for (const TraceEvent &ev : events) {
        const u32 pid = pidOfSm(ev.sm);
        if (ev.kind == TraceEventKind::GateOff) {
            open_off[{ev.sm, ev.lane}] = ev.cycle;
            continue;
        }
        if (ev.kind == TraceEventKind::GateWake) {
            const auto key = std::make_pair(ev.sm, ev.lane);
            const auto it = open_off.find(key);
            const Cycle off_at =
                it != open_off.end() ? it->second : window_start;
            if (it != open_off.end())
                open_off.erase(it);
            completeEvent(w, "gated", pid, kBankLaneBase + ev.lane,
                          off_at, ev.cycle);
            completeEvent(w, "waking", pid, kBankLaneBase + ev.lane,
                          ev.cycle, ev.cycle + ev.a);
            continue;
        }

        w.beginObject();
        w.field("name", traceEventName(ev.kind));
        w.field("ph", "i");
        w.field("s", "t");
        w.field("ts", static_cast<u64>(ev.cycle));
        w.field("pid", pid);
        w.field("tid", tidOf(ev));
        eventArgs(w, ev);
        w.endObject();
    }
    // Banks still gated when the run (or the traced window) ended.
    for (const auto &[key, off_at] : open_off) {
        completeEvent(w, "gated", pidOfSm(key.first),
                      kBankLaneBase + key.second, off_at, window_end);
    }

    // GPU-wide counter tracks from the windowed timelines.
    for (std::size_t i = 0; i < view.windows.size(); ++i) {
        const WindowRow &r = view.windows[i];
        const Cycle ts = static_cast<Cycle>(i) * view.windowInterval;
        const double cycles_in_window = meta.numSms > 0
            ? static_cast<double>(r.smCycles) /
                static_cast<double>(meta.numSms)
            : 0.0;
        counterEvent(w, "ipc", ts, "ipc",
                     cycles_in_window > 0.0
                         ? static_cast<double>(r.issued) /
                               cycles_in_window
                         : 0.0);
        counterEvent(w, "compression_ratio", ts, "ratio",
                     r.storedBytes > 0
                         ? static_cast<double>(r.rawBytes) /
                               static_cast<double>(r.storedBytes)
                         : 0.0);
        counterEvent(w, "gated_banks", ts, "banks",
                     r.smCycles > 0
                         ? static_cast<double>(r.gatedBankCycles) /
                               static_cast<double>(r.smCycles)
                         : 0.0);
    }

    w.endArray();
    w.endObject();
}

void
writeChromeTrace(std::ostream &os, const ObsRun &obs,
                 const ChromeTraceMeta &meta)
{
    const TraceRing &ring = obs.ring();
    std::vector<TraceEvent> events;
    events.reserve(ring.size());
    for (std::size_t i = 0; i < ring.size(); ++i)
        events.push_back(ring.at(i));
    const ChromeTraceView view{events,
                               obs.windows().rows(),
                               obs.windows().interval(),
                               obs.params().traceStart,
                               obs.params().traceEnd,
                               ring.dropped()};
    writeChromeTrace(os, view, meta);
}

} // namespace warpcomp
