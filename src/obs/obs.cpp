#include "obs/obs.hpp"

#include "common/log.hpp"
#include "obs/trace_stream.hpp"

namespace warpcomp {

const char *
traceEventName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::WarpIssue: return "issue";
      case TraceEventKind::DummyMov: return "dummy_mov";
      case TraceEventKind::CompressDecision: return "compress";
      case TraceEventKind::Decompress: return "decompress";
      case TraceEventKind::OperandCollect: return "collect";
      case TraceEventKind::Writeback: return "writeback";
      case TraceEventKind::GateOff: return "gate_off";
      case TraceEventKind::GateWake: return "gate_wake";
      case TraceEventKind::SeuCorruption: return "seu_corruption";
      case TraceEventKind::ScrubVisit: return "scrub";
      case TraceEventKind::FaultCorruptedWrite:
        return "fault_corrupted_write";
      case TraceEventKind::BankConflict: return "bank_conflict";
    }
    WC_PANIC("unknown trace event kind");
}

void
ObsRun::streamEvent(const TraceEvent &ev)
{
    cfg_.sink->push(ev);
    ++streamedEvents_;
}

StatGroup
ObsRun::statGroup() const
{
    StatGroup g("obs");
    g.counter("events_recorded") += ring_.size();
    g.counter("events_dropped") += ring_.dropped();
    g.counter("events_offered") += ring_.pushed();
    g.counter("events_streamed") += streamedEvents_;
    g.counter("windows") += windows_.rows().size();
    return g;
}

} // namespace warpcomp
