#include "obs/stats_json.hpp"

#include <fstream>
#include <iostream>
#include <ostream>

#include "analysis/similarity.hpp"
#include "obs/obs.hpp"

// The build stamps this file with the checkout's short SHA (see
// src/CMakeLists.txt); keep non-CMake builds compiling.
#ifndef WC_GIT_SHA
#define WC_GIT_SHA "unknown"
#endif

namespace warpcomp {

namespace {

const char *kPhaseNames[2] = {"non_divergent", "divergent"};

void
writeSimilarityJson(JsonWriter &w, const SimilarityBins &bins)
{
    static const char *bin_names[kNumDistanceBins] = {
        "zero", "small_128", "mid_32k", "random"};
    w.beginObject();
    for (Phase phase : {kNonDivergent, kDivergent}) {
        w.key(kPhaseNames[phase]);
        w.beginObject();
        w.field("total", bins.total(phase));
        for (u32 b = 0; b < kNumDistanceBins; ++b)
            w.field(bin_names[b],
                    bins.count(phase, static_cast<DistanceBin>(b)));
        w.endObject();
    }
    w.endObject();
}

void
writeRatioJson(JsonWriter &w, const RatioAccum &ratio)
{
    w.beginObject();
    for (Phase phase : {kNonDivergent, kDivergent}) {
        w.key(kPhaseNames[phase]);
        w.beginObject();
        w.field("writes", ratio.writes(phase));
        w.field("ratio", ratio.ratio(phase));
        w.endObject();
    }
    w.field("overall_ratio", ratio.overallRatio());
    w.endObject();
}

void
writeSimStatsJson(JsonWriter &w, const SimStats &s)
{
    w.beginObject();
    w.field("issued", s.issued);
    w.field("issued_divergent", s.issuedDivergent);
    w.field("dummy_movs", s.dummyMovs);
    w.field("reg_writes", s.regWrites);
    w.field("reg_writes_divergent", s.regWritesDivergent);
    w.field("writes_stored_compressed", s.writesStoredCompressed);
    w.key("similarity");
    writeSimilarityJson(w, s.simBins);
    w.key("compression_ratio");
    writeRatioJson(w, s.ratio);
    w.key("bdi_select");
    w.beginArray();
    for (u64 v : s.bdiSelect)
        w.value(v);
    w.endArray();
    w.key("compressed_fraction");
    w.beginObject();
    w.field("non_divergent", s.compressedFraction(kNonDivergent));
    w.field("divergent", s.compressedFraction(kDivergent));
    w.endObject();
    w.endObject();
}

void
writeEnergyEventsJson(JsonWriter &w, const EnergyMeter &m)
{
    w.beginObject();
    w.field("cycles", m.cycles());
    w.field("bank_reads", m.bankReads());
    w.field("bank_writes", m.bankWrites());
    w.field("rfc_accesses", m.rfcAccesses());
    w.field("remap_accesses", m.remapAccesses());
    w.field("ecc_encodes", m.eccEncodes());
    w.field("ecc_decodes", m.eccDecodes());
    w.field("comp_activations", m.compActivations());
    w.field("decomp_activations", m.decompActivations());
    w.field("awake_bank_cycles", m.awakeBankCycles());
    w.field("drowsy_bank_cycles", m.drowsyBankCycles());
    w.endObject();
}

void
writeFaultJson(JsonWriter &w, const FaultStats &f)
{
    w.beginObject();
    w.field("total_regs", f.totalRegs);
    w.field("usable_regs", f.usableRegs);
    w.field("disabled_regs", f.disabledRegs);
    w.field("faulty_cells", f.faultyCells);
    w.field("tolerated_writes", f.toleratedWrites);
    w.field("remap_writes", f.remapWrites);
    w.field("remap_reads", f.remapReads);
    w.field("corrupted_writes", f.corruptedWrites);
    w.field("unrecoverable_accesses", f.unrecoverableAccesses);
    w.endObject();
}

void
writeSeuJson(JsonWriter &w, const SeuStats &s)
{
    w.beginObject();
    w.field("flips", s.flips);
    w.field("live_hits", s.liveHits);
    w.field("masked_flips", s.maskedFlips);
    w.field("hits_compressed", s.hitsCompressed);
    w.field("corrupted_reads", s.corruptedReads);
    w.field("corrupted_lanes", s.corruptedLanes);
    w.field("amplified_reads", s.amplifiedReads);
    w.field("ecc_corrected_reads", s.eccCorrectedReads);
    w.field("detected_uncorrectable", s.detectedUncorrectable);
    w.field("scrub_visits", s.scrubVisits);
    w.field("scrub_writes", s.scrubWrites);
    w.field("scrub_corrected", s.scrubCorrected);
    w.field("ecc_check_bit_bytes", s.eccCheckBitBytes);
    w.endObject();
}

void
writeTimelinesJson(JsonWriter &w, const ObsWindows &win, u32 num_sms)
{
    w.beginObject();
    w.field("interval", win.interval());
    w.key("windows");
    w.beginArray();
    for (const WindowRow &r : win.rows()) {
        const double gpu_cycles = num_sms > 0
            ? static_cast<double>(r.smCycles) /
                static_cast<double>(num_sms)
            : 0.0;
        w.beginObject();
        w.field("issued", r.issued);
        w.field("dummy_movs", r.dummyMovs);
        w.field("reg_writes", r.regWrites);
        w.field("stored_bytes", r.storedBytes);
        w.field("raw_bytes", r.rawBytes);
        w.field("gated_bank_cycles", r.gatedBankCycles);
        w.field("bank_cycles", r.bankCycles);
        w.field("sm_cycles", r.smCycles);
        w.field("ipc", gpu_cycles > 0.0
                           ? static_cast<double>(r.issued) / gpu_cycles
                           : 0.0);
        w.field("compression_ratio",
                r.storedBytes > 0
                    ? static_cast<double>(r.rawBytes) /
                          static_cast<double>(r.storedBytes)
                    : 0.0);
        w.field("gated_occupancy",
                r.bankCycles > 0
                    ? static_cast<double>(r.gatedBankCycles) /
                          static_cast<double>(r.bankCycles)
                    : 0.0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
writeJson(JsonWriter &w, const StatGroup &group)
{
    w.beginObject();
    for (const auto &[name, counter] : group.counters())
        w.field(name, counter.value());
    w.endObject();
}

void
writeJson(JsonWriter &w, const Histogram &hist)
{
    w.beginObject();
    w.key("bins");
    w.beginArray();
    for (std::size_t i = 0; i < hist.size(); ++i)
        w.value(hist.bin(i));
    w.endArray();
    w.field("overflow", hist.overflow());
    w.field("total", hist.total());
    w.endObject();
}

void
writeJson(JsonWriter &w, const EnergyBreakdown &e)
{
    w.beginObject();
    w.field("bank_dynamic_pj", e.bankDynamicPj);
    w.field("wire_dynamic_pj", e.wireDynamicPj);
    w.field("rfc_dynamic_pj", e.rfcDynamicPj);
    w.field("fault_remap_pj", e.faultRemapPj);
    w.field("ecc_pj", e.eccPj);
    w.field("compression_pj", e.compressionPj);
    w.field("decompression_pj", e.decompressionPj);
    w.field("bank_leakage_pj", e.bankLeakagePj);
    w.field("unit_leakage_pj", e.unitLeakagePj);
    w.field("dynamic_pj", e.dynamicPj());
    w.field("leakage_pj", e.leakagePj());
    w.field("total_pj", e.totalPj());
    w.endObject();
}

void
writeRunStatsJson(JsonWriter &w, const RunResult &run, u32 num_sms)
{
    w.beginObject();
    w.field("cycles", static_cast<u64>(run.cycles));
    w.field("ctas", run.ctas);
    w.field("unschedulable", run.unschedulable);
    w.field("hung", run.hung);
    w.key("stats");
    writeSimStatsJson(w, run.stats);
    w.key("energy");
    writeJson(w, run.meter.breakdown());
    w.key("energy_events");
    writeEnergyEventsJson(w, run.meter);
    w.key("bank_gated_fraction");
    w.beginArray();
    for (double f : run.bankGatedFraction)
        w.value(f);
    w.endArray();
    w.key("rfc");
    w.beginObject();
    w.field("hits", run.rfcHits);
    w.field("misses", run.rfcMisses);
    w.endObject();
    w.key("fault");
    writeFaultJson(w, run.fault);
    w.key("seu");
    writeSeuJson(w, run.seu);
    if (run.obs) {
        w.key("obs");
        writeJson(w, run.obs->statGroup());
        if (run.obs->windows().interval() > 0) {
            w.key("timelines");
            writeTimelinesJson(w, run.obs->windows(), num_sms);
        }
    }
    w.endObject();
}

StatsRecorder::~StatsRecorder()
{
    flush();
}

void
StatsRecorder::setOutput(std::string bench_name, std::string json_path)
{
    benchName_ = std::move(bench_name);
    jsonPath_ = std::move(json_path);
}

void
StatsRecorder::addSuite(StatsSuiteRecord record)
{
    suites_.push_back(std::move(record));
}

void
StatsRecorder::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", benchName_);
    w.field("git_sha", WC_GIT_SHA);
    w.key("suites");
    w.beginArray();
    for (const StatsSuiteRecord &suite : suites_) {
        w.beginObject();
        w.field("label", suite.label);
        w.field("sms", suite.numSms);
        w.field("scale", suite.scale);
        w.field("seed_salt", suite.seedSalt);
        w.key("workloads");
        w.beginArray();
        for (const StatsRunRow &row : suite.rows) {
            w.beginObject();
            w.field("workload", row.workload);
            w.field("frontend", row.frontend);
            if (!row.imageSha.empty())
                w.field("image_sha256", row.imageSha);
            w.key("run");
            writeRunStatsJson(w, row.run, suite.numSms);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
StatsRecorder::flush()
{
    if (flushed_ || jsonPath_.empty())
        return;
    flushed_ = true;
    std::ofstream os(jsonPath_);
    if (!os) {
        std::cerr << "warpcomp: cannot write stats json to " << jsonPath_
                  << "\n";
        return;
    }
    writeJson(os);
}

StatsRecorder &
statsRecorder()
{
    static StatsRecorder recorder;
    return recorder;
}

} // namespace warpcomp
