/**
 * @file
 * Hierarchical structured-stats export (--stats-json=FILE): every
 * counter the simulator produces for one run — SimStats, the Fig 9
 * energy breakdown and its raw event counts, per-bank gating, fault and
 * SEU census, observability counters, and the windowed timelines — as
 * one deterministic JSON document through the shared JsonWriter.
 *
 * The document deliberately excludes anything non-deterministic (wall
 * clock, host concurrency, paths), so two runs of the same workload and
 * configuration produce byte-identical files regardless of harness
 * thread count.
 */

#ifndef WARPCOMP_OBS_STATS_JSON_HPP
#define WARPCOMP_OBS_STATS_JSON_HPP

#include <string>
#include <vector>

#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "sim/gpu.hpp"

namespace warpcomp {

/** Serialize a StatGroup as an object of its counters (sorted by name,
 *  map order). Caller positions the writer (key or array slot). */
void writeJson(JsonWriter &w, const StatGroup &group);

/** Serialize a Histogram as {"bins": [...], "overflow": n, "total": n}. */
void writeJson(JsonWriter &w, const Histogram &hist);

/** Serialize an EnergyBreakdown with its derived totals. */
void writeJson(JsonWriter &w, const EnergyBreakdown &e);

/**
 * Serialize one run's full statistics hierarchy. @p num_sms converts
 * SM-cycle window samples into GPU-cycle denominators for the derived
 * per-window IPC.
 */
void writeRunStatsJson(JsonWriter &w, const RunResult &run, u32 num_sms);

/** One workload's run inside a recorded suite. */
struct StatsRunRow
{
    std::string workload;
    RunResult run;
    /** Frontend provenance: "dsl" or "rv32" (binary image). */
    std::string frontend = "dsl";
    /** SHA-256 of the binary image for "rv32" rows; empty for DSL.
     *  Content-addressed, so it keeps the document deterministic. */
    std::string imageSha;
};

/** One suite recorded for the stats dump. */
struct StatsSuiteRecord
{
    std::string label;          ///< caller-supplied config label
    u32 numSms = 0;
    u32 scale = 1;
    u64 seedSalt = 0;
    std::vector<StatsRunRow> rows;
};

/**
 * Collects suites for one bench process and writes them as one JSON
 * document. Mirrors PerfRecorder, but the output is fully deterministic
 * (no wall clock, no hardware concurrency) so CI can diff it byte for
 * byte across reruns and thread counts.
 */
class StatsRecorder
{
  public:
    ~StatsRecorder();

    /** Arm the recorder: the document goes to @p json_path at exit. */
    void setOutput(std::string bench_name, std::string json_path);

    void addSuite(StatsSuiteRecord record);

    bool enabled() const { return !jsonPath_.empty(); }

    /** Serialize the current log; exposed for tests. */
    void writeJson(std::ostream &os) const;

    /** Flush to the configured path now (destructor calls this too). */
    void flush();

  private:
    std::string benchName_;
    std::string jsonPath_;
    std::vector<StatsSuiteRecord> suites_;
    bool flushed_ = false;
};

/** Process-wide recorder used by the bench scaffolding. */
StatsRecorder &statsRecorder();

} // namespace warpcomp

#endif // WARPCOMP_OBS_STATS_JSON_HPP
