/**
 * @file
 * Append-only sweep journal: durable checkpointing for multi-hour
 * grids. Every completed point — successful or failed-after-retries —
 * is one compact JSON line, fsynced on append, keyed by (point key,
 * git SHA). `--resume=JOURNAL` loads the file and serves finished
 * points from it, so re-running an interrupted grid is incremental and
 * the journal doubles as a result cache (repeated points are free).
 *
 * The loader is deliberately forgiving about the file's tail and
 * hostile about its content: a line without a trailing newline (a
 * SIGKILL landed mid-write) or an unparseable line is skipped and
 * counted, never fatal; a record whose git SHA differs from the
 * running binary is stale and skipped (the simulator may have changed
 * behaviour).
 */

#ifndef WARPCOMP_SWEEP_JOURNAL_HPP
#define WARPCOMP_SWEEP_JOURNAL_HPP

#include <map>
#include <optional>
#include <string>

#include "common/json_parse.hpp"

namespace warpcomp {

/** One journaled point outcome. */
struct JournalRecord
{
    std::string key;        ///< pointKey()
    std::string workload;
    std::string configSpec; ///< configToSpec() (for humans/tools)
    std::string status;     ///< "ok" | "failed"
    u32 attempts = 1;
    std::string reason;     ///< failure taxonomy; empty when ok
    /** Parsed PointStats payload; absent for failed points. */
    std::optional<JsonValue> stats;

    bool ok() const { return status == "ok"; }
};

/** Journal loaded into memory, keyed for cache lookups. */
struct JournalIndex
{
    std::map<std::string, JournalRecord> byKey;
    u64 skippedLines = 0;   ///< truncated/garbage lines tolerated
    u64 staleRecords = 0;   ///< records from another git SHA

    const JournalRecord *
    find(const std::string &key) const
    {
        const auto it = byKey.find(key);
        return it == byKey.end() ? nullptr : &it->second;
    }
};

/** The git SHA journal records are stamped and validated with. */
const char *sweepGitSha();

/**
 * Append-only journal writer. Opens lazily on first append (creating
 * the file), writes one line per record with a single write(2) call,
 * and fsyncs before returning, so a record is either durable or absent
 * — never half-present after a crash (the loader drops a torn tail).
 */
class SweepJournal
{
  public:
    explicit SweepJournal(std::string path);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    const std::string &path() const { return path_; }

    /** Append one completed point; fatal on I/O errors (a sweep that
     *  cannot checkpoint should fail loudly, not silently). */
    void append(const JournalRecord &record);

  private:
    std::string path_;
    int fd_ = -1;
};

/**
 * Load @p path into an index. A missing file is an error (a mistyped
 * --resume path must not silently run the whole grid); an empty file
 * is a valid empty journal.
 */
std::optional<JournalIndex> loadJournal(const std::string &path,
                                        std::string *error);

/** Serialize one record as a single compact JSON line (no newline). */
std::string journalLine(const JournalRecord &record);

/** Parse one journal line; nullopt on malformed input. */
std::optional<JournalRecord> journalRecordFromLine(const std::string &line);

} // namespace warpcomp

#endif // WARPCOMP_SWEEP_JOURNAL_HPP
