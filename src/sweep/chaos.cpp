#include "sweep/chaos.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include <unistd.h>

#include "common/json_writer.hpp"

namespace warpcomp {

namespace {

/** FNV-1a 64 over the point key: stable across platforms. */
u64
fnv1a(const std::string &s)
{
    u64 h = 0xCBF29CE484222325ull;
    for (char c : s) {
        h ^= static_cast<u8>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

/** splitmix64 finalizer: decorrelates the combined hash bits. */
u64
mix64(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

std::optional<ChaosSpec>
chaosFromSpec(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return std::nullopt;
    };

    const size_t c1 = spec.find(',');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : spec.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos)
        return fail("--chaos wants MODE,RATE,SEED (e.g. "
                    "--chaos=crash,0.2,42), got `" + spec + "`");

    ChaosSpec out;
    const std::string mode = spec.substr(0, c1);
    if (mode == "crash")
        out.mode = ChaosMode::Crash;
    else if (mode == "hang")
        out.mode = ChaosMode::Hang;
    else if (mode == "slow")
        out.mode = ChaosMode::Slow;
    else if (mode == "mix")
        out.mode = ChaosMode::Mix;
    else
        return fail("unknown chaos mode `" + mode +
                    "` (crash | hang | slow | mix)");

    const std::string rate = spec.substr(c1 + 1, c2 - c1 - 1);
    char *end = nullptr;
    out.rate = std::strtod(rate.c_str(), &end);
    if (rate.empty() || end != rate.c_str() + rate.size() ||
        !std::isfinite(out.rate) || out.rate < 0.0 || out.rate > 1.0)
        return fail("chaos RATE must be a finite value in [0, 1], got `" +
                    rate + "`");

    const std::string seed = spec.substr(c2 + 1);
    out.seed = std::strtoull(seed.c_str(), &end, 0);
    if (seed.empty() || end != seed.c_str() + seed.size())
        return fail("chaos SEED must be an integer, got `" + seed + "`");
    return out;
}

std::string
chaosToSpec(const ChaosSpec &spec)
{
    std::string mode;
    switch (spec.mode) {
      case ChaosMode::Crash: mode = "crash"; break;
      case ChaosMode::Hang: mode = "hang"; break;
      case ChaosMode::Slow: mode = "slow"; break;
      case ChaosMode::Mix: mode = "mix"; break;
      case ChaosMode::None: mode = "none"; break;
    }
    return mode + "," + JsonWriter::formatDouble(spec.rate) + "," +
           std::to_string(spec.seed);
}

ChaosMode
chaosAction(const ChaosSpec &spec, const std::string &point_key,
            u32 attempt)
{
    if (!spec.enabled())
        return ChaosMode::None;
    const u64 h =
        mix64(fnv1a(point_key) ^ mix64(spec.seed) ^
              mix64(static_cast<u64>(attempt) * 0x9E3779B97F4A7C15ull));
    // Top 53 bits -> uniform double in [0, 1).
    const double draw =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    if (draw >= spec.rate)
        return ChaosMode::None;
    if (spec.mode != ChaosMode::Mix)
        return spec.mode;
    // Mix: a second independent draw picks the injury flavour.
    switch (mix64(h) % 3) {
      case 0: return ChaosMode::Crash;
      case 1: return ChaosMode::Hang;
      default: return ChaosMode::Slow;
    }
}

void
applyChaos(ChaosMode action)
{
    switch (action) {
      case ChaosMode::Crash:
        // Abrupt death, no destructors/flushes — what a real crash
        // leaves behind.
        _exit(kChaosCrashExit);
      case ChaosMode::Hang:
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(3600));
      case ChaosMode::Slow:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kChaosSlowMs));
        return;
      case ChaosMode::Mix:
      case ChaosMode::None:
        return;
    }
}

} // namespace warpcomp
