#include "sweep/journal.hpp"

#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hpp"

#ifndef WC_GIT_SHA
#define WC_GIT_SHA "unknown"
#endif

namespace warpcomp {

const char *
sweepGitSha()
{
    return WC_GIT_SHA;
}

SweepJournal::SweepJournal(std::string path) : path_(std::move(path))
{
    WC_ASSERT(!path_.empty(), "journal path must not be empty");
}

SweepJournal::~SweepJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
journalLine(const JournalRecord &record)
{
    std::ostringstream ss;
    JsonWriter w(ss, JsonWriter::Style::Compact);
    w.beginObject();
    w.field("v", static_cast<u64>(1));
    w.field("key", record.key);
    w.field("git_sha", sweepGitSha());
    w.field("workload", record.workload);
    w.field("config", record.configSpec);
    w.field("status", record.status);
    w.field("attempts", record.attempts);
    if (!record.reason.empty())
        w.field("reason", record.reason);
    if (record.stats.has_value()) {
        w.key("stats");
        writeJson(w, *record.stats);
    }
    w.endObject();
    return ss.str();
}

void
SweepJournal::append(const JournalRecord &record)
{
    if (fd_ < 0) {
        fd_ = ::open(path_.c_str(),
                     O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
        if (fd_ < 0)
            WC_FATAL("cannot open sweep journal '" << path_ << "'");
    }
    const std::string line = journalLine(record) + "\n";
    // One write(2) for the whole line: appends from concurrent sweeps
    // on the same journal interleave at line granularity, and a torn
    // tail can only be the final line (which the loader drops).
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0)
            WC_FATAL("cannot append to sweep journal '" << path_ << "'");
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd_) != 0)
        WC_FATAL("cannot fsync sweep journal '" << path_ << "'");
}

std::optional<JournalRecord>
journalRecordFromLine(const std::string &line)
{
    const JsonParseOutcome parsed = parseJson(line);
    if (!parsed.ok() || !parsed.value->isObject())
        return std::nullopt;
    const JsonValue &v = *parsed.value;

    const JsonValue *version = v.find("v");
    if (version == nullptr || version->asU64() != std::optional<u64>(1))
        return std::nullopt;

    JournalRecord rec;
    auto str = [&](const char *key, std::string *out) {
        const JsonValue *f = v.find(key);
        if (f == nullptr || f->asString() == nullptr)
            return false;
        *out = *f->asString();
        return true;
    };
    std::string git_sha;
    if (!str("key", &rec.key) || !str("git_sha", &git_sha) ||
        !str("workload", &rec.workload) ||
        !str("config", &rec.configSpec) || !str("status", &rec.status))
        return std::nullopt;
    if (rec.status != "ok" && rec.status != "failed")
        return std::nullopt;

    const JsonValue *attempts = v.find("attempts");
    const auto attempts_v =
        attempts != nullptr ? attempts->asU64() : std::nullopt;
    if (!attempts_v.has_value() || *attempts_v < 1 ||
        *attempts_v > 0xFFFFFFFFull)
        return std::nullopt;
    rec.attempts = static_cast<u32>(*attempts_v);

    if (const JsonValue *reason = v.find("reason")) {
        if (reason->asString() == nullptr)
            return std::nullopt;
        rec.reason = *reason->asString();
    }
    if (const JsonValue *stats = v.find("stats")) {
        if (!stats->isObject())
            return std::nullopt;
        rec.stats = *stats;
    }
    if (rec.ok() && !rec.stats.has_value())
        return std::nullopt;    // a successful point must carry stats

    // Stale-cache guard: a record minted by a different source revision
    // may describe different simulator behaviour. Encode the mismatch
    // in-band so the caller can count it as stale rather than garbage.
    if (git_sha != sweepGitSha()) {
        rec.status = "stale";
        return rec;
    }
    return rec;
}

std::optional<JournalIndex>
loadJournal(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open journal '" + path + "'";
        return std::nullopt;
    }
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());

    JournalIndex index;
    size_t pos = 0;
    while (pos < content.size()) {
        const size_t nl = content.find('\n', pos);
        if (nl == std::string::npos) {
            // Torn tail: the writer died mid-line. Drop it.
            ++index.skippedLines;
            break;
        }
        const std::string line = content.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        const auto rec = journalRecordFromLine(line);
        if (!rec.has_value()) {
            ++index.skippedLines;
            continue;
        }
        if (rec->status == "stale") {
            ++index.staleRecords;
            continue;
        }
        // Later records win: a re-run may have replaced an earlier
        // failure with a success.
        index.byKey[rec->key] = *rec;
    }
    return index;
}

} // namespace warpcomp
