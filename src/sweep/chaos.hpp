/**
 * @file
 * Chaos hook for the resilient sweep runner (test/CI only): child
 * processes deterministically injure themselves — crash, hang, or run
 * slow — as a pure function of (point key, attempt, seed), proving the
 * supervision path (watchdog, retry/backoff, graceful degradation)
 * without any real flakiness.
 *
 * Determinism is the load-bearing property: a chaos sweep that is
 * killed mid-grid and resumed re-derives the exact same injuries per
 * (point, attempt), so its merged report is byte-identical to an
 * uninterrupted run.
 */

#ifndef WARPCOMP_SWEEP_CHAOS_HPP
#define WARPCOMP_SWEEP_CHAOS_HPP

#include <optional>
#include <string>

#include "common/types.hpp"

namespace warpcomp {

/** What an injured child does. */
enum class ChaosMode : u8 {
    None,
    Crash,  ///< _exit with kChaosCrashExit before simulating
    Hang,   ///< spin forever (the watchdog must SIGKILL it)
    Slow,   ///< sleep kChaosSlowMs, then complete normally
    Mix     ///< pick one of the three per (point, attempt)
};

/** Exit code a chaos-crashed child dies with. */
constexpr int kChaosCrashExit = 66;

/** Sleep a "slow" child takes before proceeding. */
constexpr u32 kChaosSlowMs = 200;

/** Parsed `--chaos=MODE,RATE,SEED` spec. */
struct ChaosSpec
{
    ChaosMode mode = ChaosMode::None;
    double rate = 0.0;  ///< injury probability per (point, attempt)
    u64 seed = 0;

    bool enabled() const { return mode != ChaosMode::None && rate > 0.0; }
};

/** Strict parse of `MODE,RATE,SEED` (crash|hang|slow|mix, rate in
 *  [0,1], integer seed); nullopt + @p error on malformed input. */
std::optional<ChaosSpec> chaosFromSpec(const std::string &spec,
                                       std::string *error);

/** Inverse of chaosFromSpec (canonical form, for child argv). */
std::string chaosToSpec(const ChaosSpec &spec);

/**
 * The injury (or None) this (point, attempt) suffers — a pure
 * function, identical in parent and child, run over run.
 */
ChaosMode chaosAction(const ChaosSpec &spec, const std::string &point_key,
                      u32 attempt);

/**
 * Child-side execution of one injury. Crash never returns; Hang spins
 * until killed; Slow sleeps and returns; None returns immediately.
 */
void applyChaos(ChaosMode action);

} // namespace warpcomp

#endif // WARPCOMP_SWEEP_CHAOS_HPP
