#include "sweep/sweep.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/log.hpp"
#include "harness/thread_pool.hpp"

namespace warpcomp {

namespace {

u64
parseStrictU64(const char *spec, const char *flag)
{
    char *end = nullptr;
    const u64 v = std::strtoull(spec, &end, 0);
    if (end == spec || *end != '\0')
        WC_FATAL(flag << " must be an integer, got '" << spec << "'");
    return v;
}

void
writeSweepStats(const std::string &path, const SweepCounters &ctr)
{
    std::ofstream os(path);
    if (!os)
        WC_FATAL("cannot write sweep stats to '" << path << "'");
    JsonWriter w(os);
    w.beginObject();
    w.field("points", ctr.points);
    w.field("spawned", ctr.spawned);
    w.field("cache_hits", ctr.cacheHits);
    w.field("retries", ctr.retries);
    w.field("timeouts", ctr.timeouts);
    w.field("crashes", ctr.crashes);
    w.field("ok_points", ctr.okPoints);
    w.field("failed_points", ctr.failedPoints);
    w.endObject();
}

} // namespace

SweepOptions
parseSweepArgs(int argc, char **argv)
{
    SweepOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--point=", 8) == 0) {
            opt.pointSpec = arg + 8;
            if (opt.pointSpec.empty())
                WC_FATAL("--point needs WORKLOAD|CONFIGSPEC");
        } else if (std::strncmp(arg, "--point-out=", 12) == 0) {
            opt.pointOut = arg + 12;
            if (opt.pointOut.empty())
                WC_FATAL("--point-out needs a file path");
        } else if (std::strncmp(arg, "--attempt=", 10) == 0) {
            const u64 v = parseStrictU64(arg + 10, "--attempt");
            if (v < 1 || v > 0xFFFFFFFFull)
                WC_FATAL("--attempt must be >= 1, got '" << (arg + 10)
                         << "'");
            opt.attempt = static_cast<u32>(v);
        } else if (std::strncmp(arg, "--chaos=", 8) == 0) {
            std::string err;
            const auto spec = chaosFromSpec(arg + 8, &err);
            if (!spec.has_value())
                WC_FATAL(err);
            opt.chaos = *spec;
        } else if (std::strncmp(arg, "--journal=", 10) == 0) {
            opt.journalPath = arg + 10;
            if (opt.journalPath.empty())
                WC_FATAL("--journal needs a file path");
        } else if (std::strncmp(arg, "--resume=", 9) == 0) {
            opt.resumePath = arg + 9;
            if (opt.resumePath.empty())
                WC_FATAL("--resume needs a journal path");
        } else if (std::strncmp(arg, "--report=", 9) == 0) {
            opt.reportPath = arg + 9;
            if (opt.reportPath.empty())
                WC_FATAL("--report needs a file path");
        } else if (std::strncmp(arg, "--sweep-stats=", 14) == 0) {
            opt.sweepStatsPath = arg + 14;
            if (opt.sweepStatsPath.empty())
                WC_FATAL("--sweep-stats needs a file path");
        } else if (std::strncmp(arg, "--timeout=", 10) == 0) {
            const char *spec = arg + 10;
            char *end = nullptr;
            opt.timeoutSeconds = std::strtod(spec, &end);
            if (end == spec || *end != '\0' ||
                !std::isfinite(opt.timeoutSeconds) ||
                opt.timeoutSeconds <= 0.0)
                WC_FATAL("--timeout must be a positive number of "
                         "seconds, got '" << spec << "'");
        } else if (std::strncmp(arg, "--attempts=", 11) == 0) {
            const u64 v = parseStrictU64(arg + 11, "--attempts");
            if (v < 1 || v > 100)
                WC_FATAL("--attempts must be in 1..100, got '"
                         << (arg + 11) << "'");
            opt.maxAttempts = static_cast<u32>(v);
        } else if (std::strncmp(arg, "--backoff-ms=", 13) == 0) {
            const u64 v = parseStrictU64(arg + 13, "--backoff-ms");
            if (v > 60'000)
                WC_FATAL("--backoff-ms must be <= 60000, got '"
                         << (arg + 13) << "'");
            opt.backoffMs = static_cast<u32>(v);
        } else if (std::strncmp(arg, "--die-after=", 12) == 0) {
            const u64 v = parseStrictU64(arg + 12, "--die-after");
            if (v < 1 || v > 0xFFFFFFFFull)
                WC_FATAL("--die-after must be >= 1, got '" << (arg + 12)
                         << "'");
            opt.dieAfterPoints = static_cast<u32>(v);
        } else if (std::strcmp(arg, "--isolate") == 0) {
            opt.isolate = true;
        } else if (std::strncmp(arg, "--grid=", 7) == 0) {
            opt.grid = arg + 7;
            if (opt.grid.empty())
                WC_FATAL("--grid needs a name");
        }
    }
    if (opt.isChild() && opt.pointOut.empty())
        WC_FATAL("--point requires --point-out=FILE");
    return opt;
}

int
runSweepChildPoint(const SweepOptions &opt)
{
    std::string err;
    const auto point = pointFromSpec(opt.pointSpec, &err);
    if (!point.has_value())
        WC_FATAL(err);

    // Chaos first: an injured child dies (or stalls) before any
    // simulation work, the same way a real crash would.
    applyChaos(chaosAction(opt.chaos, pointKey(*point), opt.attempt));

    const ExperimentResult result =
        runWorkload(point->workload, point->cfg);
    const PointStats stats = makePointStats(result, point->cfg.energy);

    std::ofstream os(opt.pointOut, std::ios::binary);
    if (!os)
        WC_FATAL("cannot write point result to '" << opt.pointOut
                 << "'");
    JsonWriter w(os);
    writeJson(w, stats);
    os.flush();
    return os ? 0 : 1;
}

std::vector<PointOutcome>
runResilientSweep(const std::string &self_path,
                  const std::vector<SweepPoint> &points,
                  const SweepOptions &opt, u32 threads)
{
    JournalIndex resume_index;
    if (!opt.resumePath.empty()) {
        std::string err;
        const auto loaded = loadJournal(opt.resumePath, &err);
        if (!loaded.has_value())
            WC_FATAL("--resume: " << err);
        resume_index = *loaded;
        if (resume_index.skippedLines > 0 ||
            resume_index.staleRecords > 0)
            std::cerr << "sweep: resume journal '" << opt.resumePath
                      << "': tolerated " << resume_index.skippedLines
                      << " unparseable line(s), skipped "
                      << resume_index.staleRecords
                      << " stale record(s)\n";
    }

    // --resume without --journal keeps checkpointing into the same
    // file, so an interrupted resume is itself resumable.
    const std::string journal_path = !opt.journalPath.empty()
        ? opt.journalPath : opt.resumePath;
    std::optional<SweepJournal> journal;
    if (!journal_path.empty())
        journal.emplace(journal_path);

    SupervisorOptions sup;
    sup.selfPath = self_path;
    sup.workers = resolveThreadCount(threads);
    sup.timeoutSeconds = opt.timeoutSeconds;
    sup.maxAttempts = opt.maxAttempts;
    sup.backoffMs = opt.backoffMs;
    sup.chaos = opt.chaos;
    sup.dieAfterPoints = opt.dieAfterPoints;

    SweepCounters counters;
    auto outcomes = runSupervised(
        points, sup, opt.resumePath.empty() ? nullptr : &resume_index,
        journal.has_value() ? &*journal : nullptr, &counters);

    if (!opt.sweepStatsPath.empty())
        writeSweepStats(opt.sweepStatsPath, counters);
    std::cerr << "sweep: " << counters.points << " points, "
              << counters.spawned << " spawned, " << counters.cacheHits
              << " cached, " << counters.retries << " retries ("
              << counters.crashes << " crashes, " << counters.timeouts
              << " timeouts), " << counters.okPoints << " ok, "
              << counters.failedPoints << " failed\n";
    return outcomes;
}

std::vector<std::vector<std::optional<PointStats>>>
runPointsGrid(const std::string &self_path,
              const std::vector<ExperimentConfig> &configs,
              const std::vector<std::string> &workloads,
              const SweepOptions &opt, u32 threads)
{
    std::vector<std::vector<std::optional<PointStats>>> grid(
        configs.size());
    if (!opt.isolate) {
        const auto results = runGrid(configs, workloads, threads);
        for (std::size_t c = 0; c < results.size(); ++c)
            for (const ExperimentResult &r : results[c])
                grid[c].emplace_back(
                    makePointStats(r, configs[c].energy));
        return grid;
    }
    std::vector<SweepPoint> points;
    points.reserve(configs.size() * workloads.size());
    for (const ExperimentConfig &cfg : configs)
        for (const std::string &w : workloads)
            points.push_back({w, cfg});
    const auto outcomes =
        runResilientSweep(self_path, points, opt, threads);
    std::size_t i = 0;
    for (std::size_t c = 0; c < configs.size(); ++c)
        for (std::size_t w = 0; w < workloads.size(); ++w, ++i)
            grid[c].push_back(outcomes[i].ok()
                                  ? std::optional<PointStats>(
                                        *outcomes[i].stats)
                                  : std::nullopt);
    return grid;
}

void
writeSweepReport(std::ostream &os, const std::string &bench,
                 const std::string &grid,
                 const std::vector<PointOutcome> &outcomes)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("bench", bench);
    w.field("grid", grid);
    w.field("git_sha", sweepGitSha());
    w.key("points");
    w.beginArray();
    for (const PointOutcome &out : outcomes) {
        w.beginObject();
        w.field("workload", out.point.workload);
        w.field("config", configToSpec(out.point.cfg));
        w.field("key", out.key);
        w.field("status", out.status);
        if (!out.ok()) {
            // Attempt counts are supervision detail: on an ok point
            // they vary with chaos/retries and would break the
            // byte-identity contract, so they only appear alongside a
            // failure (where the run is nondeterministic anyway).
            w.field("attempts", out.attempts);
            w.field("reason", out.reason);
        } else {
            w.key("stats");
            writeJson(w, *out.statsJson);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace warpcomp
