/**
 * @file
 * Resilient sweep runner facade: the CLI surface and orchestration the
 * drivers (`bench_sweep`, and `bench_fault_sweep` / `bench_seu_sweep`
 * under `--isolate`) share.
 *
 * A driver calls parseSweepArgs alongside parseHarnessArgs, then:
 *   - child mode (`--point=` present): runSweepChildPoint simulates
 *     exactly one point and writes its PointStats JSON to
 *     `--point-out`; chaos injection (if armed) happens here;
 *   - parent mode: runResilientSweep supervises the whole grid —
 *     journal loading (`--resume`), cache lookups, per-point child
 *     processes with watchdog/retry/backoff, checkpoint appends
 *     (`--journal`), and counters (`--sweep-stats`).
 *
 * The merged report (writeSweepReport) contains only deterministic
 * per-point data, in grid order, so clean, resumed, and multi-worker
 * runs of the same grid are byte-identical.
 */

#ifndef WARPCOMP_SWEEP_SWEEP_HPP
#define WARPCOMP_SWEEP_SWEEP_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/supervisor.hpp"

namespace warpcomp {

/** Options behind the sweep-runner flags (see parseSweepArgs). */
struct SweepOptions
{
    /** Child mode: `--point=WORKLOAD|CONFIGSPEC`. */
    std::string pointSpec;
    /** Child mode: result file (`--point-out=FILE`). */
    std::string pointOut;
    /** Child mode: 1-based attempt number (`--attempt=N`). */
    u32 attempt = 1;
    /** Failure injection (`--chaos=MODE,RATE,SEED`). */
    ChaosSpec chaos;
    /** Checkpoint journal to append to (`--journal=FILE`). */
    std::string journalPath;
    /** Journal to resume/serve cached points from (`--resume=FILE`).
     *  Implies journalPath = resumePath unless set separately. */
    std::string resumePath;
    /** Merged report path (`--report=FILE`; empty = stdout). */
    std::string reportPath;
    /** Supervision counters JSON (`--sweep-stats=FILE`). */
    std::string sweepStatsPath;
    /** Per-point watchdog (`--timeout=SECONDS`). */
    double timeoutSeconds = 300.0;
    /** Attempts per point (`--attempts=N`, >= 1). */
    u32 maxAttempts = 3;
    /** Base retry backoff (`--backoff-ms=N`). */
    u32 backoffMs = 100;
    /** Test hook: abrupt _exit(3) after N journal appends
     *  (`--die-after=N`). */
    u32 dieAfterPoints = 0;
    /** Route an in-process sweep bench through the supervisor
     *  (`--isolate`). */
    bool isolate = false;
    /** Named grid for bench_sweep (`--grid=NAME`). */
    std::string grid = "smoke";

    bool isChild() const { return !pointSpec.empty(); }
};

/**
 * Parse the sweep-runner flags (strict: malformed values are a
 * one-line fatal error, never a silent default; unknown arguments are
 * ignored, mirroring parseHarnessArgs so both parsers can scan the
 * same argv).
 */
SweepOptions parseSweepArgs(int argc, char **argv);

/**
 * Child mode: run the one point in @p opt (applying chaos first when
 * armed) and write its PointStats JSON to opt.pointOut. Returns the
 * process exit code.
 */
int runSweepChildPoint(const SweepOptions &opt);

/**
 * Parent mode: run @p points under full supervision. @p self_path is
 * the driver binary (argv[0]); @p threads is the raw --threads value
 * (0 = hardware concurrency), which here sizes the child-process pool.
 * Handles resume loading, journaling, and the --sweep-stats dump.
 */
std::vector<PointOutcome>
runResilientSweep(const std::string &self_path,
                  const std::vector<SweepPoint> &points,
                  const SweepOptions &opt, u32 threads);

/**
 * Write the merged report: one object per point in grid order with
 * workload, config spec, key, status, attempts, reason (failed) and
 * the stats payload (ok). Deterministic by construction.
 */
void writeSweepReport(std::ostream &os, const std::string &bench,
                      const std::string &grid,
                      const std::vector<PointOutcome> &outcomes);

/**
 * Grid runner shared by the sweep benches: cells[c][w] is configs[c] x
 * workloads[w]. Default path is the in-process parallel runGrid (every
 * cell populated, bit-identical to the historical benches); under
 * `--isolate` each cell runs as a supervised child process and a cell
 * whose point exhausted its attempts is nullopt, which the benches
 * count as `failed` and drop from averages — the same graceful
 * degradation the merged sweep report applies.
 */
std::vector<std::vector<std::optional<PointStats>>>
runPointsGrid(const std::string &self_path,
              const std::vector<ExperimentConfig> &configs,
              const std::vector<std::string> &workloads,
              const SweepOptions &opt, u32 threads);

} // namespace warpcomp

#endif // WARPCOMP_SWEEP_SWEEP_HPP
