/**
 * @file
 * Sweep points: the unit of work the resilient sweep runner schedules,
 * journals, and caches. A point is one (workload, ExperimentConfig)
 * pair with
 *
 *   - a canonical textual config spec (`configToSpec` /
 *     `configFromSpec`) that round-trips exactly, so a supervisor can
 *     hand the point to a child process via `--point=` and the child
 *     reconstructs the identical simulation;
 *   - a stable cache key (`pointKey`): the first 16 hex digits of
 *     SHA-256 over (config spec, workload name). Together with the git
 *     SHA it keys the journal/result cache, so repeated sweep points
 *     are free and stale checkouts never serve cached results;
 *   - a flat, fully deterministic per-point stats record (`PointStats`)
 *     — the child's entire output. It excludes wall clock and host
 *     state by construction, which is what makes resumed and clean
 *     sweeps byte-identical.
 */

#ifndef WARPCOMP_SWEEP_POINT_HPP
#define WARPCOMP_SWEEP_POINT_HPP

#include <optional>
#include <string>

#include "common/json_parse.hpp"
#include "common/json_writer.hpp"
#include "harness/experiment.hpp"

namespace warpcomp {

/** One grid point: a workload under one configuration. */
struct SweepPoint
{
    std::string workload;
    ExperimentConfig cfg;
};

/**
 * Canonical config spec: `key=value` pairs joined by ';' in a fixed
 * field order, covering every ExperimentConfig field that affects
 * simulation results (observability is per-process, not per-point, and
 * EnergyParams are compile-time constants). Doubles use the JsonWriter
 * float format, so encode(parse(encode(c))) == encode(c).
 */
std::string configToSpec(const ExperimentConfig &cfg);

/**
 * Strict inverse of configToSpec: every pair must parse, unknown keys
 * and malformed values are errors (never silent defaults), matching
 * the harness's argument handling. On failure returns nullopt and sets
 * @p error to a one-line diagnostic naming the offending pair.
 */
std::optional<ExperimentConfig> configFromSpec(const std::string &spec,
                                               std::string *error);

/**
 * Parse a full `--point=WORKLOAD|CONFIGSPEC` operand. The workload
 * part may itself be a `file:PATH[,entry=SYM]` binary-kernel spec;
 * '|' is reserved as the separator.
 */
std::optional<SweepPoint> pointFromSpec(const std::string &spec,
                                        std::string *error);

/** Inverse of pointFromSpec. */
std::string pointToSpec(const SweepPoint &point);

/** Cache key: first 16 hex digits of SHA-256(config spec, workload). */
std::string pointKey(const SweepPoint &point);

/**
 * Flat deterministic result record of one executed point — everything
 * the sweep benches aggregate (cycles, energy, fault + SEU counters),
 * nothing host-dependent.
 */
struct PointStats
{
    u64 cycles = 0;
    u64 ctas = 0;
    bool hung = false;
    bool unschedulable = false;
    /** Total register-file energy under the config's EnergyParams. */
    double energyPj = 0.0;
    FaultStats fault;
    SeuStats seu;
    std::string frontend = "dsl";
    std::string imageSha;
};

/** Build the flat record from a completed in-process run. */
PointStats makePointStats(const ExperimentResult &result,
                          const EnergyParams &energy);

/** Serialize as one JSON object (caller positions the writer). */
void writeJson(JsonWriter &w, const PointStats &stats);

/** Parse the object written by writeJson; nullopt + @p error when a
 *  required field is missing or mistyped. */
std::optional<PointStats> pointStatsFromJson(const JsonValue &v,
                                             std::string *error);

} // namespace warpcomp

#endif // WARPCOMP_SWEEP_POINT_HPP
