#include "sweep/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <map>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hpp"

namespace warpcomp {

namespace {

using Clock = std::chrono::steady_clock;

/** How a child attempt ended. */
enum class AttemptFailure { None, Crash, Timeout, BadPayload };

/** One deduplicated grid point and its settling state. */
struct UniquePoint
{
    SweepPoint point;
    std::string key;
    std::optional<PointOutcome> outcome;
};

/** A retry waiting out its backoff. */
struct PendingAttempt
{
    size_t unique = 0;
    u32 attempt = 1;
    Clock::time_point notBefore;
};

/** A live child under the watchdog. */
struct RunningChild
{
    pid_t pid = -1;
    size_t unique = 0;
    u32 attempt = 1;
    Clock::time_point deadline;
    std::string outPath;
    bool killedByWatchdog = false;
};

std::string
describeExit(int wait_status)
{
    if (WIFEXITED(wait_status))
        return "exit code " + std::to_string(WEXITSTATUS(wait_status));
    if (WIFSIGNALED(wait_status))
        return "signal " + std::to_string(WTERMSIG(wait_status));
    return "unknown wait status";
}

/** Working directory for child result files, next to the journal when
 *  one exists so everything an interrupted sweep leaves behind sits in
 *  one place. */
std::string
makeWorkDir(const SweepJournal *journal)
{
    std::string dir;
    if (journal != nullptr) {
        dir = journal->path() + ".work";
        if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
            WC_FATAL("cannot create sweep work dir '" << dir << "'");
        return dir;
    }
    char tmpl[] = "/tmp/wc-sweep-XXXXXX";
    const char *made = ::mkdtemp(tmpl);
    if (made == nullptr)
        WC_FATAL("cannot create sweep work dir under /tmp");
    return made;
}

pid_t
spawnChild(const SupervisorOptions &opts, const UniquePoint &up,
           u32 attempt, const std::string &out_path)
{
    std::vector<std::string> args;
    args.push_back(opts.selfPath);
    args.push_back("--point=" + pointToSpec(up.point));
    args.push_back("--point-out=" + out_path);
    args.push_back("--attempt=" + std::to_string(attempt));
    if (opts.chaos.enabled())
        args.push_back("--chaos=" + chaosToSpec(opts.chaos));

    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;     // parent (or fork failure, pid < 0)

    // Child. Point mode talks only through the --point-out file;
    // silence stdout so a supervised bench never interleaves with the
    // parent's merged report on the parent's stdout.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::close(devnull);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    if (opts.selfPath.find('/') == std::string::npos)
        ::execvp(opts.selfPath.c_str(), argv.data());
    else
        ::execv(opts.selfPath.c_str(), argv.data());
    _exit(127);         // exec failed; surfaces as a crash upstream
}

} // namespace

std::vector<PointOutcome>
runSupervised(const std::vector<SweepPoint> &points,
              const SupervisorOptions &opts, const JournalIndex *cache,
              SweepJournal *journal, SweepCounters *counters)
{
    WC_ASSERT(opts.workers >= 1, "supervisor needs at least one worker");
    WC_ASSERT(opts.maxAttempts >= 1, "maxAttempts must be >= 1");
    WC_ASSERT(!opts.selfPath.empty(), "supervisor needs a driver path");

    SweepCounters local;
    SweepCounters &ctr = counters != nullptr ? *counters : local;
    ctr.points += points.size();

    // Deduplicate: identical (workload, config) points run once.
    std::vector<UniquePoint> unique;
    std::map<std::string, size_t> unique_of_key;
    std::vector<size_t> unique_of_input;
    std::vector<bool> input_is_dup;
    unique_of_input.reserve(points.size());
    for (const SweepPoint &p : points) {
        const std::string key = pointKey(p);
        const auto it = unique_of_key.find(key);
        if (it != unique_of_key.end()) {
            unique_of_input.push_back(it->second);
            input_is_dup.push_back(true);
            ++ctr.cacheHits;
            continue;
        }
        unique_of_key[key] = unique.size();
        unique_of_input.push_back(unique.size());
        input_is_dup.push_back(false);
        unique.push_back(UniquePoint{p, key, std::nullopt});
    }

    u32 journaled = 0;
    auto settle = [&](size_t idx, PointOutcome outcome) {
        UniquePoint &up = unique[idx];
        if (outcome.ok())
            ++ctr.okPoints;
        else
            ++ctr.failedPoints;
        if (journal != nullptr && !outcome.fromCache) {
            JournalRecord rec;
            rec.key = up.key;
            rec.workload = up.point.workload;
            rec.configSpec = configToSpec(up.point.cfg);
            rec.status = outcome.status;
            rec.attempts = outcome.attempts;
            rec.reason = outcome.reason;
            rec.stats = outcome.statsJson;
            journal->append(rec);
            ++journaled;
            if (opts.dieAfterPoints != 0 &&
                journaled >= opts.dieAfterPoints) {
                // Test hook: die the way a SIGKILL/power-loss would —
                // no unwinding, no report, journal already fsynced.
                _exit(3);
            }
        }
        up.outcome = std::move(outcome);
    };

    // Serve journal/cache hits before spawning anything.
    std::vector<PendingAttempt> pending;
    for (size_t i = 0; i < unique.size(); ++i) {
        const JournalRecord *rec =
            cache != nullptr ? cache->find(unique[i].key) : nullptr;
        if (rec != nullptr) {
            PointOutcome out;
            out.point = unique[i].point;
            out.key = unique[i].key;
            out.status = rec->status;
            out.attempts = rec->attempts;
            out.reason = rec->reason;
            out.statsJson = rec->stats;
            if (rec->stats.has_value()) {
                std::string err;
                const auto stats =
                    pointStatsFromJson(*rec->stats, &err);
                if (!stats.has_value())
                    WC_FATAL("journal record for point " << unique[i].key
                             << " has a bad stats payload: " << err);
                out.stats = stats;
            }
            out.fromCache = true;
            ++ctr.cacheHits;
            settle(i, std::move(out));
            continue;
        }
        pending.push_back(
            PendingAttempt{i, 1, Clock::time_point::min()});
    }

    const std::string work_dir = makeWorkDir(journal);
    std::vector<RunningChild> running;
    const auto timeout = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(opts.timeoutSeconds));

    auto handleAttemptEnd = [&](const RunningChild &child,
                                AttemptFailure failure,
                                const std::string &detail) {
        UniquePoint &up = unique[child.unique];
        if (failure == AttemptFailure::None) {
            ::unlink(child.outPath.c_str());
            return;
        }
        switch (failure) {
          case AttemptFailure::Crash: ++ctr.crashes; break;
          case AttemptFailure::Timeout: ++ctr.timeouts; break;
          default: break;
        }
        ::unlink(child.outPath.c_str());
        if (child.attempt < opts.maxAttempts) {
            ++ctr.retries;
            const auto backoff = std::chrono::milliseconds(
                static_cast<u64>(opts.backoffMs)
                << (child.attempt - 1));
            pending.push_back(PendingAttempt{
                child.unique, child.attempt + 1,
                Clock::now() + backoff});
            return;
        }
        PointOutcome out;
        out.point = up.point;
        out.key = up.key;
        out.status = "failed";
        out.attempts = child.attempt;
        out.reason = detail + " after " +
                     std::to_string(child.attempt) + " attempts";
        settle(child.unique, std::move(out));
    };

    auto collectChild = [&](const RunningChild &child, int wait_status) {
        if (child.killedByWatchdog) {
            handleAttemptEnd(child, AttemptFailure::Timeout,
                             "watchdog timeout");
            return;
        }
        if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
            handleAttemptEnd(child, AttemptFailure::Crash,
                             describeExit(wait_status));
            return;
        }
        std::ifstream in(child.outPath, std::ios::binary);
        std::string payload;
        if (in)
            payload.assign((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
        const JsonParseOutcome parsed = parseJson(payload);
        std::string err;
        std::optional<PointStats> stats;
        if (parsed.ok())
            stats = pointStatsFromJson(*parsed.value, &err);
        if (!parsed.ok() || !stats.has_value()) {
            handleAttemptEnd(child, AttemptFailure::BadPayload,
                             "unreadable result payload");
            return;
        }
        PointOutcome out;
        out.point = unique[child.unique].point;
        out.key = unique[child.unique].key;
        out.status = "ok";
        out.attempts = child.attempt;
        out.statsJson = std::move(*parsed.value);
        out.stats = std::move(stats);
        handleAttemptEnd(child, AttemptFailure::None, "");
        settle(child.unique, std::move(out));
    };

    while (!pending.empty() || !running.empty()) {
        const auto now = Clock::now();

        // Launch every eligible attempt while worker slots are free.
        while (running.size() < opts.workers) {
            auto it = std::find_if(
                pending.begin(), pending.end(),
                [&](const PendingAttempt &p) { return p.notBefore <= now; });
            if (it == pending.end())
                break;
            const PendingAttempt attempt = *it;
            pending.erase(it);
            const UniquePoint &up = unique[attempt.unique];
            const std::string out_path =
                work_dir + "/p" + up.key + "-a" +
                std::to_string(attempt.attempt) + ".json";
            const pid_t pid =
                spawnChild(opts, up, attempt.attempt, out_path);
            if (pid < 0) {
                // fork failed (resource pressure): treat like a crash
                // of this attempt so the backoff machinery applies.
                RunningChild ghost{-1, attempt.unique, attempt.attempt,
                                   now, out_path, false};
                handleAttemptEnd(ghost, AttemptFailure::Crash,
                                 "fork failed");
                continue;
            }
            ++ctr.spawned;
            running.push_back(RunningChild{pid, attempt.unique,
                                           attempt.attempt,
                                           now + timeout, out_path,
                                           false});
        }

        if (running.empty()) {
            if (pending.empty())
                break;
            // Everything is backing off; sleep to the earliest retry.
            auto earliest = Clock::time_point::max();
            for (const PendingAttempt &p : pending)
                earliest = std::min(earliest, p.notBefore);
            std::this_thread::sleep_until(earliest);
            continue;
        }

        // Watchdog: SIGKILL expired children; they are reaped below.
        for (RunningChild &child : running) {
            if (!child.killedByWatchdog && Clock::now() >= child.deadline) {
                child.killedByWatchdog = true;
                ::kill(child.pid, SIGKILL);
            }
        }

        // Reap every child that has exited.
        bool reaped = false;
        while (true) {
            int wait_status = 0;
            const pid_t pid = ::waitpid(-1, &wait_status, WNOHANG);
            if (pid <= 0)
                break;
            const auto it = std::find_if(
                running.begin(), running.end(),
                [&](const RunningChild &c) { return c.pid == pid; });
            if (it == running.end())
                continue;   // not ours (shouldn't happen)
            const RunningChild child = *it;
            running.erase(it);
            collectChild(child, wait_status);
            reaped = true;
        }
        if (!reaped)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    ::rmdir(work_dir.c_str());  // best effort; ignored when non-empty

    // Expand unique outcomes back to submission order.
    std::vector<PointOutcome> outcomes;
    outcomes.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        const auto &slot = unique[unique_of_input[i]].outcome;
        WC_ASSERT(slot.has_value(), "unsettled sweep point");
        PointOutcome out = *slot;
        if (input_is_dup[i])
            out.fromCache = true;
        outcomes.push_back(std::move(out));
    }
    return outcomes;
}

} // namespace warpcomp
